module mip

go 1.22
