// Package mip is the public face of this MIP (Medical Informatics
// Platform) reproduction: a privacy-preserving federated analytics
// platform in which patient data never leaves the hospital workers, local
// computation steps run inside an embedded columnar data engine, and only
// aggregates — plain or secret-shared through an SMPC cluster, optionally
// with differential-privacy noise — reach the master.
//
// Quick start:
//
//	p, err := mip.New(mip.Config{
//	    Workers: []mip.WorkerConfig{
//	        {ID: "hospital-a", Data: tableA},
//	        {ID: "hospital-b", Data: tableB},
//	    },
//	    Security: mip.SecuritySMPCShamir,
//	})
//	res, err := p.RunExperiment("linear_regression", mip.Request{
//	    Datasets: []string{"edsd"},
//	    Y:        []string{"minimentalstate"},
//	    X:        []string{"lefthippocampus"},
//	})
//
// See the examples/ directory for complete programs, including the paper's
// federated Alzheimer's-disease use case.
package mip

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"mip/internal/algorithms"
	"mip/internal/catalogue"
	"mip/internal/dp"
	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/queue"
	"mip/internal/smpc"

	apiserver "mip/internal/api"
)

// Re-exported request/response types: these are the values the public API
// traffics in.
type (
	// Request selects datasets, variables and parameters of an experiment.
	Request = algorithms.Request
	// Result is an experiment's output document.
	Result = algorithms.Result
	// AlgorithmSpec describes one available algorithm.
	AlgorithmSpec = algorithms.Spec
	// Table is the engine's columnar table (workers host one as "data").
	Table = engine.Table
	// Schema describes a table's columns.
	Schema = engine.Schema
	// Variable is a common-data-element descriptor.
	Variable = catalogue.Variable
	// Tolerance is the quorum policy for degraded (partial) aggregation.
	Tolerance = federation.Tolerance
	// BreakerConfig tunes the master's per-worker circuit breakers.
	BreakerConfig = federation.BreakerConfig
	// RetryPolicy configures worker-call retries with backoff and jitter.
	RetryPolicy = federation.RetryPolicy
)

// SecurityMode selects the aggregation path.
type SecurityMode int

// Security modes.
const (
	// SecurityOff ships plain aggregates to the master (the remote/merge
	// table path for non-sensitive deployments).
	SecurityOff SecurityMode = iota
	// SecuritySMPCShamir aggregates through Shamir secret sharing
	// (honest-but-curious threat model; fast).
	SecuritySMPCShamir
	// SecuritySMPCFullThreshold aggregates through SPDZ-style additive
	// sharing with MACs (active-malicious majority with abort; slower).
	SecuritySMPCFullThreshold
)

// NoiseKind selects in-protocol differential-privacy noise.
type NoiseKind int

// Noise kinds for secure aggregation.
const (
	NoiseNone NoiseKind = iota
	NoiseLaplace
	NoiseGaussian
)

// WorkerConfig describes one hospital node.
type WorkerConfig struct {
	ID string
	// Data is the harmonized data table (variables as columns plus a
	// "dataset" column). Use engine/etl loaders or synth generators to
	// produce one.
	Data *engine.Table
	// MinRows overrides the disclosure-control threshold (default 10).
	MinRows int
}

// Config assembles a platform.
type Config struct {
	Workers  []WorkerConfig
	Security SecurityMode
	// SMPCNodes is the SMPC cluster size (default 3).
	SMPCNodes int
	// NoiseKind/NoiseScale inject DP noise inside secure aggregation.
	NoiseKind  NoiseKind
	NoiseScale float64
	// PrivacyBudget, when positive, enables the (ε, δ) accountant: each
	// noisy experiment spends EpsilonPerRun (default 0.1) and RunExperiment
	// refuses to run once the budget is exhausted.
	PrivacyBudget float64
	PrivacyDelta  float64 // total δ budget (default 1e-5)
	EpsilonPerRun float64 // ε charged per noisy experiment (default 0.1)
	DeltaPerRun   float64 // δ charged per noisy experiment (default budget/100)
	// Seed drives the SMPC cluster's noise RNG.
	Seed int64
	// QueueWorkers is the experiment-runner concurrency (default 2).
	QueueWorkers int
	// Tolerance lets plain-path experiments succeed on a partial quorum
	// when workers fail mid-step. The zero value keeps strict semantics
	// (every session worker must answer). SMPC aggregation never degrades.
	Tolerance Tolerance
	// Breaker tunes the per-worker circuit breakers (zero value = defaults:
	// open after 3 consecutive failures, 5s cooldown, 15s re-probe).
	Breaker BreakerConfig
	// EngineParallelism caps intra-query parallelism in each worker's
	// engine (0 = runtime.NumCPU()). Any value produces identical results;
	// it only trades query latency against CPU.
	EngineParallelism int
	// QueryDeadline, when positive, bounds every engine statement's wall
	// time; statements past it are cancelled with a deadline verdict.
	QueryDeadline time.Duration
	// QueryMemLimit, when positive, caps a statement's accounted live bytes;
	// statements over it are cancelled with a mem-limit verdict. With
	// QuerySpillDir set the limit becomes a soft budget instead: see below.
	QueryMemLimit int64
	// PlanCacheSize overrides the engine plan cache capacity (statements).
	// 0 keeps the process default (256, or MIP_PLAN_CACHE_SIZE); negative
	// disables plan caching for this platform's databases.
	PlanCacheSize int
	// ResultCacheBytes enables the master's federated result cache with the
	// given byte budget (0 = disabled). Repeated identical aggregates are
	// served from memory while every worker's dataset versions still match.
	ResultCacheBytes int64
	// QuerySpillDir, when set together with QueryMemLimit, turns the limit
	// into a spill budget: hash joins and grouped aggregates that would
	// cross it partition their state to temp files under this directory
	// and keep running (bit-identical results), instead of being cancelled.
	QuerySpillDir string
}

// Platform is a running MIP deployment (in-process topology).
type Platform struct {
	master  *federation.Master
	workers []*federation.Worker
	cluster *smpc.Cluster
	cat     *catalogue.Catalogue
	runner  *queue.Runner
	api     *apiserver.Server

	accountant *dp.Accountant // nil when no budget configured
	epsPerRun  float64
	deltaPer   float64
	noisy      bool
}

// New builds and starts a platform.
func New(cfg Config) (*Platform, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("mip: config needs at least one worker")
	}
	p := &Platform{cat: catalogue.Default()}

	var cluster *smpc.Cluster
	if cfg.Security != SecurityOff {
		scheme := smpc.ShamirScheme
		if cfg.Security == SecuritySMPCFullThreshold {
			scheme = smpc.FullThreshold
		}
		nodes := cfg.SMPCNodes
		if nodes == 0 {
			nodes = 3
		}
		var err error
		cluster, err = smpc.NewCluster(smpc.Config{Scheme: scheme, Nodes: nodes, Seed: cfg.Seed})
		if err != nil {
			return nil, err
		}
		p.cluster = cluster
	}

	// Engine options shared by every worker DB and the master's transient
	// merge DBs, so a federated statement is governed at both ends.
	var masterOpts []engine.Option
	if cfg.EngineParallelism > 0 {
		masterOpts = append(masterOpts, engine.WithParallelism(cfg.EngineParallelism))
	}
	if cfg.QueryDeadline > 0 {
		masterOpts = append(masterOpts, engine.WithQueryDeadline(cfg.QueryDeadline))
	}
	if cfg.QueryMemLimit > 0 {
		masterOpts = append(masterOpts, engine.WithQueryMemLimit(cfg.QueryMemLimit))
	}
	if cfg.QuerySpillDir != "" {
		masterOpts = append(masterOpts, engine.WithSpillDir(cfg.QuerySpillDir))
	}
	// planCache is the cache this platform's DBs actually resolve
	// statements through; the API's /cache endpoints are pointed at the
	// same one (not blindly at the process default) below.
	planCache := engine.DefaultPlanCache
	if cfg.PlanCacheSize > 0 {
		// One cache shared by every worker DB and the master's transient
		// merge DBs (keys embed per-DB identity, so sharing is safe).
		planCache = engine.NewPlanCache(cfg.PlanCacheSize)
		masterOpts = append(masterOpts, engine.WithPlanCache(planCache))
	} else if cfg.PlanCacheSize < 0 {
		planCache = nil
		masterOpts = append(masterOpts, engine.WithPlanCache(nil))
	}

	var clients []federation.WorkerClient
	for _, wc := range cfg.Workers {
		if wc.Data == nil {
			return nil, fmt.Errorf("mip: worker %q has no data", wc.ID)
		}
		db := engine.NewDB(masterOpts...)
		db.RegisterTable(federation.DataTable, wc.Data)
		var opts []federation.WorkerOption
		if cluster != nil {
			opts = append(opts, federation.WithSMPC(cluster))
		}
		if wc.MinRows > 0 {
			opts = append(opts, federation.WithMinRows(wc.MinRows))
		}
		w := federation.NewWorker(wc.ID, db, opts...)
		p.workers = append(p.workers, w)
		clients = append(clients, w)
	}

	sec := federation.Security{UseSMPC: cfg.Security != SecurityOff}
	switch cfg.NoiseKind {
	case NoiseLaplace:
		sec.Noise = smpc.Noise{Kind: smpc.LaplaceNoise, Scale: cfg.NoiseScale}
	case NoiseGaussian:
		sec.Noise = smpc.Noise{Kind: smpc.GaussianNoise, Scale: cfg.NoiseScale}
	}
	masterOnly := []federation.MasterOption{
		federation.WithTolerance(cfg.Tolerance),
		federation.WithBreaker(cfg.Breaker),
		federation.WithEngineOptions(masterOpts...),
	}
	if cfg.ResultCacheBytes > 0 {
		masterOnly = append(masterOnly, federation.WithResultCacheBytes(cfg.ResultCacheBytes))
	}
	master, err := federation.NewMaster(clients, cluster, sec, masterOnly...)
	if err != nil {
		return nil, err
	}
	p.master = master

	qw := cfg.QueueWorkers
	if qw == 0 {
		qw = 2
	}
	p.runner = queue.NewRunner(queue.NewBroker(0, 0), qw)
	p.api = apiserver.NewServer(master, p.cat, p.runner)
	p.api.SetPlanCache(planCache)

	p.noisy = cfg.NoiseKind != NoiseNone && cfg.NoiseScale > 0
	if cfg.PrivacyBudget > 0 {
		delta := cfg.PrivacyDelta
		if delta == 0 {
			delta = 1e-5
		}
		p.accountant = dp.NewAccountant(cfg.PrivacyBudget, delta)
		p.epsPerRun = cfg.EpsilonPerRun
		if p.epsPerRun == 0 {
			p.epsPerRun = 0.1
		}
		p.deltaPer = cfg.DeltaPerRun
		if p.deltaPer == 0 {
			p.deltaPer = delta / 100
		}
	}
	return p, nil
}

// PrivacySpent reports the accountant's cumulative (ε, δ); zeros when no
// budget is configured.
func (p *Platform) PrivacySpent() (eps, delta float64) {
	if p.accountant == nil {
		return 0, 0
	}
	return p.accountant.Spent()
}

// Close stops the platform's background workers immediately. In-flight
// experiments are abandoned; use Shutdown for a graceful drain.
func (p *Platform) Close() {
	if p.runner != nil {
		p.runner.Close()
	}
	if p.api != nil {
		p.api.AbortPending("platform closed")
	}
	if p.master != nil {
		p.master.Close()
	}
}

// Shutdown drains the platform gracefully: the queue runner stops
// accepting work and waits (up to ctx's deadline) for in-flight
// experiments to finish, then anything still non-terminal is marked
// errored so pollers see a final state.
func (p *Platform) Shutdown(ctx context.Context) error {
	var err error
	if p.runner != nil {
		err = p.runner.Shutdown(ctx)
	}
	if p.api != nil {
		p.api.AbortPending("platform shut down")
	}
	if p.master != nil {
		p.master.Close()
	}
	return err
}

// Algorithms lists the installed algorithm specifications.
func (p *Platform) Algorithms() []AlgorithmSpec { return algorithms.Specs() }

// Datasets reports dataset → worker availability, as the master tracks it.
func (p *Platform) Datasets() map[string][]string { return p.master.Availability() }

// RunExperiment executes an algorithm synchronously on the federation.
// When a privacy budget is configured and the deployment injects DP noise,
// each run spends from the accountant; an exhausted budget refuses the run.
func (p *Platform) RunExperiment(algorithm string, req Request) (Result, error) {
	alg := algorithms.Get(algorithm)
	if alg == nil {
		return nil, fmt.Errorf("mip: unknown algorithm %q (have %v)", algorithm, algorithms.Names())
	}
	if p.accountant != nil && p.noisy {
		if err := p.accountant.Spend(p.epsPerRun, p.deltaPer); err != nil {
			return nil, fmt.Errorf("mip: %w (spent ε so far: %.3g)", err, spentEps(p.accountant))
		}
	}
	sess, err := p.master.NewSession(req.Datasets)
	if err != nil {
		return nil, err
	}
	return algorithms.Run(alg, sess, req)
}

func spentEps(a *dp.Accountant) float64 {
	e, _ := a.Spent()
	return e
}

// MergeQuery runs an aggregate SQL over the federation's merge view of the
// data tables (non-secure path; aggregates are pushed down to workers).
func (p *Platform) MergeQuery(datasets []string, sql string) (*Table, error) {
	return p.master.MergeQuery(datasets, sql)
}

// Handler returns the REST API handler (mount it on any server).
func (p *Platform) Handler() http.Handler { return p.api.Handler() }

// APIServer exposes the underlying API server (polling helpers).
func (p *Platform) APIServer() *apiserver.Server { return p.api }

// Master exposes the federation master for advanced orchestration.
func (p *Platform) Master() *federation.Master { return p.master }

// SMPCStats reports the SMPC cluster's simulated traffic counters (zero
// values when security is off).
func (p *Platform) SMPCStats() (messages int, bytes int64) {
	if p.cluster == nil {
		return 0, 0
	}
	s := p.cluster.NetStats()
	return s.Messages, s.Bytes
}

// Catalogue exposes the metadata catalogue.
func (p *Platform) Catalogue() *catalogue.Catalogue { return p.cat }
