package mip

import (
	"math"
	"strings"
	"testing"
)

func demoPlatform(t *testing.T, sec SecurityMode) *Platform {
	t.Helper()
	var workers []WorkerConfig
	for i, id := range []string{"hospital-a", "hospital-b", "hospital-c"} {
		tab, err := GenerateCohort(SynthSpec{Dataset: "edsd", Rows: 150, Seed: int64(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, WorkerConfig{ID: id, Data: tab})
	}
	p, err := New(Config{Workers: workers, Security: sec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func TestPlatformLifecycle(t *testing.T) {
	p := demoPlatform(t, SecurityOff)
	if len(p.Algorithms()) < 15 {
		t.Fatalf("algorithms = %d", len(p.Algorithms()))
	}
	ds := p.Datasets()
	if len(ds["edsd"]) != 3 {
		t.Fatalf("datasets = %v", ds)
	}
}

func TestPlatformRunExperiment(t *testing.T) {
	p := demoPlatform(t, SecurityOff)
	res, err := p.RunExperiment("pearson_correlation", Request{
		Datasets: []string{"edsd"},
		Y:        []string{"minimentalstate"},
		X:        []string{"lefthippocampus"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res["correlations"] == nil {
		t.Fatal("no correlations in result")
	}
	if _, err := p.RunExperiment("ghost", Request{}); err == nil ||
		!strings.Contains(err.Error(), "unknown algorithm") {
		t.Fatalf("unknown algorithm error = %v", err)
	}
}

func TestPlatformSecureMatchesPlain(t *testing.T) {
	plain := demoPlatform(t, SecurityOff)
	secure := demoPlatform(t, SecuritySMPCShamir)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"ab42"},
	}
	rp, err := plain.RunExperiment("ttest_onesample", req)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := secure.RunExperiment("ttest_onesample", req)
	if err != nil {
		t.Fatal(err)
	}
	mp := rp["mean"].(float64)
	ms := rs["mean"].(float64)
	if math.Abs(mp-ms) > 1e-3*(1+math.Abs(mp)) {
		t.Fatalf("secure mean %v vs plain %v", ms, mp)
	}
	if msgs, bytes := secure.SMPCStats(); msgs == 0 || bytes == 0 {
		t.Fatal("secure run must produce SMPC traffic")
	}
	if msgs, _ := plain.SMPCStats(); msgs != 0 {
		t.Fatal("plain run must not produce SMPC traffic")
	}
}

func TestPlatformMergeQuery(t *testing.T) {
	p := demoPlatform(t, SecurityOff)
	res, err := p.MergeQuery(nil, "SELECT count(*) AS n FROM data")
	if err != nil {
		t.Fatal(err)
	}
	n := res.Col(0).CastFloat64().Float64s()[0]
	if n != 450 {
		t.Fatalf("merge count = %v", n)
	}
}

func TestPlatformDPNoise(t *testing.T) {
	var workers []WorkerConfig
	for i := 0; i < 2; i++ {
		tab, _ := GenerateCohort(SynthSpec{Dataset: "edsd", Rows: 200, Seed: int64(i + 9)})
		workers = append(workers, WorkerConfig{ID: string(rune('a' + i)), Data: tab})
	}
	p, err := New(Config{
		Workers: workers, Security: SecuritySMPCShamir,
		NoiseKind: NoiseGaussian, NoiseScale: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// Two identical runs should differ (noise) but stay near the truth.
	r1, err := p.RunExperiment("ttest_onesample", Request{Datasets: []string{"edsd"}, Y: []string{"ab42"}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.RunExperiment("ttest_onesample", Request{Datasets: []string{"edsd"}, Y: []string{"ab42"}})
	if err != nil {
		t.Fatal(err)
	}
	m1 := r1["mean"].(float64)
	m2 := r2["mean"].(float64)
	if m1 == m2 {
		t.Fatal("DP noise should make repeated runs differ")
	}
	if math.Abs(m1-m2) > 100 {
		t.Fatalf("noise too large: %v vs %v", m1, m2)
	}
}

func TestPlatformValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config must fail")
	}
	if _, err := New(Config{Workers: []WorkerConfig{{ID: "x"}}}); err == nil {
		t.Fatal("worker without data must fail")
	}
}

func TestHarmonizeCSV(t *testing.T) {
	csv := "age_years,dx\n70,alzheimer\n65,control\n72,alzheimer\n"
	m := ETLMapping{
		Dataset: "siteZ",
		Rules: []ETLRule{
			{Source: "age_years", Target: "subjectageyears"},
			{Source: "dx", Target: "alzheimerbroadcategory",
				Recode: map[string]string{"alzheimer": "AD", "control": "CN"}},
		},
	}
	tab, report, err := HarmonizeCSV(strings.NewReader(csv), m, "dementia")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 3 || report.RowsOut != 3 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	dx, _ := tab.StringColumn("alzheimerbroadcategory")
	if dx[0] != "AD" || dx[1] != "CN" {
		t.Fatalf("recoded dx = %v", dx)
	}
}

func TestGenerators(t *testing.T) {
	uc, err := GenerateUseCase(1)
	if err != nil {
		t.Fatal(err)
	}
	if uc["brescia"].NumRows() != 1960 {
		t.Fatalf("brescia rows = %d", uc["brescia"].NumRows())
	}
	sv, err := GenerateSurvival(SurvivalSpec{Dataset: "e", Rows: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sv.NumRows() != 100 {
		t.Fatalf("survival rows = %d", sv.NumRows())
	}
}

func TestPrivacyBudgetAccounting(t *testing.T) {
	var workers []WorkerConfig
	tab, _ := GenerateCohort(SynthSpec{Dataset: "edsd", Rows: 120, Seed: 2})
	tab2, _ := GenerateCohort(SynthSpec{Dataset: "edsd", Rows: 120, Seed: 3})
	workers = append(workers,
		WorkerConfig{ID: "a", Data: tab}, WorkerConfig{ID: "b", Data: tab2})
	p, err := New(Config{
		Workers: workers, Security: SecuritySMPCShamir,
		NoiseKind: NoiseGaussian, NoiseScale: 1,
		PrivacyBudget: 0.3, EpsilonPerRun: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	req := Request{Datasets: []string{"edsd"}, Y: []string{"ab42"}}
	for i := 0; i < 3; i++ {
		if _, err := p.RunExperiment("ttest_onesample", req); err != nil {
			t.Fatalf("run %d within budget failed: %v", i, err)
		}
	}
	if _, err := p.RunExperiment("ttest_onesample", req); err == nil {
		t.Fatal("exhausted budget must refuse the run")
	}
	eps, _ := p.PrivacySpent()
	if math.Abs(eps-0.3) > 1e-9 {
		t.Fatalf("spent eps = %v", eps)
	}
	// Noiseless platforms never spend.
	p2 := demoPlatform(t, SecurityOff)
	p2.RunExperiment("ttest_onesample", req)
	if e, _ := p2.PrivacySpent(); e != 0 {
		t.Fatalf("noiseless platform spent %v", e)
	}
}
