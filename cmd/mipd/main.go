// Command mipd runs a MIP deployment in one process: a master, N workers
// loaded with synthetic or CSV cohorts, an optional SMPC cluster, and the
// REST API the dashboard (or mipctl) talks to.
//
// Usage:
//
//	mipd [-addr :8080] [-workers 3] [-rows 300] [-security off|shamir|ft]
//	     [-noise none|laplace|gaussian] [-noise-scale 0]
//	     [-csv dir]   # load <dir>/<worker>.csv instead of synthetic data
//
// With -csv, each file must be a harmonized CSV (header row; a "dataset"
// column). Without it, workers get synthetic EDSD-like shards.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"mip"
)

func main() {
	addr := flag.String("addr", ":8080", "REST API listen address")
	nWorkers := flag.Int("workers", 3, "number of workers (synthetic mode)")
	rows := flag.Int("rows", 300, "rows per synthetic worker")
	security := flag.String("security", "off", "aggregation security: off | shamir | ft")
	noise := flag.String("noise", "none", "in-protocol DP noise: none | laplace | gaussian")
	noiseScale := flag.Float64("noise-scale", 0, "noise scale (Laplace b or Gaussian sigma)")
	csvDir := flag.String("csv", "", "directory of per-worker harmonized CSV files")
	seed := flag.Int64("seed", 1, "synthetic data seed")
	flag.Parse()

	cfg := mip.Config{Seed: *seed}
	switch strings.ToLower(*security) {
	case "off":
		cfg.Security = mip.SecurityOff
	case "shamir":
		cfg.Security = mip.SecuritySMPCShamir
	case "ft":
		cfg.Security = mip.SecuritySMPCFullThreshold
	default:
		log.Fatalf("unknown -security %q", *security)
	}
	switch strings.ToLower(*noise) {
	case "none":
	case "laplace":
		cfg.NoiseKind = mip.NoiseLaplace
		cfg.NoiseScale = *noiseScale
	case "gaussian":
		cfg.NoiseKind = mip.NoiseGaussian
		cfg.NoiseScale = *noiseScale
	default:
		log.Fatalf("unknown -noise %q", *noise)
	}

	if *csvDir != "" {
		files, err := filepath.Glob(filepath.Join(*csvDir, "*.csv"))
		if err != nil || len(files) == 0 {
			log.Fatalf("no CSV files in %q", *csvDir)
		}
		for _, f := range files {
			tab, err := mip.LoadCSVTable(f)
			if err != nil {
				log.Fatalf("loading %s: %v", f, err)
			}
			id := strings.TrimSuffix(filepath.Base(f), ".csv")
			cfg.Workers = append(cfg.Workers, mip.WorkerConfig{ID: id, Data: tab})
			log.Printf("worker %s: %d rows from %s", id, tab.NumRows(), f)
		}
	} else {
		for i := 0; i < *nWorkers; i++ {
			tab, err := mip.GenerateCohort(mip.SynthSpec{
				Dataset: "edsd", Rows: *rows, Seed: *seed + int64(i),
				MissingRate: 0.05, Shift: float64(i) * 0.3,
			})
			if err != nil {
				log.Fatal(err)
			}
			id := fmt.Sprintf("hospital-%d", i)
			cfg.Workers = append(cfg.Workers, mip.WorkerConfig{ID: id, Data: tab})
			log.Printf("worker %s: %d synthetic rows", id, tab.NumRows())
		}
	}

	platform, err := mip.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	log.Printf("MIP master up: %d workers, security=%s", len(cfg.Workers), *security)
	log.Printf("REST API listening on %s (try GET /algorithms, POST /experiments)", *addr)
	if err := http.ListenAndServe(*addr, platform.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
