// Command mipd runs a MIP deployment in one process: a master, N workers
// loaded with synthetic or CSV cohorts, an optional SMPC cluster, and the
// REST API the dashboard (or mipctl) talks to.
//
// Usage:
//
//	mipd [-addr :8080] [-workers 3] [-rows 300] [-security off|shamir|ft]
//	     [-noise none|laplace|gaussian] [-noise-scale 0]
//	     [-csv dir]   # load <dir>/<worker>.csv instead of synthetic data
//	     [-debug-addr :6060]  # pprof + metrics on a private listener
//	     [-min-workers 0] [-quorum 0] [-step-deadline 0]  # fault tolerance
//	     [-slow-query 250ms]  # slow-query log threshold (GET /queries/slow)
//	     [-audit-log path]    # append the tamper-evident audit trail as JSONL
//	     [-engine-parallelism 0]  # intra-query parallelism per worker (0 = NumCPU)
//	     [-query-deadline 0]   # per-statement wall-time ceiling (0 = unbounded)
//	     [-query-mem-limit 0]  # per-statement accounted-bytes ceiling (0 = unbounded)
//	     [-query-spill-dir ""] # with a mem limit: spill joins/aggregates here instead of cancelling
//	     [-plan-cache-size 256]   # engine plan cache capacity (0 disables)
//	     [-result-cache-bytes 0]  # master result cache byte budget (0 disables)
//
// The fault-tolerance flags let plain-path experiments degrade to a partial
// aggregate instead of failing when workers die mid-step: -min-workers and
// -quorum (a 0-1 fraction) set the quorum, -step-deadline bounds how long a
// step waits for stragglers. All zero (the default) keeps strict semantics.
//
// With -csv, each file must be a harmonized CSV (header row; a "dataset"
// column). Without it, workers get synthetic EDSD-like shards.
//
// The API itself serves GET /metrics (Prometheus text format) and
// GET /experiments/{uuid}/trace (span tree). -debug-addr additionally
// exposes net/http/pprof profiles on a separate, typically non-public,
// listener. SIGINT/SIGTERM trigger a graceful drain: the HTTP server stops
// accepting connections and running experiments get up to 30s to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"mip"
	"mip/internal/engine"
	"mip/internal/obs"
)

// logger emits mipd's structured JSON records (stderr, like every MIP
// process); fatal logs and exits for startup errors.
var logger = obs.Logger("mipd")

func fatal(msg string, args ...any) {
	logger.Error(msg, args...)
	os.Exit(1)
}

func main() {
	addr := flag.String("addr", ":8080", "REST API listen address")
	debugAddr := flag.String("debug-addr", "", "optional pprof/metrics listen address (e.g. :6060)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	nWorkers := flag.Int("workers", 3, "number of workers (synthetic mode)")
	rows := flag.Int("rows", 300, "rows per synthetic worker")
	security := flag.String("security", "off", "aggregation security: off | shamir | ft")
	noise := flag.String("noise", "none", "in-protocol DP noise: none | laplace | gaussian")
	noiseScale := flag.Float64("noise-scale", 0, "noise scale (Laplace b or Gaussian sigma)")
	csvDir := flag.String("csv", "", "directory of per-worker harmonized CSV files")
	seed := flag.Int64("seed", 1, "synthetic data seed")
	minWorkers := flag.Int("min-workers", 0, "minimum workers for a degraded plain-path result (0 = all required)")
	quorum := flag.Float64("quorum", 0, "quorum fraction of session workers for degraded results (0 = all required)")
	stepDeadline := flag.Duration("step-deadline", 0, "per-step straggler deadline before dropping slow workers (0 = wait forever)")
	slowQuery := flag.Duration("slow-query", engine.DefaultSlowLog.Threshold(), "engine slow-query log threshold (see GET /queries/slow)")
	auditLog := flag.String("audit-log", "", "append hash-chained audit records to this JSONL file (see GET /audit)")
	enginePar := flag.Int("engine-parallelism", 0, "intra-query parallelism per worker engine (0 = NumCPU); results are identical at any value")
	queryDeadline := flag.Duration("query-deadline", 0, "cancel engine statements running longer than this (0 = unbounded); see GET /queries/active")
	queryMemLimit := flag.Int64("query-mem-limit", 0, "per-statement memory budget in bytes (0 = unbounded); without -query-spill-dir, statements over it are cancelled")
	querySpillDir := flag.String("query-spill-dir", "", "spill directory: with -query-mem-limit, budget-crossing joins/aggregates partition to disk here and keep running")
	planCacheSize := flag.Int("plan-cache-size", 256, "engine plan cache capacity in statements (0 disables); see GET /cache")
	resultCacheBytes := flag.Int64("result-cache-bytes", 0, "federated result cache byte budget on the master (0 disables); see GET /cache")
	flag.Parse()

	engine.DefaultSlowLog.SetThreshold(*slowQuery)
	engine.SetDefaultPlanCacheSize(*planCacheSize)
	if *enginePar > 0 {
		engine.SetDefaultParallelism(*enginePar)
	}
	if *auditLog != "" {
		// O_APPEND: restarts extend the existing chain file; VerifyChain
		// accepts a file that starts mid-chain, so rotation is safe too.
		f, err := os.OpenFile(*auditLog, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fatal("opening audit log failed", "file", *auditLog, "err", err.Error())
		}
		defer f.Close()
		obs.DefaultAudit.SetSink(f)
		logger.Info("audit trail sink attached", "file", *auditLog)
	}

	cfg := mip.Config{Seed: *seed, EngineParallelism: *enginePar,
		QueryDeadline: *queryDeadline, QueryMemLimit: *queryMemLimit, QuerySpillDir: *querySpillDir,
		ResultCacheBytes: *resultCacheBytes}
	cfg.Tolerance = mip.Tolerance{MinWorkers: *minWorkers, Quorum: *quorum, StepDeadline: *stepDeadline}
	switch strings.ToLower(*security) {
	case "off":
		cfg.Security = mip.SecurityOff
	case "shamir":
		cfg.Security = mip.SecuritySMPCShamir
	case "ft":
		cfg.Security = mip.SecuritySMPCFullThreshold
	default:
		fatal("unknown -security value", "security", *security)
	}
	switch strings.ToLower(*noise) {
	case "none":
	case "laplace":
		cfg.NoiseKind = mip.NoiseLaplace
		cfg.NoiseScale = *noiseScale
	case "gaussian":
		cfg.NoiseKind = mip.NoiseGaussian
		cfg.NoiseScale = *noiseScale
	default:
		fatal("unknown -noise value", "noise", *noise)
	}

	if *csvDir != "" {
		files, err := filepath.Glob(filepath.Join(*csvDir, "*.csv"))
		if err != nil || len(files) == 0 {
			fatal("no CSV files found", "dir", *csvDir)
		}
		for _, f := range files {
			tab, err := mip.LoadCSVTable(f)
			if err != nil {
				fatal("loading CSV failed", "file", f, "err", err.Error())
			}
			id := strings.TrimSuffix(filepath.Base(f), ".csv")
			cfg.Workers = append(cfg.Workers, mip.WorkerConfig{ID: id, Data: tab})
			logger.Info("worker loaded", "worker", id, "rows", tab.NumRows(), "file", f)
		}
	} else {
		for i := 0; i < *nWorkers; i++ {
			tab, err := mip.GenerateCohort(mip.SynthSpec{
				Dataset: "edsd", Rows: *rows, Seed: *seed + int64(i),
				MissingRate: 0.05, Shift: float64(i) * 0.3,
			})
			if err != nil {
				fatal("generating synthetic cohort failed", "err", err.Error())
			}
			id := fmt.Sprintf("hospital-%d", i)
			cfg.Workers = append(cfg.Workers, mip.WorkerConfig{ID: id, Data: tab})
			logger.Info("worker loaded", "worker", id, "rows", tab.NumRows(), "synthetic", true)
		}
	}

	platform, err := mip.New(cfg)
	if err != nil {
		fatal("platform startup failed", "err", err.Error())
	}

	if *debugAddr != "" {
		go serveDebug(*debugAddr)
	}

	srv := &http.Server{Addr: *addr, Handler: platform.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	logger.Info("MIP master up", "workers", len(cfg.Workers), "security", *security,
		"slow_query_threshold", slowQuery.String())
	logger.Info("REST API listening", "addr", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		platform.Close()
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second ^C kills immediately

	logger.Info("shutting down", "drain", drain.String())
	deadline, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(deadline); err != nil {
		logger.Warn("http shutdown", "err", err.Error())
	}
	if err := platform.Shutdown(deadline); err != nil {
		logger.Warn("drain incomplete: unfinished experiments marked error", "err", err.Error())
	}
	logger.Info("bye")
}

// serveDebug exposes pprof profiles and the metrics registry on a separate
// listener, mounted on an explicit mux so nothing leaks onto the API server.
func serveDebug(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", obs.MetricsHandler())
	logger.Info("debug listener up (pprof, metrics)", "addr", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Warn("debug listener", "err", err.Error())
	}
}
