// Command mipctl is the CLI client for a running mipd: it lists
// algorithms, datasets and variables, submits experiments and polls them
// to completion — the scientist's workflow from the paper's Figures 4-5,
// without the browser.
//
// Usage:
//
//	mipctl [-server http://localhost:8080] algorithms
//	mipctl datasets
//	mipctl variables [-pathology dementia] [-search hippocampus]
//	mipctl experiments
//	mipctl run -algorithm linear_regression -datasets edsd \
//	       -y minimentalstate -x lefthippocampus,subjectageyears \
//	       [-param k=3] [-param pos_level=AD] [-filter "age > 60"]
//	mipctl health
//	mipctl workers            # per-worker circuit state and datasets
//	mipctl trace exp-000001   # render the experiment's span tree
//	mipctl explain [-analyze] [-datasets edsd] "SELECT avg(age) FROM data"
//	mipctl slow               # the server's slow-query log
//	mipctl top [-interval 1s] [-iterations 0]   # live active-query view
//	mipctl kill 42            # cancel an active query by id
//	mipctl tenants            # per-tenant usage accounts and SLO windows
//	mipctl audit [-tenant alice] [-dataset edsd] [-limit 50]   # audit trail
//	mipctl cache              # plan-cache and result-cache hit/miss stats
//	mipctl cache flush        # drop both cache tiers (audited)
//
// run and explain accept -tenant to attribute the work to a usage account
// (shown by mipctl tenants and joinable against mipctl audit).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	neturl "net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	server := flag.String("server", "http://localhost:8080", "mipd base URL")
	algorithm := flag.String("algorithm", "", "algorithm name (run)")
	datasets := flag.String("datasets", "", "comma-separated datasets (run)")
	yvars := flag.String("y", "", "comma-separated Y variables (run)")
	xvars := flag.String("x", "", "comma-separated X variables (run)")
	filter := flag.String("filter", "", "SQL filter (run)")
	pathology := flag.String("pathology", "dementia", "pathology (variables)")
	search := flag.String("search", "", "variable search query (variables)")
	name := flag.String("name", "", "experiment name (run)")
	analyze := flag.Bool("analyze", false, "execute the query and report measured stats (explain)")
	interval := flag.Duration("interval", time.Second, "refresh interval (top)")
	iterations := flag.Int("iterations", 0, "refresh count before exiting, 0 = forever (top)")
	tenant := flag.String("tenant", "", "tenant account to attribute or filter by (run, explain, audit)")
	dataset := flag.String("dataset", "", "dataset filter (audit)")
	limit := flag.Int("limit", 0, "max records, keeping the newest (audit)")
	var params multiFlag
	flag.Var(&params, "param", "algorithm parameter key=value (repeatable)")
	flag.Parse()

	cmd := flag.Arg(0)
	// The flag package stops at the first positional argument, so flags
	// placed after the subcommand (mipctl run -algorithm …) would be lost;
	// re-parse the remainder. subArgs holds the subcommand's positionals.
	var subArgs []string
	if rest := flag.Args(); len(rest) > 1 {
		if err := flag.CommandLine.Parse(rest[1:]); err != nil {
			os.Exit(2)
		}
		subArgs = flag.Args()
	}
	switch cmd {
	case "algorithms":
		get(*server+"/algorithms", prettyPrint)
	case "datasets":
		get(*server+"/datasets", prettyPrint)
	case "variables":
		url := fmt.Sprintf("%s/pathologies/%s/variables", *server, *pathology)
		if *search != "" {
			url += "?search=" + *search
		}
		get(url, prettyPrint)
	case "experiments":
		get(*server+"/experiments", prettyPrint)
	case "run":
		runExperiment(*server, *name, *tenant, *algorithm, *datasets, *yvars, *xvars, *filter, params)
	case "workflows":
		get(*server+"/workflows", prettyPrint)
	case "workflow":
		runWorkflow(*server, *name, subArgs)
	case "health":
		get(*server+"/healthz", printHealth)
	case "workers":
		get(*server+"/workers", printWorkers)
	case "trace":
		if len(subArgs) == 0 {
			log.Fatal("trace needs an experiment uuid")
		}
		get(*server+"/experiments/"+subArgs[0]+"/trace", printTrace)
	case "explain":
		if len(subArgs) == 0 {
			log.Fatal(`explain needs a SQL query (against the federated "data" view)`)
		}
		explainQuery(*server, strings.Join(subArgs, " "), *datasets, *tenant, *analyze)
	case "slow":
		get(*server+"/queries/slow", printSlow)
	case "top":
		topQueries(*server, *interval, *iterations)
	case "kill":
		if len(subArgs) == 0 {
			log.Fatal("kill needs a query id (see mipctl top)")
		}
		killQuery(*server, subArgs[0])
	case "tenants":
		get(*server+"/tenants", printTenants)
	case "audit":
		url := *server + "/audit"
		q := neturl.Values{}
		if *tenant != "" {
			q.Set("tenant", *tenant)
		}
		if *dataset != "" {
			q.Set("dataset", *dataset)
		}
		if *limit > 0 {
			q.Set("limit", strconv.Itoa(*limit))
		}
		if len(q) > 0 {
			url += "?" + q.Encode()
		}
		get(url, printAudit)
	case "cache":
		if len(subArgs) > 0 && subArgs[0] == "flush" {
			flushCache(*server, *tenant)
		} else {
			get(*server+"/cache", printCache)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: mipctl [flags] algorithms|datasets|variables|experiments|workflows|run|workflow|health|workers|trace|explain|slow|top|kill|tenants|audit|cache")
		os.Exit(2)
	}
}

// explainQuery asks the master to plan (or profile, with -analyze) a
// federated query over the workers' merge view and prints the plan tree.
func explainQuery(server, sql, datasets, tenant string, analyze bool) {
	req := map[string]any{"sql": sql, "analyze": analyze}
	if ds := splitList(datasets); len(ds) > 0 {
		req["datasets"] = ds
	}
	if tenant != "" {
		req["tenant"] = tenant
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(server+"/queries/explain", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, out)
	}
	var doc struct {
		Datasets []string `json:"datasets"`
		Plan     []string `json:"plan"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("datasets: %s\n", strings.Join(doc.Datasets, ","))
	for _, line := range doc.Plan {
		fmt.Println(line)
	}
}

// printSlow renders GET /queries/slow: one header line per retained query
// followed by its captured plan.
func printSlow(body []byte) {
	var doc struct {
		ThresholdSeconds float64 `json:"threshold_seconds"`
		Queries          []struct {
			SQL          string   `json:"sql"`
			Seconds      float64  `json:"seconds"`
			RowsScanned  int      `json:"rows_scanned"`
			RowsOut      int      `json:"rows_out"`
			Error        string   `json:"error"`
			When         string   `json:"when"`
			Plan         []string `json:"plan"`
			MemPeakBytes int64    `json:"mem_peak_bytes"`
			SpillBytes   int64    `json:"spill_bytes"`
			Reason       string   `json:"reason"`
			Cache        string   `json:"cache"`
			Tenant       string   `json:"tenant"`
			Job          string   `json:"job"`
			Datasets     []string `json:"datasets"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		fmt.Println(string(body))
		return
	}
	fmt.Printf("slow-query threshold: %.3fs, %d retained\n", doc.ThresholdSeconds, len(doc.Queries))
	for _, q := range doc.Queries {
		fmt.Printf("\n%s  %.3fs  rows %d->%d", q.When, q.Seconds, q.RowsScanned, q.RowsOut)
		if q.MemPeakBytes > 0 {
			fmt.Printf("  mem_peak=%s", formatBytes(q.MemPeakBytes))
		}
		if q.SpillBytes > 0 {
			fmt.Printf("  spill=%s", formatBytes(q.SpillBytes))
		}
		if q.Reason != "" {
			fmt.Printf("  reason=%s", q.Reason)
		}
		if q.Cache != "" {
			fmt.Printf("  cache=%s", q.Cache)
		}
		if q.Tenant != "" {
			fmt.Printf("  tenant=%s", q.Tenant)
		}
		if q.Job != "" {
			fmt.Printf("  job=%s", q.Job)
		}
		if len(q.Datasets) > 0 {
			fmt.Printf("  datasets=%s", strings.Join(q.Datasets, ","))
		}
		fmt.Printf("  %s\n", q.SQL)
		if q.Error != "" {
			fmt.Printf("  ERROR: %s\n", q.Error)
		}
		for _, line := range q.Plan {
			fmt.Printf("  %s\n", line)
		}
	}
}

// activeQuery mirrors the server's engine.QueryInfo JSON.
type activeQuery struct {
	ID         int64   `json:"id"`
	SQL        string  `json:"sql"`
	Tenant     string  `json:"tenant"`
	Job        string  `json:"job"`
	Seconds    float64 `json:"seconds"`
	Rows       int64   `json:"rows"`
	LiveBytes  int64   `json:"live_bytes"`
	PeakBytes  int64   `json:"peak_bytes"`
	SpillBytes int64   `json:"spill_bytes"`
	Operator   string  `json:"operator"`
}

// topQueries polls GET /queries/active and renders a live, top-style view:
// one line per in-flight statement with age, rows, accounted memory and the
// operator it is currently inside. iterations 0 refreshes until interrupted.
func topQueries(server string, interval time.Duration, iterations int) {
	for i := 0; iterations == 0 || i < iterations; i++ {
		if i > 0 {
			time.Sleep(interval)
		}
		var doc struct {
			Queries []activeQuery `json:"queries"`
		}
		get(server+"/queries/active", func(b []byte) {
			if err := json.Unmarshal(b, &doc); err != nil {
				log.Fatal(err)
			}
		})
		fmt.Print("\033[H\033[2J") // clear screen, cursor home
		fmt.Printf("%s  %d active quer%s (refresh %s; kill with: mipctl kill <id>)\n",
			time.Now().Format("15:04:05"), len(doc.Queries), plural(len(doc.Queries), "y", "ies"), interval)
		fmt.Printf("%4s  %8s  %10s  %10s  %10s  %10s  %-24s  %s\n",
			"ID", "AGE", "ROWS", "LIVE", "PEAK", "SPILL", "OPERATOR", "SQL")
		for _, q := range doc.Queries {
			sql := q.SQL
			switch {
			case q.Tenant != "" && q.Job != "":
				sql = "[" + q.Tenant + " " + q.Job + "] " + sql
			case q.Tenant != "":
				sql = "[" + q.Tenant + "] " + sql
			case q.Job != "":
				sql = "[" + q.Job + "] " + sql
			}
			if len(sql) > 60 {
				sql = sql[:57] + "..."
			}
			fmt.Printf("%4d  %8s  %10d  %10s  %10s  %10s  %-24s  %s\n",
				q.ID, (time.Duration(q.Seconds * float64(time.Second))).Round(time.Millisecond),
				q.Rows, formatBytes(q.LiveBytes), formatBytes(q.PeakBytes), formatBytes(q.SpillBytes),
				q.Operator, sql)
		}
	}
}

// killQuery cancels an active query via DELETE /queries/{id}.
func killQuery(server, id string) {
	req, err := http.NewRequest(http.MethodDelete, server+"/queries/"+id, nil)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	fmt.Printf("query %s cancelled\n", id)
}

// printTenants renders GET /tenants: one block per account with cumulative
// meters and the sliding-window SLO stats.
func printTenants(body []byte) {
	var doc struct {
		Tenants []struct {
			Tenant       string    `json:"tenant"`
			Queries      int64     `json:"queries"`
			QueryErrors  int64     `json:"query_errors"`
			Experiments  int64     `json:"experiments"`
			Degraded     int64     `json:"degraded_experiments"`
			RowsShipped  int64     `json:"rows_shipped"`
			BytesShipped int64     `json:"bytes_shipped"`
			Seconds      float64   `json:"seconds"`
			MemPeakBytes int64     `json:"mem_peak_bytes"`
			LastSeen     time.Time `json:"last_seen"`
			Windows      map[string]struct {
				Count     uint64  `json:"count"`
				QPS       float64 `json:"qps"`
				ErrorRate float64 `json:"error_rate"`
				P50       float64 `json:"p50_seconds"`
				P95       float64 `json:"p95_seconds"`
				P99       float64 `json:"p99_seconds"`
			} `json:"windows"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		fmt.Println(string(body))
		return
	}
	fmt.Printf("%d tenant account%s\n", len(doc.Tenants), plural(len(doc.Tenants), "", "s"))
	for _, u := range doc.Tenants {
		fmt.Printf("\n%s  queries=%d errors=%d experiments=%d", u.Tenant, u.Queries, u.QueryErrors, u.Experiments)
		if u.Degraded > 0 {
			fmt.Printf(" degraded=%d", u.Degraded)
		}
		fmt.Printf("\n  shipped rows=%d bytes=%s  wall=%.3fs  mem_peak=%s  last_seen=%s\n",
			u.RowsShipped, formatBytes(u.BytesShipped), u.Seconds,
			formatBytes(u.MemPeakBytes), u.LastSeen.Format(time.RFC3339))
		names := make([]string, 0, len(u.Windows))
		for w := range u.Windows {
			names = append(names, w)
		}
		sort.Strings(names)
		for _, w := range names {
			s := u.Windows[w]
			fmt.Printf("  %-4s count=%d qps=%.2f err=%.1f%% p50=%.3fs p95=%.3fs p99=%.3fs\n",
				w, s.Count, s.QPS, 100*s.ErrorRate, s.P50, s.P95, s.P99)
		}
	}
}

// printAudit renders GET /audit: the verification verdict, then one line
// per record, oldest first.
func printAudit(body []byte) {
	var doc struct {
		Records []struct {
			Seq       uint64    `json:"seq"`
			Time      time.Time `json:"time"`
			Kind      string    `json:"kind"`
			Tenant    string    `json:"tenant"`
			Job       string    `json:"job"`
			SQLDigest string    `json:"sql_digest"`
			Datasets  []string  `json:"datasets"`
			Workers   []string  `json:"workers"`
			Dropped   []string  `json:"dropped_workers"`
			Verdict   string    `json:"verdict"`
			Seconds   float64   `json:"seconds"`
			Rows      int64     `json:"rows"`
		} `json:"records"`
		Verified    bool   `json:"verified"`
		VerifyError string `json:"verify_error"`
		HeadSeq     uint64 `json:"head_seq"`
		Head        string `json:"head"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		fmt.Println(string(body))
		return
	}
	status := "chain VERIFIED"
	if !doc.Verified {
		status = "chain BROKEN: " + doc.VerifyError
	}
	fmt.Printf("%d record%s, head seq=%d hash=%.16s...  %s\n",
		len(doc.Records), plural(len(doc.Records), "", "s"), doc.HeadSeq, doc.Head, status)
	for _, r := range doc.Records {
		fmt.Printf("%6d  %s  %-10s  %-12s  %-8s %7.3fs",
			r.Seq, r.Time.Format("15:04:05.000"), r.Kind, r.Tenant, r.Verdict, r.Seconds)
		if r.SQLDigest != "" {
			fmt.Printf("  sql=%s", r.SQLDigest)
		}
		if r.Job != "" {
			fmt.Printf("  job=%s", r.Job)
		}
		if len(r.Datasets) > 0 {
			fmt.Printf("  datasets=%s", strings.Join(r.Datasets, ","))
		}
		if len(r.Workers) > 0 {
			fmt.Printf("  workers=%s", strings.Join(r.Workers, ","))
		}
		if len(r.Dropped) > 0 {
			fmt.Printf("  dropped=%s", strings.Join(r.Dropped, ","))
		}
		if r.Rows > 0 {
			fmt.Printf("  rows=%d", r.Rows)
		}
		fmt.Println()
	}
}

// printCache renders GET /cache: one line per cache tier with hit rates.
func printCache(body []byte) {
	var doc struct {
		Plan struct {
			Capacity int   `json:"capacity"`
			Entries  int   `json:"entries"`
			Hits     int64 `json:"hits"`
			Misses   int64 `json:"misses"`
		} `json:"plan"`
		Result struct {
			BudgetBytes int64 `json:"budget_bytes"`
			Bytes       int64 `json:"bytes"`
			Entries     int   `json:"entries"`
			Hits        int64 `json:"hits"`
			Misses      int64 `json:"misses"`
			Evictions   int64 `json:"evictions"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		fmt.Println(string(body))
		return
	}
	rate := func(hits, misses int64) string {
		if hits+misses == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(hits)/float64(hits+misses))
	}
	p, r := doc.Plan, doc.Result
	fmt.Printf("plan cache    entries=%d/%d hits=%d misses=%d hit_rate=%s\n",
		p.Entries, p.Capacity, p.Hits, p.Misses, rate(p.Hits, p.Misses))
	fmt.Printf("result cache  entries=%d bytes=%s", r.Entries, formatBytes(r.Bytes))
	if r.BudgetBytes > 0 {
		fmt.Printf("/%s", formatBytes(r.BudgetBytes))
	}
	fmt.Printf(" hits=%d misses=%d evictions=%d hit_rate=%s\n",
		r.Hits, r.Misses, r.Evictions, rate(r.Hits, r.Misses))
}

// flushCache drops both cache tiers via POST /cache/flush, attributing the
// (audited) flush to -tenant when given.
func flushCache(server, tenant string) {
	req, err := http.NewRequest(http.MethodPost, server+"/cache/flush", nil)
	if err != nil {
		log.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-MIP-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var doc struct {
		Plan   int `json:"flushed_plan_entries"`
		Result int `json:"flushed_result_entries"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		fmt.Println(string(body))
		return
	}
	fmt.Printf("flushed %d plan entr%s, %d result entr%s\n",
		doc.Plan, plural(doc.Plan, "y", "ies"), doc.Result, plural(doc.Result, "y", "ies"))
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// formatBytes renders a byte count with a binary-unit suffix.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// printHealth renders the /healthz document as aligned key: value lines.
func printHealth(body []byte) {
	var h map[string]any
	if json.Unmarshal(body, &h) != nil {
		fmt.Println(string(body))
		return
	}
	keys := make([]string, 0, len(h))
	for k := range h {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		switch v := h[k].(type) {
		case float64:
			fmt.Printf("%-16s %s\n", k, strconv.FormatFloat(v, 'f', -1, 64))
		case map[string]any:
			enc, _ := json.Marshal(v)
			fmt.Printf("%-16s %s\n", k, enc)
		default:
			fmt.Printf("%-16s %v\n", k, v)
		}
	}
}

// printWorkers renders GET /workers as one line per worker: id, circuit
// state, hosted datasets, and the last error for unhealthy workers.
func printWorkers(body []byte) {
	var ws []struct {
		ID                  string   `json:"id"`
		State               string   `json:"state"`
		ConsecutiveFailures int      `json:"consecutive_failures"`
		LastError           string   `json:"last_error"`
		Datasets            []string `json:"datasets"`
	}
	if json.Unmarshal(body, &ws) != nil {
		fmt.Println(string(body))
		return
	}
	for _, w := range ws {
		fmt.Printf("%-16s %-9s datasets=%s", w.ID, w.State, strings.Join(w.Datasets, ","))
		if w.ConsecutiveFailures > 0 {
			fmt.Printf("  failures=%d", w.ConsecutiveFailures)
		}
		if w.LastError != "" {
			fmt.Printf("  last_error=%q", w.LastError)
		}
		fmt.Println()
	}
}

// span mirrors the server's SpanNode JSON (obs.SpanNode).
type span struct {
	Name     string            `json:"name"`
	SpanID   string            `json:"span_id"`
	Attrs    map[string]string `json:"attrs"`
	Err      string            `json:"error"`
	DurMS    float64           `json:"duration_ms"`
	Children []*span           `json:"children"`
}

// printTrace renders the span tree as an indented timing outline:
//
//	experiment linear_regression                      12.4ms
//	  localrun lr_local                                8.1ms  job_id=...
//	    worker hospital-0                              7.9ms  rows=300
//	      exec lr_local                                 7.2ms
func printTrace(body []byte) {
	var doc struct {
		TraceID string  `json:"trace_id"`
		Tree    []*span `json:"tree"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		log.Fatalf("decoding trace: %v", err)
	}
	if len(doc.Tree) == 0 {
		fmt.Printf("trace %s: no spans recorded\n", doc.TraceID)
		return
	}
	fmt.Printf("trace %s\n", doc.TraceID)
	for _, root := range doc.Tree {
		printSpan(root, 0)
	}
}

func printSpan(s *span, depth int) {
	indent := strings.Repeat("  ", depth)
	label := indent + s.Name
	fmt.Printf("%-48s %9.3fms", label, s.DurMS)
	keys := make([]string, 0, len(s.Attrs))
	for k := range s.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %s=%s", k, s.Attrs[k])
	}
	if s.Err != "" {
		fmt.Printf("  ERROR=%s", s.Err)
	}
	fmt.Println()
	for _, c := range s.Children {
		printSpan(c, depth+1)
	}
}

func get(url string, show func([]byte)) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	show(body)
}

func prettyPrint(body []byte) {
	var v any
	if json.Unmarshal(body, &v) == nil {
		out, _ := json.MarshalIndent(v, "", "  ")
		fmt.Println(string(out))
		return
	}
	fmt.Println(string(body))
}

func runExperiment(server, name, tenant, algorithm, datasets, y, x, filter string, params []string) {
	if algorithm == "" {
		log.Fatal("run needs -algorithm")
	}
	req := map[string]any{
		"name":      name,
		"algorithm": algorithm,
		"tenant":    tenant,
		"request": map[string]any{
			"datasets":   splitList(datasets),
			"y":          splitList(y),
			"x":          splitList(x),
			"filter":     filter,
			"parameters": parseParams(params),
		},
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(server+"/experiments", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	created, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 201 {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, created)
	}
	var exp struct {
		UUID   string `json:"uuid"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(created, &exp); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment %s submitted; polling...\n", exp.UUID)
	for {
		time.Sleep(200 * time.Millisecond)
		var full struct {
			Status string          `json:"status"`
			Error  string          `json:"error"`
			Result json.RawMessage `json:"result"`
		}
		get(server+"/experiments/"+exp.UUID, func(b []byte) { json.Unmarshal(b, &full) })
		switch full.Status {
		case "success":
			prettyPrint(full.Result)
			return
		case "error":
			log.Fatalf("experiment failed: %s", full.Error)
		default:
			fmt.Printf("  status: %s (your experiment is currently running)\n", full.Status)
		}
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseParams turns key=value flags into a parameter map, guessing types:
// numbers become numbers, comma lists become string lists, "k1:v1;k2:v2"
// nested lists become level maps.
func parseParams(params []string) map[string]any {
	out := map[string]any{}
	for _, p := range params {
		k, v, ok := strings.Cut(p, "=")
		if !ok {
			log.Fatalf("bad -param %q (want key=value)", p)
		}
		out[k] = guessValue(v)
	}
	return out
}

func guessValue(v string) any {
	if n, err := strconv.ParseFloat(v, 64); err == nil {
		return n
	}
	if strings.Contains(v, ";") { // levels map: var:l1|l2;var2:l1|l2
		m := map[string]any{}
		for _, pair := range strings.Split(v, ";") {
			name, lv, ok := strings.Cut(pair, ":")
			if !ok {
				continue
			}
			var levels []any
			for _, l := range strings.Split(lv, "|") {
				levels = append(levels, l)
			}
			m[name] = levels
		}
		return m
	}
	if strings.Contains(v, ",") {
		var list []any
		for _, e := range strings.Split(v, ",") {
			list = append(list, strings.TrimSpace(e))
		}
		return list
	}
	return v
}

// runWorkflow submits a chain of steps given as "alg:dataset:y[:x]"
// positional arguments and polls it to completion, e.g.
//
//	mipctl workflow descriptive_stats:edsd:ab42 pca:edsd:ab42,p_tau
func runWorkflow(server, name string, stepSpecs []string) {
	if len(stepSpecs) == 0 {
		log.Fatal("workflow needs at least one step (alg:datasets:y[:x])")
	}
	var steps []map[string]any
	for _, spec := range stepSpecs {
		parts := strings.Split(spec, ":")
		if len(parts) < 3 {
			log.Fatalf("bad step %q (want alg:datasets:y[:x])", spec)
		}
		req := map[string]any{
			"datasets": splitList(parts[1]),
			"y":        splitList(parts[2]),
		}
		if len(parts) > 3 {
			req["x"] = splitList(parts[3])
		}
		steps = append(steps, map[string]any{
			"name":      parts[0],
			"algorithm": parts[0],
			"request":   req,
		})
	}
	body, _ := json.Marshal(map[string]any{"name": name, "steps": steps})
	resp, err := http.Post(server+"/workflows", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	created, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 201 {
		log.Fatalf("HTTP %d: %s", resp.StatusCode, created)
	}
	var wf struct {
		UUID string `json:"uuid"`
	}
	if err := json.Unmarshal(created, &wf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow %s submitted; polling...\n", wf.UUID)
	for {
		time.Sleep(200 * time.Millisecond)
		var full struct {
			Status string          `json:"status"`
			Steps  json.RawMessage `json:"steps"`
		}
		get(server+"/workflows/"+wf.UUID, func(b []byte) { json.Unmarshal(b, &full) })
		if full.Status == "success" || full.Status == "error" {
			fmt.Printf("workflow %s: %s\n", wf.UUID, full.Status)
			prettyPrint(full.Steps)
			return
		}
		fmt.Printf("  status: %s\n", full.Status)
	}
}
