package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Minimal JSON-over-HTTP helpers for the REST experiments.

func postJSON(url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("POST %s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return fmt.Errorf("GET %s: HTTP %d: %s", url, resp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}
