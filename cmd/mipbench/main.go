// Command mipbench regenerates every experiment of EXPERIMENTS.md: one
// table/figure per experiment id, mapped to the paper's figures and claims
// (the paper's evaluation is descriptive, so each experiment reproduces a
// figure's content or a quantitative claim's shape — see DESIGN.md).
//
// Usage:
//
//	mipbench                              # run everything
//	mipbench -exp e5                      # one experiment
//	mipbench -list                        # list experiments
//	mipbench -bench-out BENCH_engine.json # perf suite → JSON report
//	mipbench -compare BENCH_engine.json   # perf suite → deltas vs baseline
//	                                      # (exit 1 above -threshold %)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// experiment is one registered benchmark.
type experiment struct {
	id    string
	title string
	run   func()
}

var experiments []experiment

func register(id, title string, run func()) {
	experiments = append(experiments, experiment{id, title, run})
}

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e18) or all")
	list := flag.Bool("list", false, "list experiments")
	benchOut := flag.String("bench-out", "", "run the perf benchmark suite and write the JSON report to this file")
	compare := flag.String("compare", "", "run the perf benchmark suite and print ns/op and allocs/op deltas vs this baseline JSON report")
	threshold := flag.Float64("threshold", 25, "with -compare: exit non-zero when any benchmark regresses more than this percentage")
	flag.Parse()

	if *benchOut != "" || *compare != "" {
		runPerfSuite(*benchOut, *compare, *threshold)
		return
	}

	sort.Slice(experiments, func(i, j int) bool {
		a, b := experiments[i].id, experiments[j].id
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-5s %s\n", e.id, e.title)
		}
		return
	}
	ran := 0
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		fmt.Printf("\n================================================================\n")
		fmt.Printf("%s — %s\n", strings.ToUpper(e.id), e.title)
		fmt.Printf("================================================================\n")
		e.run()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
}

// header prints a section line.
func header(format string, args ...any) {
	fmt.Printf("\n-- "+format+" --\n", args...)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
