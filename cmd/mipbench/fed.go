package main

import (
	"fmt"

	"mip"
	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/smpc"
	"mip/internal/synth"
)

// buildPlatform assembles an in-process federation of nWorkers synthetic
// EDSD shards of rowsEach rows.
func buildPlatform(nWorkers, rowsEach int, security mip.SecurityMode) *mip.Platform {
	var workers []mip.WorkerConfig
	base := 0
	for i := 0; i < nWorkers; i++ {
		tab, err := synth.Generate(synth.Spec{
			Dataset: "edsd", Rows: rowsEach, Seed: int64(1000 + i), Shift: float64(i) * 0.2,
		})
		fatalIf(err)
		workers = append(workers, mip.WorkerConfig{ID: fmt.Sprintf("w%d", i), Data: rekey(tab, base)})
		base += rowsEach
	}
	p, err := mip.New(mip.Config{Workers: workers, Security: security, Seed: 7})
	fatalIf(err)
	return p
}

// rekey renumbers row ids so they are globally unique across workers.
func rekey(t *engine.Table, base int) *engine.Table {
	out := engine.NewTable(t.Schema())
	for r := 0; r < t.NumRows(); r++ {
		row := t.Row(r)
		row[0] = int64(base + r)
		if err := out.AppendRow(row...); err != nil {
			fatalIf(err)
		}
	}
	return out
}

// generateCaseload builds one fixed synthetic caseload; the equivalence
// experiment splits the *same rows* across different worker counts.
func generateCaseload(totalRows int) *engine.Table {
	tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: totalRows, Seed: 424242})
	fatalIf(err)
	return tab
}

// splitPlatform deals the caseload's rows round-robin onto nWorkers.
func splitPlatform(caseload *engine.Table, nWorkers int) *mip.Platform {
	shards := make([]*engine.Table, nWorkers)
	for i := range shards {
		shards[i] = engine.NewTable(caseload.Schema())
	}
	for r := 0; r < caseload.NumRows(); r++ {
		fatalIf(shards[r%nWorkers].AppendRow(caseload.Row(r)...))
	}
	var workers []mip.WorkerConfig
	for i, s := range shards {
		workers = append(workers, mip.WorkerConfig{ID: fmt.Sprintf("w%d", i), Data: s})
	}
	p, err := mip.New(mip.Config{Workers: workers})
	fatalIf(err)
	return p
}

// newCluster builds a raw SMPC cluster for the protocol-level experiments.
func newCluster(scheme smpc.Scheme, nodes int) *smpc.Cluster {
	c, err := smpc.NewCluster(smpc.Config{Scheme: scheme, Nodes: nodes, Seed: 11})
	fatalIf(err)
	return c
}

// dataTableName is re-exported for readability in the experiment files.
const dataTableName = federation.DataTable
