package main

import (
	"fmt"
	"math"
	"time"

	"mip"
	"mip/internal/federation"
	"mip/internal/synth"
)

func init() {
	register("e1", "Figure 3: dashboard descriptive statistics per dataset (edsd / edsd-synthdata / ppmi)", runE1)
	register("e2", "Figure 2: the local_run/global_run programming model (federated linear regression fit)", runE2)
	register("e3", "Use case: federated analyses in Alzheimer's disease (Brescia/Lausanne/Lille/ADNI)", runE3)
	register("e4", "Claim: federated result ≡ pooled result, per algorithm", runE4)
}

// E1 — regenerate the Figure 3 table: per dataset (edsd 474 rows,
// edsd-synthdata 1000, ppmi 714), Datapoints/NA/SE/mean/min/Q1/Q2/Q3/max
// for the variables the screenshot shows.
func runE1() {
	edsd, err := synth.EDSD(42)
	fatalIf(err)
	edsdSynth, err := synth.EDSDSynth(42)
	fatalIf(err)
	ppmi, err := synth.PPMI(42)
	fatalIf(err)
	p, err := mip.New(mip.Config{Workers: []mip.WorkerConfig{
		{ID: "edsd-host", Data: edsd},
		{ID: "synth-host", Data: edsdSynth},
		{ID: "ppmi-host", Data: ppmi},
	}})
	fatalIf(err)
	defer p.Close()

	vars := []string{"p_tau", "rightlateralventricle", "leftententorhinalarea"}
	res, err := p.RunExperiment("descriptive_stats", mip.Request{
		Datasets: []string{"edsd", "edsd-synthdata", "ppmi"},
		Y:        vars,
	})
	fatalIf(err)
	per := res["datasets"].(map[string][]mip.VariableSummary)
	for _, ds := range []string{"edsd", "edsd-synthdata", "ppmi"} {
		header("dataset %s", ds)
		fmt.Printf("%-24s %10s %6s %10s %10s %10s %10s %10s %10s %10s\n",
			"variable", "Datapoints", "NA", "SE", "mean", "min", "Q1", "Q2", "Q3", "max")
		for _, r := range per[ds] {
			fmt.Printf("%-24s %10.0f %6.0f %10.4f %10.3f %10.3f %10.3f %10.3f %10.3f %10.3f\n",
				r.Variable, r.Datapoints, r.NA, r.SE, r.Mean, r.Min, r.Q1, r.Q2, r.Q3, r.Max)
		}
	}
	fmt.Println("\npaper shape: edsd has 474 subjects with ~37 NA per biomarker; ppmi has 714 complete;")
	fmt.Println("edsd-synthdata mirrors edsd at 1000 rows — all three reproduced above.")
}

// E2 — show the Figure 2 programming model: the linear-regression fit as
// local_run + aggregation + global solve, including the SQL wrapper the
// UDF generator emits for the local step.
func runE2() {
	p := buildPlatform(3, 200, mip.SecurityOff)
	defer p.Close()

	header("generated UDF wrapper for the local step (UDF-to-SQL)")
	w := p.Master().Workers()[0].(*federation.Worker)
	sql, err := w.GenerateStepSQL("linreg_fit_local",
		"SELECT minimentalstate, lefthippocampus FROM data WHERE dataset IN ('edsd')")
	fatalIf(err)
	fmt.Println(sql)

	header("algorithm flow (fit)")
	start := time.Now()
	res, err := p.RunExperiment("linear_regression", mip.Request{
		Datasets: []string{"edsd"},
		Y:        []string{"minimentalstate"},
		X:        []string{"lefthippocampus"},
	})
	fatalIf(err)
	model := res["model"].(*mip.LinRegModel)
	fmt.Printf("local_run(fit_local) on %d workers → aggregate XᵀX, Xᵀy → global solve\n", 3)
	fmt.Printf("coefficients: ")
	for _, c := range model.Coefficients {
		fmt.Printf("%s=%.4f ", c.Name, c.Estimate)
	}
	fmt.Printf("\nn=%d R²=%.4f wall=%s\n", model.N, model.RSquared, time.Since(start).Round(time.Microsecond))
}

// E3 — the Alzheimer use case at the paper's caseloads, timed, under
// Shamir secure aggregation.
func runE3() {
	cohorts, err := synth.UseCase(2024)
	fatalIf(err)
	var workers []mip.WorkerConfig
	sites := []string{"brescia", "lausanne", "lille", "adni"}
	for _, s := range sites {
		workers = append(workers, mip.WorkerConfig{ID: s, Data: cohorts[s]})
	}
	p, err := mip.New(mip.Config{Workers: workers, Security: mip.SecuritySMPCShamir, Seed: 3})
	fatalIf(err)
	defer p.Close()

	header("caseloads (paper: Brescia 1960, Lausanne 1032, Lille 1103, ADNI 1066)")
	for _, s := range sites {
		fmt.Printf("  %-10s %5d patients\n", s, cohorts[s].NumRows())
	}

	header("k-means on {Aβ42, pTau, left entorhinal}, k=3 (objective b)")
	start := time.Now()
	res, err := p.RunExperiment("kmeans", mip.Request{
		Datasets:   sites,
		Y:          []string{"ab42", "p_tau", "leftententorhinalarea"},
		Parameters: map[string]any{"k": 3, "iterations_max_number": 100, "e": 0.001},
	})
	fatalIf(err)
	km := res["kmeans"].(mip.KMeansResult)
	fmt.Printf("%-8s %8s %10s %10s %12s\n", "cluster", "size", "Aβ42", "pTau", "entorhinal")
	for c := range km.Centroids {
		fmt.Printf("%-8d %8.0f %10.1f %10.1f %12.3f\n",
			c, km.Sizes[c], km.Centroids[c][0], km.Centroids[c][1], km.Centroids[c][2])
	}
	fmt.Printf("(%d iterations, %s)\n", km.Iterations, time.Since(start).Round(time.Millisecond))

	header("linear regression: MMSE ~ volumes (objective a)")
	start = time.Now()
	res, err = p.RunExperiment("linear_regression", mip.Request{
		Datasets: sites,
		Y:        []string{"minimentalstate"},
		X:        []string{"lefthippocampus", "leftententorhinalarea", "leftlateralventricle"},
	})
	fatalIf(err)
	model := res["model"].(*mip.LinRegModel)
	for _, c := range model.Coefficients {
		fmt.Printf("  %-26s %9.4f (p=%.2g)\n", c.Name, c.Estimate, c.PValue)
	}
	fmt.Printf("(n=%d, R²=%.3f, %s)\n", model.N, model.RSquared, time.Since(start).Round(time.Millisecond))

	msgs, bytes := p.SMPCStats()
	fmt.Printf("\nSMPC traffic total: %d messages, %d bytes — no record-level data crossed a hospital boundary.\n", msgs, bytes)
}

// E4 — equivalence: for each algorithm family, the max relative deviation
// between the federated result (2, 4, 8 workers) and the pooled result.
func runE4() {
	const rowsTotal = 960
	caseload := generateCaseload(rowsTotal)
	pooled := splitPlatform(caseload, 1)
	defer pooled.Close()

	type check struct {
		name string
		run  func(p *mip.Platform) []float64
	}
	checks := []check{
		{"descriptive mean/SE", func(p *mip.Platform) []float64 {
			res, err := p.RunExperiment("descriptive_stats", mip.Request{
				Datasets: []string{"edsd"}, Y: []string{"ab42", "p_tau"}})
			fatalIf(err)
			rows := res["datasets"].(map[string][]mip.VariableSummary)["all"]
			return []float64{rows[0].Mean, rows[0].SE, rows[1].Mean, rows[1].SE}
		}},
		{"linear regression β/SE", func(p *mip.Platform) []float64 {
			res, err := p.RunExperiment("linear_regression", mip.Request{
				Datasets: []string{"edsd"}, Y: []string{"minimentalstate"},
				X: []string{"lefthippocampus", "subjectageyears"}})
			fatalIf(err)
			m := res["model"].(*mip.LinRegModel)
			var out []float64
			for _, c := range m.Coefficients {
				out = append(out, c.Estimate, c.StdErr)
			}
			return append(out, m.RSquared)
		}},
		{"logistic regression β", func(p *mip.Platform) []float64 {
			res, err := p.RunExperiment("logistic_regression", mip.Request{
				Datasets: []string{"edsd"}, Y: []string{"alzheimerbroadcategory"},
				X:          []string{"lefthippocampus", "p_tau"},
				Filter:     "alzheimerbroadcategory IN ('AD','CN')",
				Parameters: map[string]any{"pos_level": "AD"}})
			fatalIf(err)
			m := res["model"].(*mip.LogRegModel)
			var out []float64
			for _, c := range m.Coefficients {
				out = append(out, c.Estimate)
			}
			return out
		}},
		{"pearson r", func(p *mip.Platform) []float64 {
			res, err := p.RunExperiment("pearson_correlation", mip.Request{
				Datasets: []string{"edsd"}, Y: []string{"minimentalstate"},
				X: []string{"lefthippocampus", "p_tau"}})
			fatalIf(err)
			cs := res["correlations"].([]mip.Correlation)
			return []float64{cs[0].R, cs[1].R}
		}},
		{"anova one-way F", func(p *mip.Platform) []float64 {
			res, err := p.RunExperiment("anova_oneway", mip.Request{
				Datasets: []string{"edsd"}, Y: []string{"lefthippocampus"},
				X:          []string{"alzheimerbroadcategory"},
				Parameters: map[string]any{"levels": []any{"CN", "MCI", "AD"}}})
			fatalIf(err)
			t := res["table"].([]mip.ANOVATable)
			return []float64{t[0].F, t[0].SumSq}
		}},
		{"t-test independent", func(p *mip.Platform) []float64 {
			res, err := p.RunExperiment("ttest_independent", mip.Request{
				Datasets: []string{"edsd"}, Y: []string{"ab42"},
				X:          []string{"gender"},
				Parameters: map[string]any{"groups": []any{"F", "M"}}})
			fatalIf(err)
			t := res["ttest"].(mip.TTestResult)
			return []float64{t.T, t.MeanDiff}
		}},
		{"pca eigenvalues", func(p *mip.Platform) []float64 {
			res, err := p.RunExperiment("pca", mip.Request{
				Datasets: []string{"edsd"},
				Y:        []string{"lefthippocampus", "ab42", "p_tau", "minimentalstate"}})
			fatalIf(err)
			return res["pca"].(mip.PCAResult).Eigenvalues
		}},
	}

	ref := map[string][]float64{}
	for _, c := range checks {
		ref[c.name] = c.run(pooled)
	}

	fmt.Printf("%-26s %14s %14s %14s\n", "algorithm", "2 workers", "4 workers", "8 workers")
	for _, c := range checks {
		fmt.Printf("%-26s", c.name)
		for _, nw := range []int{2, 4, 8} {
			p := splitPlatform(caseload, nw)
			got := c.run(p)
			p.Close()
			fmt.Printf(" %14.3g", maxRelDev(got, ref[c.name]))
		}
		fmt.Println()
	}
	fmt.Println("\nvalues are max relative deviations federated-vs-pooled; ≈1e-12 confirms the")
	fmt.Println("paper's claim that the outcome is consistent regardless of the computation path.")
}

func maxRelDev(got, want []float64) float64 {
	var m float64
	for i := range want {
		d := math.Abs(got[i]-want[i]) / (1 + math.Abs(want[i]))
		if d > m {
			m = d
		}
	}
	return m
}
