package main

import (
	"fmt"
	"strings"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/obs"
	"mip/internal/synth"
)

func init() {
	register("e14", "Query observability: EXPLAIN ANALYZE + per-hospital operator breakdown (use-case query)", runE14)
}

// E14 — the Alzheimer's use-case query, profiled end to end: the federated
// EXPLAIN ANALYZE plan over the merge view, then a traced experiment whose
// span tree carries each hospital's operator breakdown.
func runE14() {
	const nWorkers = 4
	const rowsEach = 2000
	var clients []federation.WorkerClient
	for i := 0; i < nWorkers; i++ {
		tab, err := synth.Generate(synth.Spec{
			Dataset: "edsd", Rows: rowsEach, Seed: int64(1400 + i), Shift: float64(i) * 0.2,
		})
		fatalIf(err)
		db := engine.NewDB()
		db.RegisterTable(federation.DataTable, tab)
		clients = append(clients, federation.NewWorker(fmt.Sprintf("hospital-%d", i), db))
	}
	m, err := federation.NewMaster(clients, nil, federation.Security{})
	fatalIf(err)
	defer m.Close()

	const useCase = `SELECT alzheimerbroadcategory AS dx, count(*) AS n,
  avg(lefthippocampus) AS lh, avg(minimentalstate) AS mmse
FROM data GROUP BY alzheimerbroadcategory ORDER BY dx`

	header("EXPLAIN ANALYZE over the federated merge view (%d hospitals × %d rows)", nWorkers, rowsEach)
	lines, err := m.Explain([]string{"edsd"}, useCase, true)
	fatalIf(err)
	for _, l := range lines {
		fmt.Println(l)
	}

	header("per-hospital operator breakdown from the experiment trace")
	s, err := m.NewSession([]string{"edsd"})
	fatalIf(err)
	const traceID = "e14-trace"
	root := obs.DefaultTraces.StartSpan(traceID, "", "experiment e14")
	s.SetTrace(obs.TraceRef{TraceID: traceID, SpanID: root.ID()})
	vars := []string{"lefthippocampus", "minimentalstate"}
	_, err = s.LocalRun(federation.LocalRunSpec{
		Func:   "desc_moments",
		Vars:   vars,
		Kwargs: federation.Kwargs{"vars": vars},
	})
	fatalIf(err)
	root.End()

	fmt.Printf("%-12s %-28s %10s %10s %12s\n", "hospital", "operator", "rows_in", "rows_out", "time")
	for _, t := range obs.DefaultTraces.Tree(traceID) {
		printOpRows(t, "")
	}
}

// printOpRows walks a span tree printing one row per worker operator span.
func printOpRows(n *obs.SpanNode, worker string) {
	if strings.HasPrefix(n.Name, "worker ") {
		worker = strings.TrimPrefix(n.Name, "worker ")
	}
	if strings.HasPrefix(n.Name, "op ") && worker != "" {
		op := n.Attrs["op"]
		if d := n.Attrs["detail"]; d != "" {
			if len(d) > 20 {
				d = d[:17] + "..."
			}
			op += " " + d
		}
		fmt.Printf("%-12s %-28s %10s %10s %9.3fms\n",
			worker, op, n.Attrs["rows_in"], n.Attrs["rows_out"], n.DurMS)
	}
	for _, c := range n.Children {
		printOpRows(c, worker)
	}
}
