package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"mip"
	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
	"mip/internal/synth"
)

// The perf suite (-bench-out FILE) measures the engine's core operators and
// one end-to-end federated experiment with testing.Benchmark, and writes the
// results as machine-readable JSON for CI artifacts ("make bench" →
// BENCH_engine.json). Unlike the experiment tables above, these are
// steady-state timings, not reproduction output.

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// MemPeakBytes/SpillBytes come from one instrumented run of the
	// benchmark's statement (engine-accounted peak and spill volume, not
	// allocator stats). Machine-independent, so comparable across hosts;
	// comparePerf reports their deltas but never fails on them.
	MemPeakBytes int64 `json:"mem_peak_bytes,omitempty"`
	SpillBytes   int64 `json:"spill_bytes,omitempty"`
}

type benchReport struct {
	Suite   string        `json:"suite"`
	Go      string        `json:"go"`
	Arch    string        `json:"arch"`
	CPUs    int           `json:"cpus"`
	Results []benchResult `json:"results"`
	// Shipping records wire volume through the merge boundary for a fixed
	// federated workload — deterministic counts, not timings, so they are
	// directly comparable across machines. comparePerf ignores them.
	Shipping []shipResult `json:"shipping,omitempty"`
	// Caching records plan-cache and result-cache hit rates for a fixed
	// dashboard-replay workload. Deterministic for a given query mix, so
	// comparable across machines; comparePerf prints the deltas but never
	// fails on them.
	Caching []cacheResult `json:"caching,omitempty"`
}

type cacheResult struct {
	Name          string  `json:"name"`
	Requests      int     `json:"requests"`
	PlanHitRate   float64 `json:"plan_hit_rate"`
	ResultHitRate float64 `json:"result_hit_rate"`
}

type shipResult struct {
	Name         string `json:"name"`
	RowsShipped  int    `json:"rows_shipped"`
	BytesShipped int64  `json:"bytes_shipped"`
	PartSQL      string `json:"part_sql"`
}

// runPerfSuite executes the engine benchmark suite once, then writes the
// JSON report to benchOut (when set) and/or diffs it against the baseline
// report at comparePath (when set), exiting non-zero if any benchmark's
// ns/op or allocs/op regressed more than threshold percent. Any benchmark
// failure aborts the run with a non-zero exit.
func runPerfSuite(benchOut, comparePath string, threshold float64) {
	report := benchReport{Suite: "engine", Go: runtime.Version(), Arch: runtime.GOARCH, CPUs: runtime.NumCPU()}
	ncpu := runtime.NumCPU()
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"scan_filter_100k", benchScanFilter},
		{"group_aggregate_synth", benchGroupAggregate},
		{"aggregate_over_join", benchAggregateOverJoin},
		{"merge_pushdown_4x2000", benchMergePushdown},
		{"explain_analyze_overhead", benchExplainAnalyze},
		{"federated_descriptive_stats", benchFederatedDescriptive},
		// Morsel-parallelism pairs: the same workload at parallelism 1 (the
		// serial oracle) and at NumCPU. On a multi-core box the parN rows
		// should come out well under the par1 rows; on one CPU they tie.
		{"parallel_scan_filter_1m_par1", parBench(1, benchParScanFilter)},
		{parName("parallel_scan_filter_1m", ncpu), parBench(ncpu, benchParScanFilter)},
		{"parallel_group_aggregate_500k_par1", parBench(1, benchParGroupAggregate)},
		{parName("parallel_group_aggregate_500k", ncpu), parBench(ncpu, benchParGroupAggregate)},
		{"parallel_hash_join_200k_par1", parBench(1, benchParHashJoin)},
		{parName("parallel_hash_join_200k", ncpu), parBench(ncpu, benchParHashJoin)},
		// High-cardinality grouping (~100k distinct keys over 500k rows):
		// the hash table outgrows every presized hint, so resize behaviour
		// shows up here as allocs/op and ns/op.
		{"parallel_group_agg_hicard_500k_par1", parBench(1, benchParGroupAggHiCard)},
		{parName("parallel_group_agg_hicard_500k", ncpu), parBench(ncpu, benchParGroupAggHiCard)},
		// Memory-accounting pairs: the same workloads with the per-query
		// accountant and governance enabled (the default) and disabled. The
		// acct_on rows bound the governance overhead — they should land within
		// a few percent of acct_off.
		{"group_aggregate_500k_acct_off", acctBench(false, benchAcctGroupAggregate)},
		{"group_aggregate_500k_acct_on", acctBench(true, benchAcctGroupAggregate)},
		{"hash_join_200k_acct_off", acctBench(false, benchAcctHashJoin)},
		{"hash_join_200k_acct_on", acctBench(true, benchAcctHashJoin)},
		// Spill pair: a 1M-row join feeding a grouped aggregate, unbudgeted
		// and under an 8 MB budget with a spill directory. The spill row's
		// mem_peak_bytes should land far below the unbudgeted row's (the
		// grace join and streamed aggregate hold one partition at a time)
		// and its spill_bytes > 0 proves the budget actually forced disk.
		{"hash_join_1m_agg", spillBench(0, benchJoinAggSpill)},
		{"hash_join_1m_agg_spill_8mb", spillBench(8<<20, benchJoinAggSpill)},
		// Parallel ORDER BY pair: a full 1M-row sort at parallelism 1 (the
		// serial oracle) and at NumCPU. The comparator breaks every tie on
		// global row index, so output is bit-identical at any parallelism
		// and the parN row is pure speedup.
		{"parallel_sort_1m_par1", parBench(1, benchParSort)},
		{parName("parallel_sort_1m", ncpu), parBench(ncpu, benchParSort)},
		// Result-cache pair: the same federated aggregate re-issued against
		// a 4-worker federation with the master's result cache off (every
		// repeat replans and re-executes the merge) and on (every repeat is
		// a version-validated cache hit). The cached row should come out an
		// order of magnitude under the cold row.
		{"repeat_query_cold", cacheBench(0, benchRepeatQuery)},
		{"repeat_query_cached", cacheBench(64<<20, benchRepeatQuery)},
	} {
		if bench.name == "" {
			continue // NumCPU==1 collapses a parallel pair into one case
		}
		fmt.Printf("bench %-36s ", bench.name)
		probePeak, probeSpill = 0, 0
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "bench %s produced no iterations (failed)\n", bench.name)
			os.Exit(1)
		}
		fmt.Printf("%12d ns/op %10d B/op %8d allocs/op", r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		if probePeak > 0 {
			fmt.Printf(" %10d peak", probePeak)
		}
		if probeSpill > 0 {
			fmt.Printf(" %10d spilled", probeSpill)
		}
		fmt.Println()
		report.Results = append(report.Results, benchResult{
			Name:         bench.name,
			Iterations:   r.N,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:   r.AllocedBytesPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			MemPeakBytes: probePeak,
			SpillBytes:   probeSpill,
		})
	}
	measureShipping(&report)
	measureCaching(&report)
	if benchOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		fatalIf(err)
		buf = append(buf, '\n')
		fatalIf(os.WriteFile(benchOut, buf, 0o644))
		fmt.Printf("\nwrote %s (%d benchmarks)\n", benchOut, len(report.Results))
	}
	if comparePath != "" {
		if regressed := comparePerf(report, comparePath, threshold); regressed > 0 {
			fmt.Fprintf(os.Stderr, "%d benchmark(s) regressed more than %.0f%%\n", regressed, threshold)
			os.Exit(1)
		}
	}
}

// measureShipping runs the same federated workload through the materialize
// path twice — once with the full union forced across the wire (SELECT *
// under ORDER BY, which blocks the LIMIT cap) and once with projection,
// filter, and LIMIT pushed to the parts — and records the wire volume of
// each, so BENCH_engine.json shows the rows-shipped reduction the planner
// buys.
func measureShipping(report *benchReport) {
	mt := &engine.MergeTable{TableName: "data"}
	for i := 0; i < 4; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 2000, Seed: int64(i)})
		fatalIf(err)
		db := engine.NewDB()
		db.RegisterTable("data", tab)
		mt.Parts = append(mt.Parts, &engine.LocalPart{Name: fmt.Sprintf("w%d", i), DB: db})
	}
	master := engine.NewDB()
	master.RegisterMerge("data", mt)

	fmt.Println()
	for _, c := range []struct {
		name, sql string
	}{
		{"materialize_select_star", `SELECT * FROM data ORDER BY ab42 LIMIT 5`},
		{"materialize_pushdown", `SELECT ab42 FROM data WHERE ab42 > 10 LIMIT 100`},
	} {
		if _, err := master.Query(c.sql); err != nil {
			fmt.Fprintf(os.Stderr, "shipping workload %s: %v\n", c.name, err)
			os.Exit(1)
		}
		st := mt.LastStats()
		fmt.Printf("ship  %-36s %12d rows %10d bytes\n", c.name, st.RowsShipped, st.BytesShipped)
		report.Shipping = append(report.Shipping, shipResult{
			Name:         c.name,
			RowsShipped:  st.RowsShipped,
			BytesShipped: st.BytesShipped,
			PartSQL:      st.PartSQL,
		})
	}
}

// measureCaching replays the dashboard query mix against a cached 4-worker
// federation — every statement in the mix, 25 rounds — and records the
// plan-cache and result-cache hit rates, so BENCH_engine.json shows what a
// steady-state dashboard gets from each tier. A private plan cache keeps
// the rates isolated from the rest of the suite (and from the process-wide
// default cache the other benchmarks warm).
func measureCaching(report *benchReport) {
	pc := engine.NewPlanCache(256)
	var clients []federation.WorkerClient
	for i := 0; i < 4; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 2000, Seed: int64(i)})
		fatalIf(err)
		db := engine.NewDB(engine.WithPlanCache(pc))
		db.RegisterTable(federation.DataTable, tab)
		clients = append(clients, federation.NewWorker(fmt.Sprintf("w%d", i), db))
	}
	master, err := federation.NewMaster(clients, nil, federation.Security{},
		federation.WithResultCacheBytes(32<<20),
		federation.WithEngineOptions(engine.WithPlanCache(pc)))
	fatalIf(err)
	defer master.Close()

	mix := dashboardMix()
	const rounds = 25
	for r := 0; r < rounds; r++ {
		for _, sql := range mix {
			if _, err := master.MergeQuery([]string{"edsd"}, sql); err != nil {
				fmt.Fprintf(os.Stderr, "caching workload %q: %v\n", sql, err)
				os.Exit(1)
			}
		}
	}
	rate := func(hits, misses int64) float64 {
		if hits+misses == 0 {
			return 0
		}
		return float64(hits) / float64(hits+misses)
	}
	ps, rs := pc.Stats(), master.ResultCacheStats()
	c := cacheResult{
		Name:          "dashboard_replay_mix",
		Requests:      rounds * len(mix),
		PlanHitRate:   rate(ps.Hits, ps.Misses),
		ResultHitRate: rate(rs.Hits, rs.Misses),
	}
	fmt.Printf("\ncache %-36s %12d requests   plan_hit_rate=%.1f%%  result_hit_rate=%.1f%%\n",
		c.Name, c.Requests, 100*c.PlanHitRate, 100*c.ResultHitRate)
	report.Caching = append(report.Caching, c)
}

// comparePerf diffs the fresh report against the baseline JSON at path,
// printing ns/op and allocs/op deltas per benchmark, and returns how many
// benchmarks regressed more than threshold percent. Alloc regressions only
// count against baselines of at least 128 allocs/op — below that a couple
// of incidental allocations would swamp the percentage.
func comparePerf(report benchReport, path string, threshold float64) int {
	buf, err := os.ReadFile(path)
	fatalIf(err)
	var base benchReport
	fatalIf(json.Unmarshal(buf, &base))
	baseBy := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	pct := func(now, then float64) float64 {
		if then == 0 {
			return 0
		}
		return (now - then) / then * 100
	}
	fmt.Printf("\ncompare vs %s (cpus: baseline %d, now %d; threshold %.0f%%)\n", path, base.CPUs, report.CPUs, threshold)
	regressed := 0
	for _, r := range report.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Printf("  %-36s (new benchmark, no baseline)\n", r.Name)
			continue
		}
		dNs := pct(r.NsPerOp, b.NsPerOp)
		dAllocs := pct(float64(r.AllocsPerOp), float64(b.AllocsPerOp))
		mark := ""
		if dNs > threshold || (dAllocs > threshold && b.AllocsPerOp >= 128) {
			mark = "  << REGRESSION"
			regressed++
		}
		// mem_peak_bytes deltas are informational only: peaks move with
		// deliberate budget/spill choices, so they never fail the compare.
		peak := ""
		if r.MemPeakBytes > 0 || b.MemPeakBytes > 0 {
			peak = fmt.Sprintf("   mem_peak %11d -> %11d (%+6.1f%%)",
				b.MemPeakBytes, r.MemPeakBytes, pct(float64(r.MemPeakBytes), float64(b.MemPeakBytes)))
		}
		fmt.Printf("  %-36s ns/op %12.0f -> %12.0f (%+6.1f%%)   allocs/op %9d -> %9d (%+6.1f%%)%s%s\n",
			r.Name, b.NsPerOp, r.NsPerOp, dNs, b.AllocsPerOp, r.AllocsPerOp, dAllocs, peak, mark)
		delete(baseBy, r.Name)
	}
	for name := range baseBy {
		fmt.Printf("  %-36s (in baseline but not in this run)\n", name)
	}
	// Cache hit rates are informational only: they move with deliberate
	// cache sizing or mix changes, so deltas never fail the compare.
	cacheBy := make(map[string]cacheResult, len(base.Caching))
	for _, c := range base.Caching {
		cacheBy[c.Name] = c
	}
	for _, c := range report.Caching {
		b, ok := cacheBy[c.Name]
		if !ok {
			fmt.Printf("  %-36s plan_hit_rate=%.1f%% result_hit_rate=%.1f%% (no baseline)\n",
				c.Name, 100*c.PlanHitRate, 100*c.ResultHitRate)
			continue
		}
		fmt.Printf("  %-36s plan_hit_rate %5.1f%% -> %5.1f%% (%+.1fpt)   result_hit_rate %5.1f%% -> %5.1f%% (%+.1fpt)\n",
			c.Name, 100*b.PlanHitRate, 100*c.PlanHitRate, 100*(c.PlanHitRate-b.PlanHitRate),
			100*b.ResultHitRate, 100*c.ResultHitRate, 100*(c.ResultHitRate-b.ResultHitRate))
	}
	return regressed
}

// probePeak/probeSpill receive the engine-accounted peak bytes and spill
// volume of the most recent instrumented benchmark iteration (benchLoop's
// first), so runPerfSuite can attach them to the result row. The suite is
// strictly sequential, so plain package vars are fine.
var probePeak, probeSpill int64

// benchLoop runs sql b.N times against db. The first iteration runs
// instrumented (QueryWithStats) to capture mem_peak_bytes/spill_bytes into
// the suite probes; the remaining iterations take the plain path so the
// timing stays representative.
func benchLoop(b *testing.B, db *engine.DB, sql string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			_, qs, err := db.QueryWithStats(sql)
			if err != nil {
				b.Fatal(err)
			}
			probePeak, probeSpill = qs.MemPeakBytes, qs.SpillBytes
			continue
		}
		if _, err := db.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// parBench adapts a parallelism-parameterized benchmark into a plain one.
func parBench(par int, fn func(*testing.B, int)) func(*testing.B) {
	return func(b *testing.B) { fn(b, par) }
}

// spillBench adapts a budget-parameterized benchmark into a plain one.
func spillBench(budget int64, fn func(*testing.B, int64)) func(*testing.B) {
	return func(b *testing.B) { fn(b, budget) }
}

// benchJoinAggSpill: a 1M x 1M equi-join feeding a 16-group aggregate.
// With budget 0 it runs fully in memory; with a positive budget plus a
// spill dir the grace hash join partitions both sides to disk and streams
// its merged output into the spilled aggregate — same bits, tiny peak.
func benchJoinAggSpill(b *testing.B, budget int64) {
	l := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "x", Type: engine.Float64},
		{Name: "y", Type: engine.Float64},
	})
	r := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "k", Type: engine.String},
	})
	rng := stats.NewRNG(7)
	for i := 0; i < 1_000_000; i++ {
		if err := l.AppendRow(int64(i), rng.Float64()*30, rng.Float64()); err != nil {
			b.Fatal(err)
		}
		if err := r.AppendRow(int64(i), fmt.Sprintf("site-%d", i%16)); err != nil {
			b.Fatal(err)
		}
	}
	var opts []engine.Option
	if budget > 0 {
		dir, err := os.MkdirTemp("", "mipbench-spill-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		opts = append(opts, engine.WithQueryMemLimit(budget), engine.WithSpillDir(dir))
	}
	db := engine.NewDB(opts...)
	db.RegisterTable("l", l)
	db.RegisterTable("r", r)
	b.ResetTimer()
	benchLoop(b, db, `SELECT r.k, sum(l.x) AS s, count(*) AS n FROM l JOIN r ON l.id = r.id GROUP BY r.k`)
}

// acctBench adapts an accounting-parameterized benchmark into a plain one.
func acctBench(on bool, fn func(*testing.B, bool)) func(*testing.B) {
	return func(b *testing.B) { fn(b, on) }
}

// cacheBench adapts a result-cache-budget-parameterized benchmark.
func cacheBench(budget int64, fn func(*testing.B, int64)) func(*testing.B) {
	return func(b *testing.B) { fn(b, budget) }
}

// benchFederation builds a 4-worker in-process federation over synthetic
// EDSD shards, with the master's result cache sized by cacheBytes (0 off).
func benchFederation(b *testing.B, cacheBytes int64) *federation.Master {
	b.Helper()
	var clients []federation.WorkerClient
	for i := 0; i < 4; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 2000, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		db := engine.NewDB()
		db.RegisterTable(federation.DataTable, tab)
		clients = append(clients, federation.NewWorker(fmt.Sprintf("w%d", i), db))
	}
	var opts []federation.MasterOption
	if cacheBytes > 0 {
		opts = append(opts, federation.WithResultCacheBytes(cacheBytes))
	}
	master, err := federation.NewMaster(clients, nil, federation.Security{}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return master
}

// benchRepeatQuery re-issues one federated grouped aggregate. With a result
// cache every iteration after the warm-up is a hit served from the master's
// memory; without one every iteration walks the full merge path.
func benchRepeatQuery(b *testing.B, cacheBytes int64) {
	master := benchFederation(b, cacheBytes)
	defer master.Close()
	datasets := []string{"edsd"}
	sql := `SELECT alzheimerbroadcategory AS dx, avg(ab42) AS m, count(*) AS n FROM data GROUP BY alzheimerbroadcategory`
	if _, err := master.MergeQuery(datasets, sql); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.MergeQuery(datasets, sql); err != nil {
			b.Fatal(err)
		}
	}
}

// benchParSort: a full 1M-row ORDER BY (no LIMIT, so nothing short-circuits
// into top-k), morsel-parallel sort + pairwise merge.
func benchParSort(b *testing.B, par int) {
	tab := engine.NewTable(engine.Schema{
		{Name: "x", Type: engine.Float64},
		{Name: "site", Type: engine.String},
	})
	rng := stats.NewRNG(8)
	for i := 0; i < 1_000_000; i++ {
		if err := tab.AppendRow(rng.Float64()*1000, fmt.Sprintf("site-%d", i%16)); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB(engine.WithParallelism(par))
	db.RegisterTable("t", tab)
	b.ResetTimer()
	benchLoop(b, db, `SELECT site, x FROM t ORDER BY x, site`)
}

// parName names the NumCPU half of a parallel pair; on a 1-CPU machine it
// would duplicate the par1 case, so the empty name drops it from the suite.
func parName(base string, ncpu int) string {
	if ncpu <= 1 {
		return ""
	}
	return fmt.Sprintf("%s_par%d", base, ncpu)
}

// benchParScanFilter: 1M-row filter + global aggregate, morsel-parallel.
func benchParScanFilter(b *testing.B, par int) {
	tab := engine.NewTable(engine.Schema{{Name: "x", Type: engine.Float64}})
	rng := stats.NewRNG(3)
	for i := 0; i < 1_000_000; i++ {
		if err := tab.AppendRow(rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB(engine.WithParallelism(par))
	db.RegisterTable("t", tab)
	b.ResetTimer()
	benchLoop(b, db, `SELECT avg(x) AS m, count(*) AS n FROM t WHERE x > 0.2`)
}

// benchParGroupAggregate: 500k rows, 8 groups, partitioned hash aggregation.
func benchParGroupAggregate(b *testing.B, par int) {
	benchGroupAggregate500k(b, engine.WithParallelism(par))
}

// benchAcctGroupAggregate: the grouping workload with accounting toggled.
func benchAcctGroupAggregate(b *testing.B, on bool) {
	benchGroupAggregate500k(b, engine.WithAccounting(on))
}

func benchGroupAggregate500k(b *testing.B, opts ...engine.Option) {
	tab := engine.NewTable(engine.Schema{
		{Name: "site", Type: engine.String},
		{Name: "x", Type: engine.Float64},
	})
	rng := stats.NewRNG(4)
	for i := 0; i < 500_000; i++ {
		if err := tab.AppendRow(fmt.Sprintf("site-%d", i%8), rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB(opts...)
	db.RegisterTable("t", tab)
	b.ResetTimer()
	benchLoop(b, db, `SELECT site, avg(x) AS m, stddev(x) AS sd, count(*) AS n FROM t GROUP BY site`)
}

// benchParHashJoin: 200k x 200k equi-join with parallel probe/materialize.
func benchParHashJoin(b *testing.B, par int) {
	benchHashJoin200k(b, engine.WithParallelism(par))
}

// benchAcctHashJoin: the join workload with accounting toggled.
func benchAcctHashJoin(b *testing.B, on bool) {
	benchHashJoin200k(b, engine.WithAccounting(on))
}

func benchHashJoin200k(b *testing.B, opts ...engine.Option) {
	patients := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "age", Type: engine.Float64},
	})
	scores := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "mmse", Type: engine.Float64},
	})
	rng := stats.NewRNG(5)
	for i := 0; i < 200_000; i++ {
		if err := patients.AppendRow(int64(i), 60+rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
		if err := scores.AppendRow(int64(i), rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB(opts...)
	db.RegisterTable("patients", patients)
	db.RegisterTable("scores", scores)
	b.ResetTimer()
	benchLoop(b, db, `SELECT avg(s.mmse) AS m, count(*) AS n FROM patients p JOIN scores s ON p.id = s.id WHERE p.age > 70`)
}

// benchParGroupAggHiCard: 500k rows spread over ~100k distinct int64 keys,
// so per-morsel and combine tables resize repeatedly while group payload
// arrays grow to 100k entries.
func benchParGroupAggHiCard(b *testing.B, par int) {
	tab := engine.NewTable(engine.Schema{
		{Name: "k", Type: engine.Int64},
		{Name: "x", Type: engine.Float64},
	})
	rng := stats.NewRNG(6)
	for i := 0; i < 500_000; i++ {
		if err := tab.AppendRow(int64(i)%100_003, rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB(engine.WithParallelism(par))
	db.RegisterTable("t", tab)
	b.ResetTimer()
	benchLoop(b, db, `SELECT k, sum(x) AS s, count(*) AS n FROM t GROUP BY k`)
}

func benchFloatTable(b *testing.B, rows int) *engine.DB {
	b.Helper()
	tab := engine.NewTable(engine.Schema{{Name: "x", Type: engine.Float64}})
	rng := stats.NewRNG(1)
	for i := 0; i < rows; i++ {
		if err := tab.AppendRow(rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB()
	db.RegisterTable("t", tab)
	return db
}

func benchScanFilter(b *testing.B) {
	db := benchFloatTable(b, 100000)
	b.ResetTimer()
	benchLoop(b, db, `SELECT avg(x) AS m, count(*) AS n FROM t WHERE x > 0.2`)
}

func benchGroupAggregate(b *testing.B) {
	tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 5000, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	db := engine.NewDB()
	db.RegisterTable("data", tab)
	b.ResetTimer()
	benchLoop(b, db, `SELECT alzheimerbroadcategory AS dx, avg(lefthippocampus) AS m, count(*) AS n FROM data GROUP BY alzheimerbroadcategory`)
}

func benchJoinDB(b *testing.B) *engine.DB {
	b.Helper()
	patients := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "age", Type: engine.Float64},
	})
	scores := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "mmse", Type: engine.Float64},
	})
	rng := stats.NewRNG(2)
	for i := 0; i < 20000; i++ {
		if err := patients.AppendRow(int64(i), 60+rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
		if err := scores.AppendRow(int64(i), rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB()
	db.RegisterTable("patients", patients)
	db.RegisterTable("scores", scores)
	return db
}

func benchAggregateOverJoin(b *testing.B) {
	db := benchJoinDB(b)
	b.ResetTimer()
	benchLoop(b, db, `SELECT avg(s.mmse) AS m, count(*) AS n FROM patients p JOIN scores s ON p.id = s.id WHERE p.age > 70`)
}

func benchMergeDB(b *testing.B) *engine.DB {
	b.Helper()
	mt := &engine.MergeTable{TableName: "data"}
	for i := 0; i < 4; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 2000, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		db := engine.NewDB()
		db.RegisterTable("data", tab)
		mt.Parts = append(mt.Parts, &engine.LocalPart{Name: fmt.Sprintf("w%d", i), DB: db})
	}
	master := engine.NewDB()
	master.RegisterMerge("data", mt)
	return master
}

func benchMergePushdown(b *testing.B) {
	master := benchMergeDB(b)
	b.ResetTimer()
	benchLoop(b, master, `SELECT alzheimerbroadcategory AS dx, avg(ab42) AS m FROM data GROUP BY alzheimerbroadcategory`)
}

// The cost of running the same federated aggregate with full operator
// profiling and plan rendering (EXPLAIN ANALYZE) versus benchMergePushdown
// bounds the observability overhead.
func benchExplainAnalyze(b *testing.B) {
	master := benchMergeDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.Query(`EXPLAIN ANALYZE SELECT alzheimerbroadcategory AS dx, avg(ab42) AS m FROM data GROUP BY alzheimerbroadcategory`); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFederatedDescriptive(b *testing.B) {
	var workers []mip.WorkerConfig
	for i := 0; i < 3; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 500, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		workers = append(workers, mip.WorkerConfig{ID: fmt.Sprintf("w%d", i), Data: tab})
	}
	p, err := mip.New(mip.Config{Workers: workers, Security: mip.SecurityOff, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	req := mip.Request{Datasets: []string{"edsd"}, Y: []string{"p_tau", "lefthippocampus"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunExperiment("descriptive_stats", req); err != nil {
			b.Fatal(err)
		}
	}
}
