package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"mip"
	"mip/internal/engine"
	"mip/internal/stats"
	"mip/internal/synth"
)

// The perf suite (-bench-out FILE) measures the engine's core operators and
// one end-to-end federated experiment with testing.Benchmark, and writes the
// results as machine-readable JSON for CI artifacts ("make bench" →
// BENCH_engine.json). Unlike the experiment tables above, these are
// steady-state timings, not reproduction output.

type benchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// MemPeakBytes/SpillBytes come from one instrumented run of the
	// benchmark's statement (engine-accounted peak and spill volume, not
	// allocator stats). Machine-independent, so comparable across hosts;
	// comparePerf reports their deltas but never fails on them.
	MemPeakBytes int64 `json:"mem_peak_bytes,omitempty"`
	SpillBytes   int64 `json:"spill_bytes,omitempty"`
}

type benchReport struct {
	Suite   string        `json:"suite"`
	Go      string        `json:"go"`
	Arch    string        `json:"arch"`
	CPUs    int           `json:"cpus"`
	Results []benchResult `json:"results"`
	// Shipping records wire volume through the merge boundary for a fixed
	// federated workload — deterministic counts, not timings, so they are
	// directly comparable across machines. comparePerf ignores them.
	Shipping []shipResult `json:"shipping,omitempty"`
}

type shipResult struct {
	Name         string `json:"name"`
	RowsShipped  int    `json:"rows_shipped"`
	BytesShipped int64  `json:"bytes_shipped"`
	PartSQL      string `json:"part_sql"`
}

// runPerfSuite executes the engine benchmark suite once, then writes the
// JSON report to benchOut (when set) and/or diffs it against the baseline
// report at comparePath (when set), exiting non-zero if any benchmark's
// ns/op or allocs/op regressed more than threshold percent. Any benchmark
// failure aborts the run with a non-zero exit.
func runPerfSuite(benchOut, comparePath string, threshold float64) {
	report := benchReport{Suite: "engine", Go: runtime.Version(), Arch: runtime.GOARCH, CPUs: runtime.NumCPU()}
	ncpu := runtime.NumCPU()
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"scan_filter_100k", benchScanFilter},
		{"group_aggregate_synth", benchGroupAggregate},
		{"aggregate_over_join", benchAggregateOverJoin},
		{"merge_pushdown_4x2000", benchMergePushdown},
		{"explain_analyze_overhead", benchExplainAnalyze},
		{"federated_descriptive_stats", benchFederatedDescriptive},
		// Morsel-parallelism pairs: the same workload at parallelism 1 (the
		// serial oracle) and at NumCPU. On a multi-core box the parN rows
		// should come out well under the par1 rows; on one CPU they tie.
		{"parallel_scan_filter_1m_par1", parBench(1, benchParScanFilter)},
		{parName("parallel_scan_filter_1m", ncpu), parBench(ncpu, benchParScanFilter)},
		{"parallel_group_aggregate_500k_par1", parBench(1, benchParGroupAggregate)},
		{parName("parallel_group_aggregate_500k", ncpu), parBench(ncpu, benchParGroupAggregate)},
		{"parallel_hash_join_200k_par1", parBench(1, benchParHashJoin)},
		{parName("parallel_hash_join_200k", ncpu), parBench(ncpu, benchParHashJoin)},
		// High-cardinality grouping (~100k distinct keys over 500k rows):
		// the hash table outgrows every presized hint, so resize behaviour
		// shows up here as allocs/op and ns/op.
		{"parallel_group_agg_hicard_500k_par1", parBench(1, benchParGroupAggHiCard)},
		{parName("parallel_group_agg_hicard_500k", ncpu), parBench(ncpu, benchParGroupAggHiCard)},
		// Memory-accounting pairs: the same workloads with the per-query
		// accountant and governance enabled (the default) and disabled. The
		// acct_on rows bound the governance overhead — they should land within
		// a few percent of acct_off.
		{"group_aggregate_500k_acct_off", acctBench(false, benchAcctGroupAggregate)},
		{"group_aggregate_500k_acct_on", acctBench(true, benchAcctGroupAggregate)},
		{"hash_join_200k_acct_off", acctBench(false, benchAcctHashJoin)},
		{"hash_join_200k_acct_on", acctBench(true, benchAcctHashJoin)},
		// Spill pair: a 1M-row join feeding a grouped aggregate, unbudgeted
		// and under an 8 MB budget with a spill directory. The spill row's
		// mem_peak_bytes should land far below the unbudgeted row's (the
		// grace join and streamed aggregate hold one partition at a time)
		// and its spill_bytes > 0 proves the budget actually forced disk.
		{"hash_join_1m_agg", spillBench(0, benchJoinAggSpill)},
		{"hash_join_1m_agg_spill_8mb", spillBench(8<<20, benchJoinAggSpill)},
	} {
		if bench.name == "" {
			continue // NumCPU==1 collapses a parallel pair into one case
		}
		fmt.Printf("bench %-36s ", bench.name)
		probePeak, probeSpill = 0, 0
		r := testing.Benchmark(bench.fn)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "bench %s produced no iterations (failed)\n", bench.name)
			os.Exit(1)
		}
		fmt.Printf("%12d ns/op %10d B/op %8d allocs/op", r.NsPerOp(), r.AllocedBytesPerOp(), r.AllocsPerOp())
		if probePeak > 0 {
			fmt.Printf(" %10d peak", probePeak)
		}
		if probeSpill > 0 {
			fmt.Printf(" %10d spilled", probeSpill)
		}
		fmt.Println()
		report.Results = append(report.Results, benchResult{
			Name:         bench.name,
			Iterations:   r.N,
			NsPerOp:      float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:   r.AllocedBytesPerOp(),
			AllocsPerOp:  r.AllocsPerOp(),
			MemPeakBytes: probePeak,
			SpillBytes:   probeSpill,
		})
	}
	measureShipping(&report)
	if benchOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		fatalIf(err)
		buf = append(buf, '\n')
		fatalIf(os.WriteFile(benchOut, buf, 0o644))
		fmt.Printf("\nwrote %s (%d benchmarks)\n", benchOut, len(report.Results))
	}
	if comparePath != "" {
		if regressed := comparePerf(report, comparePath, threshold); regressed > 0 {
			fmt.Fprintf(os.Stderr, "%d benchmark(s) regressed more than %.0f%%\n", regressed, threshold)
			os.Exit(1)
		}
	}
}

// measureShipping runs the same federated workload through the materialize
// path twice — once with the full union forced across the wire (SELECT *
// under ORDER BY, which blocks the LIMIT cap) and once with projection,
// filter, and LIMIT pushed to the parts — and records the wire volume of
// each, so BENCH_engine.json shows the rows-shipped reduction the planner
// buys.
func measureShipping(report *benchReport) {
	mt := &engine.MergeTable{TableName: "data"}
	for i := 0; i < 4; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 2000, Seed: int64(i)})
		fatalIf(err)
		db := engine.NewDB()
		db.RegisterTable("data", tab)
		mt.Parts = append(mt.Parts, &engine.LocalPart{Name: fmt.Sprintf("w%d", i), DB: db})
	}
	master := engine.NewDB()
	master.RegisterMerge("data", mt)

	fmt.Println()
	for _, c := range []struct {
		name, sql string
	}{
		{"materialize_select_star", `SELECT * FROM data ORDER BY ab42 LIMIT 5`},
		{"materialize_pushdown", `SELECT ab42 FROM data WHERE ab42 > 10 LIMIT 100`},
	} {
		if _, err := master.Query(c.sql); err != nil {
			fmt.Fprintf(os.Stderr, "shipping workload %s: %v\n", c.name, err)
			os.Exit(1)
		}
		st := mt.LastStats()
		fmt.Printf("ship  %-36s %12d rows %10d bytes\n", c.name, st.RowsShipped, st.BytesShipped)
		report.Shipping = append(report.Shipping, shipResult{
			Name:         c.name,
			RowsShipped:  st.RowsShipped,
			BytesShipped: st.BytesShipped,
			PartSQL:      st.PartSQL,
		})
	}
}

// comparePerf diffs the fresh report against the baseline JSON at path,
// printing ns/op and allocs/op deltas per benchmark, and returns how many
// benchmarks regressed more than threshold percent. Alloc regressions only
// count against baselines of at least 128 allocs/op — below that a couple
// of incidental allocations would swamp the percentage.
func comparePerf(report benchReport, path string, threshold float64) int {
	buf, err := os.ReadFile(path)
	fatalIf(err)
	var base benchReport
	fatalIf(json.Unmarshal(buf, &base))
	baseBy := make(map[string]benchResult, len(base.Results))
	for _, r := range base.Results {
		baseBy[r.Name] = r
	}
	pct := func(now, then float64) float64 {
		if then == 0 {
			return 0
		}
		return (now - then) / then * 100
	}
	fmt.Printf("\ncompare vs %s (cpus: baseline %d, now %d; threshold %.0f%%)\n", path, base.CPUs, report.CPUs, threshold)
	regressed := 0
	for _, r := range report.Results {
		b, ok := baseBy[r.Name]
		if !ok {
			fmt.Printf("  %-36s (new benchmark, no baseline)\n", r.Name)
			continue
		}
		dNs := pct(r.NsPerOp, b.NsPerOp)
		dAllocs := pct(float64(r.AllocsPerOp), float64(b.AllocsPerOp))
		mark := ""
		if dNs > threshold || (dAllocs > threshold && b.AllocsPerOp >= 128) {
			mark = "  << REGRESSION"
			regressed++
		}
		// mem_peak_bytes deltas are informational only: peaks move with
		// deliberate budget/spill choices, so they never fail the compare.
		peak := ""
		if r.MemPeakBytes > 0 || b.MemPeakBytes > 0 {
			peak = fmt.Sprintf("   mem_peak %11d -> %11d (%+6.1f%%)",
				b.MemPeakBytes, r.MemPeakBytes, pct(float64(r.MemPeakBytes), float64(b.MemPeakBytes)))
		}
		fmt.Printf("  %-36s ns/op %12.0f -> %12.0f (%+6.1f%%)   allocs/op %9d -> %9d (%+6.1f%%)%s%s\n",
			r.Name, b.NsPerOp, r.NsPerOp, dNs, b.AllocsPerOp, r.AllocsPerOp, dAllocs, peak, mark)
		delete(baseBy, r.Name)
	}
	for name := range baseBy {
		fmt.Printf("  %-36s (in baseline but not in this run)\n", name)
	}
	return regressed
}

// probePeak/probeSpill receive the engine-accounted peak bytes and spill
// volume of the most recent instrumented benchmark iteration (benchLoop's
// first), so runPerfSuite can attach them to the result row. The suite is
// strictly sequential, so plain package vars are fine.
var probePeak, probeSpill int64

// benchLoop runs sql b.N times against db. The first iteration runs
// instrumented (QueryWithStats) to capture mem_peak_bytes/spill_bytes into
// the suite probes; the remaining iterations take the plain path so the
// timing stays representative.
func benchLoop(b *testing.B, db *engine.DB, sql string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if i == 0 {
			_, qs, err := db.QueryWithStats(sql)
			if err != nil {
				b.Fatal(err)
			}
			probePeak, probeSpill = qs.MemPeakBytes, qs.SpillBytes
			continue
		}
		if _, err := db.Query(sql); err != nil {
			b.Fatal(err)
		}
	}
}

// parBench adapts a parallelism-parameterized benchmark into a plain one.
func parBench(par int, fn func(*testing.B, int)) func(*testing.B) {
	return func(b *testing.B) { fn(b, par) }
}

// spillBench adapts a budget-parameterized benchmark into a plain one.
func spillBench(budget int64, fn func(*testing.B, int64)) func(*testing.B) {
	return func(b *testing.B) { fn(b, budget) }
}

// benchJoinAggSpill: a 1M x 1M equi-join feeding a 16-group aggregate.
// With budget 0 it runs fully in memory; with a positive budget plus a
// spill dir the grace hash join partitions both sides to disk and streams
// its merged output into the spilled aggregate — same bits, tiny peak.
func benchJoinAggSpill(b *testing.B, budget int64) {
	l := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "x", Type: engine.Float64},
		{Name: "y", Type: engine.Float64},
	})
	r := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "k", Type: engine.String},
	})
	rng := stats.NewRNG(7)
	for i := 0; i < 1_000_000; i++ {
		if err := l.AppendRow(int64(i), rng.Float64()*30, rng.Float64()); err != nil {
			b.Fatal(err)
		}
		if err := r.AppendRow(int64(i), fmt.Sprintf("site-%d", i%16)); err != nil {
			b.Fatal(err)
		}
	}
	var opts []engine.Option
	if budget > 0 {
		dir, err := os.MkdirTemp("", "mipbench-spill-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		opts = append(opts, engine.WithQueryMemLimit(budget), engine.WithSpillDir(dir))
	}
	db := engine.NewDB(opts...)
	db.RegisterTable("l", l)
	db.RegisterTable("r", r)
	b.ResetTimer()
	benchLoop(b, db, `SELECT r.k, sum(l.x) AS s, count(*) AS n FROM l JOIN r ON l.id = r.id GROUP BY r.k`)
}

// acctBench adapts an accounting-parameterized benchmark into a plain one.
func acctBench(on bool, fn func(*testing.B, bool)) func(*testing.B) {
	return func(b *testing.B) { fn(b, on) }
}

// parName names the NumCPU half of a parallel pair; on a 1-CPU machine it
// would duplicate the par1 case, so the empty name drops it from the suite.
func parName(base string, ncpu int) string {
	if ncpu <= 1 {
		return ""
	}
	return fmt.Sprintf("%s_par%d", base, ncpu)
}

// benchParScanFilter: 1M-row filter + global aggregate, morsel-parallel.
func benchParScanFilter(b *testing.B, par int) {
	tab := engine.NewTable(engine.Schema{{Name: "x", Type: engine.Float64}})
	rng := stats.NewRNG(3)
	for i := 0; i < 1_000_000; i++ {
		if err := tab.AppendRow(rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB(engine.WithParallelism(par))
	db.RegisterTable("t", tab)
	b.ResetTimer()
	benchLoop(b, db, `SELECT avg(x) AS m, count(*) AS n FROM t WHERE x > 0.2`)
}

// benchParGroupAggregate: 500k rows, 8 groups, partitioned hash aggregation.
func benchParGroupAggregate(b *testing.B, par int) {
	benchGroupAggregate500k(b, engine.WithParallelism(par))
}

// benchAcctGroupAggregate: the grouping workload with accounting toggled.
func benchAcctGroupAggregate(b *testing.B, on bool) {
	benchGroupAggregate500k(b, engine.WithAccounting(on))
}

func benchGroupAggregate500k(b *testing.B, opts ...engine.Option) {
	tab := engine.NewTable(engine.Schema{
		{Name: "site", Type: engine.String},
		{Name: "x", Type: engine.Float64},
	})
	rng := stats.NewRNG(4)
	for i := 0; i < 500_000; i++ {
		if err := tab.AppendRow(fmt.Sprintf("site-%d", i%8), rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB(opts...)
	db.RegisterTable("t", tab)
	b.ResetTimer()
	benchLoop(b, db, `SELECT site, avg(x) AS m, stddev(x) AS sd, count(*) AS n FROM t GROUP BY site`)
}

// benchParHashJoin: 200k x 200k equi-join with parallel probe/materialize.
func benchParHashJoin(b *testing.B, par int) {
	benchHashJoin200k(b, engine.WithParallelism(par))
}

// benchAcctHashJoin: the join workload with accounting toggled.
func benchAcctHashJoin(b *testing.B, on bool) {
	benchHashJoin200k(b, engine.WithAccounting(on))
}

func benchHashJoin200k(b *testing.B, opts ...engine.Option) {
	patients := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "age", Type: engine.Float64},
	})
	scores := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "mmse", Type: engine.Float64},
	})
	rng := stats.NewRNG(5)
	for i := 0; i < 200_000; i++ {
		if err := patients.AppendRow(int64(i), 60+rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
		if err := scores.AppendRow(int64(i), rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB(opts...)
	db.RegisterTable("patients", patients)
	db.RegisterTable("scores", scores)
	b.ResetTimer()
	benchLoop(b, db, `SELECT avg(s.mmse) AS m, count(*) AS n FROM patients p JOIN scores s ON p.id = s.id WHERE p.age > 70`)
}

// benchParGroupAggHiCard: 500k rows spread over ~100k distinct int64 keys,
// so per-morsel and combine tables resize repeatedly while group payload
// arrays grow to 100k entries.
func benchParGroupAggHiCard(b *testing.B, par int) {
	tab := engine.NewTable(engine.Schema{
		{Name: "k", Type: engine.Int64},
		{Name: "x", Type: engine.Float64},
	})
	rng := stats.NewRNG(6)
	for i := 0; i < 500_000; i++ {
		if err := tab.AppendRow(int64(i)%100_003, rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB(engine.WithParallelism(par))
	db.RegisterTable("t", tab)
	b.ResetTimer()
	benchLoop(b, db, `SELECT k, sum(x) AS s, count(*) AS n FROM t GROUP BY k`)
}

func benchFloatTable(b *testing.B, rows int) *engine.DB {
	b.Helper()
	tab := engine.NewTable(engine.Schema{{Name: "x", Type: engine.Float64}})
	rng := stats.NewRNG(1)
	for i := 0; i < rows; i++ {
		if err := tab.AppendRow(rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB()
	db.RegisterTable("t", tab)
	return db
}

func benchScanFilter(b *testing.B) {
	db := benchFloatTable(b, 100000)
	b.ResetTimer()
	benchLoop(b, db, `SELECT avg(x) AS m, count(*) AS n FROM t WHERE x > 0.2`)
}

func benchGroupAggregate(b *testing.B) {
	tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 5000, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	db := engine.NewDB()
	db.RegisterTable("data", tab)
	b.ResetTimer()
	benchLoop(b, db, `SELECT alzheimerbroadcategory AS dx, avg(lefthippocampus) AS m, count(*) AS n FROM data GROUP BY alzheimerbroadcategory`)
}

func benchJoinDB(b *testing.B) *engine.DB {
	b.Helper()
	patients := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "age", Type: engine.Float64},
	})
	scores := engine.NewTable(engine.Schema{
		{Name: "id", Type: engine.Int64},
		{Name: "mmse", Type: engine.Float64},
	})
	rng := stats.NewRNG(2)
	for i := 0; i < 20000; i++ {
		if err := patients.AppendRow(int64(i), 60+rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
		if err := scores.AppendRow(int64(i), rng.Float64()*30); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB()
	db.RegisterTable("patients", patients)
	db.RegisterTable("scores", scores)
	return db
}

func benchAggregateOverJoin(b *testing.B) {
	db := benchJoinDB(b)
	b.ResetTimer()
	benchLoop(b, db, `SELECT avg(s.mmse) AS m, count(*) AS n FROM patients p JOIN scores s ON p.id = s.id WHERE p.age > 70`)
}

func benchMergeDB(b *testing.B) *engine.DB {
	b.Helper()
	mt := &engine.MergeTable{TableName: "data"}
	for i := 0; i < 4; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 2000, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		db := engine.NewDB()
		db.RegisterTable("data", tab)
		mt.Parts = append(mt.Parts, &engine.LocalPart{Name: fmt.Sprintf("w%d", i), DB: db})
	}
	master := engine.NewDB()
	master.RegisterMerge("data", mt)
	return master
}

func benchMergePushdown(b *testing.B) {
	master := benchMergeDB(b)
	b.ResetTimer()
	benchLoop(b, master, `SELECT alzheimerbroadcategory AS dx, avg(ab42) AS m FROM data GROUP BY alzheimerbroadcategory`)
}

// The cost of running the same federated aggregate with full operator
// profiling and plan rendering (EXPLAIN ANALYZE) versus benchMergePushdown
// bounds the observability overhead.
func benchExplainAnalyze(b *testing.B) {
	master := benchMergeDB(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.Query(`EXPLAIN ANALYZE SELECT alzheimerbroadcategory AS dx, avg(ab42) AS m FROM data GROUP BY alzheimerbroadcategory`); err != nil {
			b.Fatal(err)
		}
	}
}

func benchFederatedDescriptive(b *testing.B) {
	var workers []mip.WorkerConfig
	for i := 0; i < 3; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 500, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		workers = append(workers, mip.WorkerConfig{ID: fmt.Sprintf("w%d", i), Data: tab})
	}
	p, err := mip.New(mip.Config{Workers: workers, Security: mip.SecurityOff, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	req := mip.Request{Datasets: []string{"edsd"}, Y: []string{"p_tau", "lefthippocampus"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunExperiment("descriptive_stats", req); err != nil {
			b.Fatal(err)
		}
	}
}
