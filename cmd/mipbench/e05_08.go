package main

import (
	"fmt"
	"strconv"
	"time"

	"mip"
	"mip/internal/dp"
	"mip/internal/engine"
	"mip/internal/smpc"
	"mip/internal/stats"
)

func init() {
	register("e5", "Claim: full-threshold is slow & strong, Shamir fast (secure sum across dims)", runE5)
	register("e6", "Claim: SMPC overhead concentrates in multiplications/comparisons (op mix)", runE6)
	register("e7", "Training: local DP vs secure aggregation + central noise (accuracy vs ε)", runE7)
	register("e8", "Claim: in-engine vectorized execution beats row-at-a-time (UDF-to-SQL payoff)", runE8)
}

// secureSum pushes `workers` vectors of dim values through one sum job and
// reports wall time and traffic.
func secureSum(c *smpc.Cluster, workers, dim int) (time.Duration, smpc.NetStats) {
	vec := make([]float64, dim)
	for i := range vec {
		vec[i] = float64(i%100) / 7
	}
	c.ResetNetStats()
	start := time.Now()
	for w := 0; w < workers; w++ {
		fatalIf(c.ImportSecret("bench", fmt.Sprintf("w%d", w), vec))
	}
	_, err := c.Aggregate("bench", smpc.OpSum, smpc.Noise{})
	fatalIf(err)
	return time.Since(start), c.NetStats()
}

// E5 — FT vs Shamir vs plain across vector dimensions.
func runE5() {
	const workers = 4
	fmt.Printf("secure vector sum, %d workers, 3 SMPC nodes (Shamir t=1)\n\n", workers)
	fmt.Printf("%10s | %14s %14s | %14s %14s | %12s\n",
		"dim", "FT time", "FT bytes", "Shamir time", "Shamir bytes", "plain time")
	for _, dim := range []int{10, 100, 1000, 10000, 100000} {
		ft := newCluster(smpc.FullThreshold, 3)
		ftTime, ftNet := secureSum(ft, workers, dim)
		sh := newCluster(smpc.ShamirScheme, 3)
		shTime, shNet := secureSum(sh, workers, dim)

		// Plain baseline: direct float addition.
		vec := make([]float64, dim)
		start := time.Now()
		acc := make([]float64, dim)
		for w := 0; w < workers; w++ {
			for i := range vec {
				acc[i] += vec[i]
			}
		}
		plainTime := time.Since(start)

		fmt.Printf("%10d | %14s %14d | %14s %14d | %12s\n",
			dim, ftTime.Round(time.Microsecond), ftNet.Bytes,
			shTime.Round(time.Microsecond), shNet.Bytes,
			plainTime.Round(time.Nanosecond))
	}
	fmt.Println("\npaper shape: FT costs a constant factor more than Shamir in both time and traffic")
	fmt.Println("(MACs double every share and every opening, plus the MACCheck round); both scale")
	fmt.Println("linearly in the dimension; the data owner picks the scheme per the security-")
	fmt.Println("efficiency trade-off. Plain addition is shown as the zero-security floor.")
}

// E6 — cost per operation type at fixed dimension.
func runE6() {
	const workers, dim = 4, 64
	ops := []struct {
		name string
		op   smpc.Op
	}{
		{"sum", smpc.OpSum}, {"product", smpc.OpProduct},
		{"min", smpc.OpMin}, {"max", smpc.OpMax}, {"union", smpc.OpUnion},
	}
	fmt.Printf("aggregation of %d-dim vectors from %d workers (per-op wall time and traffic)\n\n", dim, workers)
	fmt.Printf("%-10s | %14s %10s %12s | %14s %10s %12s\n",
		"op", "FT time", "FT msgs", "FT bytes", "Shamir time", "Sh msgs", "Sh bytes")
	for _, o := range ops {
		var row [2]struct {
			d   time.Duration
			net smpc.NetStats
		}
		for si, scheme := range []smpc.Scheme{smpc.FullThreshold, smpc.ShamirScheme} {
			c := newCluster(scheme, 3)
			vec := make([]float64, dim)
			for i := range vec {
				vec[i] = 1 + float64((i*13)%10)/10 // positive, small: safe for products
			}
			for w := 0; w < workers; w++ {
				fatalIf(c.ImportSecret("op", fmt.Sprintf("w%d", w), vec))
			}
			c.ResetNetStats()
			start := time.Now()
			_, err := c.Aggregate("op", o.op, smpc.Noise{})
			fatalIf(err)
			row[si].d = time.Since(start)
			row[si].net = c.NetStats()
		}
		fmt.Printf("%-10s | %14s %10d %12d | %14s %10d %12d\n",
			o.name,
			row[0].d.Round(time.Microsecond), row[0].net.Messages, row[0].net.Bytes,
			row[1].d.Round(time.Microsecond), row[1].net.Messages, row[1].net.Bytes)
	}
	fmt.Println("\npaper shape: sums are cheap (pure local addition + one opening); products burn a")
	fmt.Println("Beaver triple and two extra openings per fold; min/max pay a masked comparison")
	fmt.Println("(mask + multiplication + opening) per fold — exactly where the paper locates the")
	fmt.Println("overheads (\"extensive multiplications, branching, and comparisons\").")
}

// E7 — DP-at-worker vs secure aggregation with central noise: federated
// mean-model accuracy across ε for a fixed sensitivity.
func runE7() {
	// The quantity released each round: the mean Aβ42 over ~1000 rows.
	// Sensitivity of the sum is ~max|x| (bounded at 2000 pg/ml); per-mean
	// sensitivity = 2000/n.
	const nWorkers = 4
	const rowsEach = 250
	totalRows := float64(nWorkers * rowsEach)
	sensitivity := 2000.0 / totalRows

	truthP := buildPlatform(nWorkers, rowsEach, mip.SecurityOff)
	res, err := truthP.RunExperiment("ttest_onesample", mip.Request{
		Datasets: []string{"edsd"}, Y: []string{"ab42"}})
	fatalIf(err)
	truth := res["mean"].(float64)
	truthP.Close()

	fmt.Printf("released federated mean of Aβ42 (true value %.3f), Gaussian mechanism, δ=1e-5\n", truth)
	fmt.Printf("local DP: each worker noises its own aggregate (σ_local = σ_central·√W)\n\n")
	fmt.Printf("%8s %12s | %14s %12s | %14s %12s\n",
		"ε", "σ_central", "SA+central", "abs err", "local DP", "abs err")
	const trials = 30
	for _, eps := range []float64{0.1, 0.5, 1, 2, 5} {
		sigma := dp.GaussianSigma(sensitivity, eps, 1e-5)
		var errCentral, errLocal float64
		rng := stats.NewRNG(int64(eps * 1000))
		for t := 0; t < trials; t++ {
			// Central: one draw on the aggregate (inside SMPC).
			central := truth + rng.Normal(0, sigma)
			errCentral += absF(central - truth)
			// Local: each worker adds full-σ noise to its share of the
			// mean; the aggregate accumulates W independent noises.
			local := truth
			for w := 0; w < nWorkers; w++ {
				local += rng.Normal(0, sigma)
			}
			errLocal += absF(local - truth)
		}
		fmt.Printf("%8.2f %12.4f | %14.4f %12.4f | %14.4f %12.4f\n",
			eps, sigma,
			truth, errCentral/trials,
			truth, errLocal/trials)
	}
	fmt.Println("\npaper shape: secure aggregation with central noise dominates local DP at equal ε")
	fmt.Println("(the √W factor), which is why MIP offers SA through the SMPC cluster as the")
	fmt.Println("preferred training mode and local DP as the fallback.")

	// End-to-end: federated logistic regression accuracy under in-protocol
	// Gaussian noise across scales.
	fmt.Println()
	header("end-to-end: logistic regression AD vs CN with in-protocol noise")
	fmt.Printf("%12s %14s %14s\n", "noise σ", "hippocampus β", "p_tau β")
	for _, sigma := range []float64{0, 0.5, 2, 10} {
		cfgNoise := mip.NoiseKind(mip.NoiseNone)
		if sigma > 0 {
			cfgNoise = mip.NoiseGaussian
		}
		var workers []mip.WorkerConfig
		for i := 0; i < nWorkers; i++ {
			tab, err := mip.GenerateCohort(mip.SynthSpec{Dataset: "edsd", Rows: rowsEach, Seed: int64(70 + i)})
			fatalIf(err)
			workers = append(workers, mip.WorkerConfig{ID: fmt.Sprintf("w%d", i), Data: tab})
		}
		p, err := mip.New(mip.Config{
			Workers: workers, Security: mip.SecuritySMPCShamir,
			NoiseKind: cfgNoise, NoiseScale: sigma, Seed: 5,
		})
		fatalIf(err)
		res, err := p.RunExperiment("logistic_regression", mip.Request{
			Datasets: []string{"edsd"}, Y: []string{"alzheimerbroadcategory"},
			X:          []string{"lefthippocampus", "p_tau"},
			Filter:     "alzheimerbroadcategory IN ('AD','CN')",
			Parameters: map[string]any{"pos_level": "AD", "max_iter": 15},
		})
		if err != nil {
			fmt.Printf("%12.1f  %s\n", sigma, err)
			p.Close()
			continue
		}
		m := res["model"].(*mip.LogRegModel)
		fmt.Printf("%12.1f %14.4f %14.4f\n", sigma, m.Coefficients[1].Estimate, m.Coefficients[2].Estimate)
		p.Close()
	}
	fmt.Println("\ncoefficients drift as σ grows — the utility cost of the privacy budget.")
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// E8 — vectorized in-engine execution vs a row-at-a-time interpreter over
// the same query, across table sizes (the UDF-to-SQL motivation).
func runE8() {
	fmt.Println("query: SELECT avg(x), sum(x*x), count(*) over rows with x > 0.2, three execution styles:")
	fmt.Println("  in-engine    — the SQL path (vectorized kernels over columnar storage)")
	fmt.Println("  boxed rows   — in-process row-at-a-time with per-row boxing")
	fmt.Println("  external UDF — rows serialized out of the engine and parsed by the UDF runtime,")
	fmt.Println("                 the cost the UDF-to-SQL translation removes")
	fmt.Printf("\n%10s | %12s | %12s %7s | %12s %7s\n",
		"rows", "in-engine", "boxed rows", "vs", "external UDF", "vs")
	for _, n := range []int{1000, 10000, 100000, 1000000} {
		tab := engine.NewTable(engine.Schema{{Name: "x", Type: engine.Float64}})
		rng := stats.NewRNG(9)
		for i := 0; i < n; i++ {
			fatalIf(tab.AppendRow(rng.Float64()))
		}
		db := engine.NewDB()
		db.RegisterTable("t", tab)

		start := time.Now()
		res, err := db.Query(`SELECT avg(x) AS m, sum(x*x) AS s2, count(*) AS n FROM t WHERE x > 0.2`)
		fatalIf(err)
		vecTime := time.Since(start)
		vecMean := res.ColByName("m").Float64s()[0]

		// Boxed row-at-a-time interpreter.
		start = time.Now()
		var cnt, sum, sum2 float64
		col := tab.Col(0)
		for i := 0; i < tab.NumRows(); i++ {
			v := col.Value(i) // boxed access per row
			x, ok := v.(float64)
			if !ok || x <= 0.2 {
				continue
			}
			cnt++
			sum += x
			sum2 += x * x
		}
		rowTime := time.Since(start)
		if absF(vecMean-sum/cnt) > 1e-9 {
			fatalIf(fmt.Errorf("engines disagree"))
		}

		// External UDF: every row crosses a serialization boundary (text
		// encode on the engine side, parse on the UDF side) before the
		// procedural code sees it.
		start = time.Now()
		var cnt2, sumE, sum2E float64
		for i := 0; i < tab.NumRows(); i++ {
			wire := strconv.FormatFloat(col.Float64s()[i], 'g', -1, 64)
			x, err := strconv.ParseFloat(wire, 64)
			if err != nil || x <= 0.2 {
				continue
			}
			cnt2++
			sumE += x
			sum2E += x * x
		}
		extTime := time.Since(start)
		if cnt2 != cnt {
			fatalIf(fmt.Errorf("external path disagrees"))
		}

		fmt.Printf("%10d | %12s | %12s %6.1fx | %12s %6.1fx\n",
			n, vecTime.Round(time.Microsecond),
			rowTime.Round(time.Microsecond), float64(rowTime)/float64(vecTime),
			extTime.Round(time.Microsecond), float64(extTime)/float64(vecTime))
	}
	fmt.Println("\npaper shape: running the procedural step inside the engine (the UDFGenerator's")
	fmt.Println("whole point) avoids the serialization wall entirely and amortizes per-value")
	fmt.Println("dispatch across vectors; the advantage grows with table size.")
}
