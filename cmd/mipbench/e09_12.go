package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"mip"
	"mip/internal/algorithms"
	"mip/internal/api"
	"mip/internal/catalogue"
	"mip/internal/dp"
	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/queue"
	"mip/internal/smpc"
	"mip/internal/synth"
)

func init() {
	register("e9", "Claim: remote/merge tables ship aggregates, not rows (pushdown vs materialize)", runE9)
	register("e10", "Claim: federation handles iteration/intermediate scalability (strong scaling)", runE10)
	register("e11", "Figures 4-5: create experiment → async run → poll → result (REST flow)", runE11)
	register("e12", "Privacy audit: what leaves a worker, and DP noise calibration", runE12)
}

// E9 — merge-table aggregate pushdown vs full materialization.
func runE9() {
	const nWorkers = 4
	const rowsEach = 5000
	mt := &engine.MergeTable{TableName: "data"}
	for i := 0; i < nWorkers; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: rowsEach, Seed: int64(300 + i)})
		fatalIf(err)
		db := engine.NewDB()
		db.RegisterTable("data", tab)
		mt.Parts = append(mt.Parts, &engine.LocalPart{Name: fmt.Sprintf("w%d", i), DB: db})
	}
	master := engine.NewDB()
	master.RegisterMerge("data", mt)

	queries := []struct {
		name string
		sql  string
	}{
		{"avg per diagnosis (pushdown)", `SELECT alzheimerbroadcategory AS dx, count(*) AS n, avg(ab42) AS m FROM data GROUP BY alzheimerbroadcategory ORDER BY dx`},
		{"global stddev (pushdown)", `SELECT stddev_samp(p_tau) AS sd FROM data`},
		{"corr (pushdown)", `SELECT corr(ab42, p_tau) AS r FROM data`},
		{"median (materialize)", `SELECT median(ab42) AS m FROM data`},
	}
	fmt.Printf("%d workers × %d rows (total %d)\n\n", nWorkers, rowsEach, nWorkers*rowsEach)
	fmt.Printf("%-32s %10s %14s %12s\n", "query", "pushdown", "rows shipped", "wall")
	for _, q := range queries {
		start := time.Now()
		_, err := master.Query(q.sql)
		fatalIf(err)
		wall := time.Since(start)
		st := mt.LastStats()
		fmt.Printf("%-32s %10v %14d %12s\n", q.name, st.Pushdown, st.RowsShipped, wall.Round(time.Microsecond))
	}
	fmt.Println("\npaper shape: decomposable aggregates travel as one partial row per worker")
	fmt.Println("(never materialized), while only non-decomposable statistics fall back to")
	fmt.Println("shipping rows — the merge/remote-table mechanism of MIP's non-secure path.")
}

// E10 — strong scaling: fixed total caseload, growing worker count. In a
// real deployment every site computes its local step on its own hardware
// and the master waits for the slowest site, so the deployment's
// per-iteration wall time is the per-site compute time — which we measure
// by running the same algorithms on a single shard of caseload/workers
// rows (this benchmark host has a single core, so in-process wall time
// cannot show the parallelism directly).
func runE10() {
	const totalRows = 32768
	run := func(p *mip.Platform) (time.Duration, time.Duration, time.Duration) {
		start := time.Now()
		_, err := p.RunExperiment("linear_regression", mip.Request{
			Datasets: []string{"edsd"}, Y: []string{"minimentalstate"},
			X: []string{"lefthippocampus", "subjectageyears", "ab42", "p_tau"}})
		fatalIf(err)
		linT := time.Since(start)

		start = time.Now()
		_, err = p.RunExperiment("kmeans", mip.Request{
			Datasets: []string{"edsd"}, Y: []string{"ab42", "p_tau"},
			Parameters: map[string]any{"k": 3, "iterations_max_number": 20, "e": 0}})
		fatalIf(err)
		kmT := time.Since(start)

		start = time.Now()
		_, err = p.RunExperiment("logistic_regression", mip.Request{
			Datasets: []string{"edsd"}, Y: []string{"alzheimerbroadcategory"},
			X:          []string{"lefthippocampus", "p_tau"},
			Filter:     "alzheimerbroadcategory IN ('AD','CN')",
			Parameters: map[string]any{"pos_level": "AD"}})
		fatalIf(err)
		return linT, kmT, time.Since(start)
	}

	fmt.Printf("fixed caseload %d rows; per-site compute = deployment wall time per round\n\n", totalRows)
	fmt.Printf("%8s %10s | %14s | %14s | %16s\n",
		"workers", "rows/site", "linreg", "kmeans (20 it)", "logreg (Newton)")
	for _, nw := range []int{1, 2, 4, 8, 16} {
		// One site holding a 1/nw shard: its compute is the deployment's
		// critical path, since the other sites run concurrently elsewhere.
		site := buildPlatform(1, totalRows/nw, mip.SecurityOff)
		linT, kmT, logT := run(site)
		site.Close()
		fmt.Printf("%8d %10d | %14s | %14s | %16s\n", nw, totalRows/nw,
			linT.Round(time.Microsecond), kmT.Round(time.Microsecond), logT.Round(time.Microsecond))
	}
	fmt.Println("\npaper shape: the per-site (= deployment) wall time falls near-linearly as the")
	fmt.Println("caseload spreads across hospitals — federation turns the iteration cost of the")
	fmt.Println("overall analysis into a per-site cost, the scalability point the paper makes")
	fmt.Println("about algorithm iterations and intermediate steps.")
}

// E11 — the dashboard flow over REST: create a k-means experiment, poll
// while it runs, fetch the result (Figures 4-5).
func runE11() {
	var workers []mip.WorkerConfig
	for i := 0; i < 3; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 400, Seed: int64(500 + i)})
		fatalIf(err)
		workers = append(workers, mip.WorkerConfig{ID: fmt.Sprintf("hospital-%d", i), Data: tab})
	}
	var clients []federation.WorkerClient
	for _, wc := range workers {
		db := engine.NewDB()
		db.RegisterTable(federation.DataTable, wc.Data)
		clients = append(clients, federation.NewWorker(wc.ID, db))
	}
	master, err := federation.NewMaster(clients, nil, federation.Security{})
	fatalIf(err)
	runner := queue.NewRunner(queue.NewBroker(0, 0), 2)
	defer runner.Close()
	server := api.NewServer(master, catalogue.Default(), runner)
	ts := httptest.NewServer(server.Handler())
	defer ts.Close()

	fmt.Printf("REST API at %s\n", ts.URL)
	start := time.Now()
	// The httptest server exercises the real HTTP handlers; submit through
	// the API like the dashboard does.
	exp := submitExperiment(ts.URL, api.ExperimentRequest{
		Name:      "kmeans via dashboard",
		Algorithm: "kmeans",
		Request: algorithms.Request{
			Datasets:   []string{"edsd"},
			Y:          []string{"ab42", "p_tau", "leftententorhinalarea"},
			Parameters: map[string]any{"k": 3, "iterations_max_number": 50, "e": 0.001},
		},
	})
	fmt.Printf("POST /experiments → %s (status %s) after %s\n", exp.UUID, exp.Status, time.Since(start).Round(time.Millisecond))

	polls := 0
	for {
		polls++
		got := getExperiment(ts.URL, exp.UUID)
		if got.Status == "success" || got.Status == "error" {
			fmt.Printf("GET /experiments/%s → %s after %d polls, %s total\n",
				exp.UUID, got.Status, polls, time.Since(start).Round(time.Millisecond))
			if got.Status == "error" {
				fatalIf(fmt.Errorf("experiment failed: %s", got.Error))
			}
			fmt.Printf("result bytes: %d (centroids, sizes, WSS, iterations)\n", len(got.Result))
			break
		}
		fmt.Printf("  poll %d: %s — \"your experiment is currently running\"\n", polls, got.Status)
		time.Sleep(5 * time.Millisecond)
	}
	fmt.Println("\npaper shape: the Figure 4-5 flow — asynchronous submission, a running status")
	fmt.Println("while the federation iterates, then the rendered result — over the same")
	fmt.Println("REST + task-queue plumbing as the deployed platform.")
}

// E12 — privacy audit: enumerate what leaves a worker on each path, and
// verify DP noise calibration empirically.
func runE12() {
	header("leakage inventory per aggregation path (federated mean over 4 workers)")
	type pathResult struct {
		name     string
		security mip.SecurityMode
	}
	for _, pr := range []pathResult{
		{"plain transfers", mip.SecurityOff},
		{"SMPC Shamir", mip.SecuritySMPCShamir},
		{"SMPC full-threshold", mip.SecuritySMPCFullThreshold},
	} {
		p := buildPlatform(4, 200, pr.security)
		_, err := p.RunExperiment("ttest_onesample", mip.Request{Datasets: []string{"edsd"}, Y: []string{"ab42"}})
		fatalIf(err)
		msgs, bytes := p.SMPCStats()
		leaves := "per-worker aggregates (n, Σx, Σx²) — 3 numbers/worker"
		if pr.security != mip.SecurityOff {
			leaves = "uniformly random secret shares only; master sees the global aggregate"
		}
		fmt.Printf("  %-22s smpc msgs=%-5d bytes=%-8d leaves worker: %s\n", pr.name, msgs, bytes, leaves)
		p.Close()
	}

	header("disclosure control: small cells are blocked")
	tab, err := synth.Generate(synth.Spec{Dataset: "tiny", Rows: 5, Seed: 1})
	fatalIf(err)
	p, err := mip.New(mip.Config{Workers: []mip.WorkerConfig{{ID: "tiny", Data: tab}}})
	fatalIf(err)
	_, err = p.RunExperiment("ttest_onesample", mip.Request{Datasets: []string{"tiny"}, Y: []string{"ab42"}})
	fmt.Printf("  5-row worker, minRows=10 → %v\n", err)
	p.Close()

	header("DP calibration: mechanism scale vs (ε, δ), verified by sampling")
	fmt.Printf("  %-10s %8s %12s %14s %14s\n", "mechanism", "ε", "scale", "E|noise| (th)", "E|noise| (emp)")
	for _, eps := range []float64{0.5, 1, 2} {
		// Laplace: E|X| = b.
		b := dp.LaplaceScale(1, eps)
		mech := dp.NewLaplace(1, eps, 42)
		var sumAbs float64
		const n = 200000
		for i := 0; i < n; i++ {
			sumAbs += absF(mech.Release(0))
		}
		fmt.Printf("  %-10s %8.1f %12.4f %14.4f %14.4f\n", "laplace", eps, b, b, sumAbs/n)
	}
	for _, eps := range []float64{0.5, 1, 2} {
		// Gaussian: E|X| = σ·sqrt(2/π).
		sg := dp.GaussianSigma(1, eps, 1e-5)
		mech := dp.NewGaussian(1, eps, 1e-5, 43)
		var sumAbs float64
		const n = 200000
		for i := 0; i < n; i++ {
			sumAbs += absF(mech.Release(0))
		}
		fmt.Printf("  %-10s %8.1f %12.4f %14.4f %14.4f\n", "gaussian", eps, sg, sg*0.7978845608, sumAbs/n)
	}

	header("in-protocol noise: distributed generation matches the target distribution")
	c := newCluster(smpc.ShamirScheme, 3)
	const trials = 3000
	var sum2 float64
	for i := 0; i < trials; i++ {
		fatalIf(c.ImportSecret("dp", "a", []float64{0}))
		out, err := c.Aggregate("dp", smpc.OpSum, smpc.Noise{Kind: smpc.GaussianNoise, Scale: 2})
		fatalIf(err)
		sum2 += out[0] * out[0]
	}
	fmt.Printf("  3 nodes each add N(0, σ²/3): observed σ = %.3f (target 2.000)\n", sqrtF(sum2/trials))
	fmt.Println("\npaper shape: \"only aggregated, encrypted data leaves the hospital\" — the")
	fmt.Println("audit shows exactly which bytes cross the boundary on each path, that")
	fmt.Println("small cells are suppressed, and that the DP mechanisms are calibrated.")
}

func sqrtF(x float64) float64 {
	// tiny local helper to avoid importing math for one call
	if x <= 0 {
		return 0
	}
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

// --- REST helpers for E11 ---

func submitExperiment(base string, req api.ExperimentRequest) *api.Experiment {
	var exp api.Experiment
	fatalIf(postJSON(base+"/experiments", req, &exp))
	return &exp
}

func getExperiment(base, uuid string) *api.Experiment {
	var exp api.Experiment
	fatalIf(getJSON(base+"/experiments/"+uuid, &exp))
	return &exp
}

var httpCtx = context.Background()
