package main

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mip/internal/engine"
	"mip/internal/smpc"
	"mip/internal/stats"
	"mip/internal/udf"
)

func init() {
	register("a1", "Ablation: fixed-point fractional bits vs SMPC accuracy and range", runA1)
	register("a2", "Ablation: quantile-histogram bins vs descriptive-statistics accuracy", runA2)
	register("a3", "Ablation: UDF fusion — one scan for N steps (paper roadmap)", runA3)
}

// A1 — the SMPC codec's fractional-bit budget trades resolution against
// the representable magnitude (the 61-bit field is split between them).
func runA1() {
	const workers, dim = 4, 512
	rng := stats.NewRNG(17)
	vec := make([]float64, dim)
	for i := range vec {
		vec[i] = rng.Normal(0, 100)
	}
	want := make([]float64, dim)
	for i := range want {
		want[i] = vec[i] * workers
	}
	fmt.Printf("secure sum of %d-dim N(0,100) vectors from %d workers\n\n", dim, workers)
	fmt.Printf("%10s %16s %16s %16s\n", "frac bits", "resolution", "max |x| allowed", "max abs error")
	for _, bits := range []uint{8, 12, 16, 20, 24, 28} {
		c, err := smpc.NewCluster(smpc.Config{Scheme: smpc.ShamirScheme, Nodes: 3, FracBits: bits, Seed: 2})
		fatalIf(err)
		for w := 0; w < workers; w++ {
			fatalIf(c.ImportSecret("a1", fmt.Sprintf("w%d", w), vec))
		}
		got, err := c.Aggregate("a1", smpc.OpSum, smpc.Noise{})
		fatalIf(err)
		var maxErr float64
		for i := range got {
			if e := math.Abs(got[i] - want[i]); e > maxErr {
				maxErr = e
			}
		}
		codec := c.Codec()
		fmt.Printf("%10d %16.2e %16.3e %16.2e\n", bits, codec.Resolution(), codec.MaxAbs(), maxErr)
	}
	fmt.Println("\nthe default (20 bits, ~1e-6 resolution, ~1.1e12 range) keeps every algorithm's")
	fmt.Println("aggregates exact to ≲1e-4 while leaving room for ~thousands of workers' sums;")
	fmt.Println("8 bits visibly corrupts means, 28 bits narrows the range toward overflow.")
}

// A2 — the federated quartiles come from an equal-width histogram; bins
// trade one extra round's payload size against quantile error.
func runA2() {
	const n = 20000
	rng := stats.NewRNG(23)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Gamma(2, 30) // skewed, like biomarker distributions
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	exactQ := []float64{
		stats.QuantileSorted(sorted, 0.25),
		stats.QuantileSorted(sorted, 0.50),
		stats.QuantileSorted(sorted, 0.75),
	}
	lo, hi := sorted[0], sorted[n-1]

	fmt.Printf("quartiles of a Gamma(2,30) sample (n=%d) from an equal-width histogram\n\n", n)
	fmt.Printf("%8s %14s %14s %14s %16s\n", "bins", "|Q1 err|", "|Q2 err|", "|Q3 err|", "payload (bytes)")
	for _, bins := range []int{16, 64, 256, 1024, 4096} {
		counts := make([]float64, bins)
		width := hi - lo
		for _, x := range xs {
			b := int((x - lo) / width * float64(bins))
			if b >= bins {
				b = bins - 1
			}
			counts[b]++
		}
		var errs [3]float64
		for qi, q := range []float64{0.25, 0.5, 0.75} {
			got := histQuantileLocal(counts, lo, hi, q)
			errs[qi] = math.Abs(got - exactQ[qi])
		}
		fmt.Printf("%8d %14.4f %14.4f %14.4f %16d\n", bins, errs[0], errs[1], errs[2], bins*8)
	}
	fmt.Println("\nthe platform's 256-bin default keeps quartile error below range/256 (≈0.4%")
	fmt.Println("of the spread) for one 2 KiB payload per variable per worker — the privacy win")
	fmt.Println("(no order statistics leave the hospital) costs almost nothing in accuracy.")
}

// histQuantileLocal mirrors the algorithm package's interpolation.
func histQuantileLocal(counts []float64, lo, hi, q float64) float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	target := q * total
	var cum float64
	width := (hi - lo) / float64(len(counts))
	for b, c := range counts {
		if cum+c >= target && c > 0 {
			frac := (target - cum) / c
			return lo + (float64(b)+frac)*width
		}
		cum += c
	}
	return hi
}

// A3 — UDF fusion (the paper's roadmap item): N statistics UDFs over the
// same relation, fused into one scan vs N separate scans.
func runA3() {
	const rows = 200000
	tab := engine.NewTable(engine.Schema{
		{Name: "x", Type: engine.Float64},
		{Name: "y", Type: engine.Float64},
	})
	rng := stats.NewRNG(31)
	for i := 0; i < rows; i++ {
		fatalIf(tab.AppendRow(rng.Normal(0, 1), rng.Normal(5, 2)))
	}
	db := engine.NewDB()
	db.RegisterTable("t", tab)

	reg := udf.NewRegistry()
	mkSum := func(col string) *udf.Def {
		return &udf.Def{
			Name:    "sum_" + col,
			Inputs:  []udf.IOSpec{{Name: "data", Kind: udf.Relation}},
			Outputs: []udf.IOSpec{{Name: "s", Kind: udf.Scalar}},
			Body: func(ctx *udf.Ctx, args []udf.Value) ([]udf.Value, error) {
				v := args[0].Table.ColByName(col).Float64s()
				var s float64
				for _, x := range v {
					s += x
				}
				return []udf.Value{udf.ScalarValue(s)}, nil
			},
		}
	}
	names := []string{}
	for _, col := range []string{"x", "y"} {
		reg.MustRegister(mkSum(col))
		names = append(names, "sum_"+col)
	}
	reg.MustRegister(&udf.Def{
		Name:    "count_rows",
		Inputs:  []udf.IOSpec{{Name: "data", Kind: udf.Relation}},
		Outputs: []udf.IOSpec{{Name: "n", Kind: udf.Scalar}},
		Body: func(ctx *udf.Ctx, args []udf.Value) ([]udf.Value, error) {
			return []udf.Value{udf.ScalarValue(float64(args[0].Table.NumRows()))}, nil
		},
	})
	names = append(names, "count_rows")
	e := &udf.Exec{Registry: reg, DB: db}
	relSQL := `SELECT x, y FROM t WHERE x > -1`

	const reps = 20
	// Unfused: one relation resolution per UDF.
	q0 := db.QueryCount()
	start := time.Now()
	for r := 0; r < reps; r++ {
		for _, n := range names {
			_, err := e.Call(n, make([]udf.Value, 1), map[string]string{"data": relSQL})
			fatalIf(err)
		}
	}
	unfused := time.Since(start)
	unfusedScans := db.QueryCount() - q0

	// Fused: one resolution for the batch.
	q0 = db.QueryCount()
	start = time.Now()
	for r := 0; r < reps; r++ {
		_, err := e.CallFused(names, relSQL, nil)
		fatalIf(err)
	}
	fused := time.Since(start)
	fusedScans := db.QueryCount() - q0

	fmt.Printf("3 UDFs over %d rows (filter x > -1), %d repetitions\n\n", rows, reps)
	fmt.Printf("%-10s %14s %12s\n", "mode", "wall", "engine scans")
	fmt.Printf("%-10s %14s %12d\n", "unfused", unfused.Round(time.Microsecond), unfusedScans)
	fmt.Printf("%-10s %14s %12d\n", "fused", fused.Round(time.Microsecond), fusedScans)
	fmt.Printf("\nspeedup %.1fx, scans reduced %dx — the UDF-fusion payoff the paper's roadmap\n",
		float64(unfused)/float64(fused), unfusedScans/fusedScans)
	fmt.Println("targets; see internal/udf/fusion.go for the stateful-execution half.")
}
