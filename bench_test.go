package mip

// testing.B companions to the cmd/mipbench experiment harness: one
// benchmark per experiment/table of EXPERIMENTS.md (E1-E12), runnable with
//
//	go test -bench=. -benchmem
//
// The mipbench binary prints the full tables; these benchmarks measure the
// steady-state cost of each experiment's core operation.

import (
	"fmt"
	"testing"

	"mip/internal/dp"
	"mip/internal/engine"
	"mip/internal/smpc"
	"mip/internal/stats"
	"mip/internal/synth"
)

func benchPlatform(b *testing.B, nWorkers, rowsEach int, sec SecurityMode) *Platform {
	b.Helper()
	var workers []WorkerConfig
	for i := 0; i < nWorkers; i++ {
		tab, err := GenerateCohort(SynthSpec{Dataset: "edsd", Rows: rowsEach, Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		workers = append(workers, WorkerConfig{ID: fmt.Sprintf("w%d", i), Data: tab})
	}
	p, err := New(Config{Workers: workers, Security: sec, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	return p
}

// E1 — the Figure 3 descriptive-statistics table.
func BenchmarkDescriptiveStats(b *testing.B) {
	p := benchPlatform(b, 3, 500, SecurityOff)
	req := Request{Datasets: []string{"edsd"}, Y: []string{"p_tau", "lefthippocampus"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunExperiment("descriptive_stats", req); err != nil {
			b.Fatal(err)
		}
	}
}

// E2 — the Figure 2 federated linear-regression fit.
func BenchmarkLinearRegression(b *testing.B) {
	p := benchPlatform(b, 3, 500, SecurityOff)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"minimentalstate"},
		X:        []string{"lefthippocampus", "subjectageyears"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunExperiment("linear_regression", req); err != nil {
			b.Fatal(err)
		}
	}
}

// E3 — the use case's k-means over four sites.
func BenchmarkKMeansUseCase(b *testing.B) {
	p := benchPlatform(b, 4, 500, SecurityOff)
	req := Request{
		Datasets:   []string{"edsd"},
		Y:          []string{"ab42", "p_tau", "leftententorhinalarea"},
		Parameters: map[string]any{"k": 3, "iterations_max_number": 10, "e": 0},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunExperiment("kmeans", req); err != nil {
			b.Fatal(err)
		}
	}
}

// E4 — equivalence-path overhead: the same aggregate, plain vs SMPC.
func BenchmarkAggregatePlain(b *testing.B)  { benchAggregate(b, SecurityOff) }
func BenchmarkAggregateSecure(b *testing.B) { benchAggregate(b, SecuritySMPCShamir) }

func benchAggregate(b *testing.B, sec SecurityMode) {
	p := benchPlatform(b, 3, 400, sec)
	req := Request{Datasets: []string{"edsd"}, Y: []string{"ab42"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunExperiment("ttest_onesample", req); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 — secure vector sum per scheme (dim 1024, 4 workers, 3 nodes).
func BenchmarkSMPCSumFullThreshold(b *testing.B) { benchSMPCSum(b, smpc.FullThreshold) }
func BenchmarkSMPCSumShamir(b *testing.B)        { benchSMPCSum(b, smpc.ShamirScheme) }

func benchSMPCSum(b *testing.B, scheme smpc.Scheme) {
	c, err := smpc.NewCluster(smpc.Config{Scheme: scheme, Nodes: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	vec := make([]float64, 1024)
	for i := range vec {
		vec[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < 4; w++ {
			if err := c.ImportSecret("j", fmt.Sprintf("w%d", w), vec); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Aggregate("j", smpc.OpSum, smpc.Noise{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E6 — the expensive ops: secure product and min (dim 64).
func BenchmarkSMPCOpsProduct(b *testing.B) { benchSMPCOp(b, smpc.OpProduct) }
func BenchmarkSMPCOpsMin(b *testing.B)     { benchSMPCOp(b, smpc.OpMin) }

func benchSMPCOp(b *testing.B, op smpc.Op) {
	c, err := smpc.NewCluster(smpc.Config{Scheme: smpc.FullThreshold, Nodes: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	vec := make([]float64, 64)
	for i := range vec {
		vec[i] = 1 + float64(i%7)/10
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for w := 0; w < 2; w++ {
			if err := c.ImportSecret("j", fmt.Sprintf("w%d", w), vec); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := c.Aggregate("j", op, smpc.Noise{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E7 — DP mechanism release cost.
func BenchmarkDPGaussianRelease(b *testing.B) {
	m := dp.NewGaussian(1, 1, 1e-5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Release(42)
	}
}

// E8 — in-engine vectorized aggregation over 100k rows.
func BenchmarkEngineVectorized(b *testing.B) {
	tab := engine.NewTable(engine.Schema{{Name: "x", Type: engine.Float64}})
	rng := stats.NewRNG(1)
	for i := 0; i < 100000; i++ {
		if err := tab.AppendRow(rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	db := engine.NewDB()
	db.RegisterTable("t", tab)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query(`SELECT avg(x) AS m, sum(x*x) AS s2, count(*) AS n FROM t WHERE x > 0.2`); err != nil {
			b.Fatal(err)
		}
	}
}

// E8 baseline — the same query through per-row boxed access.
func BenchmarkEngineRowAtATime(b *testing.B) {
	tab := engine.NewTable(engine.Schema{{Name: "x", Type: engine.Float64}})
	rng := stats.NewRNG(1)
	for i := 0; i < 100000; i++ {
		if err := tab.AppendRow(rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	col := tab.Col(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var cnt, sum, sum2 float64
		for r := 0; r < tab.NumRows(); r++ {
			v := col.Value(r)
			x, ok := v.(float64)
			if !ok || x <= 0.2 {
				continue
			}
			cnt++
			sum += x
			sum2 += x * x
		}
		_ = cnt
	}
}

// E9 — merge-table aggregate pushdown over 4 workers.
func BenchmarkMergePushdown(b *testing.B) {
	mt := &engine.MergeTable{TableName: "data"}
	for i := 0; i < 4; i++ {
		tab, err := synth.Generate(synth.Spec{Dataset: "edsd", Rows: 2000, Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		db := engine.NewDB()
		db.RegisterTable("data", tab)
		mt.Parts = append(mt.Parts, &engine.LocalPart{Name: fmt.Sprintf("w%d", i), DB: db})
	}
	master := engine.NewDB()
	master.RegisterMerge("data", mt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := master.Query(`SELECT alzheimerbroadcategory AS dx, avg(ab42) AS m FROM data GROUP BY alzheimerbroadcategory`); err != nil {
			b.Fatal(err)
		}
	}
}

// E10 — one federated logistic-regression round (the iteration unit whose
// per-site cost the scaling experiment sweeps).
func BenchmarkLogisticRegression(b *testing.B) {
	p := benchPlatform(b, 4, 400, SecurityOff)
	req := Request{
		Datasets:   []string{"edsd"},
		Y:          []string{"alzheimerbroadcategory"},
		X:          []string{"lefthippocampus", "p_tau"},
		Filter:     "alzheimerbroadcategory IN ('AD','CN')",
		Parameters: map[string]any{"pos_level": "AD"},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunExperiment("logistic_regression", req); err != nil {
			b.Fatal(err)
		}
	}
}

// E11 — experiment-lifecycle overhead through the API layer is exercised
// by the HTTP tests; here we measure the underlying synchronous run of the
// same k-means experiment.
func BenchmarkExperimentKMeansSmall(b *testing.B) {
	p := benchPlatform(b, 2, 200, SecurityOff)
	req := Request{
		Datasets:   []string{"edsd"},
		Y:          []string{"ab42", "p_tau"},
		Parameters: map[string]any{"k": 2, "iterations_max_number": 5, "e": 0},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunExperiment("kmeans", req); err != nil {
			b.Fatal(err)
		}
	}
}

// E12 — the privacy boundary's hot path: flatten + secret-share + import
// of one worker transfer (dim 256).
func BenchmarkSecureImport(b *testing.B) {
	c, err := smpc.NewCluster(smpc.Config{Scheme: smpc.ShamirScheme, Nodes: 3, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	vec := make([]float64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.ImportSecret(fmt.Sprintf("j%d", i), "w", vec); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Aggregate(fmt.Sprintf("j%d", i), smpc.OpSum, smpc.Noise{}); err != nil {
			b.Fatal(err)
		}
	}
}

// Sorted eigensolver benchmark: PCA's core (p=8 correlation matrix).
func BenchmarkEigenSym(b *testing.B) {
	rng := stats.NewRNG(3)
	m := stats.NewDense(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j <= i; j++ {
			v := rng.Normal(0, 1)
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
		m.Add(i, i, 10)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stats.EigenSym(m); err != nil {
			b.Fatal(err)
		}
	}
}
