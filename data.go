package mip

import (
	"io"

	"mip/internal/catalogue"
	"mip/internal/engine"
	"mip/internal/etl"
	"mip/internal/synth"
)

// Data-loading helpers for building worker tables.

// SynthSpec re-exports the synthetic dementia cohort generator's spec.
type SynthSpec = synth.Spec

// GenerateCohort produces a synthetic dementia cohort (EDSD/ADNI-like
// schema) for demos, tests and benchmarks.
func GenerateCohort(spec SynthSpec) (*Table, error) { return synth.Generate(spec) }

// GenerateUseCase produces the four per-hospital cohorts of the paper's
// Alzheimer's use case: brescia (1960), lausanne (1032), lille (1103),
// adni (1066).
func GenerateUseCase(seed int64) (map[string]*Table, error) { return synth.UseCase(seed) }

// GenerateSurvival produces an epilepsy-like time-to-event cohort for the
// Kaplan-Meier workflows.
func GenerateSurvival(spec synth.SurvivalSpec) (*Table, error) { return synth.Survival(spec) }

// SurvivalSpec re-exports the survival generator's spec.
type SurvivalSpec = synth.SurvivalSpec

// LoadCSVTable reads a harmonized CSV (header row; NA/empty cells are
// NULL) into a worker data table, inferring column types.
func LoadCSVTable(path string) (*Table, error) { return engine.LoadCSVFile(path) }

// ETLMapping re-exports the harmonization mapping (renames, unit
// rescaling, category recoding) for loading raw hospital exports.
type ETLMapping = etl.Mapping

// ETLRule is one column rule of an ETLMapping.
type ETLRule = etl.Rule

// ETLQualityReport summarizes an ETL load.
type ETLQualityReport = etl.QualityReport

// HarmonizeCSV loads a raw hospital CSV through the ETL pipeline against
// the named pathology's CDE metadata and returns the harmonized table.
func HarmonizeCSV(r io.Reader, m ETLMapping, pathology string) (*Table, *ETLQualityReport, error) {
	cat := catalogue.Default()
	db := engine.NewDB()
	report, err := etl.LoadCSV(r, m, cat.Pathology(pathology), db, "harmonized")
	if err != nil {
		return nil, nil, err
	}
	return db.Table("harmonized"), report, nil
}
