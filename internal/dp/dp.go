// Package dp implements the differential-privacy layer of the platform's
// training flow: the paper's Workers either inject Gaussian noise locally
// ("local differential privacy (DP) guarantee") or rely on secure
// aggregation with noise added inside the SMPC protocol. This package
// provides the calibrated mechanisms, sensitivity helpers (clipping), and
// an (ε, δ) privacy accountant with basic and advanced composition.
package dp

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"mip/internal/stats"
)

// ErrBudgetExhausted is returned when a release would exceed the
// accountant's privacy budget.
var ErrBudgetExhausted = errors.New("dp: privacy budget exhausted")

// LaplaceScale returns the Laplace scale b achieving ε-DP for the given L1
// sensitivity: b = Δ₁/ε.
func LaplaceScale(sensitivity, epsilon float64) float64 {
	if epsilon <= 0 {
		return math.Inf(1)
	}
	return sensitivity / epsilon
}

// GaussianSigma returns the Gaussian σ achieving (ε, δ)-DP for the given
// L2 sensitivity via the classic analytic bound
// σ = Δ₂·sqrt(2·ln(1.25/δ))/ε (valid for ε ≤ 1; conservative above).
func GaussianSigma(sensitivity, epsilon, delta float64) float64 {
	if epsilon <= 0 || delta <= 0 {
		return math.Inf(1)
	}
	return sensitivity * math.Sqrt(2*math.Log(1.25/delta)) / epsilon
}

// Mechanism releases noisy values under a fixed privacy parameterization.
type Mechanism struct {
	rng *stats.RNG

	// Laplace if Delta (δ) is zero, Gaussian otherwise.
	Epsilon     float64
	Delta       float64
	Sensitivity float64
}

// NewLaplace builds an ε-DP Laplace mechanism for the given L1 sensitivity.
func NewLaplace(sensitivity, epsilon float64, seed int64) *Mechanism {
	return &Mechanism{rng: stats.NewRNG(seed), Epsilon: epsilon, Sensitivity: sensitivity}
}

// NewGaussian builds an (ε, δ)-DP Gaussian mechanism for the given L2
// sensitivity.
func NewGaussian(sensitivity, epsilon, delta float64, seed int64) *Mechanism {
	return &Mechanism{rng: stats.NewRNG(seed), Epsilon: epsilon, Delta: delta, Sensitivity: sensitivity}
}

// Scale returns the noise scale in use (Laplace b or Gaussian σ).
func (m *Mechanism) Scale() float64 {
	if m.Delta == 0 {
		return LaplaceScale(m.Sensitivity, m.Epsilon)
	}
	return GaussianSigma(m.Sensitivity, m.Epsilon, m.Delta)
}

// Release perturbs one value.
func (m *Mechanism) Release(v float64) float64 {
	if m.Epsilon <= 0 {
		return v // ε=0 disables the mechanism explicitly (testing only)
	}
	if m.Delta == 0 {
		return v + m.rng.Laplace(0, m.Scale())
	}
	return v + m.rng.Normal(0, m.Scale())
}

// ReleaseVec perturbs a vector element-wise (sensitivity must already
// account for the vector norm).
func (m *Mechanism) ReleaseVec(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = m.Release(v)
	}
	return out
}

// ClipL2 scales v down to at most the given L2 norm bound and returns the
// clipped vector and its original norm. Clipping bounds per-record
// sensitivity in gradient aggregation.
func ClipL2(v []float64, bound float64) ([]float64, float64) {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	norm := math.Sqrt(ss)
	if norm <= bound || norm == 0 {
		out := make([]float64, len(v))
		copy(out, v)
		return out, norm
	}
	scale := bound / norm
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * scale
	}
	return out, norm
}

// ClipL1 bounds the L1 norm analogously.
func ClipL1(v []float64, bound float64) ([]float64, float64) {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	if s <= bound || s == 0 {
		out := make([]float64, len(v))
		copy(out, v)
		return out, s
	}
	scale := bound / s
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = x * scale
	}
	return out, s
}

// Accountant tracks cumulative privacy loss against a budget.
type Accountant struct {
	mu sync.Mutex

	BudgetEpsilon float64
	BudgetDelta   float64

	spends []spend
}

type spend struct{ eps, delta float64 }

// NewAccountant returns an accountant with the given total budget.
func NewAccountant(epsilon, delta float64) *Accountant {
	return &Accountant{BudgetEpsilon: epsilon, BudgetDelta: delta}
}

// Spend records a release if the budget (under basic composition) allows
// it, and returns ErrBudgetExhausted otherwise.
func (a *Accountant) Spend(eps, delta float64) error {
	if eps < 0 || delta < 0 {
		return fmt.Errorf("dp: negative privacy parameters")
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	curEps, curDelta := a.totalsLocked()
	if curEps+eps > a.BudgetEpsilon+1e-12 || curDelta+delta > a.BudgetDelta+1e-15 {
		return ErrBudgetExhausted
	}
	a.spends = append(a.spends, spend{eps, delta})
	return nil
}

// totalsLocked computes basic (sequential) composition totals.
func (a *Accountant) totalsLocked() (eps, delta float64) {
	for _, s := range a.spends {
		eps += s.eps
		delta += s.delta
	}
	return eps, delta
}

// Spent returns the basic-composition totals so far.
func (a *Accountant) Spent() (eps, delta float64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.totalsLocked()
}

// Releases returns the number of recorded releases.
func (a *Accountant) Releases() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.spends)
}

// AdvancedComposition returns the (ε', δ') guarantee after k releases of an
// (ε, δ) mechanism under the advanced composition theorem with slack
// δSlack: ε' = ε·sqrt(2k·ln(1/δSlack)) + k·ε·(e^ε − 1),
// δ' = k·δ + δSlack.
func AdvancedComposition(eps, delta float64, k int, deltaSlack float64) (epsPrime, deltaPrime float64) {
	fk := float64(k)
	epsPrime = eps*math.Sqrt(2*fk*math.Log(1/deltaSlack)) + fk*eps*(math.Exp(eps)-1)
	deltaPrime = fk*delta + deltaSlack
	return epsPrime, deltaPrime
}

// PerStepEpsilon inverts basic composition: the per-release ε that spends a
// total budget over k releases.
func PerStepEpsilon(totalEps float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	return totalEps / float64(k)
}
