package dp

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestScales(t *testing.T) {
	if b := LaplaceScale(2, 0.5); b != 4 {
		t.Fatalf("Laplace scale = %v", b)
	}
	if !math.IsInf(LaplaceScale(1, 0), 1) {
		t.Fatal("ε=0 must give infinite scale")
	}
	sigma := GaussianSigma(1, 1, 1e-5)
	want := math.Sqrt(2 * math.Log(1.25e5))
	if math.Abs(sigma-want) > 1e-12 {
		t.Fatalf("Gaussian σ = %v, want %v", sigma, want)
	}
}

func TestLaplaceMechanismDistribution(t *testing.T) {
	m := NewLaplace(1, 0.5, 7) // b = 2
	const n = 100000
	var sum, sumAbs float64
	for i := 0; i < n; i++ {
		x := m.Release(10)
		sum += x
		sumAbs += math.Abs(x - 10)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean = %v", mean)
	}
	if mad := sumAbs / n; math.Abs(mad-2) > 0.1 {
		t.Fatalf("E|noise| = %v, want 2", mad)
	}
}

func TestGaussianMechanismDistribution(t *testing.T) {
	m := NewGaussian(1, 1, 1e-5, 11)
	sigma := m.Scale()
	const n = 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := m.Release(0)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean) > 0.1 || math.Abs(sd-sigma)/sigma > 0.05 {
		t.Fatalf("mean=%v sd=%v want sd=%v", mean, sd, sigma)
	}
}

func TestReleaseVec(t *testing.T) {
	m := NewLaplace(1, 1, 3)
	out := m.ReleaseVec([]float64{1, 2, 3})
	if len(out) != 3 {
		t.Fatal("length")
	}
}

func TestZeroEpsilonPassthrough(t *testing.T) {
	m := &Mechanism{Epsilon: 0}
	if m.Release(5) != 5 {
		t.Fatal("ε=0 should pass through")
	}
}

func TestClipL2(t *testing.T) {
	v := []float64{3, 4} // norm 5
	clipped, norm := ClipL2(v, 1)
	if norm != 5 {
		t.Fatalf("norm = %v", norm)
	}
	if math.Abs(clipped[0]-0.6) > 1e-12 || math.Abs(clipped[1]-0.8) > 1e-12 {
		t.Fatalf("clipped = %v", clipped)
	}
	// Below the bound: unchanged, and not aliased.
	same, _ := ClipL2(v, 10)
	same[0] = 99
	if v[0] == 99 {
		t.Fatal("ClipL2 aliased its input")
	}
}

func TestClipL1(t *testing.T) {
	v := []float64{1, -3} // L1 = 4
	clipped, norm := ClipL1(v, 2)
	if norm != 4 {
		t.Fatalf("norm = %v", norm)
	}
	if math.Abs(clipped[0]-0.5) > 1e-12 || math.Abs(clipped[1]+1.5) > 1e-12 {
		t.Fatalf("clipped = %v", clipped)
	}
}

// Property: clipping never increases the norm beyond the bound.
func TestClipProperty(t *testing.T) {
	f := func(a, b, c float64, bound float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) || math.IsNaN(bound) ||
			math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsInf(c, 0) {
			return true
		}
		bound = math.Abs(bound)
		if bound == 0 {
			return true
		}
		clipped, _ := ClipL2([]float64{a, b, c}, bound)
		var ss float64
		for _, x := range clipped {
			ss += x * x
		}
		return math.Sqrt(ss) <= bound*(1+1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccountant(t *testing.T) {
	a := NewAccountant(1.0, 1e-5)
	for i := 0; i < 10; i++ {
		if err := a.Spend(0.1, 1e-6); err != nil {
			t.Fatalf("spend %d: %v", i, err)
		}
	}
	if err := a.Spend(0.1, 0); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("expected exhaustion, got %v", err)
	}
	eps, delta := a.Spent()
	if math.Abs(eps-1.0) > 1e-9 || math.Abs(delta-1e-5) > 1e-12 {
		t.Fatalf("spent = %v, %v", eps, delta)
	}
	if a.Releases() != 10 {
		t.Fatalf("releases = %d", a.Releases())
	}
	if err := a.Spend(-1, 0); err == nil {
		t.Fatal("negative ε must error")
	}
}

func TestAdvancedComposition(t *testing.T) {
	// For small ε, advanced composition beats basic for large k.
	eps, delta := 0.01, 0.0
	k := 1000
	advEps, advDelta := AdvancedComposition(eps, delta, k, 1e-6)
	basicEps := eps * float64(k)
	if advEps >= basicEps {
		t.Fatalf("advanced ε=%v should beat basic ε=%v at k=%d", advEps, basicEps, k)
	}
	if advDelta != 1e-6 {
		t.Fatalf("advanced δ = %v", advDelta)
	}
}

func TestPerStepEpsilon(t *testing.T) {
	if e := PerStepEpsilon(1.0, 10); e != 0.1 {
		t.Fatalf("per-step ε = %v", e)
	}
	if e := PerStepEpsilon(1.0, 0); e != 0 {
		t.Fatalf("k=0 should give 0, got %v", e)
	}
}
