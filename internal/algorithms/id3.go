package algorithms

import (
	"fmt"

	"mip/internal/federation"
)

// ID3: the classic categorical decision tree. Splits are multiway (one
// child per level of the chosen feature), chosen by information gain, and a
// feature is used at most once along any path. The same federated
// histogram round as CART supplies per-node per-feature per-level class
// counts.

func init() {
	Register(&ID3{})
}

// ID3 implements the ID3 decision-tree algorithm.
type ID3 struct{}

// Spec implements Algorithm.
func (*ID3) Spec() Spec {
	return Spec{
		Name:  "id3",
		Label: "ID3",
		Desc:  "Information-gain decision tree over nominal features with multiway splits, grown from federated level histograms.",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"nominal"}},
		X:     VarSpec{Min: 1, Types: []string{"nominal"}},
		Parameters: []ParamSpec{
			{Name: "classes", Label: "Outcome classes", Type: "string"},
			{Name: "levels", Label: "Feature levels", Type: "string"},
			{Name: "max_depth", Label: "Maximum depth", Type: "int", Default: 4},
			{Name: "min_split", Label: "Minimum rows to split", Type: "int", Default: 20},
		},
	}
}

// id3NodeMeta tracks which features remain usable on each node's path.
type id3NodeMeta struct {
	used map[string]bool
}

// Run implements Algorithm.
func (a *ID3) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	classes := req.ParamStrings("classes")
	if len(classes) < 2 {
		return nil, fmt.Errorf("algorithms: id3 needs parameter classes")
	}
	levels := levelsParam(req)
	for _, v := range req.X {
		if len(levels[v]) == 0 {
			return nil, fmt.Errorf("algorithms: id3 needs levels for feature %q", v)
		}
	}
	maxDepth := req.ParamInt("max_depth", 4)
	minSplit := float64(req.ParamInt("min_split", 20))

	var features []TreeFeature
	for _, v := range req.X {
		features = append(features, TreeFeature{Name: v, Levels: levels[v]})
	}
	tree := &Tree{Features: features, Classes: classes, YVar: req.Y[0]}
	tree.Nodes = append(tree.Nodes, TreeNode{ID: 0})
	meta := map[int]*id3NodeMeta{0: {used: map[string]bool{}}}

	vars := append([]string{req.Y[0]}, req.X...)
	frontier := []int{0}
	for len(frontier) > 0 {
		tj, err := treeJSON(tree)
		if err != nil {
			return nil, err
		}
		fr := make([]float64, len(frontier))
		for i, id := range frontier {
			fr[i] = float64(id)
		}
		agg, err := sess.Sum(federation.LocalRunSpec{
			Func:   "tree_hist_local",
			Vars:   vars,
			Filter: req.Filter,
			Kwargs: federation.Kwargs{"tree": tj, "frontier": fr},
		}, "hist", "totals")
		if err != nil {
			return nil, err
		}
		hist, err := agg.Matrix("hist")
		if err != nil {
			return nil, err
		}
		totals, err := agg.Matrix("totals")
		if err != nil {
			return nil, err
		}
		rowsPerNode := 0
		for _, f := range features {
			rowsPerNode += f.Bins()
		}

		var next []int
		for fi, nodeID := range frontier {
			tot := totals[fi]
			setLeafPayload(&tree.Nodes[nodeID], tot, true)
			node := &tree.Nodes[nodeID]
			nm := meta[nodeID]
			if node.Depth >= maxDepth || node.N < minSplit || isPure(tot, true) || len(nm.used) == len(features) {
				node.Leaf = true
				continue
			}
			// Information gain per unused feature.
			parentH, n := entropy(tot)
			bestGain, bestF := 0.0, -1
			nodeHist := hist[fi*rowsPerNode : (fi+1)*rowsPerNode]
			off := 0
			for fIdx, f := range features {
				bins := f.Bins()
				rows := nodeHist[off : off+bins]
				off += bins
				if nm.used[f.Name] {
					continue
				}
				var condH float64
				for _, counts := range rows {
					h, nl := entropy(counts)
					if nl > 0 {
						condH += nl / n * h
					}
				}
				if g := parentH - condH; g > bestGain+1e-12 {
					bestGain, bestF = g, fIdx
				}
			}
			if bestF < 0 {
				node.Leaf = true
				continue
			}
			f := features[bestF]
			children := make([]int, len(f.Levels))
			for li := range f.Levels {
				child := TreeNode{ID: len(tree.Nodes), Depth: node.Depth + 1}
				tree.Nodes = append(tree.Nodes, child)
				node = &tree.Nodes[nodeID] // re-address after append
				children[li] = child.ID
				used := map[string]bool{f.Name: true}
				for k := range nm.used {
					used[k] = true
				}
				meta[child.ID] = &id3NodeMeta{used: used}
				next = append(next, child.ID)
			}
			node.Var = f.Name
			node.Children = children
		}
		frontier = next
	}

	tj, err := treeJSON(tree)
	if err != nil {
		return nil, err
	}
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func: "tree_eval_local", Vars: vars, Filter: req.Filter,
		Kwargs: federation.Kwargs{"tree": tj},
	}, "conf")
	if err != nil {
		return nil, err
	}
	conf, _ := agg.Matrix("conf")
	var n, correct float64
	for i := range conf {
		for j := range conf[i] {
			n += conf[i][j]
			if i == j {
				correct += conf[i][j]
			}
		}
	}
	result := Result{"tree": tree, "n_nodes": len(tree.Nodes), "confusion": conf, "classes": classes}
	if n > 0 {
		result["accuracy"] = correct / n
	}
	return result, nil
}
