package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
)

// PCA: one aggregation round collects n, per-variable sums and the raw
// cross-product matrix ΣxxT; the master standardizes it into the
// correlation matrix and diagonalizes with the Jacobi eigensolver.

func init() {
	federation.RegisterLocal("pca_local", pcaLocal)
	Register(&PCA{})
}

func pcaLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	vars, err := kwVars(kwargs)
	if err != nil {
		return nil, err
	}
	cols := make([][]float64, len(vars))
	for i, v := range vars {
		c, err := floatCol(data, v)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	p := len(vars)
	n := 0
	if p > 0 {
		n = len(cols[0])
	}
	sums := make([]float64, p)
	cross := make([][]float64, p)
	for i := range cross {
		cross[i] = make([]float64, p)
	}
	for r := 0; r < n; r++ {
		for i := 0; i < p; i++ {
			xi := cols[i][r]
			sums[i] += xi
			for j := i; j < p; j++ {
				cross[i][j] += xi * cols[j][r]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			cross[i][j] = cross[j][i]
		}
	}
	return federation.Transfer{"n": float64(n), "sums": sums, "cross": cross}, nil
}

// PCAResult is the decomposition output.
type PCAResult struct {
	Variables         []string    `json:"variables"`
	Eigenvalues       []float64   `json:"eigenvalues"`
	ExplainedVariance []float64   `json:"explained_variance"`
	Cumulative        []float64   `json:"cumulative_variance"`
	Loadings          [][]float64 `json:"loadings"` // [component][variable]
	N                 int         `json:"n"`
}

// PCA implements principal component analysis on the federated
// correlation matrix.
type PCA struct{}

// Spec implements Algorithm.
func (*PCA) Spec() Spec {
	return Spec{
		Name:  "pca",
		Label: "Principal Components Analysis",
		Desc:  "PCA of the federated correlation matrix of the Y variables.",
		Y:     VarSpec{Min: 2, Types: []string{"real", "integer"}},
	}
}

// Run implements Algorithm.
func (a *PCA) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "pca_local",
		Vars:   req.Y,
		Filter: req.Filter,
		Kwargs: federation.Kwargs{"vars": req.Y},
	}, "n", "sums", "cross")
	if err != nil {
		return nil, err
	}
	n, _ := agg.Float("n")
	sums, _ := agg.Floats("sums")
	crossRows, err := agg.Matrix("cross")
	if err != nil {
		return nil, err
	}
	p := len(req.Y)
	if n < float64(p)+1 {
		return nil, fmt.Errorf("algorithms: PCA needs more observations than variables (n=%v p=%d)", n, p)
	}
	// Covariance then correlation.
	cov := stats.NewDense(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			cov.Set(i, j, (crossRows[i][j]-sums[i]*sums[j]/n)/(n-1))
		}
	}
	corr := stats.NewDense(p, p)
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			d := math.Sqrt(cov.At(i, i) * cov.At(j, j))
			if d == 0 {
				return nil, fmt.Errorf("algorithms: variable %q has zero variance", req.Y[i])
			}
			corr.Set(i, j, cov.At(i, j)/d)
		}
	}
	vals, vecs, err := stats.EigenSym(corr)
	if err != nil {
		return nil, err
	}
	res := PCAResult{Variables: req.Y, Eigenvalues: vals, N: int(n)}
	total := 0.0
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	cum := 0.0
	for ci := 0; ci < p; ci++ {
		ev := vals[ci] / total
		cum += ev
		res.ExplainedVariance = append(res.ExplainedVariance, ev)
		res.Cumulative = append(res.Cumulative, cum)
		loading := make([]float64, p)
		for vi := 0; vi < p; vi++ {
			loading[vi] = vecs.At(vi, ci)
		}
		res.Loadings = append(res.Loadings, loading)
	}
	return Result{"pca": res}, nil
}
