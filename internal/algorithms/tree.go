package algorithms

import (
	"encoding/json"
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
)

// Shared machinery for the federated decision trees (CART and ID3). Trees
// are grown breadth-first: each round, every worker routes its rows down
// the current partial tree and returns, for every frontier node × feature ×
// bin/level, the class counts (classification) or the (n, Σy, Σy²) moments
// (regression). The master picks the best split per frontier node from the
// aggregated histograms — rows never leave the workers, and the per-round
// transfer has a fixed shape, so tree growing runs over SMPC unchanged.

// TreeFeature describes one splitting feature: numeric features carry
// global bin edges (len = bins+1), categorical ones their levels.
type TreeFeature struct {
	Name   string    `json:"name"`
	Edges  []float64 `json:"edges,omitempty"`
	Levels []string  `json:"levels,omitempty"`
}

// Bins returns the number of histogram cells for the feature.
func (f TreeFeature) Bins() int {
	if len(f.Levels) > 0 {
		return len(f.Levels)
	}
	return len(f.Edges) - 1
}

// binOf maps a numeric value into its bin.
func (f TreeFeature) binOf(x float64) int {
	b := len(f.Edges) - 2
	for i := 1; i < len(f.Edges)-1; i++ {
		if x < f.Edges[i] {
			b = i - 1
			break
		}
	}
	if b < 0 {
		b = 0
	}
	return b
}

// TreeNode is one node of a partial or final tree.
type TreeNode struct {
	ID int `json:"id"`
	// Internal-node split: numeric (Var, Threshold) goes left when
	// x <= Threshold; categorical CART (Var, Level) goes left when
	// x == Level; ID3 multiway splits use Children keyed by level index.
	Var       string  `json:"var,omitempty"`
	Threshold float64 `json:"threshold,omitempty"`
	Level     string  `json:"level,omitempty"`
	Left      int     `json:"left,omitempty"`
	Right     int     `json:"right,omitempty"`
	Children  []int   `json:"children,omitempty"` // ID3 multiway (per level)
	// Leaf payload.
	Leaf       bool      `json:"leaf"`
	Prediction float64   `json:"prediction"` // class index or mean
	ClassDist  []float64 `json:"class_dist,omitempty"`
	N          float64   `json:"n"`
	Depth      int       `json:"depth"`
}

// Tree is the grown model.
type Tree struct {
	Nodes    []TreeNode    `json:"nodes"`
	Features []TreeFeature `json:"features"`
	Classes  []string      `json:"classes,omitempty"` // empty for regression
	YVar     string        `json:"y"`
}

// routeRow walks a row down the tree; it returns the reached node id (a
// frontier node id or a leaf).
func (t *Tree) routeRow(getNum func(name string) float64, getStr func(name string) string) int {
	id := 0
	for {
		n := &t.Nodes[id]
		if n.Leaf || (n.Var == "") {
			return id
		}
		if len(n.Children) > 0 { // ID3 multiway
			lv := getStr(n.Var)
			next := -1
			for _, f := range t.Features {
				if f.Name != n.Var {
					continue
				}
				for li, l := range f.Levels {
					if l == lv {
						next = n.Children[li]
						break
					}
				}
			}
			if next < 0 {
				return id // unseen level: stop here (treated as leaf)
			}
			id = next
			continue
		}
		if n.Level != "" { // categorical binary split
			if getStr(n.Var) == n.Level {
				id = n.Left
			} else {
				id = n.Right
			}
			continue
		}
		if getNum(n.Var) <= n.Threshold {
			id = n.Left
		} else {
			id = n.Right
		}
	}
}

func init() {
	federation.RegisterLocal("tree_hist_local", treeHistLocal)
	federation.RegisterLocal("tree_eval_local", treeEvalLocal)
}

// treeArgs decodes the shared kwargs of the tree local steps.
type treeArgs struct {
	tree     *Tree
	frontier []int
	classes  []string // nil → regression
	yvar     string
}

func parseTreeArgs(kwargs federation.Kwargs) (*treeArgs, error) {
	raw, _ := kwargs["tree"].(string)
	if raw == "" {
		return nil, fmt.Errorf("algorithms: missing tree kwarg")
	}
	var tree Tree
	if err := json.Unmarshal([]byte(raw), &tree); err != nil {
		return nil, fmt.Errorf("algorithms: decoding tree: %w", err)
	}
	a := &treeArgs{tree: &tree, yvar: tree.YVar, classes: tree.Classes}
	if fr, err := kw(kwargs).Floats("frontier"); err == nil {
		for _, f := range fr {
			a.frontier = append(a.frontier, int(f))
		}
	}
	return a, nil
}

// columnAccessors builds fast per-row getters for the tree's features.
func columnAccessors(t *Tree, data *engine.Table) (func(r int, name string) float64, func(r int, name string) string, error) {
	numCols := map[string][]float64{}
	strCols := map[string][]string{}
	for _, f := range t.Features {
		if len(f.Levels) > 0 {
			c, err := stringCol(data, f.Name)
			if err != nil {
				return nil, nil, err
			}
			strCols[f.Name] = c
		} else {
			c, err := floatCol(data, f.Name)
			if err != nil {
				return nil, nil, err
			}
			numCols[f.Name] = c
		}
	}
	getNum := func(r int, name string) float64 {
		if c, ok := numCols[name]; ok {
			return c[r]
		}
		return math.NaN()
	}
	getStr := func(r int, name string) string {
		if c, ok := strCols[name]; ok {
			return c[r]
		}
		return ""
	}
	return getNum, getStr, nil
}

// treeHistLocal aggregates split histograms for the frontier nodes.
// Output shapes: hist is (Σ_{frontier,feature} bins) × width where width is
// len(classes) for classification or 3 for regression; totals is
// len(frontier) × width.
func treeHistLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	a, err := parseTreeArgs(kwargs)
	if err != nil {
		return nil, err
	}
	t := a.tree
	getNum, getStr, err := columnAccessors(t, data)
	if err != nil {
		return nil, err
	}
	classification := len(a.classes) > 0
	width := 3
	classIdx := map[string]int{}
	if classification {
		width = len(a.classes)
		for i, c := range a.classes {
			classIdx[c] = i
		}
	}
	var ys []float64
	var ysC []string
	if classification {
		if ysC, err = stringCol(data, a.yvar); err != nil {
			return nil, err
		}
	} else {
		if ys, err = floatCol(data, a.yvar); err != nil {
			return nil, err
		}
	}

	frontierPos := map[int]int{}
	for i, id := range a.frontier {
		frontierPos[id] = i
	}
	rowsPerNode := 0
	for _, f := range t.Features {
		rowsPerNode += f.Bins()
	}
	hist := make([][]float64, len(a.frontier)*rowsPerNode)
	for i := range hist {
		hist[i] = make([]float64, width)
	}
	totals := make([][]float64, len(a.frontier))
	for i := range totals {
		totals[i] = make([]float64, width)
	}

	n := data.NumRows()
	for r := 0; r < n; r++ {
		nodeID := t.routeRow(
			func(name string) float64 { return getNum(r, name) },
			func(name string) string { return getStr(r, name) },
		)
		fi, onFrontier := frontierPos[nodeID]
		if !onFrontier {
			continue
		}
		// Accumulate this row into every feature's histogram for the node.
		var cls int
		var yv float64
		if classification {
			var ok bool
			cls, ok = classIdx[ysC[r]]
			if !ok {
				continue
			}
			totals[fi][cls]++
		} else {
			yv = ys[r]
			totals[fi][0]++
			totals[fi][1] += yv
			totals[fi][2] += yv * yv
		}
		base := fi * rowsPerNode
		off := 0
		for _, f := range t.Features {
			var b int
			if len(f.Levels) > 0 {
				b = -1
				lv := getStr(r, f.Name)
				for li, l := range f.Levels {
					if l == lv {
						b = li
						break
					}
				}
				if b < 0 {
					off += f.Bins()
					continue
				}
			} else {
				b = f.binOf(getNum(r, f.Name))
			}
			row := hist[base+off+b]
			if classification {
				row[cls]++
			} else {
				row[0]++
				row[1] += yv
				row[2] += yv * yv
			}
			off += f.Bins()
		}
	}
	return federation.Transfer{"hist": hist, "totals": totals}, nil
}

// treeEvalLocal scores a finished tree: classification returns the k×k
// confusion matrix, regression the (n, sse, sae) triple.
func treeEvalLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	a, err := parseTreeArgs(kwargs)
	if err != nil {
		return nil, err
	}
	t := a.tree
	getNum, getStr, err := columnAccessors(t, data)
	if err != nil {
		return nil, err
	}
	classification := len(a.classes) > 0
	if classification {
		ysC, err := stringCol(data, a.yvar)
		if err != nil {
			return nil, err
		}
		classIdx := map[string]int{}
		for i, c := range a.classes {
			classIdx[c] = i
		}
		k := len(a.classes)
		conf := make([][]float64, k)
		for i := range conf {
			conf[i] = make([]float64, k)
		}
		for r := 0; r < data.NumRows(); r++ {
			truth, ok := classIdx[ysC[r]]
			if !ok {
				continue
			}
			id := t.routeRow(
				func(name string) float64 { return getNum(r, name) },
				func(name string) string { return getStr(r, name) },
			)
			conf[truth][int(t.Nodes[id].Prediction)]++
		}
		return federation.Transfer{"conf": conf}, nil
	}
	ys, err := floatCol(data, a.yvar)
	if err != nil {
		return nil, err
	}
	var n, sse, sae float64
	for r := 0; r < data.NumRows(); r++ {
		id := t.routeRow(
			func(name string) float64 { return getNum(r, name) },
			func(name string) string { return getStr(r, name) },
		)
		d := ys[r] - t.Nodes[id].Prediction
		n++
		sse += d * d
		sae += math.Abs(d)
	}
	return federation.Transfer{"metrics": []float64{n, sse, sae}}, nil
}

// impurity helpers

// gini computes the Gini impurity of class counts and their total.
func gini(counts []float64) (imp, total float64) {
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	imp = 1
	for _, c := range counts {
		p := c / total
		imp -= p * p
	}
	return imp, total
}

// entropy computes the Shannon entropy (bits) of class counts.
func entropy(counts []float64) (h, total float64) {
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0, 0
	}
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := c / total
		h -= p * math.Log2(p)
	}
	return h, total
}

// argmaxF returns the index of the largest element.
func argmaxF(xs []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range xs {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// treeJSON serializes a tree for shipment in kwargs.
func treeJSON(t *Tree) (string, error) {
	b, err := json.Marshal(t)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// featureBinEdges builds equal-width bin edges over a global [lo, hi].
func featureBinEdges(lo, hi float64, bins int) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	edges := make([]float64, bins+1)
	for i := range edges {
		edges[i] = lo + (hi-lo)*float64(i)/float64(bins)
	}
	return edges
}
