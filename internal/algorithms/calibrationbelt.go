package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
)

// Calibration Belt (GiViTI): assesses the calibration of a probabilistic
// prediction against observed binary outcomes. The calibration curve is a
// polynomial logistic model on the logit of the predicted probability; the
// degree grows by forward likelihood-ratio selection, the belt is the
// pointwise confidence region of the fitted curve, and the calibration
// test compares the fitted curve against perfect calibration (the
// identity). Each Newton iteration is one federated aggregation round.

func init() {
	federation.RegisterLocal("calbelt_grad_local", calbeltGradLocal)
	Register(&CalibrationBelt{})
}

// calbeltGradLocal: logistic gradient/Hessian/log-likelihood for the
// polynomial-in-logit design at the supplied coefficients.
func calbeltGradLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	pvar, _ := kwargs["p_var"].(string)
	yvar, _ := kwargs["y"].(string)
	posLevel, _ := kwargs["pos_level"].(string)
	degree := int(anyToFloat(kwargs["degree"]))
	if pvar == "" || yvar == "" || posLevel == "" || degree < 1 {
		return nil, fmt.Errorf("algorithms: calbelt needs p_var, y, pos_level, degree kwargs")
	}
	beta, err := kw(kwargs).Floats("beta")
	if err != nil {
		return nil, err
	}
	ps, err := floatCol(data, pvar)
	if err != nil {
		return nil, err
	}
	ysRaw, err := stringCol(data, yvar)
	if err != nil {
		return nil, err
	}
	p := degree + 1
	grad := make([]float64, p)
	hess := stats.NewDense(p, p)
	var ll, n, pos float64
	row := make([]float64, p)
	for i := range ps {
		z := logit(clampProb(ps[i]))
		row[0] = 1
		for d := 1; d <= degree; d++ {
			row[d] = row[d-1] * z
		}
		y := 0.0
		if ysRaw[i] == posLevel {
			y = 1
		}
		var eta float64
		for j := 0; j < p; j++ {
			eta += row[j] * beta[j]
		}
		mu := sigmoid(eta)
		w := mu * (1 - mu)
		r := y - mu
		for j := 0; j < p; j++ {
			grad[j] += row[j] * r
			for k2 := j; k2 < p; k2++ {
				hess.Add(j, k2, w*row[j]*row[k2])
			}
		}
		ll += y*safeLog(mu) + (1-y)*safeLog(1-mu)
		n++
		pos += y
	}
	for j := 0; j < p; j++ {
		for k2 := 0; k2 < j; k2++ {
			hess.Set(j, k2, hess.At(k2, j))
		}
	}
	return federation.Transfer{
		"n": n, "pos": pos, "grad": grad, "hess": denseToRows(hess), "ll": ll,
	}, nil
}

func logit(p float64) float64 { return math.Log(p / (1 - p)) }

func clampProb(p float64) float64 {
	const eps = 1e-6
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

// BeltPoint is one grid point of the calibration belt.
type BeltPoint struct {
	P      float64 `json:"p"`      // predicted probability
	Fitted float64 `json:"fitted"` // calibrated (observed) probability
	Low80  float64 `json:"low_80"`
	High80 float64 `json:"high_80"`
	Low95  float64 `json:"low_95"`
	High95 float64 `json:"high_95"`
}

// CalBeltResult is the full output.
type CalBeltResult struct {
	Degree    int         `json:"degree"`
	N         int         `json:"n"`
	TestStat  float64     `json:"test_stat"` // LR vs perfect calibration
	PValue    float64     `json:"p_value"`
	Belt      []BeltPoint `json:"belt"`
	Coef      []float64   `json:"coefficients"`
	UnderOver string      `json:"under_over"` // qualitative verdict
}

// CalibrationBelt implements the GiViTI calibration belt.
type CalibrationBelt struct{}

// Spec implements Algorithm.
func (*CalibrationBelt) Spec() Spec {
	return Spec{
		Name:  "calibration_belt",
		Label: "Calibration Belt",
		Desc:  "GiViTI calibration belt of a probabilistic prediction against binary outcomes: forward-selected polynomial-logit calibration curve, 80/95% belts and the LR calibration test.",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"nominal"}, Doc: "observed outcome"},
		X:     VarSpec{Min: 1, Max: 1, Types: []string{"real"}, Doc: "predicted probability in (0,1)"},
		Parameters: []ParamSpec{
			{Name: "pos_level", Label: "Positive outcome level", Type: "string"},
			{Name: "max_degree", Label: "Maximum polynomial degree", Type: "int", Default: 4},
			{Name: "grid", Label: "Belt grid points", Type: "int", Default: 100},
		},
	}
}

// fitCalbelt runs federated Newton for a fixed degree; returns beta, its
// covariance (inverse Hessian) and the final log-likelihood.
func fitCalbelt(sess *federation.Session, req Request, degree int) (beta []float64, cov *stats.Dense, ll float64, n float64, err error) {
	p := degree + 1
	beta = make([]float64, p)
	beta[1] = 1 // start at the identity calibration
	vars := []string{req.Y[0], req.X[0]}
	var hess *stats.Dense
	for iter := 0; iter < 50; iter++ {
		agg, err2 := sess.Sum(federation.LocalRunSpec{
			Func:   "calbelt_grad_local",
			Vars:   vars,
			Filter: req.Filter,
			Kwargs: federation.Kwargs{
				"p_var": req.X[0], "y": req.Y[0],
				"pos_level": req.ParamString("pos_level", ""),
				"degree":    degree, "beta": beta,
			},
		}, "n", "pos", "grad", "hess", "ll")
		if err2 != nil {
			return nil, nil, 0, 0, err2
		}
		n, _ = agg.Float("n")
		pos, _ := agg.Float("pos")
		if n <= float64(p) || pos == 0 || pos == n {
			return nil, nil, 0, 0, fmt.Errorf("algorithms: calibration belt cannot fit (n=%v, positives=%v)", n, pos)
		}
		grad, _ := agg.Floats("grad")
		hessRows, err2 := agg.Matrix("hess")
		if err2 != nil {
			return nil, nil, 0, 0, err2
		}
		ll, _ = agg.Float("ll")
		hess = rowsToDense(hessRows)
		step, err2 := stats.SolveSPD(hess, grad)
		if err2 != nil {
			step, err2 = stats.SolveRidge(hess, grad, 1e-6)
			if err2 != nil {
				return nil, nil, 0, 0, err2
			}
		}
		var delta float64
		for j := range beta {
			beta[j] += step[j]
			delta += step[j] * step[j]
		}
		if math.Sqrt(delta) < 1e-9 {
			break
		}
	}
	cov, err = stats.InvSPD(hess)
	if err != nil {
		return nil, nil, 0, 0, err
	}
	return beta, cov, ll, n, nil
}

// identityLL evaluates the log-likelihood of the perfect-calibration model
// (η = logit(p)) in one round.
func identityLL(sess *federation.Session, req Request) (float64, error) {
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "calbelt_grad_local",
		Vars:   []string{req.Y[0], req.X[0]},
		Filter: req.Filter,
		Kwargs: federation.Kwargs{
			"p_var": req.X[0], "y": req.Y[0],
			"pos_level": req.ParamString("pos_level", ""),
			"degree":    1, "beta": []float64{0, 1},
		},
	}, "ll")
	if err != nil {
		return 0, err
	}
	return agg.Float("ll")
}

// Run implements Algorithm.
func (a *CalibrationBelt) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	if req.ParamString("pos_level", "") == "" {
		return nil, fmt.Errorf("algorithms: calibration_belt needs parameter pos_level")
	}
	maxDegree := req.ParamInt("max_degree", 4)
	grid := req.ParamInt("grid", 100)

	// Forward degree selection by LR tests at 95%.
	degree := 1
	beta, cov, ll, n, err := fitCalbelt(sess, req, 1)
	if err != nil {
		return nil, err
	}
	for d := 2; d <= maxDegree; d++ {
		b2, c2, ll2, _, err := fitCalbelt(sess, req, d)
		if err != nil {
			break
		}
		lr := 2 * (ll2 - ll)
		if lr < 0 {
			lr = 0
		}
		if 1-stats.ChiSquaredCDF(lr, 1) >= 0.05 {
			break // higher degree not justified
		}
		degree, beta, cov, ll = d, b2, c2, ll2
	}

	// Calibration test: LR of the fitted curve vs the identity.
	llID, err := identityLL(sess, req)
	if err != nil {
		return nil, err
	}
	stat := 2 * (ll - llID)
	if stat < 0 {
		stat = 0
	}
	df := float64(degree + 1)
	pValue := 1 - stats.ChiSquaredCDF(stat, df)

	// Belt over the probability grid.
	res := CalBeltResult{Degree: degree, N: int(n), TestStat: stat, PValue: pValue, Coef: beta}
	z80 := stats.NormalQuantile(0.90)
	z95 := stats.NormalQuantile(0.975)
	x := make([]float64, degree+1)
	var above, below int
	for g := 0; g < grid; g++ {
		p := clampProb((float64(g) + 0.5) / float64(grid))
		z := logit(p)
		x[0] = 1
		for d := 1; d <= degree; d++ {
			x[d] = x[d-1] * z
		}
		var eta, v float64
		for i := range x {
			eta += x[i] * beta[i]
			for j := range x {
				v += x[i] * cov.At(i, j) * x[j]
			}
		}
		se := math.Sqrt(v)
		bp := BeltPoint{
			P:      p,
			Fitted: sigmoid(eta),
			Low80:  sigmoid(eta - z80*se),
			High80: sigmoid(eta + z80*se),
			Low95:  sigmoid(eta - z95*se),
			High95: sigmoid(eta + z95*se),
		}
		res.Belt = append(res.Belt, bp)
		if bp.Low95 > p {
			above++ // observed exceeds predicted: underestimation
		}
		if bp.High95 < p {
			below++
		}
	}
	switch {
	case above > 0 && below > 0:
		res.UnderOver = "mixed miscalibration"
	case above > 0:
		res.UnderOver = "underestimates risk"
	case below > 0:
		res.UnderOver = "overestimates risk"
	default:
		res.UnderOver = "well calibrated"
	}
	return Result{"calibration_belt": res}, nil
}
