package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
)

// Federated Kaplan-Meier: round 1 takes the disjoint union of the distinct
// event times across workers (the SMPC engine's union primitive); round 2
// aggregates, per group and per distinct time, the event and censoring
// counts, from which the master builds the product-limit estimator with
// Greenwood confidence intervals and the log-rank test between two groups.

func init() {
	federation.RegisterLocal("km_times_local", kmTimesLocal)
	federation.RegisterLocal("km_counts_local", kmCountsLocal)
	Register(&KaplanMeier{})
}

func kmTimesLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	timeVar, _ := kwargs["time"].(string)
	ts, err := floatCol(data, timeVar)
	if err != nil {
		return nil, err
	}
	seen := map[float64]struct{}{}
	for _, t := range ts {
		seen[t] = struct{}{}
	}
	out := make([]float64, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	return federation.Transfer{"times": out}, nil
}

// kmCountsLocal returns per group g and per distinct time t: events d[g][t],
// censorings c[g][t] and the group totals.
func kmCountsLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	timeVar, _ := kwargs["time"].(string)
	eventVar, _ := kwargs["event"].(string)
	times, err := kw(kwargs).Floats("times")
	if err != nil {
		return nil, err
	}
	groups, err := kwVarsKey(kwargs, "groups")
	if err != nil {
		return nil, err
	}
	groupVar, _ := kwargs["group_var"].(string)

	ts, err := floatCol(data, timeVar)
	if err != nil {
		return nil, err
	}
	evs, err := floatCol(data, eventVar)
	if err != nil {
		return nil, err
	}
	var gs []string
	if groupVar != "" {
		if gs, err = stringCol(data, groupVar); err != nil {
			return nil, err
		}
	}
	timeIdx := make(map[float64]int, len(times))
	for i, t := range times {
		timeIdx[t] = i
	}
	groupIdx := make(map[string]int, len(groups))
	for i, g := range groups {
		groupIdx[g] = i
	}
	ng := len(groups)
	events := make([][]float64, ng)
	censored := make([][]float64, ng)
	totals := make([]float64, ng)
	for g := 0; g < ng; g++ {
		events[g] = make([]float64, len(times))
		censored[g] = make([]float64, len(times))
	}
	for r := range ts {
		g := 0
		if groupVar != "" {
			gi, ok := groupIdx[gs[r]]
			if !ok {
				continue
			}
			g = gi
		}
		ti, ok := timeIdx[ts[r]]
		if !ok {
			continue // time discovered after round 1 (shouldn't happen)
		}
		totals[g]++
		if evs[r] != 0 {
			events[g][ti]++
		} else {
			censored[g][ti]++
		}
	}
	return federation.Transfer{"events": events, "censored": censored, "totals": totals}, nil
}

// KMPoint is one step of a survival curve.
type KMPoint struct {
	Time     float64 `json:"time"`
	AtRisk   float64 `json:"at_risk"`
	Events   float64 `json:"events"`
	Censored float64 `json:"censored"`
	Survival float64 `json:"survival"`
	CILow    float64 `json:"ci_low"`
	CIHigh   float64 `json:"ci_high"`
}

// KMCurve is one group's estimator.
type KMCurve struct {
	Group  string    `json:"group"`
	N      float64   `json:"n"`
	Events float64   `json:"events"`
	Median float64   `json:"median"` // NaN if never below 0.5
	Points []KMPoint `json:"points"`
}

// KaplanMeier implements the federated Kaplan-Meier estimator.
type KaplanMeier struct{}

// Spec implements Algorithm.
func (*KaplanMeier) Spec() Spec {
	return Spec{
		Name:  "kaplan_meier",
		Label: "Kaplan-Meier Estimator",
		Desc:  "Product-limit survival curves (Greenwood CIs) per group with a log-rank test; distinct event times come from the SMPC disjoint union.",
		Y:     VarSpec{Min: 2, Max: 2, Doc: "time variable, then event indicator (1=event, 0=censored)"},
		X:     VarSpec{Min: 0, Max: 1, Types: []string{"nominal"}, Doc: "optional grouping variable"},
		Parameters: []ParamSpec{
			{Name: "groups", Label: "Group values", Type: "string"},
			{Name: "alpha", Label: "CI significance", Type: "real", Default: 0.05},
		},
	}
}

// Run implements Algorithm.
func (a *KaplanMeier) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	timeVar, eventVar := req.Y[0], req.Y[1]
	groups := req.ParamStrings("groups")
	groupVar := ""
	if len(req.X) == 1 {
		groupVar = req.X[0]
		if len(groups) < 2 {
			return nil, fmt.Errorf("algorithms: kaplan_meier with a group variable needs parameter groups")
		}
	} else {
		groups = []string{"all"}
	}

	vars := []string{timeVar, eventVar}
	if groupVar != "" {
		vars = append(vars, groupVar)
	}

	// Round 1: distinct times (secure disjoint union when SMPC is on).
	times, err := sess.SecureUnion(federation.LocalRunSpec{
		Func:   "km_times_local",
		Vars:   vars,
		Filter: req.Filter,
		Kwargs: federation.Kwargs{"time": timeVar},
	}, "times")
	if err != nil {
		return nil, err
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("algorithms: no observations")
	}

	// Round 2: counts per group per time.
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "km_counts_local",
		Vars:   vars,
		Filter: req.Filter,
		Kwargs: federation.Kwargs{
			"time": timeVar, "event": eventVar, "times": times,
			"groups": groups, "group_var": groupVar,
		},
	}, "events", "censored", "totals")
	if err != nil {
		return nil, err
	}
	events, err := agg.Matrix("events")
	if err != nil {
		return nil, err
	}
	censored, err := agg.Matrix("censored")
	if err != nil {
		return nil, err
	}
	totals, _ := agg.Floats("totals")

	alpha := req.ParamFloat("alpha", 0.05)
	zcrit := stats.NormalQuantile(1 - alpha/2)
	var curves []KMCurve
	for g, name := range groups {
		curves = append(curves, buildKMCurve(name, times, events[g], censored[g], totals[g], zcrit))
	}

	result := Result{"curves": curves, "times": times}
	if len(groups) == 2 {
		chi, p := logRank(times, events, censored, totals)
		result["logrank_chi2"] = chi
		result["logrank_p"] = p
	}
	return result, nil
}

func buildKMCurve(name string, times []float64, events, censored []float64, total, zcrit float64) KMCurve {
	curve := KMCurve{Group: name, N: total, Median: math.NaN()}
	surv := 1.0
	var greenwood float64
	atRisk := total
	for i, t := range times {
		d, c := events[i], censored[i]
		if atRisk <= 0 {
			break
		}
		if d > 0 {
			surv *= 1 - d/atRisk
			if atRisk > d {
				greenwood += d / (atRisk * (atRisk - d))
			}
			curve.Events += d
		}
		se := surv * math.Sqrt(greenwood)
		p := KMPoint{
			Time: t, AtRisk: atRisk, Events: d, Censored: c, Survival: surv,
			CILow:  math.Max(0, surv-zcrit*se),
			CIHigh: math.Min(1, surv+zcrit*se),
		}
		curve.Points = append(curve.Points, p)
		if math.IsNaN(curve.Median) && surv <= 0.5 {
			curve.Median = t
		}
		atRisk -= d + c
	}
	return curve
}

// logRank computes the two-group log-rank statistic.
func logRank(times []float64, events, censored [][]float64, totals []float64) (chi2, p float64) {
	atRisk := []float64{totals[0], totals[1]}
	var oMinusE, varSum float64
	for i := range times {
		d0, d1 := events[0][i], events[1][i]
		n0, n1 := atRisk[0], atRisk[1]
		n := n0 + n1
		d := d0 + d1
		if n > 1 && d > 0 {
			e0 := d * n0 / n
			v := d * (n0 / n) * (n1 / n) * (n - d) / (n - 1)
			oMinusE += d0 - e0
			varSum += v
		}
		atRisk[0] -= d0 + censored[0][i]
		atRisk[1] -= d1 + censored[1][i]
	}
	if varSum <= 0 {
		return 0, 1
	}
	chi2 = oMinusE * oMinusE / varSum
	return chi2, 1 - stats.ChiSquaredCDF(chi2, 1)
}
