package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
)

// floatCol extracts a complete (non-NULL) float column from a local step's
// relation input. The session's data query already applies complete-cases
// filtering, so NULLs here indicate a caller bug.
func floatCol(data *engine.Table, name string) ([]float64, error) {
	v := data.ColByName(name)
	if v == nil {
		return nil, fmt.Errorf("algorithms: relation input missing column %q", name)
	}
	f := v.CastFloat64()
	out := make([]float64, f.Len())
	copy(out, f.Float64s())
	for i := 0; i < f.Len(); i++ {
		if f.IsNull(i) {
			return nil, fmt.Errorf("algorithms: unexpected NULL in %q at row %d", name, i)
		}
	}
	return out, nil
}

// stringCol extracts a string column.
func stringCol(data *engine.Table, name string) ([]string, error) {
	v := data.ColByName(name)
	if v == nil {
		return nil, fmt.Errorf("algorithms: relation input missing column %q", name)
	}
	return data.StringColumn(name)
}

// levelsFromKwargs reads the map[var][]string level directory the master
// passes to local steps (JSON round-trips deliver map[string]any).
func levelsFromKwargs(kwargs federation.Kwargs, key string) (map[string][]string, error) {
	raw, ok := kwargs[key]
	if !ok || raw == nil {
		return map[string][]string{}, nil
	}
	switch m := raw.(type) {
	case map[string][]string:
		return m, nil
	case map[string]any:
		out := make(map[string][]string, len(m))
		for k, v := range m {
			switch vs := v.(type) {
			case []string:
				out[k] = vs
			case []any:
				var ss []string
				for _, e := range vs {
					s, ok := e.(string)
					if !ok {
						return nil, fmt.Errorf("algorithms: levels for %q contain %T", k, e)
					}
					ss = append(ss, s)
				}
				out[k] = ss
			default:
				return nil, fmt.Errorf("algorithms: levels for %q are %T", k, v)
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("algorithms: kwarg %q is %T, not a levels map", key, raw)
}

// design holds the design-matrix layout shared by the regression-family
// algorithms: an intercept, the numeric covariates as-is, and drop-first
// dummy coding for nominal covariates (levels fixed by the master so all
// workers agree on column order).
type design struct {
	XVars  []string
	Levels map[string][]string
	// Names are the final column names: intercept, then per covariate
	// either the variable name or "var=level" dummies.
	Names []string
}

// newDesign computes the layout.
func newDesign(xvars []string, levels map[string][]string) design {
	d := design{XVars: xvars, Levels: levels, Names: []string{"intercept"}}
	for _, v := range xvars {
		if lv, nominal := levels[v]; nominal {
			for _, l := range lv[1:] { // drop first level (reference)
				d.Names = append(d.Names, v+"="+l)
			}
			continue
		}
		d.Names = append(d.Names, v)
	}
	return d
}

// Width is the number of design columns.
func (d design) Width() int { return len(d.Names) }

// rows materializes the design matrix for a local data slice. Rows whose
// nominal value is not in the declared levels are skipped (their index is
// reported in dropped).
func (d design) rows(data *engine.Table) (x *stats.Dense, keep []int, err error) {
	n := data.NumRows()
	type colGetter func(row int) (float64, bool)
	var getters []colGetter

	for _, v := range d.XVars {
		if lv, nominal := d.Levels[v]; nominal {
			ss, err := stringCol(data, v)
			if err != nil {
				return nil, nil, err
			}
			index := make(map[string]int, len(lv))
			for i, l := range lv {
				index[l] = i
			}
			for li := 1; li < len(lv); li++ {
				li := li
				getters = append(getters, func(row int) (float64, bool) {
					idx, ok := index[ss[row]]
					if !ok {
						return 0, false
					}
					if idx == li {
						return 1, true
					}
					return 0, true
				})
			}
			continue
		}
		fs, err := floatCol(data, v)
		if err != nil {
			return nil, nil, err
		}
		getters = append(getters, func(row int) (float64, bool) { return fs[row], true })
	}

	var rows [][]float64
	for i := 0; i < n; i++ {
		row := make([]float64, d.Width())
		row[0] = 1
		ok := true
		for g, get := range getters {
			v, valid := get(i)
			if !valid {
				ok = false
				break
			}
			row[g+1] = v
		}
		if !ok {
			continue
		}
		keep = append(keep, i)
		rows = append(rows, row)
	}
	x = stats.NewDense(len(rows), d.Width())
	for i, r := range rows {
		copy(x.Row(i), r)
	}
	return x, keep, nil
}

// sqSum is Σx², used across moment computations.
func sqSum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x * x
	}
	return s
}

// sum is Σx.
func sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// round4 trims long floating tails for presentation-grade result maps.
func round4(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return x
	}
	return math.Round(x*1e4) / 1e4
}

// foldOf deterministically assigns a row to one of k cross-validation
// folds from its stable row id — every worker computes the same assignment
// without coordination.
func foldOf(rowID int64, k int) int {
	// SplitMix64 finalizer for good dispersion of sequential ids.
	z := uint64(rowID) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(k))
}
