package algorithms

import (
	"math"
	"testing"

	"mip/internal/stats"
)

// pooledOLS is an independent reference implementation over raw rows.
func pooledOLS(t *testing.T, xs [][]float64, y []float64) (beta []float64, se []float64, r2 float64) {
	t.Helper()
	n := len(y)
	p := len(xs) + 1
	x := stats.NewDense(n, p)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
		for j, col := range xs {
			x.Set(i, j+1, col[i])
		}
	}
	xtx := stats.XtX(x)
	beta, err := stats.SolveSPD(xtx, stats.XtY(x, y))
	if err != nil {
		t.Fatal(err)
	}
	var sse, sy, syy float64
	for i := 0; i < n; i++ {
		pred := 0.0
		for j := 0; j < p; j++ {
			pred += x.At(i, j) * beta[j]
		}
		r := y[i] - pred
		sse += r * r
		sy += y[i]
		syy += y[i] * y[i]
	}
	sigma2 := sse / float64(n-p)
	inv, err := stats.InvSPD(xtx)
	if err != nil {
		t.Fatal(err)
	}
	se = make([]float64, p)
	for j := 0; j < p; j++ {
		se[j] = math.Sqrt(sigma2 * inv.At(j, j))
	}
	sst := syy - sy*sy/float64(n)
	return beta, se, 1 - sse/sst
}

func TestLinearRegressionMatchesPooled(t *testing.T) {
	m, pooled := testFed(t, 4, 150, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"minimentalstate"},
		X:        []string{"lefthippocampus", "subjectageyears"},
	}
	res := runAlg(t, m, "linear_regression", req)
	model := res["model"].(*LinRegModel)

	cols := pooledColumns(t, pooled, []string{"minimentalstate", "lefthippocampus", "subjectageyears"}, "")
	beta, se, r2 := pooledOLS(t, cols[1:], cols[0])

	if model.N != len(cols[0]) {
		t.Fatalf("N = %d, want %d", model.N, len(cols[0]))
	}
	for j := range beta {
		near(t, model.Coefficients[j].Estimate, beta[j], 1e-8, "beta "+model.Coefficients[j].Name)
		near(t, model.Coefficients[j].StdErr, se[j], 1e-8, "se "+model.Coefficients[j].Name)
	}
	near(t, model.RSquared, r2, 1e-8, "R²")
	// Hippocampal volume must be a significant positive predictor of MMSE
	// in the synthetic cohorts (the use case's signal).
	hip := model.Coefficients[1]
	if hip.Estimate <= 0 || hip.PValue > 1e-4 {
		t.Fatalf("hippocampus coefficient %+v should be strongly positive", hip)
	}
}

func TestLinearRegressionNominalCovariate(t *testing.T) {
	m, pooled := testFed(t, 3, 200, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"lefthippocampus"},
		X:        []string{"alzheimerbroadcategory"},
		Parameters: map[string]any{
			"levels": map[string]any{"alzheimerbroadcategory": []any{"CN", "MCI", "AD"}},
		},
	}
	res := runAlg(t, m, "linear_regression", req)
	model := res["model"].(*LinRegModel)
	if len(model.Coefficients) != 3 {
		t.Fatalf("coefficients = %d, want 3 (intercept + 2 dummies)", len(model.Coefficients))
	}
	if model.Coefficients[1].Name != "alzheimerbroadcategory=MCI" ||
		model.Coefficients[2].Name != "alzheimerbroadcategory=AD" {
		t.Fatalf("dummy names: %v %v", model.Coefficients[1].Name, model.Coefficients[2].Name)
	}
	// Reference: group means. Intercept = CN mean; dummies = shifts.
	tab, err := pooled.Query(`SELECT alzheimerbroadcategory AS g, avg(lefthippocampus) AS m FROM data WHERE lefthippocampus IS NOT NULL GROUP BY alzheimerbroadcategory ORDER BY g`)
	if err != nil {
		t.Fatal(err)
	}
	means := map[string]float64{}
	for i := 0; i < tab.NumRows(); i++ {
		means[tab.Col(0).StringAt(i)] = tab.Col(1).Float64s()[i]
	}
	near(t, model.Coefficients[0].Estimate, means["CN"], 1e-8, "intercept=CN mean")
	near(t, model.Coefficients[2].Estimate, means["AD"]-means["CN"], 1e-8, "AD shift")
	if model.Coefficients[2].Estimate >= 0 {
		t.Fatal("AD shift should be negative (atrophy)")
	}
}

func TestLinearRegressionSecureMatchesPlain(t *testing.T) {
	plain, _ := testFed(t, 3, 120, false)
	secure, _ := testFed(t, 3, 120, true)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"minimentalstate"},
		X:        []string{"lefthippocampus"},
	}
	mp := runAlg(t, plain, "linear_regression", req)["model"].(*LinRegModel)
	ms := runAlg(t, secure, "linear_regression", req)["model"].(*LinRegModel)
	for j := range mp.Coefficients {
		near(t, ms.Coefficients[j].Estimate, mp.Coefficients[j].Estimate, 1e-3, "secure beta")
	}
	near(t, ms.RSquared, mp.RSquared, 1e-3, "secure R²")
}

func TestLinearRegressionUnderdetermined(t *testing.T) {
	m, _ := testFed(t, 1, 12, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"minimentalstate"},
		X: []string{"lefthippocampus", "righthippocampus", "leftententorhinalarea",
			"rightententorhinalarea", "leftlateralventricle", "rightlateralventricle",
			"ab42", "p_tau", "subjectageyears"},
		Filter: "row_id < 8",
	}
	sess, _ := m.NewSession(req.Datasets)
	if _, err := (&LinearRegression{}).Run(sess, req); err == nil {
		t.Fatal("n <= p must fail")
	}
}

func TestLinearRegressionCV(t *testing.T) {
	m, _ := testFed(t, 3, 150, false)
	req := Request{
		Datasets:   []string{"edsd"},
		Y:          []string{"minimentalstate"},
		X:          []string{"lefthippocampus", "subjectageyears"},
		Parameters: map[string]any{"num_folds": 4},
	}
	res := runAlg(t, m, "linear_regression_cv", req)
	folds := res["folds"].([]FoldScore)
	if len(folds) != 4 {
		t.Fatalf("folds = %d", len(folds))
	}
	totalN := 0
	for _, f := range folds {
		if f.N == 0 {
			t.Fatalf("fold %d empty", f.Fold)
		}
		if f.MSE <= 0 {
			t.Fatalf("fold %d MSE = %v", f.Fold, f.MSE)
		}
		totalN += f.N
	}
	// Every complete-cases row lands in exactly one fold.
	tab, err := m.MergeQuery(req.Datasets,
		`SELECT count(*) AS n FROM data WHERE minimentalstate IS NOT NULL AND lefthippocampus IS NOT NULL AND subjectageyears IS NOT NULL AND row_id IS NOT NULL`)
	if err != nil {
		t.Fatal(err)
	}
	want := int(tab.Col(0).CastFloat64().Float64s()[0])
	if totalN != want {
		t.Fatalf("fold sizes sum to %d, want %d", totalN, want)
	}
	meanR2 := res["mean_r2"].(float64)
	if meanR2 < 0.1 {
		t.Fatalf("mean CV R² = %v, expected real signal", meanR2)
	}
	if res["mean_mse"].(float64) <= 0 {
		t.Fatal("mean MSE must be positive")
	}
}
