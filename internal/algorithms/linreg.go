package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
)

// Federated linear regression (the paper's Figure 2 example): local steps
// compute the normal-equation blocks XᵀX, Xᵀy, yᵀy and n over each
// worker's slice; the master sums them (plain or SMPC), solves, and then
// derives the full inferential summary (coefficient SEs, t statistics,
// p-values, confidence intervals, R², F test) from the same aggregates.

func init() {
	federation.RegisterLocal("linreg_fit_local", linregFitLocal)
	federation.RegisterLocal("linreg_score_local", linregScoreLocal)
	Register(&LinearRegression{})
	Register(&LinearRegressionCV{})
}

// linregFitLocal computes the local normal-equation blocks. Kwargs: y
// (name), x ([]string), levels (nominal var → levels), fold/exclude_fold
// for CV.
func linregFitLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	yvar, xvars, levels, err := modelArgs(kwargs)
	if err != nil {
		return nil, err
	}
	d := newDesign(xvars, levels)
	x, keep, err := d.rows(data)
	if err != nil {
		return nil, err
	}
	yAll, err := floatCol(data, yvar)
	if err != nil {
		return nil, err
	}
	y := make([]float64, len(keep))
	for i, r := range keep {
		y[i] = yAll[r]
	}
	x, y, err = filterFold(data, kwargs, keep, x, y)
	if err != nil {
		return nil, err
	}

	xtx := stats.XtX(x)
	xty := stats.XtY(x, y)
	return federation.Transfer{
		"n":   float64(len(y)),
		"xtx": denseToRows(xtx),
		"xty": xty,
		"yty": sqSum(y),
		"sy":  sum(y),
	}, nil
}

// linregScoreLocal evaluates SSE/SAE of a given coefficient vector on the
// local slice (used by the CV flow on held-out folds).
func linregScoreLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	yvar, xvars, levels, err := modelArgs(kwargs)
	if err != nil {
		return nil, err
	}
	beta, err := kw(kwargs).Floats("beta")
	if err != nil {
		return nil, err
	}
	d := newDesign(xvars, levels)
	x, keep, err := d.rows(data)
	if err != nil {
		return nil, err
	}
	yAll, err := floatCol(data, yvar)
	if err != nil {
		return nil, err
	}
	y := make([]float64, len(keep))
	for i, r := range keep {
		y[i] = yAll[r]
	}
	x, y, err = filterFold(data, kwargs, keep, x, y)
	if err != nil {
		return nil, err
	}
	var sse, sae, sy, sy2 float64
	for i := 0; i < x.Rows(); i++ {
		var pred float64
		for j, b := range beta {
			pred += x.At(i, j) * b
		}
		r := y[i] - pred
		sse += r * r
		sae += math.Abs(r)
		sy += y[i]
		sy2 += y[i] * y[i]
	}
	return federation.Transfer{
		"n": float64(x.Rows()), "sse": sse, "sae": sae, "sy": sy, "sy2": sy2,
	}, nil
}

// filterFold applies CV fold selection: kwargs fold >= 0 with mode
// "exclude" keeps rows outside the fold (training), mode "only" keeps rows
// inside (testing). Fold assignment hashes the stable row_id.
func filterFold(data *engine.Table, kwargs federation.Kwargs, keep []int, x *stats.Dense, y []float64) (*stats.Dense, []float64, error) {
	foldRaw, ok := kwargs["fold"]
	if !ok {
		return x, y, nil
	}
	fold := int(anyToFloat(foldRaw))
	if fold < 0 {
		return x, y, nil
	}
	k := int(anyToFloat(kwargs["num_folds"]))
	if k <= 1 {
		return nil, nil, fmt.Errorf("algorithms: fold filtering needs num_folds > 1")
	}
	mode, _ := kwargs["fold_mode"].(string)
	ids := data.ColByName("row_id")
	if ids == nil {
		return nil, nil, fmt.Errorf("algorithms: cross-validation requires a row_id column")
	}
	iv := ids.CastFloat64()
	var rows []int
	for i, r := range keep {
		f := foldOf(int64(iv.Float64s()[r]), k)
		inFold := f == fold
		if (mode == "only" && inFold) || (mode != "only" && !inFold) {
			rows = append(rows, i)
		}
	}
	nx := stats.NewDense(len(rows), x.Cols())
	ny := make([]float64, len(rows))
	for i, r := range rows {
		copy(nx.Row(i), x.Row(r))
		ny[i] = y[r]
	}
	return nx, ny, nil
}

func anyToFloat(v any) float64 {
	switch x := v.(type) {
	case float64:
		return x
	case int:
		return float64(x)
	case int64:
		return float64(x)
	}
	return -1
}

// modelArgs unpacks the shared regression kwargs.
func modelArgs(kwargs federation.Kwargs) (yvar string, xvars []string, levels map[string][]string, err error) {
	yvar, _ = kwargs["y"].(string)
	if yvar == "" {
		return "", nil, nil, fmt.Errorf("algorithms: missing y kwarg")
	}
	switch v := kwargs["x"].(type) {
	case []string:
		xvars = v
	case []any:
		for _, e := range v {
			s, ok := e.(string)
			if !ok {
				return "", nil, nil, fmt.Errorf("algorithms: x kwarg contains %T", e)
			}
			xvars = append(xvars, s)
		}
	default:
		return "", nil, nil, fmt.Errorf("algorithms: missing x kwarg")
	}
	levels, err = levelsFromKwargs(kwargs, "levels")
	return yvar, xvars, levels, err
}

func denseToRows(m *stats.Dense) [][]float64 {
	out := make([][]float64, m.Rows())
	for i := range out {
		out[i] = append([]float64(nil), m.Row(i)...)
	}
	return out
}

func rowsToDense(rows [][]float64) *stats.Dense {
	if len(rows) == 0 {
		return stats.NewDense(0, 0)
	}
	m := stats.NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(m.Row(i), r)
	}
	return m
}

// Coefficient is one row of the regression summary table.
type Coefficient struct {
	Name     string  `json:"name"`
	Estimate float64 `json:"estimate"`
	StdErr   float64 `json:"std_err"`
	TValue   float64 `json:"t_value"`
	PValue   float64 `json:"p_value"`
	CILow    float64 `json:"ci_low"`
	CIHigh   float64 `json:"ci_high"`
}

// LinRegModel is the fitted-model summary.
type LinRegModel struct {
	Coefficients []Coefficient `json:"coefficients"`
	N            int           `json:"n"`
	DFResidual   float64       `json:"df_residual"`
	RSquared     float64       `json:"r_squared"`
	AdjRSquared  float64       `json:"adj_r_squared"`
	FStat        float64       `json:"f_stat"`
	FPValue      float64       `json:"f_p_value"`
	ResidualSE   float64       `json:"residual_se"`
}

// LinearRegression implements the linear-regression algorithm.
type LinearRegression struct{}

// Spec implements Algorithm.
func (*LinearRegression) Spec() Spec {
	return Spec{
		Name:  "linear_regression",
		Label: "Linear Regression",
		Desc:  "Ordinary least squares fitted from federated XᵀX/Xᵀy aggregates, with t tests, confidence intervals, R² and the model F test.",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"real", "integer"}},
		X:     VarSpec{Min: 1, Types: []string{"real", "integer", "nominal"}},
		Parameters: []ParamSpec{
			{Name: "levels", Label: "Nominal covariate levels", Type: "string", Doc: "map of nominal covariate to its category levels (reference level first)"},
			{Name: "alpha", Label: "CI significance", Type: "real", Default: 0.05, Min: 0.0001, Max: 0.5},
		},
	}
}

// Run implements Algorithm.
func (a *LinearRegression) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	model, err := fitLinReg(sess, req, -1, 0)
	if err != nil {
		return nil, err
	}
	return Result{"model": model}, nil
}

// fitLinReg runs the aggregate round and solves the normal equations.
// fold >= 0 excludes that fold (CV training); numFolds carries k.
func fitLinReg(sess *federation.Session, req Request, fold, numFolds int) (*LinRegModel, error) {
	levels := levelsParam(req)
	kwargs := federation.Kwargs{"y": req.Y[0], "x": req.X, "levels": levels}
	vars := append(append([]string{}, req.Y...), req.X...)
	if fold >= 0 {
		kwargs["fold"] = fold
		kwargs["num_folds"] = numFolds
		kwargs["fold_mode"] = "exclude"
		vars = append(vars, "row_id")
	}
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "linreg_fit_local",
		Vars:   vars,
		Filter: req.Filter,
		Kwargs: kwargs,
	}, "n", "xtx", "xty", "yty", "sy")
	if err != nil {
		return nil, err
	}
	return solveLinReg(agg, req, levels)
}

func solveLinReg(agg federation.Transfer, req Request, levels map[string][]string) (*LinRegModel, error) {
	xtxRows, err := agg.Matrix("xtx")
	if err != nil {
		return nil, err
	}
	xty, err := agg.Floats("xty")
	if err != nil {
		return nil, err
	}
	n, _ := agg.Float("n")
	yty, _ := agg.Float("yty")
	sy, _ := agg.Float("sy")

	xtx := rowsToDense(xtxRows)
	p := xtx.Rows()
	if n <= float64(p) {
		return nil, fmt.Errorf("algorithms: %v observations cannot identify %d coefficients", n, p)
	}
	beta, err := stats.SolveSPD(xtx, xty)
	if err != nil {
		// Regularize mildly on collinearity rather than failing outright.
		beta, err = stats.SolveRidge(xtx, xty, 1e-8)
		if err != nil {
			return nil, fmt.Errorf("algorithms: singular design: %w", err)
		}
	}

	// Residual sum of squares from aggregates:
	// SSE = yᵀy − 2βᵀXᵀy + βᵀXᵀXβ.
	var bXtXb, bXty float64
	xtxb := xtx.MulVec(beta)
	for j := range beta {
		bXtXb += beta[j] * xtxb[j]
		bXty += beta[j] * xty[j]
	}
	sse := yty - 2*bXty + bXtXb
	if sse < 0 {
		sse = 0
	}
	sst := yty - sy*sy/n
	dfRes := n - float64(p)
	sigma2 := sse / dfRes

	inv, err := stats.InvSPD(xtx)
	if err != nil {
		return nil, err
	}
	design := newDesign(req.X, levels)
	alpha := req.ParamFloat("alpha", 0.05)
	tcrit := stats.StudentTQuantile(1-alpha/2, dfRes)

	model := &LinRegModel{
		N:          int(n),
		DFResidual: dfRes,
		ResidualSE: math.Sqrt(sigma2),
	}
	for j, name := range design.Names {
		se := math.Sqrt(sigma2 * inv.At(j, j))
		tv := beta[j] / se
		pv := 2 * (1 - stats.StudentTCDF(math.Abs(tv), dfRes))
		model.Coefficients = append(model.Coefficients, Coefficient{
			Name: name, Estimate: beta[j], StdErr: se, TValue: tv, PValue: pv,
			CILow: beta[j] - tcrit*se, CIHigh: beta[j] + tcrit*se,
		})
	}
	if sst > 0 {
		model.RSquared = 1 - sse/sst
		model.AdjRSquared = 1 - (1-model.RSquared)*(n-1)/dfRes
	}
	if p > 1 && sse > 0 {
		dfModel := float64(p - 1)
		model.FStat = ((sst - sse) / dfModel) / sigma2
		model.FPValue = 1 - stats.FCDF(model.FStat, dfModel, dfRes)
	}
	return model, nil
}

// levelsParam reads the request's nominal-levels parameter.
func levelsParam(req Request) map[string][]string {
	raw := req.Param("levels", nil)
	if raw == nil {
		return map[string][]string{}
	}
	out, err := levelsFromKwargs(federation.Kwargs{"levels": raw}, "levels")
	if err != nil {
		return map[string][]string{}
	}
	return out
}

// LinearRegressionCV is k-fold cross-validated linear regression.
type LinearRegressionCV struct{}

// Spec implements Algorithm.
func (*LinearRegressionCV) Spec() Spec {
	return Spec{
		Name:  "linear_regression_cv",
		Label: "Linear Regression Cross-validation",
		Desc:  "k-fold cross-validation of the federated OLS model; reports per-fold and mean MSE, MAE and R².",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"real", "integer"}},
		X:     VarSpec{Min: 1, Types: []string{"real", "integer", "nominal"}},
		Parameters: []ParamSpec{
			{Name: "num_folds", Label: "Folds", Type: "int", Default: 5, Min: 2, Max: 20},
			{Name: "levels", Label: "Nominal covariate levels", Type: "string"},
		},
	}
}

// FoldScore is one fold's held-out metrics.
type FoldScore struct {
	Fold int     `json:"fold"`
	N    int     `json:"n"`
	MSE  float64 `json:"mse"`
	MAE  float64 `json:"mae"`
	R2   float64 `json:"r2"`
}

// Run implements Algorithm.
func (a *LinearRegressionCV) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	k := req.ParamInt("num_folds", 5)
	if k < 2 {
		return nil, fmt.Errorf("algorithms: num_folds must be >= 2")
	}
	levels := levelsParam(req)
	vars := append(append([]string{}, req.Y...), req.X...)
	vars = append(vars, "row_id")

	var folds []FoldScore
	var meanMSE, meanMAE, meanR2 float64
	for f := 0; f < k; f++ {
		model, err := fitLinReg(sess, req, f, k)
		if err != nil {
			return nil, fmt.Errorf("fold %d: %w", f, err)
		}
		beta := make([]float64, len(model.Coefficients))
		for i, c := range model.Coefficients {
			beta[i] = c.Estimate
		}
		scoreKw := federation.Kwargs{
			"y": req.Y[0], "x": req.X, "levels": levels, "beta": beta,
			"fold": f, "num_folds": k, "fold_mode": "only",
		}
		scores, err := sess.Sum(federation.LocalRunSpec{
			Func:   "linreg_score_local",
			Vars:   vars,
			Filter: req.Filter,
			Kwargs: scoreKw,
		}, "n", "sse", "sae", "sy", "sy2")
		if err != nil {
			return nil, fmt.Errorf("fold %d scoring: %w", f, err)
		}
		n, _ := scores.Float("n")
		sse, _ := scores.Float("sse")
		sae, _ := scores.Float("sae")
		sy, _ := scores.Float("sy")
		sy2, _ := scores.Float("sy2")
		fs := FoldScore{Fold: f, N: int(n)}
		if n > 0 {
			fs.MSE = sse / n
			fs.MAE = sae / n
			sst := sy2 - sy*sy/n
			if sst > 0 {
				fs.R2 = 1 - sse/sst
			}
		}
		folds = append(folds, fs)
		meanMSE += fs.MSE / float64(k)
		meanMAE += fs.MAE / float64(k)
		meanR2 += fs.R2 / float64(k)
	}
	return Result{
		"folds":    folds,
		"mean_mse": meanMSE,
		"mean_mae": meanMAE,
		"mean_r2":  meanR2,
	}, nil
}
