package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
)

// The three t-tests the paper lists (independent, one-sample, paired), all
// driven by a single grouped-moments local step: every statistic derives
// from per-group n, Σx, Σx² (plus Σd, Σd² of pairwise differences for the
// paired test), which aggregate additively and therefore exactly.

func init() {
	federation.RegisterLocal("ttest_moments", ttestMomentsLocal)
	federation.RegisterLocal("ttest_paired_moments", ttestPairedLocal)
	Register(&TTestOneSample{})
	Register(&TTestIndependent{})
	Register(&TTestPaired{})
}

// ttestMomentsLocal computes moments of kwargs["var"], optionally split by
// the binary kwargs["group_var"] with kwargs["groups"] = [g1, g2].
func ttestMomentsLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	varName, _ := kwargs["var"].(string)
	if varName == "" {
		return nil, fmt.Errorf("algorithms: missing var kwarg")
	}
	xs, err := floatCol(data, varName)
	if err != nil {
		return nil, err
	}
	groupVar, _ := kwargs["group_var"].(string)
	if groupVar == "" {
		return federation.Transfer{
			"m": []float64{float64(len(xs)), sum(xs), sqSum(xs)},
		}, nil
	}
	groups, err := kwVarsKey(kwargs, "groups")
	if err != nil {
		return nil, err
	}
	if len(groups) != 2 {
		return nil, fmt.Errorf("algorithms: independent t-test needs exactly 2 groups, got %v", groups)
	}
	gs, err := stringCol(data, groupVar)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 6) // n1 s1 ss1 n2 s2 ss2
	for i, x := range xs {
		switch gs[i] {
		case groups[0]:
			out[0]++
			out[1] += x
			out[2] += x * x
		case groups[1]:
			out[3]++
			out[4] += x
			out[5] += x * x
		}
	}
	return federation.Transfer{"m": out}, nil
}

// ttestPairedLocal computes moments of the pairwise difference of two
// variables.
func ttestPairedLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	vars, err := kwVarsKey(kwargs, "vars")
	if err != nil {
		return nil, err
	}
	if len(vars) != 2 {
		return nil, fmt.Errorf("algorithms: paired t-test needs 2 variables")
	}
	a, err := floatCol(data, vars[0])
	if err != nil {
		return nil, err
	}
	b, err := floatCol(data, vars[1])
	if err != nil {
		return nil, err
	}
	var n, s, ss float64
	for i := range a {
		d := a[i] - b[i]
		n++
		s += d
		ss += d * d
	}
	return federation.Transfer{"m": []float64{n, s, ss}}, nil
}

func kwVarsKey(kwargs federation.Kwargs, key string) ([]string, error) {
	raw, ok := kwargs[key]
	if !ok {
		return nil, fmt.Errorf("algorithms: missing %s kwarg", key)
	}
	switch v := raw.(type) {
	case []string:
		return v, nil
	case []any:
		out := make([]string, len(v))
		for i, e := range v {
			s, ok := e.(string)
			if !ok {
				return nil, fmt.Errorf("algorithms: %s[%d] is %T", key, i, e)
			}
			out[i] = s
		}
		return out, nil
	}
	return nil, fmt.Errorf("algorithms: %s kwarg is %T", key, raw)
}

// TTestResult is the common output of the three tests.
type TTestResult struct {
	T        float64 `json:"t"`
	DF       float64 `json:"df"`
	PValue   float64 `json:"p_value"`
	MeanDiff float64 `json:"mean_diff"`
	CILow    float64 `json:"ci_low"`
	CIHigh   float64 `json:"ci_high"`
	N        float64 `json:"n"`
	N2       float64 `json:"n2,omitempty"`
}

func tSummary(meanDiff, se, df, alpha float64) TTestResult {
	tv := meanDiff / se
	crit := stats.StudentTQuantile(1-alpha/2, df)
	return TTestResult{
		T: tv, DF: df,
		PValue:   2 * (1 - stats.StudentTCDF(math.Abs(tv), df)),
		MeanDiff: meanDiff,
		CILow:    meanDiff - crit*se,
		CIHigh:   meanDiff + crit*se,
	}
}

// TTestOneSample tests H0: mean(y) = mu0.
type TTestOneSample struct{}

// Spec implements Algorithm.
func (*TTestOneSample) Spec() Spec {
	return Spec{
		Name:  "ttest_onesample",
		Label: "T-Test One-Sample",
		Desc:  "One-sample t-test of the mean of Y against mu0.",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"real", "integer"}},
		Parameters: []ParamSpec{
			{Name: "mu0", Label: "Hypothesized mean", Type: "real", Default: 0.0},
			{Name: "alpha", Label: "CI significance", Type: "real", Default: 0.05},
		},
	}
}

// Run implements Algorithm.
func (a *TTestOneSample) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "ttest_moments",
		Vars:   req.Y,
		Filter: req.Filter,
		Kwargs: federation.Kwargs{"var": req.Y[0]},
	}, "m")
	if err != nil {
		return nil, err
	}
	m, _ := agg.Floats("m")
	n, s, ss := m[0], m[1], m[2]
	if n < 2 {
		return nil, fmt.Errorf("algorithms: need at least 2 observations, have %v", n)
	}
	mu0 := req.ParamFloat("mu0", 0)
	mean := s / n
	sd := math.Sqrt((ss - s*s/n) / (n - 1))
	res := tSummary(mean-mu0, sd/math.Sqrt(n), n-1, req.ParamFloat("alpha", 0.05))
	res.N = n
	return Result{"ttest": res, "mean": mean, "std": sd}, nil
}

// TTestIndependent compares the means of Y between two groups of X
// (Welch's test by default, Student's pooled test optionally).
type TTestIndependent struct{}

// Spec implements Algorithm.
func (*TTestIndependent) Spec() Spec {
	return Spec{
		Name:  "ttest_independent",
		Label: "T-Test Independent",
		Desc:  "Two-sample t-test of Y between the two groups of X (Welch or pooled).",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"real", "integer"}},
		X:     VarSpec{Min: 1, Max: 1, Types: []string{"nominal"}},
		Parameters: []ParamSpec{
			{Name: "groups", Label: "The two group values", Type: "string"},
			{Name: "welch", Label: "Welch correction", Type: "enum", Enum: []string{"true", "false"}, Default: "true"},
			{Name: "alpha", Label: "CI significance", Type: "real", Default: 0.05},
		},
	}
}

// Run implements Algorithm.
func (a *TTestIndependent) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	groups := req.ParamStrings("groups")
	if len(groups) != 2 {
		return nil, fmt.Errorf("algorithms: ttest_independent needs parameter groups = [g1, g2]")
	}
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "ttest_moments",
		Vars:   append([]string{req.Y[0]}, req.X[0]),
		Filter: req.Filter,
		Kwargs: federation.Kwargs{"var": req.Y[0], "group_var": req.X[0], "groups": groups},
	}, "m")
	if err != nil {
		return nil, err
	}
	m, _ := agg.Floats("m")
	n1, s1, ss1, n2, s2, ss2 := m[0], m[1], m[2], m[3], m[4], m[5]
	if n1 < 2 || n2 < 2 {
		return nil, fmt.Errorf("algorithms: both groups need >= 2 observations (%v, %v)", n1, n2)
	}
	mean1, mean2 := s1/n1, s2/n2
	v1 := (ss1 - s1*s1/n1) / (n1 - 1)
	v2 := (ss2 - s2*s2/n2) / (n2 - 1)
	alpha := req.ParamFloat("alpha", 0.05)

	var res TTestResult
	if req.ParamString("welch", "true") == "true" {
		se := math.Sqrt(v1/n1 + v2/n2)
		df := (v1/n1 + v2/n2) * (v1/n1 + v2/n2) /
			((v1/n1)*(v1/n1)/(n1-1) + (v2/n2)*(v2/n2)/(n2-1))
		res = tSummary(mean1-mean2, se, df, alpha)
	} else {
		sp2 := ((n1-1)*v1 + (n2-1)*v2) / (n1 + n2 - 2)
		se := math.Sqrt(sp2 * (1/n1 + 1/n2))
		res = tSummary(mean1-mean2, se, n1+n2-2, alpha)
	}
	res.N, res.N2 = n1, n2
	return Result{
		"ttest": res,
		"means": map[string]float64{groups[0]: mean1, groups[1]: mean2},
		"vars":  map[string]float64{groups[0]: v1, groups[1]: v2},
	}, nil
}

// TTestPaired tests the mean of the pairwise difference of two variables.
type TTestPaired struct{}

// Spec implements Algorithm.
func (*TTestPaired) Spec() Spec {
	return Spec{
		Name:  "ttest_paired",
		Label: "T-Test Paired",
		Desc:  "Paired t-test of Y1 − Y2 over complete pairs.",
		Y:     VarSpec{Min: 2, Max: 2, Types: []string{"real", "integer"}},
		Parameters: []ParamSpec{
			{Name: "alpha", Label: "CI significance", Type: "real", Default: 0.05},
		},
	}
}

// Run implements Algorithm.
func (a *TTestPaired) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "ttest_paired_moments",
		Vars:   req.Y,
		Filter: req.Filter,
		Kwargs: federation.Kwargs{"vars": req.Y},
	}, "m")
	if err != nil {
		return nil, err
	}
	m, _ := agg.Floats("m")
	n, s, ss := m[0], m[1], m[2]
	if n < 2 {
		return nil, fmt.Errorf("algorithms: need at least 2 pairs, have %v", n)
	}
	mean := s / n
	sd := math.Sqrt((ss - s*s/n) / (n - 1))
	res := tSummary(mean, sd/math.Sqrt(n), n-1, req.ParamFloat("alpha", 0.05))
	res.N = n
	return Result{"ttest": res}, nil
}
