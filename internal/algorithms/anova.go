package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
)

// ANOVA. One-way aggregates per-level moments directly. Two-way uses the
// regression formulation: one local round returns the full-model
// (A + B + A:B) normal-equation blocks, and every nested model's residual
// sum of squares is computed on the master from sub-blocks of the same
// aggregates — so the Type-II tests need a single federated round.

func init() {
	federation.RegisterLocal("anova1_local", anova1Local)
	federation.RegisterLocal("anova2_local", anova2Local)
	Register(&ANOVAOneWay{})
	Register(&ANOVATwoWay{})
}

func anova1Local(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	yvar, _ := kwargs["y"].(string)
	xvar, _ := kwargs["x"].(string)
	levels, err := kwVarsKey(kwargs, "levels")
	if err != nil {
		return nil, err
	}
	ys, err := floatCol(data, yvar)
	if err != nil {
		return nil, err
	}
	gs, err := stringCol(data, xvar)
	if err != nil {
		return nil, err
	}
	idx := map[string]int{}
	for i, l := range levels {
		idx[l] = i
	}
	out := make([][]float64, len(levels)) // per level: n, sum, sum2
	for i := range out {
		out[i] = make([]float64, 3)
	}
	for i, y := range ys {
		li, ok := idx[gs[i]]
		if !ok {
			continue
		}
		out[li][0]++
		out[li][1] += y
		out[li][2] += y * y
	}
	return federation.Transfer{"groups": out}, nil
}

// ANOVATable is one effect row.
type ANOVATable struct {
	Effect string  `json:"effect"`
	DF     float64 `json:"df"`
	SumSq  float64 `json:"sum_sq"`
	MeanSq float64 `json:"mean_sq"`
	F      float64 `json:"f"`
	PValue float64 `json:"p_value"`
}

// ANOVAOneWay implements one-way analysis of variance.
type ANOVAOneWay struct{}

// Spec implements Algorithm.
func (*ANOVAOneWay) Spec() Spec {
	return Spec{
		Name:  "anova_oneway",
		Label: "ANOVA One-way",
		Desc:  "One-way analysis of variance of Y across the levels of X, from federated per-level moments.",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"real", "integer"}},
		X:     VarSpec{Min: 1, Max: 1, Types: []string{"nominal"}},
		Parameters: []ParamSpec{
			{Name: "levels", Label: "Levels of X", Type: "string"},
		},
	}
}

// Run implements Algorithm.
func (a *ANOVAOneWay) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	levels := req.ParamStrings("levels")
	if len(levels) < 2 {
		return nil, fmt.Errorf("algorithms: anova_oneway needs parameter levels with >= 2 values")
	}
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "anova1_local",
		Vars:   []string{req.Y[0], req.X[0]},
		Filter: req.Filter,
		Kwargs: federation.Kwargs{"y": req.Y[0], "x": req.X[0], "levels": levels},
	}, "groups")
	if err != nil {
		return nil, err
	}
	groups, err := agg.Matrix("groups")
	if err != nil {
		return nil, err
	}
	var n, s, ss, ssb float64
	usable := 0
	for _, g := range groups {
		if g[0] == 0 {
			continue
		}
		usable++
		n += g[0]
		s += g[1]
		ss += g[2]
	}
	if usable < 2 || n <= float64(usable) {
		return nil, fmt.Errorf("algorithms: not enough groups/observations for ANOVA")
	}
	grand := s / n
	for _, g := range groups {
		if g[0] == 0 {
			continue
		}
		gm := g[1] / g[0]
		ssb += g[0] * (gm - grand) * (gm - grand)
	}
	sst := ss - n*grand*grand
	ssw := sst - ssb
	dfb := float64(usable - 1)
	dfw := n - float64(usable)
	f := (ssb / dfb) / (ssw / dfw)
	table := []ANOVATable{
		{Effect: req.X[0], DF: dfb, SumSq: ssb, MeanSq: ssb / dfb, F: f, PValue: 1 - stats.FCDF(f, dfb, dfw)},
		{Effect: "Residuals", DF: dfw, SumSq: ssw, MeanSq: ssw / dfw, F: math.NaN(), PValue: math.NaN()},
	}
	means := map[string]any{}
	for i, l := range levels {
		if groups[i][0] > 0 {
			means[l] = groups[i][1] / groups[i][0]
		}
	}
	return Result{
		"table":  table,
		"eta_sq": ssb / sst,
		"means":  means,
		"n":      n,
	}, nil
}

// anova2Local builds the full two-way design (intercept, A dummies, B
// dummies, interaction dummies) and returns its normal-equation blocks.
func anova2Local(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	yvar, _ := kwargs["y"].(string)
	avar, _ := kwargs["a"].(string)
	bvar, _ := kwargs["b"].(string)
	la, err := kwVarsKey(kwargs, "levels_a")
	if err != nil {
		return nil, err
	}
	lb, err := kwVarsKey(kwargs, "levels_b")
	if err != nil {
		return nil, err
	}
	ys, err := floatCol(data, yvar)
	if err != nil {
		return nil, err
	}
	as, err := stringCol(data, avar)
	if err != nil {
		return nil, err
	}
	bs, err := stringCol(data, bvar)
	if err != nil {
		return nil, err
	}
	ia := map[string]int{}
	for i, l := range la {
		ia[l] = i
	}
	ib := map[string]int{}
	for i, l := range lb {
		ib[l] = i
	}
	pa, pb := len(la)-1, len(lb)-1
	p := 1 + pa + pb + pa*pb
	var rows [][]float64
	var yKeep []float64
	for i := range ys {
		aIdx, okA := ia[as[i]]
		bIdx, okB := ib[bs[i]]
		if !okA || !okB {
			continue
		}
		row := make([]float64, p)
		row[0] = 1
		if aIdx > 0 {
			row[aIdx] = 1
		}
		if bIdx > 0 {
			row[pa+bIdx] = 1
		}
		if aIdx > 0 && bIdx > 0 {
			row[1+pa+pb+(aIdx-1)*pb+(bIdx-1)] = 1
		}
		rows = append(rows, row)
		yKeep = append(yKeep, ys[i])
	}
	x := stats.NewDense(len(rows), p)
	for i, r := range rows {
		copy(x.Row(i), r)
	}
	return federation.Transfer{
		"n":   float64(len(yKeep)),
		"xtx": denseToRows(stats.XtX(x)),
		"xty": stats.XtY(x, yKeep),
		"yty": sqSum(yKeep),
		"sy":  sum(yKeep),
	}, nil
}

// ANOVATwoWay implements two-way ANOVA with interaction (Type II sums of
// squares via nested-model comparisons on the aggregated normal equations).
type ANOVATwoWay struct{}

// Spec implements Algorithm.
func (*ANOVATwoWay) Spec() Spec {
	return Spec{
		Name:  "anova_twoway",
		Label: "Two-way ANOVA",
		Desc:  "Two-way analysis of variance of Y across factors A and B with interaction, Type II tests from one federated round.",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"real", "integer"}},
		X:     VarSpec{Min: 2, Max: 2, Types: []string{"nominal"}},
		Parameters: []ParamSpec{
			{Name: "levels", Label: "Levels of both factors", Type: "string"},
		},
	}
}

// Run implements Algorithm.
func (a *ANOVATwoWay) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	levels := levelsParam(req)
	la, lb := levels[req.X[0]], levels[req.X[1]]
	if len(la) < 2 || len(lb) < 2 {
		return nil, fmt.Errorf("algorithms: anova_twoway needs levels for both factors")
	}
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "anova2_local",
		Vars:   []string{req.Y[0], req.X[0], req.X[1]},
		Filter: req.Filter,
		Kwargs: federation.Kwargs{
			"y": req.Y[0], "a": req.X[0], "b": req.X[1],
			"levels_a": la, "levels_b": lb,
		},
	}, "n", "xtx", "xty", "yty", "sy")
	if err != nil {
		return nil, err
	}
	xtxRows, err := agg.Matrix("xtx")
	if err != nil {
		return nil, err
	}
	xty, _ := agg.Floats("xty")
	n, _ := agg.Float("n")
	yty, _ := agg.Float("yty")

	xtx := rowsToDense(xtxRows)
	pa, pb := len(la)-1, len(lb)-1
	p := 1 + pa + pb + pa*pb
	if n <= float64(p) {
		return nil, fmt.Errorf("algorithms: %v observations cannot fit the two-way model (%d columns)", n, p)
	}

	// Column index sets for the nested models.
	colsA := seq(1, 1+pa)
	colsB := seq(1+pa, 1+pa+pb)
	colsAB := seq(1+pa+pb, p)
	model := func(sets ...[]int) []int {
		out := []int{0}
		for _, s := range sets {
			out = append(out, s...)
		}
		return out
	}
	sse := func(cols []int) (float64, error) { return sseSub(xtx, xty, yty, cols) }

	sseFull, err := sse(model(colsA, colsB, colsAB))
	if err != nil {
		return nil, err
	}
	sseAB, err := sse(model(colsA, colsB)) // A + B (no interaction)
	if err != nil {
		return nil, err
	}
	sseA, err := sse(model(colsA))
	if err != nil {
		return nil, err
	}
	sseB, err := sse(model(colsB))
	if err != nil {
		return nil, err
	}

	dfA, dfB, dfAB := float64(pa), float64(pb), float64(pa*pb)
	dfRes := n - float64(p)
	msRes := sseFull / dfRes

	row := func(effect string, ssq, df float64) ANOVATable {
		f := (ssq / df) / msRes
		return ANOVATable{Effect: effect, DF: df, SumSq: ssq, MeanSq: ssq / df,
			F: f, PValue: 1 - stats.FCDF(f, df, dfRes)}
	}
	table := []ANOVATable{
		row(req.X[0], sseB-sseAB, dfA), // SS(A | B)
		row(req.X[1], sseA-sseAB, dfB), // SS(B | A)
		row(req.X[0]+":"+req.X[1], sseAB-sseFull, dfAB),
		{Effect: "Residuals", DF: dfRes, SumSq: sseFull, MeanSq: msRes, F: math.NaN(), PValue: math.NaN()},
	}
	return Result{"table": table, "n": n}, nil
}

func seq(from, to int) []int {
	out := make([]int, 0, to-from)
	for i := from; i < to; i++ {
		out = append(out, i)
	}
	return out
}

// sseSub computes the residual sum of squares of the submodel using the
// given design columns, from the full model's aggregates.
func sseSub(xtx *stats.Dense, xty []float64, yty float64, cols []int) (float64, error) {
	k := len(cols)
	sub := stats.NewDense(k, k)
	sv := make([]float64, k)
	for i, ci := range cols {
		sv[i] = xty[ci]
		for j, cj := range cols {
			sub.Set(i, j, xtx.At(ci, cj))
		}
	}
	beta, err := stats.SolveSPD(sub, sv)
	if err != nil {
		beta, err = stats.SolveRidge(sub, sv, 1e-8)
		if err != nil {
			return 0, err
		}
	}
	var bXty float64
	for i := range beta {
		bXty += beta[i] * sv[i]
	}
	sse := yty - bXty
	if sse < 0 {
		sse = 0
	}
	return sse, nil
}
