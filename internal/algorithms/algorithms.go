// Package algorithms implements the analysis library the paper's MIP
// integrates ("15+ algorithms for data analysis"): descriptive statistics,
// k-means, ANOVA one/two-way, CART, calibration belt, ID3, Kaplan-Meier,
// linear and logistic regression (plus cross-validated variants), naive
// Bayes (plus CV), Pearson correlation, PCA and the three t-tests.
//
// Every algorithm follows the paper's three-block structure: local
// computation steps (registered in the federation function registry and
// executed on the workers, inside the data engine), the flow (the Run
// method, orchestrating rounds of local steps and aggregation on the
// master), and the specification (name, parameters, variable constraints —
// what the dashboard renders as the algorithm form).
//
// Exactness: each algorithm aggregates additive sufficient statistics, so
// the federated result equals the pooled result up to floating-point
// noise; the *_test.go files assert this against pooled reference
// implementations, and the aggregation path (plain transfers vs SMPC) is
// switchable per master without touching algorithm code.
package algorithms

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"mip/internal/federation"
	"mip/internal/obs"
)

// Request is an experiment request: which datasets, which variables play
// the dependent (Y) and covariate (X) roles, an optional SQL filter, and
// algorithm parameters.
type Request struct {
	Datasets   []string       `json:"datasets"`
	Y          []string       `json:"y"`
	X          []string       `json:"x"`
	Filter     string         `json:"filter,omitempty"`
	Parameters map[string]any `json:"parameters,omitempty"`
}

// Param fetches a parameter with a default.
func (r Request) Param(key string, def any) any {
	if r.Parameters == nil {
		return def
	}
	if v, ok := r.Parameters[key]; ok {
		return v
	}
	return def
}

// ParamFloat fetches a numeric parameter.
func (r Request) ParamFloat(key string, def float64) float64 {
	switch v := r.Param(key, def).(type) {
	case float64:
		return v
	case int:
		return float64(v)
	case int64:
		return float64(v)
	}
	return def
}

// ParamInt fetches an integer parameter.
func (r Request) ParamInt(key string, def int) int {
	return int(r.ParamFloat(key, float64(def)))
}

// ParamString fetches a string parameter.
func (r Request) ParamString(key, def string) string {
	if v, ok := r.Param(key, def).(string); ok {
		return v
	}
	return def
}

// ParamStrings fetches a string-slice parameter ([]string or []any).
func (r Request) ParamStrings(key string) []string {
	switch v := r.Param(key, nil).(type) {
	case []string:
		return v
	case []any:
		out := make([]string, 0, len(v))
		for _, e := range v {
			if s, ok := e.(string); ok {
				out = append(out, s)
			}
		}
		return out
	}
	return nil
}

// Result is the JSON-able output of an algorithm run.
type Result map[string]any

// ParamSpec describes one dashboard-rendered parameter.
type ParamSpec struct {
	Name    string   `json:"name"`
	Label   string   `json:"label"`
	Type    string   `json:"type"` // int | real | string | enum
	Default any      `json:"default,omitempty"`
	Min     float64  `json:"min,omitempty"`
	Max     float64  `json:"max,omitempty"`
	Enum    []string `json:"enum,omitempty"`
	Doc     string   `json:"doc,omitempty"`
}

// VarSpec constrains the Y/X variable slots.
type VarSpec struct {
	Min   int      `json:"min"`   // minimum number of variables
	Max   int      `json:"max"`   // 0 = unlimited
	Types []string `json:"types"` // allowed CDE types
	Doc   string   `json:"doc,omitempty"`
}

// Spec is the algorithm specification block.
type Spec struct {
	Name       string      `json:"name"`
	Label      string      `json:"label"`
	Desc       string      `json:"desc"`
	Y          VarSpec     `json:"y"`
	X          VarSpec     `json:"x"`
	Parameters []ParamSpec `json:"parameters,omitempty"`
}

// Algorithm is one federated analysis method.
type Algorithm interface {
	Spec() Spec
	Run(sess *federation.Session, req Request) (Result, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Algorithm{}
)

// Register installs an algorithm (panics on duplicates; called from init).
func Register(a Algorithm) {
	regMu.Lock()
	defer regMu.Unlock()
	name := a.Spec().Name
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("algorithms: %q registered twice", name))
	}
	registry[name] = a
}

// Get returns the named algorithm, or nil.
func Get(name string) Algorithm {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name]
}

var algLog = obs.Logger("algorithms")

// Run executes a on sess with structured, trace-correlated logging: one
// record per run carrying the algorithm name, datasets, duration and
// outcome, joined to the experiment trace when the session carries one.
// Platform entry points (the embedded platform and the API runner) route
// through it instead of calling a.Run directly.
func Run(a Algorithm, sess *federation.Session, req Request) (Result, error) {
	l := algLog.With("algorithm", a.Spec().Name,
		"datasets", strings.Join(req.Datasets, ","))
	if tr := sess.Trace(); tr.TraceID != "" {
		l = obs.WithTrace(l, &tr)
	}
	start := time.Now()
	res, err := a.Run(sess, req)
	if err != nil {
		l.Error("algorithm failed", "seconds", time.Since(start).Seconds(), "err", err.Error())
		return res, err
	}
	l.Info("algorithm done", "seconds", time.Since(start).Seconds(),
		"dropped_workers", strings.Join(sess.Dropped(), ","))
	return res, nil
}

// Names lists registered algorithms, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Specs lists all specifications, sorted by name.
func Specs() []Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Spec, 0, len(registry))
	for _, a := range registry {
		out = append(out, a.Spec())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// kw converts federation kwargs into the Transfer accessor type (same
// underlying map layout, so the Float/Floats/Matrix helpers apply).
func kw(k federation.Kwargs) federation.Transfer { return federation.Transfer(k) }

// requireVars validates the request against the spec's variable slots.
func requireVars(spec Spec, req Request) error {
	check := func(role string, vs VarSpec, vars []string) error {
		if len(vars) < vs.Min {
			return fmt.Errorf("algorithms: %s needs at least %d %s variable(s), got %d", spec.Name, vs.Min, role, len(vars))
		}
		if vs.Max > 0 && len(vars) > vs.Max {
			return fmt.Errorf("algorithms: %s accepts at most %d %s variable(s), got %d", spec.Name, vs.Max, role, len(vars))
		}
		return nil
	}
	if err := check("y", spec.Y, req.Y); err != nil {
		return err
	}
	return check("x", spec.X, req.X)
}
