package algorithms

import (
	"math"
	"testing"

	"mip/internal/stats"
)

func TestDescriptiveMatchesPooled(t *testing.T) {
	m, pooled := testFed(t, 3, 200, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"p_tau", "lefthippocampus"},
	}
	res := runAlg(t, m, "descriptive_stats", req)
	per := res["datasets"].(map[string][]VariableSummary)
	rows := per["all"]
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}

	for vi, name := range []string{"p_tau", "lefthippocampus"} {
		cols := pooledColumns(t, pooled, []string{name}, "")
		ref := stats.Describe(cols[0], 0)
		row := rows[vi]
		if int(row.Datapoints) != ref.N {
			t.Fatalf("%s datapoints = %v, want %d", name, row.Datapoints, ref.N)
		}
		near(t, row.Mean, ref.Mean, 1e-9, name+" mean")
		near(t, row.SE, ref.SE, 1e-9, name+" SE")
		near(t, row.Min, ref.Min, 1e-9, name+" min")
		near(t, row.Max, ref.Max, 1e-9, name+" max")
		// Quartiles come from a 256-bin histogram: exact to range/256.
		tol := (ref.Max - ref.Min) / float64(histBins) * 1.5
		if math.Abs(row.Q1-ref.Q1) > tol || math.Abs(row.Q2-ref.Q2) > tol || math.Abs(row.Q3-ref.Q3) > tol {
			t.Fatalf("%s quartiles: got %v/%v/%v want %v/%v/%v (tol %v)",
				name, row.Q1, row.Q2, row.Q3, ref.Q1, ref.Q2, ref.Q3, tol)
		}
	}
}

func TestDescriptiveNACounts(t *testing.T) {
	m, pooled := testFed(t, 2, 150, false)
	// Inject missingness is already in synth only when MissingRate set;
	// testFed uses 0, so NA must be 0 and Datapoints = total rows.
	res := runAlg(t, m, "descriptive_stats", Request{Datasets: []string{"edsd"}, Y: []string{"ab42"}})
	per := res["datasets"].(map[string][]VariableSummary)
	row := per["all"][0]
	tab, err := pooled.Query("SELECT count(*) AS n FROM data")
	if err != nil {
		t.Fatal(err)
	}
	total := float64(tab.Col(0).Int64s()[0])
	if row.Datapoints+row.NA != total {
		t.Fatalf("datapoints %v + NA %v != total %v", row.Datapoints, row.NA, total)
	}
}

func TestDescriptivePerDatasetKeys(t *testing.T) {
	m, _ := testFed(t, 2, 120, false)
	res := runAlg(t, m, "descriptive_stats", Request{Datasets: []string{"edsd"}, Y: []string{"p_tau"}})
	per := res["datasets"].(map[string][]VariableSummary)
	if _, ok := per["edsd"]; !ok {
		t.Fatal("missing per-dataset block")
	}
	if _, ok := per["all"]; !ok {
		t.Fatal("missing all block")
	}
}

// The SMPC path must deliver the same table (within fixed-point tolerance).
func TestDescriptiveSecureMatchesPlain(t *testing.T) {
	plain, _ := testFed(t, 3, 120, false)
	secure, _ := testFed(t, 3, 120, true)
	req := Request{Datasets: []string{"edsd"}, Y: []string{"lefthippocampus"}}
	rp := runAlg(t, plain, "descriptive_stats", req)["datasets"].(map[string][]VariableSummary)["all"][0]
	rs := runAlg(t, secure, "descriptive_stats", req)["datasets"].(map[string][]VariableSummary)["all"][0]
	near(t, rs.Datapoints, rp.Datapoints, 1e-9, "secure datapoints")
	near(t, rs.Mean, rp.Mean, 1e-4, "secure mean")
	near(t, rs.SE, rp.SE, 1e-3, "secure SE")
	near(t, rs.Min, rp.Min, 1e-4, "secure min")
	near(t, rs.Max, rp.Max, 1e-4, "secure max")
	near(t, rs.Q2, rp.Q2, 1e-2, "secure median")
}

func TestDescriptiveRequiresY(t *testing.T) {
	m, _ := testFed(t, 1, 50, false)
	sess, _ := m.NewSession(nil)
	if _, err := (&Descriptive{}).Run(sess, Request{}); err == nil {
		t.Fatal("missing Y must fail")
	}
}

func TestHistQuantile(t *testing.T) {
	counts := []float64{10, 10, 10, 10} // uniform over [0, 4)
	if q := histQuantile(counts, 0, 4, 0.5); math.Abs(q-2) > 1e-12 {
		t.Fatalf("median = %v", q)
	}
	if q := histQuantile(counts, 0, 4, 0.25); math.Abs(q-1) > 1e-12 {
		t.Fatalf("q1 = %v", q)
	}
	if !math.IsNaN(histQuantile([]float64{0, 0}, 0, 1, 0.5)) {
		t.Fatal("empty histogram should be NaN")
	}
	if q := histQuantile([]float64{5}, 3, 3, 0.5); q != 3 {
		t.Fatalf("degenerate range = %v", q)
	}
}
