package algorithms

import (
	"fmt"
	"math"
	"testing"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/smpc"
	"mip/internal/synth"
)

// testFed builds a federation over nWorkers shards of synthetic dementia
// data plus a pooled engine DB holding all rows, for equivalence checks.
func testFed(t *testing.T, nWorkers int, rowsPerWorker int, secure bool) (*federation.Master, *engine.DB) {
	t.Helper()
	var cluster *smpc.Cluster
	if secure {
		var err error
		cluster, err = smpc.NewCluster(smpc.Config{Scheme: smpc.ShamirScheme, Nodes: 3, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
	}
	pooledDB := engine.NewDB()
	pooled := engine.NewTable(engine.Schema(synth.Variables))
	pooledDB.RegisterTable(federation.DataTable, pooled)

	var clients []federation.WorkerClient
	rowBase := 0
	for i := 0; i < nWorkers; i++ {
		tab, err := synth.Generate(synth.Spec{
			Dataset: "edsd",
			Rows:    rowsPerWorker,
			Seed:    int64(100 + i),
			Shift:   float64(i) * 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Re-key row ids so they are globally unique (as real deployments
		// guarantee via subject codes).
		rekeyed := engine.NewTable(engine.Schema(synth.Variables))
		for r := 0; r < tab.NumRows(); r++ {
			row := tab.Row(r)
			row[0] = int64(rowBase + r)
			if err := rekeyed.AppendRow(row...); err != nil {
				t.Fatal(err)
			}
			if err := pooled.AppendRow(row...); err != nil {
				t.Fatal(err)
			}
		}
		rowBase += tab.NumRows()
		db := engine.NewDB()
		db.RegisterTable(federation.DataTable, rekeyed)
		opts := []federation.WorkerOption{}
		if secure {
			opts = append(opts, federation.WithSMPC(cluster))
		}
		clients = append(clients, federation.NewWorker(fmt.Sprintf("w%d", i), db, opts...))
	}
	m, err := federation.NewMaster(clients, cluster, federation.Security{UseSMPC: secure})
	if err != nil {
		t.Fatal(err)
	}
	return m, pooledDB
}

func runAlg(t *testing.T, m *federation.Master, name string, req Request) Result {
	t.Helper()
	a := Get(name)
	if a == nil {
		t.Fatalf("algorithm %q not registered", name)
	}
	sess, err := m.NewSession(req.Datasets)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run(sess, req)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return res
}

// pooledColumn pulls a complete-cases column set from the pooled DB.
func pooledColumns(t *testing.T, db *engine.DB, vars []string, filter string) [][]float64 {
	t.Helper()
	sql := "SELECT "
	for i, v := range vars {
		if i > 0 {
			sql += ", "
		}
		sql += v
	}
	sql += " FROM data WHERE "
	for i, v := range vars {
		if i > 0 {
			sql += " AND "
		}
		sql += v + " IS NOT NULL"
	}
	if filter != "" {
		sql += " AND (" + filter + ")"
	}
	tab, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]float64, len(vars))
	for i := range vars {
		col, _, err := tab.Float64Column(vars[i])
		if err != nil {
			t.Fatal(err)
		}
		out[i] = col
	}
	return out
}

func near(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) || math.Abs(got-want) > tol*(1+math.Abs(want)) {
		t.Fatalf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}
