package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
)

// Federated logistic regression via iteratively reweighted least squares:
// each Newton iteration runs one local round that evaluates, at the current
// coefficients, the gradient Xᵀ(y − p), the Hessian XᵀWX and the
// log-likelihood over the worker's slice; the master aggregates and takes
// the Newton step. The training flow matches the paper's Training section
// (per-iteration aggregation of model updates).

func init() {
	federation.RegisterLocal("logreg_grad_local", logregGradLocal)
	federation.RegisterLocal("logreg_score_local", logregScoreLocal)
	Register(&LogisticRegression{})
	Register(&LogisticRegressionCV{})
}

// logregData extracts the design matrix and the 0/1 outcome for the local
// slice, honoring CV fold kwargs.
func logregData(data *engine.Table, kwargs federation.Kwargs) (*stats.Dense, []float64, error) {
	yvar, xvars, levels, err := modelArgs(kwargs)
	if err != nil {
		return nil, nil, err
	}
	posLevel, _ := kwargs["pos_level"].(string)
	if posLevel == "" {
		return nil, nil, fmt.Errorf("algorithms: missing pos_level kwarg")
	}
	d := newDesign(xvars, levels)
	x, keep, err := d.rows(data)
	if err != nil {
		return nil, nil, err
	}
	ysRaw, err := stringCol(data, yvar)
	if err != nil {
		return nil, nil, err
	}
	y := make([]float64, len(keep))
	for i, r := range keep {
		if ysRaw[r] == posLevel {
			y[i] = 1
		}
	}
	return filterFoldXY(data, kwargs, keep, x, y)
}

func filterFoldXY(data *engine.Table, kwargs federation.Kwargs, keep []int, x *stats.Dense, y []float64) (*stats.Dense, []float64, error) {
	return filterFold(data, kwargs, keep, x, y)
}

func logregGradLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	x, y, err := logregData(data, kwargs)
	if err != nil {
		return nil, err
	}
	beta, err := kw(kwargs).Floats("beta")
	if err != nil {
		return nil, err
	}
	p := x.Cols()
	grad := make([]float64, p)
	hess := stats.NewDense(p, p)
	var ll, pos float64
	for i := 0; i < x.Rows(); i++ {
		var eta float64
		for j := 0; j < p; j++ {
			eta += x.At(i, j) * beta[j]
		}
		mu := sigmoid(eta)
		w := mu * (1 - mu)
		r := y[i] - mu
		for j := 0; j < p; j++ {
			grad[j] += x.At(i, j) * r
			for k2 := j; k2 < p; k2++ {
				hess.Add(j, k2, w*x.At(i, j)*x.At(i, k2))
			}
		}
		// Numerically safe log-likelihood.
		ll += y[i]*safeLog(mu) + (1-y[i])*safeLog(1-mu)
		pos += y[i]
	}
	for j := 0; j < p; j++ {
		for k2 := 0; k2 < j; k2++ {
			hess.Set(j, k2, hess.At(k2, j))
		}
	}
	return federation.Transfer{
		"n":    float64(x.Rows()),
		"pos":  pos,
		"grad": grad,
		"hess": denseToRows(hess),
		"ll":   ll,
	}, nil
}

// logregScoreLocal evaluates held-out fold metrics for given coefficients:
// the confusion counts at threshold 0.5 and the binned score histograms
// that let the master build the ROC curve without seeing any row.
const rocBins = 100

func logregScoreLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	x, y, err := logregData(data, kwargs)
	if err != nil {
		return nil, err
	}
	beta, err := kw(kwargs).Floats("beta")
	if err != nil {
		return nil, err
	}
	posBins := make([]float64, rocBins)
	negBins := make([]float64, rocBins)
	conf := make([]float64, 4) // tp fp fn tn
	for i := 0; i < x.Rows(); i++ {
		var eta float64
		for j := range beta {
			eta += x.At(i, j) * beta[j]
		}
		mu := sigmoid(eta)
		b := int(mu * rocBins)
		if b >= rocBins {
			b = rocBins - 1
		}
		if y[i] == 1 {
			posBins[b]++
			if mu >= 0.5 {
				conf[0]++
			} else {
				conf[2]++
			}
		} else {
			negBins[b]++
			if mu >= 0.5 {
				conf[1]++
			} else {
				conf[3]++
			}
		}
	}
	return federation.Transfer{"pos_bins": posBins, "neg_bins": negBins, "conf": conf}, nil
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

func safeLog(x float64) float64 {
	if x < 1e-12 {
		x = 1e-12
	}
	return math.Log(x)
}

// LogRegModel is the fitted-model summary.
type LogRegModel struct {
	Coefficients []LogRegCoef `json:"coefficients"`
	N            int          `json:"n"`
	NPositive    int          `json:"n_positive"`
	LogLik       float64      `json:"log_lik"`
	AIC          float64      `json:"aic"`
	BIC          float64      `json:"bic"`
	Iterations   int          `json:"iterations"`
	Converged    bool         `json:"converged"`
}

// LogRegCoef is one coefficient row with odds ratios.
type LogRegCoef struct {
	Name      string  `json:"name"`
	Estimate  float64 `json:"estimate"`
	StdErr    float64 `json:"std_err"`
	ZValue    float64 `json:"z_value"`
	PValue    float64 `json:"p_value"`
	OddsRatio float64 `json:"odds_ratio"`
	ORLow     float64 `json:"or_ci_low"`
	ORHigh    float64 `json:"or_ci_high"`
}

// LogisticRegression implements federated logistic regression.
type LogisticRegression struct{}

// Spec implements Algorithm.
func (*LogisticRegression) Spec() Spec {
	return Spec{
		Name:  "logistic_regression",
		Label: "Logistic Regression",
		Desc:  "Binary logistic regression via federated Newton-Raphson; Wald tests, odds ratios, AIC/BIC.",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"nominal"}},
		X:     VarSpec{Min: 1, Types: []string{"real", "integer", "nominal"}},
		Parameters: []ParamSpec{
			{Name: "pos_level", Label: "Positive outcome level", Type: "string"},
			{Name: "max_iter", Label: "Max Newton iterations", Type: "int", Default: 25},
			{Name: "tol", Label: "Convergence tolerance", Type: "real", Default: 1e-8},
			{Name: "levels", Label: "Nominal covariate levels", Type: "string"},
			{Name: "alpha", Label: "CI significance", Type: "real", Default: 0.05},
		},
	}
}

// Run implements Algorithm.
func (a *LogisticRegression) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	model, _, err := fitLogReg(sess, req, -1, 0)
	if err != nil {
		return nil, err
	}
	return Result{"model": model}, nil
}

// fitLogReg runs the IRLS flow; fold >= 0 excludes that fold.
func fitLogReg(sess *federation.Session, req Request, fold, numFolds int) (*LogRegModel, []float64, error) {
	posLevel := req.ParamString("pos_level", "")
	if posLevel == "" {
		return nil, nil, fmt.Errorf("algorithms: logistic_regression needs parameter pos_level")
	}
	levels := levelsParam(req)
	d := newDesign(req.X, levels)
	p := d.Width()
	beta := make([]float64, p)
	maxIter := req.ParamInt("max_iter", 25)
	tol := req.ParamFloat("tol", 1e-8)

	vars := append(append([]string{}, req.Y...), req.X...)
	if fold >= 0 {
		vars = append(vars, "row_id")
	}
	kwargs := federation.Kwargs{
		"y": req.Y[0], "x": req.X, "levels": levels, "pos_level": posLevel,
	}
	if fold >= 0 {
		kwargs["fold"] = fold
		kwargs["num_folds"] = numFolds
		kwargs["fold_mode"] = "exclude"
	}

	model := &LogRegModel{}
	var hessInv *stats.Dense
	var lastLL float64
	for iter := 1; iter <= maxIter; iter++ {
		kwargs["beta"] = beta
		agg, err := sess.Sum(federation.LocalRunSpec{
			Func:   "logreg_grad_local",
			Vars:   vars,
			Filter: req.Filter,
			Kwargs: kwargs,
		}, "n", "pos", "grad", "hess", "ll")
		if err != nil {
			return nil, nil, err
		}
		n, _ := agg.Float("n")
		pos, _ := agg.Float("pos")
		grad, _ := agg.Floats("grad")
		hessRows, err := agg.Matrix("hess")
		if err != nil {
			return nil, nil, err
		}
		ll, _ := agg.Float("ll")
		if n <= float64(p) {
			return nil, nil, fmt.Errorf("algorithms: %v observations cannot identify %d coefficients", n, p)
		}
		if pos == 0 || pos == n {
			return nil, nil, fmt.Errorf("algorithms: outcome has a single class in the selected data")
		}
		hess := rowsToDense(hessRows)
		step, err := stats.SolveSPD(hess, grad)
		if err != nil {
			// Escalating ridge: aggregation noise (secure aggregation with
			// DP) can push the Hessian off positive definiteness; damping
			// restores a usable ascent direction.
			for _, lambda := range []float64{1e-6, 1e-3, 1, 1e3} {
				step, err = stats.SolveRidge(hess, grad, lambda)
				if err == nil {
					break
				}
			}
			if err != nil {
				return nil, nil, fmt.Errorf("algorithms: singular Hessian: %w", err)
			}
		}
		var delta float64
		for j := range beta {
			beta[j] += step[j]
			delta += step[j] * step[j]
		}
		model.N = int(n)
		model.NPositive = int(pos)
		model.Iterations = iter
		lastLL = ll
		if math.Sqrt(delta) < tol || math.Abs(ll-model.LogLik) < tol && iter > 1 {
			model.Converged = true
			hessInv, err = invSPDDamped(hess)
			if err != nil {
				return nil, nil, err
			}
			break
		}
		model.LogLik = ll
		if iter == maxIter {
			hessInv, err = invSPDDamped(hess)
			if err != nil {
				return nil, nil, err
			}
		}
	}
	model.LogLik = lastLL
	model.AIC = -2*model.LogLik + 2*float64(p)
	model.BIC = -2*model.LogLik + float64(p)*math.Log(float64(model.N))

	alpha := req.ParamFloat("alpha", 0.05)
	zcrit := stats.NormalQuantile(1 - alpha/2)
	for j, name := range d.Names {
		se := math.Sqrt(hessInv.At(j, j))
		z := beta[j] / se
		model.Coefficients = append(model.Coefficients, LogRegCoef{
			Name: name, Estimate: beta[j], StdErr: se, ZValue: z,
			PValue:    2 * (1 - stats.NormalCDF(math.Abs(z))),
			OddsRatio: math.Exp(beta[j]),
			ORLow:     math.Exp(beta[j] - zcrit*se),
			ORHigh:    math.Exp(beta[j] + zcrit*se),
		})
	}
	return model, beta, nil
}

// LogisticRegressionCV is k-fold cross-validated logistic regression.
type LogisticRegressionCV struct{}

// Spec implements Algorithm.
func (*LogisticRegressionCV) Spec() Spec {
	return Spec{
		Name:  "logistic_regression_cv",
		Label: "Logistic Regression Cross-validation",
		Desc:  "k-fold CV of the federated logistic model; accuracy, precision, recall, F1 and binned-ROC AUC per fold.",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"nominal"}},
		X:     VarSpec{Min: 1, Types: []string{"real", "integer", "nominal"}},
		Parameters: []ParamSpec{
			{Name: "pos_level", Label: "Positive outcome level", Type: "string"},
			{Name: "num_folds", Label: "Folds", Type: "int", Default: 5},
			{Name: "levels", Label: "Nominal covariate levels", Type: "string"},
		},
	}
}

// ClassScore is one fold's held-out classification metrics.
type ClassScore struct {
	Fold      int     `json:"fold"`
	N         int     `json:"n"`
	Accuracy  float64 `json:"accuracy"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	AUC       float64 `json:"auc"`
}

// Run implements Algorithm.
func (a *LogisticRegressionCV) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	k := req.ParamInt("num_folds", 5)
	if k < 2 {
		return nil, fmt.Errorf("algorithms: num_folds must be >= 2")
	}
	levels := levelsParam(req)
	vars := append(append([]string{}, req.Y...), req.X...)
	vars = append(vars, "row_id")

	var folds []ClassScore
	means := ClassScore{}
	for f := 0; f < k; f++ {
		_, beta, err := fitLogReg(sess, req, f, k)
		if err != nil {
			return nil, fmt.Errorf("fold %d: %w", f, err)
		}
		agg, err := sess.Sum(federation.LocalRunSpec{
			Func:   "logreg_score_local",
			Vars:   vars,
			Filter: req.Filter,
			Kwargs: federation.Kwargs{
				"y": req.Y[0], "x": req.X, "levels": levels,
				"pos_level": req.ParamString("pos_level", ""),
				"beta":      beta,
				"fold":      f, "num_folds": k, "fold_mode": "only",
			},
		}, "pos_bins", "neg_bins", "conf")
		if err != nil {
			return nil, fmt.Errorf("fold %d scoring: %w", f, err)
		}
		conf, _ := agg.Floats("conf")
		posBins, _ := agg.Floats("pos_bins")
		negBins, _ := agg.Floats("neg_bins")
		tp, fp, fn, tn := conf[0], conf[1], conf[2], conf[3]
		n := tp + fp + fn + tn
		fs := ClassScore{Fold: f, N: int(n)}
		if n > 0 {
			fs.Accuracy = (tp + tn) / n
		}
		if tp+fp > 0 {
			fs.Precision = tp / (tp + fp)
		}
		if tp+fn > 0 {
			fs.Recall = tp / (tp + fn)
		}
		if fs.Precision+fs.Recall > 0 {
			fs.F1 = 2 * fs.Precision * fs.Recall / (fs.Precision + fs.Recall)
		}
		fs.AUC = binnedAUC(posBins, negBins)
		folds = append(folds, fs)
		means.Accuracy += fs.Accuracy / float64(k)
		means.Precision += fs.Precision / float64(k)
		means.Recall += fs.Recall / float64(k)
		means.F1 += fs.F1 / float64(k)
		means.AUC += fs.AUC / float64(k)
	}
	return Result{
		"folds":          folds,
		"mean_accuracy":  means.Accuracy,
		"mean_precision": means.Precision,
		"mean_recall":    means.Recall,
		"mean_f1":        means.F1,
		"mean_auc":       means.AUC,
	}, nil
}

// binnedAUC computes the ROC area from per-bin positive/negative counts by
// sweeping the threshold across bins (trapezoidal rule).
func binnedAUC(posBins, negBins []float64) float64 {
	var totalP, totalN float64
	for i := range posBins {
		totalP += posBins[i]
		totalN += negBins[i]
	}
	if totalP == 0 || totalN == 0 {
		return math.NaN()
	}
	// Sweep from the highest score bin down.
	var tp, fp, auc, prevTPR, prevFPR float64
	for b := len(posBins) - 1; b >= 0; b-- {
		tp += posBins[b]
		fp += negBins[b]
		tpr := tp / totalP
		fpr := fp / totalN
		auc += (fpr - prevFPR) * (tpr + prevTPR) / 2
		prevTPR, prevFPR = tpr, fpr
	}
	auc += (1 - prevFPR) * (1 + prevTPR) / 2
	return auc
}

// invSPDDamped inverts the Hessian, adding an escalating ridge when
// aggregation noise has pushed it off positive definiteness.
func invSPDDamped(h *stats.Dense) (*stats.Dense, error) {
	inv, err := stats.InvSPD(h)
	if err == nil {
		return inv, nil
	}
	for _, lambda := range []float64{1e-6, 1e-3, 1, 1e3} {
		d := h.Clone()
		for i := 0; i < d.Rows(); i++ {
			d.Add(i, i, lambda)
		}
		if inv, err = stats.InvSPD(d); err == nil {
			return inv, nil
		}
	}
	return nil, err
}
