package algorithms

import (
	"math"
	"testing"

	"mip/internal/stats"
)

func TestTTestOneSampleMatchesPooled(t *testing.T) {
	m, pooled := testFed(t, 3, 120, false)
	req := Request{
		Datasets:   []string{"edsd"},
		Y:          []string{"minimentalstate"},
		Parameters: map[string]any{"mu0": 25.0},
	}
	res := runAlg(t, m, "ttest_onesample", req)
	tt := res["ttest"].(TTestResult)

	ys := pooledColumns(t, pooled, []string{"minimentalstate"}, "")[0]
	mean := stats.Mean(ys)
	se := stats.StdErr(ys)
	wantT := (mean - 25) / se
	near(t, tt.T, wantT, 1e-9, "t")
	near(t, tt.DF, float64(len(ys)-1), 0, "df")
	wantP := 2 * (1 - stats.StudentTCDF(math.Abs(wantT), float64(len(ys)-1)))
	near(t, tt.PValue, wantP, 1e-9, "p")
	if tt.CILow >= tt.CIHigh {
		t.Fatal("CI degenerate")
	}
}

func TestTTestIndependentWelch(t *testing.T) {
	m, pooled := testFed(t, 3, 200, false)
	req := Request{
		Datasets:   []string{"edsd"},
		Y:          []string{"lefthippocampus"},
		X:          []string{"alzheimerbroadcategory"},
		Parameters: map[string]any{"groups": []any{"CN", "AD"}},
	}
	res := runAlg(t, m, "ttest_independent", req)
	tt := res["ttest"].(TTestResult)

	// Pooled Welch reference.
	g1 := pooledColumns(t, pooled, []string{"lefthippocampus"}, "alzheimerbroadcategory = 'CN'")[0]
	g2 := pooledColumns(t, pooled, []string{"lefthippocampus"}, "alzheimerbroadcategory = 'AD'")[0]
	m1, m2 := stats.Mean(g1), stats.Mean(g2)
	v1, v2 := stats.Variance(g1), stats.Variance(g2)
	n1, n2 := float64(len(g1)), float64(len(g2))
	se := math.Sqrt(v1/n1 + v2/n2)
	wantT := (m1 - m2) / se
	near(t, tt.T, wantT, 1e-9, "welch t")
	if tt.T <= 0 || tt.PValue > 1e-6 {
		t.Fatalf("CN vs AD hippocampus should be strongly significant: %+v", tt)
	}
	// Pooled (Student) variant.
	req.Parameters["welch"] = "false"
	res = runAlg(t, m, "ttest_independent", req)
	tt2 := res["ttest"].(TTestResult)
	if tt2.DF != n1+n2-2 {
		t.Fatalf("pooled df = %v", tt2.DF)
	}
}

func TestTTestPaired(t *testing.T) {
	m, pooled := testFed(t, 2, 150, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"lefthippocampus", "righthippocampus"},
	}
	res := runAlg(t, m, "ttest_paired", req)
	tt := res["ttest"].(TTestResult)

	cols := pooledColumns(t, pooled, []string{"lefthippocampus", "righthippocampus"}, "")
	var ds []float64
	for i := range cols[0] {
		ds = append(ds, cols[0][i]-cols[1][i])
	}
	wantT := stats.Mean(ds) / stats.StdErr(ds)
	near(t, tt.T, wantT, 1e-9, "paired t")
	near(t, tt.N, float64(len(ds)), 0, "n pairs")
}

func TestPearsonMatchesPooled(t *testing.T) {
	m, pooled := testFed(t, 3, 150, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"minimentalstate"},
		X:        []string{"lefthippocampus", "p_tau"},
	}
	res := runAlg(t, m, "pearson_correlation", req)
	corrs := res["correlations"].([]Correlation)
	if len(corrs) != 2 {
		t.Fatalf("pairs = %d", len(corrs))
	}
	for _, c := range corrs {
		cols := pooledColumns(t, pooled, []string{"minimentalstate", "lefthippocampus", "p_tau"}, "")
		y := cols[0]
		var x []float64
		if c.X == "lefthippocampus" {
			x = cols[1]
		} else {
			x = cols[2]
		}
		// Reference r over the same complete-cases set (all three vars).
		my, mx := stats.Mean(y), stats.Mean(x)
		var cov, vy, vx float64
		for i := range y {
			cov += (y[i] - my) * (x[i] - mx)
			vy += (y[i] - my) * (y[i] - my)
			vx += (x[i] - mx) * (x[i] - mx)
		}
		want := cov / math.Sqrt(vy*vx)
		near(t, c.R, want, 1e-9, "r("+c.X+")")
		if c.CILow >= c.R || c.CIHigh <= c.R {
			t.Fatalf("CI does not bracket r: %+v", c)
		}
	}
	// MMSE-hippocampus positive, MMSE-ptau negative in the synthetic data.
	if corrs[0].R <= 0 {
		t.Fatal("MMSE~hippocampus should be positive")
	}
	if corrs[1].R >= 0 {
		t.Fatal("MMSE~p_tau should be negative")
	}
}

func TestANOVAOneWayMatchesPooled(t *testing.T) {
	m, pooled := testFed(t, 3, 200, false)
	req := Request{
		Datasets:   []string{"edsd"},
		Y:          []string{"lefthippocampus"},
		X:          []string{"alzheimerbroadcategory"},
		Parameters: map[string]any{"levels": []any{"CN", "MCI", "AD"}},
	}
	res := runAlg(t, m, "anova_oneway", req)
	table := res["table"].([]ANOVATable)

	// Reference: compute SSB/SSW from pooled rows.
	groups := map[string][]float64{}
	for _, lvl := range []string{"CN", "MCI", "AD"} {
		groups[lvl] = pooledColumns(t, pooled, []string{"lefthippocampus"}, "alzheimerbroadcategory = '"+lvl+"'")[0]
	}
	var all []float64
	for _, g := range groups {
		all = append(all, g...)
	}
	grand := stats.Mean(all)
	var ssb, ssw float64
	for _, g := range groups {
		gm := stats.Mean(g)
		ssb += float64(len(g)) * (gm - grand) * (gm - grand)
		for _, x := range g {
			ssw += (x - gm) * (x - gm)
		}
	}
	dfb, dfw := 2.0, float64(len(all)-3)
	wantF := (ssb / dfb) / (ssw / dfw)
	near(t, table[0].F, wantF, 1e-8, "F")
	near(t, table[0].SumSq, ssb, 1e-7, "SSB")
	near(t, table[1].SumSq, ssw, 1e-7, "SSW")
	if table[0].PValue > 1e-6 {
		t.Fatalf("diagnosis effect should be significant: %+v", table[0])
	}
	if eta := res["eta_sq"].(float64); eta <= 0 || eta >= 1 {
		t.Fatalf("eta² = %v", eta)
	}
}

func TestANOVATwoWay(t *testing.T) {
	m, _ := testFed(t, 3, 250, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"lefthippocampus"},
		X:        []string{"alzheimerbroadcategory", "gender"},
		Parameters: map[string]any{"levels": map[string]any{
			"alzheimerbroadcategory": []any{"CN", "MCI", "AD"},
			"gender":                 []any{"F", "M"},
		}},
	}
	res := runAlg(t, m, "anova_twoway", req)
	table := res["table"].([]ANOVATable)
	if len(table) != 4 {
		t.Fatalf("table rows = %d", len(table))
	}
	if table[0].DF != 2 || table[1].DF != 1 || table[2].DF != 2 {
		t.Fatalf("dfs: %v %v %v", table[0].DF, table[1].DF, table[2].DF)
	}
	// Diagnosis strongly significant; gender should not be (not generated).
	if table[0].PValue > 1e-6 {
		t.Fatalf("diagnosis effect should be significant, p=%v", table[0].PValue)
	}
	if table[1].PValue < 0.001 {
		t.Fatalf("gender effect should be weak, p=%v", table[1].PValue)
	}
	// All SS non-negative, residual df sensible.
	for _, row := range table {
		if row.SumSq < 0 {
			t.Fatalf("negative SS: %+v", row)
		}
	}
}

func TestPCAMatchesPooled(t *testing.T) {
	m, pooled := testFed(t, 3, 200, false)
	vars := []string{"lefthippocampus", "leftententorhinalarea", "ab42", "p_tau"}
	res := runAlg(t, m, "pca", Request{Datasets: []string{"edsd"}, Y: vars})
	pca := res["pca"].(PCAResult)

	// Reference: correlation-matrix eigenvalues from pooled rows.
	cols := pooledColumns(t, pooled, vars, "")
	p := len(vars)
	n := len(cols[0])
	corr := stats.NewDense(p, p)
	means := make([]float64, p)
	sds := make([]float64, p)
	for i := range vars {
		means[i] = stats.Mean(cols[i])
		sds[i] = stats.StdDev(cols[i])
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			var c float64
			for r := 0; r < n; r++ {
				c += (cols[i][r] - means[i]) * (cols[j][r] - means[j])
			}
			corr.Set(i, j, c/float64(n-1)/(sds[i]*sds[j]))
		}
	}
	wantVals, _, err := stats.EigenSym(corr)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantVals {
		near(t, pca.Eigenvalues[i], wantVals[i], 1e-8, "eigenvalue")
	}
	// Eigenvalues of a correlation matrix sum to p.
	var total float64
	for _, v := range pca.Eigenvalues {
		total += v
	}
	near(t, total, float64(p), 1e-8, "trace")
	if pca.Cumulative[p-1] < 0.999 {
		t.Fatalf("cumulative variance = %v", pca.Cumulative[p-1])
	}
	// The AD-axis (first component) should explain a dominant share.
	if pca.ExplainedVariance[0] < 0.3 {
		t.Fatalf("PC1 explains only %v", pca.ExplainedVariance[0])
	}
}

func TestKMeansClusters(t *testing.T) {
	m, _ := testFed(t, 4, 250, false)
	req := Request{
		Datasets:   []string{"edsd"},
		Y:          []string{"ab42", "p_tau", "leftententorhinalarea"},
		Parameters: map[string]any{"k": 3, "iterations_max_number": 50, "e": 0.001},
	}
	res := runAlg(t, m, "kmeans", req)
	km := res["kmeans"].(KMeansResult)
	if len(km.Centroids) != 3 {
		t.Fatalf("centroids = %d", len(km.Centroids))
	}
	if !km.Converged && km.Iterations != 50 {
		t.Fatalf("did not run to convergence or max: %+v", km)
	}
	var totalSize float64
	for _, s := range km.Sizes {
		if s == 0 {
			t.Fatal("empty cluster survived")
		}
		totalSize += s
	}
	if km.WSS <= 0 {
		t.Fatalf("WSS = %v", km.WSS)
	}
	// k=1 must put everything into a single cluster with larger WSS.
	req.Parameters["k"] = 1
	res1 := runAlg(t, m, "kmeans", req)
	km1 := res1["kmeans"].(KMeansResult)
	if km1.Sizes[0] != totalSize {
		t.Fatalf("k=1 sizes = %v, want %v", km1.Sizes[0], totalSize)
	}
	if km1.WSS <= km.WSS {
		t.Fatalf("WSS must decrease with k: k1=%v k3=%v", km1.WSS, km.WSS)
	}
}

func TestKMeansSecureMatchesPlainShape(t *testing.T) {
	plain, _ := testFed(t, 2, 120, false)
	secure, _ := testFed(t, 2, 120, true)
	req := Request{
		Datasets:   []string{"edsd"},
		Y:          []string{"ab42", "p_tau"},
		Parameters: map[string]any{"k": 2, "iterations_max_number": 30},
	}
	kp := runAlg(t, plain, "kmeans", req)["kmeans"].(KMeansResult)
	ks := runAlg(t, secure, "kmeans", req)["kmeans"].(KMeansResult)
	near(t, ks.Sizes[0]+ks.Sizes[1], kp.Sizes[0]+kp.Sizes[1], 1e-9, "total size")
	near(t, ks.WSS, kp.WSS, 1e-2, "secure WSS")
}

func TestLogisticRegressionSeparatesAD(t *testing.T) {
	m, pooled := testFed(t, 3, 250, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"alzheimerbroadcategory"},
		X:        []string{"lefthippocampus", "p_tau"},
		Filter:   "alzheimerbroadcategory IN ('AD', 'CN')",
		Parameters: map[string]any{
			"pos_level": "AD",
		},
	}
	res := runAlg(t, m, "logistic_regression", req)
	model := res["model"].(*LogRegModel)
	if !model.Converged {
		t.Fatalf("IRLS did not converge: %+v", model)
	}
	// Hippocampal volume lowers AD odds; pTau raises them.
	var hip, ptau LogRegCoef
	for _, c := range model.Coefficients {
		switch c.Name {
		case "lefthippocampus":
			hip = c
		case "p_tau":
			ptau = c
		}
	}
	if hip.Estimate >= 0 || hip.PValue > 0.01 {
		t.Fatalf("hippocampus coef %+v should be negative & significant", hip)
	}
	if ptau.Estimate <= 0 || ptau.PValue > 0.01 {
		t.Fatalf("p_tau coef %+v should be positive & significant", ptau)
	}
	if hip.OddsRatio >= 1 || ptau.OddsRatio <= 1 {
		t.Fatalf("odds ratios inconsistent: %v %v", hip.OddsRatio, ptau.OddsRatio)
	}
	// Sanity: n matches pooled complete cases under the filter.
	cols := pooledColumns(t, pooled, []string{"lefthippocampus", "p_tau"},
		"alzheimerbroadcategory IN ('AD', 'CN')")
	if model.N != len(cols[0]) {
		t.Fatalf("N = %d, want %d", model.N, len(cols[0]))
	}
	if model.AIC <= 0 || model.BIC <= model.AIC {
		t.Fatalf("AIC/BIC odd: %v %v", model.AIC, model.BIC)
	}
}

func TestLogisticRegressionCV(t *testing.T) {
	m, _ := testFed(t, 3, 250, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"alzheimerbroadcategory"},
		X:        []string{"lefthippocampus", "p_tau", "ab42"},
		Filter:   "alzheimerbroadcategory IN ('AD', 'CN')",
		Parameters: map[string]any{
			"pos_level": "AD",
			"num_folds": 3,
		},
	}
	res := runAlg(t, m, "logistic_regression_cv", req)
	folds := res["folds"].([]ClassScore)
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	acc := res["mean_accuracy"].(float64)
	auc := res["mean_auc"].(float64)
	if acc < 0.7 {
		t.Fatalf("mean accuracy = %v, biomarkers should separate AD/CN well", acc)
	}
	if auc < 0.8 {
		t.Fatalf("mean AUC = %v", auc)
	}
	for _, f := range folds {
		if f.N == 0 {
			t.Fatalf("fold %d empty", f.Fold)
		}
	}
}

func TestLogisticRegressionErrors(t *testing.T) {
	m, _ := testFed(t, 2, 100, false)
	sess, _ := m.NewSession([]string{"edsd"})
	// Missing pos_level.
	if _, err := (&LogisticRegression{}).Run(sess, Request{
		Datasets: []string{"edsd"}, Y: []string{"alzheimerbroadcategory"}, X: []string{"ab42"},
	}); err == nil {
		t.Fatal("missing pos_level must fail")
	}
	// Single-class outcome.
	sess2, _ := m.NewSession([]string{"edsd"})
	if _, err := (&LogisticRegression{}).Run(sess2, Request{
		Datasets: []string{"edsd"}, Y: []string{"alzheimerbroadcategory"}, X: []string{"ab42"},
		Filter:     "alzheimerbroadcategory = 'AD'",
		Parameters: map[string]any{"pos_level": "AD"},
	}); err == nil {
		t.Fatal("single-class outcome must fail")
	}
}

func TestBinnedAUC(t *testing.T) {
	// Perfect separation: all positives in top bin, negatives in bottom.
	pos := make([]float64, rocBins)
	neg := make([]float64, rocBins)
	pos[rocBins-1] = 50
	neg[0] = 50
	if auc := binnedAUC(pos, neg); math.Abs(auc-1) > 1e-12 {
		t.Fatalf("perfect AUC = %v", auc)
	}
	// Identical distributions → 0.5.
	for i := range pos {
		pos[i], neg[i] = 1, 1
	}
	if auc := binnedAUC(pos, neg); math.Abs(auc-0.5) > 1e-12 {
		t.Fatalf("random AUC = %v", auc)
	}
	if !math.IsNaN(binnedAUC(make([]float64, rocBins), neg)) {
		t.Fatal("no positives should be NaN")
	}
}
