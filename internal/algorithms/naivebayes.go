package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
)

// Federated naive Bayes: training is a single aggregation round of
// per-class counts, per-class Gaussian moments for numeric features and
// per-class level counts (Laplace-smoothed) for nominal features. The
// cross-validated variant trains k models by excluding each fold and then
// scores each fold locally, aggregating only confusion counts.

func init() {
	federation.RegisterLocal("nb_train_local", nbTrainLocal)
	federation.RegisterLocal("nb_score_local", nbScoreLocal)
	Register(&NaiveBayes{})
	Register(&NaiveBayesCV{})
}

// nbArgs unpacks the shared kwargs.
type nbArgs struct {
	yvar    string
	classes []string
	numeric []string
	nominal []string
	levels  map[string][]string
}

func nbParse(kwargs federation.Kwargs) (*nbArgs, error) {
	a := &nbArgs{}
	a.yvar, _ = kwargs["y"].(string)
	if a.yvar == "" {
		return nil, fmt.Errorf("algorithms: missing y kwarg")
	}
	var err error
	if a.classes, err = kwVarsKey(kwargs, "classes"); err != nil {
		return nil, err
	}
	if raw, ok := kwargs["numeric"]; ok && raw != nil {
		if a.numeric, err = kwVarsKey(kwargs, "numeric"); err != nil {
			return nil, err
		}
	}
	if raw, ok := kwargs["nominal"]; ok && raw != nil {
		if a.nominal, err = kwVarsKey(kwargs, "nominal"); err != nil {
			return nil, err
		}
	}
	if a.levels, err = levelsFromKwargs(kwargs, "levels"); err != nil {
		return nil, err
	}
	return a, nil
}

// nbTrainLocal emits, flattened:
//
//	class_counts: [k]
//	gauss: [k][numeric × 2] (Σx, Σx²) — as matrix rows per class
//	cat:   [k][Σ levels] level counts per nominal var, concatenated
func nbTrainLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	a, err := nbParse(kwargs)
	if err != nil {
		return nil, err
	}
	ys, err := stringCol(data, a.yvar)
	if err != nil {
		return nil, err
	}
	classIdx := map[string]int{}
	for i, c := range a.classes {
		classIdx[c] = i
	}
	k := len(a.classes)

	numCols := make([][]float64, len(a.numeric))
	for i, v := range a.numeric {
		c, err := floatCol(data, v)
		if err != nil {
			return nil, err
		}
		numCols[i] = c
	}
	nomCols := make([][]string, len(a.nominal))
	nomWidth := 0
	for i, v := range a.nominal {
		c, err := stringCol(data, v)
		if err != nil {
			return nil, err
		}
		nomCols[i] = c
		nomWidth += len(a.levels[v])
	}

	counts := make([]float64, k)
	gauss := make([][]float64, k)
	cat := make([][]float64, k)
	for c := 0; c < k; c++ {
		gauss[c] = make([]float64, len(a.numeric)*2)
		cat[c] = make([]float64, nomWidth)
	}
	// Apply fold filtering on raw indices if requested.
	useRow := foldSelector(data, kwargs)

	for r := range ys {
		if !useRow(r) {
			continue
		}
		c, ok := classIdx[ys[r]]
		if !ok {
			continue
		}
		counts[c]++
		for vi := range a.numeric {
			x := numCols[vi][r]
			gauss[c][vi*2] += x
			gauss[c][vi*2+1] += x * x
		}
		off := 0
		for vi, v := range a.nominal {
			lv := a.levels[v]
			for li, l := range lv {
				if nomCols[vi][r] == l {
					cat[c][off+li]++
					break
				}
			}
			off += len(lv)
		}
	}
	return federation.Transfer{"counts": counts, "gauss": gauss, "cat": cat}, nil
}

// foldSelector builds a row predicate from the CV kwargs (always true when
// no fold is requested).
func foldSelector(data *engine.Table, kwargs federation.Kwargs) func(int) bool {
	foldRaw, ok := kwargs["fold"]
	if !ok {
		return func(int) bool { return true }
	}
	fold := int(anyToFloat(foldRaw))
	k := int(anyToFloat(kwargs["num_folds"]))
	if fold < 0 || k <= 1 {
		return func(int) bool { return true }
	}
	mode, _ := kwargs["fold_mode"].(string)
	ids := data.ColByName("row_id")
	if ids == nil {
		return func(int) bool { return true }
	}
	iv := ids.CastFloat64().Float64s()
	return func(r int) bool {
		inFold := foldOf(int64(iv[r]), k) == fold
		if mode == "only" {
			return inFold
		}
		return !inFold
	}
}

// NBModel is the trained model the master assembles (and ships back to the
// workers for CV scoring).
type NBModel struct {
	Classes []string            `json:"classes"`
	Priors  []float64           `json:"priors"`
	Numeric []string            `json:"numeric"`
	Mean    [][]float64         `json:"mean"` // [class][numeric]
	Var     [][]float64         `json:"var"`
	Nominal []string            `json:"nominal"`
	Levels  map[string][]string `json:"levels"`
	CatProb [][]float64         `json:"cat_prob"` // [class][concat levels]
	N       float64             `json:"n"`
	Alpha   float64             `json:"alpha"` // Laplace smoothing
}

// assembleNB turns aggregated sufficient statistics into the model.
func assembleNB(a *nbArgs, counts []float64, gauss, cat [][]float64, alpha float64) (*NBModel, error) {
	k := len(a.classes)
	model := &NBModel{
		Classes: a.classes, Numeric: a.numeric, Nominal: a.nominal,
		Levels: a.levels, Alpha: alpha,
	}
	var total float64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return nil, fmt.Errorf("algorithms: no training rows")
	}
	model.N = total
	for c := 0; c < k; c++ {
		model.Priors = append(model.Priors, (counts[c]+alpha)/(total+alpha*float64(k)))
		means := make([]float64, len(a.numeric))
		vars := make([]float64, len(a.numeric))
		for vi := range a.numeric {
			n := counts[c]
			if n < 2 {
				means[vi], vars[vi] = 0, 1
				continue
			}
			s, s2 := gauss[c][vi*2], gauss[c][vi*2+1]
			means[vi] = s / n
			v := (s2 - s*s/n) / (n - 1)
			if v < 1e-9 {
				v = 1e-9
			}
			vars[vi] = v
		}
		model.Mean = append(model.Mean, means)
		model.Var = append(model.Var, vars)

		probs := make([]float64, len(cat[c]))
		off := 0
		for _, v := range a.nominal {
			lv := a.levels[v]
			var ltot float64
			for li := range lv {
				ltot += cat[c][off+li]
			}
			for li := range lv {
				probs[off+li] = (cat[c][off+li] + alpha) / (ltot + alpha*float64(len(lv)))
			}
			off += len(lv)
		}
		model.CatProb = append(model.CatProb, probs)
	}
	return model, nil
}

// predictNB returns the class index with maximal posterior for one row.
func predictNB(m *NBModel, numVals []float64, nomVals []string) int {
	best, bestLL := 0, math.Inf(-1)
	for c := range m.Classes {
		ll := math.Log(m.Priors[c])
		for vi := range m.Numeric {
			mu, v := m.Mean[c][vi], m.Var[c][vi]
			d := numVals[vi] - mu
			ll += -0.5*math.Log(2*math.Pi*v) - d*d/(2*v)
		}
		off := 0
		for ni, v := range m.Nominal {
			lv := m.Levels[v]
			matched := false
			for li, l := range lv {
				if nomVals[ni] == l {
					ll += math.Log(m.CatProb[c][off+li])
					matched = true
					break
				}
			}
			if !matched {
				ll += math.Log(m.Alpha / (m.Alpha * float64(len(lv)+1)))
			}
			off += len(lv)
		}
		if ll > bestLL {
			best, bestLL = c, ll
		}
	}
	return best
}

// nbScoreLocal classifies the local (fold) slice with the model from
// kwargs and returns the k×k confusion matrix.
func nbScoreLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	a, err := nbParse(kwargs)
	if err != nil {
		return nil, err
	}
	model := &NBModel{
		Classes: a.classes, Numeric: a.numeric, Nominal: a.nominal, Levels: a.levels,
		Alpha: anyToFloatDefault(kwargs["alpha"], 1),
	}
	t := kw(kwargs)
	if model.Priors, err = t.Floats("priors"); err != nil {
		return nil, err
	}
	if model.Mean, err = t.Matrix("mean"); err != nil {
		return nil, err
	}
	if model.Var, err = t.Matrix("var"); err != nil {
		return nil, err
	}
	if model.CatProb, err = t.Matrix("cat_prob"); err != nil {
		return nil, err
	}

	ys, err := stringCol(data, a.yvar)
	if err != nil {
		return nil, err
	}
	classIdx := map[string]int{}
	for i, c := range a.classes {
		classIdx[c] = i
	}
	numCols := make([][]float64, len(a.numeric))
	for i, v := range a.numeric {
		if numCols[i], err = floatCol(data, v); err != nil {
			return nil, err
		}
	}
	nomCols := make([][]string, len(a.nominal))
	for i, v := range a.nominal {
		if nomCols[i], err = stringCol(data, v); err != nil {
			return nil, err
		}
	}
	useRow := foldSelector(data, kwargs)
	k := len(a.classes)
	conf := make([][]float64, k)
	for i := range conf {
		conf[i] = make([]float64, k)
	}
	numVals := make([]float64, len(a.numeric))
	nomVals := make([]string, len(a.nominal))
	for r := range ys {
		if !useRow(r) {
			continue
		}
		truth, ok := classIdx[ys[r]]
		if !ok {
			continue
		}
		for vi := range numCols {
			numVals[vi] = numCols[vi][r]
		}
		for vi := range nomCols {
			nomVals[vi] = nomCols[vi][r]
		}
		pred := predictNB(model, numVals, nomVals)
		conf[truth][pred]++
	}
	return federation.Transfer{"conf": conf}, nil
}

func anyToFloatDefault(v any, def float64) float64 {
	f := anyToFloat(v)
	if f < 0 {
		return def
	}
	return f
}

// NaiveBayes implements naive Bayes training.
type NaiveBayes struct{}

// Spec implements Algorithm.
func (*NaiveBayes) Spec() Spec {
	return Spec{
		Name:  "naive_bayes",
		Label: "Naive Bayes Training",
		Desc:  "Gaussian/categorical naive Bayes trained from one federated round of class-conditional sufficient statistics.",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"nominal"}},
		X:     VarSpec{Min: 1, Types: []string{"real", "integer", "nominal"}},
		Parameters: []ParamSpec{
			{Name: "classes", Label: "Outcome classes", Type: "string"},
			{Name: "levels", Label: "Nominal feature levels", Type: "string"},
			{Name: "alpha", Label: "Laplace smoothing", Type: "real", Default: 1.0},
		},
	}
}

// splitFeatures partitions X into numeric and nominal (by levels map).
func splitFeatures(req Request) (numeric, nominal []string, levels map[string][]string) {
	levels = levelsParam(req)
	for _, v := range req.X {
		if _, ok := levels[v]; ok {
			nominal = append(nominal, v)
		} else {
			numeric = append(numeric, v)
		}
	}
	return numeric, nominal, levels
}

func nbKwargs(req Request, classes []string, numeric, nominal []string, levels map[string][]string) federation.Kwargs {
	return federation.Kwargs{
		"y": req.Y[0], "classes": classes,
		"numeric": numeric, "nominal": nominal, "levels": levels,
	}
}

// trainNB runs one training round (fold < 0 trains on everything).
func trainNB(sess *federation.Session, req Request, fold, numFolds int) (*NBModel, *nbArgs, error) {
	classes := req.ParamStrings("classes")
	if len(classes) < 2 {
		return nil, nil, fmt.Errorf("algorithms: naive_bayes needs parameter classes with >= 2 values")
	}
	numeric, nominal, levels := splitFeatures(req)
	kwargs := nbKwargs(req, classes, numeric, nominal, levels)
	vars := append([]string{req.Y[0]}, req.X...)
	if fold >= 0 {
		kwargs["fold"] = fold
		kwargs["num_folds"] = numFolds
		kwargs["fold_mode"] = "exclude"
		vars = append(vars, "row_id")
	}
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "nb_train_local",
		Vars:   vars,
		Filter: req.Filter,
		Kwargs: kwargs,
	}, "counts", "gauss", "cat")
	if err != nil {
		return nil, nil, err
	}
	counts, _ := agg.Floats("counts")
	gauss, err := agg.Matrix("gauss")
	if err != nil {
		return nil, nil, err
	}
	cat, err := agg.Matrix("cat")
	if err != nil {
		return nil, nil, err
	}
	a := &nbArgs{yvar: req.Y[0], classes: classes, numeric: numeric, nominal: nominal, levels: levels}
	model, err := assembleNB(a, counts, gauss, cat, req.ParamFloat("alpha", 1))
	return model, a, err
}

// Run implements Algorithm.
func (alg *NaiveBayes) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(alg.Spec(), req); err != nil {
		return nil, err
	}
	model, _, err := trainNB(sess, req, -1, 0)
	if err != nil {
		return nil, err
	}
	return Result{"model": model}, nil
}

// NaiveBayesCV is naive Bayes with k-fold cross-validation.
type NaiveBayesCV struct{}

// Spec implements Algorithm.
func (*NaiveBayesCV) Spec() Spec {
	return Spec{
		Name:  "naive_bayes_cv",
		Label: "Naive Bayes with Cross Validation",
		Desc:  "k-fold cross-validated naive Bayes; per-fold confusion matrices, accuracy and macro precision/recall/F1.",
		Y:     VarSpec{Min: 1, Max: 1, Types: []string{"nominal"}},
		X:     VarSpec{Min: 1, Types: []string{"real", "integer", "nominal"}},
		Parameters: []ParamSpec{
			{Name: "classes", Label: "Outcome classes", Type: "string"},
			{Name: "levels", Label: "Nominal feature levels", Type: "string"},
			{Name: "alpha", Label: "Laplace smoothing", Type: "real", Default: 1.0},
			{Name: "num_folds", Label: "Folds", Type: "int", Default: 5},
		},
	}
}

// Run implements Algorithm.
func (alg *NaiveBayesCV) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(alg.Spec(), req); err != nil {
		return nil, err
	}
	k := req.ParamInt("num_folds", 5)
	if k < 2 {
		return nil, fmt.Errorf("algorithms: num_folds must be >= 2")
	}
	classes := req.ParamStrings("classes")
	numeric, nominal, levels := splitFeatures(req)
	vars := append(append([]string{req.Y[0]}, req.X...), "row_id")

	kc := len(classes)
	total := make([][]float64, kc)
	for i := range total {
		total[i] = make([]float64, kc)
	}
	var folds []map[string]any
	var meanAcc float64
	for f := 0; f < k; f++ {
		model, _, err := trainNB(sess, req, f, k)
		if err != nil {
			return nil, fmt.Errorf("fold %d: %w", f, err)
		}
		kwargs := nbKwargs(req, classes, numeric, nominal, levels)
		kwargs["priors"] = model.Priors
		kwargs["mean"] = model.Mean
		kwargs["var"] = model.Var
		kwargs["cat_prob"] = model.CatProb
		kwargs["alpha"] = model.Alpha
		kwargs["fold"] = f
		kwargs["num_folds"] = k
		kwargs["fold_mode"] = "only"
		agg, err := sess.Sum(federation.LocalRunSpec{
			Func:   "nb_score_local",
			Vars:   vars,
			Filter: req.Filter,
			Kwargs: kwargs,
		}, "conf")
		if err != nil {
			return nil, fmt.Errorf("fold %d scoring: %w", f, err)
		}
		conf, err := agg.Matrix("conf")
		if err != nil {
			return nil, err
		}
		var n, correct float64
		for i := 0; i < kc; i++ {
			for j := 0; j < kc; j++ {
				n += conf[i][j]
				total[i][j] += conf[i][j]
				if i == j {
					correct += conf[i][j]
				}
			}
		}
		acc := 0.0
		if n > 0 {
			acc = correct / n
		}
		meanAcc += acc / float64(k)
		folds = append(folds, map[string]any{"fold": f, "n": n, "accuracy": acc, "confusion": conf})
	}

	// Macro metrics over the pooled confusion matrix.
	var macroP, macroR float64
	for c := 0; c < kc; c++ {
		var tp, colSum, rowSum float64
		tp = total[c][c]
		for j := 0; j < kc; j++ {
			colSum += total[j][c]
			rowSum += total[c][j]
		}
		if colSum > 0 {
			macroP += tp / colSum / float64(kc)
		}
		if rowSum > 0 {
			macroR += tp / rowSum / float64(kc)
		}
	}
	macroF1 := 0.0
	if macroP+macroR > 0 {
		macroF1 = 2 * macroP * macroR / (macroP + macroR)
	}
	return Result{
		"folds":           folds,
		"confusion":       total,
		"classes":         classes,
		"mean_accuracy":   meanAcc,
		"macro_precision": macroP,
		"macro_recall":    macroR,
		"macro_f1":        macroF1,
	}, nil
}
