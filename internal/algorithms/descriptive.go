package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
)

// Descriptive statistics: the dashboard table of Figure 3 — per dataset
// and per variable: Datapoints, NA, SE, mean, std, min, Q1, Q2, Q3, max.
//
// Flow (per dataset): one moments round (sum-aggregated), a min and a max
// round, then a histogram round whose bin counts (sum-aggregated) yield the
// quartiles by interpolation. Every transfer is a fixed-shape numeric
// vector, so the whole algorithm runs unchanged over SMPC.

// histBins is the quantile histogram resolution: quartiles are exact to
// (max−min)/histBins.
const histBins = 256

func init() {
	federation.RegisterLocal("desc_moments", descMomentsLocal)
	federation.RegisterLocal("desc_min", descMinLocal)
	federation.RegisterLocal("desc_max", descMaxLocal)
	federation.RegisterLocal("desc_hist", descHistLocal)
	Register(&Descriptive{})
}

// descMomentsLocal returns, per requested variable, the additive moments
// [n, na, sum, sum2] as one flat vector (variables × 4).
func descMomentsLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	vars, err := kwVars(kwargs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, 0, len(vars)*4)
	for _, name := range vars {
		v := data.ColByName(name)
		if v == nil {
			return nil, fmt.Errorf("algorithms: no variable %q", name)
		}
		f := v.CastFloat64()
		var n, na, s, s2 float64
		for i := 0; i < f.Len(); i++ {
			if f.IsNull(i) {
				na++
				continue
			}
			x := f.Float64s()[i]
			n++
			s += x
			s2 += x * x
		}
		out = append(out, n, na, s, s2)
	}
	return federation.Transfer{"moments": out}, nil
}

// descMinLocal returns per-variable minima (or +huge when the worker has
// no values, so the min fold ignores it).
func descMinLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	return descExtreme(data, kwargs, true)
}

// descMaxLocal returns per-variable maxima.
func descMaxLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	return descExtreme(data, kwargs, false)
}

// sentinel bounds keep empty workers neutral in min/max folds while
// staying inside the SMPC fixed-point range.
const extremeSentinel = 1e12

func descExtreme(data *engine.Table, kwargs federation.Kwargs, wantMin bool) (federation.Transfer, error) {
	vars, err := kwVars(kwargs)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(vars))
	for vi, name := range vars {
		v := data.ColByName(name)
		if v == nil {
			return nil, fmt.Errorf("algorithms: no variable %q", name)
		}
		f := v.CastFloat64()
		best := math.Inf(1)
		if !wantMin {
			best = math.Inf(-1)
		}
		for i := 0; i < f.Len(); i++ {
			if f.IsNull(i) {
				continue
			}
			x := f.Float64s()[i]
			if wantMin && x < best || !wantMin && x > best {
				best = x
			}
		}
		if math.IsInf(best, 0) {
			best = extremeSentinel
			if !wantMin {
				best = -extremeSentinel
			}
		}
		out[vi] = best
	}
	key := "mins"
	if !wantMin {
		key = "maxs"
	}
	return federation.Transfer{key: out}, nil
}

// descHistLocal bins each variable into histBins equal-width bins over the
// global [min, max] passed down by the master.
func descHistLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	vars, err := kwVars(kwargs)
	if err != nil {
		return nil, err
	}
	mins, err := kw(kwargs).Floats("mins")
	if err != nil {
		return nil, err
	}
	maxs, err := kw(kwargs).Floats("maxs")
	if err != nil {
		return nil, err
	}
	counts := make([][]float64, len(vars))
	for vi, name := range vars {
		counts[vi] = make([]float64, histBins)
		v := data.ColByName(name)
		if v == nil {
			return nil, fmt.Errorf("algorithms: no variable %q", name)
		}
		f := v.CastFloat64()
		lo, hi := mins[vi], maxs[vi]
		width := hi - lo
		for i := 0; i < f.Len(); i++ {
			if f.IsNull(i) {
				continue
			}
			x := f.Float64s()[i]
			b := 0
			if width > 0 {
				b = int((x - lo) / width * float64(histBins))
				if b < 0 {
					b = 0
				}
				if b >= histBins {
					b = histBins - 1
				}
			}
			counts[vi][b]++
		}
	}
	return federation.Transfer{"hist": counts}, nil
}

func kwVars(kwargs federation.Kwargs) ([]string, error) {
	raw, ok := kwargs["vars"]
	if !ok {
		return nil, fmt.Errorf("algorithms: missing vars kwarg")
	}
	switch v := raw.(type) {
	case []string:
		return v, nil
	case []any:
		out := make([]string, len(v))
		for i, e := range v {
			s, ok := e.(string)
			if !ok {
				return nil, fmt.Errorf("algorithms: vars[%d] is %T", i, e)
			}
			out[i] = s
		}
		return out, nil
	}
	return nil, fmt.Errorf("algorithms: vars kwarg is %T", raw)
}

// VariableSummary is one row of the Figure 3 table.
type VariableSummary struct {
	Variable   string  `json:"variable"`
	Datapoints float64 `json:"datapoints"`
	NA         float64 `json:"na"`
	Mean       float64 `json:"mean"`
	SE         float64 `json:"se"`
	Std        float64 `json:"std"`
	Min        float64 `json:"min"`
	Q1         float64 `json:"q1"`
	Q2         float64 `json:"q2"`
	Q3         float64 `json:"q3"`
	Max        float64 `json:"max"`
}

// Descriptive implements the descriptive-statistics algorithm.
type Descriptive struct{}

// Spec implements Algorithm.
func (*Descriptive) Spec() Spec {
	return Spec{
		Name:  "descriptive_stats",
		Label: "Descriptive Statistics",
		Desc:  "Datapoints, NA, mean, SE, std, min, quartiles and max for the variables of interest, per dataset and overall.",
		Y:     VarSpec{Min: 1, Types: []string{"real", "integer"}, Doc: "variables to describe"},
	}
}

// Run implements Algorithm. The result maps each dataset (plus "all") to a
// list of VariableSummary rows.
func (*Descriptive) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars((&Descriptive{}).Spec(), req); err != nil {
		return nil, err
	}
	perDataset := map[string][]VariableSummary{}
	groups := make([][]string, 0, len(req.Datasets)+1)
	names := make([]string, 0, len(req.Datasets)+1)
	for _, d := range req.Datasets {
		groups = append(groups, []string{d})
		names = append(names, d)
	}
	groups = append(groups, req.Datasets)
	names = append(names, "all")

	for gi, ds := range groups {
		rows, err := describeOnce(sess, req, ds)
		if err != nil {
			return nil, err
		}
		perDataset[names[gi]] = rows
	}
	return Result{"datasets": perDataset, "variables": req.Y}, nil
}

func describeOnce(sess *federation.Session, req Request, datasets []string) ([]VariableSummary, error) {
	filter := datasetFilter(datasets, req.Filter)
	spec := federation.LocalRunSpec{
		Func:   "desc_moments",
		Vars:   req.Y,
		Filter: filter,
		KeepNA: true, // NA counting needs the incomplete rows
		Kwargs: federation.Kwargs{"vars": req.Y},
	}
	moments, err := sess.Sum(spec, "moments")
	if err != nil {
		return nil, err
	}
	m, err := moments.Floats("moments")
	if err != nil {
		return nil, err
	}
	spec.Func = "desc_min"
	minsT, err := sess.Min(spec, "mins")
	if err != nil {
		return nil, err
	}
	spec.Func = "desc_max"
	maxsT, err := sess.Max(spec, "maxs")
	if err != nil {
		return nil, err
	}
	mins, _ := minsT.Floats("mins")
	maxs, _ := maxsT.Floats("maxs")

	histSpec := spec
	histSpec.Func = "desc_hist"
	histSpec.Kwargs = federation.Kwargs{"vars": req.Y, "mins": mins, "maxs": maxs}
	histT, err := sess.Sum(histSpec, "hist")
	if err != nil {
		return nil, err
	}
	hist, err := histT.Matrix("hist")
	if err != nil {
		return nil, err
	}

	out := make([]VariableSummary, len(req.Y))
	for vi, name := range req.Y {
		n, na, s, s2 := m[vi*4], m[vi*4+1], m[vi*4+2], m[vi*4+3]
		row := VariableSummary{Variable: name, Datapoints: n, NA: na}
		if n == 0 {
			row.Mean, row.SE, row.Std = math.NaN(), math.NaN(), math.NaN()
			row.Min, row.Q1, row.Q2, row.Q3, row.Max = math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
			out[vi] = row
			continue
		}
		row.Mean = s / n
		if n > 1 {
			variance := (s2 - s*s/n) / (n - 1)
			if variance < 0 {
				variance = 0
			}
			row.Std = math.Sqrt(variance)
			row.SE = row.Std / math.Sqrt(n)
		} else {
			row.Std, row.SE = math.NaN(), math.NaN()
		}
		row.Min, row.Max = mins[vi], maxs[vi]
		row.Q1 = histQuantile(hist[vi], mins[vi], maxs[vi], 0.25)
		row.Q2 = histQuantile(hist[vi], mins[vi], maxs[vi], 0.50)
		row.Q3 = histQuantile(hist[vi], mins[vi], maxs[vi], 0.75)
		out[vi] = row
	}
	return out, nil
}

// histQuantile interpolates the q-quantile from equal-width bin counts.
func histQuantile(counts []float64, lo, hi, q float64) float64 {
	var total float64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return math.NaN()
	}
	if hi <= lo {
		return lo
	}
	target := q * total
	var cum float64
	width := (hi - lo) / float64(len(counts))
	for b, c := range counts {
		if cum+c >= target && c > 0 {
			frac := (target - cum) / c
			return lo + (float64(b)+frac)*width
		}
		cum += c
	}
	return hi
}

// datasetFilter builds the SQL predicate scoping a step to given datasets
// on top of the request filter.
func datasetFilter(datasets []string, extra string) string {
	var parts []string
	if len(datasets) > 0 {
		in := ""
		for i, d := range datasets {
			if i > 0 {
				in += ", "
			}
			in += "'" + d + "'"
		}
		parts = append(parts, "dataset IN ("+in+")")
	}
	if extra != "" {
		parts = append(parts, "("+extra+")")
	}
	switch len(parts) {
	case 0:
		return ""
	case 1:
		return parts[0]
	}
	return parts[0] + " AND " + parts[1]
}
