package algorithms

import (
	"math"

	"mip/internal/federation"
)

// CART: classification and regression trees grown breadth-first from
// federated histograms (see tree.go). Numeric features split on binned
// thresholds, categorical features on one-vs-rest level tests; Gini
// impurity drives classification splits, SSE reduction drives regression.

func init() {
	Register(&CART{})
}

// CART implements the classification-and-regression-trees algorithm.
type CART struct{}

// Spec implements Algorithm.
func (*CART) Spec() Spec {
	return Spec{
		Name:  "cart",
		Label: "CART",
		Desc:  "Classification and regression trees grown from federated split histograms; rows never leave the workers.",
		Y:     VarSpec{Min: 1, Max: 1, Doc: "nominal for classification, real for regression"},
		X:     VarSpec{Min: 1, Types: []string{"real", "integer", "nominal"}},
		Parameters: []ParamSpec{
			{Name: "classes", Label: "Outcome classes (classification)", Type: "string"},
			{Name: "levels", Label: "Nominal feature levels", Type: "string"},
			{Name: "max_depth", Label: "Maximum depth", Type: "int", Default: 4},
			{Name: "min_split", Label: "Minimum rows to split", Type: "int", Default: 20},
			{Name: "bins", Label: "Numeric histogram bins", Type: "int", Default: 32},
		},
	}
}

// Run implements Algorithm.
func (a *CART) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	classes := req.ParamStrings("classes")
	classification := len(classes) > 0
	maxDepth := req.ParamInt("max_depth", 4)
	minSplit := float64(req.ParamInt("min_split", 20))
	bins := req.ParamInt("bins", 32)
	levels := levelsParam(req)

	features, err := buildTreeFeatures(sess, req, levels, bins)
	if err != nil {
		return nil, err
	}
	tree := &Tree{Features: features, Classes: classes, YVar: req.Y[0]}
	tree.Nodes = append(tree.Nodes, TreeNode{ID: 0})

	vars := append([]string{req.Y[0]}, req.X...)
	frontier := []int{0}
	for len(frontier) > 0 {
		tj, err := treeJSON(tree)
		if err != nil {
			return nil, err
		}
		fr := make([]float64, len(frontier))
		for i, id := range frontier {
			fr[i] = float64(id)
		}
		agg, err := sess.Sum(federation.LocalRunSpec{
			Func:   "tree_hist_local",
			Vars:   vars,
			Filter: req.Filter,
			Kwargs: federation.Kwargs{"tree": tj, "frontier": fr},
		}, "hist", "totals")
		if err != nil {
			return nil, err
		}
		hist, err := agg.Matrix("hist")
		if err != nil {
			return nil, err
		}
		totals, err := agg.Matrix("totals")
		if err != nil {
			return nil, err
		}

		rowsPerNode := 0
		for _, f := range features {
			rowsPerNode += f.Bins()
		}
		var next []int
		for fi, nodeID := range frontier {
			node := &tree.Nodes[nodeID]
			tot := totals[fi]
			setLeafPayload(node, tot, classification)
			if node.Depth >= maxDepth || node.N < minSplit || isPure(tot, classification) {
				node.Leaf = true
				continue
			}
			split := bestSplit(features, hist[fi*rowsPerNode:(fi+1)*rowsPerNode], tot, classification, minSplit)
			if split == nil {
				node.Leaf = true
				continue
			}
			left := TreeNode{ID: len(tree.Nodes), Depth: node.Depth + 1}
			right := TreeNode{ID: len(tree.Nodes) + 1, Depth: node.Depth + 1}
			// append may reallocate the node slice — re-address the node
			// afterwards instead of writing through the stale pointer.
			tree.Nodes = append(tree.Nodes, left, right)
			node = &tree.Nodes[nodeID]
			node.Var = split.feature.Name
			node.Threshold = split.threshold
			node.Level = split.level
			node.Left = left.ID
			node.Right = right.ID
			next = append(next, left.ID, right.ID)
		}
		frontier = next
	}

	// Final evaluation round.
	tj, err := treeJSON(tree)
	if err != nil {
		return nil, err
	}
	result := Result{"tree": tree, "n_nodes": len(tree.Nodes)}
	if classification {
		agg, err := sess.Sum(federation.LocalRunSpec{
			Func: "tree_eval_local", Vars: vars, Filter: req.Filter,
			Kwargs: federation.Kwargs{"tree": tj},
		}, "conf")
		if err != nil {
			return nil, err
		}
		conf, _ := agg.Matrix("conf")
		var n, correct float64
		for i := range conf {
			for j := range conf[i] {
				n += conf[i][j]
				if i == j {
					correct += conf[i][j]
				}
			}
		}
		result["confusion"] = conf
		if n > 0 {
			result["accuracy"] = correct / n
		}
	} else {
		agg, err := sess.Sum(federation.LocalRunSpec{
			Func: "tree_eval_local", Vars: vars, Filter: req.Filter,
			Kwargs: federation.Kwargs{"tree": tj},
		}, "metrics")
		if err != nil {
			return nil, err
		}
		m, _ := agg.Floats("metrics")
		if m[0] > 0 {
			result["mse"] = m[1] / m[0]
			result["mae"] = m[2] / m[0]
		}
	}
	return result, nil
}

// buildTreeFeatures assembles the feature specs: nominal features carry
// their declared levels, numeric ones get equal-width bins over the global
// min/max (one extra federated round).
func buildTreeFeatures(sess *federation.Session, req Request, levels map[string][]string, bins int) ([]TreeFeature, error) {
	var numeric []string
	for _, v := range req.X {
		if _, nominal := levels[v]; !nominal {
			numeric = append(numeric, v)
		}
	}
	var mins, maxs []float64
	if len(numeric) > 0 {
		spec := federation.LocalRunSpec{
			Func:   "desc_min",
			Vars:   numeric,
			Filter: req.Filter,
			Kwargs: federation.Kwargs{"vars": numeric},
		}
		minsT, err := sess.Min(spec, "mins")
		if err != nil {
			return nil, err
		}
		spec.Func = "desc_max"
		maxsT, err := sess.Max(spec, "maxs")
		if err != nil {
			return nil, err
		}
		mins, _ = minsT.Floats("mins")
		maxs, _ = maxsT.Floats("maxs")
	}
	var features []TreeFeature
	ni := 0
	for _, v := range req.X {
		if lv, nominal := levels[v]; nominal {
			features = append(features, TreeFeature{Name: v, Levels: lv})
			continue
		}
		features = append(features, TreeFeature{Name: v, Edges: featureBinEdges(mins[ni], maxs[ni], bins)})
		ni++
	}
	return features, nil
}

func setLeafPayload(node *TreeNode, tot []float64, classification bool) {
	if classification {
		node.ClassDist = append([]float64(nil), tot...)
		node.Prediction = float64(argmaxF(tot))
		var n float64
		for _, c := range tot {
			n += c
		}
		node.N = n
		return
	}
	node.N = tot[0]
	if tot[0] > 0 {
		node.Prediction = tot[1] / tot[0]
	}
}

func isPure(tot []float64, classification bool) bool {
	if classification {
		nonzero := 0
		for _, c := range tot {
			if c > 0 {
				nonzero++
			}
		}
		return nonzero <= 1
	}
	n, s, s2 := tot[0], tot[1], tot[2]
	if n < 2 {
		return true
	}
	return (s2-s*s/n)/n < 1e-12
}

// candidateSplit is the winner of the split search for one node.
type candidateSplit struct {
	feature   TreeFeature
	threshold float64
	level     string
	gain      float64
}

// bestSplit scans all features' histograms for the impurity-optimal binary
// split. hist rows are laid out feature-major then bin.
func bestSplit(features []TreeFeature, hist [][]float64, tot []float64, classification bool, minChild float64) *candidateSplit {
	var parentImp, n float64
	if classification {
		parentImp, n = gini(tot)
	} else {
		n = tot[0]
		if n > 0 {
			parentImp = (tot[2] - tot[1]*tot[1]/n) / n
		}
	}
	if n == 0 {
		return nil
	}
	var best *candidateSplit
	off := 0
	width := len(tot)
	for _, f := range features {
		bins := f.Bins()
		rows := hist[off : off+bins]
		off += bins
		if len(f.Levels) > 0 {
			// One-vs-rest on each level.
			for li, lv := range f.Levels {
				left := rows[li]
				right := subtract(tot, left, width)
				if g, ok := splitGain(parentImp, n, left, right, classification, minChild); ok {
					if best == nil || g > best.gain {
						best = &candidateSplit{feature: f, level: lv, gain: g}
					}
				}
			}
			continue
		}
		// Numeric: prefix-sum sweep across bin boundaries.
		left := make([]float64, width)
		for b := 0; b < bins-1; b++ {
			for w := 0; w < width; w++ {
				left[w] += rows[b][w]
			}
			right := subtract(tot, left, width)
			if g, ok := splitGain(parentImp, n, left, right, classification, minChild); ok {
				if best == nil || g > best.gain {
					best = &candidateSplit{feature: f, threshold: f.Edges[b+1], gain: g}
				}
			}
		}
	}
	if best != nil && best.gain <= 1e-12 {
		return nil
	}
	return best
}

func subtract(tot, left []float64, width int) []float64 {
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		out[i] = tot[i] - left[i]
		if out[i] < 0 {
			out[i] = 0
		}
	}
	return out
}

// splitGain computes the weighted impurity decrease of a binary split;
// ok=false when a child is under the minimum size.
func splitGain(parentImp, n float64, left, right []float64, classification bool, minChild float64) (float64, bool) {
	var nl, nr, il, ir float64
	if classification {
		il, nl = gini(left)
		ir, nr = gini(right)
	} else {
		nl, nr = left[0], right[0]
		if nl > 0 {
			il = (left[2] - left[1]*left[1]/nl) / nl
		}
		if nr > 0 {
			ir = (right[2] - right[1]*right[1]/nr) / nr
		}
	}
	minSide := math.Max(1, minChild/4)
	if nl < minSide || nr < minSide {
		return 0, false
	}
	return parentImp - (nl*il+nr*ir)/n, true
}
