package algorithms

import (
	"fmt"
	"math"
	"testing"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/synth"
)

func TestNaiveBayesTrainsSensibleModel(t *testing.T) {
	m, _ := testFed(t, 3, 250, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"alzheimerbroadcategory"},
		X:        []string{"lefthippocampus", "p_tau", "gender"},
		Parameters: map[string]any{
			"classes": []any{"CN", "MCI", "AD"},
			"levels":  map[string]any{"gender": []any{"F", "M"}},
		},
	}
	res := runAlg(t, m, "naive_bayes", req)
	model := res["model"].(*NBModel)
	if len(model.Priors) != 3 {
		t.Fatalf("priors = %v", model.Priors)
	}
	var psum float64
	for _, p := range model.Priors {
		psum += p
	}
	near(t, psum, 1, 1e-9, "priors sum")
	// Class-conditional hippocampus means must be ordered CN > MCI > AD.
	hippIdx := 0 // first numeric feature
	cn, mci, ad := model.Mean[0][hippIdx], model.Mean[1][hippIdx], model.Mean[2][hippIdx]
	if !(cn > mci && mci > ad) {
		t.Fatalf("class means not ordered: CN=%v MCI=%v AD=%v", cn, mci, ad)
	}
	// Categorical probs normalized per variable.
	for c := 0; c < 3; c++ {
		var s float64
		for _, p := range model.CatProb[c][:2] {
			s += p
		}
		near(t, s, 1, 1e-9, "cat prob sum")
	}
}

func TestNaiveBayesCV(t *testing.T) {
	m, _ := testFed(t, 3, 300, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"alzheimerbroadcategory"},
		X:        []string{"lefthippocampus", "p_tau", "ab42", "minimentalstate"},
		Parameters: map[string]any{
			"classes":   []any{"CN", "MCI", "AD"},
			"num_folds": 3,
		},
	}
	res := runAlg(t, m, "naive_bayes_cv", req)
	acc := res["mean_accuracy"].(float64)
	if acc < 0.5 { // 3-class problem; chance ~0.33
		t.Fatalf("CV accuracy = %v, want clearly above chance", acc)
	}
	conf := res["confusion"].([][]float64)
	if len(conf) != 3 {
		t.Fatalf("confusion shape %d", len(conf))
	}
	if f1 := res["macro_f1"].(float64); f1 <= 0 || f1 > 1 {
		t.Fatalf("macro F1 = %v", f1)
	}
	folds := res["folds"].([]map[string]any)
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
}

func TestCARTClassification(t *testing.T) {
	m, _ := testFed(t, 3, 300, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"alzheimerbroadcategory"},
		X:        []string{"lefthippocampus", "p_tau", "gender"},
		Parameters: map[string]any{
			"classes":   []any{"CN", "MCI", "AD"},
			"levels":    map[string]any{"gender": []any{"F", "M"}},
			"max_depth": 3,
		},
	}
	res := runAlg(t, m, "cart", req)
	tree := res["tree"].(*Tree)
	if len(tree.Nodes) < 3 {
		t.Fatalf("tree did not grow: %d nodes", len(tree.Nodes))
	}
	acc := res["accuracy"].(float64)
	if acc < 0.5 {
		t.Fatalf("training accuracy = %v", acc)
	}
	// Depth bound respected.
	for _, n := range tree.Nodes {
		if n.Depth > 3 {
			t.Fatalf("node %d exceeds max depth: %d", n.ID, n.Depth)
		}
		if !n.Leaf && n.Var == "" && (n.Left != 0 || n.Right != 0) {
			t.Fatalf("internal node %d without split var", n.ID)
		}
	}
}

func TestCARTRegression(t *testing.T) {
	m, pooled := testFed(t, 3, 300, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"minimentalstate"},
		X:        []string{"lefthippocampus", "p_tau"},
		Parameters: map[string]any{
			"max_depth": 3,
		},
	}
	res := runAlg(t, m, "cart", req)
	mse := res["mse"].(float64)
	// The tree must beat the trivial predictor (global variance).
	ys := pooledColumns(t, pooled, []string{"minimentalstate", "lefthippocampus", "p_tau"}, "")[0]
	var mean, varY float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(len(ys))
	for _, y := range ys {
		varY += (y - mean) * (y - mean)
	}
	varY /= float64(len(ys))
	if mse >= varY {
		t.Fatalf("tree MSE %v not better than variance %v", mse, varY)
	}
}

func TestID3(t *testing.T) {
	m, _ := testFed(t, 3, 300, false)
	req := Request{
		Datasets: []string{"edsd"},
		Y:        []string{"alzheimerbroadcategory"},
		X:        []string{"gender", "psy", "va"},
		Parameters: map[string]any{
			"classes": []any{"CN", "MCI", "AD"},
			"levels": map[string]any{
				"gender": []any{"F", "M"},
				"psy":    []any{"yes", "no"},
				"va":     []any{"yes", "no"},
			},
			"max_depth": 3,
		},
	}
	res := runAlg(t, m, "id3", req)
	tree := res["tree"].(*Tree)
	acc := res["accuracy"].(float64)
	if acc <= 0.2 || acc > 1 {
		t.Fatalf("accuracy = %v", acc)
	}
	// Multiway nodes must have one child per level.
	for _, n := range tree.Nodes {
		if len(n.Children) > 0 {
			found := false
			for _, f := range tree.Features {
				if f.Name == n.Var && len(n.Children) == len(f.Levels) {
					found = true
				}
			}
			if !found {
				t.Fatalf("node %d children mismatch", n.ID)
			}
		}
	}
	// Features must not repeat along a path.
	var walk func(id int, seen map[string]bool)
	walk = func(id int, seen map[string]bool) {
		n := tree.Nodes[id]
		if n.Var == "" {
			return
		}
		if seen[n.Var] {
			t.Fatalf("feature %q repeated along a path", n.Var)
		}
		s2 := map[string]bool{n.Var: true}
		for k := range seen {
			s2[k] = true
		}
		for _, c := range n.Children {
			walk(c, s2)
		}
	}
	walk(0, map[string]bool{})
	if res["n_nodes"].(int) < 3 {
		t.Fatal("ID3 tree did not grow")
	}
}

// survivalFed builds a 2-site federation of survival cohorts plus pooled.
func survivalFed(t *testing.T, secure bool) (*federation.Master, *engine.DB) {
	t.Helper()
	pooledDB := engine.NewDB()
	pooled := engine.NewTable(synth.SurvivalSchema)
	pooledDB.RegisterTable(federation.DataTable, pooled)
	var clients []federation.WorkerClient
	for i := 0; i < 2; i++ {
		tab, err := synth.Survival(synth.SurvivalSpec{
			Dataset: fmt.Sprintf("epi-site-%c", 'a'+i), Rows: 400, Seed: int64(50 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < tab.NumRows(); r++ {
			if err := pooled.AppendRow(tab.Row(r)...); err != nil {
				t.Fatal(err)
			}
		}
		db := engine.NewDB()
		db.RegisterTable(federation.DataTable, tab)
		clients = append(clients, federation.NewWorker(fmt.Sprintf("site%d", i), db))
	}
	m, err := federation.NewMaster(clients, nil, federation.Security{})
	if err != nil {
		t.Fatal(err)
	}
	return m, pooledDB
}

func TestKaplanMeier(t *testing.T) {
	m, pooled := survivalFed(t, false)
	req := Request{
		Y:          []string{"time", "event"},
		X:          []string{"grp"},
		Parameters: map[string]any{"groups": []any{"control", "treated"}},
	}
	res := runAlg(t, m, "kaplan_meier", req)
	curves := res["curves"].([]KMCurve)
	if len(curves) != 2 {
		t.Fatalf("curves = %d", len(curves))
	}
	for _, c := range curves {
		// Survival must be non-increasing in [0, 1].
		prev := 1.0
		for _, p := range c.Points {
			if p.Survival > prev+1e-12 || p.Survival < 0 || p.Survival > 1 {
				t.Fatalf("curve %s not monotone: %v after %v", c.Group, p.Survival, prev)
			}
			if p.CILow > p.Survival+1e-12 || p.CIHigh < p.Survival-1e-12 {
				t.Fatalf("CI does not bracket survival at t=%v", p.Time)
			}
			prev = p.Survival
		}
	}
	// Treated group (lower hazard) must sit above control at the median time.
	ctrl, treat := curves[0], curves[1]
	if ctrl.Group != "control" {
		ctrl, treat = treat, ctrl
	}
	mid := len(ctrl.Points) / 2
	if treat.Points[mid].Survival <= ctrl.Points[mid].Survival {
		t.Fatalf("treated survival %v should exceed control %v",
			treat.Points[mid].Survival, ctrl.Points[mid].Survival)
	}
	// Log-rank must detect the hazard difference.
	p := res["logrank_p"].(float64)
	if p > 0.01 {
		t.Fatalf("log-rank p = %v, want < 0.01", p)
	}
	// n totals match pooled counts.
	tab, _ := pooled.Query(`SELECT count(*) AS n FROM data WHERE grp = 'control'`)
	if ctrl.N != float64(tab.Col(0).Int64s()[0]) {
		t.Fatalf("control n = %v", ctrl.N)
	}
}

func TestKaplanMeierSingleGroup(t *testing.T) {
	m, _ := survivalFed(t, false)
	res := runAlg(t, m, "kaplan_meier", Request{Y: []string{"time", "event"}})
	curves := res["curves"].([]KMCurve)
	if len(curves) != 1 || curves[0].Group != "all" {
		t.Fatalf("curves = %+v", curves)
	}
	if _, hasLR := res["logrank_p"]; hasLR {
		t.Fatal("single group must not produce a log-rank test")
	}
}

// calibrationFed builds workers holding predicted probabilities with a
// known miscalibration and binary outcomes.
func calibrationFed(t *testing.T, miscalibrated bool) *federation.Master {
	t.Helper()
	schema := engine.Schema{
		{Name: "row_id", Type: engine.Int64},
		{Name: "dataset", Type: engine.String},
		{Name: "pred", Type: engine.Float64},
		{Name: "outcome", Type: engine.String},
	}
	var clients []federation.WorkerClient
	rng := newTestRNG()
	for w := 0; w < 3; w++ {
		tab := engine.NewTable(schema)
		for i := 0; i < 400; i++ {
			p := 0.05 + 0.9*rng.Float64()
			trueP := p
			if miscalibrated {
				// The model systematically underestimates risk.
				trueP = math.Min(1, p*1.4)
			}
			out := "no"
			if rng.Float64() < trueP {
				out = "yes"
			}
			if err := tab.AppendRow(int64(w*1000+i), "d", p, out); err != nil {
				t.Fatal(err)
			}
		}
		db := engine.NewDB()
		db.RegisterTable(federation.DataTable, tab)
		clients = append(clients, federation.NewWorker(fmt.Sprintf("c%d", w), db))
	}
	m, err := federation.NewMaster(clients, nil, federation.Security{})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

type simpleRNG struct{ state uint64 }

func newTestRNG() *simpleRNG { return &simpleRNG{state: 0x853c49e6748fea9b} }

func (r *simpleRNG) Float64() float64 {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return float64(r.state>>11) / float64(1<<53)
}

func TestCalibrationBeltWellCalibrated(t *testing.T) {
	m := calibrationFed(t, false)
	req := Request{
		Y:          []string{"outcome"},
		X:          []string{"pred"},
		Parameters: map[string]any{"pos_level": "yes"},
	}
	res := runAlg(t, m, "calibration_belt", req)
	cb := res["calibration_belt"].(CalBeltResult)
	if cb.PValue < 0.01 {
		t.Fatalf("well-calibrated data rejected: p = %v", cb.PValue)
	}
	if len(cb.Belt) != 100 {
		t.Fatalf("belt points = %d", len(cb.Belt))
	}
	for _, bp := range cb.Belt {
		if bp.Low95 > bp.Low80 || bp.High95 < bp.High80 {
			t.Fatalf("95%% belt must contain 80%% belt at p=%v", bp.P)
		}
		if bp.Fitted < bp.Low80 || bp.Fitted > bp.High80 {
			t.Fatalf("fitted curve outside its own belt at p=%v", bp.P)
		}
	}
}

func TestCalibrationBeltDetectsMiscalibration(t *testing.T) {
	m := calibrationFed(t, true)
	req := Request{
		Y:          []string{"outcome"},
		X:          []string{"pred"},
		Parameters: map[string]any{"pos_level": "yes"},
	}
	res := runAlg(t, m, "calibration_belt", req)
	cb := res["calibration_belt"].(CalBeltResult)
	if cb.PValue > 0.05 {
		t.Fatalf("miscalibration not detected: p = %v", cb.PValue)
	}
	if cb.UnderOver != "underestimates risk" && cb.UnderOver != "mixed miscalibration" {
		t.Fatalf("verdict = %q", cb.UnderOver)
	}
}

func TestAlgorithmRegistryComplete(t *testing.T) {
	// The paper lists 15+ integrated algorithms; every one must be here.
	want := []string{
		"anova_oneway", "anova_twoway", "calibration_belt", "cart",
		"descriptive_stats", "id3", "kaplan_meier", "kmeans",
		"linear_regression", "linear_regression_cv",
		"logistic_regression", "logistic_regression_cv",
		"naive_bayes", "naive_bayes_cv", "pca",
		"pearson_correlation", "ttest_independent", "ttest_onesample", "ttest_paired",
	}
	names := Names()
	got := map[string]bool{}
	for _, n := range names {
		got[n] = true
	}
	for _, w := range want {
		if !got[w] {
			t.Errorf("missing algorithm %q", w)
		}
	}
	if len(names) < 15 {
		t.Fatalf("only %d algorithms registered", len(names))
	}
	specs := Specs()
	if len(specs) != len(names) {
		t.Fatal("Specs/Names mismatch")
	}
	for _, s := range specs {
		if s.Label == "" || s.Desc == "" {
			t.Errorf("algorithm %q lacks label/description", s.Name)
		}
	}
}
