package algorithms

import (
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
)

// Pearson correlation: for every (Y, X) pair, aggregate the co-moments
// [n, Σx, Σy, Σx², Σy², Σxy] and derive r, the t statistic, the p-value and
// a Fisher-z confidence interval.

func init() {
	federation.RegisterLocal("pearson_local", pearsonLocal)
	Register(&PearsonCorrelation{})
}

func pearsonLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	ys, err := kwVarsKey(kwargs, "y")
	if err != nil {
		return nil, err
	}
	xs, err := kwVarsKey(kwargs, "x")
	if err != nil {
		return nil, err
	}
	cols := map[string][]float64{}
	for _, v := range append(append([]string{}, ys...), xs...) {
		if _, ok := cols[v]; ok {
			continue
		}
		c, err := floatCol(data, v)
		if err != nil {
			return nil, err
		}
		cols[v] = c
	}
	out := make([][]float64, 0, len(ys)*len(xs))
	for _, yv := range ys {
		for _, xv := range xs {
			a, b := cols[xv], cols[yv]
			var n, sx, sy, sxx, syy, sxy float64
			for i := range a {
				n++
				sx += a[i]
				sy += b[i]
				sxx += a[i] * a[i]
				syy += b[i] * b[i]
				sxy += a[i] * b[i]
			}
			out = append(out, []float64{n, sx, sy, sxx, syy, sxy})
		}
	}
	return federation.Transfer{"pairs": out}, nil
}

// Correlation is one (y, x) pair's result.
type Correlation struct {
	Y      string  `json:"y"`
	X      string  `json:"x"`
	R      float64 `json:"r"`
	N      float64 `json:"n"`
	T      float64 `json:"t"`
	PValue float64 `json:"p_value"`
	CILow  float64 `json:"ci_low"`
	CIHigh float64 `json:"ci_high"`
}

// PearsonCorrelation implements the Pearson correlation algorithm.
type PearsonCorrelation struct{}

// Spec implements Algorithm.
func (*PearsonCorrelation) Spec() Spec {
	return Spec{
		Name:  "pearson_correlation",
		Label: "Pearson Correlation",
		Desc:  "Pairwise Pearson correlation of Y against X variables, with t test and Fisher-z confidence intervals.",
		Y:     VarSpec{Min: 1, Types: []string{"real", "integer"}},
		X:     VarSpec{Min: 1, Types: []string{"real", "integer"}},
		Parameters: []ParamSpec{
			{Name: "alpha", Label: "CI significance", Type: "real", Default: 0.05},
		},
	}
}

// Run implements Algorithm.
func (a *PearsonCorrelation) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	vars := append(append([]string{}, req.Y...), req.X...)
	agg, err := sess.Sum(federation.LocalRunSpec{
		Func:   "pearson_local",
		Vars:   dedupe(vars),
		Filter: req.Filter,
		Kwargs: federation.Kwargs{"y": req.Y, "x": req.X},
	}, "pairs")
	if err != nil {
		return nil, err
	}
	pairs, err := agg.Matrix("pairs")
	if err != nil {
		return nil, err
	}
	alpha := req.ParamFloat("alpha", 0.05)
	zcrit := stats.NormalQuantile(1 - alpha/2)
	var out []Correlation
	idx := 0
	for _, yv := range req.Y {
		for _, xv := range req.X {
			m := pairs[idx]
			idx++
			n, sx, sy, sxx, syy, sxy := m[0], m[1], m[2], m[3], m[4], m[5]
			c := Correlation{Y: yv, X: xv, N: n}
			if n < 3 {
				c.R, c.T, c.PValue = math.NaN(), math.NaN(), math.NaN()
				out = append(out, c)
				continue
			}
			cov := sxy - sx*sy/n
			vx := sxx - sx*sx/n
			vy := syy - sy*sy/n
			if vx <= 0 || vy <= 0 {
				c.R = math.NaN()
				out = append(out, c)
				continue
			}
			c.R = cov / math.Sqrt(vx*vy)
			df := n - 2
			if c.R*c.R < 1 {
				c.T = c.R * math.Sqrt(df/(1-c.R*c.R))
				c.PValue = 2 * (1 - stats.StudentTCDF(math.Abs(c.T), df))
			} else {
				c.T = math.Inf(int(math.Copysign(1, c.R)))
				c.PValue = 0
			}
			// Fisher z interval.
			z := 0.5 * math.Log((1+c.R)/(1-c.R))
			se := 1 / math.Sqrt(n-3)
			lo, hi := z-zcrit*se, z+zcrit*se
			c.CILow = math.Tanh(lo)
			c.CIHigh = math.Tanh(hi)
			out = append(out, c)
		}
	}
	return Result{"correlations": out}, nil
}

func dedupe(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}
