package algorithms

import (
	"fmt"
	"math"

	"mip/internal/engine"
	"mip/internal/federation"
	"mip/internal/stats"
)

// Federated k-means (one of the two algorithms the paper's Alzheimer's use
// case runs): Lloyd iterations where each worker assigns its rows to the
// nearest centroid and ships back per-cluster counts, coordinate sums and
// the within-cluster sum of squares; the master recomputes centroids until
// the shift drops under e or iterations_max_number is hit (the dashboard's
// parameters in Figure 4).

func init() {
	federation.RegisterLocal("kmeans_assign", kmeansAssignLocal)
	Register(&KMeans{})
}

func kmeansAssignLocal(wctx *federation.WorkerCtx, data *engine.Table, kwargs federation.Kwargs) (federation.Transfer, error) {
	vars, err := kwVars(kwargs)
	if err != nil {
		return nil, err
	}
	centroids, err := kw(kwargs).Matrix("centroids")
	if err != nil {
		return nil, err
	}
	k := len(centroids)
	p := len(vars)
	cols := make([][]float64, p)
	for i, v := range vars {
		c, err := floatCol(data, v)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	n := 0
	if p > 0 {
		n = len(cols[0])
	}
	counts := make([]float64, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, p)
	}
	var wss float64
	for r := 0; r < n; r++ {
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			var d float64
			for j := 0; j < p; j++ {
				diff := cols[j][r] - centroids[c][j]
				d += diff * diff
			}
			if d < bestD {
				best, bestD = c, d
			}
		}
		counts[best]++
		for j := 0; j < p; j++ {
			sums[best][j] += cols[j][r]
		}
		wss += bestD
	}
	return federation.Transfer{"counts": counts, "sums": sums, "wss": wss}, nil
}

// KMeansResult is the clustering output.
type KMeansResult struct {
	Centroids  [][]float64 `json:"centroids"`
	Sizes      []float64   `json:"sizes"`
	WSS        float64     `json:"wss"`
	Iterations int         `json:"iterations"`
	Converged  bool        `json:"converged"`
	Variables  []string    `json:"variables"`
}

// KMeans implements federated k-means clustering.
type KMeans struct{}

// Spec implements Algorithm.
func (*KMeans) Spec() Spec {
	return Spec{
		Name:  "kmeans",
		Label: "k-Means Clustering",
		Desc:  "Federated Lloyd iterations over real/integer variables; matches the dashboard's k, e and iterations_max_number parameters.",
		Y:     VarSpec{Min: 1, Types: []string{"real", "integer"}, Doc: "clustering variables"},
		Parameters: []ParamSpec{
			{Name: "k", Label: "Number of centers", Type: "int", Default: 3, Min: 1, Max: 100},
			{Name: "e", Label: "Convergence tolerance", Type: "real", Default: 0.01, Min: 0},
			{Name: "iterations_max_number", Label: "Max iterations", Type: "int", Default: 1000, Min: 1},
			{Name: "standardize", Label: "Standardize variables", Type: "enum", Enum: []string{"true", "false"}, Default: "true"},
		},
	}
}

// Run implements Algorithm.
func (a *KMeans) Run(sess *federation.Session, req Request) (Result, error) {
	if err := requireVars(a.Spec(), req); err != nil {
		return nil, err
	}
	k := req.ParamInt("k", 3)
	if k < 1 {
		return nil, fmt.Errorf("algorithms: k must be >= 1")
	}
	tol := req.ParamFloat("e", 0.01)
	maxIter := req.ParamInt("iterations_max_number", 1000)
	p := len(req.Y)

	// Bootstrap round: global moments (for standardization) and min/max
	// (for centroid seeding) via the descriptive local steps.
	spec := federation.LocalRunSpec{
		Func:   "desc_moments",
		Vars:   req.Y,
		Filter: req.Filter,
		Kwargs: federation.Kwargs{"vars": req.Y},
	}
	mom, err := sess.Sum(spec, "moments")
	if err != nil {
		return nil, err
	}
	m, _ := mom.Floats("moments")
	spec.Func = "desc_min"
	minsT, err := sess.Min(spec, "mins")
	if err != nil {
		return nil, err
	}
	spec.Func = "desc_max"
	maxsT, err := sess.Max(spec, "maxs")
	if err != nil {
		return nil, err
	}
	mins, _ := minsT.Floats("mins")
	maxs, _ := maxsT.Floats("maxs")

	var totalN float64
	means := make([]float64, p)
	sds := make([]float64, p)
	for j := 0; j < p; j++ {
		n, s, s2 := m[j*4], m[j*4+2], m[j*4+3]
		totalN = n
		if n < float64(k) {
			return nil, fmt.Errorf("algorithms: %v observations cannot support k=%d", n, k)
		}
		means[j] = s / n
		v := (s2 - s*s/n) / (n - 1)
		if v <= 0 {
			v = 1
		}
		sds[j] = math.Sqrt(v)
	}

	// Deterministic seeding: spread the k centroids along the diagonal of
	// the global bounding box, jittered per dimension by a seeded RNG so
	// ties break.
	rng := stats.NewRNG(int64(req.ParamInt("seed", 42)))
	centroids := make([][]float64, k)
	for c := 0; c < k; c++ {
		centroids[c] = make([]float64, p)
		frac := (float64(c) + 0.5) / float64(k)
		for j := 0; j < p; j++ {
			span := maxs[j] - mins[j]
			centroids[c][j] = mins[j] + frac*span + rng.Normal(0, 0.02*span+1e-12)
		}
	}

	res := KMeansResult{Variables: req.Y}
	for iter := 1; iter <= maxIter; iter++ {
		agg, err := sess.Sum(federation.LocalRunSpec{
			Func:   "kmeans_assign",
			Vars:   req.Y,
			Filter: req.Filter,
			Kwargs: federation.Kwargs{"vars": req.Y, "centroids": centroids},
		}, "counts", "sums", "wss")
		if err != nil {
			return nil, err
		}
		counts, _ := agg.Floats("counts")
		sums, err := agg.Matrix("sums")
		if err != nil {
			return nil, err
		}
		wss, _ := agg.Float("wss")

		var shift float64
		next := make([][]float64, k)
		for c := 0; c < k; c++ {
			next[c] = make([]float64, p)
			if counts[c] == 0 {
				// Re-seed an empty cluster at a jittered global mean.
				for j := 0; j < p; j++ {
					next[c][j] = means[j] + rng.Normal(0, sds[j])
				}
			} else {
				for j := 0; j < p; j++ {
					next[c][j] = sums[c][j] / counts[c]
				}
			}
			for j := 0; j < p; j++ {
				d := next[c][j] - centroids[c][j]
				shift += d * d
			}
		}
		centroids = next
		res.Sizes = counts
		res.WSS = wss
		res.Iterations = iter
		if math.Sqrt(shift) < tol {
			res.Converged = true
			break
		}
	}
	res.Centroids = centroids
	_ = totalN
	return Result{"kmeans": res}, nil
}
