package etl

import (
	"strings"
	"testing"

	"mip/internal/catalogue"
	"mip/internal/engine"
)

// A hospital export with local column names, liters instead of ml, and
// local diagnosis codes.
const hospitalCSV = `patient_age,sex,dx,hippo_l_liters,mmse_total
71,female,alzheimer,0.0031,24
65,male,control,0.0033,29
80,female,alzheimer,0.0024,15
77,male,mci,0.0028,
69,female,unknown_code,0.0030,28
`

func hospitalMapping() Mapping {
	return Mapping{
		Dataset: "siteX",
		Rules: []Rule{
			{Source: "patient_age", Target: "subjectageyears"},
			{Source: "sex", Target: "gender", Recode: map[string]string{"female": "F", "male": "M"}},
			{Source: "dx", Target: "alzheimerbroadcategory", Recode: map[string]string{"alzheimer": "AD", "mci": "MCI", "control": "CN"}},
			{Source: "hippo_l_liters", Target: "lefthippocampus", Scale: 1000}, // l → ml
			{Source: "mmse_total", Target: "minimentalstate"},
		},
	}
}

func loadHospital(t *testing.T) (*engine.Table, *QualityReport) {
	t.Helper()
	schema, err := engine.InferSchema(strings.NewReader(hospitalCSV), 0)
	if err != nil {
		t.Fatal(err)
	}
	src, err := engine.LoadCSV(strings.NewReader(hospitalCSV), schema)
	if err != nil {
		t.Fatal(err)
	}
	out, report, err := Load(src, hospitalMapping(), catalogue.Dementia())
	if err != nil {
		t.Fatal(err)
	}
	return out, report
}

func TestLoadHarmonizes(t *testing.T) {
	out, report := loadHospital(t)
	if report.RowsIn != 5 || report.RowsOut != 5 {
		t.Fatalf("report %+v", report)
	}
	// Unit conversion: 0.0031 l → 3.1 ml.
	lh := out.ColByName("lefthippocampus").Float64s()
	if lh[0] != 3.1 {
		t.Fatalf("lefthippocampus = %v", lh[0])
	}
	// Recode applied.
	g, _ := out.StringColumn("gender")
	if g[0] != "F" || g[1] != "M" {
		t.Fatalf("gender = %v", g)
	}
	dx, _ := out.StringColumn("alzheimerbroadcategory")
	if dx[0] != "AD" || dx[1] != "CN" {
		t.Fatalf("dx = %v", dx)
	}
	// Unknown category nulled and reported.
	if !out.ColByName("alzheimerbroadcategory").IsNull(4) {
		t.Fatal("unmapped category should be NULL")
	}
	if report.RecodeMisses["alzheimerbroadcategory"] != 1 {
		t.Fatalf("recode misses = %v", report.RecodeMisses)
	}
	// Missing cell carried through and counted.
	if !out.ColByName("minimentalstate").IsNull(3) {
		t.Fatal("missing MMSE should be NULL")
	}
	if report.NullCells["minimentalstate"] != 1 {
		t.Fatalf("null cells = %v", report.NullCells)
	}
	// Dataset stamped; row ids sequential.
	ds, _ := out.StringColumn("dataset")
	if ds[0] != "siteX" {
		t.Fatal("dataset not stamped")
	}
	ids := out.ColByName("row_id").Int64s()
	if ids[4] != 4 {
		t.Fatalf("row ids = %v", ids)
	}
}

func TestRangeViolationNulled(t *testing.T) {
	csv := "age,mmse\n70,35\n71,20\n"
	schema, _ := engine.InferSchema(strings.NewReader(csv), 0)
	src, _ := engine.LoadCSV(strings.NewReader(csv), schema)
	m := Mapping{Dataset: "d", Rules: []Rule{
		{Source: "age", Target: "subjectageyears"},
		{Source: "mmse", Target: "minimentalstate"},
	}}
	out, report, err := Load(src, m, catalogue.Dementia())
	if err != nil {
		t.Fatal(err)
	}
	if !out.ColByName("minimentalstate").IsNull(0) {
		t.Fatal("MMSE=35 exceeds max 30 and must be NULL")
	}
	if report.RangeErrors["minimentalstate"] != 1 {
		t.Fatalf("range errors = %v", report.RangeErrors)
	}
}

func TestRequiredDropsRows(t *testing.T) {
	csv := "age,dx\n70,AD\n71,\n"
	schema, _ := engine.InferSchema(strings.NewReader(csv), 0)
	src, _ := engine.LoadCSV(strings.NewReader(csv), schema)
	m := Mapping{Dataset: "d", Rules: []Rule{
		{Source: "age", Target: "subjectageyears"},
		{Source: "dx", Target: "alzheimerbroadcategory", Required: true},
	}}
	out, report, err := Load(src, m, catalogue.Dementia())
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 1 || report.RowsDropped != 1 {
		t.Fatalf("rows=%d dropped=%d", out.NumRows(), report.RowsDropped)
	}
}

func TestUnknownSourceReported(t *testing.T) {
	csv := "a\n1\n"
	schema, _ := engine.InferSchema(strings.NewReader(csv), 0)
	src, _ := engine.LoadCSV(strings.NewReader(csv), schema)
	m := Mapping{Dataset: "d", Rules: []Rule{{Source: "missing_col"}}}
	_, report, err := Load(src, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.UnknownSource) != 1 || report.UnknownSource[0] != "missing_col" {
		t.Fatalf("unknown sources = %v", report.UnknownSource)
	}
}

func TestMappingRequiresDataset(t *testing.T) {
	src := engine.NewTable(engine.Schema{{Name: "a", Type: engine.Float64}})
	if _, _, err := Load(src, Mapping{}, nil); err == nil {
		t.Fatal("missing dataset must fail")
	}
}

func TestLoadCSVIntoDB(t *testing.T) {
	db := engine.NewDB()
	report, err := LoadCSV(strings.NewReader(hospitalCSV), hospitalMapping(), catalogue.Dementia(), db, "data")
	if err != nil {
		t.Fatal(err)
	}
	if report.RowsOut != 5 {
		t.Fatalf("rows out = %d", report.RowsOut)
	}
	res, err := db.Query("SELECT count(*) AS n FROM data")
	if err != nil {
		t.Fatal(err)
	}
	if res.Col(0).Int64s()[0] != 5 {
		t.Fatal("load into DB failed")
	}
	// Second load appends.
	if _, err := LoadCSV(strings.NewReader(hospitalCSV), hospitalMapping(), catalogue.Dementia(), db, "data"); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query("SELECT count(*) AS n FROM data")
	if res.Col(0).Int64s()[0] != 10 {
		t.Fatal("append load failed")
	}
}

func TestIdentityMapping(t *testing.T) {
	m := IdentityMapping("d", []string{"a", "b"})
	if len(m.Rules) != 2 || m.Rules[0].Source != "a" || m.Dataset != "d" {
		t.Fatalf("identity mapping = %+v", m)
	}
}
