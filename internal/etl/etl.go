// Package etl implements the ingestion pipeline that uploads hospital
// source data into the worker's data engine: the paper notes "the source
// data in each hospital may be stored in a different form (e.g., csv
// files) or system and MIP provides the required ETL processes to upload
// it to MonetDB". The pipeline maps heterogeneous source columns onto the
// harmonized CDE schema: renames, unit rescaling, categorical recoding,
// range checks, and a data-quality report.
package etl

import (
	"fmt"
	"io"
	"math"
	"strings"

	"mip/internal/catalogue"
	"mip/internal/engine"
)

// Rule transforms one source column into one CDE variable.
type Rule struct {
	// Source is the column name in the hospital file.
	Source string
	// Target is the CDE code it maps to (defaults to Source).
	Target string
	// Scale multiplies numeric values (unit conversion; 0 = 1).
	Scale float64
	// Offset is added after scaling.
	Offset float64
	// Recode maps source category strings to CDE enumerations.
	Recode map[string]string
	// Required marks the variable as mandatory: rows with NULL are dropped.
	Required bool
}

// Mapping is a full source→CDE specification.
type Mapping struct {
	Rules []Rule
	// Dataset stamps every row's dataset column.
	Dataset string
}

// QualityReport summarizes what the load did — shown to the data manager
// before the dataset goes live.
type QualityReport struct {
	RowsIn        int
	RowsOut       int
	RowsDropped   int            // missing required values
	NullCells     map[string]int // per target column
	RangeErrors   map[string]int // values outside CDE min/max (nulled)
	RecodeMisses  map[string]int // unmapped categories (nulled)
	UnknownSource []string       // mapped sources absent from the input
}

// Load applies the mapping to a source table and produces a table in CDE
// layout: row_id, dataset, then one column per rule target. CDE metadata
// (from the pathology) drives type selection and range validation.
func Load(src *engine.Table, m Mapping, path *catalogue.Pathology) (*engine.Table, *QualityReport, error) {
	if m.Dataset == "" {
		return nil, nil, fmt.Errorf("etl: mapping needs a dataset code")
	}
	report := &QualityReport{
		RowsIn:       src.NumRows(),
		NullCells:    map[string]int{},
		RangeErrors:  map[string]int{},
		RecodeMisses: map[string]int{},
	}

	type colPlan struct {
		rule   Rule
		srcIdx int
		cde    *catalogue.Variable
		typ    engine.Type
	}
	var plans []colPlan
	schema := engine.Schema{
		{Name: "row_id", Type: engine.Int64},
		{Name: "dataset", Type: engine.String},
	}
	for _, r := range m.Rules {
		if r.Target == "" {
			r.Target = r.Source
		}
		if r.Scale == 0 {
			r.Scale = 1
		}
		idx := src.Schema().ColIndex(r.Source)
		if idx < 0 {
			report.UnknownSource = append(report.UnknownSource, r.Source)
			continue
		}
		var cde *catalogue.Variable
		typ := engine.Float64
		if path != nil {
			cde = path.Variable(r.Target)
		}
		if cde != nil {
			switch cde.Type {
			case catalogue.Nominal, catalogue.Text:
				typ = engine.String
			case catalogue.Integer:
				typ = engine.Int64
			}
		} else if src.Schema()[idx].Type == engine.String && r.Recode == nil {
			typ = engine.String
		}
		plans = append(plans, colPlan{rule: r, srcIdx: idx, cde: cde, typ: typ})
		schema = append(schema, engine.ColumnDef{Name: r.Target, Type: typ})
	}

	out := engine.NewTable(schema)
	rowID := int64(0)
	for i := 0; i < src.NumRows(); i++ {
		row := make([]any, len(schema))
		row[1] = m.Dataset
		drop := false
		for pi, p := range plans {
			cell := transformCell(src, i, p.srcIdx, p.rule, p.typ, p.cde, p.rule.Target, report)
			if cell == nil {
				report.NullCells[p.rule.Target]++
				if p.rule.Required {
					drop = true
				}
			}
			row[2+pi] = cell
		}
		if drop {
			report.RowsDropped++
			continue
		}
		row[0] = rowID
		rowID++
		if err := out.AppendRow(row...); err != nil {
			return nil, nil, fmt.Errorf("etl: row %d: %w", i, err)
		}
	}
	report.RowsOut = out.NumRows()
	return out, report, nil
}

func transformCell(src *engine.Table, row, col int, r Rule, typ engine.Type, cde *catalogue.Variable, target string, report *QualityReport) any {
	v := src.Col(col)
	if v.IsNull(row) {
		return nil
	}
	if typ == engine.String {
		s := valueString(v, row)
		if r.Recode != nil {
			mapped, ok := r.Recode[s]
			if !ok {
				report.RecodeMisses[target]++
				return nil
			}
			s = mapped
		}
		if cde != nil {
			if err := cde.Validate(s); err != nil {
				report.RangeErrors[target]++
				return nil
			}
		}
		return s
	}
	// Numeric path.
	f, ok := valueFloat(v, row)
	if !ok {
		return nil
	}
	f = f*r.Scale + r.Offset
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil
	}
	if cde != nil {
		if err := cde.Validate(f); err != nil {
			report.RangeErrors[target]++
			return nil
		}
	}
	if typ == engine.Int64 {
		return int64(math.Round(f))
	}
	return f
}

func valueString(v *engine.Vector, i int) string {
	if v.Type() == engine.String {
		return v.StringAt(i)
	}
	return strings.TrimSpace(fmt.Sprint(v.Value(i)))
}

func valueFloat(v *engine.Vector, i int) (float64, bool) {
	f := v.CastFloat64()
	if f.IsNull(i) {
		return 0, false
	}
	return f.Float64s()[i], true
}

// LoadCSV is the one-call path: parse CSV, apply the mapping, register the
// result as (or append to) the worker's data table.
func LoadCSV(r io.Reader, m Mapping, path *catalogue.Pathology, db *engine.DB, tableName string) (*QualityReport, error) {
	schema, raw, err := readAll(r)
	if err != nil {
		return nil, err
	}
	_ = schema
	harmonized, report, err := Load(raw, m, path)
	if err != nil {
		return nil, err
	}
	if existing := db.Table(tableName); existing != nil {
		if err := existing.Append(harmonized); err != nil {
			return nil, fmt.Errorf("etl: appending to %s: %w", tableName, err)
		}
		return report, nil
	}
	db.RegisterTable(tableName, harmonized)
	return report, nil
}

func readAll(r io.Reader) (engine.Schema, *engine.Table, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, err
	}
	schema, err := engine.InferSchema(strings.NewReader(string(data)), 0)
	if err != nil {
		return nil, nil, err
	}
	t, err := engine.LoadCSV(strings.NewReader(string(data)), schema)
	if err != nil {
		return nil, nil, err
	}
	return schema, t, nil
}

// IdentityMapping builds a mapping that passes the named CDE variables
// through unchanged — used when the source is already harmonized (e.g. the
// synthetic cohorts).
func IdentityMapping(dataset string, vars []string) Mapping {
	m := Mapping{Dataset: dataset}
	for _, v := range vars {
		m.Rules = append(m.Rules, Rule{Source: v})
	}
	return m
}
