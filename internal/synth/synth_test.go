package synth

import (
	"math"
	"testing"

	"mip/internal/engine"
	"mip/internal/stats"
)

func colStats(t *testing.T, tab *engine.Table, col, class string) (mean float64, n int) {
	t.Helper()
	cls, err := tab.StringColumn("alzheimerbroadcategory")
	if err != nil {
		t.Fatal(err)
	}
	v := tab.ColByName(col)
	if v == nil {
		t.Fatalf("no column %q", col)
	}
	f := v.CastFloat64()
	var sum float64
	for i := 0; i < f.Len(); i++ {
		if f.IsNull(i) || (class != "" && cls[i] != class) {
			continue
		}
		sum += f.Float64s()[i]
		n++
	}
	return sum / float64(n), n
}

func TestGenerateShape(t *testing.T) {
	tab, err := Generate(Spec{Dataset: "x", Rows: 500, Seed: 1, MissingRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 500 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if tab.NumCols() != len(Variables) {
		t.Fatalf("cols = %d", tab.NumCols())
	}
	ds, _ := tab.StringColumn("dataset")
	if ds[0] != "x" || ds[499] != "x" {
		t.Fatal("dataset column wrong")
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := Generate(Spec{Dataset: "x", Rows: 100, Seed: 7})
	b, _ := Generate(Spec{Dataset: "x", Rows: 100, Seed: 7})
	for i := 0; i < 100; i++ {
		ra, rb := a.Row(i), b.Row(i)
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("row %d differs with same seed", i)
			}
		}
	}
	c, _ := Generate(Spec{Dataset: "x", Rows: 100, Seed: 8})
	same := true
	for i := 0; i < 100 && same; i++ {
		if a.Row(i)[5] != c.Row(i)[5] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

// The structure the use case depends on: AD patients have smaller
// entorhinal/hippocampal volumes, lower Aβ42, higher pTau, lower MMSE.
func TestClassSeparation(t *testing.T) {
	tab, err := Generate(Spec{Dataset: "x", Rows: 4000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	adH, _ := colStats(t, tab, "lefthippocampus", "AD")
	cnH, _ := colStats(t, tab, "lefthippocampus", "CN")
	if adH >= cnH-0.3 {
		t.Fatalf("AD hippocampus %v should be well below CN %v", adH, cnH)
	}
	adAB, _ := colStats(t, tab, "ab42", "AD")
	cnAB, _ := colStats(t, tab, "ab42", "CN")
	if adAB >= cnAB-200 {
		t.Fatalf("AD ab42 %v should be well below CN %v", adAB, cnAB)
	}
	adPT, _ := colStats(t, tab, "p_tau", "AD")
	cnPT, _ := colStats(t, tab, "p_tau", "CN")
	if adPT <= cnPT+15 {
		t.Fatalf("AD p_tau %v should be well above CN %v", adPT, cnPT)
	}
	adM, _ := colStats(t, tab, "minimentalstate", "AD")
	cnM, _ := colStats(t, tab, "minimentalstate", "CN")
	if adM >= cnM-5 {
		t.Fatalf("AD MMSE %v should be well below CN %v", adM, cnM)
	}
}

func TestMissingness(t *testing.T) {
	tab, err := Generate(Spec{Dataset: "x", Rows: 2000, Seed: 5, MissingRate: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	_, missing, err := tab.Float64Column("p_tau")
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(missing) / 2000
	if math.Abs(rate-0.1) > 0.03 {
		t.Fatalf("missing rate = %v, want ~0.1", rate)
	}
	// Demographics are never missing.
	_, m2, _ := tab.Float64Column("subjectageyears")
	if m2 != 0 {
		t.Fatal("age should not be missing")
	}
}

func TestNamedCohorts(t *testing.T) {
	edsd, err := EDSD(1)
	if err != nil {
		t.Fatal(err)
	}
	if edsd.NumRows() != 474 {
		t.Fatalf("EDSD rows = %d", edsd.NumRows())
	}
	synth, _ := EDSDSynth(1)
	if synth.NumRows() != 1000 {
		t.Fatalf("edsd-synthdata rows = %d", synth.NumRows())
	}
	ppmi, _ := PPMI(1)
	if ppmi.NumRows() != 714 {
		t.Fatalf("PPMI rows = %d", ppmi.NumRows())
	}
	// PPMI has no missing p_tau (Figure 3 shows full 714 datapoints).
	_, missing, _ := ppmi.Float64Column("p_tau")
	if missing != 0 {
		t.Fatalf("PPMI missing = %d", missing)
	}
}

func TestUseCaseSites(t *testing.T) {
	sites, err := UseCase(11)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"brescia": 1960, "lausanne": 1032, "lille": 1103, "adni": 1066}
	for name, rows := range want {
		tab := sites[name]
		if tab == nil || tab.NumRows() != rows {
			t.Fatalf("site %s: %v rows, want %d", name, tab.NumRows(), rows)
		}
	}
	// Sites must differ in their means (distribution shift).
	m1, _ := colStats(t, sites["brescia"], "ab42", "")
	m2, _ := colStats(t, sites["adni"], "ab42", "")
	if math.Abs(m1-m2) < 1 {
		t.Fatalf("site shift missing: brescia %v vs adni %v", m1, m2)
	}
}

func TestSurvival(t *testing.T) {
	tab, err := Survival(SurvivalSpec{Dataset: "s", Rows: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2000 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	// Treated group should survive longer on average (lower hazard).
	grp, _ := tab.StringColumn("grp")
	times, _, _ := tab.Float64Column("time")
	_ = times
	tv := tab.ColByName("time").Float64s()
	var sumC, sumT, nC, nT float64
	for i := range grp {
		if grp[i] == "control" {
			sumC += tv[i]
			nC++
		} else {
			sumT += tv[i]
			nT++
		}
	}
	if sumT/nT <= sumC/nC {
		t.Fatalf("treated mean time %v should exceed control %v", sumT/nT, sumC/nC)
	}
	// Both events and censorings present.
	ev := tab.ColByName("event").Int64s()
	var events int
	for _, e := range ev {
		events += int(e)
	}
	if events == 0 || events == 2000 {
		t.Fatalf("events = %d, want a mix", events)
	}
	// Discretized times should repeat (needed for distinct-times union).
	seen := map[float64]int{}
	for _, x := range tv {
		seen[x]++
	}
	if len(seen) >= 1900 {
		t.Fatalf("times not discretized: %d distinct", len(seen))
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Spec{Rows: -1}); err == nil {
		t.Fatal("negative rows must fail")
	}
	if _, err := Generate(Spec{Rows: 10, MissingRate: 1.5}); err == nil {
		t.Fatal("bad missing rate must fail")
	}
}

// MMSE must correlate positively with hippocampal volume (the regression
// the use case runs depends on this signal).
func TestVolumeCognitionCorrelation(t *testing.T) {
	tab, _ := Generate(Spec{Dataset: "x", Rows: 3000, Seed: 9})
	lh := tab.ColByName("lefthippocampus").Float64s()
	mm := tab.ColByName("minimentalstate").Float64s()
	var xs, ys []float64
	for i := range lh {
		if !tab.ColByName("lefthippocampus").IsNull(i) && !tab.ColByName("minimentalstate").IsNull(i) {
			xs = append(xs, lh[i])
			ys = append(ys, mm[i])
		}
	}
	mx, my := stats.Mean(xs), stats.Mean(ys)
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	r := cov / math.Sqrt(vx*vy)
	if r < 0.3 {
		t.Fatalf("corr(hippocampus, MMSE) = %v, want > 0.3", r)
	}
}
