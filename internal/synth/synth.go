// Package synth generates the synthetic medical cohorts the reproduction
// runs on. Real MIP deployments hold clinical data that cannot leave the
// hospitals (that is the point of the platform); these generators produce
// datasets with the same variable schema and statistical structure as the
// cohorts the paper's evaluation shows — EDSD and PPMI (the dashboard of
// Figure 3) and the four Alzheimer's-use-case sites (Brescia, Lausanne,
// Lille, ADNI) — so every experiment exercises the identical code path.
//
// Variables follow the MIP common data elements for dementia: demographics
// (subjectageyears, gender), diagnosis (alzheimerbroadcategory: AD / MCI /
// CN), neuromorphometric brain volumes (left/right hippocampus, entorhinal
// area, lateral ventricles in ml), CSF biomarkers (ab42 = Amyloid beta
// 1-42, p_tau), and the MMSE cognitive score (minimentalstate). Diagnosis
// classes have shifted means chosen to reproduce the structure the paper's
// use case analyses: entorhinal/hippocampal atrophy, lowered Aβ42 and
// raised pTau in AD, plus depression (PSY) and vascular (VA) comorbidity
// flags for the non-AD-etiology analysis.
package synth

import (
	"fmt"

	"mip/internal/engine"
	"mip/internal/stats"
)

// Variables is the ordered schema of generated cohorts (after the dataset
// and row-id columns).
var Variables = []engine.ColumnDef{
	{Name: "row_id", Type: engine.Int64},
	{Name: "dataset", Type: engine.String},
	{Name: "subjectageyears", Type: engine.Float64},
	{Name: "gender", Type: engine.String}, // F / M
	{Name: "alzheimerbroadcategory", Type: engine.String},
	{Name: "lefthippocampus", Type: engine.Float64},
	{Name: "righthippocampus", Type: engine.Float64},
	{Name: "leftententorhinalarea", Type: engine.Float64},
	{Name: "rightententorhinalarea", Type: engine.Float64},
	{Name: "leftlateralventricle", Type: engine.Float64},
	{Name: "rightlateralventricle", Type: engine.Float64},
	{Name: "ab42", Type: engine.Float64},
	{Name: "p_tau", Type: engine.Float64},
	{Name: "minimentalstate", Type: engine.Float64},
	{Name: "psy", Type: engine.String}, // depression comorbidity: yes/no
	{Name: "va", Type: engine.String},  // vascular white-matter damage: yes/no
}

// classParams are the class-conditional distribution parameters of one
// diagnosis group.
type classParams struct {
	weight      float64
	hippocampus [2]float64 // mean, sd (ml)
	entorhinal  [2]float64
	ventricle   [2]float64
	ab42        [2]float64
	ptau        [2]float64
	mmse        [2]float64
	age         [2]float64
	psyRate     float64
	vaRate      float64
}

// diagnosis classes: CN (controls), MCI, AD. Parameter centers follow the
// ADNI/EDSD literature ranges (volumes in ml, ab42/p_tau in pg/ml).
var classes = map[string]classParams{
	"CN": {
		weight:      0.35,
		hippocampus: [2]float64{3.2, 0.35},
		entorhinal:  [2]float64{1.8, 0.22},
		ventricle:   [2]float64{0.85, 0.45},
		ab42:        [2]float64{1050, 180},
		ptau:        [2]float64{21, 7},
		mmse:        [2]float64{28.8, 1.1},
		age:         [2]float64{70, 6},
		psyRate:     0.08,
		vaRate:      0.10,
	},
	"MCI": {
		weight:      0.35,
		hippocampus: [2]float64{2.85, 0.38},
		entorhinal:  [2]float64{1.55, 0.24},
		ventricle:   [2]float64{1.05, 0.5},
		ab42:        [2]float64{800, 210},
		ptau:        [2]float64{35, 12},
		mmse:        [2]float64{26.5, 1.8},
		age:         [2]float64{72, 7},
		psyRate:     0.15,
		vaRate:      0.15,
	},
	"AD": {
		weight:      0.30,
		hippocampus: [2]float64{2.45, 0.4},
		entorhinal:  [2]float64{1.25, 0.25},
		ventricle:   [2]float64{1.35, 0.6},
		ab42:        [2]float64{580, 160},
		ptau:        [2]float64{58, 18},
		mmse:        [2]float64{19.5, 3.5},
		age:         [2]float64{74, 7},
		psyRate:     0.22,
		vaRate:      0.20,
	},
}

// Spec parameterizes one generated cohort.
type Spec struct {
	Dataset string
	Rows    int
	Seed    int64
	// MissingRate is the chance each biomarker/volume cell is NULL
	// (clinical records are incomplete; Figure 3 shows NA counts).
	MissingRate float64
	// Shift offsets the site's means (scanner/protocol differences between
	// hospitals; drives the per-hospital heterogeneity of the use case).
	Shift float64
	// ClassMix overrides the default diagnosis weights (CN, MCI, AD).
	ClassMix map[string]float64
}

// Generate builds the cohort table for a spec.
func Generate(spec Spec) (*engine.Table, error) {
	if spec.Rows < 0 {
		return nil, fmt.Errorf("synth: negative row count")
	}
	if spec.MissingRate < 0 || spec.MissingRate >= 1 {
		if spec.MissingRate != 0 {
			return nil, fmt.Errorf("synth: missing rate %v out of [0,1)", spec.MissingRate)
		}
	}
	rng := stats.NewRNG(spec.Seed)
	t := engine.NewTable(engine.Schema(Variables))

	names := []string{"CN", "MCI", "AD"}
	weights := make([]float64, len(names))
	for i, n := range names {
		weights[i] = classes[n].weight
		if spec.ClassMix != nil {
			weights[i] = spec.ClassMix[n]
		}
	}

	maybe := func(v float64) any {
		if spec.MissingRate > 0 && rng.Bernoulli(spec.MissingRate) {
			return nil
		}
		return v
	}
	pos := func(v float64) float64 {
		if v < 0.05 {
			return 0.05
		}
		return v
	}

	for i := 0; i < spec.Rows; i++ {
		cls := names[rng.Categorical(weights)]
		p := classes[cls]
		age := rng.Normal(p.age[0]+spec.Shift*0.5, p.age[1])
		if age < 40 {
			age = 40
		}
		gender := "F"
		if rng.Bernoulli(0.45) {
			gender = "M"
		}
		// Age effect: volumes shrink, ventricles grow with age.
		ageEff := (age - 70) * 0.01

		lh := pos(rng.Normal(p.hippocampus[0]+spec.Shift*0.02-ageEff, p.hippocampus[1]))
		rh := pos(lh + rng.Normal(0.02, 0.12))
		le := pos(rng.Normal(p.entorhinal[0]+spec.Shift*0.015-ageEff*0.6, p.entorhinal[1]))
		re := pos(le + rng.Normal(0.01, 0.1))
		lv := pos(rng.Normal(p.ventricle[0]+ageEff*1.5, p.ventricle[1]))
		rv := pos(lv + rng.Normal(0, 0.15))
		ab := pos(rng.Normal(p.ab42[0]+spec.Shift*8, p.ab42[1]))
		pt := pos(rng.Normal(p.ptau[0]-spec.Shift*0.4, p.ptau[1]))
		// MMSE correlates with hippocampal volume within class.
		mmse := rng.Normal(p.mmse[0]+2.0*(lh-p.hippocampus[0]), p.mmse[1])
		if mmse > 30 {
			mmse = 30
		}
		if mmse < 0 {
			mmse = 0
		}
		psy := "no"
		if rng.Bernoulli(p.psyRate) {
			psy = "yes"
		}
		va := "no"
		if rng.Bernoulli(p.vaRate) {
			va = "yes"
		}

		err := t.AppendRow(
			int64(i),
			spec.Dataset,
			age,
			gender,
			cls,
			maybe(lh), maybe(rh),
			maybe(le), maybe(re),
			maybe(lv), maybe(rv),
			maybe(ab), maybe(pt),
			maybe(mmse),
			psy, va,
		)
		if err != nil {
			return nil, err
		}
	}
	return t, nil
}

// EDSD returns an EDSD-like cohort (the dashboard's edsd dataset has 474
// rows with ~37 NA per biomarker, i.e. ~8% missing).
func EDSD(seed int64) (*engine.Table, error) {
	return Generate(Spec{Dataset: "edsd", Rows: 474, Seed: seed, MissingRate: 0.078})
}

// EDSDSynth returns the edsd-synthdata companion (1000 rows, 8% missing).
func EDSDSynth(seed int64) (*engine.Table, error) {
	return Generate(Spec{Dataset: "edsd-synthdata", Rows: 1000, Seed: seed + 1, MissingRate: 0.08})
}

// PPMI returns a PPMI-like cohort (714 rows; PPMI is a Parkinson's cohort,
// so the class mix skews to non-AD).
func PPMI(seed int64) (*engine.Table, error) {
	return Generate(Spec{
		Dataset: "ppmi", Rows: 714, Seed: seed + 2, MissingRate: 0.0,
		ClassMix: map[string]float64{"CN": 0.6, "MCI": 0.3, "AD": 0.1},
		Shift:    1.5,
	})
}

// UseCaseSite describes one hospital of the paper's Alzheimer's use case.
type UseCaseSite struct {
	Name string
	Rows int
}

// UseCaseSites are the four sites with the caseloads stated in the paper:
// Brescia (1960), Lausanne (1032), Lille (1103) and the ADNI reference
// dataset (1066).
var UseCaseSites = []UseCaseSite{
	{Name: "brescia", Rows: 1960},
	{Name: "lausanne", Rows: 1032},
	{Name: "lille", Rows: 1103},
	{Name: "adni", Rows: 1066},
}

// UseCase generates the four per-hospital cohorts keyed by site name, with
// site-specific distribution shifts.
func UseCase(seed int64) (map[string]*engine.Table, error) {
	out := make(map[string]*engine.Table, len(UseCaseSites))
	for i, site := range UseCaseSites {
		t, err := Generate(Spec{
			Dataset:     site.Name,
			Rows:        site.Rows,
			Seed:        seed + int64(i)*101,
			MissingRate: 0.05,
			Shift:       float64(i) - 1.5,
		})
		if err != nil {
			return nil, err
		}
		out[site.Name] = t
	}
	return out, nil
}

// SurvivalSpec parameterizes the epilepsy-like survival cohort used by the
// Kaplan-Meier experiments: time-to-seizure-relapse with censoring, one
// group on treatment and one control.
type SurvivalSpec struct {
	Dataset string
	Rows    int
	Seed    int64
	// HazardControl and HazardTreated are exponential event rates.
	HazardControl float64
	HazardTreated float64
	// CensorRate is the exponential censoring rate.
	CensorRate float64
}

// SurvivalSchema is the schema of survival cohorts.
var SurvivalSchema = engine.Schema{
	{Name: "row_id", Type: engine.Int64},
	{Name: "dataset", Type: engine.String},
	{Name: "grp", Type: engine.String}, // control / treated
	{Name: "time", Type: engine.Float64},
	{Name: "event", Type: engine.Int64}, // 1 = event, 0 = censored
}

// Survival generates a survival cohort.
func Survival(spec SurvivalSpec) (*engine.Table, error) {
	if spec.HazardControl <= 0 {
		spec.HazardControl = 0.10
	}
	if spec.HazardTreated <= 0 {
		spec.HazardTreated = 0.05
	}
	if spec.CensorRate <= 0 {
		spec.CensorRate = 0.03
	}
	rng := stats.NewRNG(spec.Seed)
	t := engine.NewTable(SurvivalSchema)
	for i := 0; i < spec.Rows; i++ {
		grp := "control"
		hazard := spec.HazardControl
		if i%2 == 1 {
			grp = "treated"
			hazard = spec.HazardTreated
		}
		eventT := rng.Exponential(hazard)
		censorT := rng.Exponential(spec.CensorRate)
		tt, ev := eventT, int64(1)
		if censorT < eventT {
			tt, ev = censorT, 0
		}
		// Discretize to months so event times collide across sites (the
		// disjoint-union step then has meaningful distinct times).
		tt = float64(int(tt*2+1)) / 2
		if err := t.AppendRow(int64(i), spec.Dataset, grp, tt, ev); err != nil {
			return nil, err
		}
	}
	return t, nil
}
