package queue

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mip/internal/obs"
)

// Queue metrics, registered eagerly for GET /metrics. Depth counts
// submitted-but-not-started tasks (a retried task re-enters the queue);
// running counts tasks inside a handler.
var (
	queueDepth = obs.GetGauge("mip_queue_depth",
		"Tasks submitted and waiting for a worker goroutine.")
	queueRunning = obs.GetGauge("mip_queue_running",
		"Tasks currently executing in a handler.")
	queueWaitSeconds = obs.GetHistogram("mip_queue_task_wait_seconds",
		"Time tasks spend queued before a worker picks them up.", nil)
	queueRunSeconds = obs.GetHistogram("mip_queue_task_run_seconds",
		"Time tasks spend executing in their handler.", nil)
)

func queueTasks(state State) *obs.Counter {
	return obs.GetCounter("mip_queue_tasks_total",
		"Task state transitions by resulting state.",
		obs.Label{Key: "state", Value: string(state)})
}

func init() {
	// Pre-create the per-state series so a fresh process exposes the family
	// (at zero) before any task runs.
	for _, s := range []State{Pending, Started, Success, Failure, Retried} {
		queueTasks(s)
	}
}

// State mirrors Celery's task states, which the paper's stack exposes to
// the dashboard.
type State string

// Task states.
const (
	Pending State = "PENDING"
	Started State = "STARTED"
	Success State = "SUCCESS"
	Failure State = "FAILURE"
	Retried State = "RETRY"
)

// Handler executes one task type; the returned value is stored as the
// task's result (JSON-encoded).
type Handler func(ctx context.Context, payload json.RawMessage) (any, error)

// TaskInfo is the runner's view of one submitted task.
type TaskInfo struct {
	ID       string
	Name     string
	State    State
	Result   json.RawMessage
	Error    string
	Created  time.Time
	Started  time.Time
	Finished time.Time
}

// Runner dispatches submitted tasks to handlers through the broker using a
// pool of worker goroutines, and keeps results in an in-memory backend.
type Runner struct {
	broker  *Broker
	queueN  string
	mu      sync.Mutex
	handler map[string]Handler
	tasks   map[string]*TaskInfo
	nextID  int
	// consumeCancel stops the pull loop; handlerCancel additionally aborts
	// in-flight handlers. Graceful shutdown cancels only the former so
	// running experiments can finish.
	consumeCancel context.CancelFunc
	handlerCancel context.CancelFunc
	wg            sync.WaitGroup
	now           func() time.Time
	// Per-runner mirrors of the process-wide depth/running gauges.
	depth   atomic.Int64
	running atomic.Int64
}

// NewRunner creates a runner over the broker with the given concurrency.
func NewRunner(b *Broker, concurrency int) *Runner {
	if concurrency <= 0 {
		concurrency = 2
	}
	consumeCtx, consumeCancel := context.WithCancel(context.Background())
	handlerCtx, handlerCancel := context.WithCancel(context.Background())
	r := &Runner{
		broker:        b,
		queueN:        "tasks",
		handler:       make(map[string]Handler),
		tasks:         make(map[string]*TaskInfo),
		consumeCancel: consumeCancel,
		handlerCancel: handlerCancel,
		now:           time.Now,
	}
	for i := 0; i < concurrency; i++ {
		r.wg.Add(1)
		go r.loop(consumeCtx, handlerCtx)
	}
	return r
}

// Register installs a handler for a task name.
func (r *Runner) Register(name string, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handler[name] = h
}

// Submit enqueues a task and returns its id immediately (the asynchronous
// experiment-submission flow).
func (r *Runner) Submit(name string, payload any) (string, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("queue: encoding payload: %w", err)
	}
	r.mu.Lock()
	r.nextID++
	id := fmt.Sprintf("task-%d", r.nextID)
	r.tasks[id] = &TaskInfo{ID: id, Name: name, State: Pending, Created: r.now()}
	r.mu.Unlock()
	msg := &Message{ID: id, Body: body, Headers: map[string]string{"task": name}}
	// Count the task before publishing: once Publish returns, a worker may
	// already have picked it up and decremented the gauge — incrementing
	// after the fact would race it below zero. Roll back if publish fails.
	queueDepth.Inc()
	r.depth.Add(1)
	if err := r.broker.Publish(r.queueN, msg); err != nil {
		queueDepth.Dec()
		r.depth.Add(-1)
		r.mu.Lock()
		r.tasks[id].State = Failure
		r.tasks[id].Error = err.Error()
		r.mu.Unlock()
		queueTasks(Failure).Inc()
		return id, err
	}
	queueTasks(Pending).Inc()
	return id, nil
}

// Depth reports this runner's submitted tasks not yet picked up by a
// worker goroutine.
func (r *Runner) Depth() int { return int(r.depth.Load()) }

// Running reports this runner's tasks currently executing in a handler.
func (r *Runner) Running() int { return int(r.running.Load()) }

// Info returns a snapshot of the task's state, or nil if unknown.
func (r *Runner) Info(id string) *TaskInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tasks[id]
	if !ok {
		return nil
	}
	cp := *t
	return &cp
}

// Wait polls until the task reaches a terminal state or the context ends.
func (r *Runner) Wait(ctx context.Context, id string) (*TaskInfo, error) {
	for {
		info := r.Info(id)
		if info == nil {
			return nil, fmt.Errorf("queue: unknown task %q", id)
		}
		if info.State == Success || info.State == Failure {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// List returns snapshots of all tasks.
func (r *Runner) List() []*TaskInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TaskInfo, 0, len(r.tasks))
	for _, t := range r.tasks {
		cp := *t
		out = append(out, &cp)
	}
	return out
}

// Close stops the worker pool immediately (queued tasks are abandoned and
// in-flight handlers see a cancelled context). For a graceful drain use
// Shutdown.
func (r *Runner) Close() {
	r.consumeCancel()
	r.handlerCancel()
	r.wg.Wait()
	r.sweep("runner closed")
}

// Shutdown drains the runner: it stops pulling new work, lets in-flight
// handlers finish, and waits until the pool is idle or ctx expires. On
// deadline the in-flight handlers are cancelled and their tasks marked
// failed. Tasks still queued when the pool stops are swept to Failure so
// callers never wait forever on an abandoned task.
func (r *Runner) Shutdown(ctx context.Context) error {
	r.consumeCancel()
	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		r.handlerCancel()
		<-done
	}
	r.handlerCancel()
	r.sweep("runner shut down")
	return err
}

// sweep fails every task that will never reach a terminal state because the
// pool has stopped.
func (r *Runner) sweep(reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, t := range r.tasks {
		if t.State == Pending || t.State == Started || t.State == Retried {
			// Pending/Retried tasks still sit in the queue and were counted
			// in the depth gauges; failing them here dequeues them.
			if t.State == Pending || t.State == Retried {
				queueDepth.Dec()
				r.depth.Add(-1)
			}
			t.State = Failure
			t.Error = reason
			t.Finished = r.now()
			queueTasks(Failure).Inc()
		}
	}
}

func (r *Runner) loop(consumeCtx, handlerCtx context.Context) {
	defer r.wg.Done()
	for {
		d, err := r.broker.Consume(consumeCtx, r.queueN)
		if err != nil {
			return
		}
		r.execute(handlerCtx, d)
	}
}

func (r *Runner) execute(ctx context.Context, d *Delivery) {
	id := d.Message.ID
	name := d.Message.Headers["task"]
	started := r.now()
	queueDepth.Dec()
	r.depth.Add(-1)
	queueRunning.Inc()
	r.running.Add(1)
	defer func() {
		queueRunning.Dec()
		r.running.Add(-1)
	}()
	r.mu.Lock()
	h := r.handler[name]
	if t := r.tasks[id]; t != nil {
		t.State = Started
		// Queue wait is submission→first pickup; a redelivered (retried)
		// task keeps its original Started stamp and is not re-observed.
		if t.Started.IsZero() {
			t.Started = started
			queueWaitSeconds.Observe(started.Sub(t.Created).Seconds())
		}
	}
	r.mu.Unlock()

	finish := func(state State, result any, errMsg string) {
		r.mu.Lock()
		defer r.mu.Unlock()
		t := r.tasks[id]
		if t == nil {
			return
		}
		t.State = state
		t.Error = errMsg
		t.Finished = r.now()
		queueTasks(state).Inc()
		queueRunSeconds.Observe(t.Finished.Sub(started).Seconds())
		if result != nil {
			if enc, err := json.Marshal(result); err == nil {
				t.Result = enc
			}
		}
	}

	if h == nil {
		d.Ack()
		finish(Failure, nil, fmt.Sprintf("no handler for task %q", name))
		return
	}
	res, err := h(ctx, d.Message.Body)
	if err != nil {
		if d.Message.Attempts() < r.broker.maxRetries {
			r.mu.Lock()
			if t := r.tasks[id]; t != nil {
				t.State = Retried
			}
			r.mu.Unlock()
			queueTasks(Retried).Inc()
			queueDepth.Inc()
			r.depth.Add(1)
			d.Nack() // redeliver
			return
		}
		d.Ack()
		finish(Failure, nil, err.Error())
		return
	}
	d.Ack()
	finish(Success, res, "")
}
