package queue

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"
)

// State mirrors Celery's task states, which the paper's stack exposes to
// the dashboard.
type State string

// Task states.
const (
	Pending State = "PENDING"
	Started State = "STARTED"
	Success State = "SUCCESS"
	Failure State = "FAILURE"
	Retried State = "RETRY"
)

// Handler executes one task type; the returned value is stored as the
// task's result (JSON-encoded).
type Handler func(ctx context.Context, payload json.RawMessage) (any, error)

// TaskInfo is the runner's view of one submitted task.
type TaskInfo struct {
	ID       string
	Name     string
	State    State
	Result   json.RawMessage
	Error    string
	Created  time.Time
	Finished time.Time
}

// Runner dispatches submitted tasks to handlers through the broker using a
// pool of worker goroutines, and keeps results in an in-memory backend.
type Runner struct {
	broker  *Broker
	queueN  string
	mu      sync.Mutex
	handler map[string]Handler
	tasks   map[string]*TaskInfo
	nextID  int
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	now     func() time.Time
}

// NewRunner creates a runner over the broker with the given concurrency.
func NewRunner(b *Broker, concurrency int) *Runner {
	if concurrency <= 0 {
		concurrency = 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{
		broker:  b,
		queueN:  "tasks",
		handler: make(map[string]Handler),
		tasks:   make(map[string]*TaskInfo),
		cancel:  cancel,
		now:     time.Now,
	}
	for i := 0; i < concurrency; i++ {
		r.wg.Add(1)
		go r.loop(ctx)
	}
	return r
}

// Register installs a handler for a task name.
func (r *Runner) Register(name string, h Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handler[name] = h
}

// Submit enqueues a task and returns its id immediately (the asynchronous
// experiment-submission flow).
func (r *Runner) Submit(name string, payload any) (string, error) {
	body, err := json.Marshal(payload)
	if err != nil {
		return "", fmt.Errorf("queue: encoding payload: %w", err)
	}
	r.mu.Lock()
	r.nextID++
	id := fmt.Sprintf("task-%d", r.nextID)
	r.tasks[id] = &TaskInfo{ID: id, Name: name, State: Pending, Created: r.now()}
	r.mu.Unlock()
	msg := &Message{ID: id, Body: body, Headers: map[string]string{"task": name}}
	if err := r.broker.Publish(r.queueN, msg); err != nil {
		r.mu.Lock()
		r.tasks[id].State = Failure
		r.tasks[id].Error = err.Error()
		r.mu.Unlock()
		return id, err
	}
	return id, nil
}

// Info returns a snapshot of the task's state, or nil if unknown.
func (r *Runner) Info(id string) *TaskInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.tasks[id]
	if !ok {
		return nil
	}
	cp := *t
	return &cp
}

// Wait polls until the task reaches a terminal state or the context ends.
func (r *Runner) Wait(ctx context.Context, id string) (*TaskInfo, error) {
	for {
		info := r.Info(id)
		if info == nil {
			return nil, fmt.Errorf("queue: unknown task %q", id)
		}
		if info.State == Success || info.State == Failure {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// List returns snapshots of all tasks.
func (r *Runner) List() []*TaskInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TaskInfo, 0, len(r.tasks))
	for _, t := range r.tasks {
		cp := *t
		out = append(out, &cp)
	}
	return out
}

// Close stops the worker pool (queued tasks are abandoned).
func (r *Runner) Close() {
	r.cancel()
	r.wg.Wait()
}

func (r *Runner) loop(ctx context.Context) {
	defer r.wg.Done()
	for {
		d, err := r.broker.Consume(ctx, r.queueN)
		if err != nil {
			return
		}
		r.execute(ctx, d)
	}
}

func (r *Runner) execute(ctx context.Context, d *Delivery) {
	id := d.Message.ID
	name := d.Message.Headers["task"]
	r.mu.Lock()
	h := r.handler[name]
	if t := r.tasks[id]; t != nil {
		t.State = Started
	}
	r.mu.Unlock()

	finish := func(state State, result any, errMsg string) {
		r.mu.Lock()
		defer r.mu.Unlock()
		t := r.tasks[id]
		if t == nil {
			return
		}
		t.State = state
		t.Error = errMsg
		t.Finished = r.now()
		if result != nil {
			if enc, err := json.Marshal(result); err == nil {
				t.Result = enc
			}
		}
	}

	if h == nil {
		d.Ack()
		finish(Failure, nil, fmt.Sprintf("no handler for task %q", name))
		return
	}
	res, err := h(ctx, d.Message.Body)
	if err != nil {
		if d.Message.Attempts() < r.broker.maxRetries {
			r.mu.Lock()
			if t := r.tasks[id]; t != nil {
				t.State = Retried
			}
			r.mu.Unlock()
			d.Nack() // redeliver
			return
		}
		d.Ack()
		finish(Failure, nil, err.Error())
		return
	}
	d.Ack()
	finish(Success, res, "")
}
