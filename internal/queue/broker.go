// Package queue provides the asynchronous task plumbing that Celery-on-
// RabbitMQ provides in the paper's deployment: a message broker with named
// queues, acknowledgements and redelivery, plus a task runner with job
// states and a result backend. Experiments submitted through the REST API
// execute through this layer, which is why the dashboard can poll "Your
// experiment is currently running" until completion.
package queue

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrClosed is returned when operating on a closed broker.
var ErrClosed = errors.New("queue: broker closed")

// Message is one queued payload.
type Message struct {
	ID      string
	Body    []byte
	Headers map[string]string

	attempts int
}

// Attempts returns how many times the message has been delivered.
func (m *Message) Attempts() int { return m.attempts }

// Delivery wraps a consumed message with its acknowledgement handles.
type Delivery struct {
	Message *Message
	broker  *Broker
	queue   string
	done    bool
	mu      sync.Mutex
}

// Ack marks the message processed.
func (d *Delivery) Ack() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.done = true
}

// Nack returns the message to its queue for redelivery unless the retry
// limit is exhausted, in which case it lands on the dead-letter queue.
func (d *Delivery) Nack() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.done {
		return nil
	}
	d.done = true
	if d.Message.attempts >= d.broker.maxRetries {
		return d.broker.publish(d.queue+deadLetterSuffix, d.Message)
	}
	return d.broker.publish(d.queue, d.Message)
}

const deadLetterSuffix = ".dead"

// Broker is an in-memory AMQP-style broker.
type Broker struct {
	mu         sync.Mutex
	queues     map[string]chan *Message
	closed     bool
	maxRetries int
	capacity   int
}

// NewBroker creates a broker; maxRetries bounds redelivery (default 3) and
// capacity bounds each queue (default 1024).
func NewBroker(maxRetries, capacity int) *Broker {
	if maxRetries <= 0 {
		maxRetries = 3
	}
	if capacity <= 0 {
		capacity = 1024
	}
	return &Broker{
		queues:     make(map[string]chan *Message),
		maxRetries: maxRetries,
		capacity:   capacity,
	}
}

func (b *Broker) queue(name string) chan *Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	q, ok := b.queues[name]
	if !ok {
		q = make(chan *Message, b.capacity)
		b.queues[name] = q
	}
	return q
}

// Publish enqueues a message.
func (b *Broker) Publish(queueName string, m *Message) error {
	return b.publish(queueName, m)
}

func (b *Broker) publish(queueName string, m *Message) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.mu.Unlock()
	select {
	case b.queue(queueName) <- m:
		return nil
	default:
		return fmt.Errorf("queue: %q full", queueName)
	}
}

// Consume blocks for the next message on the queue (or context
// cancellation). The message's delivery count is incremented.
func (b *Broker) Consume(ctx context.Context, queueName string) (*Delivery, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrClosed
	}
	b.mu.Unlock()
	select {
	case m := <-b.queue(queueName):
		m.attempts++
		return &Delivery{Message: m, broker: b, queue: queueName}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryConsume returns the next message without blocking, or nil.
func (b *Broker) TryConsume(queueName string) *Delivery {
	select {
	case m := <-b.queue(queueName):
		m.attempts++
		return &Delivery{Message: m, broker: b, queue: queueName}
	default:
		return nil
	}
}

// Len returns the number of queued messages.
func (b *Broker) Len(queueName string) int { return len(b.queue(queueName)) }

// DeadLetters returns the dead-letter queue depth for a queue.
func (b *Broker) DeadLetters(queueName string) int {
	return len(b.queue(queueName + deadLetterSuffix))
}

// Close shuts the broker; later operations return ErrClosed.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
}
