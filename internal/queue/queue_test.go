package queue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestBrokerPublishConsume(t *testing.T) {
	b := NewBroker(0, 0)
	if err := b.Publish("q", &Message{ID: "1", Body: []byte("hi")}); err != nil {
		t.Fatal(err)
	}
	d, err := b.Consume(context.Background(), "q")
	if err != nil {
		t.Fatal(err)
	}
	if string(d.Message.Body) != "hi" || d.Message.Attempts() != 1 {
		t.Fatalf("message %+v", d.Message)
	}
	d.Ack()
	if b.Len("q") != 0 {
		t.Fatal("queue should be empty after ack")
	}
}

func TestBrokerNackRedelivers(t *testing.T) {
	b := NewBroker(3, 0)
	b.Publish("q", &Message{ID: "1"})
	for i := 1; i <= 3; i++ {
		d, err := b.Consume(context.Background(), "q")
		if err != nil {
			t.Fatal(err)
		}
		if d.Message.Attempts() != i {
			t.Fatalf("attempt %d reported as %d", i, d.Message.Attempts())
		}
		if err := d.Nack(); err != nil {
			t.Fatal(err)
		}
	}
	// Third nack hits the retry limit → dead letter.
	if b.Len("q") != 0 {
		t.Fatal("message should not be requeued beyond maxRetries")
	}
	if b.DeadLetters("q") != 1 {
		t.Fatalf("dead letters = %d", b.DeadLetters("q"))
	}
}

func TestBrokerConsumeContextCancel(t *testing.T) {
	b := NewBroker(0, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := b.Consume(ctx, "empty"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline, got %v", err)
	}
}

func TestBrokerTryConsume(t *testing.T) {
	b := NewBroker(0, 0)
	if d := b.TryConsume("q"); d != nil {
		t.Fatal("empty queue should return nil")
	}
	b.Publish("q", &Message{ID: "1"})
	if d := b.TryConsume("q"); d == nil {
		t.Fatal("expected message")
	}
}

func TestBrokerClose(t *testing.T) {
	b := NewBroker(0, 0)
	b.Close()
	if err := b.Publish("q", &Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
	if _, err := b.Consume(context.Background(), "q"); !errors.Is(err, ErrClosed) {
		t.Fatalf("expected ErrClosed, got %v", err)
	}
}

func TestBrokerCapacity(t *testing.T) {
	b := NewBroker(1, 2)
	b.Publish("q", &Message{ID: "1"})
	b.Publish("q", &Message{ID: "2"})
	if err := b.Publish("q", &Message{ID: "3"}); err == nil {
		t.Fatal("expected full-queue error")
	}
}

func TestRunnerLifecycle(t *testing.T) {
	b := NewBroker(0, 0)
	r := NewRunner(b, 2)
	defer r.Close()
	r.Register("double", func(ctx context.Context, payload json.RawMessage) (any, error) {
		var x float64
		if err := json.Unmarshal(payload, &x); err != nil {
			return nil, err
		}
		return x * 2, nil
	})
	id, err := r.Submit("double", 21.0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	info, err := r.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != Success {
		t.Fatalf("state = %s err=%s", info.State, info.Error)
	}
	var out float64
	json.Unmarshal(info.Result, &out)
	if out != 42 {
		t.Fatalf("result = %v", out)
	}
	if info.Finished.IsZero() {
		t.Fatal("finished timestamp missing")
	}
}

func TestRunnerFailureAfterRetries(t *testing.T) {
	b := NewBroker(2, 0)
	r := NewRunner(b, 1)
	defer r.Close()
	var calls atomic.Int32
	r.Register("boom", func(ctx context.Context, payload json.RawMessage) (any, error) {
		calls.Add(1)
		return nil, fmt.Errorf("kaput")
	})
	id, _ := r.Submit("boom", nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	info, err := r.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != Failure || info.Error != "kaput" {
		t.Fatalf("state=%s err=%q", info.State, info.Error)
	}
	if c := calls.Load(); c != 2 { // maxRetries=2 → two attempts
		t.Fatalf("handler called %d times, want 2", c)
	}
}

func TestRunnerUnknownHandler(t *testing.T) {
	b := NewBroker(0, 0)
	r := NewRunner(b, 1)
	defer r.Close()
	id, _ := r.Submit("nope", nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	info, _ := r.Wait(ctx, id)
	if info.State != Failure {
		t.Fatalf("state = %s", info.State)
	}
}

func TestRunnerInfoUnknown(t *testing.T) {
	b := NewBroker(0, 0)
	r := NewRunner(b, 1)
	defer r.Close()
	if r.Info("ghost") != nil {
		t.Fatal("unknown task should be nil")
	}
	if _, err := r.Wait(context.Background(), "ghost"); err == nil {
		t.Fatal("waiting on unknown task should error")
	}
}

func TestRunnerConcurrency(t *testing.T) {
	b := NewBroker(0, 0)
	r := NewRunner(b, 4)
	defer r.Close()
	var running, peak atomic.Int32
	r.Register("slow", func(ctx context.Context, payload json.RawMessage) (any, error) {
		cur := running.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		running.Add(-1)
		return nil, nil
	})
	var ids []string
	for i := 0; i < 8; i++ {
		id, _ := r.Submit("slow", i)
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, id := range ids {
		if _, err := r.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	if peak.Load() < 2 {
		t.Fatalf("peak concurrency = %d, want >= 2", peak.Load())
	}
	if len(r.List()) != 8 {
		t.Fatalf("List len = %d", len(r.List()))
	}
}

// TestDepthGaugeNeverNegative: the depth gauge is incremented before
// Publish, so a fast worker can never decrement it below its pre-submit
// value (the regression was inc-after-publish racing the pickup's dec).
func TestDepthGaugeNeverNegative(t *testing.T) {
	b := NewBroker(0, 0)
	r := NewRunner(b, 4)
	defer r.Close()
	r.Register("noop", func(context.Context, json.RawMessage) (any, error) { return nil, nil })

	baseline := queueDepth.Value()
	stop := make(chan struct{})
	violations := make(chan float64, 1)
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v := queueDepth.Value(); v < baseline {
				select {
				case violations <- v:
				default:
				}
				return
			}
		}
	}()

	var ids []string
	for i := 0; i < 200; i++ {
		id, err := r.Submit("noop", nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, id := range ids {
		if _, err := r.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	select {
	case v := <-violations:
		t.Fatalf("depth gauge dropped to %v below baseline %v", v, baseline)
	default:
	}
	if got := queueDepth.Value(); got != baseline {
		t.Fatalf("depth gauge = %v after drain, want baseline %v", got, baseline)
	}
}

// TestWaitObservedOncePerTask: a task redelivered through the retry path
// contributes exactly one queue-wait observation (first pickup), not one
// per delivery.
func TestWaitObservedOncePerTask(t *testing.T) {
	b := NewBroker(3, 0)
	r := NewRunner(b, 1)
	defer r.Close()
	var attempts atomic.Int64
	r.Register("flaky", func(context.Context, json.RawMessage) (any, error) {
		if attempts.Add(1) < 3 {
			return nil, errors.New("transient")
		}
		return "ok", nil
	})

	baseline := queueWaitSeconds.Count()
	id, err := r.Submit("flaky", nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	info, err := r.Wait(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != Success {
		t.Fatalf("state = %s, want SUCCESS (err %q)", info.State, info.Error)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("handler ran %d times, want 3", got)
	}
	if got := queueWaitSeconds.Count() - baseline; got != 1 {
		t.Fatalf("wait observed %d times across redeliveries, want 1", got)
	}
	if info.Started.IsZero() {
		t.Fatal("Started must be stamped on first pickup")
	}
}
