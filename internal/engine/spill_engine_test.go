package engine

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// spillDB builds a DB whose statements run under a deliberately tiny soft
// memory budget with spilling enabled, so every grouped aggregate (and,
// with joins, every eligible hash join) sheds state to disk.
func spillDB(t *testing.T, budget int64, degree, morsel int) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	db := NewDB(WithParallelism(degree), WithMorselSize(morsel),
		WithQueryMemLimit(budget), WithSpillDir(dir))
	if err := buildParallelFixture(db, 1500); err != nil {
		t.Fatal(err)
	}
	return db, dir
}

// assertNoSpillResidue fails if any mipspill-* session directory survived
// in the spill base dir after the statements finished.
func assertNoSpillResidue(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read spill dir: %v", err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "mipspill-") {
			t.Fatalf("spill residue left behind: %s", e.Name())
		}
	}
}

// TestSpillSerialParallelEquivalence runs the whole equivalence corpus
// with a budget of a few KB — far below any grouped aggregate's working
// set — and requires bit-identical results against an unbudgeted serial
// engine at parallelism 1, 2, and NumCPU.
func TestSpillSerialParallelEquivalence(t *testing.T) {
	const morsel = 128
	ref := NewDB(WithParallelism(1), WithMorselSize(morsel))
	if err := buildParallelFixture(ref, 1500); err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{1, 2, runtime.NumCPU()} {
		db, dir := spillDB(t, 4096, d, morsel)
		for _, sql := range parallelCorpus {
			want, err := ref.Query(sql)
			if err != nil {
				t.Fatalf("reference: %s: %v", sql, err)
			}
			got, err := db.Query(sql)
			if err != nil {
				t.Fatalf("spill par=%d: %s: %v", d, sql, err)
			}
			tablesIdentical(t, sql, want, got, "in-memory", fmt.Sprintf("spill par=%d", d))
		}
		assertNoSpillResidue(t, dir)
	}
}

// TestSpillReportsStats checks that a budget-crossing grouped aggregate
// actually spilled: SpillBytes/SpillPartitions on QueryStats, spill_bytes
// in the attribution map, and the [spill=...] bracket in EXPLAIN ANALYZE.
func TestSpillReportsStats(t *testing.T) {
	db, dir := spillDB(t, 4096, 2, 128)
	sql := `SELECT cat, count(*) AS n, sum(x) AS s, avg(y) AS m FROM t GROUP BY cat ORDER BY cat`
	_, qs, err := db.QueryWithStats(sql)
	if err != nil {
		t.Fatal(err)
	}
	if qs.SpillBytes <= 0 {
		t.Fatalf("SpillBytes = %d, want > 0", qs.SpillBytes)
	}
	if qs.SpillPartitions <= 0 {
		t.Fatalf("SpillPartitions = %d, want > 0", qs.SpillPartitions)
	}
	if got := qs.AttrMap(); got["spill_bytes"] == "" {
		t.Fatalf("attr map missing spill_bytes: %v", got)
	}
	if qs.Verdict != VerdictCompleted {
		t.Fatalf("verdict = %q, want %q (soft budget must not kill the query)", qs.Verdict, VerdictCompleted)
	}
	var spillNode *PlanNode
	qs.Root.Walk(func(n *PlanNode) {
		if n.SpillParts > 0 {
			spillNode = n
		}
	})
	if spillNode == nil {
		t.Fatalf("no plan node carries spill stats:\n%s", qs.Root)
	}
	if spillNode.Op != "aggregate" {
		t.Fatalf("spill stats on %q node, want aggregate", spillNode.Op)
	}
	rendered := strings.Join(qs.Root.Render(true), "\n")
	if !strings.Contains(rendered, "[spill=") {
		t.Fatalf("EXPLAIN ANALYZE missing [spill=...] bracket:\n%s", rendered)
	}
	assertNoSpillResidue(t, dir)
}

// spillJoinCorpus stresses the grace hash join and the streamed
// join→aggregate path beyond the shared corpus: ON residuals, WHERE
// predicates spanning both sides (unpushable), HAVING, DISTINCT
// aggregates over the merged stream, LEFT JOIN NULL group keys, and a
// three-way join (reordered plans carry hidden rowid columns through the
// spill files).
var spillJoinCorpus = []string{
	`SELECT a.id, a.x, b.score FROM t a JOIN u b ON a.id = b.id AND b.score > 0.2 ORDER BY a.id, b.score`,
	`SELECT a.id, b.score FROM t a LEFT JOIN u b ON a.id = b.id AND b.score > 0.5 ORDER BY a.id, b.score`,
	`SELECT b.site, count(*) AS n, sum(a.x) AS s FROM t a JOIN u b ON a.id = b.id WHERE a.x > b.score GROUP BY b.site HAVING count(*) > 1 ORDER BY b.site`,
	`SELECT b.site, avg(a.y) AS m FROM t a LEFT JOIN u b ON a.id = b.id GROUP BY b.site ORDER BY b.site LIMIT 3`,
	`SELECT a.cat, count(DISTINCT b.id) AS n FROM t a JOIN u b ON a.id = b.id GROUP BY a.cat ORDER BY a.cat`,
	`SELECT a.id, b.score, c.site FROM t a JOIN u b ON a.id = b.id JOIN u c ON b.id = c.id WHERE a.flag ORDER BY a.id, b.score, c.site`,
}

// TestSpillJoinEquivalence requires the grace join (and the streamed
// join→aggregate) to be bit-identical to the unbudgeted in-memory join at
// parallelism 1, 2, and NumCPU.
func TestSpillJoinEquivalence(t *testing.T) {
	const morsel = 128
	ref := NewDB(WithParallelism(1), WithMorselSize(morsel))
	if err := buildParallelFixture(ref, 1500); err != nil {
		t.Fatal(err)
	}
	for _, d := range []int{1, 2, runtime.NumCPU()} {
		db, dir := spillDB(t, 4096, d, morsel)
		for _, sql := range spillJoinCorpus {
			want, err := ref.Query(sql)
			if err != nil {
				t.Fatalf("reference: %s: %v", sql, err)
			}
			got, err := db.Query(sql)
			if err != nil {
				t.Fatalf("spill par=%d: %s: %v", d, sql, err)
			}
			tablesIdentical(t, sql, want, got, "in-memory", fmt.Sprintf("spill par=%d", d))
		}
		assertNoSpillResidue(t, dir)
	}
}

// TestSpillJoinReportsStats checks that a budget-crossing join records
// spill stats on its plan node, both standalone and under the streamed
// join→aggregate path (where the aggregate node must spill too).
func TestSpillJoinReportsStats(t *testing.T) {
	db, dir := spillDB(t, 4096, 2, 128)

	_, qs, err := db.QueryWithStats(`SELECT a.id, b.score FROM t a JOIN u b ON a.id = b.id ORDER BY a.id, b.score`)
	if err != nil {
		t.Fatal(err)
	}
	var joinSpills bool
	qs.Root.Walk(func(n *PlanNode) {
		if n.Op == "join" && n.SpillParts > 0 {
			joinSpills = true
		}
	})
	if !joinSpills {
		t.Fatalf("standalone join did not record spill stats:\n%s", qs.Root)
	}
	if qs.SpillBytes <= 0 {
		t.Fatalf("join SpillBytes = %d, want > 0", qs.SpillBytes)
	}

	_, qs, err = db.QueryWithStats(`SELECT b.site, count(*) AS n, sum(a.x) AS s FROM t a JOIN u b ON a.id = b.id WHERE a.x > b.score GROUP BY b.site ORDER BY b.site`)
	if err != nil {
		t.Fatal(err)
	}
	var joinNode, aggNode *PlanNode
	qs.Root.Walk(func(n *PlanNode) {
		switch n.Op {
		case "join":
			joinNode = n
		case "aggregate":
			aggNode = n
		}
	})
	if joinNode == nil || joinNode.SpillParts <= 0 {
		t.Fatalf("join node missing spill stats:\n%s", qs.Root)
	}
	if aggNode == nil || aggNode.SpillParts <= 0 {
		t.Fatalf("aggregate node missing spill stats (stream path not taken?):\n%s", qs.Root)
	}
	if !aggNode.Fused {
		t.Fatalf("streamed join→aggregate should mark the aggregate fused:\n%s", qs.Root)
	}
	rendered := strings.Join(qs.Root.Render(true), "\n")
	if !strings.Contains(rendered, "[spill=") {
		t.Fatalf("EXPLAIN ANALYZE missing [spill=...] bracket:\n%s", rendered)
	}
	assertNoSpillResidue(t, dir)
}

// TestSpillJoinAggMemoryBudget is the headline acceptance check: a
// 1M-row join feeding a grouped aggregate under an 8 MB budget must
// complete via spill, report SpillBytes > 0, return bit-identical rows,
// and peak at least 4x below the unbudgeted run.
func TestSpillJoinAggMemoryBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row spill acceptance check")
	}
	const rows = 1_000_000
	build := func(db *DB) {
		l := NewTable(Schema{
			{Name: "id", Type: Int64},
			{Name: "x", Type: Float64},
			{Name: "y", Type: Float64},
		})
		r := NewTable(Schema{
			{Name: "id", Type: Int64},
			{Name: "k", Type: String},
		})
		for i := 0; i < rows; i++ {
			f := float64(i%9973) / 9973
			if err := l.AppendRow(int64(i), f*30, f); err != nil {
				t.Fatal(err)
			}
			if err := r.AppendRow(int64(i), fmt.Sprintf("site-%d", i%16)); err != nil {
				t.Fatal(err)
			}
		}
		db.RegisterTable("l", l)
		db.RegisterTable("r", r)
	}
	sql := `SELECT r.k AS k, sum(l.x) AS s, count(*) AS n FROM l JOIN r ON l.id = r.id GROUP BY r.k ORDER BY k`

	ref := NewDB()
	build(ref)
	want, refStats, err := ref.QueryWithStats(sql)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	db := NewDB(WithQueryMemLimit(8<<20), WithSpillDir(dir))
	build(db)
	got, qs, err := db.QueryWithStats(sql)
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, sql, want, got, "unbudgeted", "8MB budget")
	if qs.SpillBytes <= 0 {
		t.Fatalf("SpillBytes = %d, want > 0", qs.SpillBytes)
	}
	if qs.Verdict != VerdictCompleted {
		t.Fatalf("verdict = %q, want %q", qs.Verdict, VerdictCompleted)
	}
	if qs.MemPeakBytes <= 0 || refStats.MemPeakBytes <= 0 {
		t.Fatalf("missing peaks: budgeted %d, unbudgeted %d", qs.MemPeakBytes, refStats.MemPeakBytes)
	}
	if ratio := float64(refStats.MemPeakBytes) / float64(qs.MemPeakBytes); ratio < 4 {
		t.Fatalf("peak reduction %.1fx (budgeted %d vs unbudgeted %d), want >= 4x",
			ratio, qs.MemPeakBytes, refStats.MemPeakBytes)
	}
	t.Logf("peak: unbudgeted %d, budgeted %d (%.1fx); spilled %d bytes across %d partitions",
		refStats.MemPeakBytes, qs.MemPeakBytes,
		float64(refStats.MemPeakBytes)/float64(qs.MemPeakBytes), qs.SpillBytes, qs.SpillPartitions)
	assertNoSpillResidue(t, dir)
}

// TestSpillKeepsHardLimitSemanticsWithoutDir checks that a budget without
// a spill dir still cancels with ErrQueryMemLimit (the pre-spill contract).
func TestSpillKeepsHardLimitSemanticsWithoutDir(t *testing.T) {
	db := NewDB(WithParallelism(2), WithMorselSize(128), WithQueryMemLimit(4096))
	if err := buildParallelFixture(db, 1500); err != nil {
		t.Fatal(err)
	}
	_, _, err := db.QueryWithStats(`SELECT cat, count(*) AS n FROM t GROUP BY cat`)
	if err == nil {
		t.Fatal("tiny hard limit without spill dir: want ErrQueryMemLimit, got nil")
	}
}

// TestSpillCleanupOnError drives a statement that spills during the
// aggregate and then fails in HAVING evaluation; the session spill
// directory must still be removed.
func TestSpillCleanupOnError(t *testing.T) {
	db, dir := spillDB(t, 4096, 2, 128)
	_, err := db.Query(`SELECT cat, count(*) AS n FROM t GROUP BY cat HAVING upper(n) > 'x'`)
	if err == nil {
		t.Fatal("want HAVING type error, got nil")
	}
	assertNoSpillResidue(t, dir)
}

// TestSpillCleanupOnCancel cancels a spilling statement mid-flight and
// checks no run files outlive the query.
func TestSpillCleanupOnCancel(t *testing.T) {
	db, dir := spillDB(t, 4096, 2, 128)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		// Cancel as soon as the statement registers (or immediately if the
		// registry never sees it — either way the query must terminate).
		deadline := time.After(2 * time.Second)
		for {
			select {
			case <-deadline:
				cancel()
				return
			default:
			}
			if len(Queries.List()) > 0 {
				cancel()
				return
			}
		}
	}()
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := db.QueryCtx(ctx, `SELECT cat, count(DISTINCT id) AS n FROM t GROUP BY cat`); err != nil {
				return // cancelled — good enough
			}
		}
	}()
	<-done
	cancel()
	assertNoSpillResidue(t, dir)
}
