package engine

import "sort"

// Parallel ORDER BY: per-morsel sort on the shared worker pool followed by
// parallel pairwise run merging. Bit-identical to the serial path by
// construction — both produce the unique permutation ordering rows by
// (ORDER BY keys, global row index): the serial sort.SliceStable resolves
// key ties by input position, and here each morsel run is sorted with an
// explicit global-row-index tie-break, which the merge preserves across
// runs. The comparator is total (compareRows gives NULLs and NaNs fixed
// positions), so that permutation is well defined.

// execOrderByPar sorts t by keys, fanning per-morsel sorts and run merges
// across the pool when the input is large enough; small inputs take the
// serial path. sg (nullable) receives the fan-out degree for EXPLAIN.
func execOrderByPar(ec *ExecContext, keys []OrderItem, t *Table, sg *stage) (*Table, error) {
	n := t.NumRows()
	ms := ec.morselsOf(n)
	degree := ec.degreeFor(len(ms))
	if degree <= 1 {
		return execOrderBy(keys, t)
	}
	vecs := make([]*Vector, len(keys))
	for i, k := range keys {
		v, err := Eval(k.Expr, t)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	less := func(a, b int32) bool {
		ia, ib := int(a), int(b)
		for k, v := range vecs {
			c := compareRows(v, ia, ib)
			if c == 0 {
				continue
			}
			if keys[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return a < b // global row index: reproduces the stable sort's tie order
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	node := sg.planNode()
	runs := make([][]int32, len(ms))
	if err := ec.parallelFor(len(ms), func(mi int) error {
		run := idx[ms[mi].lo:ms[mi].hi]
		sort.Slice(run, func(a, b int) bool { return less(run[a], run[b]) })
		runs[mi] = run
		if node != nil {
			node.AddMorsels(1)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	// Merge adjacent run pairs in rounds; pairs within a round merge
	// concurrently. Pairing is by run index, so the merge tree — and with
	// the total comparator, the output — is independent of scheduling.
	for len(runs) > 1 {
		next := make([][]int32, (len(runs)+1)/2)
		if err := ec.parallelFor(len(next), func(i int) error {
			if 2*i+1 == len(runs) {
				next[i] = runs[2*i]
				return nil
			}
			next[i] = mergeRuns(runs[2*i], runs[2*i+1], less)
			return nil
		}); err != nil {
			return nil, err
		}
		runs = next
	}
	sg.setParallelism(degree)
	return t.Gather(runs[0]), nil
}

// mergeRuns merges two sorted runs under a total order.
func mergeRuns(a, b []int32, less func(x, y int32) bool) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
