package engine

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
)

// The parallel/serial equivalence property: for every query in the corpus,
// the morsel-parallel executor must produce bit-identical results at
// parallelism 1 (the serial oracle), 2, and NumCPU. The determinism comes
// from fixing the morsel decomposition and the combine order, so the test
// uses a small morsel size (128) to force many morsels even on small
// tables, and runs under -race in `make check` to shake out data races.

// buildParallelFixture registers deterministic tables exercising every
// column type, NULLs in every column, and enough rows to span many morsels.
func buildParallelFixture(db *DB, rows int) error {
	t := NewTable(Schema{
		{Name: "id", Type: Int64},
		{Name: "x", Type: Float64},
		{Name: "y", Type: Float64},
		{Name: "cat", Type: String},
		{Name: "flag", Type: Bool},
	})
	// "a|" and "\x00N" pin the key-encoding collision bug forever: under the
	// old stringified keys ("%v|" with a "\x00N|" NULL sentinel) they collide
	// with neighbouring tuples and with NULL; the typed kernels must keep
	// them distinct at every parallelism degree.
	cats := []string{"cn", "mci", "ad", "a|", "\x00N"}
	seed := uint64(42)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 11
	}
	for i := 0; i < rows; i++ {
		var x, y, cat, flag any
		x = float64(next()%10000)/1000.0 - 5
		y = float64(next()%10000) / 700.0
		cat = cats[next()%uint64(len(cats))]
		flag = next()%3 == 0
		if next()%17 == 0 {
			x = nil
		}
		if next()%23 == 0 {
			y = nil
		}
		if next()%19 == 0 {
			cat = nil
		}
		if next()%29 == 0 {
			flag = nil
		}
		if err := t.AppendRow(int64(i), x, y, cat, flag); err != nil {
			return err
		}
	}
	db.RegisterTable("t", t)

	u := NewTable(Schema{
		{Name: "id", Type: Int64},
		{Name: "score", Type: Float64},
		{Name: "site", Type: String},
	})
	for i := 0; i < rows; i++ {
		// Skewed keys: every third id missing, some ids duplicated.
		if i%3 == 0 {
			continue
		}
		var id any = int64(i)
		if i%31 == 0 {
			id = nil
		}
		if err := u.AppendRow(id, float64(next()%3000)/100.0, fmt.Sprintf("s%d", next()%4)); err != nil {
			return err
		}
		if i%11 == 0 {
			if err := u.AppendRow(int64(i), float64(next()%3000)/100.0, "dup"); err != nil {
				return err
			}
		}
	}
	db.RegisterTable("u", u)
	return nil
}

// buildMergeFixture registers a 3-part merge table over per-part DBs that
// share the outer DB's execution configuration.
func buildMergeFixture(db *DB, opts ...Option) error {
	schema := Schema{
		{Name: "hospital", Type: String},
		{Name: "age", Type: Float64},
		{Name: "mmse", Type: Float64},
	}
	mt := &MergeTable{Schema: schema, TableName: "cohort"}
	seed := uint64(7)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 11
	}
	for p := 0; p < 3; p++ {
		pdb := NewDB(opts...)
		pt := NewTable(schema)
		for i := 0; i < 500; i++ {
			var age any = 50 + float64(next()%400)/10.0
			if next()%13 == 0 {
				age = nil
			}
			if err := pt.AppendRow(fmt.Sprintf("h%d", p), age, float64(next()%300)/10.0); err != nil {
				return err
			}
		}
		pdb.RegisterTable("cohort", pt)
		mt.Parts = append(mt.Parts, &LocalPart{Name: fmt.Sprintf("h%d", p), DB: pdb})
	}
	db.RegisterMerge("cohort", mt)
	return nil
}

// parallelCorpus is the generated-SELECT corpus: filters, projections,
// group-bys over every aggregate, joins, and ORDER BY/LIMIT tails.
var parallelCorpus = []string{
	`SELECT * FROM t WHERE x > 0.5`,
	`SELECT id, x * 2 + 1 AS x2, upper(cat) AS c FROM t WHERE NOT flag AND y < 10`,
	`SELECT * FROM t WHERE cat IN ('cn', 'ad') AND x IS NOT NULL LIMIT 40 OFFSET 13`,
	`SELECT count(*) AS n, count(x) AS nx, count(DISTINCT cat) AS dc FROM t`,
	`SELECT sum(x) AS s, avg(x) AS m, min(x) AS lo, max(x) AS hi, stddev(x) AS sd, variance(y) AS vy FROM t`,
	`SELECT corr(x, y) AS r, median(x) AS md, quantile(x, 0.9) AS q90 FROM t`,
	`SELECT min(cat) AS lo, max(cat) AS hi FROM t`,
	`SELECT cat, count(*) AS n, sum(x) AS s, avg(y) AS m FROM t GROUP BY cat ORDER BY cat`,
	`SELECT cat, flag, count(*) AS n, stddev(x) AS sd FROM t GROUP BY cat, flag ORDER BY cat, flag`,
	`SELECT cat, avg(x) AS m FROM t WHERE y > 2 GROUP BY cat HAVING count(*) > 10 ORDER BY m DESC`,
	`SELECT cat, median(x) AS md, count(DISTINCT id) AS ids FROM t GROUP BY cat ORDER BY cat`,
	`SELECT a.id, a.x, b.score FROM t a JOIN u b ON a.id = b.id WHERE a.x > -1 ORDER BY a.id, b.score`,
	`SELECT b.site, count(*) AS n, avg(a.x) AS m FROM t a JOIN u b ON a.id = b.id GROUP BY b.site ORDER BY b.site`,
	`SELECT a.id, b.score FROM t a LEFT JOIN u b ON a.id = b.id WHERE a.flag ORDER BY a.id, b.score`,
	`SELECT x, y FROM t WHERE flag ORDER BY x DESC, id LIMIT 25`,
}

var mergeCorpus = []string{
	`SELECT hospital, avg(age) AS m, count(*) AS n FROM cohort GROUP BY hospital ORDER BY hospital`, // pushdown
	`SELECT avg(age) AS m, stddev(mmse) AS sd FROM cohort WHERE age > 60`,                           // pushdown + where
	`SELECT hospital, median(mmse) AS md FROM cohort GROUP BY hospital ORDER BY hospital`,           // materialize
	`SELECT * FROM cohort WHERE mmse > 25 ORDER BY hospital, age, mmse`,                             // materialize rows
}

// tablesIdentical asserts bit-identical results: same schema, same rows,
// same NULL positions, float cells compared by bit pattern.
func tablesIdentical(t *testing.T, sql string, a, b *Table, labelA, labelB string) {
	t.Helper()
	if !a.Schema().Equal(b.Schema()) {
		t.Fatalf("%s: schema mismatch %s=%v %s=%v", sql, labelA, a.Schema().Names(), labelB, b.Schema().Names())
	}
	if a.NumRows() != b.NumRows() {
		t.Fatalf("%s: row count %s=%d %s=%d", sql, labelA, a.NumRows(), labelB, b.NumRows())
	}
	for i := 0; i < a.NumRows(); i++ {
		for j := 0; j < a.NumCols(); j++ {
			ca, cb := a.Col(j), b.Col(j)
			if ca.IsNull(i) != cb.IsNull(i) {
				t.Fatalf("%s: row %d col %s NULL mismatch: %s=%v %s=%v",
					sql, i, a.Schema()[j].Name, labelA, ca.IsNull(i), labelB, cb.IsNull(i))
			}
			if ca.IsNull(i) {
				continue
			}
			var same bool
			if ca.Type() == Float64 {
				same = math.Float64bits(ca.Float64s()[i]) == math.Float64bits(cb.Float64s()[i])
			} else {
				same = fmt.Sprint(ca.Value(i)) == fmt.Sprint(cb.Value(i))
			}
			if !same {
				t.Fatalf("%s: row %d col %s differs: %s=%v %s=%v",
					sql, i, a.Schema()[j].Name, labelA, ca.Value(i), labelB, cb.Value(i))
			}
		}
	}
}

func TestParallelSerialEquivalence(t *testing.T) {
	const morsel = 128 // many morsels over the ~1500-row fixture
	degrees := []int{1, 2, runtime.NumCPU()}
	dbs := make([]*DB, len(degrees))
	for i, d := range degrees {
		dbs[i] = NewDB(WithParallelism(d), WithMorselSize(morsel))
		if err := buildParallelFixture(dbs[i], 1500); err != nil {
			t.Fatal(err)
		}
	}
	for _, sql := range parallelCorpus {
		ref, err := dbs[0].Query(sql)
		if err != nil {
			t.Fatalf("parallelism 1: %s: %v", sql, err)
		}
		if ref.NumRows() == 0 {
			t.Fatalf("%s: corpus query returned no rows — not a useful equivalence case", sql)
		}
		for i := 1; i < len(degrees); i++ {
			got, err := dbs[i].Query(sql)
			if err != nil {
				t.Fatalf("parallelism %d: %s: %v", degrees[i], sql, err)
			}
			tablesIdentical(t, sql, ref, got, "par=1", fmt.Sprintf("par=%d", degrees[i]))
		}
	}
}

func TestParallelSerialEquivalenceMerge(t *testing.T) {
	const morsel = 128
	degrees := []int{1, 2, runtime.NumCPU()}
	dbs := make([]*DB, len(degrees))
	for i, d := range degrees {
		dbs[i] = NewDB(WithParallelism(d), WithMorselSize(morsel))
		if err := buildMergeFixture(dbs[i], WithParallelism(d), WithMorselSize(morsel)); err != nil {
			t.Fatal(err)
		}
	}
	for _, sql := range mergeCorpus {
		ref, err := dbs[0].Query(sql)
		if err != nil {
			t.Fatalf("parallelism 1: %s: %v", sql, err)
		}
		for i := 1; i < len(degrees); i++ {
			got, err := dbs[i].Query(sql)
			if err != nil {
				t.Fatalf("parallelism %d: %s: %v", degrees[i], sql, err)
			}
			tablesIdentical(t, sql, ref, got, "par=1", fmt.Sprintf("par=%d", degrees[i]))
		}
	}
}

// TestParallelismIsObservable pins the observability surface: EXPLAIN
// ANALYZE must report the fan-out degree and morsel count on parallel
// stages, plain EXPLAIN must predict the degree, and both must surface in
// span attributes.
func TestParallelismIsObservable(t *testing.T) {
	db := NewDB(WithParallelism(4), WithMorselSize(128))
	if err := buildParallelFixture(db, 1500); err != nil {
		t.Fatal(err)
	}
	_, qs, err := db.QueryWithStats(`EXPLAIN ANALYZE SELECT cat, avg(x) AS m FROM t WHERE y > 1 GROUP BY cat`)
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string]*PlanNode{}
	qs.Root.Walk(func(n *PlanNode) { byOp[n.Op] = n })
	for _, op := range []string{"filter", "aggregate"} {
		n := byOp[op]
		if n == nil {
			t.Fatalf("no %s node in plan:\n%s", op, qs.Root)
		}
		if n.Parallelism != 4 {
			t.Errorf("%s Parallelism = %d, want 4", op, n.Parallelism)
		}
		if n.Morsels < 2 {
			t.Errorf("%s Morsels = %d, want >= 2 (1500 rows / 128-row morsels)", op, n.Morsels)
		}
		attrs := n.Attrs()
		if attrs["parallelism"] != "4" {
			t.Errorf("%s attrs missing parallelism: %v", op, attrs)
		}
		if attrs["morsels"] == "" {
			t.Errorf("%s attrs missing morsels: %v", op, attrs)
		}
	}
	if line := qs.Root.Render(true); !strings.Contains(strings.Join(line, "\n"), "par=4") {
		t.Errorf("EXPLAIN ANALYZE rendering does not show parallelism:\n%s", strings.Join(line, "\n"))
	}

	// Plain EXPLAIN predicts the degree from catalog row counts.
	res, err := db.Query(`EXPLAIN SELECT cat, avg(x) AS m FROM t WHERE y > 1 GROUP BY cat`)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for i := 0; i < res.NumRows(); i++ {
		lines = append(lines, res.Col(0).StringAt(i))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "[par=4]") {
		t.Errorf("plain EXPLAIN does not predict parallelism:\n%s", joined)
	}
	if strings.Contains(joined, "rows_in=") {
		t.Errorf("plain EXPLAIN must not carry measured stats:\n%s", joined)
	}
}

// TestParallelErrorPropagation: an evaluation error inside one morsel must
// surface exactly like the serial path's error, at every degree.
func TestParallelErrorPropagation(t *testing.T) {
	for _, d := range []int{1, 2, runtime.NumCPU()} {
		db := NewDB(WithParallelism(d), WithMorselSize(128))
		if err := buildParallelFixture(db, 1000); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Query(`SELECT * FROM t WHERE nope > 1`); err == nil {
			t.Errorf("parallelism %d: filter over unknown column did not error", d)
		}
		if _, err := db.Query(`SELECT quantile(x, y) AS q FROM t`); err == nil {
			t.Errorf("parallelism %d: non-literal quantile fraction did not error", d)
		}
		// Empty input still validates aggregate arguments.
		if _, err := db.Query(`SELECT corr(x) AS r FROM t WHERE x > 1e18`); err == nil {
			t.Errorf("parallelism %d: corr arity error suppressed on empty input", d)
		}
	}
}

func TestParallelForPanicPropagates(t *testing.T) {
	ec := &ExecContext{Parallelism: 4, MorselSize: 64}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in a morsel task did not propagate to the caller")
		}
	}()
	_ = ec.parallelFor(64, func(i int) error {
		if i == 7 {
			panic("boom")
		}
		return nil
	})
}

func TestMorselDecompositionIgnoresParallelism(t *testing.T) {
	a := &ExecContext{Parallelism: 1, MorselSize: 256}
	b := &ExecContext{Parallelism: 16, MorselSize: 256}
	ma, mb := a.morselsOf(10_000), b.morselsOf(10_000)
	if len(ma) != len(mb) {
		t.Fatalf("morsel count differs by degree: %d vs %d", len(ma), len(mb))
	}
	for i := range ma {
		if ma[i] != mb[i] {
			t.Fatalf("morsel %d differs: %v vs %v", i, ma[i], mb[i])
		}
	}
	if len(ma) != 40 {
		t.Errorf("10000 rows / 256 = %d morsels, want 40", len(ma))
	}
	if last := ma[len(ma)-1]; last.hi != 10_000 {
		t.Errorf("last morsel ends at %d, want 10000", last.hi)
	}
}

func TestMorselSizeRoundsToWordMultiple(t *testing.T) {
	for in, want := range map[int]int{1: 64, 64: 64, 65: 128, 100: 128, 4096: 4096} {
		if got := roundMorselSize(in); got != want {
			t.Errorf("roundMorselSize(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestVectorSliceAndGatherOuter(t *testing.T) {
	v := NewVector(String)
	for i := 0; i < 200; i++ {
		if i%7 == 0 {
			v.AppendNull()
		} else {
			v.AppendString(fmt.Sprintf("v%d", i%5))
		}
	}
	s := v.Slice(64, 200) // word-aligned: zero-copy view
	if s.Len() != 136 {
		t.Fatalf("slice len = %d, want 136", s.Len())
	}
	for i := 0; i < s.Len(); i++ {
		if s.IsNull(i) != v.IsNull(64+i) {
			t.Fatalf("slice row %d null mismatch", i)
		}
		if !s.IsNull(i) && s.StringAt(i) != v.StringAt(64+i) {
			t.Fatalf("slice row %d = %q, want %q", i, s.StringAt(i), v.StringAt(64+i))
		}
	}

	out := v.GatherOuter([]int32{3, -1, 8, -1, 0})
	if out.Len() != 5 {
		t.Fatalf("GatherOuter len = %d", out.Len())
	}
	if !out.IsNull(1) || !out.IsNull(3) {
		t.Error("GatherOuter -1 rows must be NULL")
	}
	if out.IsNull(0) || out.StringAt(0) != v.StringAt(3) {
		t.Errorf("GatherOuter row 0 = %v, want %q", out.Value(0), v.StringAt(3))
	}
	if out.StrDict() == v.StrDict() {
		t.Error("GatherOuter must not share (and so never mutates) the source dictionary")
	}
	// Row 4 selects source row 0, which is NULL: null-ness must propagate.
	if !out.IsNull(4) {
		t.Error("GatherOuter must propagate source NULLs")
	}
}

func TestMergeValidMasksSlicedTails(t *testing.T) {
	b := NewBitmap(200)
	for i := 0; i < 200; i += 3 {
		b.Set(i, false)
	}
	s := b.slice(64, 200) // shares words; bits past row 135 are stray
	out := mergeValid(s, nil, 136)
	for i := 0; i < 136; i++ {
		if out.Get(i) != b.Get(64+i) {
			t.Fatalf("row %d: merged validity %v, want %v", i, out.Get(i), b.Get(64+i))
		}
	}
}

func TestConcatTablesMatchesAppend(t *testing.T) {
	schema := Schema{
		{Name: "x", Type: Float64},
		{Name: "s", Type: String},
		{Name: "b", Type: Bool},
	}
	mk := func(start int) *Table {
		p := NewTable(schema)
		for i := 0; i < 100; i++ {
			if i%9 == 0 {
				_ = p.AppendRow(nil, nil, nil)
				continue
			}
			_ = p.AppendRow(float64(start+i), fmt.Sprintf("s%d", (start+i)%6), i%2 == 0)
		}
		return p
	}
	parts := []*Table{mk(0), mk(1000), mk(2000)}
	want := NewTable(schema)
	for _, p := range parts {
		if err := want.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	for _, par := range []int{1, 4} {
		ec := &ExecContext{Parallelism: par, MorselSize: 64}
		got, err := ec.concatTables(schema, parts)
		if err != nil {
			t.Fatal(err)
		}
		tablesIdentical(t, fmt.Sprintf("concat par=%d", par), want, got, "append", "concat")
	}
	// Schema mismatch must error like Append did.
	ec := &ExecContext{}
	if _, err := ec.concatTables(Schema{{Name: "z", Type: Int64}}, parts); err == nil {
		t.Error("concatTables accepted mismatched schemas")
	}
}
