package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Randomized equivalence testing: generated filter+aggregate queries are
// executed through the SQL engine and through a direct reference evaluator
// over the same rows; results must agree. This guards the whole pipeline
// (lexer → parser → planner → vectorized executor) at once.

type refRow struct {
	g    string
	x, y float64
	xNul bool
	yNul bool
}

func randomRows(r *rand.Rand, n int) []refRow {
	groups := []string{"a", "b", "c"}
	rows := make([]refRow, n)
	for i := range rows {
		rows[i] = refRow{
			g:    groups[r.Intn(len(groups))],
			x:    math.Round(r.NormFloat64()*1000) / 100,
			y:    math.Round((r.Float64()*200-100)*100) / 100,
			xNul: r.Intn(10) == 0,
			yNul: r.Intn(10) == 0,
		}
	}
	return rows
}

func tableOf(t *testing.T, rows []refRow) *DB {
	t.Helper()
	tab := NewTable(Schema{{"g", String}, {"x", Float64}, {"y", Float64}})
	for _, r := range rows {
		var xv, yv any = r.x, r.y
		if r.xNul {
			xv = nil
		}
		if r.yNul {
			yv = nil
		}
		if err := tab.AppendRow(r.g, xv, yv); err != nil {
			t.Fatal(err)
		}
	}
	db := NewDB()
	db.RegisterTable("t", tab)
	return db
}

// predicate forms with their reference implementations.
type predicate struct {
	sql string
	ref func(r refRow) bool // complete-cases semantics handled by caller
}

func predicates(thresh float64) []predicate {
	return []predicate{
		{fmt.Sprintf("x > %v", thresh), func(r refRow) bool { return !r.xNul && r.x > thresh }},
		{fmt.Sprintf("x <= %v AND y > %v", thresh, -thresh),
			func(r refRow) bool { return !r.xNul && !r.yNul && r.x <= thresh && r.y > -thresh }},
		{"g IN ('a', 'c')", func(r refRow) bool { return r.g == "a" || r.g == "c" }},
		{fmt.Sprintf("g = 'b' OR x < %v", thresh),
			func(r refRow) bool {
				// SQL 3VL: NULL x makes (x < thresh) unknown, so only g='b' passes.
				if r.g == "b" {
					return true
				}
				return !r.xNul && r.x < thresh
			}},
		{"x IS NOT NULL", func(r refRow) bool { return !r.xNul }},
	}
}

func TestRandomQueryEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		rows := randomRows(r, 50+r.Intn(300))
		db := tableOf(t, rows)
		thresh := math.Round(r.NormFloat64()*500) / 100
		for _, p := range predicates(thresh) {
			sql := fmt.Sprintf(
				"SELECT count(*) AS c, count(x) AS cx, sum(x) AS sx, min(y) AS mny, max(y) AS mxy FROM t WHERE %s", p.sql)
			res, err := db.Query(sql)
			if err != nil {
				t.Fatalf("trial %d %q: %v", trial, sql, err)
			}
			// Reference.
			var c, cx, sx float64
			mny, mxy := math.Inf(1), math.Inf(-1)
			anyY := false
			for _, row := range rows {
				if !p.ref(row) {
					continue
				}
				c++
				if !row.xNul {
					cx++
					sx += row.x
				}
				if !row.yNul {
					anyY = true
					if row.y < mny {
						mny = row.y
					}
					if row.y > mxy {
						mxy = row.y
					}
				}
			}
			gotC := float64(res.ColByName("c").Int64s()[0])
			gotCX := float64(res.ColByName("cx").Int64s()[0])
			if gotC != c || gotCX != cx {
				t.Fatalf("trial %d %q: counts %v/%v, want %v/%v", trial, p.sql, gotC, gotCX, c, cx)
			}
			if cx > 0 {
				if got := res.ColByName("sx").Float64s()[0]; math.Abs(got-sx) > 1e-9 {
					t.Fatalf("trial %d %q: sum %v, want %v", trial, p.sql, got, sx)
				}
			} else if !res.ColByName("sx").IsNull(0) {
				t.Fatalf("trial %d %q: sum over empty should be NULL", trial, p.sql)
			}
			if anyY {
				if got := res.ColByName("mny").Float64s()[0]; got != mny {
					t.Fatalf("trial %d %q: min %v, want %v", trial, p.sql, got, mny)
				}
				if got := res.ColByName("mxy").Float64s()[0]; got != mxy {
					t.Fatalf("trial %d %q: max %v, want %v", trial, p.sql, got, mxy)
				}
			}
		}
	}
}

func TestRandomGroupByEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		rows := randomRows(r, 100+r.Intn(200))
		db := tableOf(t, rows)
		res, err := db.Query(
			"SELECT g, count(*) AS n, avg(x) AS m, stddev_samp(y) AS sd FROM t GROUP BY g ORDER BY g")
		if err != nil {
			t.Fatal(err)
		}
		type agg struct {
			n           float64
			sx, cx      float64
			sy, sy2, cy float64
		}
		ref := map[string]*agg{}
		for _, row := range rows {
			a := ref[row.g]
			if a == nil {
				a = &agg{}
				ref[row.g] = a
			}
			a.n++
			if !row.xNul {
				a.cx++
				a.sx += row.x
			}
			if !row.yNul {
				a.cy++
				a.sy += row.y
				a.sy2 += row.y * row.y
			}
		}
		if res.NumRows() != len(ref) {
			t.Fatalf("trial %d: %d groups, want %d", trial, res.NumRows(), len(ref))
		}
		for i := 0; i < res.NumRows(); i++ {
			g := res.Col(0).StringAt(i)
			a := ref[g]
			if a == nil {
				t.Fatalf("trial %d: unexpected group %q", trial, g)
			}
			if got := float64(res.ColByName("n").Int64s()[i]); got != a.n {
				t.Fatalf("trial %d group %s: n=%v want %v", trial, g, got, a.n)
			}
			if a.cx > 0 {
				want := a.sx / a.cx
				if got := res.ColByName("m").Float64s()[i]; math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d group %s: avg=%v want %v", trial, g, got, want)
				}
			}
			if a.cy >= 2 {
				want := math.Sqrt((a.sy2 - a.sy*a.sy/a.cy) / (a.cy - 1))
				if got := res.ColByName("sd").Float64s()[i]; math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d group %s: sd=%v want %v", trial, g, got, want)
				}
			}
		}
	}
}

// ORDER BY + LIMIT/OFFSET against a reference sort.
func TestRandomOrderByEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		rows := randomRows(r, 30+r.Intn(100))
		db := tableOf(t, rows)
		limit := 1 + r.Intn(20)
		offset := r.Intn(10)
		res, err := db.Query(fmt.Sprintf(
			"SELECT x FROM t WHERE x IS NOT NULL ORDER BY x DESC LIMIT %d OFFSET %d", limit, offset))
		if err != nil {
			t.Fatal(err)
		}
		var xs []float64
		for _, row := range rows {
			if !row.xNul {
				xs = append(xs, row.x)
			}
		}
		// Reference: sort descending.
		for i := 0; i < len(xs); i++ {
			for j := i + 1; j < len(xs); j++ {
				if xs[j] > xs[i] {
					xs[i], xs[j] = xs[j], xs[i]
				}
			}
		}
		lo := offset
		if lo > len(xs) {
			lo = len(xs)
		}
		hi := lo + limit
		if hi > len(xs) {
			hi = len(xs)
		}
		want := xs[lo:hi]
		if res.NumRows() != len(want) {
			t.Fatalf("trial %d: %d rows, want %d", trial, res.NumRows(), len(want))
		}
		for i, w := range want {
			if got := res.Col(0).Float64s()[i]; got != w {
				t.Fatalf("trial %d row %d: %v want %v", trial, i, got, w)
			}
		}
	}
}

// ---- Expression rendering round trip ------------------------------------
//
// Rendered expressions cross the federation boundary as SQL text, so for
// every parser-reachable expression e the property
//
//	ParseExpr(e.String()).String() == e.String()
//
// must hold. The generator below emits only parser-reachable shapes:
// scalar literals are non-negative (a leading '-' re-parses as a Unary),
// negative literals appear only inside IN lists, function names are
// lower-case (the parser folds case), and comparison uses <> (the only
// inequality token the lexer knows).

// exprGen derives a deterministic expression from a byte stream; exhausted
// input yields zeros, keeping generation total.
type exprGen struct {
	data []byte
	pos  int
}

func (g *exprGen) next() byte {
	if g.pos >= len(g.data) {
		return 0
	}
	b := g.data[g.pos]
	g.pos++
	return b
}

func (g *exprGen) pick(n int) int { return int(g.next()) % n }

var genColNames = []string{
	"x", "y", "g", "t.x", "patient id", "select", "a.b.c", "_v9", "MixedCase",
}

var genFloats = []float64{
	0, 1, 0.5, 1e21, 5e-324, math.MaxFloat64, 1.0 / 3.0, 123456789.123456789,
}

var genStrings = []string{"", "AD", "it's", `a"b`, "ñ"}

func (g *exprGen) scalarLit() Expr {
	switch g.pick(4) {
	case 0:
		return &Lit{Val: int64(g.pick(1000))}
	case 1:
		return &Lit{Val: genFloats[g.pick(len(genFloats))]}
	case 2:
		return &Lit{Val: genStrings[g.pick(len(genStrings))]}
	default:
		return &Lit{IsNull: true}
	}
}

// inLit may be negative: IN lists parse literal values with an optional
// leading sign.
func (g *exprGen) inLit() Expr {
	switch g.pick(3) {
	case 0:
		n := int64(g.pick(1000))
		if g.pick(2) == 0 {
			n = -n
		}
		return &Lit{Val: n}
	case 1:
		f := genFloats[g.pick(len(genFloats))]
		if g.pick(2) == 0 {
			f = -f
		}
		return &Lit{Val: f}
	default:
		return &Lit{Val: genStrings[g.pick(len(genStrings))]}
	}
}

var genBinOps = []string{"+", "-", "*", "/", "%", "||", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}

func (g *exprGen) expr(depth int) Expr {
	if depth <= 0 {
		if g.pick(2) == 0 {
			return &ColRef{Name: genColNames[g.pick(len(genColNames))]}
		}
		return g.scalarLit()
	}
	switch g.pick(8) {
	case 0:
		return &ColRef{Name: genColNames[g.pick(len(genColNames))]}
	case 1:
		return g.scalarLit()
	case 2:
		op := "-"
		if g.pick(2) == 0 {
			op = "NOT"
		}
		return &Unary{Op: op, X: g.expr(depth - 1)}
	case 3:
		return &Binary{
			Op: genBinOps[g.pick(len(genBinOps))],
			L:  g.expr(depth - 1),
			R:  g.expr(depth - 1),
		}
	case 4:
		names := []string{"abs", "round", "coalesce", "lower"}
		c := &Call{Name: names[g.pick(len(names))]}
		for i, n := 0, 1+g.pick(2); i < n; i++ {
			c.Args = append(c.Args, g.expr(depth-1))
		}
		return c
	case 5:
		return &IsNullExpr{X: g.expr(depth - 1), Not: g.pick(2) == 0}
	case 6:
		in := &InExpr{X: g.expr(depth - 1), Not: g.pick(2) == 0}
		for i, n := 0, 1+g.pick(3); i < n; i++ {
			in.List = append(in.List, g.inLit())
		}
		return in
	default:
		c := &CaseExpr{}
		for i, n := 0, 1+g.pick(2); i < n; i++ {
			c.Whens = append(c.Whens, CaseWhen{Cond: g.expr(depth - 1), Then: g.expr(depth - 1)})
		}
		if g.pick(2) == 0 {
			c.Else = g.expr(depth - 1)
		}
		return c
	}
}

func FuzzExprRoundTrip(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{3, 1, 5})
	f.Add([]byte("deadbeef"))
	f.Add([]byte{2, 1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Add([]byte{6, 0, 6, 1, 6, 2, 7, 7, 7, 255, 254, 253})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &exprGen{data: data}
		e := g.expr(3)
		s1 := e.String()
		p, err := ParseExpr(s1)
		if err != nil {
			t.Fatalf("generated expression does not parse: %q: %v", s1, err)
		}
		if s2 := p.String(); s2 != s1 {
			t.Fatalf("round trip diverged:\n rendered %q\n reparsed %q", s1, s2)
		}
	})
}

// TestLitFloatRoundTrip pins the float rendering fix: every boundary value
// must re-parse to the bit-identical float64. The old fmt.Sprint rendering
// emitted whole floats like 1.0 as "1", silently re-typing them to int64
// across the federation boundary.
func TestLitFloatRoundTrip(t *testing.T) {
	vals := []float64{
		0, 1, 2.5, 1e21, 1e-21, 5e-324, math.MaxFloat64,
		math.SmallestNonzeroFloat64, 1.0 / 3.0, 0.1,
		123456789.123456789, 1.7976931348623157e308,
	}
	for _, v := range vals {
		lit := &Lit{Val: v}
		s := lit.String()
		p, err := ParseExpr(s)
		if err != nil {
			t.Fatalf("%v rendered %q: %v", v, s, err)
		}
		got, ok := p.(*Lit)
		if !ok {
			t.Fatalf("%v rendered %q re-parsed as %T, want *Lit", v, s, p)
		}
		f, ok := got.Val.(float64)
		if !ok {
			t.Fatalf("%v rendered %q re-typed to %T across the round trip", v, s, got.Val)
		}
		if math.Float64bits(f) != math.Float64bits(v) {
			t.Fatalf("%v rendered %q re-parsed to %v (bits differ)", v, s, f)
		}
	}
	// Negative floats appear as Unary over a positive literal; the literal
	// itself still round-trips.
	if s := (&Lit{Val: -2.5}).String(); s != "-2.5" {
		t.Fatalf("negative literal renders %q, want -2.5 (IN lists depend on it)", s)
	}
}

// TestColRefQuotedRendering pins the identifier-quoting fix.
func TestColRefQuotedRendering(t *testing.T) {
	cases := map[string]string{
		"age":         "age",
		"t.x":         "t.x",
		"patient id":  `"patient id"`,
		"select":      `"select"`,
		"a.b.c":       `a."b.c"`,
		`we"ird`:      `"we""ird"`,
		"group.order": `"group"."order"`,
	}
	for name, want := range cases {
		c := &ColRef{Name: name}
		if got := c.String(); got != want {
			t.Errorf("ColRef(%q).String() = %q, want %q", name, got, want)
		}
		p, err := ParseExpr(c.String())
		if err != nil {
			t.Errorf("ColRef(%q) rendering %q does not parse: %v", name, c.String(), err)
			continue
		}
		r, ok := p.(*ColRef)
		if !ok || r.Name != name {
			t.Errorf("ColRef(%q) re-parsed to %#v", name, p)
		}
	}
}
