package engine

import (
	"math"
	"strings"
	"testing"
)

// mustDB builds a DB with a small patients table used across SQL tests.
func mustDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	stmts := []string{
		`CREATE TABLE patients (id BIGINT, dataset VARCHAR, age DOUBLE, mmse DOUBLE, diagnosis VARCHAR, female BOOLEAN)`,
		`INSERT INTO patients VALUES
			(1, 'edsd', 71.5, 28, 'CN', true),
			(2, 'edsd', 68.0, 21, 'MCI', false),
			(3, 'edsd', 80.2, 14, 'AD', true),
			(4, 'ppmi', 62.3, 29, 'CN', false),
			(5, 'ppmi', 75.0, NULL, 'AD', true),
			(6, 'ppmi', 77.7, 18, 'AD', false)`,
	}
	for _, s := range stmts {
		if _, err := db.Query(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

func q(t *testing.T, db *DB, sql string) *Table {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("query %q: %v", sql, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT * FROM patients`)
	if res.NumRows() != 6 || res.NumCols() != 6 {
		t.Fatalf("dims %dx%d", res.NumRows(), res.NumCols())
	}
}

func TestWhereFilter(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT id FROM patients WHERE age > 70 AND diagnosis = 'AD'`)
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", res.NumRows())
	}
}

func TestWhereNullSemantics(t *testing.T) {
	db := mustDB(t)
	// mmse IS NULL for patient 5; comparisons with NULL must not match.
	res := q(t, db, `SELECT id FROM patients WHERE mmse > 0`)
	if res.NumRows() != 5 {
		t.Fatalf("rows = %d, want 5 (NULL must not satisfy >)", res.NumRows())
	}
	res = q(t, db, `SELECT id FROM patients WHERE mmse IS NULL`)
	if res.NumRows() != 1 || res.Col(0).Int64s()[0] != 5 {
		t.Fatalf("IS NULL: %v", res)
	}
	res = q(t, db, `SELECT id FROM patients WHERE mmse IS NOT NULL`)
	if res.NumRows() != 5 {
		t.Fatalf("IS NOT NULL rows = %d", res.NumRows())
	}
}

func TestProjectionExpressions(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT id, age * 2 AS dbl, sqrt(age) AS r FROM patients WHERE id = 1`)
	if res.ColByName("dbl").Float64s()[0] != 143 {
		t.Fatalf("dbl = %v", res.ColByName("dbl").Float64s()[0])
	}
	if got := res.ColByName("r").Float64s()[0]; math.Abs(got-math.Sqrt(71.5)) > 1e-12 {
		t.Fatalf("sqrt = %v", got)
	}
}

func TestGlobalAggregates(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT count(*) AS n, count(mmse) AS nm, avg(age) AS m, min(age) AS lo, max(age) AS hi, sum(age) AS s FROM patients`)
	if res.NumRows() != 1 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if n := res.ColByName("n").Int64s()[0]; n != 6 {
		t.Fatalf("count(*) = %d", n)
	}
	if nm := res.ColByName("nm").Int64s()[0]; nm != 5 {
		t.Fatalf("count(mmse) = %d (NULLs must be skipped)", nm)
	}
	wantMean := (71.5 + 68 + 80.2 + 62.3 + 75 + 77.7) / 6
	if m := res.ColByName("m").Float64s()[0]; math.Abs(m-wantMean) > 1e-12 {
		t.Fatalf("avg = %v, want %v", m, wantMean)
	}
	if lo := res.ColByName("lo").Float64s()[0]; lo != 62.3 {
		t.Fatalf("min = %v", lo)
	}
	if hi := res.ColByName("hi").Float64s()[0]; hi != 80.2 {
		t.Fatalf("max = %v", hi)
	}
}

func TestGroupBy(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT diagnosis, count(*) AS n, avg(age) AS m FROM patients GROUP BY diagnosis ORDER BY diagnosis`)
	if res.NumRows() != 3 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	diag, _ := res.StringColumn("diagnosis")
	if diag[0] != "AD" || diag[1] != "CN" || diag[2] != "MCI" {
		t.Fatalf("order: %v", diag)
	}
	n := res.ColByName("n").Int64s()
	if n[0] != 3 || n[1] != 2 || n[2] != 1 {
		t.Fatalf("counts: %v", n)
	}
	wantAD := (80.2 + 75 + 77.7) / 3
	if m := res.ColByName("m").Float64s()[0]; math.Abs(m-wantAD) > 1e-12 {
		t.Fatalf("AD mean = %v", m)
	}
}

func TestHaving(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT diagnosis, count(*) AS n FROM patients GROUP BY diagnosis HAVING count(*) >= 2 ORDER BY n DESC`)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.Col(0).StringAt(0) != "AD" {
		t.Fatalf("first group = %v", res.Col(0).StringAt(0))
	}
}

func TestOrderByLimitOffset(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT id FROM patients ORDER BY age DESC LIMIT 2 OFFSET 1`)
	ids := res.Col(0).Int64s()
	if len(ids) != 2 || ids[0] != 6 || ids[1] != 5 {
		t.Fatalf("ids = %v", ids)
	}
}

func TestStddevVariance(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT stddev_samp(age) AS sd, var_samp(age) AS v FROM patients WHERE dataset = 'edsd'`)
	// ages 71.5, 68, 80.2
	mean := (71.5 + 68 + 80.2) / 3
	want := ((71.5-mean)*(71.5-mean) + (68-mean)*(68-mean) + (80.2-mean)*(80.2-mean)) / 2
	if v := res.ColByName("v").Float64s()[0]; math.Abs(v-want) > 1e-9 {
		t.Fatalf("var = %v, want %v", v, want)
	}
	if sd := res.ColByName("sd").Float64s()[0]; math.Abs(sd-math.Sqrt(want)) > 1e-9 {
		t.Fatalf("sd = %v", sd)
	}
}

func TestCorrAggregate(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE xy (x DOUBLE, y DOUBLE)`)
	q(t, db, `INSERT INTO xy VALUES (1,2), (2,4), (3,6), (4,8)`)
	res := q(t, db, `SELECT corr(x, y) AS r FROM xy`)
	if r := res.Col(0).Float64s()[0]; math.Abs(r-1) > 1e-12 {
		t.Fatalf("corr = %v, want 1", r)
	}
}

func TestMedianQuantile(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE v (x DOUBLE)`)
	q(t, db, `INSERT INTO v VALUES (1), (2), (3), (4)`)
	res := q(t, db, `SELECT median(x) AS m, quantile(x, 0.25) AS q1 FROM v`)
	if m := res.ColByName("m").Float64s()[0]; m != 2.5 {
		t.Fatalf("median = %v", m)
	}
	if q1 := res.ColByName("q1").Float64s()[0]; q1 != 1.75 {
		t.Fatalf("q1 = %v", q1)
	}
}

func TestCountDistinct(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT count(DISTINCT diagnosis) AS d FROM patients`)
	if d := res.Col(0).Int64s()[0]; d != 3 {
		t.Fatalf("count distinct = %d", d)
	}
}

func TestCaseWhen(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT id, CASE WHEN age >= 75 THEN 'old' WHEN age >= 65 THEN 'mid' ELSE 'young' END AS band FROM patients ORDER BY id`)
	bands, _ := res.StringColumn("band")
	want := []string{"mid", "mid", "old", "young", "old", "old"}
	for i := range want {
		if bands[i] != want[i] {
			t.Fatalf("bands = %v, want %v", bands, want)
		}
	}
}

func TestInAndBetween(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT id FROM patients WHERE diagnosis IN ('AD', 'MCI') ORDER BY id`)
	if res.NumRows() != 4 {
		t.Fatalf("IN rows = %d", res.NumRows())
	}
	res = q(t, db, `SELECT id FROM patients WHERE age BETWEEN 68 AND 76 ORDER BY id`)
	ids := res.Col(0).Int64s()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 2 || ids[2] != 5 {
		t.Fatalf("BETWEEN ids = %v", ids)
	}
	res = q(t, db, `SELECT id FROM patients WHERE diagnosis NOT IN ('AD')`)
	if res.NumRows() != 3 {
		t.Fatalf("NOT IN rows = %d", res.NumRows())
	}
}

func TestBooleanColumnFilter(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT count(*) AS n FROM patients WHERE female = true`)
	if n := res.Col(0).Int64s()[0]; n != 3 {
		t.Fatalf("female count = %d", n)
	}
}

func TestStringFunctions(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT upper(diagnosis) AS u, lower(diagnosis) AS l, length(diagnosis) AS n FROM patients WHERE id = 2`)
	if res.ColByName("u").StringAt(0) != "MCI" || res.ColByName("l").StringAt(0) != "mci" {
		t.Fatal("upper/lower wrong")
	}
	if res.ColByName("n").Int64s()[0] != 3 {
		t.Fatal("length wrong")
	}
}

func TestConcatOperator(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT dataset || '-' || diagnosis AS tag FROM patients WHERE id = 1`)
	if got := res.Col(0).StringAt(0); got != "edsd-CN" {
		t.Fatalf("concat = %q", got)
	}
}

func TestCoalesce(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT coalesce(mmse, -1.0) AS m FROM patients ORDER BY id`)
	m := res.Col(0).Float64s()
	if m[4] != -1 || m[0] != 28 {
		t.Fatalf("coalesce = %v", m)
	}
}

func TestIntegerDivisionAndModulo(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE n (a BIGINT, b BIGINT)`)
	q(t, db, `INSERT INTO n VALUES (7, 2), (7, 0)`)
	res := q(t, db, `SELECT a / b AS d, a % b AS m FROM n`)
	if res.ColByName("d").Int64s()[0] != 3 || res.ColByName("m").Int64s()[0] != 1 {
		t.Fatal("integer division wrong")
	}
	if !res.ColByName("d").IsNull(1) {
		t.Fatal("division by zero should be NULL")
	}
}

func TestInsertWithColumnList(t *testing.T) {
	db := mustDB(t)
	q(t, db, `INSERT INTO patients (id, diagnosis) VALUES (7, 'CN')`)
	res := q(t, db, `SELECT age FROM patients WHERE id = 7`)
	if !res.Col(0).IsNull(0) {
		t.Fatal("unlisted columns should be NULL")
	}
}

func TestDelete(t *testing.T) {
	db := mustDB(t)
	if _, err := db.Query(`DELETE FROM patients WHERE diagnosis = 'AD'`); err != nil {
		t.Fatal(err)
	}
	res := q(t, db, `SELECT count(*) AS n FROM patients`)
	if n := res.Col(0).Int64s()[0]; n != 3 {
		t.Fatalf("after delete: %d", n)
	}
	// Row with NULL predicate must be kept.
	db2 := mustDB(t)
	if _, err := db2.Query(`DELETE FROM patients WHERE mmse < 100`); err != nil {
		t.Fatal(err)
	}
	res = q(t, db2, `SELECT id FROM patients`)
	if res.NumRows() != 1 || res.Col(0).Int64s()[0] != 5 {
		t.Fatalf("NULL-predicate rows must survive DELETE: %d rows", res.NumRows())
	}
}

func TestDropTable(t *testing.T) {
	db := mustDB(t)
	if _, err := db.Query(`DROP TABLE patients`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`SELECT * FROM patients`); err == nil {
		t.Fatal("expected unknown-table error")
	}
	if _, err := db.Query(`DROP TABLE IF EXISTS patients`); err != nil {
		t.Fatalf("IF EXISTS should not error: %v", err)
	}
	if _, err := db.Query(`DROP TABLE patients`); err == nil {
		t.Fatal("expected error without IF EXISTS")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`SELEC * FROM t`,
		`SELECT a FROM t GROUP`,
		`SELECT 'unterminated FROM t`,
		`SELECT a b c FROM t`,
		`INSERT INTO t VALUES (1`,
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestParseExprRoundTrip(t *testing.T) {
	// Every rendered expression must re-parse to the same rendering — this
	// is what lets the merge layer ship expressions to remote parts.
	exprs := []string{
		`((a + b) * 2)`,
		`(age >= 65)`,
		`(diagnosis IN ('AD', 'MCI'))`,
		`(x IS NOT NULL)`,
		`CASE WHEN (a > 1) THEN 'hi' ELSE 'lo' END`,
		`sqrt((x * x))`,
		`(NOT (a = b))`,
		`('it''s' || s)`,
	}
	for _, s := range exprs {
		e, err := ParseExpr(s)
		if err != nil {
			t.Fatalf("ParseExpr(%q): %v", s, err)
		}
		e2, err := ParseExpr(e.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q): %v", e.String(), s, err)
		}
		if e.String() != e2.String() {
			t.Fatalf("round trip changed: %q -> %q", e.String(), e2.String())
		}
	}
}

func TestAggregateInWhereRejected(t *testing.T) {
	db := mustDB(t)
	if _, err := db.Query(`SELECT id FROM patients WHERE sum(age) > 10`); err == nil {
		t.Fatal("aggregate in WHERE must be rejected")
	}
}

func TestEmptyTableAggregates(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE e (x DOUBLE)`)
	res := q(t, db, `SELECT count(*) AS n, sum(x) AS s, avg(x) AS m FROM e`)
	if res.NumRows() != 1 {
		t.Fatalf("global aggregate over empty table must yield one row, got %d", res.NumRows())
	}
	if res.ColByName("n").Int64s()[0] != 0 {
		t.Fatal("count should be 0")
	}
	if !res.ColByName("s").IsNull(0) || !res.ColByName("m").IsNull(0) {
		t.Fatal("sum/avg over empty input should be NULL")
	}
}

func TestGroupByEmptyInput(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE e (g VARCHAR, x DOUBLE)`)
	res := q(t, db, `SELECT g, sum(x) FROM e GROUP BY g`)
	if res.NumRows() != 0 {
		t.Fatalf("grouped aggregate over empty table must yield zero rows, got %d", res.NumRows())
	}
}

func TestTableString(t *testing.T) {
	db := mustDB(t)
	res := q(t, db, `SELECT id, diagnosis FROM patients LIMIT 1`)
	s := res.String()
	if !strings.Contains(s, "id") || !strings.Contains(s, "CN") {
		t.Fatalf("String output:\n%s", s)
	}
}

func TestQuotedIdentifierAndComment(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE t ("weird name" DOUBLE)`)
	q(t, db, `INSERT INTO t VALUES (1.5) -- trailing comment`)
	res := q(t, db, `SELECT "weird name" FROM t`)
	if res.Col(0).Float64s()[0] != 1.5 {
		t.Fatal("quoted identifier failed")
	}
}

func TestMathFunctions(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE v (x DOUBLE)`)
	q(t, db, `INSERT INTO v VALUES (-2.7), (4.0)`)
	res := q(t, db, `SELECT abs(x) AS a, floor(x) AS f, ceil(x) AS c, round(x) AS r, exp(0.0 * x) AS e, pow(x, 2) AS p FROM v`)
	if res.ColByName("a").Float64s()[0] != 2.7 {
		t.Fatal("abs")
	}
	if res.ColByName("f").Float64s()[0] != -3 || res.ColByName("c").Float64s()[0] != -2 {
		t.Fatal("floor/ceil")
	}
	if res.ColByName("r").Float64s()[0] != -3 {
		t.Fatal("round")
	}
	if res.ColByName("e").Float64s()[1] != 1 {
		t.Fatal("exp")
	}
	if res.ColByName("p").Float64s()[1] != 16 {
		t.Fatal("pow")
	}
	// Domain error → NULL.
	res = q(t, db, `SELECT sqrt(x) AS s, ln(x) AS l FROM v`)
	if !res.ColByName("s").IsNull(0) || !res.ColByName("l").IsNull(0) {
		t.Fatal("sqrt/ln of negative should be NULL")
	}
	if res.ColByName("s").Float64s()[1] != 2 {
		t.Fatal("sqrt(4)")
	}
}

func TestCaseWithoutElse(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE v (x DOUBLE)`)
	q(t, db, `INSERT INTO v VALUES (1), (10)`)
	res := q(t, db, `SELECT CASE WHEN x > 5 THEN x END AS big FROM v`)
	if !res.Col(0).IsNull(0) {
		t.Fatal("unmatched CASE without ELSE should be NULL")
	}
	if res.Col(0).Float64s()[1] != 10 {
		t.Fatal("matched CASE value wrong")
	}
}

func TestTrimAndCast(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE v (s VARCHAR)`)
	q(t, db, `INSERT INTO v VALUES ('  3.5  ')`)
	res := q(t, db, `SELECT CAST(trim(s) AS DOUBLE) AS x FROM v`)
	if res.Col(0).Float64s()[0] != 3.5 {
		t.Fatalf("cast(trim) = %v", res.Col(0).Value(0))
	}
}

func TestNotBetween(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE v (x DOUBLE)`)
	q(t, db, `INSERT INTO v VALUES (1), (5), (9)`)
	res := q(t, db, `SELECT x FROM v WHERE x NOT BETWEEN 2 AND 8`)
	if res.NumRows() != 2 {
		t.Fatalf("NOT BETWEEN rows = %d", res.NumRows())
	}
}

func TestStddevZeroVariance(t *testing.T) {
	db := NewDB()
	q(t, db, `CREATE TABLE v (x DOUBLE)`)
	q(t, db, `INSERT INTO v VALUES (5), (5), (5)`)
	res := q(t, db, `SELECT stddev_samp(x) AS sd FROM v`)
	if got := res.Col(0).Float64s()[0]; got != 0 {
		t.Fatalf("sd of constant = %v", got)
	}
}

func TestQueryCount(t *testing.T) {
	db := NewDB()
	before := db.QueryCount()
	q(t, db, `CREATE TABLE v (x DOUBLE)`)
	q(t, db, `INSERT INTO v VALUES (1)`)
	q(t, db, `SELECT x FROM v`)
	if got := db.QueryCount() - before; got != 3 {
		t.Fatalf("QueryCount delta = %d, want 3", got)
	}
}

func TestTableNames(t *testing.T) {
	db := mustDB(t)
	q(t, db, `CREATE TABLE aaa (x DOUBLE)`)
	names := db.TableNames()
	if len(names) != 2 || names[0] != "aaa" || names[1] != "patients" {
		t.Fatalf("TableNames = %v", names)
	}
}

func TestStringComparisonsAndOrdering(t *testing.T) {
	db := mustDB(t)
	// All six comparison operators on strings.
	res := q(t, db, `SELECT count(*) AS n FROM patients WHERE diagnosis >= 'CN' AND diagnosis <= 'MCI' AND diagnosis <> 'XX' AND diagnosis > 'AA' AND diagnosis < 'ZZ'`)
	if n := res.Col(0).Int64s()[0]; n != 3 {
		t.Fatalf("string comparisons matched %d rows", n)
	}
	// ORDER BY over strings (asc + desc) and booleans exercises every
	// compareRows branch.
	res = q(t, db, `SELECT diagnosis FROM patients ORDER BY diagnosis DESC, female ASC LIMIT 1`)
	if res.Col(0).StringAt(0) != "MCI" {
		t.Fatalf("desc first = %v", res.Col(0).StringAt(0))
	}
	res = q(t, db, `SELECT id FROM patients ORDER BY female, mmse`)
	if res.NumRows() != 6 {
		t.Fatal("bool ordering lost rows")
	}
	// NULL mmse sorts first within its bool group.
	res = q(t, db, `SELECT id FROM patients ORDER BY mmse`)
	if res.Col(0).Int64s()[0] != 5 {
		t.Fatalf("NULL should sort first, got id %d", res.Col(0).Int64s()[0])
	}
}

func joinDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	for _, s := range []string{
		`CREATE TABLE subjects (sid BIGINT, site VARCHAR, age DOUBLE)`,
		`INSERT INTO subjects VALUES (1, 'lille', 70), (2, 'lille', 65), (3, 'chuv', 80), (4, 'chuv', 75)`,
		`CREATE TABLE scans (sid BIGINT, volume DOUBLE)`,
		`INSERT INTO scans VALUES (1, 3.1), (1, 3.0), (2, 2.8), (3, 2.2), (9, 1.0)`,
	} {
		q(t, db, s)
	}
	return db
}

func TestInnerJoin(t *testing.T) {
	db := joinDB(t)
	res := q(t, db, `SELECT s.sid, s.age, c.volume FROM subjects s JOIN scans c ON s.sid = c.sid ORDER BY s.sid, c.volume`)
	if res.NumRows() != 4 {
		t.Fatalf("rows = %d, want 4", res.NumRows())
	}
	// Subject 1 matches two scans.
	ids := res.ColByName("s.sid").Int64s()
	if ids[0] != 1 || ids[1] != 1 || ids[2] != 2 || ids[3] != 3 {
		t.Fatalf("ids = %v", ids)
	}
	vols := res.ColByName("c.volume").Float64s()
	if vols[0] != 3.0 || vols[1] != 3.1 {
		t.Fatalf("duplicate-match volumes = %v", vols[:2])
	}
	// Unmatched rows (subject 4, scan sid=9) are dropped.
}

func TestLeftJoin(t *testing.T) {
	db := joinDB(t)
	res := q(t, db, `SELECT s.sid, c.volume FROM subjects s LEFT JOIN scans c ON s.sid = c.sid ORDER BY s.sid`)
	if res.NumRows() != 5 { // 2+1+1 matches + subject 4 padded
		t.Fatalf("rows = %d, want 5", res.NumRows())
	}
	last := res.NumRows() - 1
	if res.ColByName("s.sid").Int64s()[last] != 4 {
		t.Fatal("subject 4 missing from LEFT JOIN")
	}
	if !res.ColByName("c.volume").IsNull(last) {
		t.Fatal("unmatched right side should be NULL")
	}
}

func TestJoinAggregation(t *testing.T) {
	db := joinDB(t)
	res := q(t, db, `SELECT s.site AS site, count(*) AS n, avg(c.volume) AS m FROM subjects s JOIN scans c ON s.sid = c.sid GROUP BY s.site ORDER BY site`)
	if res.NumRows() != 2 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	sites, _ := res.StringColumn("site")
	if sites[0] != "chuv" || sites[1] != "lille" {
		t.Fatalf("sites = %v", sites)
	}
	if n := res.ColByName("n").Int64s()[1]; n != 3 {
		t.Fatalf("lille scan count = %d", n)
	}
	wantLille := (3.1 + 3.0 + 2.8) / 3
	if m := res.ColByName("m").Float64s()[1]; math.Abs(m-wantLille) > 1e-12 {
		t.Fatalf("lille mean = %v", m)
	}
}

func TestJoinUnqualifiedResolution(t *testing.T) {
	db := joinDB(t)
	// age/volume are unambiguous; sid is ambiguous and must error.
	res := q(t, db, `SELECT age, volume FROM subjects s JOIN scans c ON s.sid = c.sid WHERE age > 60 ORDER BY volume`)
	if res.NumRows() != 4 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if _, err := db.Query(`SELECT sid FROM subjects s JOIN scans c ON s.sid = c.sid`); err == nil {
		t.Fatal("ambiguous unqualified column must error")
	}
}

func TestJoinResidualCondition(t *testing.T) {
	db := joinDB(t)
	res := q(t, db, `SELECT s.sid FROM subjects s JOIN scans c ON s.sid = c.sid AND c.volume > 2.9 ORDER BY s.sid`)
	if res.NumRows() != 2 { // only subject 1's two big scans
		t.Fatalf("rows = %d", res.NumRows())
	}
}

func TestJoinErrors(t *testing.T) {
	db := joinDB(t)
	if _, err := db.Query(`SELECT * FROM subjects s JOIN ghost g ON s.sid = g.sid`); err == nil {
		t.Fatal("unknown join table must error")
	}
	if _, err := db.Query(`SELECT * FROM subjects s JOIN scans c ON s.age > 1`); err == nil {
		t.Fatal("non-equi ON must error")
	}
}

func TestThreeWayJoin(t *testing.T) {
	db := joinDB(t)
	q(t, db, `CREATE TABLE labels (site VARCHAR, label VARCHAR)`)
	q(t, db, `INSERT INTO labels VALUES ('lille', 'CHRU Lille'), ('chuv', 'CHUV Lausanne')`)
	res := q(t, db, `SELECT l.label AS lab, count(*) AS n FROM subjects s JOIN scans c ON s.sid = c.sid JOIN labels l ON s.site = l.site GROUP BY l.label ORDER BY lab`)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	labs, _ := res.StringColumn("lab")
	if labs[0] != "CHRU Lille" && labs[1] != "CHRU Lille" {
		t.Fatalf("labels = %v", labs)
	}
}

// TestQuotedIdentifierEscapes: "" inside a quoted identifier is an escaped
// double quote (the convention quoteIdent on the federation side emits).
func TestQuotedIdentifierEscapes(t *testing.T) {
	db := NewDB()
	tab := NewTable(Schema{{`he said "hi"`, Float64}, {"plain", Float64}})
	if err := tab.AppendRow(1.5, 2.5); err != nil {
		t.Fatal(err)
	}
	db.RegisterTable("t", tab)
	res := q(t, db, `SELECT "he said ""hi""" AS v, "plain" AS p FROM t`)
	if res.NumRows() != 1 || res.Col(0).Float64s()[0] != 1.5 || res.Col(1).Float64s()[0] != 2.5 {
		t.Fatalf("escaped quoted identifier misread: %v", res.Col(0).Value(0))
	}
	if _, err := db.Query(`SELECT "oops FROM t`); err == nil {
		t.Fatal("unterminated quoted identifier must error")
	}
	if _, err := db.Query(`SELECT "trailing"" FROM t`); err == nil {
		t.Fatal("identifier ending in an escaped quote with no closer must error")
	}
}
