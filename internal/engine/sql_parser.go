package engine

import (
	"fmt"
	"strconv"
	"strings"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a parsed SELECT query.
type SelectStmt struct {
	Items     []SelectItem // empty means SELECT *
	Star      bool
	From      string
	FromAlias string
	Joins     []JoinClause
	Where     Expr
	GroupBy   []Expr
	Having    Expr
	OrderBy   []OrderItem
	Limit     int // -1 = no limit
	Offset    int
}

// JoinClause is one [INNER|LEFT] JOIN table [alias] ON cond.
type JoinClause struct {
	Table string
	Alias string
	Left  bool // LEFT OUTER semantics
	On    Expr
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name   string
	Schema Schema
}

// InsertStmt is INSERT INTO name [(cols)] VALUES (...), (...).
type InsertStmt struct {
	Name string
	Cols []string
	Rows [][]any // literal values; nil element = NULL
}

// DropTableStmt is DROP TABLE [IF EXISTS] name.
type DropTableStmt struct {
	Name     string
	IfExists bool
}

// DeleteStmt is DELETE FROM name [WHERE expr].
type DeleteStmt struct {
	Name  string
	Where Expr
}

// ExplainStmt is EXPLAIN [ANALYZE] <statement>. Plain EXPLAIN returns the
// predicted plan shape without executing; ANALYZE executes the inner
// statement and returns the measured operator tree.
type ExplainStmt struct {
	Analyze bool
	Stmt    Statement
}

func (*SelectStmt) stmt()      {}
func (*ExplainStmt) stmt()     {}
func (*CreateTableStmt) stmt() {}
func (*InsertStmt) stmt()      {}
func (*DropTableStmt) stmt()   {}
func (*DeleteStmt) stmt()      {}

// Parse parses one SQL statement.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	if p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("engine: unexpected trailing input %q", p.peek().text)
	}
	return st, nil
}

// ParseExpr parses a standalone scalar expression (used by the UDF layer
// and the harmonization rules).
func ParseExpr(s string) (Expr, error) {
	toks, err := lex(s)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("engine: unexpected trailing input %q", p.peek().text)
	}
	return e, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokKeyword || t.text != kw {
		return fmt.Errorf("engine: expected %s, got %q", kw, t.text)
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	t := p.next()
	if t.kind != tokOp || t.text != op {
		return fmt.Errorf("engine: expected %q, got %q", op, t.text)
	}
	return nil
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.next()
		return true
	}
	return false
}

func (p *parser) acceptOp(op string) bool {
	if p.peek().kind == tokOp && p.peek().text == op {
		p.next()
		return true
	}
	return false
}

func (p *parser) parseIdent() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("engine: expected identifier, got %q", t.text)
	}
	return t.text, nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, fmt.Errorf("engine: expected statement, got %q", t.text)
	}
	switch t.text {
	case "EXPLAIN":
		p.next()
		st := &ExplainStmt{}
		if p.acceptKeyword("ANALYZE") {
			st.Analyze = true
		}
		if p.peek().text == "EXPLAIN" {
			return nil, fmt.Errorf("engine: EXPLAIN cannot be nested")
		}
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		st.Stmt = inner
		return st, nil
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreate()
	case "INSERT":
		return p.parseInsert()
	case "DROP":
		return p.parseDrop()
	case "DELETE":
		return p.parseDelete()
	}
	return nil, fmt.Errorf("engine: unsupported statement %q", t.text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	if p.acceptOp("*") {
		st.Star = true
	} else {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				a, err := p.parseIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.peek().kind == tokIdent {
				item.Alias = p.next().text
			}
			st.Items = append(st.Items, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st.From = name
	if p.peek().kind == tokIdent {
		st.FromAlias = p.next().text
	}
	for {
		left := false
		if p.acceptKeyword("LEFT") {
			left = true
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if p.acceptKeyword("INNER") {
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
		} else if !p.acceptKeyword("JOIN") {
			break
		}
		jt, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		jc := JoinClause{Table: jt, Left: left}
		if p.peek().kind == tokIdent {
			jc.Alias = p.next().text
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		on, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		jc.On = on
		st.Joins = append(st.Joins, jc)
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Having = e
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				it.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, it)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.parseIntLit()
		if err != nil {
			return nil, err
		}
		st.Limit = n
	}
	if p.acceptKeyword("OFFSET") {
		n, err := p.parseIntLit()
		if err != nil {
			return nil, err
		}
		st.Offset = n
	}
	return st, nil
}

func (p *parser) parseIntLit() (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("engine: expected integer, got %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("engine: bad integer %q", t.text)
	}
	return n, nil
}

func (p *parser) parseCreate() (Statement, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var schema Schema
	for {
		col, err := p.parseIdent()
		if err != nil {
			return nil, err
		}
		tt := p.next()
		if tt.kind != tokIdent && tt.kind != tokKeyword {
			return nil, fmt.Errorf("engine: expected type name, got %q", tt.text)
		}
		typ, err := ParseType(strings.ToUpper(tt.text))
		if err != nil {
			return nil, err
		}
		// Swallow optional precision, e.g. VARCHAR(255).
		if p.acceptOp("(") {
			for !p.acceptOp(")") {
				p.next()
			}
		}
		schema = append(schema, ColumnDef{Name: col, Type: typ})
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTableStmt{Name: name, Schema: schema}, nil
}

func (p *parser) parseInsert() (Statement, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Name: name}
	if p.acceptOp("(") {
		for {
			c, err := p.parseIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, c)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []any
		for {
			v, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			break
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return st, nil
}

// parseLiteralValue parses a literal (possibly signed) for VALUES lists.
func (p *parser) parseLiteralValue() (any, error) {
	neg := false
	if p.acceptOp("-") {
		neg = true
	}
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, err
			}
			if neg {
				f = -f
			}
			return f, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		if neg {
			n = -n
		}
		return n, nil
	case tokString:
		if neg {
			return nil, fmt.Errorf("engine: cannot negate a string literal")
		}
		return t.text, nil
	case tokKeyword:
		if neg {
			return nil, fmt.Errorf("engine: cannot negate %s", t.text)
		}
		switch t.text {
		case "NULL":
			return nil, nil
		case "TRUE":
			return true, nil
		case "FALSE":
			return false, nil
		}
	}
	return nil, fmt.Errorf("engine: expected literal, got %q", t.text)
}

func (p *parser) parseDrop() (Statement, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &DropTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st.Name = name
	return st, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.parseIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Name: name}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Where = e
	}
	return st, nil
}

// --- Expression parsing (precedence climbing) ---

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKeyword("IS") {
		not := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{X: l, Not: not}, nil
	}
	// [NOT] IN (...) / [NOT] BETWEEN a AND b
	not := false
	if p.peek().kind == tokKeyword && p.peek().text == "NOT" {
		s := p.save()
		p.next()
		if p.peek().kind == tokKeyword && (p.peek().text == "IN" || p.peek().text == "BETWEEN") {
			not = true
		} else {
			p.restore(s)
		}
	}
	if p.acceptKeyword("IN") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := &InExpr{X: l, Not: not}
		for {
			v, err := p.parseLiteralValue()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, &Lit{Val: v, IsNull: v == nil})
			if p.acceptOp(",") {
				continue
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			break
		}
		return in, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		between := Expr(&Binary{Op: "AND",
			L: &Binary{Op: ">=", L: l, R: lo},
			R: &Binary{Op: "<=", L: l, R: hi}})
		if not {
			between = &Unary{Op: "NOT", X: between}
		}
		return between, nil
	}
	if p.peek().kind == tokOp {
		switch p.peek().text {
		case "=", "<>", "<", "<=", ">", ">=":
			op := p.next().text
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: op, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("+"):
			op = "+"
		case p.acceptOp("-"):
			op = "-"
		case p.acceptOp("||"):
			op = "||"
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

var aggNames = map[string]bool{
	"sum": true, "count": true, "avg": true, "min": true, "max": true,
	"stddev_samp": true, "stddev": true, "var_samp": true, "variance": true,
	"corr": true, "median": true, "quantile": true,
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, err
			}
			return &Lit{Val: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return &Lit{Val: n}, nil
	case tokString:
		return &Lit{Val: t.text}, nil
	case tokKeyword:
		switch t.text {
		case "NULL":
			return &Lit{IsNull: true}, nil
		case "TRUE":
			return &Lit{Val: true}, nil
		case "FALSE":
			return &Lit{Val: false}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AS"); err != nil {
				return nil, err
			}
			tt := p.next()
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			_ = tt // only numeric casts supported
			return &Call{Name: "cast_double", Args: []Expr{x}}, nil
		}
		return nil, fmt.Errorf("engine: unexpected keyword %q in expression", t.text)
	case tokIdent:
		// Function call?
		if p.peek().kind == tokOp && p.peek().text == "(" {
			p.next()
			name := strings.ToLower(t.text)
			if aggNames[name] {
				agg := &AggCall{Name: name}
				if p.acceptOp("*") {
					agg.Star = true
					if err := p.expectOp(")"); err != nil {
						return nil, err
					}
					return agg, nil
				}
				if p.acceptKeyword("DISTINCT") {
					agg.Distinct = true
				}
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					agg.Args = append(agg.Args, a)
					if p.acceptOp(",") {
						continue
					}
					if err := p.expectOp(")"); err != nil {
						return nil, err
					}
					break
				}
				return agg, nil
			}
			call := &Call{Name: name}
			if p.acceptOp(")") {
				return call, nil
			}
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if p.acceptOp(",") {
					continue
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				break
			}
			return call, nil
		}
		// Qualified column reference: alias.column.
		if p.peek().kind == tokOp && p.peek().text == "." {
			save := p.save()
			p.next()
			if p.peek().kind == tokIdent {
				col := p.next().text
				return &ColRef{Name: t.text + "." + col}, nil
			}
			p.restore(save)
		}
		return &ColRef{Name: t.text}, nil
	case tokOp:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("engine: unexpected token %q in expression", t.text)
}

func (p *parser) parseCase() (Expr, error) {
	c := &CaseExpr{}
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("engine: CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}
