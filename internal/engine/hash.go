package engine

// Vectorized hashing and typed key kernels. The grouping, join, and
// DISTINCT paths used to render every key tuple to a string
// (fmt.Fprintf("%v|")) and probe Go maps — roughly two heap allocations
// per input row, and an encoding that collides for tuples like
// ("a|", "b") vs ("a", "|b") or for data containing the NULL sentinel.
// Following the column-at-a-time engines the paper builds on
// (MonetDB/X100-style vectorized execution), keys are instead hashed by
// typed kernels into a []uint64 per morsel and resolved through
// open-addressing tables that compare hashes first and typed column
// values as the tie-break. NULL is folded into the hash as an explicit
// marker and compared as equal-to-NULL (SQL GROUP BY semantics); since
// equality is decided on the typed values, hash collisions can only cost
// probes, never correctness.

import (
	"math"
	"sync"
)

// hashSeed is the initial accumulator for every key-tuple hash; column
// hashes are folded into it one at a time.
const hashSeed uint64 = 0x8a5cd789635d2dff

// hashNull is the element marker folded in for NULL rows, so that NULL
// participates in hashing without ever being rendered as data.
const hashNull uint64 = 0x9e3779b97f4a7c15

// canonicalNaN collapses every NaN payload to one bit pattern so that all
// NaNs hash and compare equal (the old %v encoding rendered every NaN as
// "NaN"); ±0 keep distinct bit patterns, matching "%v"'s "0" vs "-0".
var canonicalNaN = math.Float64bits(math.NaN())

// mix64 is the splitmix64 finalizer: a full-avalanche 64-bit mixer over
// the raw word of a key element.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString hashes string content (FNV-1a folded through mix64), so the
// same text hashes identically regardless of which dictionary encodes it.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return mix64(h)
}

// floatKeyBits returns the grouping key bits of a float64: raw IEEE bits
// with every NaN collapsed to one canonical pattern.
func floatKeyBits(f float64) uint64 {
	if f != f {
		return canonicalNaN
	}
	return math.Float64bits(f)
}

// hashKeyCols fills out[:n] with the combined hash of each row's key
// tuple across cols. Kernels are per-type tight loops over the raw
// payload words; string columns hash each distinct dictionary code once
// (memoized on the dict) and gather per row.
func hashKeyCols(cols []*Vector, n int, out []uint64) {
	out = out[:n]
	for i := range out {
		out[i] = hashSeed
	}
	for _, c := range cols {
		foldColHash(c, n, out)
	}
}

// foldColHash folds one column's per-row element hashes into out[:n].
func foldColHash(v *Vector, n int, out []uint64) {
	out = out[:n]
	valid := v.valid
	switch v.typ {
	case Int64:
		vals := v.i64[:n]
		if valid == nil {
			for i, x := range vals {
				out[i] = mix64(out[i] ^ mix64(uint64(x)))
			}
			return
		}
		for i, x := range vals {
			if valid.Get(i) {
				out[i] = mix64(out[i] ^ mix64(uint64(x)))
			} else {
				out[i] = mix64(out[i] ^ hashNull)
			}
		}
	case Float64:
		vals := v.f64[:n]
		if valid == nil {
			for i, x := range vals {
				out[i] = mix64(out[i] ^ mix64(floatKeyBits(x)))
			}
			return
		}
		for i, x := range vals {
			if valid.Get(i) {
				out[i] = mix64(out[i] ^ mix64(floatKeyBits(x)))
			} else {
				out[i] = mix64(out[i] ^ hashNull)
			}
		}
	case Bool:
		vals := v.b[:n]
		if valid == nil {
			for i, x := range vals {
				out[i] = mix64(out[i] ^ boolHash(x))
			}
			return
		}
		for i, x := range vals {
			if valid.Get(i) {
				out[i] = mix64(out[i] ^ boolHash(x))
			} else {
				out[i] = mix64(out[i] ^ hashNull)
			}
		}
	case String:
		ch := v.dict.codeHashes()
		codes := v.codes[:n]
		if valid == nil {
			for i, c := range codes {
				out[i] = mix64(out[i] ^ ch[c])
			}
			return
		}
		for i, c := range codes {
			if valid.Get(i) {
				out[i] = mix64(out[i] ^ ch[c])
			} else {
				out[i] = mix64(out[i] ^ hashNull)
			}
		}
	}
}

func boolHash(x bool) uint64 {
	if x {
		return mix64(2)
	}
	return mix64(1)
}

// codeHashes returns the per-code content hashes of the dictionary,
// computing only the codes added since the last call. Morsels slicing the
// same column share the parent dictionary, so across a 500k-row scan each
// distinct string is hashed exactly once.
func (d *Dict) codeHashes() []uint64 {
	d.hashMu.Lock()
	for len(d.hashes) < len(d.values) {
		d.hashes = append(d.hashes, hashString(d.values[len(d.hashes)]))
	}
	h := d.hashes
	d.hashMu.Unlock()
	return h
}

// keyRowsEqual reports whether row a of tuple ka equals row b of tuple kb
// under grouping semantics: NULL equals NULL, floats compare by bit
// pattern (NaNs identified, ±0 distinct), strings by content (by code
// when the dictionaries are shared). Column types must match pairwise;
// the join path promotes mixed numeric pairs before hashing.
func keyRowsEqual(ka []*Vector, a int, kb []*Vector, b int) bool {
	for k := range ka {
		va, vb := ka[k], kb[k]
		na, nb := va.IsNull(a), vb.IsNull(b)
		if na || nb {
			if na != nb {
				return false
			}
			continue
		}
		switch va.typ {
		case Int64:
			if va.i64[a] != vb.i64[b] {
				return false
			}
		case Float64:
			if floatKeyBits(va.f64[a]) != floatKeyBits(vb.f64[b]) {
				return false
			}
		case Bool:
			if va.b[a] != vb.b[b] {
				return false
			}
		case String:
			if va.dict == vb.dict {
				if va.codes[a] != vb.codes[b] {
					return false
				}
			} else if va.dict.Value(va.codes[a]) != vb.dict.Value(vb.codes[b]) {
				return false
			}
		}
	}
	return true
}

// rowRef locates a group's representative row: the index of the key
// source (one morsel's evaluated key vectors) plus the row within it.
type rowRef struct {
	src int32
	row int32
}

// groupIndex assigns dense ids to key tuples in first-insertion order. It
// is an open-addressing hash table (power-of-two capacity, linear
// probing) whose slots hold group-id+1; per-group payload arrays carry
// the tuple hash and the representative rowRef, so probing compares the
// 64-bit hash first and falls back to typed column equality only on a
// hash match. Key tuples may come from several sources (morsels) with
// distinct backing vectors; content hashing keeps their hashes
// comparable. find is read-only and safe for concurrent probing once
// inserts stop (the join's shared build index).
type groupIndex struct {
	slots  []int32 // group id + 1; 0 = empty
	mask   int
	hashes []uint64 // per group: key-tuple hash
	refs   []rowRef // per group: representative row
	srcs   [][]*Vector
}

// newGroupIndex sizes the table for about hint distinct keys (it grows as
// needed either way).
func newGroupIndex(hint int) *groupIndex {
	capacity := 64
	for capacity*3 < hint*4 { // ≥ 25% headroom over the hint
		capacity <<= 1
	}
	return &groupIndex{slots: make([]int32, capacity), mask: capacity - 1}
}

// addSource registers a key-vector tuple and returns its source index.
// Not safe concurrently with insert/find.
func (gi *groupIndex) addSource(keyCols []*Vector) int32 {
	gi.srcs = append(gi.srcs, keyCols)
	return int32(len(gi.srcs) - 1)
}

// groups returns the number of distinct keys inserted so far.
func (gi *groupIndex) groups() int { return len(gi.refs) }

// insert returns the dense group id of the key tuple at (src, row),
// assigning the next id when the tuple is new.
func (gi *groupIndex) insert(h uint64, src, row int32) int32 {
	slot := int(h) & gi.mask
	for {
		p := gi.slots[slot]
		if p == 0 {
			g := int32(len(gi.refs))
			gi.refs = append(gi.refs, rowRef{src: src, row: row})
			gi.hashes = append(gi.hashes, h)
			gi.slots[slot] = g + 1
			if len(gi.refs)*4 >= len(gi.slots)*3 { // 75% load factor
				gi.grow()
			}
			return g
		}
		g := p - 1
		if gi.hashes[g] == h {
			r := gi.refs[g]
			if keyRowsEqual(gi.srcs[r.src], int(r.row), gi.srcs[src], int(row)) {
				return g
			}
		}
		slot = (slot + 1) & gi.mask
	}
}

// find returns the group id of the key tuple at (src, row), or -1. It
// never mutates the index, so concurrent probe workers may share it.
func (gi *groupIndex) find(h uint64, src, row int32) int32 {
	slot := int(h) & gi.mask
	for {
		p := gi.slots[slot]
		if p == 0 {
			return -1
		}
		g := p - 1
		if gi.hashes[g] == h {
			r := gi.refs[g]
			if keyRowsEqual(gi.srcs[r.src], int(r.row), gi.srcs[src], int(row)) {
				return g
			}
		}
		slot = (slot + 1) & gi.mask
	}
}

// grow doubles the slot array and reinserts every group by its stored
// hash — no key comparisons are needed because group ids are unique.
func (gi *groupIndex) grow() {
	next := make([]int32, len(gi.slots)*2)
	mask := len(next) - 1
	for g, h := range gi.hashes {
		slot := int(h) & mask
		for next[slot] != 0 {
			slot = (slot + 1) & mask
		}
		next[slot] = int32(g) + 1
	}
	gi.slots, gi.mask = next, mask
}

// distinctSet tracks (group, value) pairs for COUNT(DISTINCT ...): the
// same open-addressing layout as groupIndex, with the group id mixed into
// the slot hash and entry equality requiring both the group id and the
// typed value to match. Entries reference their source vector (one per
// morsel), so merging partial sets re-inserts entries in insertion order
// with remapped group ids and never materializes values.
type distinctSet struct {
	slots  []int32 // entry index + 1; 0 = empty
	mask   int
	hashes []uint64 // per entry: VALUE hash (group folded in at probe time)
	groups []int32  // per entry: group id
	refs   []rowRef // per entry: value row
	srcs   []*Vector
}

func newDistinctSet() *distinctSet {
	const capacity = 64
	return &distinctSet{slots: make([]int32, capacity), mask: capacity - 1}
}

// addSource registers a value vector and returns its source index.
func (ds *distinctSet) addSource(v *Vector) int32 {
	ds.srcs = append(ds.srcs, v)
	return int32(len(ds.srcs) - 1)
}

func (ds *distinctSet) slotHash(valHash uint64, g int32) uint64 {
	return mix64(valHash ^ mix64(uint64(g)+0x51ed270b))
}

// insert adds (group g, value at (src,row)) and reports whether the pair
// was new.
func (ds *distinctSet) insert(valHash uint64, g, src, row int32) bool {
	slot := int(ds.slotHash(valHash, g)) & ds.mask
	for {
		p := ds.slots[slot]
		if p == 0 {
			e := int32(len(ds.refs))
			ds.refs = append(ds.refs, rowRef{src: src, row: row})
			ds.hashes = append(ds.hashes, valHash)
			ds.groups = append(ds.groups, g)
			ds.slots[slot] = e + 1
			if len(ds.refs)*4 >= len(ds.slots)*3 {
				ds.grow()
			}
			return true
		}
		e := p - 1
		if ds.groups[e] == g && ds.hashes[e] == valHash {
			r := ds.refs[e]
			if valueRowsEqual(ds.srcs[r.src], int(r.row), ds.srcs[src], int(row)) {
				return false
			}
		}
		slot = (slot + 1) & ds.mask
	}
}

func (ds *distinctSet) grow() {
	next := make([]int32, len(ds.slots)*2)
	mask := len(next) - 1
	for e := range ds.hashes {
		slot := int(ds.slotHash(ds.hashes[e], ds.groups[e])) & mask
		for next[slot] != 0 {
			slot = (slot + 1) & mask
		}
		next[slot] = int32(e) + 1
	}
	ds.slots, ds.mask = next, mask
}

// mergeFrom folds src's entries into ds in insertion order, remapping
// group ids through gmap (nil = identity) and incrementing count[g] for
// every pair new to ds.
func (ds *distinctSet) mergeFrom(src *distinctSet, gmap []int, count []int64) {
	srcMap := make([]int32, len(src.srcs))
	for i, v := range src.srcs {
		srcMap[i] = ds.addSource(v)
	}
	for e := range src.hashes {
		g := int(src.groups[e])
		if gmap != nil {
			g = gmap[g]
		}
		r := src.refs[e]
		if ds.insert(src.hashes[e], int32(g), srcMap[r.src], r.row) {
			count[g]++
		}
	}
}

// valueRowsEqual is keyRowsEqual for a single column pair.
func valueRowsEqual(a *Vector, ra int, b *Vector, rb int) bool {
	na, nb := a.IsNull(ra), b.IsNull(rb)
	if na || nb {
		return na == nb
	}
	switch a.typ {
	case Int64:
		return a.i64[ra] == b.i64[rb]
	case Float64:
		return floatKeyBits(a.f64[ra]) == floatKeyBits(b.f64[rb])
	case Bool:
		return a.b[ra] == b.b[rb]
	case String:
		if a.dict == b.dict {
			return a.codes[ra] == b.codes[rb]
		}
		return a.dict.Value(a.codes[ra]) == b.dict.Value(b.codes[rb])
	}
	return false
}

// --- scratch buffer pools ---
//
// Per-morsel hash and selection buffers are recycled across morsels and
// queries instead of growing from nil each time; the pools keep the hot
// aggregation/join paths allocation-free per row.

var hashBufPool = sync.Pool{New: func() any { b := make([]uint64, 0, DefaultMorselSize); return &b }}

// getHashBuf returns a length-n hash buffer (contents undefined).
func getHashBuf(n int) []uint64 {
	bp := hashBufPool.Get().(*[]uint64)
	b := *bp
	if cap(b) < n {
		b = make([]uint64, n)
	}
	return b[:n]
}

func putHashBuf(b []uint64) {
	hashBufPool.Put(&b)
}

var selBufPool = sync.Pool{New: func() any { s := make([]int32, 0, DefaultMorselSize); return &s }}

// getSelBuf returns an empty selection buffer with capacity ≥ capHint.
func getSelBuf(capHint int) []int32 {
	sp := selBufPool.Get().(*[]int32)
	s := *sp
	if cap(s) < capHint {
		s = make([]int32, 0, capHint)
	}
	return s[:0]
}

func putSelBuf(s []int32) {
	selBufPool.Put(&s)
}
