package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Part is one member of a merge table: typically a remote table on another
// node, addressed through whatever transport the federation layer provides.
// Query ships SQL text to wherever the part's rows live and returns the
// result — the engine never needs the part's raw rows unless a query cannot
// be decomposed.
type Part interface {
	// PartName identifies the part (e.g. the worker node id).
	PartName() string
	// Query executes SQL against the part and returns the result table.
	Query(sql string) (*Table, error)
}

// CtxPart is an optional Part extension: parts that implement it receive
// the querying statement's context, so cancelling a merge query on this
// node propagates to the part's own execution (engine-level for LocalPart,
// a cancelled RPC for federation transports). Plain Parts keep working —
// they just run to completion after a cancel.
type CtxPart interface {
	QueryCtx(ctx context.Context, sql string) (*Table, error)
}

// LocalPart adapts a local DB table as a merge-table part (used in tests
// and single-process deployments).
type LocalPart struct {
	Name string
	DB   *DB
}

// PartName implements Part.
func (p *LocalPart) PartName() string { return p.Name }

// Query implements Part.
func (p *LocalPart) Query(sql string) (*Table, error) { return p.DB.Query(sql) }

// QueryCtx implements CtxPart.
func (p *LocalPart) QueryCtx(ctx context.Context, sql string) (*Table, error) {
	return p.DB.QueryCtx(ctx, sql)
}

// MergeTable is a non-materialized UNION ALL view over parts holding
// identically-schemed tables (MonetDB's remote+merge tables, which MIP uses
// for its non-secure aggregation path). Aggregate queries are decomposed
// into per-part partial aggregates whenever the aggregate set allows it, so
// only aggregates — never rows — travel.
type MergeTable struct {
	Schema    Schema
	TableName string // table name on each part
	Parts     []Part
	// MinParts, when positive, tolerates failing parts: a query succeeds
	// over the surviving parts as long as at least MinParts answered, and
	// LastStats().FailedParts names the dropped ones. Zero (the default)
	// keeps strict semantics — any part failure fails the query.
	MinParts int

	lastStats MergeStats // protected by mergeStatsMu
}

// Stats tracks how a merge query was served, for the E9 benchmark.
type MergeStats struct {
	Pushdown     bool  // true if only partial aggregates travelled
	RowsShipped  int   // rows received from parts
	BytesShipped int64 // payload bytes received from parts
	PartsQueried int
	// FailedParts names parts dropped from a degraded (MinParts) query.
	FailedParts []string
	// PartSQL is the SQL shipped to every part: the partial-aggregate
	// query on the pushdown path, or the projected/filtered (and, without
	// ORDER BY, LIMIT-capped) row query on the materialize path.
	PartSQL string
}

// LastStats returns statistics of the most recent execSelect call.
func (m *MergeTable) LastStats() MergeStats {
	mergeStatsMu.Lock()
	defer mergeStatsMu.Unlock()
	return m.lastStats
}

var mergeStatsMu sync.Mutex

func (m *MergeTable) setStats(s MergeStats) {
	mergeStatsMu.Lock()
	m.lastStats = s
	mergeStatsMu.Unlock()
}

// lastStats is protected by mergeStatsMu.
// (kept simple: merge tables are read-mostly and stats are advisory)

// execSelect serves a SELECT against the merge view. With a plan-cache
// entry on the context, the pushdown decomposition and the rendered
// per-part SQL come memoized from the entry instead of being rebuilt.
func (m *MergeTable) execSelect(ec *ExecContext, st *SelectStmt, qs *QueryStats) (*Table, error) {
	if e := ec.plan; e != nil {
		e.mergePlan(m, st)
		if e.pushOK {
			return m.execPushdown(ec, st, e.specs, e.partSQL, e.partCols, qs)
		}
		return m.execMaterialize(ec, st, e.matSQL, e.matCols, qs)
	}
	if specs, ok := m.decompose(st); ok {
		sql, colNames := m.partialSQL(st, specs)
		return m.execPushdown(ec, st, specs, sql, colNames, qs)
	}
	sql, cols := m.materializeSQL(st)
	return m.execMaterialize(ec, st, sql, cols, qs)
}

// execMaterialize unions part rows locally and runs the query over the
// union. Fallback path for non-decomposable aggregates (median/quantile)
// and plain row queries. Each part's SQL carries the statement's WHERE,
// only the referenced columns, and — when no ORDER BY or aggregate needs
// the whole union — a LIMIT cap, so the wire carries as little as the
// query allows. The union is built streamingly: each part's rows fold
// into the union as they arrive (in part order, so the result is
// deterministic) and the part table is released immediately, instead of
// holding every worker table until a final concatenation.
func (m *MergeTable) execMaterialize(ec *ExecContext, st *SelectStmt, sql string, pushedCols []string, qs *QueryStats) (*Table, error) {
	t0 := time.Now()
	ec.setOperator("merge materialize " + m.TableName)
	union, parts, failed, err := m.streamUnion(ec, sql)
	if err != nil {
		return nil, err
	}
	if union == nil {
		if len(m.Schema) == 0 {
			return nil, fmt.Errorf("engine: merge table %s has no parts and no declared schema", m.TableName)
		}
		// No parts registered: fall back to the declared schema (narrowed
		// to the pushed projection) so the statement still typechecks over
		// an empty union instead of running under a nil schema.
		union = NewTable(m.declaredSchema(pushedCols))
	}
	shipped := 0
	var shippedBytes int64
	for _, pr := range parts {
		shipped += pr.rows
		shippedBytes += pr.bytes
	}
	m.setStats(MergeStats{Pushdown: false, RowsShipped: shipped, BytesShipped: shippedBytes,
		PartsQueried: len(parts), FailedParts: failed, PartSQL: sql})
	recordShipped(qs, shipped, shippedBytes, parts, failed)
	m.plantPlan(qs, "materialize", sql, parts, union, time.Since(t0))
	local := *st
	local.Where = nil // already applied at the parts
	return execSelect(ec, &local, union, qs)
}

// materializeSQL builds the per-part SQL for the materialize path. Three
// reductions apply, each provably transparent to the local pipeline:
//   - projection: only columns the statement references ship (SELECT *
//     keeps the full width);
//   - filter: the whole WHERE runs remotely (the local filter stage is
//     skipped), exactly as before;
//   - limit: without ORDER BY or aggregation the union's first
//     offset+limit rows are a prefix of the part-order concatenation, and
//     every union row at a position below that cap sits at or below the
//     same position within its own part — so capping each part at
//     offset+limit preserves the rows the local limit stage can emit.
//
// It returns the SQL plus the pushed projection (nil when shipping *).
func (m *MergeTable) materializeSQL(st *SelectStmt) (string, []string) {
	proj := "*"
	cols := m.referencedColumns(st)
	if cols != nil {
		q := make([]string, len(cols))
		for i, c := range cols {
			q[i] = QuoteIdent(c)
		}
		proj = strings.Join(q, ", ")
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", proj, QuoteIdent(m.TableName))
	if st.Where != nil {
		sql += " WHERE " + st.Where.String()
	}
	if st.Limit >= 0 && len(st.OrderBy) == 0 && !selHasAgg(st) {
		sql += fmt.Sprintf(" LIMIT %d", st.Limit+st.Offset)
	}
	return sql, cols
}

// referencedColumns lists the part columns the statement touches, in
// first-reference order, or nil when the full width is needed (SELECT *,
// or a statement referencing no columns at all). ORDER BY names that match
// a select-item alias resolve to the projected column locally, so they are
// not part columns and are excluded.
func (m *MergeTable) referencedColumns(st *SelectStmt) []string {
	if st.Star {
		return nil
	}
	aliases := map[string]bool{}
	for _, it := range st.Items {
		if it.Alias != "" {
			aliases[strings.ToLower(it.Alias)] = true
		}
	}
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		k := strings.ToLower(name)
		if !seen[k] {
			seen[k] = true
			out = append(out, name)
		}
	}
	for _, it := range st.Items {
		walkColRefs(it.Expr, add)
	}
	walkColRefs(st.Where, add)
	for _, g := range st.GroupBy {
		walkColRefs(g, add)
	}
	walkColRefs(st.Having, add)
	for _, o := range st.OrderBy {
		walkColRefs(o.Expr, func(n string) {
			if !aliases[strings.ToLower(n)] {
				add(n)
			}
		})
	}
	return out
}

// declaredSchema narrows the declared schema to the pushed projection (in
// pushed order); a nil projection keeps the full declared schema.
func (m *MergeTable) declaredSchema(cols []string) Schema {
	if cols == nil {
		return m.Schema
	}
	var out Schema
	for _, c := range cols {
		if i := m.Schema.ColIndex(c); i >= 0 {
			out = append(out, m.Schema[i])
		}
	}
	return out
}

// partResult summarizes one part's answer: its shape and how long the
// round trip took. The rows themselves are folded into the union as they
// arrive and released, so only these scalars survive the fan-in.
type partResult struct {
	name  string
	rows  int
	cols  int
	bytes int64
	nanos int64
}

// recordShipped accumulates one merge fan-out's wire traffic and part
// roster onto the statement's stats (a statement can fan out more than
// once — joins over two merge views — so fields add, not overwrite).
func recordShipped(qs *QueryStats, shipped int, shippedBytes int64, parts []partResult, failed []string) {
	if qs == nil {
		return
	}
	qs.RowsShipped += shipped
	qs.BytesShipped += shippedBytes
	for _, pr := range parts {
		qs.Parts = append(qs.Parts, pr.name)
	}
	qs.DroppedParts = append(qs.DroppedParts, failed...)
}

// plantPlan roots qs at the merge fan-in node: one child per surviving
// part, carrying that part's shipped rows, round-trip time, and the SQL
// pushed to it (so EXPLAIN ANALYZE shows exactly what each part ran).
func (m *MergeTable) plantPlan(qs *QueryStats, mode, sql string, parts []partResult, union *Table, elapsed time.Duration) {
	if qs == nil {
		return
	}
	n := &PlanNode{
		Op:      "merge",
		Detail:  mode + " " + m.TableName,
		RowsIn:  int64(union.NumRows()),
		RowsOut: int64(union.NumRows()),
		Batches: int64(union.NumCols()),
		Nanos:   elapsed.Nanoseconds(),
		Bytes:   union.ByteSize(),
	}
	if len(parts) > 1 {
		n.Parallelism = len(parts) // part fan-out runs one goroutine per part
	}
	for _, pr := range parts {
		n.Children = append(n.Children, &PlanNode{
			Op:      "part",
			Detail:  pr.name + ": " + sql,
			RowsIn:  int64(pr.rows),
			RowsOut: int64(pr.rows),
			Batches: int64(pr.cols),
			Nanos:   pr.nanos,
			Bytes:   pr.bytes,
		})
	}
	atomic.AddInt64(&qs.MergeNanos, elapsed.Nanoseconds())
	qs.Root = n
}

// appendVector appends all of src's rows onto dst (same type). String
// payloads are re-encoded through a per-call code translation table and
// null bitmaps materialize lazily, exactly like concatVectors — a union
// grown by successive appendVector calls in part order is identical
// (codes included) to the one-shot concatenation it replaces.
func appendVector(dst, src *Vector) {
	if src.valid != nil && dst.valid == nil {
		dst.valid = NewBitmap(dst.Len())
	}
	switch dst.typ {
	case Float64:
		dst.f64 = append(dst.f64, src.f64...)
	case Int64:
		dst.i64 = append(dst.i64, src.i64...)
	case Bool:
		dst.b = append(dst.b, src.b...)
	case String:
		trans := make([]int32, src.dict.Size())
		for c := range trans {
			trans[c] = dst.dict.Code(src.dict.Value(int32(c)))
		}
		for _, c := range src.codes {
			dst.codes = append(dst.codes, trans[c])
		}
	}
	if dst.valid != nil {
		for i, n := 0, src.Len(); i < n; i++ {
			dst.valid.Append(src.valid == nil || src.valid.Get(i))
		}
	}
}

// streamUnion fans the SQL out to every part concurrently and folds each
// answer into the growing union the moment it (and every earlier part)
// has arrived, releasing the part table immediately — peak memory is the
// union plus one in-flight part, not the union plus all of them. Parts
// are consumed in part-index order, so the union is byte-identical to the
// concatenate-everything fan-in it replaces. The union is nil when no
// part survived (i.e. none are registered). Failure semantics match the
// old queryAll: with MinParts unset any failure is fatal, otherwise
// failures are tolerated down to MinParts survivors.
func (m *MergeTable) streamUnion(ec *ExecContext, sql string) (*Table, []partResult, []string, error) {
	var ctx context.Context
	if ec != nil {
		ctx = ec.Ctx
	}
	out := make([]*Table, len(m.Parts))
	nanos := make([]int64, len(m.Parts))
	errs := make([]error, len(m.Parts))
	done := make([]chan struct{}, len(m.Parts))
	for i, p := range m.Parts {
		done[i] = make(chan struct{})
		go func(i int, p Part) {
			defer close(done[i])
			t0 := time.Now()
			var t *Table
			var err error
			// Parts that understand contexts get the statement's: cancelling
			// this merge query cancels the part-side execution mid-flight.
			if cp, ok := p.(CtxPart); ok && ctx != nil {
				t, err = cp.QueryCtx(ctx, sql)
			} else {
				t, err = p.Query(sql)
			}
			nanos[i] = time.Since(t0).Nanoseconds()
			if err != nil {
				errs[i] = fmt.Errorf("part %s: %w", p.PartName(), err)
				return
			}
			if t == nil {
				// A part answering (nil, nil) would otherwise crash the
				// fan-in; treat it as a failure so MinParts semantics apply.
				errs[i] = fmt.Errorf("part %s: returned no table", p.PartName())
				return
			}
			out[i] = t
		}(i, p)
	}
	var union *Table
	var ok []partResult
	var failed []string
	var failErrs []error
	for i := range m.Parts {
		<-done[i]
		if err := ec.interrupted(); err != nil {
			return nil, nil, nil, err
		}
		if errs[i] != nil {
			failed = append(failed, m.Parts[i].PartName())
			failErrs = append(failErrs, errs[i])
			continue
		}
		t := out[i]
		out[i] = nil // release the part as soon as it is folded in
		if union == nil {
			union = NewTable(t.Schema())
		} else if !union.Schema().Equal(t.Schema()) {
			return nil, nil, nil, fmt.Errorf("engine: cannot append table with schema %v to %v",
				t.Schema().Names(), union.Schema().Names())
		}
		for j := range union.cols {
			appendVector(union.cols[j], t.Col(j))
		}
		ok = append(ok, partResult{name: m.Parts[i].PartName(), rows: t.NumRows(),
			cols: t.NumCols(), bytes: t.ByteSize(), nanos: nanos[i]})
	}
	if len(failed) > 0 && (m.MinParts <= 0 || len(ok) < m.MinParts) {
		return nil, nil, nil, errors.Join(failErrs...)
	}
	if union != nil {
		ec.charge(union.ByteSize())
	}
	if len(failed) == 0 {
		failed = nil
	}
	return union, ok, failed, nil
}

// partialSpec describes how one original aggregate is computed from
// partial columns after the per-part round.
type partialSpec struct {
	orig *AggCall
	// partials: SQL aggregate expressions shipped to the parts, and the
	// merge operation (sum/min/max) that combines the per-part values.
	partials []partialCol
	// final builds the original aggregate's value from the merged partial
	// column names.
	final func(cols []string) Expr
}

type partialCol struct {
	sqlExpr string // aggregate expression sent to the part
	merge   string // "sum" | "min" | "max"
}

// decompose checks whether every aggregate in the query can be computed
// from additive per-part partials and, if so, returns the plan.
// GROUP BY keys must be plain column references for pushdown.
func (m *MergeTable) decompose(st *SelectStmt) ([]partialSpec, bool) {
	hasAgg := false
	for _, it := range st.Items {
		if HasAgg(it.Expr) {
			hasAgg = true
		}
	}
	if !hasAgg {
		return nil, false
	}
	for _, g := range st.GroupBy {
		if _, ok := g.(*ColRef); !ok {
			return nil, false
		}
	}
	if st.Having != nil && !decomposableExpr(st.Having) {
		return nil, false
	}
	var aggs []*AggCall
	seen := map[string]bool{}
	collect := func(e Expr) bool { return collectAggs(e, &aggs, seen) }
	for _, it := range st.Items {
		if !collect(it.Expr) {
			return nil, false
		}
	}
	if st.Having != nil && !collect(st.Having) {
		return nil, false
	}
	var specs []partialSpec
	for _, a := range aggs {
		spec, ok := decomposeAgg(a)
		if !ok {
			return nil, false
		}
		specs = append(specs, spec)
	}
	return specs, true
}

func decomposableExpr(e Expr) bool {
	switch t := e.(type) {
	case *AggCall:
		_, ok := decomposeAgg(t)
		return ok
	case *Unary:
		return decomposableExpr(t.X)
	case *Binary:
		return decomposableExpr(t.L) && decomposableExpr(t.R)
	case *Call:
		for _, a := range t.Args {
			if !decomposableExpr(a) {
				return false
			}
		}
	}
	return true
}

func collectAggs(e Expr, aggs *[]*AggCall, seen map[string]bool) bool {
	switch t := e.(type) {
	case *AggCall:
		if !seen[t.String()] {
			seen[t.String()] = true
			*aggs = append(*aggs, t)
		}
		return true
	case *Unary:
		return collectAggs(t.X, aggs, seen)
	case *Binary:
		return collectAggs(t.L, aggs, seen) && collectAggs(t.R, aggs, seen)
	case *Call:
		for _, a := range t.Args {
			if !collectAggs(a, aggs, seen) {
				return false
			}
		}
		return true
	case *IsNullExpr:
		return collectAggs(t.X, aggs, seen)
	case *CaseExpr:
		for _, w := range t.Whens {
			if !collectAggs(w.Cond, aggs, seen) || !collectAggs(w.Then, aggs, seen) {
				return false
			}
		}
		if t.Else != nil {
			return collectAggs(t.Else, aggs, seen)
		}
		return true
	}
	return true
}

// decomposeAgg maps one aggregate to its partial columns and final
// expression. COUNT DISTINCT, median and quantile are not decomposable.
func decomposeAgg(a *AggCall) (partialSpec, bool) {
	if a.Distinct {
		return partialSpec{}, false
	}
	argSQL := func(i int) string { return a.Args[i].String() }
	col := func(name string) Expr { return &ColRef{Name: name} }
	switch a.Name {
	case "count":
		expr := "count(*)"
		if !a.Star {
			expr = fmt.Sprintf("count(%s)", argSQL(0))
		}
		return partialSpec{
			orig:     a,
			partials: []partialCol{{expr, "sum"}},
			final:    func(c []string) Expr { return &Call{Name: "cast_double", Args: []Expr{col(c[0])}} },
		}, true
	case "sum":
		return partialSpec{
			orig:     a,
			partials: []partialCol{{fmt.Sprintf("sum(%s)", argSQL(0)), "sum"}},
			final:    func(c []string) Expr { return col(c[0]) },
		}, true
	case "min", "max":
		return partialSpec{
			orig:     a,
			partials: []partialCol{{fmt.Sprintf("%s(%s)", a.Name, argSQL(0)), a.Name}},
			final:    func(c []string) Expr { return col(c[0]) },
		}, true
	case "avg":
		return partialSpec{
			orig: a,
			partials: []partialCol{
				{fmt.Sprintf("sum(%s)", argSQL(0)), "sum"},
				{fmt.Sprintf("count(%s)", argSQL(0)), "sum"},
			},
			final: func(c []string) Expr {
				return &Binary{Op: "/", L: col(c[0]), R: &Call{Name: "cast_double", Args: []Expr{col(c[1])}}}
			},
		}, true
	case "stddev_samp", "stddev", "var_samp", "variance":
		x := argSQL(0)
		return partialSpec{
			orig: a,
			partials: []partialCol{
				{fmt.Sprintf("sum(%s)", x), "sum"},
				{fmt.Sprintf("sum((%s) * (%s))", x, x), "sum"},
				{fmt.Sprintf("count(%s)", x), "sum"},
			},
			final: func(c []string) Expr {
				// (sum2 - sum*sum/n) / (n-1), sqrt for stddev.
				n := &Call{Name: "cast_double", Args: []Expr{col(c[2])}}
				variance := &Binary{Op: "/",
					L: &Binary{Op: "-", L: col(c[1]),
						R: &Binary{Op: "/", L: &Binary{Op: "*", L: col(c[0]), R: col(c[0])}, R: n}},
					R: &Binary{Op: "-", L: n, R: &Lit{Val: 1.0}},
				}
				if a.Name == "stddev_samp" || a.Name == "stddev" {
					return &Call{Name: "sqrt", Args: []Expr{variance}}
				}
				return variance
			},
		}, true
	case "corr":
		x, y := argSQL(0), argSQL(1)
		return partialSpec{
			orig: a,
			partials: []partialCol{
				{fmt.Sprintf("sum(CASE WHEN (%s) IS NOT NULL AND (%s) IS NOT NULL THEN (%s) ELSE NULL END)", x, y, x), "sum"},
				{fmt.Sprintf("sum(CASE WHEN (%s) IS NOT NULL AND (%s) IS NOT NULL THEN (%s) ELSE NULL END)", x, y, y), "sum"},
				{fmt.Sprintf("sum(CASE WHEN (%s) IS NOT NULL AND (%s) IS NOT NULL THEN (%s)*(%s) ELSE NULL END)", x, y, x, x), "sum"},
				{fmt.Sprintf("sum(CASE WHEN (%s) IS NOT NULL AND (%s) IS NOT NULL THEN (%s)*(%s) ELSE NULL END)", x, y, y, y), "sum"},
				{fmt.Sprintf("sum(CASE WHEN (%s) IS NOT NULL AND (%s) IS NOT NULL THEN (%s)*(%s) ELSE NULL END)", x, y, x, y), "sum"},
				{fmt.Sprintf("count((%s) + (%s))", x, y), "sum"},
			},
			final: func(c []string) Expr {
				n := &Call{Name: "cast_double", Args: []Expr{col(c[5])}}
				cov := &Binary{Op: "-", L: col(c[4]),
					R: &Binary{Op: "/", L: &Binary{Op: "*", L: col(c[0]), R: col(c[1])}, R: n}}
				vx := &Binary{Op: "-", L: col(c[2]),
					R: &Binary{Op: "/", L: &Binary{Op: "*", L: col(c[0]), R: col(c[0])}, R: n}}
				vy := &Binary{Op: "-", L: col(c[3]),
					R: &Binary{Op: "/", L: &Binary{Op: "*", L: col(c[1]), R: col(c[1])}, R: n}}
				return &Binary{Op: "/", L: cov,
					R: &Call{Name: "sqrt", Args: []Expr{&Binary{Op: "*", L: vx, R: vy}}}}
			},
		}, true
	}
	return partialSpec{}, false
}

// partialSQL builds the per-part partial-aggregate query for a decomposed
// plan, returning the SQL plus the partial column names grouped by spec.
func (m *MergeTable) partialSQL(st *SelectStmt, specs []partialSpec) (string, [][]string) {
	var sel []string
	for i, g := range st.GroupBy {
		sel = append(sel, fmt.Sprintf("%s AS gk%d", g.String(), i))
	}
	pcol := 0
	colNames := make([][]string, len(specs))
	for i, sp := range specs {
		for _, pc := range sp.partials {
			name := fmt.Sprintf("p%d", pcol)
			colNames[i] = append(colNames[i], name)
			sel = append(sel, fmt.Sprintf("%s AS %s", pc.sqlExpr, name))
			pcol++
		}
	}
	sql := fmt.Sprintf("SELECT %s FROM %s", strings.Join(sel, ", "), QuoteIdent(m.TableName))
	if st.Where != nil {
		sql += " WHERE " + st.Where.String()
	}
	if len(st.GroupBy) > 0 {
		var keys []string
		for _, g := range st.GroupBy {
			keys = append(keys, g.String())
		}
		sql += " GROUP BY " + strings.Join(keys, ", ")
	}
	return sql, colNames
}

// execPushdown runs the decomposed plan: per-part partial aggregates,
// merged locally, then the final projection.
func (m *MergeTable) execPushdown(ec *ExecContext, st *SelectStmt, specs []partialSpec, sql string, colNames [][]string, qs *QueryStats) (*Table, error) {
	// Fan out the pre-built partial query, folding each part's partials
	// into the union as they land.
	t0 := time.Now()
	ec.setOperator("merge pushdown " + m.TableName)
	unionAll, partTables, failed, err := m.streamUnion(ec, sql)
	if err != nil {
		return nil, err
	}
	if unionAll == nil {
		return nil, fmt.Errorf("merge table %s: no parts answered", m.TableName)
	}
	shipped := 0
	var shippedBytes int64
	for _, pr := range partTables {
		shipped += pr.rows
		shippedBytes += pr.bytes
	}
	m.setStats(MergeStats{Pushdown: true, RowsShipped: shipped, BytesShipped: shippedBytes,
		PartsQueried: len(partTables), FailedParts: failed, PartSQL: sql})
	recordShipped(qs, shipped, shippedBytes, partTables, failed)
	m.plantPlan(qs, "pushdown", sql, partTables, unionAll, time.Since(t0))

	// 3. Merge partials: group by the gk* columns, combining each partial
	// with its merge op.
	mergeStmt := &SelectStmt{Limit: -1}
	for i := range st.GroupBy {
		name := fmt.Sprintf("gk%d", i)
		mergeStmt.Items = append(mergeStmt.Items, SelectItem{Expr: &ColRef{Name: name}, Alias: name})
		mergeStmt.GroupBy = append(mergeStmt.GroupBy, &ColRef{Name: name})
	}
	pcol := 0
	for _, sp := range specs {
		for _, pc := range sp.partials {
			name := fmt.Sprintf("p%d", pcol)
			mergeStmt.Items = append(mergeStmt.Items, SelectItem{
				Expr:  &AggCall{Name: pc.merge, Args: []Expr{&ColRef{Name: name}}},
				Alias: name,
			})
			pcol++
		}
	}
	merged, err := execSelect(ec, mergeStmt, unionAll, qs)
	if err != nil {
		return nil, err
	}

	// 4. Final projection over merged partials: rewrite the original items
	// replacing group keys and aggregate calls.
	keyNames := map[string]string{}
	for i, g := range st.GroupBy {
		keyNames[g.String()] = fmt.Sprintf("gk%d", i)
	}
	finalOf := map[string]Expr{}
	for i, sp := range specs {
		finalOf[sp.orig.String()] = sp.final(colNames[i])
	}
	var rewrite func(Expr) Expr
	rewrite = func(e Expr) Expr {
		if k, ok := keyNames[e.String()]; ok {
			return &ColRef{Name: k}
		}
		switch t := e.(type) {
		case *AggCall:
			return finalOf[t.String()]
		case *Unary:
			return &Unary{Op: t.Op, X: rewrite(t.X)}
		case *Binary:
			return &Binary{Op: t.Op, L: rewrite(t.L), R: rewrite(t.R)}
		case *Call:
			args := make([]Expr, len(t.Args))
			for i, a := range t.Args {
				args[i] = rewrite(a)
			}
			return &Call{Name: t.Name, Args: args}
		case *IsNullExpr:
			return &IsNullExpr{X: rewrite(t.X), Not: t.Not}
		case *CaseExpr:
			out := &CaseExpr{}
			for _, w := range t.Whens {
				out.Whens = append(out.Whens, CaseWhen{Cond: rewrite(w.Cond), Then: rewrite(w.Then)})
			}
			if t.Else != nil {
				out.Else = rewrite(t.Else)
			}
			return out
		}
		return e
	}

	if st.Having != nil {
		sh := qs.beginStage("filter", "having "+st.Having.String(), merged.NumRows())
		selv, err := FilterSel(rewrite(st.Having), merged)
		if err != nil {
			return nil, err
		}
		merged = merged.Gather(selv)
		sh.end(merged)
	}

	sp := qs.beginStage("project", projectDetail(st), merged.NumRows())
	outSchema := make(Schema, len(st.Items))
	outCols := make([]*Vector, len(st.Items))
	for i, it := range st.Items {
		v, err := Eval(rewrite(it.Expr), merged)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr)
		}
		outSchema[i] = ColumnDef{Name: name, Type: v.Type()}
		outCols[i] = v
	}
	out, err := NewTableFromVectors(outSchema, outCols)
	if err != nil {
		return nil, err
	}
	sp.end(out)
	if len(st.OrderBy) > 0 {
		so := qs.beginStage("order", orderDetail(st.OrderBy), out.NumRows())
		out, err = execOrderByPar(ec, st.OrderBy, out, so)
		if err != nil {
			return nil, err
		}
		so.end(out)
	}
	if st.Limit >= 0 || st.Offset > 0 {
		sl := qs.beginStage("limit", limitDetail(st), out.NumRows())
		out = execLimit(st, out)
		sl.end(out)
	} else {
		out = execLimit(st, out)
	}
	if qs != nil {
		// The combine-stage execSelect counted its intermediate rows; the
		// statement's result is this final projection.
		qs.RowsOut = out.NumRows()
	}
	return out, nil
}
