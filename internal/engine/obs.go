package engine

import (
	"strconv"

	"mip/internal/obs"
)

// QueryStats collects per-statement execution statistics: rows and vectors
// touched plus per-operator nanoseconds, threaded through execSelect. The
// federation worker attaches them to its trace spans; DB.Query folds them
// into the engine metrics.
type QueryStats struct {
	RowsScanned    int   // input rows consumed by SELECT pipelines
	RowsOut        int   // result rows
	Vectors        int   // column vectors materialized (input + output)
	FilterNanos    int64 // WHERE selection + gather
	AggregateNanos int64 // group-by/aggregate stage
	SortNanos      int64 // ORDER BY stage
	ProjectNanos   int64 // projection stage
	JoinNanos      int64 // hash-join build+probe
	MergeNanos     int64 // merge-table part fan-out
	// MemPeakBytes is the query's peak accounted memory (coarse operator
	// charges: materialized outputs, hash/CSR payloads, partial aggregates).
	MemPeakBytes int64
	// SpillBytes/SpillPartitions report how much run-file data the
	// statement wrote to disk and how many hash partitions it spilled
	// (both zero when execution stayed in memory).
	SpillBytes      int64
	SpillPartitions int64
	// RowsShipped/BytesShipped tally what the statement pulled over the
	// wire from merge-table parts (zero for purely local statements);
	// Parts/DroppedParts name the parts that answered and the ones that
	// failed or were skipped. All four feed tenant metering and the audit
	// trail.
	RowsShipped  int
	BytesShipped int64
	Parts        []string
	DroppedParts []string
	// Verdict records how the statement ended: completed, cancelled,
	// deadline, mem-limit, or error. Empty when governance was disabled.
	Verdict string
	// CacheHit reports that the statement's plan came from the plan cache
	// (lex/parse and plan memoization skipped). Result-cache hits at the
	// federation layer set it too — there the whole execution was skipped.
	CacheHit bool
	// Root is the executed operator tree (profiled plan). Nil for DDL/DML
	// statements and for callers that executed with a nil QueryStats.
	Root *PlanNode

	acct   *MemAccountant // the query's accountant, for stage memory deltas
	handle *queryHandle   // live registry record (current operator, rows)
}

// AttrMap renders the stats as span attributes.
func (qs *QueryStats) AttrMap() map[string]string {
	m := map[string]string{
		"rows_scanned": strconv.Itoa(qs.RowsScanned),
		"rows_out":     strconv.Itoa(qs.RowsOut),
		"vectors":      strconv.Itoa(qs.Vectors),
	}
	if qs.MemPeakBytes > 0 {
		m["mem_peak_bytes"] = strconv.FormatInt(qs.MemPeakBytes, 10)
	}
	if qs.SpillBytes > 0 {
		m["spill_bytes"] = strconv.FormatInt(qs.SpillBytes, 10)
	}
	if qs.Verdict != "" {
		m["verdict"] = qs.Verdict
	}
	if qs.CacheHit {
		m["cache"] = "hit"
	}
	return m
}

var (
	engQueries = obs.GetCounter("mip_engine_queries_total",
		"SQL statements executed by engine databases.")
	engQueryErrors = obs.GetCounter("mip_engine_query_errors_total",
		"SQL statements that returned an error.")
	engQuerySeconds = obs.GetHistogram("mip_engine_query_seconds",
		"Wall time of one SQL statement in seconds.", nil)
	engRowsScanned = obs.GetCounter("mip_engine_rows_scanned_total",
		"Input rows consumed by SELECT pipelines.")
	engVectors = obs.GetCounter("mip_engine_vectors_processed_total",
		"Column vectors materialized by SELECT pipelines.")
	engTables = obs.GetGauge("mip_engine_tables",
		"Base tables currently registered across engine databases.")

	engFilterNanos = obs.GetCounter("mip_engine_operator_nanos_total",
		"Nanoseconds spent per SELECT operator.", obs.Label{Key: "op", Value: "filter"})
	engAggNanos = obs.GetCounter("mip_engine_operator_nanos_total",
		"Nanoseconds spent per SELECT operator.", obs.Label{Key: "op", Value: "aggregate"})
	engSortNanos = obs.GetCounter("mip_engine_operator_nanos_total",
		"Nanoseconds spent per SELECT operator.", obs.Label{Key: "op", Value: "sort"})
	engProjectNanos = obs.GetCounter("mip_engine_operator_nanos_total",
		"Nanoseconds spent per SELECT operator.", obs.Label{Key: "op", Value: "project"})
	engJoinNanos = obs.GetCounter("mip_engine_operator_nanos_total",
		"Nanoseconds spent per SELECT operator.", obs.Label{Key: "op", Value: "join"})
	engMergeNanos = obs.GetCounter("mip_engine_operator_nanos_total",
		"Nanoseconds spent per SELECT operator.", obs.Label{Key: "op", Value: "merge"})
	engSlowQueries = obs.GetCounter("mip_engine_slow_queries_total",
		"Statements whose wall time exceeded the slow-query threshold.")
	engSpillBytes = obs.GetCounter("mip_engine_spill_bytes_total",
		"Run-file bytes written to disk by memory-bounded operators.")
	engSpillParts = obs.GetCounter("mip_engine_spill_partitions_total",
		"Hash partitions spilled to disk by memory-bounded operators.")
)

// publish folds one statement's stats into the engine metrics.
func (qs *QueryStats) publish(seconds float64) {
	engQueries.Inc()
	engQuerySeconds.Observe(seconds)
	engRowsScanned.Add(int64(qs.RowsScanned))
	engVectors.Add(int64(qs.Vectors))
	engFilterNanos.Add(qs.FilterNanos)
	engAggNanos.Add(qs.AggregateNanos)
	engSortNanos.Add(qs.SortNanos)
	engProjectNanos.Add(qs.ProjectNanos)
	engJoinNanos.Add(qs.JoinNanos)
	engMergeNanos.Add(qs.MergeNanos)
}
