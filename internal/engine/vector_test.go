package engine

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitmap(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.CountValid() != 130 {
		t.Fatalf("fresh bitmap: len=%d valid=%d", b.Len(), b.CountValid())
	}
	b.Set(0, false)
	b.Set(64, false)
	b.Set(129, false)
	if b.CountValid() != 127 {
		t.Fatalf("CountValid = %d", b.CountValid())
	}
	if b.Get(0) || b.Get(64) || b.Get(129) || !b.Get(1) || !b.Get(63) || !b.Get(65) {
		t.Fatal("Get/Set mismatch around word boundaries")
	}
	b.Set(64, true)
	if !b.Get(64) {
		t.Fatal("re-Set failed")
	}
	var nilB *Bitmap
	if !nilB.Get(12345) {
		t.Fatal("nil bitmap must report valid")
	}
	if nilB.Clone() != nil {
		t.Fatal("Clone of nil should be nil")
	}
}

func TestBitmapAppend(t *testing.T) {
	b := NewBitmap(0)
	for i := 0; i < 200; i++ {
		b.Append(i%3 != 0)
	}
	if b.Len() != 200 {
		t.Fatalf("Len = %d", b.Len())
	}
	for i := 0; i < 200; i++ {
		if b.Get(i) != (i%3 != 0) {
			t.Fatalf("bit %d wrong", i)
		}
	}
}

func TestDict(t *testing.T) {
	d := NewDict()
	a := d.Code("alpha")
	b := d.Code("beta")
	if a2 := d.Code("alpha"); a2 != a {
		t.Fatal("re-interning changed code")
	}
	if d.Size() != 2 {
		t.Fatalf("Size = %d", d.Size())
	}
	if d.Value(a) != "alpha" || d.Value(b) != "beta" {
		t.Fatal("Value mismatch")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Fatal("Lookup of absent value succeeded")
	}
}

func TestVectorAppendAndValue(t *testing.T) {
	v := NewVector(Float64)
	v.AppendFloat64(1.5)
	v.AppendNull()
	v.AppendFloat64(2.5)
	if v.Len() != 3 {
		t.Fatalf("Len = %d", v.Len())
	}
	if v.Value(0) != 1.5 || v.Value(1) != nil || v.Value(2) != 2.5 {
		t.Fatalf("values: %v %v %v", v.Value(0), v.Value(1), v.Value(2))
	}
	if !v.IsNull(1) || v.IsNull(0) {
		t.Fatal("null tracking wrong")
	}
}

func TestVectorAppendValueConversions(t *testing.T) {
	v := NewVector(Int64)
	for _, x := range []any{int64(1), 2, 3.0, "4", nil} {
		if err := v.AppendValue(x); err != nil {
			t.Fatalf("AppendValue(%v): %v", x, err)
		}
	}
	want := []any{int64(1), int64(2), int64(3), int64(4), nil}
	for i, w := range want {
		if v.Value(i) != w {
			t.Fatalf("value %d = %v, want %v", i, v.Value(i), w)
		}
	}
	if err := v.AppendValue("not a number"); err == nil {
		t.Fatal("expected conversion error")
	}

	s := NewVector(String)
	if err := s.AppendValue("x"); err != nil {
		t.Fatal(err)
	}
	if s.StringAt(0) != "x" {
		t.Fatal("string append")
	}

	b := NewVector(Bool)
	if err := b.AppendValue(true); err != nil {
		t.Fatal(err)
	}
	if err := b.AppendValue("false"); err != nil {
		t.Fatal(err)
	}
	if b.Bools()[0] != true || b.Bools()[1] != false {
		t.Fatal("bool append")
	}
}

func TestVectorGather(t *testing.T) {
	v := NewVector(Float64)
	v.AppendFloat64(10)
	v.AppendNull()
	v.AppendFloat64(30)
	v.AppendFloat64(40)
	g := v.Gather([]int32{3, 1, 0})
	if g.Len() != 3 {
		t.Fatalf("Len = %d", g.Len())
	}
	if g.Float64s()[0] != 40 || !g.IsNull(1) || g.Float64s()[2] != 10 {
		t.Fatal("gather wrong")
	}
}

func TestVectorGatherString(t *testing.T) {
	v := NewStringVector([]string{"a", "b", "c"}, nil)
	g := v.Gather([]int32{2, 0})
	if g.StringAt(0) != "c" || g.StringAt(1) != "a" {
		t.Fatal("string gather wrong")
	}
	if g.StrDict() != v.StrDict() {
		t.Fatal("gather should share the dictionary")
	}
}

func TestCastFloat64(t *testing.T) {
	iv := NewInt64Vector([]int64{1, 2, 3}, nil)
	f := iv.CastFloat64()
	if f.Float64s()[2] != 3 {
		t.Fatal("int cast")
	}
	bv := NewBoolVector([]bool{true, false}, nil)
	f = bv.CastFloat64()
	if f.Float64s()[0] != 1 || f.Float64s()[1] != 0 {
		t.Fatal("bool cast")
	}
	sv := NewStringVector([]string{"2.5", "oops"}, nil)
	f = sv.CastFloat64()
	if f.Float64s()[0] != 2.5 {
		t.Fatal("string cast value")
	}
	if !f.IsNull(1) {
		t.Fatal("unparseable string should cast to NULL")
	}
}

// Property: Gather preserves values and validity for random selections.
func TestGatherProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(100)
		v := NewVector(Float64)
		for i := 0; i < n; i++ {
			if r.Intn(5) == 0 {
				v.AppendNull()
			} else {
				v.AppendFloat64(r.Float64())
			}
		}
		k := r.Intn(100)
		sel := make([]int32, k)
		for i := range sel {
			sel[i] = int32(r.Intn(n))
		}
		g := v.Gather(sel)
		for i, s := range sel {
			if g.IsNull(i) != v.IsNull(int(s)) {
				return false
			}
			if !g.IsNull(i) && g.Float64s()[i] != v.Float64s()[s] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTableBasics(t *testing.T) {
	schema := Schema{{"id", Int64}, {"name", String}, {"score", Float64}}
	tab := NewTable(schema)
	if err := tab.AppendRow(int64(1), "ann", 9.5); err != nil {
		t.Fatal(err)
	}
	if err := tab.AppendRow(int64(2), "bob", nil); err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 2 || tab.NumCols() != 3 {
		t.Fatalf("dims %dx%d", tab.NumRows(), tab.NumCols())
	}
	row := tab.Row(1)
	if row[0] != int64(2) || row[1] != "bob" || row[2] != nil {
		t.Fatalf("Row = %v", row)
	}
	if tab.ColByName("SCORE") == nil {
		t.Fatal("column lookup should be case-insensitive")
	}
	if tab.ColByName("missing") != nil {
		t.Fatal("absent column should be nil")
	}
	if err := tab.AppendRow(int64(3)); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestTableFloat64Column(t *testing.T) {
	tab := NewTable(Schema{{"x", Float64}})
	tab.AppendRow(1.0)
	tab.AppendRow(nil)
	tab.AppendRow(3.0)
	vals, missing, err := tab.Float64Column("x")
	if err != nil {
		t.Fatal(err)
	}
	if missing != 1 || len(vals) != 2 || vals[0] != 1 || vals[1] != 3 {
		t.Fatalf("vals=%v missing=%d", vals, missing)
	}
	if _, _, err := tab.Float64Column("nope"); err == nil {
		t.Fatal("expected error for unknown column")
	}
}

func TestTableAppendSchemaMismatch(t *testing.T) {
	a := NewTable(Schema{{"x", Float64}})
	b := NewTable(Schema{{"y", Float64}})
	if err := a.Append(b); err == nil {
		t.Fatal("expected schema mismatch error")
	}
}

func TestTableGather(t *testing.T) {
	tab := NewTable(Schema{{"x", Int64}})
	for i := 0; i < 5; i++ {
		tab.AppendRow(int64(i))
	}
	g := tab.Gather([]int32{4, 2})
	if g.NumRows() != 2 || g.Col(0).Int64s()[0] != 4 || g.Col(0).Int64s()[1] != 2 {
		t.Fatal("table gather wrong")
	}
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{Float64: "DOUBLE", Int64: "BIGINT", String: "VARCHAR", Bool: "BOOLEAN"}
	for typ, s := range want {
		if typ.String() != s {
			t.Fatalf("%v.String() = %q", typ, typ.String())
		}
	}
	if Type(99).String() == "" {
		t.Fatal("unknown type should still render")
	}
	for _, name := range []string{"DOUBLE", "FLOAT", "REAL", "BIGINT", "INT", "VARCHAR", "TEXT", "BOOLEAN"} {
		if _, err := ParseType(name); err != nil {
			t.Fatalf("ParseType(%s): %v", name, err)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Fatal("unknown type name should fail")
	}
}

func TestVectorCloneAndCodes(t *testing.T) {
	v := NewStringVector([]string{"a", "b", "a"}, nil)
	if len(v.Codes()) != 3 || v.Codes()[0] != v.Codes()[2] {
		t.Fatal("codes should dedupe via dict")
	}
	c := v.Clone()
	c.AppendString("z")
	if v.Len() != 3 || c.Len() != 4 {
		t.Fatal("Clone aliases the original")
	}
	f := NewFloat64Vector([]float64{1, 2}, NewBitmap(2))
	fc := f.Clone()
	fc.Valid().Set(0, false)
	if f.IsNull(0) {
		t.Fatal("Clone shares the bitmap")
	}
}
