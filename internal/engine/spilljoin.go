package engine

// spilljoin implements the disk-backed (grace) hash join. When the
// estimated build + output footprint of a hash join cannot fit the
// query's soft memory budget, both sides are hash-partitioned to run
// files by their join-key hash, each partition pair is joined
// independently (build the small side, stream the probe side), and the
// per-partition outputs are merged back into the exact row order the
// in-memory join produces.
//
// Order reconstruction: every spilled row carries its original row index
// (rid). The in-memory join emits rows in (left row order, matches in
// right row order) — i.e. ascending (lrid, rrid). Each emitted row is
// tagged with a merge key mk = (lrid+1)<<32 | (rrid+1) (0 low half for
// LEFT JOIN outer rows, which never coexist with matches of the same left
// row); partition outputs are mk-sorted by construction, so a k-way merge
// by mk reproduces the materialized order bit for bit.
//
// On top of the grace join, trySpillJoinAgg runs a grouped aggregate over
// a single join without ever materializing the joined relation: the
// merged stream is fed straight into the spilled-aggregation sink with
// true row ordinals, so results stay bit-identical to the in-memory
// join → filter → aggregate pipeline.

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// wouldSpill reports whether an operator expecting to charge about est
// more bytes should take its disk-backed path instead.
func (ec *ExecContext) wouldSpill(est int64) bool {
	if !ec.spillEnabled() {
		return false
	}
	b := ec.budget()
	return b > 0 && ec.Acct.Live()+est > b
}

// joinedSchema is the output schema of a hash join: left columns then
// right columns (both already alias-qualified).
func joinedSchema(left, right *Table) Schema {
	s := append(Schema{}, left.Schema()...)
	return append(s, right.Schema()...)
}

// joinSpill carries one grace join's fixed state: the two (qualified,
// pushed-filtered) sides, the join-key column indexes, which key pairs
// need float64 promotion, and the accumulated spill statistics.
type joinSpill struct {
	ec           *ExecContext
	left, right  *Table
	kidxL, kidxR []int
	promote      []bool
	jc           JoinClause
	residual     Expr // ON-clause residual, applied per emitted batch
	node         *PlanNode
	spilled      int64
	leafParts    int64
	groups       int64
	outRuns      []string
}

func newJoinSpill(ec *ExecContext, left, right *Table, lk, rk []string, jc JoinClause, residual Expr, node *PlanNode) (*joinSpill, error) {
	js := &joinSpill{ec: ec, left: left, right: right, jc: jc, residual: residual, node: node}
	for i := range lk {
		li := left.Schema().ColIndex(lk[i])
		ri := right.Schema().ColIndex(rk[i])
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("engine: internal: lost join key %q/%q", lk[i], rk[i])
		}
		js.kidxL = append(js.kidxL, li)
		js.kidxR = append(js.kidxR, ri)
		js.promote = append(js.promote, left.Col(li).Type() != right.Col(ri).Type())
	}
	return js, nil
}

// batchKeys extracts one run batch's join-key vectors (vs is side columns
// + rid), applying the same float64 promotion the in-memory join applies
// to mixed-type key pairs — promotion is elementwise, so per-batch casts
// hash identically to the full-side casts used for routing.
func (js *joinSpill) batchKeys(vs []*Vector, kidx []int) []*Vector {
	kc := make([]*Vector, len(kidx))
	for i, ci := range kidx {
		v := vs[ci]
		if js.promote[i] {
			v = v.CastFloat64()
		}
		kc[i] = v
	}
	return kc
}

// partitionSide streams one side morsel-by-morsel into 16 run files keyed
// by join-key hash. Rows keep their original columns plus their global
// row index; NULL-key rows route by their (deterministic) hash so each
// appears in exactly one partition.
func (js *joinSpill) partitionSide(t *Table, keyCols []*Vector, label string) ([16]string, error) {
	ec := js.ec
	sp := &rowSpiller{ec: ec, label: label}
	nc := t.NumCols()
	for _, m := range ec.morselsOf(t.NumRows()) {
		if err := ec.interrupted(); err != nil {
			sp.close()
			return [16]string{}, err
		}
		n := m.hi - m.lo
		cols := make([]*Vector, nc)
		for j := 0; j < nc; j++ {
			cols[j] = t.Col(j).Slice(m.lo, m.hi)
		}
		kc := make([]*Vector, len(keyCols))
		for j := range keyCols {
			kc[j] = keyCols[j].Slice(m.lo, m.hi)
		}
		hashes := getHashBuf(n)
		hashKeyCols(kc, n, hashes)
		seq := make([]int64, n)
		for r := range seq {
			seq[r] = int64(m.lo + r)
		}
		err := sp.add(hashes, cols, seq, n)
		putHashBuf(hashes)
		if err != nil {
			sp.close()
			return [16]string{}, err
		}
	}
	paths, bytes, err := sp.close()
	js.spilled += bytes
	return paths, err
}

// partitionAndProbe runs the full grace join: partition both sides, then
// join each partition pair, leaving mk-sorted output runs in js.outRuns.
func (js *joinSpill) partitionAndProbe(lKeyCols, rKeyCols []*Vector) error {
	lPaths, err := js.partitionSide(js.left, lKeyCols, "jl")
	if err != nil {
		return err
	}
	rPaths, err := js.partitionSide(js.right, rKeyCols, "jr")
	if err != nil {
		return err
	}
	for p := 0; p < 16; p++ {
		if err := js.process(lPaths[p], rPaths[p], 0); err != nil {
			return err
		}
	}
	return nil
}

// repartition re-splits one run by the next 4 hash bits (sub's depth).
func (js *joinSpill) repartition(rr *runReader, path string, kidx []int, sub *rowSpiller) error {
	for {
		vs, err := rr.next()
		if err == io.EOF {
			break
		}
		if err == nil {
			err = js.ec.interrupted()
		}
		if err != nil {
			rr.close()
			return err
		}
		n := vs[0].Len()
		kc := js.batchKeys(vs, kidx)
		hashes := getHashBuf(n)
		hashKeyCols(kc, n, hashes)
		err = sub.add(hashes, vs[:len(vs)-1], vs[len(vs)-1].Int64s(), n)
		putHashBuf(hashes)
		if err != nil {
			rr.close()
			return err
		}
	}
	if err := rr.close(); err != nil {
		return err
	}
	js.ec.removeRun(path)
	return nil
}

// process joins one partition pair. A build side still larger than half
// the budget re-partitions both sides by the next 4 hash bits (all
// matches of a row live in its own partition, so the pair recursion stays
// aligned); otherwise the pair is joined directly.
func (js *joinSpill) process(lp, rp string, depth int) error {
	ec := js.ec
	if lp == "" {
		// No probe rows: inner and left joins both emit nothing.
		if rp != "" {
			ec.removeRun(rp)
		}
		return nil
	}
	if err := ec.interrupted(); err != nil {
		return err
	}
	var rr *runReader
	if rp != "" {
		var err error
		rr, err = ec.openRun(rp)
		if err != nil {
			return err
		}
		if rr.size > ec.budget()/2 && depth < maxSpillDepth {
			subR := &rowSpiller{ec: ec, label: "jr", depth: depth + 1}
			if err := js.repartition(rr, rp, js.kidxR, subR); err != nil {
				subR.close()
				return err
			}
			rSub, bytes, err := subR.close()
			js.spilled += bytes
			if err != nil {
				return err
			}
			lr, err := ec.openRun(lp)
			if err != nil {
				return err
			}
			subL := &rowSpiller{ec: ec, label: "jl", depth: depth + 1}
			if err := js.repartition(lr, lp, js.kidxL, subL); err != nil {
				subL.close()
				return err
			}
			lSub, bytes, err := subL.close()
			js.spilled += bytes
			if err != nil {
				return err
			}
			for p := 0; p < 16; p++ {
				if err := js.process(lSub[p], rSub[p], depth+1); err != nil {
					return err
				}
			}
			return nil
		}
	}
	return js.leaf(lp, rr, rp, depth)
}

// leaf joins one partition pair directly: load the build (right) side,
// index it exactly like the in-memory join (insertion in rrid order, CSR
// match lists), then stream the probe (left) side batch by batch, writing
// emitted rows + merge keys to an mk-sorted output run.
func (js *joinSpill) leaf(lp string, rr *runReader, rp string, depth int) error {
	ec := js.ec
	lw, rw := js.left.NumCols(), js.right.NumCols()

	var rCols []*Vector
	rTotal := 0
	if rr != nil {
		batches, err := rr.drain()
		if cerr := rr.close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		ec.removeRun(rp)
		if len(batches) > 0 {
			for _, b := range batches {
				rTotal += b[0].Len()
			}
			nc := len(batches[0])
			rCols = make([]*Vector, nc)
			var loaded int64
			for j := 0; j < nc; j++ {
				parts := make([]*Vector, len(batches))
				for i, b := range batches {
					parts[i] = b[j]
				}
				rCols[j] = concatVectors(parts[0].Type(), parts, rTotal)
				loaded += rCols[j].ByteSize()
			}
			ec.charge(loaded)
			defer ec.release(loaded)
		}
	}
	if rCols == nil {
		rCols = make([]*Vector, rw+1)
		for j := 0; j < rw; j++ {
			rCols[j] = NewVector(js.right.Col(j).Type())
		}
		rCols[rw] = NewVector(Int64)
	}
	rrids := rCols[rw].Int64s()

	// Build index over the loaded rows (loaded order = ascending rrid).
	rKeys := js.batchKeys(rCols, js.kidxR)
	rHashes := getHashBuf(rTotal)
	hashKeyCols(rKeys, rTotal, rHashes)
	rNulls := keyNulls(rKeys, rTotal)
	index := newGroupIndex(rTotal)
	buildSrc := index.addSource(rKeys)
	groupOf := make([]int32, rTotal)
	for r := 0; r < rTotal; r++ {
		if r&4095 == 0 {
			if err := ec.interrupted(); err != nil {
				putHashBuf(rHashes)
				return err
			}
		}
		if rNulls != nil && rNulls[r] {
			groupOf[r] = -1
			continue
		}
		groupOf[r] = index.insert(rHashes[r], buildSrc, int32(r))
	}
	putHashBuf(rHashes)
	groups := index.groups()
	off := make([]int32, groups+1)
	for _, g := range groupOf {
		if g >= 0 {
			off[g+1]++
		}
	}
	for g := 0; g < groups; g++ {
		off[g+1] += off[g]
	}
	matchRows := make([]int32, off[groups])
	cursor := append([]int32(nil), off[:groups]...)
	for r, g := range groupOf {
		if g >= 0 {
			matchRows[cursor[g]] = int32(r)
			cursor[g]++
		}
	}
	js.groups += int64(groups)

	// Probe: left run batches arrive in ascending lrid, matches come out in
	// ascending rrid, so the output run is mk-sorted without any sort.
	lr, err := ec.openRun(lp)
	if err != nil {
		return err
	}
	var ow *runWriter
	fail := func(err error) error {
		lr.close()
		if ow != nil {
			ow.close()
		}
		return err
	}
	for {
		vs, err := lr.next()
		if err == io.EOF {
			break
		}
		if err == nil {
			err = ec.interrupted()
		}
		if err != nil {
			return fail(err)
		}
		n := vs[0].Len()
		lrids := vs[lw].Int64s()
		lKeys := js.batchKeys(vs, js.kidxL)
		lHashes := getHashBuf(n)
		hashKeyCols(lKeys, n, lHashes)
		lNulls := keyNulls(lKeys, n)
		probeSrc := index.addSource(lKeys)
		lsel := getSelBuf(n)
		rsel := getSelBuf(n)
		for r := 0; r < n; r++ {
			matched := false
			if lNulls == nil || !lNulls[r] {
				if g := index.find(lHashes[r], probeSrc, int32(r)); g >= 0 {
					for _, mr := range matchRows[off[g]:off[g+1]] {
						lsel = append(lsel, int32(r))
						rsel = append(rsel, mr)
						matched = true
					}
				}
			}
			if !matched && js.jc.Left {
				lsel = append(lsel, int32(r))
				rsel = append(rsel, -1)
			}
		}
		putHashBuf(lHashes)
		if len(lsel) == 0 {
			putSelBuf(lsel)
			putSelBuf(rsel)
			continue
		}
		outCols := make([]*Vector, lw+rw+1)
		for j := 0; j < lw; j++ {
			outCols[j] = vs[j].Gather(lsel)
		}
		for j := 0; j < rw; j++ {
			outCols[lw+j] = rCols[j].GatherOuter(rsel)
		}
		mks := make([]int64, len(lsel))
		for i := range mks {
			mk := (lrids[lsel[i]] + 1) << 32
			if rsel[i] >= 0 {
				mk |= rrids[rsel[i]] + 1
			}
			mks[i] = mk
		}
		putSelBuf(lsel)
		putSelBuf(rsel)
		if js.residual != nil {
			bt, err := NewTableFromVectors(joinedSchema(js.left, js.right), outCols[:lw+rw])
			if err != nil {
				return fail(err)
			}
			sel, err := FilterSel(js.residual, bt)
			if err != nil {
				return fail(err)
			}
			for j := 0; j < lw+rw; j++ {
				outCols[j] = outCols[j].Gather(sel)
			}
			fm := make([]int64, len(sel))
			for i, s := range sel {
				fm[i] = mks[s]
			}
			mks = fm
			if len(mks) == 0 {
				continue
			}
		}
		outCols[lw+rw] = NewInt64Vector(mks, nil)
		if ow == nil {
			ow, err = ec.newRunWriter(fmt.Sprintf("jo-d%d", depth))
			if err != nil {
				return fail(err)
			}
		}
		if err := ow.write(outCols); err != nil {
			return fail(err)
		}
	}
	if err := lr.close(); err != nil {
		if ow != nil {
			ow.close()
		}
		return err
	}
	ec.removeRun(lp)
	js.leafParts++
	if ow != nil {
		js.outRuns = append(js.outRuns, ow.path)
		js.spilled += ow.bytes()
		if err := ow.close(); err != nil {
			return err
		}
	}
	return nil
}

// finishStats folds the join's spill totals onto its plan node and the
// engine/query counters (bytes are already tallied per write).
func (js *joinSpill) finishStats() {
	if js.node != nil {
		js.node.Groups = js.groups
		js.node.SpillParts += js.leafParts
		js.node.SpillBytes += js.spilled
	}
	js.ec.addSpill(0, js.leafParts)
}

// keyNulls returns a per-row any-key-component-NULL flag slice, or nil
// when no key column can hold NULLs.
func keyNulls(keys []*Vector, n int) []bool {
	var nulls []bool
	for _, c := range keys {
		if c.valid != nil {
			nulls = make([]bool, n)
			break
		}
	}
	if nulls != nil {
		for _, c := range keys {
			if c.valid == nil {
				continue
			}
			for r := 0; r < n; r++ {
				if c.IsNull(r) {
					nulls[r] = true
				}
			}
		}
	}
	return nulls
}

// mergeJoinRuns k-way merges mk-sorted output runs back into global mk
// order, flushing batchRows-row batches to fn along with the batch's
// starting row ordinal. Fully consumed runs are deleted eagerly.
func mergeJoinRuns(ec *ExecContext, paths []string, schema Schema, batchRows int, fn func(batch *Table, start int64) error) error {
	type head struct {
		rr   *runReader
		path string
		vs   []*Vector
		mks  []int64
		cur  int
	}
	var heads []*head
	cleanup := func() {
		for _, h := range heads {
			if h.rr != nil {
				h.rr.close()
			}
		}
	}
	advance := func(h *head) error {
		h.cur++
		if h.cur < len(h.mks) {
			return nil
		}
		for {
			vs, err := h.rr.next()
			if err == io.EOF {
				cerr := h.rr.close()
				h.rr, h.vs, h.mks, h.cur = nil, nil, nil, 0
				if cerr != nil {
					return cerr
				}
				ec.removeRun(h.path)
				return nil
			}
			if err != nil {
				return err
			}
			if vs[0].Len() == 0 {
				continue
			}
			h.vs, h.mks, h.cur = vs, vs[len(vs)-1].Int64s(), 0
			return nil
		}
	}
	for _, p := range paths {
		rr, err := ec.openRun(p)
		if err != nil {
			cleanup()
			return err
		}
		h := &head{rr: rr, path: p, cur: -1}
		heads = append(heads, h)
		if err := advance(h); err != nil {
			cleanup()
			return err
		}
	}
	ncols := len(schema)
	newBuilders := func() []*Vector {
		bs := make([]*Vector, ncols)
		for j := range bs {
			bs[j] = NewVector(schema[j].Type)
		}
		return bs
	}
	builders := newBuilders()
	rows := 0
	var start int64
	flush := func() error {
		if rows == 0 {
			return nil
		}
		bt, err := NewTableFromVectors(schema, builders)
		if err != nil {
			return err
		}
		if err := fn(bt, start); err != nil {
			return err
		}
		start += int64(rows)
		builders = newBuilders()
		rows = 0
		return ec.interrupted()
	}
	for {
		var best *head
		for _, h := range heads {
			if h.mks == nil {
				continue
			}
			if best == nil || h.mks[h.cur] < best.mks[best.cur] {
				best = h
			}
		}
		if best == nil {
			break
		}
		for j := 0; j < ncols; j++ {
			if err := appendKeyRow(builders[j], best.vs[j], best.cur); err != nil {
				cleanup()
				return err
			}
		}
		rows++
		if rows == batchRows {
			if err := flush(); err != nil {
				cleanup()
				return err
			}
		}
		if err := advance(best); err != nil {
			cleanup()
			return err
		}
	}
	return flush()
}

// graceHashJoin is hashJoin's disk-backed path: identical output (rows,
// order, float bits), peak memory bounded by partition size instead of
// build + output size. Called with the already-promoted key vectors.
func graceHashJoin(ec *ExecContext, left, right *Table, lKeyCols, rKeyCols []*Vector, lk, rk []string, jc JoinClause, residual Expr, node *PlanNode) (*Table, error) {
	js, err := newJoinSpill(ec, left, right, lk, rk, jc, residual, node)
	if err != nil {
		return nil, err
	}
	if err := js.partitionAndProbe(lKeyCols, rKeyCols); err != nil {
		return nil, err
	}
	js.finishStats()
	schema := joinedSchema(left, right)
	var parts []*Table
	err = mergeJoinRuns(ec, js.outRuns, schema, ec.morselSize(), func(b *Table, _ int64) error {
		parts = append(parts, b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return NewTable(schema), nil
	}
	return ec.concatTables(schema, parts)
}

// trySpillJoinAgg runs SELECT ... FROM a JOIN b ON ... [WHERE] GROUP BY
// ... entirely through the spill machinery when the joined relation would
// blow the memory budget: grace-join both sides, then feed the merged
// stream (tagged with true row ordinals) straight into the spilled
// aggregation — the joined table is never materialized. Returns
// handled=false when the statement shape doesn't fit or the join is
// expected to stay within budget; the caller then takes the normal
// materialize path.
func (db *DB) trySpillJoinAgg(ec *ExecContext, s *SelectStmt, qs *QueryStats) (*Table, bool, error) {
	if !ec.spillEnabled() || len(s.Joins) != 1 || !selHasAgg(s) || len(s.GroupBy) == 0 {
		return nil, false, nil
	}
	plan, err := db.planJoinsFor(ec, s, ec == nil || !ec.NoJoinReorder)
	if err != nil {
		return nil, false, err
	}
	if len(plan.rels) != 2 || len(plan.order) != 1 || plan.reordered {
		return nil, false, nil
	}
	var est int64
	for _, r := range plan.rels {
		if r.table.NumRows() >= 1<<30 {
			return nil, false, nil
		}
		est += r.table.ByteSize() + int64(r.table.NumRows())*16
	}
	if !ec.wouldSpill(est) {
		return nil, false, nil
	}

	// Load both relations exactly as buildJoined would: qualified names,
	// planner-pushed filters below the join.
	inputs := make([]*Table, 2)
	nodes := make([]*PlanNode, 2)
	for i, r := range plan.rels {
		qt := qualifyTable(r.table, r.alias)
		var node *PlanNode
		if qs != nil {
			node = scanPlanNode(r.name, r.table)
		}
		if r.pushed != nil {
			tf := time.Now()
			fnode := &PlanNode{Op: "filter", Detail: "pushed " + r.pushed.String(), RowsIn: int64(qt.NumRows())}
			ec.setOperator("filter pushed " + r.pushed.String())
			sel, err := ec.filterSel(r.pushed, qt, fnode)
			if err != nil {
				return nil, true, err
			}
			qt = ec.gather(qt, sel)
			if qs != nil {
				fnode.Nanos = time.Since(tf).Nanoseconds()
				fnode.RowsOut = int64(qt.NumRows())
				fnode.Batches = int64(qt.NumCols())
				fnode.Bytes = qt.ByteSize()
				fnode.Children = []*PlanNode{node}
				atomic.AddInt64(&qs.FilterNanos, fnode.Nanos)
				node = fnode
			}
		}
		inputs[i] = qt
		nodes[i] = node
	}
	jc := s.Joins[plan.order[0]]
	left, right := inputs[0], inputs[1]
	lk, rk, onResidual, err := splitOn(jc.On, left, right)
	if err != nil {
		return nil, true, err
	}

	t0 := time.Now()
	jnode := &PlanNode{Op: "join", Detail: joinDetail(jc)}
	ec.setOperator("join " + joinDetail(jc))
	js, err := newJoinSpill(ec, left, right, lk, rk, jc, onResidual, jnode)
	if err != nil {
		return nil, true, err
	}
	lKeyCols := make([]*Vector, len(lk))
	rKeyCols := make([]*Vector, len(rk))
	for i := range lk {
		lKeyCols[i] = left.Col(js.kidxL[i])
		rKeyCols[i] = right.Col(js.kidxR[i])
		if js.promote[i] {
			lKeyCols[i] = lKeyCols[i].CastFloat64()
			rKeyCols[i] = rKeyCols[i].CastFloat64()
		}
	}
	if err := js.partitionAndProbe(lKeyCols, rKeyCols); err != nil {
		return nil, true, err
	}
	js.finishStats()
	if qs != nil {
		jnode.RowsIn = int64(left.NumRows() + right.NumRows())
		jnode.Children = []*PlanNode{nodes[0], nodes[1]}
		qs.Root = jnode
	}

	// Aggregate off the merged stream. where is the planner's residual
	// WHERE (the conjuncts not pushed below the join), applied per merged
	// batch just like the fused in-memory filter applies it per morsel.
	where := plan.residual
	schema := joinedSchema(left, right)
	emptyJoined := NewTable(schema)
	prep, err := prepareAgg(s, emptyJoined)
	if err != nil {
		return nil, true, err
	}
	as, err := newAggSpillState(ec, s, prep.aggCalls, prep.emptyKeys, emptyJoined)
	if err != nil {
		return nil, true, err
	}
	var fs *stage
	if where != nil {
		fs = qs.beginStage("filter", where.String(), 0)
		if fn := fs.planNode(); fn != nil {
			fn.Fused = true
		}
	}
	sg := qs.beginStage("aggregate", aggDetail(s), 0)
	if n := sg.planNode(); n != nil && where != nil {
		n.Fused = true
	}
	fnode, anode := fs.planNode(), sg.planNode()

	var total int64
	err = mergeJoinRuns(ec, js.outRuns, schema, ec.morselSize(), func(b *Table, startOrd int64) error {
		n := b.NumRows()
		total += int64(n)
		part := b
		var sel []int32
		if where != nil {
			var err error
			sel, err = FilterSel(where, b)
			if err != nil {
				return err
			}
			if fnode != nil {
				atomic.AddInt64(&fnode.RowsOut, int64(len(sel)))
			}
			fnode.AddMorsels(1)
			part = b.Gather(sel)
		}
		anode.AddMorsels(1)
		pn := part.NumRows()
		if pn == 0 {
			return nil
		}
		seq := make([]int64, pn)
		for r := 0; r < pn; r++ {
			if sel != nil {
				seq[r] = startOrd + int64(sel[r])
			} else {
				seq[r] = startOrd + int64(r)
			}
		}
		return as.feed(part, seq)
	})
	if err != nil {
		as.abort()
		return nil, true, err
	}
	if qs != nil {
		nanos := time.Since(t0).Nanoseconds()
		atomic.AddInt64(&qs.JoinNanos, nanos)
		jnode.Nanos = nanos
		jnode.RowsOut = total
		qs.RowsScanned += int(total)
		qs.Vectors += len(schema)
	}
	ec.addRows(int(total))
	if fnode != nil {
		fnode.RowsIn = total
	}
	if anode != nil {
		anode.RowsIn = total
	}

	mid, err := as.finish(anode)
	if err != nil {
		return nil, true, err
	}
	out, err := aggFinalize(ec, mid, prep.having, prep.items)
	if err != nil {
		return nil, true, err
	}
	if fs != nil {
		fs.end(nil)
	}
	sg.end(out)
	if len(s.OrderBy) > 0 {
		if err := ec.interrupted(); err != nil {
			return nil, true, err
		}
		so := qs.beginStage("order", orderDetail(s.OrderBy), out.NumRows())
		out, err = execOrderBy(s.OrderBy, out)
		if err != nil {
			return nil, true, err
		}
		so.end(out)
	}
	if s.Limit >= 0 || s.Offset > 0 {
		sl := qs.beginStage("limit", limitDetail(s), out.NumRows())
		out = execLimit(s, out)
		sl.end(out)
	} else {
		out = execLimit(s, out)
	}
	if err := ec.interrupted(); err != nil {
		return nil, true, err
	}
	if qs != nil {
		qs.RowsOut += out.NumRows()
		qs.Vectors += len(out.Schema())
	}
	return out, true, nil
}
