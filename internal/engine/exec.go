package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// execSelect runs a parsed SELECT over an input table. It implements the
// pipeline scan → filter → (group-by aggregate | project) → having →
// order by → limit, column-at-a-time over morsels: the filter, aggregate
// and ORDER BY stages fan row ranges out across ec's worker pool (per-
// morsel sort + parallel run merging), while LIMIT stays a serial tail.
// qs (optional, may be nil)
// accumulates rows/vectors touched and grows the plan tree one node per
// executed stage (the scan/join/merge nodes below the first stage are
// planted by db.run and the merge table before this runs).
func execSelect(ec *ExecContext, st *SelectStmt, input *Table, qs *QueryStats) (*Table, error) {
	t := input
	if qs != nil {
		qs.RowsScanned += input.NumRows()
		qs.Vectors += len(input.Schema())
	}
	ec.addRows(input.NumRows())
	if err := ec.interrupted(); err != nil {
		return nil, err
	}

	// Pipeline fusion: when a WHERE precedes a fusible stage and the input
	// is non-empty, the filter runs inside that stage's morsel loop
	// (select → gather → consume per morsel) instead of materializing a
	// filtered intermediate table. Fusion never changes the morsel
	// decomposition rule — morsels still cover the unfused input — so
	// results stay bit-identical at every parallelism degree. Empty inputs
	// take the unfused path so evaluation errors surface identically.
	hasAgg := selHasAgg(st)
	kPrime := -1
	if st.Limit >= 0 {
		kPrime = st.Limit + st.Offset
	}
	useTopk := !hasAgg && len(st.OrderBy) > 0 && kPrime >= 0 &&
		kPrime <= topkMaxCandidates && kPrime < t.NumRows()
	canFuse := st.Where != nil && t.NumRows() > 0
	fuseAgg := canFuse && hasAgg
	fuseExtend := canFuse && !hasAgg && len(st.OrderBy) > 0 && !useTopk
	fuseProject := canFuse && !hasAgg && len(st.OrderBy) == 0 && !st.Star
	whereFused := fuseAgg || fuseExtend || fuseProject || useTopk

	// WHERE (unfused): compute a selection vector morsel-wise, gather once.
	if st.Where != nil && !whereFused {
		sg := qs.beginStage("filter", st.Where.String(), t.NumRows())
		sg.setParallelism(ec.degreeFor(len(ec.morselsOf(t.NumRows()))))
		sel, err := ec.filterSel(st.Where, t, sg.planNode())
		if err != nil {
			return nil, err
		}
		t = ec.gather(t, sel)
		sg.end(t)
	}

	var out *Table
	var err error
	limitApplied := false
	degree := ec.degreeFor(len(ec.morselsOf(t.NumRows())))
	beginFusedFilter := func() *stage {
		if st.Where == nil {
			return nil
		}
		fs := qs.beginStage("filter", st.Where.String(), t.NumRows())
		fs.setParallelism(degree)
		if fn := fs.planNode(); fn != nil {
			fn.Fused = true
		}
		return fs
	}
	switch {
	case hasAgg:
		var fs *stage
		var where Expr
		if fuseAgg {
			where = st.Where
			fs = beginFusedFilter()
		}
		sg := qs.beginStage("aggregate", aggDetail(st), t.NumRows())
		sg.setParallelism(degree)
		if n := sg.planNode(); n != nil && fuseAgg {
			n.Fused = true
		}
		out, err = execAggregate(ec, st, t, sg.planNode(), where, fs.planNode())
		if err != nil {
			return nil, err
		}
		if fs != nil {
			fs.end(nil)
		}
		sg.end(out)
		if len(st.OrderBy) > 0 {
			if err := ec.interrupted(); err != nil {
				return nil, err
			}
			so := qs.beginStage("order", orderDetail(st.OrderBy), out.NumRows())
			out, err = execOrderByPar(ec, st.OrderBy, out, so)
			if err != nil {
				return nil, err
			}
			so.end(out)
		}
	case useTopk:
		// ORDER BY ... LIMIT k: bounded per-morsel selection + merge. Each
		// morsel keeps only its k'=limit+offset best rows, so the sort/merge
		// never materializes the full ordered table. The limit is folded in.
		if err := ec.interrupted(); err != nil {
			return nil, err
		}
		out, err = execTopK(ec, st, t, qs, kPrime, degree, beginFusedFilter)
		if err != nil {
			return nil, err
		}
		limitApplied = true
	case len(st.OrderBy) > 0:
		// ORDER BY may reference source columns that the projection drops
		// (SELECT id ... ORDER BY age), as well as projection aliases. Build
		// an extended table carrying both, sort it, then project.
		if err := ec.interrupted(); err != nil {
			return nil, err
		}
		var ext *Table
		var outNames []string
		if fuseExtend {
			fs := beginFusedFilter()
			sp := qs.beginStage("project", "extend", t.NumRows())
			sp.setParallelism(degree)
			if n := sp.planNode(); n != nil {
				n.Fused = true
			}
			ext, outNames, err = execExtendFused(ec, st, t, fs.planNode(), sp.planNode())
			if err != nil {
				return nil, err
			}
			fs.end(nil)
			sp.end(ext)
		} else {
			sp := qs.beginStage("project", "extend", t.NumRows())
			ext, outNames, err = extendWithProjection(st, t)
			if err != nil {
				return nil, err
			}
			sp.end(ext)
		}
		so := qs.beginStage("order", orderDetail(st.OrderBy), ext.NumRows())
		ext, err = execOrderByPar(ec, st.OrderBy, ext, so)
		if err != nil {
			return nil, err
		}
		so.end(ext)
		sf := qs.beginStage("project", projectDetail(st), ext.NumRows())
		out, err = projectNames(ext, outNames)
		if err != nil {
			return nil, err
		}
		sf.end(out)
	case fuseProject:
		if err := ec.interrupted(); err != nil {
			return nil, err
		}
		fs := beginFusedFilter()
		sp := qs.beginStage("project", projectDetail(st), t.NumRows())
		sp.setParallelism(degree)
		if n := sp.planNode(); n != nil {
			n.Fused = true
		}
		out, err = execProjectFused(ec, st, t, fs.planNode(), sp.planNode())
		if err != nil {
			return nil, err
		}
		fs.end(nil)
		sp.end(out)
	default:
		if err := ec.interrupted(); err != nil {
			return nil, err
		}
		sp := qs.beginStage("project", projectDetail(st), t.NumRows())
		out, err = execProject(st, t)
		if err != nil {
			return nil, err
		}
		sp.end(out)
	}
	if !limitApplied {
		if st.Limit >= 0 || st.Offset > 0 {
			sl := qs.beginStage("limit", limitDetail(st), out.NumRows())
			out = execLimit(st, out)
			sl.end(out)
		} else {
			out = execLimit(st, out)
		}
	}
	// Fused pipelines charge their output at the terminal concat, after the
	// last in-loop interrupt check; settle any resulting hard-limit or
	// deadline cancellation before declaring the statement done.
	if err := ec.interrupted(); err != nil {
		return nil, err
	}
	if qs != nil {
		qs.RowsOut += out.NumRows()
		qs.Vectors += len(out.Schema())
	}
	return out, nil
}

// topkMaxCandidates bounds k'=limit+offset for the top-k operator: past
// this, per-morsel candidate sets stop being "bounded" in any useful sense
// and the full sort path is used instead.
const topkMaxCandidates = 1 << 16

// execTopK implements ORDER BY ... LIMIT k without a full sort: every
// morsel (optionally filtered in-loop) sorts its own extended rows and
// keeps only its first k'=limit+offset; the candidates are concatenated in
// morsel order and re-sorted. A row outside its morsel's first k' has ≥ k'
// rows ahead of it globally, so the merged first k' equal the full stable
// sort's first k' — including tie order, because per-morsel stable sorts
// preserve within-morsel row order and the concat preserves morsel order.
func execTopK(ec *ExecContext, st *SelectStmt, t *Table, qs *QueryStats, kPrime, degree int, beginFusedFilter func() *stage) (*Table, error) {
	fs := beginFusedFilter()
	sg := qs.beginStage("topk", orderDetail(st.OrderBy)+" "+limitDetail(st), t.NumRows())
	sg.setParallelism(degree)
	fnode, node := fs.planNode(), sg.planNode()
	if node != nil && st.Where != nil {
		node.Fused = true
	}

	extEmpty, outNames, err := extendWithProjection(st, t.Slice(0, 0))
	if err != nil {
		return nil, err
	}
	schema := extEmpty.Schema()
	ms := ec.morselsOf(t.NumRows())
	parts := make([]*Table, len(ms))
	err = ec.parallelFor(len(ms), func(i int) error {
		m := ms[i]
		part := t.Slice(m.lo, m.hi)
		if st.Where != nil {
			sel, err := FilterSel(st.Where, part)
			if err != nil {
				return err
			}
			if fnode != nil {
				atomic.AddInt64(&fnode.RowsOut, int64(len(sel)))
			}
			fnode.AddMorsels(1)
			part = part.Gather(sel)
		}
		ext, _, err := extendWithProjection(st, part)
		if err != nil {
			return err
		}
		idx, err := sortIdx(st.OrderBy, ext)
		if err != nil {
			return err
		}
		if len(idx) > kPrime {
			idx = idx[:kPrime]
		}
		parts[i] = ext.Gather(idx)
		node.AddMorsels(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	merged, err := ec.concatTables(schema, parts)
	if err != nil {
		return nil, err
	}
	idx, err := sortIdx(st.OrderBy, merged)
	if err != nil {
		return nil, err
	}
	start := st.Offset
	if start > len(idx) {
		start = len(idx)
	}
	end := len(idx)
	if st.Limit >= 0 && start+st.Limit < end {
		end = start + st.Limit
	}
	out, err := projectNames(merged.Gather(idx[start:end]), outNames)
	if err != nil {
		return nil, err
	}
	ec.charge(out.ByteSize())
	if fs != nil {
		fs.end(nil)
	}
	sg.end(out)
	return out, nil
}

// execExtendFused runs filter → extend fused per morsel: each morsel
// selects its matching rows, gathers them, and evaluates the extended
// projection locally; the morsel outputs concatenate in morsel order.
func execExtendFused(ec *ExecContext, st *SelectStmt, t *Table, fnode, enode *PlanNode) (*Table, []string, error) {
	extEmpty, outNames, err := extendWithProjection(st, t.Slice(0, 0))
	if err != nil {
		return nil, nil, err
	}
	schema := extEmpty.Schema()
	ms := ec.morselsOf(t.NumRows())
	parts := make([]*Table, len(ms))
	err = ec.parallelFor(len(ms), func(i int) error {
		m := ms[i]
		part := t.Slice(m.lo, m.hi)
		sel, err := FilterSel(st.Where, part)
		if err != nil {
			return err
		}
		if fnode != nil {
			atomic.AddInt64(&fnode.RowsOut, int64(len(sel)))
		}
		fnode.AddMorsels(1)
		ext, _, err := extendWithProjection(st, part.Gather(sel))
		if err != nil {
			return err
		}
		parts[i] = ext
		enode.AddMorsels(1)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	merged, err := ec.concatTables(schema, parts)
	if err != nil {
		return nil, nil, err
	}
	return merged, outNames, nil
}

// execProjectFused runs filter → project fused per morsel (non-star
// projections without ORDER BY): no filtered intermediate table is ever
// materialized, only the projected output.
func execProjectFused(ec *ExecContext, st *SelectStmt, t *Table, fnode, pnode *PlanNode) (*Table, error) {
	empty := t.Slice(0, 0)
	schema := make(Schema, len(st.Items))
	for i, it := range st.Items {
		v, err := Eval(it.Expr, empty)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr)
		}
		schema[i] = ColumnDef{Name: name, Type: v.Type()}
	}
	ms := ec.morselsOf(t.NumRows())
	parts := make([]*Table, len(ms))
	err := ec.parallelFor(len(ms), func(i int) error {
		m := ms[i]
		part := t.Slice(m.lo, m.hi)
		sel, err := FilterSel(st.Where, part)
		if err != nil {
			return err
		}
		if fnode != nil {
			atomic.AddInt64(&fnode.RowsOut, int64(len(sel)))
		}
		fnode.AddMorsels(1)
		part = part.Gather(sel)
		cols := make([]*Vector, len(st.Items))
		for k, it := range st.Items {
			v, err := Eval(it.Expr, part)
			if err != nil {
				return err
			}
			cols[k] = v
		}
		pt, err := NewTableFromVectors(schema, cols)
		if err != nil {
			return err
		}
		parts[i] = pt
		pnode.AddMorsels(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ec.concatTables(schema, parts)
}

// extendWithProjection evaluates the select items over t and returns a
// table holding the projected columns first (under their output names)
// followed by the source columns that do not collide, plus the list of
// output column names in order.
func extendWithProjection(st *SelectStmt, t *Table) (*Table, []string, error) {
	var schema Schema
	var cols []*Vector
	var outNames []string
	if st.Star {
		for i, c := range t.Schema() {
			schema = append(schema, c)
			cols = append(cols, t.Col(i))
			outNames = append(outNames, c.Name)
		}
		return mustTable(schema, cols, outNames)
	}
	taken := map[string]bool{}
	for _, it := range st.Items {
		v, err := Eval(it.Expr, t)
		if err != nil {
			return nil, nil, err
		}
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr)
		}
		schema = append(schema, ColumnDef{Name: name, Type: v.Type()})
		cols = append(cols, v)
		outNames = append(outNames, name)
		taken[strings.ToLower(name)] = true
	}
	for i, c := range t.Schema() {
		if taken[strings.ToLower(c.Name)] {
			continue
		}
		schema = append(schema, c)
		cols = append(cols, t.Col(i))
	}
	return mustTable(schema, cols, outNames)
}

func mustTable(schema Schema, cols []*Vector, outNames []string) (*Table, []string, error) {
	tab, err := NewTableFromVectors(schema, cols)
	if err != nil {
		return nil, nil, err
	}
	return tab, outNames, nil
}

// projectNames selects the named columns in order.
func projectNames(t *Table, names []string) (*Table, error) {
	schema := make(Schema, len(names))
	cols := make([]*Vector, len(names))
	for i, n := range names {
		idx := t.Schema().ColIndex(n)
		if idx < 0 {
			return nil, fmt.Errorf("engine: internal: lost column %q", n)
		}
		schema[i] = t.Schema()[idx]
		cols[i] = t.Col(idx)
	}
	return NewTableFromVectors(schema, cols)
}

func execProject(st *SelectStmt, t *Table) (*Table, error) {
	if st.Star {
		return t, nil
	}
	schema := make(Schema, len(st.Items))
	cols := make([]*Vector, len(st.Items))
	for i, it := range st.Items {
		v, err := Eval(it.Expr, t)
		if err != nil {
			return nil, err
		}
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr)
		}
		schema[i] = ColumnDef{Name: name, Type: v.Type()}
		cols[i] = v
	}
	return NewTableFromVectors(schema, cols)
}

func exprName(e Expr) string {
	if c, ok := e.(*ColRef); ok {
		return c.Name
	}
	return strings.ToLower(e.String())
}

func execLimit(st *SelectStmt, t *Table) *Table {
	n := t.NumRows()
	start := st.Offset
	if start > n {
		start = n
	}
	end := n
	if st.Limit >= 0 && start+st.Limit < n {
		end = start + st.Limit
	}
	if start == 0 && end == n {
		return t
	}
	sel := make([]int32, 0, end-start)
	for i := start; i < end; i++ {
		sel = append(sel, int32(i))
	}
	return t.Gather(sel)
}

func execOrderBy(keys []OrderItem, t *Table) (*Table, error) {
	idx, err := sortIdx(keys, t)
	if err != nil {
		return nil, err
	}
	return t.Gather(idx), nil
}

// sortIdx returns the stable sort permutation of t's rows under the ORDER
// BY keys without gathering; top-k truncates it before materializing.
func sortIdx(keys []OrderItem, t *Table) ([]int32, error) {
	n := t.NumRows()
	vecs := make([]*Vector, len(keys))
	for i, k := range keys {
		v, err := Eval(k.Expr, t)
		if err != nil {
			return nil, err
		}
		vecs[i] = v
	}
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := int(idx[a]), int(idx[b])
		for k, v := range vecs {
			c := compareRows(v, ia, ib)
			if c == 0 {
				continue
			}
			if keys[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return idx, nil
}

// compareRows orders two rows of one vector: NULLs sort first, and NaNs
// sort after every number (so ASC puts them last, DESC first). Giving NaN
// a fixed position keeps the comparator total — IEEE NaN comparisons are
// all false, which would otherwise make "equality" intransitive and the
// sorted order an artifact of the sort algorithm rather than of the data;
// totality is what lets the parallel merge reproduce the serial sort
// bit-identically.
func compareRows(v *Vector, a, b int) int {
	na, nb := v.IsNull(a), v.IsNull(b)
	switch {
	case na && nb:
		return 0
	case na:
		return -1
	case nb:
		return 1
	}
	switch v.Type() {
	case String:
		return strings.Compare(v.StringAt(a), v.StringAt(b))
	case Bool:
		x, y := v.Bools()[a], v.Bools()[b]
		switch {
		case x == y:
			return 0
		case !x:
			return -1
		default:
			return 1
		}
	default:
		f := v.CastFloat64().Float64s()
		x, y := f[a], f[b]
		nx, ny := math.IsNaN(x), math.IsNaN(y)
		switch {
		case nx && ny:
			return 0
		case nx:
			return 1
		case ny:
			return -1
		case x < y:
			return -1
		case x > y:
			return 1
		default:
			return 0
		}
	}
}

// --- aggregation ---

// aggState accumulates one aggregate across groups.
type aggState struct {
	call *AggCall
	// per-group state
	count    []int64
	sum      []float64
	sum2     []float64
	minF     []float64
	maxF     []float64
	minS     []string
	maxS     []string
	seenMM   []bool // min/max initialized
	sumY     []float64
	sumXY    []float64
	sumY2    []float64
	vals     [][]float64  // for median/quantile
	distinct *distinctSet // COUNT(DISTINCT ...): typed (group, value) set
	qarg     float64      // quantile fraction
	strMM    bool         // string-typed min/max
}

func newAggState(call *AggCall, groups int, t *Table) (*aggState, []*Vector, error) {
	var argVecs []*Vector
	for _, a := range call.Args {
		v, err := Eval(a, t)
		if err != nil {
			return nil, nil, err
		}
		argVecs = append(argVecs, v)
	}
	return newAggStateFromArgs(call, groups, argVecs)
}

// newAggStateFromArgs builds the state from already-evaluated argument
// vectors. The spill path reloads processed arg vectors from run files
// (quantile's literal fraction arg is already trimmed there; the literal
// itself still comes from the call AST).
func newAggStateFromArgs(call *AggCall, groups int, argVecs []*Vector) (*aggState, []*Vector, error) {
	s := &aggState{call: call}
	name := call.Name
	switch name {
	case "count":
		s.count = make([]int64, groups)
		if call.Distinct {
			s.distinct = newDistinctSet()
		}
	case "sum", "avg", "stddev_samp", "stddev", "var_samp", "variance":
		s.count = make([]int64, groups)
		s.sum = make([]float64, groups)
		s.sum2 = make([]float64, groups)
	case "min", "max":
		if len(argVecs) == 1 && argVecs[0].Type() == String {
			s.strMM = true
			s.minS = make([]string, groups)
			s.maxS = make([]string, groups)
		} else {
			s.minF = make([]float64, groups)
			s.maxF = make([]float64, groups)
		}
		s.seenMM = make([]bool, groups)
		s.count = make([]int64, groups)
	case "corr":
		if len(call.Args) != 2 {
			return nil, nil, fmt.Errorf("engine: corr takes 2 arguments")
		}
		s.count = make([]int64, groups)
		s.sum = make([]float64, groups)
		s.sumY = make([]float64, groups)
		s.sum2 = make([]float64, groups)
		s.sumY2 = make([]float64, groups)
		s.sumXY = make([]float64, groups)
	case "median", "quantile":
		s.count = make([]int64, groups)
		s.vals = make([][]float64, groups)
		s.qarg = 0.5
		if name == "quantile" {
			if len(call.Args) != 2 {
				return nil, nil, fmt.Errorf("engine: quantile takes (expr, fraction)")
			}
			lit, ok := call.Args[1].(*Lit)
			if !ok {
				return nil, nil, fmt.Errorf("engine: quantile fraction must be a literal")
			}
			switch f := lit.Val.(type) {
			case float64:
				s.qarg = f
			case int64:
				s.qarg = float64(f)
			default:
				return nil, nil, fmt.Errorf("engine: bad quantile fraction")
			}
			argVecs = argVecs[:1]
		}
	default:
		return nil, nil, fmt.Errorf("engine: unknown aggregate %q", name)
	}
	// Numeric aggregates view args as float64.
	if !s.strMM && !call.Star {
		for i, v := range argVecs {
			if v.Type() != String {
				argVecs[i] = v.CastFloat64()
			}
		}
	}
	return s, argVecs, nil
}

// observeAll folds every row into the per-group accumulators. groupOf may
// be nil (single group). The moment-style aggregates get a branch-light
// fast path over the raw float payload — the engine's vectorized execution
// the paper leans on.
func (s *aggState) observeAll(groupOf []int, args []*Vector, n int) {
	gOf := func(row int) int {
		if groupOf == nil {
			return 0
		}
		return groupOf[row]
	}
	switch s.call.Name {
	case "sum", "avg", "stddev_samp", "stddev", "var_samp", "variance":
		if len(args) == 0 {
			return
		}
		xs := args[0].Float64s()
		valid := args[0].Valid()
		if groupOf == nil && valid == nil {
			// Hot path: single group, no NULLs — tight loop.
			var cnt int64
			var sum, sum2 float64
			for _, x := range xs {
				cnt++
				sum += x
				sum2 += x * x
			}
			s.count[0] += cnt
			s.sum[0] += sum
			s.sum2[0] += sum2
			return
		}
		for row := 0; row < n; row++ {
			if !valid.Get(row) {
				continue
			}
			g := gOf(row)
			x := xs[row]
			s.count[g]++
			s.sum[g] += x
			s.sum2[g] += x * x
		}
		return
	case "count":
		if s.call.Star {
			if groupOf == nil {
				s.count[0] += int64(n)
				return
			}
			for row := 0; row < n; row++ {
				s.count[groupOf[row]]++
			}
			return
		}
		if !s.call.Distinct && len(args) > 0 {
			valid := args[0].Valid()
			if valid == nil {
				if groupOf == nil {
					s.count[0] += int64(n)
					return
				}
				for row := 0; row < n; row++ {
					s.count[groupOf[row]]++
				}
				return
			}
			for row := 0; row < n; row++ {
				if valid.Get(row) {
					s.count[gOf(row)]++
				}
			}
			return
		}
		if s.call.Distinct && len(args) > 0 {
			s.observeDistinct(groupOf, args[0], n)
			return
		}
	}
	for row := 0; row < n; row++ {
		s.observe(gOf(row), args, row)
	}
}

func (s *aggState) observe(g int, args []*Vector, row int) {
	if s.call.Star {
		s.count[g]++
		return
	}
	if len(args) == 0 {
		return
	}
	if args[0].IsNull(row) {
		return
	}
	switch s.call.Name {
	case "count":
		s.count[g]++
	case "sum", "avg", "stddev_samp", "stddev", "var_samp", "variance":
		x := args[0].Float64s()[row]
		s.count[g]++
		s.sum[g] += x
		s.sum2[g] += x * x
	case "min", "max":
		s.count[g]++
		if s.strMM {
			x := args[0].StringAt(row)
			if !s.seenMM[g] {
				s.minS[g], s.maxS[g], s.seenMM[g] = x, x, true
				return
			}
			if x < s.minS[g] {
				s.minS[g] = x
			}
			if x > s.maxS[g] {
				s.maxS[g] = x
			}
			return
		}
		x := args[0].Float64s()[row]
		if !s.seenMM[g] {
			s.minF[g], s.maxF[g], s.seenMM[g] = x, x, true
			return
		}
		if x < s.minF[g] {
			s.minF[g] = x
		}
		if x > s.maxF[g] {
			s.maxF[g] = x
		}
	case "corr":
		if args[1].IsNull(row) {
			return
		}
		x, y := args[0].Float64s()[row], args[1].Float64s()[row]
		s.count[g]++
		s.sum[g] += x
		s.sumY[g] += y
		s.sum2[g] += x * x
		s.sumY2[g] += y * y
		s.sumXY[g] += x * y
	case "median", "quantile":
		s.count[g]++
		s.vals[g] = append(s.vals[g], args[0].Float64s()[row])
	}
}

// observeDistinct folds a morsel into a COUNT(DISTINCT ...) accumulator:
// the value column is hashed once by the typed kernels, then each non-NULL
// row probes the (group, value) set — no per-row key rendering.
func (s *aggState) observeDistinct(groupOf []int, v *Vector, n int) {
	src := s.distinct.addSource(v)
	hashes := getHashBuf(n)
	hashKeyCols([]*Vector{v}, n, hashes)
	for row := 0; row < n; row++ {
		if v.IsNull(row) {
			continue
		}
		g := 0
		if groupOf != nil {
			g = groupOf[row]
		}
		if s.distinct.insert(hashes[row], int32(g), src, int32(row)) {
			s.count[g]++
		}
	}
	putHashBuf(hashes)
}

// result materializes the aggregate's output column.
func (s *aggState) result(groups int) *Vector {
	switch s.call.Name {
	case "count":
		out := make([]int64, groups)
		copy(out, s.count)
		return NewInt64Vector(out, nil)
	case "sum":
		return s.floatResult(groups, func(g int) (float64, bool) {
			if s.count[g] == 0 {
				return 0, false
			}
			return s.sum[g], true
		})
	case "avg":
		return s.floatResult(groups, func(g int) (float64, bool) {
			if s.count[g] == 0 {
				return 0, false
			}
			return s.sum[g] / float64(s.count[g]), true
		})
	case "stddev_samp", "stddev", "var_samp", "variance":
		return s.floatResult(groups, func(g int) (float64, bool) {
			n := float64(s.count[g])
			if n < 2 {
				return 0, false
			}
			v := (s.sum2[g] - s.sum[g]*s.sum[g]/n) / (n - 1)
			if v < 0 {
				v = 0
			}
			if s.call.Name == "stddev_samp" || s.call.Name == "stddev" {
				return math.Sqrt(v), true
			}
			return v, true
		})
	case "min", "max":
		if s.strMM {
			out := NewVector(String)
			for g := 0; g < groups; g++ {
				if !s.seenMM[g] {
					out.AppendNull()
					continue
				}
				if s.call.Name == "min" {
					out.AppendString(s.minS[g])
				} else {
					out.AppendString(s.maxS[g])
				}
			}
			return out
		}
		return s.floatResult(groups, func(g int) (float64, bool) {
			if !s.seenMM[g] {
				return 0, false
			}
			if s.call.Name == "min" {
				return s.minF[g], true
			}
			return s.maxF[g], true
		})
	case "corr":
		return s.floatResult(groups, func(g int) (float64, bool) {
			n := float64(s.count[g])
			if n < 2 {
				return 0, false
			}
			cov := s.sumXY[g] - s.sum[g]*s.sumY[g]/n
			vx := s.sum2[g] - s.sum[g]*s.sum[g]/n
			vy := s.sumY2[g] - s.sumY[g]*s.sumY[g]/n
			if vx <= 0 || vy <= 0 {
				return 0, false
			}
			return cov / math.Sqrt(vx*vy), true
		})
	case "median", "quantile":
		return s.floatResult(groups, func(g int) (float64, bool) {
			if len(s.vals[g]) == 0 {
				return 0, false
			}
			sorted := append([]float64(nil), s.vals[g]...)
			sort.Float64s(sorted)
			return quantileSorted(sorted, s.qarg), true
		})
	}
	return nil
}

func (s *aggState) floatResult(groups int, f func(int) (float64, bool)) *Vector {
	out := make([]float64, groups)
	valid := NewBitmap(groups)
	for g := 0; g < groups; g++ {
		v, ok := f(g)
		if !ok {
			valid.Set(g, false)
			out[g] = math.NaN()
			continue
		}
		out[g] = v
	}
	return NewFloat64Vector(out, valid)
}

// quantileSorted is a type-7 quantile over a sorted slice (mirrors
// stats.QuantileSorted; duplicated to keep the engine dependency-free).
func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	if lo >= n-1 {
		return s[n-1]
	}
	if lo < 0 {
		return s[0]
	}
	frac := h - float64(lo)
	return s[lo] + frac*(s[lo+1]-s[lo])
}

// rewriteAgg replaces aggregate calls and group-key expressions inside e
// with references to the synthetic columns of the intermediate table.
func rewriteAgg(e Expr, keys map[string]string, aggs *[]*AggCall, aggCols map[string]string) Expr {
	if k, ok := keys[e.String()]; ok {
		return &ColRef{Name: k}
	}
	switch t := e.(type) {
	case *AggCall:
		sig := t.String()
		if col, ok := aggCols[sig]; ok {
			return &ColRef{Name: col}
		}
		col := fmt.Sprintf("$agg%d", len(*aggs))
		aggCols[sig] = col
		*aggs = append(*aggs, t)
		return &ColRef{Name: col}
	case *Unary:
		return &Unary{Op: t.Op, X: rewriteAgg(t.X, keys, aggs, aggCols)}
	case *Binary:
		return &Binary{Op: t.Op, L: rewriteAgg(t.L, keys, aggs, aggCols), R: rewriteAgg(t.R, keys, aggs, aggCols)}
	case *Call:
		args := make([]Expr, len(t.Args))
		for i, a := range t.Args {
			args[i] = rewriteAgg(a, keys, aggs, aggCols)
		}
		return &Call{Name: t.Name, Args: args}
	case *IsNullExpr:
		return &IsNullExpr{X: rewriteAgg(t.X, keys, aggs, aggCols), Not: t.Not}
	case *CaseExpr:
		out := &CaseExpr{}
		for _, w := range t.Whens {
			out.Whens = append(out.Whens, CaseWhen{
				Cond: rewriteAgg(w.Cond, keys, aggs, aggCols),
				Then: rewriteAgg(w.Then, keys, aggs, aggCols),
			})
		}
		if t.Else != nil {
			out.Else = rewriteAgg(t.Else, keys, aggs, aggCols)
		}
		return out
	}
	return e
}

// morselAgg is one morsel's partial aggregation: its thread-local group
// table (groups in first-appearance order, which is row order within the
// morsel) and one partial accumulator per aggregate call.
type morselAgg struct {
	hashes  []uint64    // key-tuple hash per local group (grouped only)
	rows    []int32     // representative local row per local group
	keyVecs []*Vector   // group-key vectors evaluated over the morsel
	states  []*aggState // one per aggregate call, sized to local groups
}

// execAggregate runs partitioned hash aggregation: every morsel groups and
// accumulates into thread-local state, then a serial combine step assigns
// global group ids and folds the partials in morsel order. Because morsels
// are row ranges in order and local first-appearance order is row order,
// global group ids equal first-appearance-in-row-order ids — exactly what
// the single-threaded implementation produced — and the fixed fold order
// makes float results bit-identical at every parallelism degree.
//
// When where is non-nil the WHERE filter is fused into the morsel loop:
// morsels decompose the unfiltered input, and each morsel selects and
// gathers its matching rows before grouping, so no filtered intermediate
// table is materialized. fnode (optional) receives the fused filter's
// per-morsel stats.
func execAggregate(ec *ExecContext, st *SelectStmt, t *Table, node *PlanNode, where Expr, fnode *PlanNode) (*Table, error) {
	grouped := len(st.GroupBy) > 0

	// 1+2. Rewrite items/HAVING, collect aggregate calls, validate over an
	// empty row range.
	empty := t.Slice(0, 0)
	prep, err := prepareAgg(st, empty)
	if err != nil {
		return nil, err
	}
	items, having, aggCalls, emptyKeys := prep.items, prep.having, prep.aggCalls, prep.emptyKeys

	// 3. Per-morsel partial aggregation (parallel). Each morsel charges its
	// partial's approximate footprint once (key vectors + per-group state);
	// the total is released after the combine, when the partials die.
	// With spilling available, every morsel polls the soft budget before
	// building its partial; crossing it aborts the in-memory pass with a
	// sentinel and the aggregation restarts through the disk-backed
	// partitioned path (bit-identical results, bounded memory).
	spillOK := grouped && ec.spillEnabled()
	ms := ec.morselsOf(t.NumRows())
	partials := make([]*morselAgg, len(ms))
	var partialBytes atomic.Int64
	err = ec.parallelFor(len(ms), func(i int) error {
		if spillOK && ec.overBudget() {
			return errAggOverBudget
		}
		m := ms[i]
		part := t.Slice(m.lo, m.hi)
		if where != nil {
			sel, err := FilterSel(where, part)
			if err != nil {
				return err
			}
			if fnode != nil {
				atomic.AddInt64(&fnode.RowsOut, int64(len(sel)))
			}
			fnode.AddMorsels(1)
			part = part.Gather(sel)
		}
		n := part.NumRows()
		ma := &morselAgg{}
		var groupOf []int
		localGroups := 1
		if grouped {
			ma.keyVecs = make([]*Vector, len(st.GroupBy))
			for k, g := range st.GroupBy {
				v, err := Eval(g, part)
				if err != nil {
					return err
				}
				ma.keyVecs[k] = v
			}
			// Vectorized grouping: hash every row's key tuple with the typed
			// kernels, then assign dense local ids through the open-addressing
			// table (first-appearance order = row order within the morsel).
			groupOf = make([]int, n)
			hashes := getHashBuf(n)
			hashKeyCols(ma.keyVecs, n, hashes)
			gi := newGroupIndex(0)
			gi.addSource(ma.keyVecs)
			for r := 0; r < n; r++ {
				groupOf[r] = int(gi.insert(hashes[r], 0, int32(r)))
			}
			putHashBuf(hashes)
			ma.hashes = gi.hashes
			ma.rows = make([]int32, len(gi.refs))
			for g, rf := range gi.refs {
				ma.rows[g] = rf.row
			}
			localGroups = gi.groups()
		}
		ma.states = make([]*aggState, len(aggCalls))
		for k, c := range aggCalls {
			s, av, err := newAggState(c, localGroups, part)
			if err != nil {
				return err
			}
			s.observeAll(groupOf, av, n)
			ma.states[k] = s
		}
		partials[i] = ma
		if ec != nil && ec.Acct != nil {
			b := ma.approxBytes(localGroups)
			partialBytes.Add(b)
			ec.charge(b)
		}
		node.AddMorsels(1)
		return nil
	})
	if spillOK && err == errAggOverBudget {
		// The in-memory partials crossed the budget: drop them (and their
		// stage counters — the spill pass re-counts every morsel) and redo
		// the aggregation through the disk-backed partitioned path.
		ec.release(partialBytes.Load())
		if node != nil {
			atomic.StoreInt64(&node.Morsels, 0)
		}
		if fnode != nil {
			atomic.StoreInt64(&fnode.Morsels, 0)
			atomic.StoreInt64(&fnode.RowsOut, 0)
		}
		mid, err := execAggSpill(ec, st, t, node, fnode, where, aggCalls, emptyKeys, empty)
		if err != nil {
			return nil, err
		}
		return aggFinalize(ec, mid, having, items)
	}
	if err != nil {
		return nil, err
	}

	// 4. Combine: assign global group ids in morsel order (= first
	// appearance in row order) and fold every morsel's partials. Local
	// key-tuple hashes are content-based, so they carry over to the global
	// table unchanged; equality falls back to the typed key vectors.
	groups := 1
	var globalIdx *groupIndex // grouped only; refs locate representatives
	gmaps := make([][]int, len(partials))
	if grouped {
		hint := 0
		for _, ma := range partials {
			hint += len(ma.rows)
		}
		globalIdx = newGroupIndex(hint)
		for mi, ma := range partials {
			src := globalIdx.addSource(ma.keyVecs)
			gmaps[mi] = make([]int, len(ma.rows))
			for lg := range ma.rows {
				gmaps[mi][lg] = int(globalIdx.insert(ma.hashes[lg], src, ma.rows[lg]))
			}
		}
		groups = globalIdx.groups()
	}
	states := make([]*aggState, len(aggCalls))
	for k, c := range aggCalls {
		s, _, err := newAggState(c, groups, empty)
		if err != nil {
			return nil, err
		}
		for mi, ma := range partials {
			s.mergeFrom(ma.states[k], gmaps[mi])
		}
		states[k] = s
	}

	// 5. Build the intermediate table: $key* columns + $agg* columns. Key
	// cells are copied typed from each group's representative row (located
	// by the global table's refs) — no boxing through interface values.
	var schema Schema
	var cols []*Vector
	for i := range st.GroupBy {
		out := NewVector(emptyKeys[i].Type())
		for g := 0; g < groups; g++ {
			rf := globalIdx.refs[g]
			kv := partials[rf.src].keyVecs[i]
			if err := appendKeyRow(out, kv, int(rf.row)); err != nil {
				return nil, err
			}
		}
		schema = append(schema, ColumnDef{Name: fmt.Sprintf("$key%d", i), Type: out.Type()})
		cols = append(cols, out)
	}
	if node != nil {
		node.Groups = int64(groups)
	}
	for i, s := range states {
		v := s.result(groups)
		schema = append(schema, ColumnDef{Name: fmt.Sprintf("$agg%d", i), Type: v.Type()})
		cols = append(cols, v)
	}
	mid, err := NewTableFromVectors(schema, cols)
	if err != nil {
		return nil, err
	}
	// The partials are garbage after the combine; the intermediate table is
	// the stage's live payload now.
	ec.release(partialBytes.Load())
	ec.charge(mid.ByteSize())

	return aggFinalize(ec, mid, having, items)
}

// aggPrep is the statement-level preparation of an aggregation: rewritten
// select items and HAVING (aggregate calls and group keys replaced by
// $agg*/$key* column refs), the collected aggregate calls, and the typed
// empty group-key vectors.
type aggPrep struct {
	items     []SelectItem
	having    Expr
	aggCalls  []*AggCall
	emptyKeys []*Vector
}

// prepareAgg rewrites the statement against the (empty) input schema and
// validates group keys and aggregate arguments, so errors (unknown
// columns, bad quantile fractions, corr arity) surface deterministically
// even when the input has no rows. Shared by the in-memory aggregate and
// the spilled join→aggregate path, which never materializes its input.
func prepareAgg(st *SelectStmt, empty *Table) (*aggPrep, error) {
	keyNames := map[string]string{}
	for i, g := range st.GroupBy {
		keyNames[g.String()] = fmt.Sprintf("$key%d", i)
	}
	p := &aggPrep{}
	aggCols := map[string]string{}
	p.items = make([]SelectItem, len(st.Items))
	for i, it := range st.Items {
		p.items[i] = SelectItem{Expr: rewriteAgg(it.Expr, keyNames, &p.aggCalls, aggCols), Alias: it.Alias}
		if p.items[i].Alias == "" {
			p.items[i].Alias = exprName(it.Expr)
		}
	}
	if st.Having != nil {
		p.having = rewriteAgg(st.Having, keyNames, &p.aggCalls, aggCols)
	}
	p.emptyKeys = make([]*Vector, len(st.GroupBy))
	for i, g := range st.GroupBy {
		v, err := Eval(g, empty)
		if err != nil {
			return nil, err
		}
		p.emptyKeys[i] = v
	}
	for _, c := range p.aggCalls {
		if _, _, err := newAggState(c, 0, empty); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// aggFinalize applies the HAVING filter (group counts are small: serial)
// and the final projection to the $key/$agg intermediate table. Shared by
// the in-memory and spilled aggregation paths.
func aggFinalize(ec *ExecContext, mid *Table, having Expr, items []SelectItem) (*Table, error) {
	if having != nil {
		sel, err := FilterSel(having, mid)
		if err != nil {
			return nil, err
		}
		mid = mid.Gather(sel)
	}
	outSchema := make(Schema, len(items))
	outCols := make([]*Vector, len(items))
	for i, it := range items {
		v, err := Eval(it.Expr, mid)
		if err != nil {
			return nil, err
		}
		outSchema[i] = ColumnDef{Name: it.Alias, Type: v.Type()}
		outCols[i] = v
	}
	out, err := NewTableFromVectors(outSchema, outCols)
	if err != nil {
		return nil, err
	}
	ec.charge(out.ByteSize())
	return out, nil
}

// approxBytes estimates one morsel partial's footprint: the evaluated key
// vectors plus a coarse per-group, per-aggregate state cost. An estimate is
// enough — the accountant tracks operator-scale allocations, not bytes-exact
// heap usage.
func (ma *morselAgg) approxBytes(localGroups int) int64 {
	var b int64
	for _, v := range ma.keyVecs {
		b += v.ByteSize()
	}
	b += int64(len(ma.hashes))*8 + int64(len(ma.rows))*4
	b += int64(localGroups) * int64(len(ma.states)) * 48
	return b
}

// appendKeyRow appends row r of src to out with a typed copy (NULL stays
// NULL). The types match by construction — both come from evaluating the
// same group-key expression — but a mismatch falls back to the converting
// AppendValue rather than corrupting the column.
func appendKeyRow(out, src *Vector, r int) error {
	if src.IsNull(r) {
		out.AppendNull()
		return nil
	}
	if out.typ != src.typ {
		return out.AppendValue(src.Value(r))
	}
	switch src.typ {
	case Float64:
		out.AppendFloat64(src.f64[r])
	case Int64:
		out.AppendInt64(src.i64[r])
	case Bool:
		out.AppendBool(src.b[r])
	case String:
		out.AppendString(src.dict.Value(src.codes[r]))
	}
	return nil
}

// mergeFrom folds src (one morsel's partial state) into dst. gmap maps
// src's local group ids to dst's global ids; nil means identity (the
// single global group). Callers fold morsels in morsel-index order, which
// fixes the float reduction order across parallelism degrees.
func (dst *aggState) mergeFrom(src *aggState, gmap []int) {
	gOf := func(lg int) int {
		if gmap == nil {
			return lg
		}
		return gmap[lg]
	}
	switch dst.call.Name {
	case "count":
		if dst.call.Distinct {
			dst.distinct.mergeFrom(src.distinct, gmap, dst.count)
			return
		}
		for lg, c := range src.count {
			dst.count[gOf(lg)] += c
		}
	case "sum", "avg", "stddev_samp", "stddev", "var_samp", "variance":
		for lg := range src.count {
			g := gOf(lg)
			dst.count[g] += src.count[lg]
			dst.sum[g] += src.sum[lg]
			dst.sum2[g] += src.sum2[lg]
		}
	case "min", "max":
		for lg := range src.count {
			g := gOf(lg)
			dst.count[g] += src.count[lg]
			if !src.seenMM[lg] {
				continue
			}
			if !dst.seenMM[g] {
				dst.seenMM[g] = true
				if dst.strMM {
					dst.minS[g], dst.maxS[g] = src.minS[lg], src.maxS[lg]
				} else {
					dst.minF[g], dst.maxF[g] = src.minF[lg], src.maxF[lg]
				}
				continue
			}
			if dst.strMM {
				if src.minS[lg] < dst.minS[g] {
					dst.minS[g] = src.minS[lg]
				}
				if src.maxS[lg] > dst.maxS[g] {
					dst.maxS[g] = src.maxS[lg]
				}
			} else {
				if src.minF[lg] < dst.minF[g] {
					dst.minF[g] = src.minF[lg]
				}
				if src.maxF[lg] > dst.maxF[g] {
					dst.maxF[g] = src.maxF[lg]
				}
			}
		}
	case "corr":
		for lg := range src.count {
			g := gOf(lg)
			dst.count[g] += src.count[lg]
			dst.sum[g] += src.sum[lg]
			dst.sumY[g] += src.sumY[lg]
			dst.sum2[g] += src.sum2[lg]
			dst.sumY2[g] += src.sumY2[lg]
			dst.sumXY[g] += src.sumXY[lg]
		}
	case "median", "quantile":
		for lg := range src.count {
			g := gOf(lg)
			dst.count[g] += src.count[lg]
			dst.vals[g] = append(dst.vals[g], src.vals[lg]...)
		}
	}
}
