package engine

// Morsel-driven parallel execution. The engine follows MonetDB's
// column-at-a-time model but, like HyPer's morsel-driven scheme, splits
// every column into fixed-size row ranges ("morsels") and fans the hot
// operators — filter+gather, partitioned hash aggregation, hash-join
// build/probe, and merge-table part materialization — across a shared
// worker pool. Two invariants make the parallel path safe to ship:
//
//  1. Determinism: morsel decomposition depends only on the table size and
//     the DB's morsel size, and every combine step (selection-vector
//     stitching, partial-aggregate merging, join-output concatenation)
//     folds morsel results in morsel-index order. Results are therefore
//     bit-identical at parallelism 1, 2, and NumCPU — the parallelism
//     degree only changes how many morsels are in flight, never the
//     reduction order. The equivalence property test pins this.
//  2. Work conservation: the issuing goroutine always executes morsels
//     itself; pool workers are opportunistic helpers. A saturated (or
//     size-1) pool degrades to plain serial execution instead of
//     deadlocking or queueing unboundedly.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultMorselSize is the number of rows per morsel. It is a multiple of
// 64 so that sliced validity bitmaps stay word-aligned (zero-copy views).
const DefaultMorselSize = 4096

// defaultParallelism is the degree new DBs inherit (NumCPU unless
// overridden via SetDefaultParallelism, e.g. by mipd -engine-parallelism).
var defaultParallelism atomic.Int32

func init() {
	defaultParallelism.Store(int32(runtime.NumCPU()))
}

// DefaultParallelism returns the process-wide default degree for new DBs.
func DefaultParallelism() int { return int(defaultParallelism.Load()) }

// SetDefaultParallelism sets the process-wide default degree for DBs
// created afterwards (n < 1 resets to NumCPU). It also grows the shared
// worker pool so the requested degree can actually be served.
func SetDefaultParallelism(n int) {
	if n < 1 {
		n = runtime.NumCPU()
	}
	defaultParallelism.Store(int32(n))
	enginePool.grow(n - 1)
}

// workerPool is the shared, process-wide pool that executes morsel tasks
// for every DB. Workers block on the task channel when idle; submission is
// non-blocking, so a busy pool simply means the issuing goroutine runs
// more morsels itself.
type workerPool struct {
	mu      sync.Mutex
	tasks   chan func()
	started int
}

var enginePool = &workerPool{tasks: make(chan func())}

// grow ensures at least n workers are running (capped only by demand; the
// default is NumCPU-1 helpers, the issuing goroutine being the Nth).
func (p *workerPool) grow(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.started < n {
		p.started++
		go func() {
			for f := range p.tasks {
				f()
			}
		}()
	}
}

// trySubmit hands f to an idle worker; it reports false (without blocking)
// when every worker is busy.
func (p *workerPool) trySubmit(f func()) bool {
	select {
	case p.tasks <- f:
		return true
	default:
		return false
	}
}

// PoolWorkers reports how many shared pool workers are running (testing
// and observability hook).
func PoolWorkers() int {
	enginePool.mu.Lock()
	defer enginePool.mu.Unlock()
	return enginePool.started
}

// ExecContext carries one statement's execution configuration: the
// parallelism degree (max morsels in flight) and the morsel size. Operators
// receive it alongside the statement. A nil ExecContext means serial
// execution with the default morsel size.
type ExecContext struct {
	// Parallelism is the maximum number of morsels processed concurrently
	// (the issuing goroutine plus pool helpers). 1 = serial.
	Parallelism int
	// MorselSize is the row-range length tables are split into. It must be
	// a multiple of 64 (bitmap word alignment); NewDB enforces this.
	MorselSize int
	// Ctx, when non-nil, carries the statement's cancellation signal
	// (explicit kill, deadline, memory ceiling). Morsel loops poll it at
	// batch boundaries; parallelFor aborts in-flight morsels.
	Ctx context.Context
	// Acct, when non-nil, receives coarse per-operator memory charges.
	Acct *MemAccountant
	// QueryDeadline, when positive, bounds every statement's wall time.
	QueryDeadline time.Duration
	// QueryMemLimit, when positive, caps a statement's accounted live bytes.
	QueryMemLimit int64
	// NoAccounting skips registration, cancellation contexts and memory
	// accounting (the benchmark harness measures this off path).
	NoAccounting bool
	// NoJoinReorder pins multi-way joins to their written order. The
	// planner's reordering is provably result-identical, so this is an
	// escape hatch and the lever the equivalence tests compare against.
	NoJoinReorder bool
	// SpillDir, when non-empty, is the base directory for spill run files.
	// Combined with a positive QueryMemLimit it turns the memory ceiling
	// into a soft budget: hash join and aggregate shed partitions to disk
	// past the budget instead of being cancelled with ErrQueryMemLimit.
	SpillDir string

	query *queryHandle  // active-registry handle; nil when unregistered
	spill *spillSession // per-query spill dir manager; nil = spilling off
	plan  *planEntry    // plan-cache entry for this statement; nil = uncached
}

// spillEnabled reports whether this statement may shed operator state to
// disk (a spill dir is configured, governance is on, and a budget is set).
func (ec *ExecContext) spillEnabled() bool {
	return ec != nil && ec.spill != nil
}

// overBudget reports whether accounted live bytes currently exceed the
// soft budget. Only meaningful when spillEnabled.
func (ec *ExecContext) overBudget() bool {
	return ec != nil && ec.Acct.OverLimit()
}

// budget returns the statement's memory budget in bytes (0 = unlimited).
func (ec *ExecContext) budget() int64 {
	if ec == nil {
		return 0
	}
	return ec.QueryMemLimit
}

// addSpill tallies run-file bytes written and partitions spilled on the
// live registry record and the process metrics.
func (ec *ExecContext) addSpill(bytes, parts int64) {
	if bytes > 0 {
		engSpillBytes.Add(bytes)
	}
	if parts > 0 {
		engSpillParts.Add(parts)
	}
	if ec == nil || ec.query == nil {
		return
	}
	if bytes > 0 {
		ec.query.spillBytes.Add(bytes)
	}
	if parts > 0 {
		ec.query.spillParts.Add(parts)
	}
}

// interrupted reports the statement's termination cause (cancellation,
// deadline, memory ceiling), or nil while it may keep running. Checked at
// morsel and operator boundaries, never per row.
func (ec *ExecContext) interrupted() error {
	if ec == nil || ec.Ctx == nil {
		return nil
	}
	select {
	case <-ec.Ctx.Done():
		if cause := context.Cause(ec.Ctx); cause != nil {
			return cause
		}
		return ec.Ctx.Err()
	default:
		return nil
	}
}

// charge accounts n freshly allocated bytes against the query.
func (ec *ExecContext) charge(n int64) {
	if ec != nil {
		ec.Acct.Charge(n)
	}
}

// release returns n bytes of a freed transient structure.
func (ec *ExecContext) release(n int64) {
	if ec != nil {
		ec.Acct.Release(n)
	}
}

// addRows tallies input rows on the live registry record.
func (ec *ExecContext) addRows(n int) {
	if ec != nil && ec.query != nil {
		ec.query.addRows(int64(n))
	}
}

// setOperator records the operator the query is currently in.
func (ec *ExecContext) setOperator(op string) {
	if ec != nil {
		ec.query.setOp(op)
	}
}

func (ec *ExecContext) parallelism() int {
	if ec == nil || ec.Parallelism < 1 {
		return 1
	}
	return ec.Parallelism
}

func (ec *ExecContext) morselSize() int {
	if ec == nil || ec.MorselSize < 64 {
		return DefaultMorselSize
	}
	return ec.MorselSize
}

// morsel is one contiguous row range [lo, hi).
type morsel struct{ lo, hi int }

// morselsOf splits n rows into fixed-size ranges. The decomposition
// depends only on n and the morsel size — never on the parallelism degree
// — which is what makes parallel results bit-identical to serial ones.
func (ec *ExecContext) morselsOf(n int) []morsel {
	size := ec.morselSize()
	if n <= 0 {
		return nil
	}
	out := make([]morsel, 0, (n+size-1)/size)
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		out = append(out, morsel{lo, hi})
	}
	return out
}

// degreeFor reports the degree actually used over n tasks: the configured
// parallelism capped by the task count.
func (ec *ExecContext) degreeFor(tasks int) int {
	d := ec.parallelism()
	if tasks < d {
		d = tasks
	}
	if d < 1 {
		d = 1
	}
	return d
}

// parallelFor runs fn(i) for every i in [0, n), using up to
// ec.Parallelism-1 shared pool workers plus the calling goroutine. Tasks
// are claimed from an atomic counter (morsel-driven work stealing), so
// scheduling order is nondeterministic but callers must only write to
// task-indexed slots; combining happens after return, in index order.
// The first error cancels remaining tasks; a worker panic is re-raised on
// the calling goroutine so it propagates like serial execution.
func (ec *ExecContext) parallelFor(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	degree := ec.degreeFor(n)
	if degree == 1 {
		for i := 0; i < n; i++ {
			if err := ec.interrupted(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	enginePool.grow(ec.parallelism() - 1)
	var (
		next     atomic.Int64
		failed   atomic.Bool
		errOnce  sync.Once
		firstErr error
		panicMu  sync.Mutex
		panicked any
	)
	body := func() {
		defer func() {
			if r := recover(); r != nil {
				panicMu.Lock()
				if panicked == nil {
					panicked = r
				}
				panicMu.Unlock()
				failed.Store(true)
			}
		}()
		for {
			i := int(next.Add(1) - 1)
			if i >= n || failed.Load() {
				return
			}
			if err := ec.interrupted(); err != nil {
				errOnce.Do(func() { firstErr = err })
				failed.Store(true)
				return
			}
			if err := fn(i); err != nil {
				errOnce.Do(func() { firstErr = err })
				failed.Store(true)
				return
			}
		}
	}

	var wg sync.WaitGroup
	for h := 0; h < degree-1; h++ {
		wg.Add(1)
		if !enginePool.trySubmit(func() {
			defer wg.Done()
			body()
		}) {
			wg.Done()
			break // pool saturated: the caller picks up the slack
		}
	}
	body()
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}

// --- parallel operator helpers ---

// filterSel evaluates pred over t morsel-wise and returns the global
// selection vector of matching rows, in row order. Each morsel computes a
// local selection vector over a zero-copy slice; stitching concatenates
// them in morsel order. node (optional) accrues per-morsel stats.
func (ec *ExecContext) filterSel(pred Expr, t *Table, node *PlanNode) ([]int32, error) {
	n := t.NumRows()
	ms := ec.morselsOf(n)
	if len(ms) <= 1 {
		sel, err := FilterSel(pred, t)
		if err != nil {
			return nil, err
		}
		if node != nil {
			node.AddMorsels(1)
		}
		return sel, nil
	}
	parts := make([][]int32, len(ms))
	err := ec.parallelFor(len(ms), func(i int) error {
		m := ms[i]
		sel, err := FilterSel(pred, t.Slice(m.lo, m.hi))
		if err != nil {
			return err
		}
		for j := range sel {
			sel[j] += int32(m.lo)
		}
		parts[i] = sel
		if node != nil {
			node.AddMorsels(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	sel := make([]int32, 0, total)
	for _, p := range parts {
		sel = append(sel, p...)
	}
	return sel, nil
}

// gather materializes t.Gather(sel) with the columns fanned out across the
// pool (each output column is independent).
func (ec *ExecContext) gather(t *Table, sel []int32) *Table {
	if ec.degreeFor(t.NumCols()) == 1 || len(sel) < ec.morselSize() {
		out := t.Gather(sel)
		ec.charge(out.ByteSize())
		return out
	}
	cols := make([]*Vector, t.NumCols())
	_ = ec.parallelFor(len(cols), func(i int) error {
		cols[i] = t.Col(i).Gather(sel)
		return nil
	})
	out := &Table{schema: t.schema, cols: cols}
	ec.charge(out.ByteSize())
	return out
}

// concatTables unions the rows of every part (schemas must match) into one
// freshly materialized table, column-parallel: each output column is
// assembled by one task, concatenating the part payloads in part order.
// This replaces the row-at-a-time Table.Append fan-in on the merge path.
func (ec *ExecContext) concatTables(schema Schema, parts []*Table) (*Table, error) {
	total := 0
	for _, p := range parts {
		if !schema.Equal(p.Schema()) {
			return nil, fmt.Errorf("engine: cannot append table with schema %v to %v", p.Schema().Names(), schema.Names())
		}
		total += p.NumRows()
	}
	cols := make([]*Vector, len(schema))
	err := ec.parallelFor(len(schema), func(j int) error {
		vs := make([]*Vector, len(parts))
		for i, p := range parts {
			vs[i] = p.Col(j)
		}
		cols[j] = concatVectors(schema[j].Type, vs, total)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(schema) == 0 {
		return &Table{schema: schema}, nil
	}
	out := &Table{schema: schema, cols: cols}
	ec.charge(out.ByteSize())
	return out, nil
}

// concatVectors concatenates typed payloads in order. String vectors are
// re-encoded into one fresh dictionary via a per-part code translation
// table (O(dict size) per part, O(1) per row).
func concatVectors(t Type, parts []*Vector, total int) *Vector {
	out := &Vector{typ: t}
	hasNulls := false
	for _, p := range parts {
		if p.valid != nil {
			hasNulls = true
			break
		}
	}
	if hasNulls {
		out.valid = NewBitmap(total)
	}
	off := 0
	switch t {
	case Float64:
		out.f64 = make([]float64, 0, total)
		for _, p := range parts {
			out.f64 = append(out.f64, p.f64...)
		}
	case Int64:
		out.i64 = make([]int64, 0, total)
		for _, p := range parts {
			out.i64 = append(out.i64, p.i64...)
		}
	case Bool:
		out.b = make([]bool, 0, total)
		for _, p := range parts {
			out.b = append(out.b, p.b...)
		}
	case String:
		out.dict = NewDict()
		out.codes = make([]int32, 0, total)
		for _, p := range parts {
			trans := make([]int32, p.dict.Size())
			for c := range trans {
				trans[c] = out.dict.Code(p.dict.Value(int32(c)))
			}
			for _, c := range p.codes {
				out.codes = append(out.codes, trans[c])
			}
		}
	}
	if hasNulls {
		for _, p := range parts {
			if p.valid != nil {
				for i := 0; i < p.Len(); i++ {
					if !p.valid.Get(i) {
						out.valid.Set(off+i, false)
					}
				}
			}
			off += p.Len()
		}
	}
	return out
}
