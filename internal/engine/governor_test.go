package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// blockingPart is a merge-table part whose QueryCtx parks until the
// statement's context dies and then surfaces the cancellation cause — a
// deterministic stand-in for a long-running remote part query.
type blockingPart struct {
	name    string
	started chan struct{}
	cause   chan error // receives context.Cause once per query
	once    sync.Once
}

func newBlockingPart(name string) *blockingPart {
	return &blockingPart{name: name, started: make(chan struct{}), cause: make(chan error, 4)}
}

func (p *blockingPart) PartName() string { return p.name }

func (p *blockingPart) Query(string) (*Table, error) {
	return nil, errors.New("blockingPart needs QueryCtx")
}

func (p *blockingPart) QueryCtx(ctx context.Context, _ string) (*Table, error) {
	p.once.Do(func() { close(p.started) })
	<-ctx.Done()
	cause := context.Cause(ctx)
	p.cause <- cause
	return nil, cause
}

func (p *blockingPart) waitCause(t *testing.T) error {
	t.Helper()
	select {
	case err := <-p.cause:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("blocking part never observed a cancellation")
		return nil
	}
}

// blockingDB returns a DB with a merge view "slow" over a single blocking
// part, so any query against it parks mid-execution until cancelled.
func blockingDB(opts ...Option) (*DB, *blockingPart) {
	db := NewDB(opts...)
	bp := newBlockingPart("bp0")
	db.RegisterMerge("slow", &MergeTable{
		Schema:    Schema{{"age", Float64}},
		TableName: "slow",
		Parts:     []Part{bp},
	})
	return db, bp
}

// TestQueryKillEndToEnd drives the operator kill path: the statement shows
// up in the active registry with its SQL, Queries.Cancel aborts it, the
// blocked part observes ErrQueryCancelled as the context cause, and the
// registry drains.
func TestQueryKillEndToEnd(t *testing.T) {
	db, bp := blockingDB()
	const sql = `SELECT avg(age) AS a FROM slow`

	done := make(chan error, 1)
	go func() {
		_, qs, err := db.QueryWithStats(sql)
		if err != nil && qs.Verdict != VerdictCancelled {
			err = fmt.Errorf("verdict %q: %w", qs.Verdict, err)
		}
		done <- err
	}()

	select {
	case <-bp.started:
	case <-time.After(5 * time.Second):
		t.Fatal("query never reached the blocking part")
	}

	var id int64
	for _, q := range Queries.List() {
		if strings.Contains(q.SQL, "FROM slow") {
			id = q.ID
			if q.Operator == "" {
				t.Errorf("active query has no current operator")
			}
			if q.Seconds < 0 {
				t.Errorf("active query has negative age %v", q.Seconds)
			}
		}
	}
	if id == 0 {
		t.Fatalf("blocked statement not visible in Queries.List(): %+v", Queries.List())
	}
	if !Queries.Cancel(id) {
		t.Fatalf("Queries.Cancel(%d) found no live query", id)
	}

	select {
	case err := <-done:
		if !errors.Is(err, ErrQueryCancelled) {
			t.Fatalf("query error = %v, want ErrQueryCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("query did not unwind after Cancel")
	}
	if err := bp.waitCause(t); !errors.Is(err, ErrQueryCancelled) {
		t.Fatalf("part context cause = %v, want ErrQueryCancelled", err)
	}
	if Queries.Cancel(id) {
		t.Fatal("Cancel succeeded twice for the same id")
	}
	for _, q := range Queries.List() {
		if q.ID == id {
			t.Fatalf("query %d still registered after finishing", id)
		}
	}
}

// TestQueryDeadline checks the per-statement wall-time ceiling: a query
// stuck in a part is cancelled with ErrQueryDeadline and the deadline
// verdict.
func TestQueryDeadline(t *testing.T) {
	db, bp := blockingDB(WithQueryDeadline(20 * time.Millisecond))

	_, qs, err := db.QueryWithStats(`SELECT count(*) AS n FROM slow`)
	if !errors.Is(err, ErrQueryDeadline) {
		t.Fatalf("query error = %v, want ErrQueryDeadline", err)
	}
	if qs.Verdict != VerdictDeadline {
		t.Fatalf("verdict = %q, want %q", qs.Verdict, VerdictDeadline)
	}
	if err := bp.waitCause(t); !errors.Is(err, ErrQueryDeadline) {
		t.Fatalf("part context cause = %v, want ErrQueryDeadline", err)
	}
}

// TestQueryMemLimit checks the accounted-bytes ceiling: a filter over a
// ~100k-row float column charges ~800KB to the accountant, trips a 1KB
// limit, and the statement dies with the mem-limit verdict.
func TestQueryMemLimit(t *testing.T) {
	db := NewDB(WithQueryMemLimit(1024))
	tab := NewTable(Schema{{"x", Float64}})
	for i := 0; i < 100_000; i++ {
		if err := tab.AppendRow(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable("t", tab)

	_, qs, err := db.QueryWithStats(`SELECT x FROM t WHERE x >= 0`)
	if !errors.Is(err, ErrQueryMemLimit) {
		t.Fatalf("query error = %v, want ErrQueryMemLimit", err)
	}
	if qs.Verdict != VerdictMemLimit {
		t.Fatalf("verdict = %q, want %q", qs.Verdict, VerdictMemLimit)
	}
	if qs.MemPeakBytes < 1024 {
		t.Fatalf("peak bytes = %d, want >= limit", qs.MemPeakBytes)
	}
}

// TestQueryStatsAccounting checks the happy path: a completed aggregate
// reports the completed verdict, a positive memory peak, and leaves no
// residue in the registry or the process-wide live-bytes gauge.
func TestQueryStatsAccounting(t *testing.T) {
	db := NewDB()
	tab := NewTable(Schema{{"g", String}, {"x", Float64}})
	for i := 0; i < 10_000; i++ {
		if err := tab.AppendRow(fmt.Sprintf("g%d", i%7), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable("t", tab)

	_, qs, err := db.QueryWithStats(`SELECT g, sum(x) AS s FROM t WHERE x >= 10 GROUP BY g`)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Verdict != VerdictCompleted {
		t.Fatalf("verdict = %q, want %q", qs.Verdict, VerdictCompleted)
	}
	if qs.MemPeakBytes <= 0 {
		t.Fatalf("MemPeakBytes = %d, want > 0", qs.MemPeakBytes)
	}
}

// TestAccountingDisabled checks that WithAccounting(false) opts the DB out
// of governance: queries run, but are not registered, metered, or subject
// to limits.
func TestAccountingDisabled(t *testing.T) {
	db := NewDB(WithAccounting(false), WithQueryMemLimit(1))
	tab := NewTable(Schema{{"x", Float64}})
	for i := 0; i < 50_000; i++ {
		if err := tab.AppendRow(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable("t", tab)

	_, qs, err := db.QueryWithStats(`SELECT x FROM t WHERE x >= 0`)
	if err != nil {
		t.Fatalf("unaccounted query failed: %v", err)
	}
	if qs.MemPeakBytes != 0 {
		t.Fatalf("MemPeakBytes = %d with accounting off, want 0", qs.MemPeakBytes)
	}
}

// TestMemAccountant exercises the accountant directly: live/peak tracking,
// release, and the exceed hook firing exactly once.
func TestMemAccountant(t *testing.T) {
	fired := 0
	a := &MemAccountant{limit: 100}
	a.onExceed = func() { fired++ }

	a.Charge(60)
	if got := a.Live(); got != 60 {
		t.Fatalf("Live = %d, want 60", got)
	}
	if fired != 0 {
		t.Fatal("limit fired below the ceiling")
	}
	a.Charge(60) // 120 > 100: trips
	if fired != 1 {
		t.Fatalf("limit fired %d times, want 1", fired)
	}
	a.Charge(60) // still over: must not re-fire
	if fired != 1 {
		t.Fatalf("limit re-fired, total %d", fired)
	}
	a.Release(120)
	if got := a.Live(); got != 60 {
		t.Fatalf("Live after release = %d, want 60", got)
	}
	if got := a.Peak(); got != 180 {
		t.Fatalf("Peak = %d, want 180", got)
	}

	// nil accountant: all methods are no-ops.
	var nilA *MemAccountant
	nilA.Charge(10)
	nilA.Release(10)
	if nilA.Live() != 0 || nilA.Peak() != 0 {
		t.Fatal("nil accountant reported non-zero usage")
	}
}

// TestRegistryConcurrency races query execution against registry listing
// and cancellation — meant to run under -race. Every query must end with
// either a completed or a cancelled verdict, and the registry must drain.
func TestRegistryConcurrency(t *testing.T) {
	db := NewDB()
	tab := NewTable(Schema{{"g", String}, {"x", Float64}})
	for i := 0; i < 5_000; i++ {
		if err := tab.AppendRow(fmt.Sprintf("g%d", i%5), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable("race_tbl", tab)
	const sql = `SELECT g, sum(x) AS s, count(*) AS n FROM race_tbl WHERE x >= 1 GROUP BY g`

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() { // lister + canceller
		defer chaos.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i, q := range Queries.List() {
				if strings.Contains(q.SQL, "race_tbl") && i%2 == 0 {
					Queries.Cancel(q.ID)
				}
			}
			_ = Queries.Active()
			_ = Queries.LiveBytes()
		}
	}()

	var runners sync.WaitGroup
	for w := 0; w < 8; w++ {
		runners.Add(1)
		go func() {
			defer runners.Done()
			for i := 0; i < 40; i++ {
				_, qs, err := db.QueryWithStats(sql)
				switch {
				case err == nil:
					if qs.Verdict != VerdictCompleted {
						t.Errorf("nil error but verdict %q", qs.Verdict)
					}
				case errors.Is(err, ErrQueryCancelled):
					if qs.Verdict != VerdictCancelled {
						t.Errorf("cancelled error but verdict %q", qs.Verdict)
					}
				default:
					t.Errorf("unexpected query error: %v", err)
				}
			}
		}()
	}
	runners.Wait()
	close(stop)
	chaos.Wait()

	for _, q := range Queries.List() {
		if strings.Contains(q.SQL, "race_tbl") {
			t.Fatalf("query %d leaked in the registry after completion", q.ID)
		}
	}
}

// TestVerdictFor pins the error→verdict mapping, including the wrapped and
// stdlib-context forms that show up on federated paths.
func TestVerdictFor(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, VerdictCompleted},
		{ErrQueryCancelled, VerdictCancelled},
		{fmt.Errorf("part w0: %w", ErrQueryCancelled), VerdictCancelled},
		{context.Canceled, VerdictCancelled},
		{ErrQueryDeadline, VerdictDeadline},
		{context.DeadlineExceeded, VerdictDeadline},
		{ErrQueryMemLimit, VerdictMemLimit},
		{errors.New("boom"), VerdictError},
	}
	for _, c := range cases {
		if got := verdictFor(c.err); got != c.want {
			t.Errorf("verdictFor(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}
