package engine

import (
	"fmt"
	"strings"
)

// Statistics-free join planning. The engine keeps no cardinality stats, so
// the planner orders multi-way joins greedily from what the query text
// already reveals (ROADMAP item 1, after the "When Greedy Beats Optimal"
// result): a relation narrowed by an equality filter joins before one
// narrowed by a range filter, which joins before an unfiltered one; ties
// break toward the smaller declared schema, then written order. Correctness
// does not rest on the heuristic: reordered execution tags every input row
// with a hidden rowid and restores the written-order output ordering with a
// final sort, so results are bit-identical to written-order execution.
//
// The same pass pushes single-table WHERE conjuncts below the joins (which
// both feeds the heuristic and shrinks join inputs). Pushing a conjunct
// onto the right side of a LEFT JOIN would turn filtered rows into
// NULL-extended survivors, so those conjuncts stay in the residual filter.

// plannedRel is one relation of the FROM/JOIN list at plan time.
type plannedRel struct {
	name  string
	alias string
	table *Table
	jc    *JoinClause // nil for the base relation
	// pushed is the AND of the WHERE conjuncts that reference only this
	// relation (in their written order); nil when none apply.
	pushed Expr
	// filterClass scores pushed for the greedy order: 2 equality/IN,
	// 1 any other filter (ranges and the rest), 0 unfiltered.
	filterClass int
}

// joinPlan is the planner's output for one SELECT's FROM/JOIN clauses.
type joinPlan struct {
	rels      []*plannedRel // written order: rels[0] is the base table
	order     []int         // execution order, indices into st.Joins
	reordered bool
	residual  Expr // WHERE conjuncts the post-join filter still applies
}

// planJoins resolves the statement's relations and decides the join order
// and filter placement. Reordering happens only when it is provably safe:
// two or more joins, all INNER, distinct aliases, and every ON clause
// resolvable at plan time; anything unclear keeps the written order (with
// filter pushdown still applied where sound).
func (db *DB) planJoins(st *SelectStmt, reorder bool) (*joinPlan, error) {
	plan := &joinPlan{}
	base := db.Table(st.From)
	if base == nil {
		return nil, unknownTableErr(db, st.From)
	}
	alias := st.FromAlias
	if alias == "" {
		alias = st.From
	}
	plan.rels = append(plan.rels, &plannedRel{name: st.From, alias: alias, table: base})
	for i := range st.Joins {
		jc := &st.Joins[i]
		right := db.Table(jc.Table)
		if right == nil {
			return nil, unknownTableErr(db, jc.Table)
		}
		ra := jc.Alias
		if ra == "" {
			ra = jc.Table
		}
		plan.rels = append(plan.rels, &plannedRel{name: jc.Table, alias: ra, table: right, jc: jc})
	}
	plan.order = make([]int, len(st.Joins))
	for i := range plan.order {
		plan.order[i] = i
	}
	if len(st.Joins) == 0 {
		plan.residual = st.Where
		return plan, nil
	}

	// Distribute WHERE conjuncts: single-relation conjuncts move below the
	// joins unless the relation is the right side of a LEFT JOIN.
	for _, c := range splitConjuncts(st.Where) {
		ri := plan.ownerOf(c)
		if ri < 0 || (ri > 0 && plan.rels[ri].jc.Left) {
			plan.residual = andExpr(plan.residual, c)
			continue
		}
		r := plan.rels[ri]
		r.pushed = andExpr(r.pushed, c)
		if cl := filterClassOf(c); cl > r.filterClass {
			r.filterClass = cl
		}
	}

	if reorder && len(st.Joins) >= 2 {
		plan.greedyOrder()
	}
	return plan, nil
}

func unknownTableErr(db *DB, name string) error {
	if db.Merge(name) != nil {
		return fmt.Errorf("engine: JOIN over merge tables is not supported")
	}
	return fmt.Errorf("engine: unknown table %q", name)
}

// greedyOrder picks the execution order: starting from the base relation,
// repeatedly append the eligible join clause whose relation has the best
// filter class, breaking ties toward the narrower declared schema and then
// written order. A clause is eligible once its ON condition is fully
// resolvable against the already-placed relations plus its own. Any
// analysis gap (LEFT joins, duplicate aliases, unresolvable ON references,
// ON equalities missing) leaves the written order untouched.
func (p *joinPlan) greedyOrder() {
	seen := map[string]bool{}
	for _, r := range p.rels {
		if r.jc != nil && r.jc.Left {
			return
		}
		a := strings.ToLower(r.alias)
		if seen[a] {
			return
		}
		seen[a] = true
	}
	// Written-order validation: clause i may reference only relations
	// 0..i+1. A query that errors in written order must keep erroring.
	for i, r := range p.rels[1:] {
		if !p.onResolvable(r.jc, i+2) {
			return
		}
	}
	placed := make([]bool, len(p.rels))
	placed[0] = true
	var order []int
	remaining := len(p.rels) - 1
	for remaining > 0 {
		best := -1
		for ji := 1; ji < len(p.rels); ji++ {
			if placed[ji] || !p.eligible(ji, placed) {
				continue
			}
			if best < 0 || p.better(ji, best) {
				best = ji
			}
		}
		if best < 0 {
			return // no connected clause: keep written order
		}
		placed[best] = true
		order = append(order, best-1)
		remaining--
	}
	for i, ji := range order {
		if ji != i {
			p.reordered = true
		}
	}
	p.order = order
}

// better reports whether relation a should join before relation b.
func (p *joinPlan) better(a, b int) bool {
	ra, rb := p.rels[a], p.rels[b]
	if ra.filterClass != rb.filterClass {
		return ra.filterClass > rb.filterClass
	}
	if la, lb := len(ra.table.Schema()), len(rb.table.Schema()); la != lb {
		return la < lb
	}
	return a < b
}

// eligible reports whether relation ji can join next: its ON must contain
// at least one equality between an already-placed relation and ji, and
// every column it references must belong to a placed relation or ji.
func (p *joinPlan) eligible(ji int, placed []bool) bool {
	hasEq := false
	ok := true
	walkConjuncts(p.rels[ji].jc.On, func(c Expr) {
		if b, isEq := c.(*Binary); isEq && b.Op == "=" {
			lc, lok := b.L.(*ColRef)
			rc, rok := b.R.(*ColRef)
			if lok && rok {
				li, ri := p.resolveRel(lc.Name), p.resolveRel(rc.Name)
				if li >= 0 && ri >= 0 &&
					((placed[li] && ri == ji) || (placed[ri] && li == ji)) {
					hasEq = true
				}
			}
		}
		walkColRefs(c, func(name string) {
			r := p.resolveRel(name)
			if r < 0 || (!placed[r] && r != ji) {
				ok = false
			}
		})
	})
	return hasEq && ok
}

// onResolvable reports whether every column the clause's ON references
// resolves to one of the first n relations.
func (p *joinPlan) onResolvable(jc *JoinClause, n int) bool {
	ok := true
	walkColRefs(jc.On, func(name string) {
		r := p.resolveRel(name)
		if r < 0 || r >= n {
			ok = false
		}
	})
	return ok
}

// ownerOf resolves a conjunct to the single relation it references, or -1
// when it references zero relations, several, or anything unresolvable.
func (p *joinPlan) ownerOf(c Expr) int {
	owner := -1
	ok := true
	walkColRefs(c, func(name string) {
		r := p.resolveRel(name)
		if r < 0 || (owner >= 0 && owner != r) {
			ok = false
			return
		}
		owner = r
	})
	if !ok || owner < 0 {
		return -1
	}
	return owner
}

// resolveRel maps a column reference to its relation index: a qualified
// alias.col by alias, a bare name by unique schema membership. -1 when
// unknown or ambiguous (callers treat that as "don't touch").
func (p *joinPlan) resolveRel(name string) int {
	if i := strings.IndexByte(name, '.'); i > 0 {
		alias, col := name[:i], name[i+1:]
		for ri, r := range p.rels {
			if strings.EqualFold(r.alias, alias) {
				if r.table.Schema().ColIndex(col) >= 0 {
					return ri
				}
				return -1
			}
		}
		return -1
	}
	found := -1
	for ri, r := range p.rels {
		if r.table.Schema().ColIndex(name) >= 0 {
			if found >= 0 {
				return -1
			}
			found = ri
		}
	}
	return found
}

// filterClassOf scores one pushed conjunct: equality and IN pin the most
// selective tier, everything else that filters at all (ranges, IS NULL,
// inequality) shares the next, mirroring "equality > range > none".
func filterClassOf(c Expr) int {
	switch t := c.(type) {
	case *Binary:
		if t.Op == "=" {
			return 2
		}
	case *InExpr:
		if !t.Not {
			return 2
		}
	}
	return 1
}

// splitConjuncts flattens the AND spine of e into its conjuncts, in written
// order. A nil e yields nil.
func splitConjuncts(e Expr) []Expr {
	var out []Expr
	walkConjuncts(e, func(c Expr) { out = append(out, c) })
	return out
}

func walkConjuncts(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		walkConjuncts(b.L, fn)
		walkConjuncts(b.R, fn)
		return
	}
	fn(e)
}

// andExpr folds conjuncts left-deep, preserving written evaluation order.
func andExpr(acc, c Expr) Expr {
	if acc == nil {
		return c
	}
	return &Binary{Op: "AND", L: acc, R: c}
}

// walkColRefs visits every column reference inside e.
func walkColRefs(e Expr, fn func(string)) {
	switch t := e.(type) {
	case *ColRef:
		fn(t.Name)
	case *Unary:
		walkColRefs(t.X, fn)
	case *Binary:
		walkColRefs(t.L, fn)
		walkColRefs(t.R, fn)
	case *Call:
		for _, a := range t.Args {
			walkColRefs(a, fn)
		}
	case *AggCall:
		for _, a := range t.Args {
			walkColRefs(a, fn)
		}
	case *IsNullExpr:
		walkColRefs(t.X, fn)
	case *InExpr:
		walkColRefs(t.X, fn)
		for _, a := range t.List {
			walkColRefs(a, fn)
		}
	case *CaseExpr:
		for _, w := range t.Whens {
			walkColRefs(w.Cond, fn)
			walkColRefs(w.Then, fn)
		}
		if t.Else != nil {
			walkColRefs(t.Else, fn)
		}
	}
}
