package engine

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleCSV = `id,age,mmse,diagnosis,enrolled
1,71.5,28,CN,true
2,68,21,MCI,false
3,80.2,NA,AD,true
4,,29,CN,false
`

func TestInferSchema(t *testing.T) {
	schema, err := InferSchema(strings.NewReader(sampleCSV), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Schema{
		{"id", Int64}, {"age", Float64}, {"mmse", Int64},
		{"diagnosis", String}, {"enrolled", Bool},
	}
	if !schema.Equal(want) {
		t.Fatalf("schema = %v", schema)
	}
}

func TestLoadCSV(t *testing.T) {
	schema, _ := InferSchema(strings.NewReader(sampleCSV), 0)
	tab, err := LoadCSV(strings.NewReader(sampleCSV), schema)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 4 {
		t.Fatalf("rows = %d", tab.NumRows())
	}
	if !tab.ColByName("mmse").IsNull(2) {
		t.Fatal("NA must load as NULL")
	}
	if !tab.ColByName("age").IsNull(3) {
		t.Fatal("empty field must load as NULL")
	}
	if tab.ColByName("diagnosis").StringAt(0) != "CN" {
		t.Fatal("string load wrong")
	}
	if tab.ColByName("enrolled").Bools()[0] != true {
		t.Fatal("bool load wrong")
	}
}

func TestLoadCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.csv")
	if err := os.WriteFile(path, []byte(sampleCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := LoadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(tab, &buf); err != nil {
		t.Fatal(err)
	}
	// Reload what we wrote: same shape, same values.
	schema, _ := InferSchema(strings.NewReader(buf.String()), 0)
	tab2, err := LoadCSV(strings.NewReader(buf.String()), schema)
	if err != nil {
		t.Fatal(err)
	}
	if tab2.NumRows() != tab.NumRows() || tab2.NumCols() != tab.NumCols() {
		t.Fatalf("round trip changed shape: %dx%d vs %dx%d", tab2.NumRows(), tab2.NumCols(), tab.NumRows(), tab.NumCols())
	}
	if tab2.ColByName("age").Float64s()[0] != 71.5 {
		t.Fatal("round trip changed values")
	}
	if !tab2.ColByName("mmse").IsNull(2) {
		t.Fatal("round trip lost NULL")
	}
}

func TestInferSchemaMixedIntFloat(t *testing.T) {
	csv := "a,b\n1,x\n2.5,y\n"
	schema, err := InferSchema(strings.NewReader(csv), 0)
	if err != nil {
		t.Fatal(err)
	}
	if schema[0].Type != Float64 {
		t.Fatalf("int+float should infer DOUBLE, got %v", schema[0].Type)
	}
	if schema[1].Type != String {
		t.Fatalf("letters should infer VARCHAR, got %v", schema[1].Type)
	}
}

func TestInferSchemaCustomNA(t *testing.T) {
	csv := "a\n-999\n5\n"
	schema, err := InferSchema(strings.NewReader(csv), 0, "-999")
	if err != nil {
		t.Fatal(err)
	}
	tab, err := LoadCSV(strings.NewReader(csv), schema, "-999")
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Col(0).IsNull(0) {
		t.Fatal("custom NA marker not honoured")
	}
	if tab.Col(0).Int64s()[1] != 5 {
		t.Fatal("value row wrong")
	}
}

func TestLoadCSVIgnoresUnknownColumns(t *testing.T) {
	schema := Schema{{"a", Int64}}
	tab, err := LoadCSV(strings.NewReader("a,b\n1,zzz\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumCols() != 1 || tab.Col(0).Int64s()[0] != 1 {
		t.Fatal("extra CSV columns should be dropped")
	}
}
