package engine

// spillio adapts the engine's Vector/Table types to the spill package's
// run-file format. Everything here is per-query: a spillSession lazily
// creates one private temp directory the first time an operator sheds
// state, runWriter/runReader wrap spill.Writer/Reader with memory-
// accountant charges for their I/O buffers, and vecToCol/colToVec convert
// columns losslessly (float bits, NULL bitmaps, dictionary strings).

import (
	"io"
	"os"
	"sync"

	"mip/internal/engine/spill"
)

// spillSession manages one statement's spill directory. The directory is
// created lazily on first use and removed by cleanup(), which beginQuery's
// finish closure always calls — including on cancellation and error paths,
// so no run files outlive their query.
type spillSession struct {
	base string
	mu   sync.Mutex
	d    *spill.Dir
	err  error
}

// dir returns the session's spill directory, creating it on first call.
func (s *spillSession) dir() (*spill.Dir, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d == nil && s.err == nil {
		s.d, s.err = spill.NewDir(s.base)
	}
	return s.d, s.err
}

// cleanup removes the spill directory and every run file in it.
func (s *spillSession) cleanup() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.d != nil {
		s.d.Cleanup()
		s.d = nil
	}
}

// vecToCol converts one vector into a spill column. Payload slices are
// shared (the writer only reads them); String vectors are re-encoded
// against a compact per-batch dictionary so a batch never serializes a
// large shared dict.
func vecToCol(v *Vector) spill.Column {
	n := v.Len()
	var c spill.Column
	switch v.Type() {
	case Float64:
		c.Kind = spill.F64
		c.F64 = v.f64
	case Int64:
		c.Kind = spill.I64
		c.I64 = v.i64
	case Bool:
		c.Kind = spill.Bool
		c.B = v.b
	case String:
		c.Kind = spill.Str
		codes := make([]int32, n)
		trans := make([]int32, v.dict.Size())
		for i := range trans {
			trans[i] = -1
		}
		var dict []string
		for i, code := range v.codes[:n] {
			t := trans[code]
			if t < 0 {
				t = int32(len(dict))
				dict = append(dict, v.dict.Value(code))
				trans[code] = t
			}
			codes[i] = t
		}
		c.Codes, c.Dict = codes, dict
	}
	if v.valid != nil {
		for i := 0; i < n; i++ {
			if v.IsNull(i) {
				c.SetNull(i, n)
			}
		}
	}
	return c
}

// colToVec converts a decoded spill column back into a vector. Per-batch
// dictionaries hold unique values, so re-inserting them in order gives an
// identity code mapping.
func colToVec(c *spill.Column, rows int) *Vector {
	var v *Vector
	switch c.Kind {
	case spill.F64:
		v = &Vector{typ: Float64, f64: c.F64}
	case spill.I64:
		v = &Vector{typ: Int64, i64: c.I64}
	case spill.Bool:
		v = &Vector{typ: Bool, b: c.B}
	case spill.Str:
		d := NewDict()
		for _, s := range c.Dict {
			d.Code(s)
		}
		v = &Vector{typ: String, codes: c.Codes, dict: d}
	}
	if c.Nulls != nil {
		v.valid = NewBitmap(rows)
		for i := 0; i < rows; i++ {
			if c.NullAt(i) {
				v.valid.Set(i, false)
			}
		}
	}
	return v
}

// batchOf packs the given vectors (one batch's columns, equal lengths)
// into a spill batch.
func batchOf(vs []*Vector) *spill.Batch {
	rows := 0
	if len(vs) > 0 {
		rows = vs[0].Len()
	}
	b := &spill.Batch{Rows: rows, Cols: make([]spill.Column, len(vs))}
	for i, v := range vs {
		b.Cols[i] = vecToCol(v)
	}
	return b
}

// vecsOf unpacks a decoded batch into vectors.
func vecsOf(b *spill.Batch) []*Vector {
	out := make([]*Vector, len(b.Cols))
	for i := range b.Cols {
		out[i] = colToVec(&b.Cols[i], b.Rows)
	}
	return out
}

// runWriter appends batches to one run file, charging the accountant for
// its write buffer while open and tallying spilled bytes on the query.
type runWriter struct {
	ec   *ExecContext
	path string
	w    *spill.Writer
	rows int64
}

// newRunWriter opens a fresh run file in the query's spill directory.
func (ec *ExecContext) newRunWriter(label string) (*runWriter, error) {
	d, err := ec.spill.dir()
	if err != nil {
		return nil, err
	}
	path := d.RunPath(label)
	w, err := spill.NewWriter(path)
	if err != nil {
		return nil, err
	}
	ec.charge(spill.BufferSize())
	return &runWriter{ec: ec, path: path, w: w}, nil
}

// write appends the vectors as one batch.
func (rw *runWriter) write(vs []*Vector) error {
	before := rw.w.Bytes()
	if err := rw.w.Write(batchOf(vs)); err != nil {
		return err
	}
	if len(vs) > 0 {
		rw.rows += int64(vs[0].Len())
	}
	rw.ec.addSpill(rw.w.Bytes()-before, 0)
	return nil
}

// bytes returns the encoded bytes written so far.
func (rw *runWriter) bytes() int64 { return rw.w.Bytes() }

// close flushes and closes the run, releasing its buffer charge.
func (rw *runWriter) close() error {
	rw.ec.release(spill.BufferSize())
	return rw.w.Close()
}

// runReader streams one run file's batches back, charging the accountant
// for its read buffer while open.
type runReader struct {
	ec   *ExecContext
	r    *spill.Reader
	size int64 // encoded file size, for repartition decisions
}

// openRun opens a run file written earlier this query.
func (ec *ExecContext) openRun(path string) (*runReader, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	r, err := spill.NewReader(path)
	if err != nil {
		return nil, err
	}
	ec.charge(spill.BufferSize())
	return &runReader{ec: ec, r: r, size: fi.Size()}, nil
}

// next returns the next batch's vectors, or (nil, io.EOF) after the last.
func (rr *runReader) next() ([]*Vector, error) {
	b, err := rr.r.Next()
	if err != nil {
		return nil, err
	}
	return vecsOf(b), nil
}

// close closes the run, releasing its buffer charge.
func (rr *runReader) close() error {
	rr.ec.release(spill.BufferSize())
	return rr.r.Close()
}

// removeRun deletes a fully consumed run file early (before the session
// cleanup), bounding peak disk usage during recursive repartitioning.
func (ec *ExecContext) removeRun(path string) {
	if d, err := ec.spill.dir(); err == nil && d != nil {
		d.Remove(path)
	}
}

// drainRun reads a whole run into per-batch vector slices (used by
// partition loads that are known to fit the budget).
func (rr *runReader) drain() ([][]*Vector, error) {
	var out [][]*Vector
	for {
		vs, err := rr.next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, vs)
	}
}
