package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func explainDB(t *testing.T) *DB {
	t.Helper()
	db := NewDB()
	stmts := []string{
		`CREATE TABLE patients (id INT, hospital TEXT, age DOUBLE)`,
		`INSERT INTO patients VALUES (1, 'h1', 70), (2, 'h1', 75), (3, 'h2', 80), (4, 'h2', 65), (5, 'h3', 72)`,
		`CREATE TABLE scores (id INT, mmse DOUBLE)`,
		`INSERT INTO scores VALUES (1, 28), (2, 21), (3, 14), (4, 27), (6, 30)`,
	}
	for _, s := range stmts {
		if _, err := db.Query(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	return db
}

// planLines runs an EXPLAIN-family statement and returns the plan column.
func planLines(t *testing.T, db *DB, sql string) []string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if res.NumCols() != 1 || res.Schema()[0].Name != "plan" {
		t.Fatalf("EXPLAIN result schema = %v, want one [plan] column", res.Schema())
	}
	lines := make([]string, res.NumRows())
	for i := range lines {
		lines[i] = res.Col(0).StringAt(i)
	}
	return lines
}

func TestExplainShapeWithoutExecution(t *testing.T) {
	db := explainDB(t)
	before := db.QueryCount()
	lines := planLines(t, db, `EXPLAIN SELECT hospital, avg(age) AS m FROM patients WHERE age > 60 GROUP BY hospital ORDER BY m LIMIT 2`)
	// One statement only: the plan must come from the catalog, not a run.
	if got := db.QueryCount() - before; got != 1 {
		t.Fatalf("EXPLAIN executed %d statements, want 1", got)
	}
	want := []string{"limit", "order", "aggregate", "filter", "scan patients"}
	if len(lines) != len(want) {
		t.Fatalf("plan has %d lines, want %d:\n%s", len(lines), len(want), strings.Join(lines, "\n"))
	}
	for i, w := range want {
		if !strings.Contains(lines[i], w) {
			t.Errorf("line %d = %q, want it to mention %q", i, lines[i], w)
		}
	}
	if !strings.Contains(lines[len(lines)-1], "(rows=5)") {
		t.Errorf("scan line %q should carry the catalog row count", lines[len(lines)-1])
	}
	if strings.Contains(lines[0], "rows_in=") {
		t.Errorf("plain EXPLAIN should not carry measured stats: %q", lines[0])
	}
}

// TestExplainAnalyzeAggregateOverJoin is the acceptance check: the measured
// tree of an aggregate-over-join query must carry populated per-operator
// rows, and each node's rows-out must match what executing the query
// produces at that stage.
func TestExplainAnalyzeAggregateOverJoin(t *testing.T) {
	db := explainDB(t)
	sql := `SELECT p.hospital, avg(s.mmse) AS m, count(*) AS n FROM patients p JOIN scores s ON p.id = s.id WHERE p.age > 60 GROUP BY p.hospital ORDER BY m DESC`

	// Ground truth from executing the query directly.
	direct, err := db.Query(sql)
	if err != nil {
		t.Fatal(err)
	}

	res, qs, err := db.QueryWithStats("EXPLAIN ANALYZE " + sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Fatal("empty EXPLAIN ANALYZE result")
	}
	root := qs.Root
	if root == nil {
		t.Fatal("EXPLAIN ANALYZE left no plan tree on QueryStats")
	}

	byOp := map[string][]*PlanNode{}
	root.Walk(func(n *PlanNode) { byOp[n.Op] = append(byOp[n.Op], n) })
	for _, op := range []string{"scan", "join", "filter", "aggregate", "order"} {
		if len(byOp[op]) == 0 {
			t.Fatalf("plan tree is missing a %s node:\n%s", op, root)
		}
	}

	// rows-out of the root must equal the executed result.
	if int(root.RowsOut) != direct.NumRows() {
		t.Errorf("root rows_out = %d, executed query returned %d rows", root.RowsOut, direct.NumRows())
	}
	// order preserves aggregate's row count.
	if agg := byOp["aggregate"][0]; int(agg.RowsOut) != direct.NumRows() {
		t.Errorf("aggregate rows_out = %d, want %d", agg.RowsOut, direct.NumRows())
	}
	// The join of 5x5 rows on id matches 4 pairs.
	if j := byOp["join"][0]; j.RowsOut != 4 {
		t.Errorf("join rows_out = %d, want 4", j.RowsOut)
	}
	// The planner pushes the single-table WHERE below the join: the filter
	// node sits above the patients scan and sees all 5 rows (all ages > 60).
	f := byOp["filter"][0]
	if !strings.Contains(f.Detail, "pushed") {
		t.Errorf("filter detail = %q, want a pushed-down filter", f.Detail)
	}
	if f.RowsIn != 5 || f.RowsOut != 5 {
		t.Errorf("filter rows in/out = %d/%d, want 5/5", f.RowsIn, f.RowsOut)
	}
	if len(f.Children) != 1 || f.Children[0].Op != "scan" {
		t.Errorf("pushed filter should sit directly above a scan, got:\n%s", root)
	}
	for _, sc := range byOp["scan"] {
		if sc.RowsOut != 5 {
			t.Errorf("scan %s rows_out = %d, want 5", sc.Detail, sc.RowsOut)
		}
		if sc.Bytes == 0 {
			t.Errorf("scan %s bytes = 0, want > 0", sc.Detail)
		}
	}
	// Timings populated: the sum over nodes must be positive, and the
	// stats bracket must be rendered.
	var nanos int64
	root.Walk(func(n *PlanNode) { nanos += n.Nanos })
	if nanos <= 0 {
		t.Error("no node recorded wall time")
	}
	if line := res.Col(0).StringAt(0); !strings.Contains(line, "rows_out=") || !strings.Contains(line, "time=") {
		t.Errorf("rendered plan line missing measured stats: %q", line)
	}
}

func TestExplainAnalyzeMergePushdown(t *testing.T) {
	mdb := NewDB()
	schema := Schema{{Name: "hospital", Type: String}, {Name: "age", Type: Float64}}
	for _, part := range []string{"h1", "h2"} {
		pdb := NewDB()
		pt := NewTable(schema)
		_ = pt.AppendRow(part, 70.0)
		_ = pt.AppendRow(part, 80.0)
		pdb.RegisterTable("cohort", pt)
		m := mdb.Merge("cohort")
		if m == nil {
			m = &MergeTable{Schema: schema, TableName: "cohort"}
			mdb.RegisterMerge("cohort", m)
		}
		m.Parts = append(m.Parts, &LocalPart{Name: part, DB: pdb})
	}

	_, qs, err := mdb.QueryWithStats(`EXPLAIN ANALYZE SELECT avg(age) AS m FROM cohort`)
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string][]*PlanNode{}
	qs.Root.Walk(func(n *PlanNode) { byOp[n.Op] = append(byOp[n.Op], n) })
	if len(byOp["merge"]) != 1 || !strings.Contains(byOp["merge"][0].Detail, "pushdown") {
		t.Fatalf("want one pushdown merge node, got:\n%s", qs.Root)
	}
	if len(byOp["part"]) != 2 {
		t.Fatalf("want 2 part nodes, got %d", len(byOp["part"]))
	}
	for _, p := range byOp["part"] {
		// Partial aggregates: exactly one partial row ships per part.
		if p.RowsOut != 1 {
			t.Errorf("part %s shipped %d rows, want 1 partial row", p.Detail, p.RowsOut)
		}
	}
	if qs.RowsOut != 1 {
		t.Errorf("statement rows_out = %d, want 1", qs.RowsOut)
	}
	if qs.MergeNanos <= 0 {
		t.Error("MergeNanos not recorded")
	}
}

func TestExplainErrors(t *testing.T) {
	db := explainDB(t)
	if _, err := db.Query(`EXPLAIN EXPLAIN SELECT * FROM patients`); err == nil {
		t.Error("nested EXPLAIN should fail")
	}
	if _, err := db.Query(`EXPLAIN INSERT INTO patients VALUES (9, 'h9', 50)`); err == nil {
		t.Error("EXPLAIN over DML should fail")
	}
	if _, err := db.Query(`EXPLAIN SELECT * FROM nope`); err == nil {
		t.Error("EXPLAIN over unknown table should fail")
	}
}

func TestSlowLogCapturesOverThreshold(t *testing.T) {
	db := explainDB(t)
	log := NewSlowLog(2, 0)
	log.SetThreshold(1) // 1ns: everything is slow
	old := DefaultSlowLog
	DefaultSlowLog = log
	defer func() { DefaultSlowLog = old }()

	for _, sql := range []string{
		`SELECT count(*) AS n FROM patients`,
		`SELECT avg(age) AS m FROM patients`,
		`SELECT max(age) AS x FROM patients`,
	} {
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	entries := log.Entries()
	if len(entries) != 2 {
		t.Fatalf("ring kept %d entries, want capacity 2", len(entries))
	}
	// Newest first.
	if !strings.Contains(entries[0].SQL, "max(age)") {
		t.Errorf("newest entry = %q, want the max(age) query", entries[0].SQL)
	}
	if entries[0].RowsScanned != 5 || entries[0].RowsOut != 1 {
		t.Errorf("entry rows = %d/%d, want 5/1", entries[0].RowsScanned, entries[0].RowsOut)
	}
	if len(entries[0].Plan) == 0 {
		t.Error("slow entry has no captured plan")
	}

	// Above-threshold only: with a huge threshold nothing is captured.
	log.SetThreshold(time.Hour)
	if _, err := db.Query(`SELECT count(*) AS n FROM patients`); err != nil {
		t.Fatal(err)
	}
	if got := len(log.Entries()); got != 2 {
		t.Errorf("fast query was captured (now %d entries)", got)
	}
}

// TestRunIsMetered pins the audit fix: statements through DB.Run count
// toward QueryCount like Query does.
func TestRunIsMetered(t *testing.T) {
	db := explainDB(t)
	st, err := Parse(`SELECT count(*) AS n FROM patients`)
	if err != nil {
		t.Fatal(err)
	}
	before := db.QueryCount()
	if _, err := db.Run(st); err != nil {
		t.Fatal(err)
	}
	if got := db.QueryCount() - before; got != 1 {
		t.Errorf("Run added %d to QueryCount, want 1", got)
	}
}

// TestTopKOperator pins the bounded top-k path for ORDER BY … LIMIT:
// both plain EXPLAIN (predicted from catalog row counts) and EXPLAIN
// ANALYZE render a single `topk` node instead of order+limit, and the
// rows it returns are exactly the corresponding prefix of the full sort.
func TestTopKOperator(t *testing.T) {
	db := explainDB(t)
	lines := planLines(t, db, `EXPLAIN SELECT id, age FROM patients ORDER BY age DESC LIMIT 2`)
	if !strings.Contains(lines[0], "topk age DESC limit 2") {
		t.Errorf("plain EXPLAIN root = %q, want a topk node", lines[0])
	}
	for _, l := range lines {
		if strings.Contains(l, "order ") && !strings.Contains(l, "topk") {
			t.Errorf("plain EXPLAIN still has a separate order node: %q", l)
		}
	}
	lines = planLines(t, db, `EXPLAIN ANALYZE SELECT id, age FROM patients ORDER BY age DESC LIMIT 2`)
	if !strings.Contains(lines[0], "topk") || !strings.Contains(lines[0], "rows_out=2") {
		t.Errorf("EXPLAIN ANALYZE root = %q, want topk with rows_out=2", lines[0])
	}

	for _, q := range []struct {
		limited, full string
		offset, k     int
	}{
		{`SELECT id, age FROM patients ORDER BY age DESC, id LIMIT 2`,
			`SELECT id, age FROM patients ORDER BY age DESC, id`, 0, 2},
		{`SELECT id, age FROM patients WHERE age > 60 ORDER BY age, id LIMIT 2 OFFSET 1`,
			`SELECT id, age FROM patients WHERE age > 60 ORDER BY age, id`, 1, 2},
	} {
		got, err := db.Query(q.limited)
		if err != nil {
			t.Fatalf("%s: %v", q.limited, err)
		}
		ref, err := db.Query(q.full)
		if err != nil {
			t.Fatalf("%s: %v", q.full, err)
		}
		if got.NumRows() != q.k {
			t.Fatalf("%s: returned %d rows, want %d", q.limited, got.NumRows(), q.k)
		}
		for i := 0; i < got.NumRows(); i++ {
			for j := 0; j < got.NumCols(); j++ {
				g, r := got.Col(j).Value(i), ref.Col(j).Value(i+q.offset)
				if fmt.Sprint(g) != fmt.Sprint(r) {
					t.Errorf("%s: row %d col %d = %v, full-sort prefix has %v", q.limited, i, j, g, r)
				}
			}
		}
	}
}
