package engine

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates SQL token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokOp    // operators and punctuation
	tokParam // ? placeholder
)

type token struct {
	kind tokKind
	text string // keywords upper-cased; identifiers as written
	pos  int
}

var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "IS": true, "IN": true,
	"TRUE": true, "FALSE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "CREATE": true, "TABLE": true, "INSERT": true,
	"INTO": true, "VALUES": true, "DROP": true, "IF": true, "EXISTS": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "CAST": true, "OFFSET": true,
	"REMOTE": true, "MERGE": true, "DELETE": true, "BETWEEN": true,
	"JOIN": true, "INNER": true, "LEFT": true, "ON": true,
	"EXPLAIN": true, "ANALYZE": true,
}

// lex tokenizes a SQL string.
func lex(sql string) ([]token, error) {
	var toks []token
	i := 0
	n := len(sql)
	for i < n {
		c := sql[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && sql[i+1] == '-': // line comment
			for i < n && sql[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < n && unicode.IsDigit(rune(sql[i+1]))):
			start := i
			seenDot, seenExp := false, false
			for i < n {
				d := sql[i]
				if unicode.IsDigit(rune(d)) {
					i++
				} else if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
				} else if (d == 'e' || d == 'E') && !seenExp {
					seenExp = true
					i++
					if i < n && (sql[i] == '+' || sql[i] == '-') {
						i++
					}
				} else {
					break
				}
			}
			toks = append(toks, token{tokNumber, sql[start:i], start})
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if sql[i] == '\'' {
					if i+1 < n && sql[i+1] == '\'' { // escaped quote
						b.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				b.WriteByte(sql[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("engine: unterminated string literal at %d", start)
			}
			toks = append(toks, token{tokString, b.String(), start})
		case c == '"': // quoted identifier; "" is an escaped quote
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < n {
				if sql[i] == '"' {
					if i+1 < n && sql[i+1] == '"' { // escaped quote
						b.WriteByte('"')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				b.WriteByte(sql[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("engine: unterminated quoted identifier at %d", start)
			}
			toks = append(toks, token{tokIdent, b.String(), start})
		case unicode.IsLetter(rune(c)) || c == '_':
			start := i
			for i < n && (unicode.IsLetter(rune(sql[i])) || unicode.IsDigit(rune(sql[i])) || sql[i] == '_') {
				i++
			}
			word := sql[start:i]
			up := strings.ToUpper(word)
			if sqlKeywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case c == '?':
			toks = append(toks, token{tokParam, "?", i})
			i++
		default:
			// Multi-char operators first.
			two := ""
			if i+1 < n {
				two = sql[i : i+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=", "||":
				if two == "!=" {
					two = "<>"
				}
				toks = append(toks, token{tokOp, two, i})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', '.', ';':
				toks = append(toks, token{tokOp, string(c), i})
				i++
			default:
				return nil, fmt.Errorf("engine: unexpected character %q at %d", c, i)
			}
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}
