package engine

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"
)

// plannerDB builds a three-table cohort with deliberate multiplicities:
// scans holds two rows per subject and labels covers only a prefix, so
// join order changes intermediate shapes while the rowid-restore pass must
// keep the final output bit-identical to written-order execution.
func plannerDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	db := NewDB(opts...)
	stmts := []string{
		`CREATE TABLE subjects (sid INT, age DOUBLE, site TEXT)`,
		`CREATE TABLE scans (sid INT, vol DOUBLE, q INT, scanner TEXT, series TEXT)`,
		`CREATE TABLE labels (sid INT, dx TEXT)`,
	}
	for _, s := range stmts {
		if _, err := db.Query(s); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
	}
	for sid := 0; sid < 40; sid++ {
		ins := fmt.Sprintf(`INSERT INTO subjects VALUES (%d, %d, 's%d')`, sid, 20+(sid*7)%50, sid%3)
		if _, err := db.Query(ins); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 80; i++ {
		ins := fmt.Sprintf(`INSERT INTO scans VALUES (%d, %d.25, %d, 'sc%d', 'ser%d')`, i%40, i, i%5, i%4, i%7)
		if _, err := db.Query(ins); err != nil {
			t.Fatal(err)
		}
	}
	dxs := []string{"CN", "MCI", "AD"}
	for sid := 0; sid < 30; sid++ {
		ins := fmt.Sprintf(`INSERT INTO labels VALUES (%d, '%s')`, sid, dxs[sid%3])
		if _, err := db.Query(ins); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// requireSameTable asserts schema, row count, null masks, and every cell are
// identical. Floats compare by bit pattern: the reorder guarantee is
// bit-identical results, not approximate ones.
func requireSameTable(t *testing.T, label string, got, want *Table) {
	t.Helper()
	gs, ws := got.Schema(), want.Schema()
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d columns, want %d", label, len(gs), len(ws))
	}
	for i := range gs {
		if gs[i].Name != ws[i].Name || gs[i].Type != ws[i].Type {
			t.Fatalf("%s: column %d = %s %v, want %s %v", label, i, gs[i].Name, gs[i].Type, ws[i].Name, ws[i].Type)
		}
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("%s: %d rows, want %d", label, got.NumRows(), want.NumRows())
	}
	for c := 0; c < got.NumCols(); c++ {
		gv, wv := got.Col(c), want.Col(c)
		for r := 0; r < got.NumRows(); r++ {
			if gv.IsNull(r) != wv.IsNull(r) {
				t.Fatalf("%s: null mask differs at row %d col %s", label, r, gs[c].Name)
			}
			if gv.IsNull(r) {
				continue
			}
			a, b := gv.Value(r), wv.Value(r)
			if af, aok := a.(float64); aok {
				bf, bok := b.(float64)
				if !bok || math.Float64bits(af) != math.Float64bits(bf) {
					t.Fatalf("%s: row %d col %s = %v, want %v (bitwise)", label, r, gs[c].Name, a, b)
				}
				continue
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("%s: row %d col %s = %v, want %v", label, r, gs[c].Name, a, b)
			}
		}
	}
}

// TestJoinReorderEquivalenceCorpus is the acceptance corpus: every query
// must produce bit-identical tables across written-order vs reordered
// execution and serial vs parallel execution. Runs under -race via the CI
// -cpu matrix.
func TestJoinReorderEquivalenceCorpus(t *testing.T) {
	corpus := []string{
		// Equality filter on the last-written relation: reorder joins it first.
		`SELECT b.sid, s.vol, l.dx FROM subjects b JOIN scans s ON b.sid = s.sid JOIN labels l ON l.sid = b.sid WHERE l.dx = 'AD' AND s.q > 1`,
		// No filters: tie-break by declared schema width.
		`SELECT b.sid, b.site, s.scanner, l.dx FROM subjects b JOIN scans s ON b.sid = s.sid JOIN labels l ON l.sid = b.sid`,
		// SELECT * keeps full written column-block order.
		`SELECT * FROM subjects b JOIN scans s ON b.sid = s.sid JOIN labels l ON l.sid = b.sid WHERE s.q = 2`,
		// Aggregate over the reordered join.
		`SELECT l.dx, count(*) AS n, avg(s.vol) AS v FROM subjects b JOIN scans s ON b.sid = s.sid JOIN labels l ON l.sid = b.sid WHERE b.age > 30 GROUP BY l.dx ORDER BY l.dx`,
		// Cross-relation conjunct must stay residual above the joins.
		`SELECT b.sid, s.vol FROM subjects b JOIN scans s ON b.sid = s.sid JOIN labels l ON l.sid = b.sid WHERE b.age > s.q * 10 AND l.dx = 'MCI'`,
		// ORDER BY + LIMIT/OFFSET above the restored order.
		`SELECT b.sid, s.vol, l.dx FROM subjects b JOIN scans s ON b.sid = s.sid JOIN labels l ON l.sid = b.sid WHERE l.dx IN ('CN', 'AD') ORDER BY s.vol DESC LIMIT 7 OFFSET 3`,
		// Bare column names resolved by unique schema membership.
		`SELECT age, vol, dx FROM subjects b JOIN scans s ON b.sid = s.sid JOIN labels l ON l.sid = b.sid WHERE dx = 'CN' AND age > 25`,
		// LEFT join: reorder bails, pushdown must not touch the right side.
		`SELECT b.sid, l.dx FROM subjects b JOIN scans s ON b.sid = s.sid LEFT JOIN labels l ON l.sid = b.sid WHERE s.q >= 3`,
		// Range-only filters (class 1) on two relations.
		`SELECT b.sid, s.series FROM subjects b JOIN scans s ON b.sid = s.sid JOIN labels l ON l.sid = b.sid WHERE s.vol < 40 AND b.age < 45`,
	}
	type cfg struct {
		label string
		opts  []Option
	}
	ref := plannerDB(t, WithParallelism(1), WithJoinReorder(false))
	variants := []cfg{
		{"serial-reordered", []Option{WithParallelism(1), WithJoinReorder(true)}},
		{"parallel-written", []Option{WithParallelism(4), WithMorselSize(64), WithJoinReorder(false)}},
		{"parallel-reordered", []Option{WithParallelism(4), WithMorselSize(64), WithJoinReorder(true)}},
	}
	dbs := make([]*DB, len(variants))
	for i, v := range variants {
		dbs[i] = plannerDB(t, v.opts...)
	}
	for qi, sql := range corpus {
		want := q(t, ref, sql)
		for i, v := range variants {
			got := q(t, dbs[i], sql)
			requireSameTable(t, fmt.Sprintf("query %d under %s", qi, v.label), got, want)
		}
	}
}

// TestGreedyOrderPrefersEqualityFilteredRelation pins the heuristic: with an
// equality filter on the last-written relation, EXPLAIN must show that join
// executing first (deepest) and a restore-order stage on top.
func TestGreedyOrderPrefersEqualityFilteredRelation(t *testing.T) {
	db := plannerDB(t)
	sql := `SELECT b.sid, s.vol, l.dx FROM subjects b JOIN scans s ON b.sid = s.sid JOIN labels l ON l.sid = b.sid WHERE l.dx = 'AD' AND s.vol < 50`
	lines := planLines(t, db, "EXPLAIN "+sql)
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "restore written join order") {
		t.Fatalf("plan does not restore written order (so no reorder happened):\n%s", joined)
	}
	// Scans appear bottom-up: the labels scan must sit above (execute
	// before) the scans scan in the rendered tree.
	li := strings.Index(joined, "scan labels")
	si := strings.Index(joined, "scan scans")
	if li < 0 || si < 0 {
		t.Fatalf("plan lost a scan node:\n%s", joined)
	}
	if li > si {
		t.Errorf("equality-filtered labels should join before range-filtered scans:\n%s", joined)
	}
	// Both filters were pushed below the joins.
	if strings.Count(joined, "pushed") != 2 {
		t.Errorf("want 2 pushed filters in plan:\n%s", joined)
	}

	// EXPLAIN ANALYZE agrees and the measured result matches direct execution.
	direct := q(t, db, sql)
	res, qs, err := db.QueryWithStats("EXPLAIN ANALYZE " + sql)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 || qs.Root == nil {
		t.Fatal("EXPLAIN ANALYZE produced no measured tree")
	}
	if qs.Root.Op != "order" && int(qs.Root.RowsOut) != direct.NumRows() {
		t.Errorf("analyze root rows_out = %d, want %d", qs.Root.RowsOut, direct.NumRows())
	}
	var restored bool
	qs.Root.Walk(func(n *PlanNode) {
		if n.Op == "order" && strings.Contains(n.Detail, "restore written join order") {
			restored = true
			if int(n.RowsOut) != direct.NumRows() {
				t.Errorf("restore stage rows_out = %d, want %d", n.RowsOut, direct.NumRows())
			}
		}
	})
	if !restored {
		t.Errorf("measured tree lacks the restore-order stage:\n%s", qs.Root)
	}
}

// TestJoinReorderBailouts pins the cases where the planner must keep the
// written order.
func TestJoinReorderBailouts(t *testing.T) {
	db := plannerDB(t)
	for _, tc := range []struct {
		name, sql string
	}{
		{"left join", `SELECT b.sid FROM subjects b JOIN scans s ON b.sid = s.sid LEFT JOIN labels l ON l.sid = b.sid WHERE l.dx = 'AD'`},
		{"single join", `SELECT b.sid FROM subjects b JOIN labels l ON l.sid = b.sid WHERE l.dx = 'AD'`},
	} {
		lines := planLines(t, db, "EXPLAIN "+tc.sql)
		if joined := strings.Join(lines, "\n"); strings.Contains(joined, "restore written join order") {
			t.Errorf("%s: plan reordered but must not:\n%s", tc.name, joined)
		}
	}
	// Written-order resolution errors must be preserved: clause 1 referencing
	// clause 2's alias fails no matter what order might have fixed it.
	if _, err := db.Query(`SELECT b.sid FROM subjects b JOIN scans s ON s.sid = l.sid JOIN labels l ON l.sid = b.sid`); err == nil {
		t.Error("forward ON reference should fail as in written order")
	}
}

// TestPlanJoinsFilterPlacement unit-checks conjunct distribution.
func TestPlanJoinsFilterPlacement(t *testing.T) {
	db := plannerDB(t)
	st, err := Parse(`SELECT b.sid FROM subjects b JOIN scans s ON b.sid = s.sid LEFT JOIN labels l ON l.sid = b.sid WHERE s.q = 1 AND l.dx = 'AD' AND b.age > s.q`)
	if err != nil {
		t.Fatal(err)
	}
	sel := st.(*SelectStmt)
	plan, err := db.planJoins(sel, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.reordered {
		t.Error("LEFT join plan must not reorder")
	}
	if plan.rels[1].pushed == nil || plan.rels[1].filterClass != 2 {
		t.Errorf("scans should carry a pushed class-2 filter, got %v class %d", plan.rels[1].pushed, plan.rels[1].filterClass)
	}
	if plan.rels[2].pushed != nil {
		t.Errorf("right side of LEFT JOIN must not receive pushed filter, got %v", plan.rels[2].pushed)
	}
	res := plan.residual
	if res == nil {
		t.Fatal("residual lost")
	}
	s := res.String()
	if !strings.Contains(s, "dx") || !strings.Contains(s, "age") {
		t.Errorf("residual = %s, want the LEFT-side conjunct and the cross-relation conjunct", s)
	}
	if strings.Contains(s, "(s.q = 1)") {
		t.Errorf("pushed conjunct still in residual: %s", s)
	}
}
