package engine

import (
	"fmt"
	"math"
	"runtime"
	"testing"
)

// Regression tests for the key-encoding collision bug. The engine used to
// render every key tuple to a string — "%v|" per element, "\x00N|" for
// NULL — so the tuples ("a|", "b") and ("a", "|b") both encoded to
// "a||b|", and the string "\x00N" encoded identically to NULL. The typed
// hash kernels compare real column values, so these keys must stay
// distinct in GROUP BY, JOIN ON, and COUNT(DISTINCT ...) at every
// parallelism degree. (Against the old encoding each of these tests
// fails: the colliding keys merge into one group / join match.)

// collisionDegrees mirrors the equivalence corpus: serial oracle, forced
// fan-out, and the host's real degree.
func collisionDegrees() []int { return []int{1, 2, runtime.NumCPU()} }

func TestGroupByKeyCollision(t *testing.T) {
	for _, d := range collisionDegrees() {
		db := NewDB(WithParallelism(d), WithMorselSize(64))
		kv := NewTable(Schema{{Name: "a", Type: String}, {Name: "b", Type: String}})
		for i := 0; i < 100; i++ {
			if err := kv.AppendRow("a|", "b"); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 50; i++ {
			if err := kv.AppendRow("a", "|b"); err != nil {
				t.Fatal(err)
			}
		}
		db.RegisterTable("kv", kv)
		res, err := db.Query(`SELECT a, b, count(*) AS n FROM kv GROUP BY a, b ORDER BY n DESC`)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 2 {
			t.Fatalf("par=%d: (\"a|\",\"b\") and (\"a\",\"|b\") merged: got %d group(s), want 2", d, res.NumRows())
		}
		if n0, n1 := res.Col(2).Value(0), res.Col(2).Value(1); fmt.Sprint(n0) != "100" || fmt.Sprint(n1) != "50" {
			t.Fatalf("par=%d: group counts = %v, %v, want 100, 50", d, n0, n1)
		}
	}
}

func TestGroupByNullSentinelCollision(t *testing.T) {
	for _, d := range collisionDegrees() {
		db := NewDB(WithParallelism(d), WithMorselSize(64))
		s := NewTable(Schema{{Name: "k", Type: String}})
		for i := 0; i < 80; i++ {
			if err := s.AppendRow(nil); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 30; i++ {
			// The literal text of the old NULL sentinel, as real data.
			if err := s.AppendRow("\x00N"); err != nil {
				t.Fatal(err)
			}
		}
		db.RegisterTable("s", s)
		res, err := db.Query(`SELECT k, count(*) AS n FROM s GROUP BY k ORDER BY n DESC`)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 2 {
			t.Fatalf("par=%d: NULL and \"\\x00N\" merged: got %d group(s), want 2", d, res.NumRows())
		}
		if !res.Col(0).IsNull(0) || res.Col(0).IsNull(1) {
			t.Fatalf("par=%d: expected the NULL group (n=80) first, then \"\\x00N\" (n=30)", d)
		}
	}
}

func TestJoinKeyCollision(t *testing.T) {
	for _, d := range collisionDegrees() {
		db := NewDB(WithParallelism(d), WithMorselSize(64))
		l := NewTable(Schema{{Name: "k1", Type: String}, {Name: "k2", Type: String}, {Name: "lv", Type: Int64}})
		if err := l.AppendRow("a|", "b", int64(1)); err != nil {
			t.Fatal(err)
		}
		r := NewTable(Schema{{Name: "k1", Type: String}, {Name: "k2", Type: String}, {Name: "rv", Type: Int64}})
		if err := r.AppendRow("a", "|b", int64(10)); err != nil { // collides under the old encoding
			t.Fatal(err)
		}
		if err := r.AppendRow("a|", "b", int64(20)); err != nil { // the genuine match
			t.Fatal(err)
		}
		db.RegisterTable("l", l)
		db.RegisterTable("r", r)
		res, err := db.Query(`SELECT x.lv, y.rv FROM l x JOIN r y ON x.k1 = y.k1 AND x.k2 = y.k2`)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 1 {
			t.Fatalf("par=%d: join matched %d row(s), want exactly the (\"a|\",\"b\") pair", d, res.NumRows())
		}
		if got := fmt.Sprint(res.Col(1).Value(0)); got != "20" {
			t.Fatalf("par=%d: joined rv = %s, want 20", d, got)
		}
	}
}

func TestCountDistinctTrickyStrings(t *testing.T) {
	for _, d := range collisionDegrees() {
		db := NewDB(WithParallelism(d), WithMorselSize(64))
		s := NewTable(Schema{{Name: "g", Type: String}, {Name: "k", Type: String}})
		vals := []any{"a|", "a", "|a", "\x00N", nil}
		for i := 0; i < 200; i++ {
			if err := s.AppendRow("g", vals[i%len(vals)]); err != nil {
				t.Fatal(err)
			}
		}
		db.RegisterTable("s", s)
		res, err := db.Query(`SELECT g, count(DISTINCT k) AS dk FROM s GROUP BY g`)
		if err != nil {
			t.Fatal(err)
		}
		// NULL never counts toward DISTINCT; the four strings all stay apart.
		if got := fmt.Sprint(res.Col(1).Value(0)); got != "4" {
			t.Fatalf("par=%d: count(DISTINCT k) = %s, want 4", d, got)
		}
	}
}

// --- kernel unit tests ---

func TestFloatKeyBitsSemantics(t *testing.T) {
	nanA := math.NaN()
	nanB := math.Float64frombits(math.Float64bits(math.NaN()) ^ 1) // different payload
	if !math.IsNaN(nanB) {
		t.Fatal("test bug: payload flip left the NaN domain")
	}
	if floatKeyBits(nanA) != floatKeyBits(nanB) {
		t.Error(`all NaNs must collapse to one key (the old rendering gave every NaN "NaN")`)
	}
	if floatKeyBits(0.0) == floatKeyBits(math.Copysign(0, -1)) {
		t.Error(`+0 and -0 must stay distinct keys (the old rendering gave "0" vs "-0")`)
	}
	if floatKeyBits(1.5) != math.Float64bits(1.5) {
		t.Error("ordinary floats must key by their raw IEEE bits")
	}
}

func TestHashKeyColsNullDistinctFromData(t *testing.T) {
	v := NewVector(String)
	v.AppendString("\x00N")
	v.AppendNull()
	out := make([]uint64, 2)
	hashKeyCols([]*Vector{v}, 2, out)
	if out[0] == out[1] {
		t.Error("NULL hashed identically to the old sentinel text — marker not folded in")
	}
	if keyRowsEqual([]*Vector{v}, 0, []*Vector{v}, 1) {
		t.Error("keyRowsEqual treats \"\\x00N\" as NULL")
	}
	if !keyRowsEqual([]*Vector{v}, 1, []*Vector{v}, 1) {
		t.Error("keyRowsEqual must treat NULL = NULL (grouping semantics)")
	}
}

func TestStringHashIsContentBased(t *testing.T) {
	a, b := NewVector(String), NewVector(String)
	for _, s := range []string{"pad", "x"} { // different codes for "x" in each dict
		a.AppendString(s)
	}
	b.AppendString("x")
	ha, hb := make([]uint64, 2), make([]uint64, 1)
	hashKeyCols([]*Vector{a}, 2, ha)
	hashKeyCols([]*Vector{b}, 1, hb)
	if ha[1] != hb[0] {
		t.Error("same text must hash identically across dictionaries (cross-morsel combine relies on it)")
	}
	if !keyRowsEqual([]*Vector{a}, 1, []*Vector{b}, 0) {
		t.Error("same text must compare equal across dictionaries")
	}
}

func TestDictCodeHashesMemoized(t *testing.T) {
	v := NewVector(String)
	v.AppendString("alpha")
	v.AppendString("beta")
	h1 := v.StrDict().codeHashes()
	if len(h1) != 2 || h1[0] != hashString("alpha") || h1[1] != hashString("beta") {
		t.Fatalf("codeHashes = %v, want content hashes of [alpha beta]", h1)
	}
	v.AppendString("gamma") // extends the dict; memo must extend too
	h2 := v.StrDict().codeHashes()
	if len(h2) != 3 || h2[2] != hashString("gamma") {
		t.Fatalf("codeHashes after append = %v, want 3 entries ending with hash(gamma)", h2)
	}
}

func TestGroupIndexOrderGrowAndFind(t *testing.T) {
	v := NewVector(Int64)
	const rows, keys = 10_000, 1_000
	for i := 0; i < rows; i++ {
		v.AppendInt64(int64(i % keys))
	}
	hashes := make([]uint64, rows)
	hashKeyCols([]*Vector{v}, rows, hashes)
	gi := newGroupIndex(0) // starts at minimum capacity: forces many grows
	src := gi.addSource([]*Vector{v})
	for r := 0; r < rows; r++ {
		g := gi.insert(hashes[r], src, int32(r))
		if int(g) != r%keys {
			t.Fatalf("row %d: group id %d, want first-appearance id %d", r, g, r%keys)
		}
	}
	if gi.groups() != keys {
		t.Fatalf("groups() = %d, want %d", gi.groups(), keys)
	}
	for r := 0; r < keys; r++ {
		if g := gi.find(hashes[r], src, int32(r)); int(g) != r {
			t.Fatalf("find(row %d) = %d, want %d", r, g, r)
		}
	}
	// A key that was never inserted must come back -1.
	probe := NewVector(Int64)
	probe.AppendInt64(keys + 7)
	ph := make([]uint64, 1)
	hashKeyCols([]*Vector{probe}, 1, ph)
	psrc := gi.addSource([]*Vector{probe})
	if g := gi.find(ph[0], psrc, 0); g != -1 {
		t.Fatalf("find(absent key) = %d, want -1", g)
	}
}

func TestDistinctSetMergeRemapsGroups(t *testing.T) {
	mk := func(vals ...int64) (*distinctSet, *Vector) {
		v := NewVector(Int64)
		for _, x := range vals {
			v.AppendInt64(x)
		}
		return newDistinctSet(), v
	}
	// Morsel A saw values 1,2 in its local group 0; morsel B saw 2,3 in its
	// local group 0, which the combine maps to global group 1.
	a, av := mk(1, 2)
	asrc := a.addSource(av)
	b, bv := mk(2, 3)
	bsrc := b.addSource(bv)
	h := make([]uint64, 2)
	hashKeyCols([]*Vector{av}, 2, h)
	for r := 0; r < 2; r++ {
		if !a.insert(h[r], 0, asrc, int32(r)) {
			t.Fatalf("morsel A insert %d not new", r)
		}
	}
	hashKeyCols([]*Vector{bv}, 2, h)
	for r := 0; r < 2; r++ {
		if !b.insert(h[r], 0, bsrc, int32(r)) {
			t.Fatalf("morsel B insert %d not new", r)
		}
	}
	global, _ := mk()
	count := make([]int64, 2)
	global.mergeFrom(a, []int{0}, count)
	global.mergeFrom(b, []int{1}, count)
	if count[0] != 2 || count[1] != 2 {
		t.Fatalf("counts after merge = %v, want [2 2] (groups remapped, value 2 distinct per group)", count)
	}
	// Merging B again into the same global group adds nothing new.
	global.mergeFrom(b, []int{1}, count)
	if count[1] != 2 {
		t.Fatalf("re-merge changed count to %d; distinct set must dedupe", count[1])
	}
}

func TestSelBufPoolReuse(t *testing.T) {
	s := getSelBuf(100)
	if len(s) != 0 || cap(s) < 100 {
		t.Fatalf("getSelBuf: len=%d cap=%d, want empty with cap >= 100", len(s), cap(s))
	}
	s = append(s, 1, 2, 3)
	putSelBuf(s)
	h := getHashBuf(64)
	if len(h) != 64 {
		t.Fatalf("getHashBuf(64) len = %d", len(h))
	}
	putHashBuf(h)
}
