package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"
)

// buildFederation creates nParts local DBs each holding a shard of the same
// logical table, plus a pooled DB with all rows, and returns the merge view
// and the pooled DB for equivalence checks.
func buildFederation(t *testing.T, nParts int) (*DB, *MergeTable, *DB) {
	t.Helper()
	schema := Schema{{"hospital", String}, {"age", Float64}, {"mmse", Float64}, {"diagnosis", String}}
	master := NewDB()
	pooled := NewDB()
	pooledTab := NewTable(schema)
	pooled.RegisterTable("data", pooledTab)

	mt := &MergeTable{Schema: schema, TableName: "data"}
	row := 0
	for p := 0; p < nParts; p++ {
		db := NewDB()
		tab := NewTable(schema)
		for i := 0; i < 50+p*13; i++ {
			h := fmt.Sprintf("hosp%d", p)
			age := 55 + float64((row*37)%40) + float64(p)
			var mmse any = float64(10 + (row*29)%20)
			if row%11 == 0 {
				mmse = nil
			}
			diag := []string{"CN", "MCI", "AD"}[row%3]
			if err := tab.AppendRow(h, age, mmse, diag); err != nil {
				t.Fatal(err)
			}
			if err := pooledTab.AppendRow(h, age, mmse, diag); err != nil {
				t.Fatal(err)
			}
			row++
		}
		db.RegisterTable("data", tab)
		mt.Parts = append(mt.Parts, &LocalPart{Name: fmt.Sprintf("part%d", p), DB: db})
	}
	master.RegisterMerge("data", mt)
	return master, mt, pooled
}

// checkSame asserts two result tables are equal within tolerance.
func checkSame(t *testing.T, sql string, got, want *Table) {
	t.Helper()
	if got.NumRows() != want.NumRows() || got.NumCols() != want.NumCols() {
		t.Fatalf("%s: dims %dx%d vs %dx%d", sql, got.NumRows(), got.NumCols(), want.NumRows(), want.NumCols())
	}
	for i := 0; i < got.NumRows(); i++ {
		for j := 0; j < got.NumCols(); j++ {
			a, b := got.Col(j).Value(i), want.Col(j).Value(i)
			af, aok := a.(float64)
			bf, bok := b.(float64)
			if aok && bok {
				if math.Abs(af-bf) > 1e-9*(1+math.Abs(bf)) {
					t.Fatalf("%s: [%d][%d] = %v, want %v", sql, i, j, a, b)
				}
				continue
			}
			// count() comes back as BIGINT pooled but the pushdown path may
			// deliver a float; normalize.
			if ai, ok := a.(int64); ok {
				a = float64(ai)
			}
			if bi, ok := b.(int64); ok {
				b = float64(bi)
			}
			if a != b {
				t.Fatalf("%s: [%d][%d] = %v (%T), want %v (%T)", sql, i, j, a, a, b, b)
			}
		}
	}
}

// TestMergePushdownEquivalence is the paper's consistency claim (E4/E9):
// a federated aggregate must equal the pooled aggregate, with only partial
// aggregates crossing the wire.
func TestMergePushdownEquivalence(t *testing.T) {
	master, mt, pooled := buildFederation(t, 4)
	queries := []string{
		`SELECT count(*) AS n FROM data`,
		`SELECT sum(age) AS s, avg(age) AS m FROM data`,
		`SELECT min(age) AS lo, max(age) AS hi FROM data`,
		`SELECT count(mmse) AS n FROM data`,
		`SELECT stddev_samp(age) AS sd, var_samp(age) AS v FROM data`,
		`SELECT diagnosis, count(*) AS n, avg(mmse) AS m FROM data GROUP BY diagnosis ORDER BY diagnosis`,
		`SELECT diagnosis, avg(age) AS m FROM data WHERE age > 60 GROUP BY diagnosis ORDER BY diagnosis`,
		`SELECT hospital, diagnosis, count(*) AS n FROM data GROUP BY hospital, diagnosis ORDER BY hospital, diagnosis`,
		`SELECT corr(age, mmse) AS r FROM data`,
		`SELECT diagnosis, count(*) AS n FROM data GROUP BY diagnosis HAVING count(*) > 20 ORDER BY diagnosis`,
		`SELECT avg(age) AS m FROM data WHERE diagnosis IN ('AD', 'MCI')`,
	}
	for _, sql := range queries {
		got, err := master.Query(sql)
		if err != nil {
			t.Fatalf("merge query %q: %v", sql, err)
		}
		if !mt.LastStats().Pushdown {
			t.Errorf("%s: expected aggregate pushdown", sql)
		}
		want, err := pooled.Query(sql)
		if err != nil {
			t.Fatalf("pooled query %q: %v", sql, err)
		}
		checkSame(t, sql, got, want)
	}
}

// Non-decomposable aggregates (median/quantile) and row queries fall back
// to materializing the union; results must still be exact.
func TestMergeMaterializeFallback(t *testing.T) {
	master, mt, pooled := buildFederation(t, 3)
	queries := []string{
		`SELECT median(age) AS m FROM data`,
		`SELECT quantile(age, 0.25) AS q FROM data`,
		`SELECT count(DISTINCT diagnosis) AS d FROM data`,
	}
	for _, sql := range queries {
		got, err := master.Query(sql)
		if err != nil {
			t.Fatalf("merge query %q: %v", sql, err)
		}
		if mt.LastStats().Pushdown {
			t.Errorf("%s: expected materialize fallback", sql)
		}
		want, err := pooled.Query(sql)
		if err != nil {
			t.Fatal(err)
		}
		checkSame(t, sql, got, want)
	}
}

// Pushdown must ship far fewer rows than materialization.
func TestMergePushdownShipsOnlyAggregates(t *testing.T) {
	master, mt, _ := buildFederation(t, 4)
	if _, err := master.Query(`SELECT avg(age) AS m FROM data`); err != nil {
		t.Fatal(err)
	}
	push := mt.LastStats()
	if push.RowsShipped != 4 { // one partial row per part
		t.Fatalf("pushdown shipped %d rows, want 4", push.RowsShipped)
	}
	if _, err := master.Query(`SELECT median(age) AS m FROM data`); err != nil {
		t.Fatal(err)
	}
	mat := mt.LastStats()
	if mat.RowsShipped <= push.RowsShipped {
		t.Fatalf("materialize shipped %d rows, pushdown %d — expected many more", mat.RowsShipped, push.RowsShipped)
	}
}

func TestMergeRowQuery(t *testing.T) {
	master, _, pooled := buildFederation(t, 2)
	sql := `SELECT hospital, age FROM data WHERE age > 80 ORDER BY age, hospital LIMIT 10`
	got, err := master.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pooled.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, sql, got, want)
}

func TestMergeSinglePart(t *testing.T) {
	master, _, pooled := buildFederation(t, 1)
	sql := `SELECT diagnosis, avg(age) AS m FROM data GROUP BY diagnosis ORDER BY diagnosis`
	got, err := master.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := pooled.Query(sql)
	checkSame(t, sql, got, want)
}

func TestMergePartError(t *testing.T) {
	mt := &MergeTable{
		Schema:    Schema{{"x", Float64}},
		TableName: "nope",
		Parts:     []Part{&LocalPart{Name: "p0", DB: NewDB()}},
	}
	db := NewDB()
	db.RegisterMerge("v", mt)
	if _, err := db.Query(`SELECT sum(x) FROM v`); err == nil {
		t.Fatal("expected error from failing part")
	}
}

// failingPart always errors — a dead worker as the merge table sees it.
type failingPart struct{ name string }

func (p *failingPart) PartName() string { return p.name }
func (p *failingPart) Query(string) (*Table, error) {
	return nil, fmt.Errorf("connection refused")
}

// partTable builds a one-part DB with n rows of x = 1..n.
func partDB(t *testing.T, n int) *DB {
	t.Helper()
	db := NewDB()
	tab := NewTable(Schema{{"x", Float64}})
	for i := 1; i <= n; i++ {
		if err := tab.AppendRow(float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable("data", tab)
	return db
}

// TestMergeMinPartsDegraded: with MinParts set, a failing part is dropped
// from both the pushdown and the materialize path, the partial result
// covers the survivors, and LastStats names the failed part. Below
// MinParts the query errors.
func TestMergeMinPartsDegraded(t *testing.T) {
	newMT := func(minParts int) (*DB, *MergeTable) {
		mt := &MergeTable{
			Schema:    Schema{{"x", Float64}},
			TableName: "data",
			MinParts:  minParts,
			Parts: []Part{
				&LocalPart{Name: "p0", DB: partDB(t, 3)}, // x: 1,2,3
				&failingPart{name: "p1"},
				&LocalPart{Name: "p2", DB: partDB(t, 2)}, // x: 1,2
			},
		}
		db := NewDB()
		db.RegisterMerge("data", mt)
		return db, mt
	}

	// Pushdown path (decomposable aggregate).
	db, mt := newMT(2)
	got, err := db.Query(`SELECT sum(x) AS s FROM data`)
	if err != nil {
		t.Fatalf("degraded pushdown: %v", err)
	}
	if s := got.Col(0).Float64s()[0]; s != 9 { // 6 + 3
		t.Fatalf("partial sum = %v, want 9", s)
	}
	st := mt.LastStats()
	if !st.Pushdown || st.PartsQueried != 2 || len(st.FailedParts) != 1 || st.FailedParts[0] != "p1" {
		t.Fatalf("stats = %+v", st)
	}

	// Materialize path (non-decomposable aggregate).
	db, mt = newMT(2)
	got, err = db.Query(`SELECT median(x) AS m FROM data`)
	if err != nil {
		t.Fatalf("degraded materialize: %v", err)
	}
	if m := got.Col(0).Float64s()[0]; m != 2 { // union 1,2,3,1,2
		t.Fatalf("partial median = %v, want 2", m)
	}
	st = mt.LastStats()
	if st.Pushdown || len(st.FailedParts) != 1 || st.FailedParts[0] != "p1" {
		t.Fatalf("stats = %+v", st)
	}

	// Survivors below MinParts: fail, naming the broken part.
	db, _ = newMT(3)
	if _, err := db.Query(`SELECT sum(x) FROM data`); err == nil {
		t.Fatal("2 survivors under MinParts=3 must fail")
	}

	// MinParts unset keeps strict semantics.
	db, _ = newMT(0)
	if _, err := db.Query(`SELECT sum(x) FROM data`); err == nil {
		t.Fatal("strict merge with failing part must fail")
	}
}

// nilPart answers with neither a table nor an error — a buggy worker.
type nilPart struct{ name string }

func (p *nilPart) PartName() string             { return p.name }
func (p *nilPart) Query(string) (*Table, error) { return nil, nil }

// TestMergeMaterializeProjectionFilterLimitPushdown is the acceptance
// check for the materialize-path pushdown: a projected, filtered, limited
// row query must ship measurably fewer rows and bytes than the full
// SELECT * materialization, the pushed SQL must show all three
// reductions, and the result must still equal the pooled reference.
func TestMergeMaterializeProjectionFilterLimitPushdown(t *testing.T) {
	master, mt, pooled := buildFederation(t, 4)

	// Baseline: a query that materializes the full union.
	if _, err := master.Query(`SELECT median(age) AS m FROM data`); err != nil {
		t.Fatal(err)
	}
	base := mt.LastStats()
	if base.Pushdown || base.RowsShipped == 0 || base.BytesShipped == 0 {
		t.Fatalf("baseline stats = %+v, want a full materialization", base)
	}

	sql := `SELECT hospital, age FROM data WHERE age > 80 LIMIT 10`
	got, err := master.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err := pooled.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, sql, got, want)

	st := mt.LastStats()
	if st.Pushdown {
		t.Fatal("row query must take the materialize path")
	}
	wantSQL := `SELECT hospital, age FROM data WHERE (age > 80) LIMIT 10`
	if st.PartSQL != wantSQL {
		t.Errorf("part SQL = %q, want %q", st.PartSQL, wantSQL)
	}
	if st.RowsShipped > 4*10 {
		t.Errorf("shipped %d rows, want at most parts*(limit+offset) = 40", st.RowsShipped)
	}
	if st.RowsShipped >= base.RowsShipped {
		t.Errorf("pushdown shipped %d rows, baseline %d — no reduction", st.RowsShipped, base.RowsShipped)
	}
	if st.BytesShipped <= 0 || st.BytesShipped >= base.BytesShipped {
		t.Errorf("pushdown shipped %d bytes, baseline %d — no reduction", st.BytesShipped, base.BytesShipped)
	}

	// ORDER BY needs the whole filtered union: the LIMIT must not push,
	// but projection and filter still do.
	sql = `SELECT hospital, age FROM data WHERE age > 80 ORDER BY age, hospital LIMIT 5`
	got, err = master.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	want, err = pooled.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	checkSame(t, sql, got, want)
	st = mt.LastStats()
	if strings.Contains(st.PartSQL, "LIMIT") {
		t.Errorf("LIMIT pushed under ORDER BY: %q", st.PartSQL)
	}
	if !strings.Contains(st.PartSQL, "hospital, age") || !strings.Contains(st.PartSQL, "WHERE") {
		t.Errorf("projection/filter missing from part SQL: %q", st.PartSQL)
	}

	// ORDER BY over a select-item alias must not leak the alias into the
	// pushed projection.
	sql = `SELECT age AS a FROM data WHERE age > 80 ORDER BY a`
	if _, err := master.Query(sql); err != nil {
		t.Fatal(err)
	}
	if st = mt.LastStats(); !strings.Contains(st.PartSQL, "SELECT age FROM") {
		t.Errorf("aliased ORDER BY broke the projection: %q", st.PartSQL)
	}
}

// TestMergeQuotedIdentifierPushdown is the round-trip regression for
// quoted identifiers: a filter over columns that need quoting (a space,
// a reserved word) must survive rendering into per-part SQL and re-parse
// at the part. Under the old bare-name rendering the shipped SQL was
// unparseable.
func TestMergeQuotedIdentifierPushdown(t *testing.T) {
	schema := Schema{{"patient id", Float64}, {"select", String}}
	pdb := NewDB()
	tab := NewTable(schema)
	for i := 1; i <= 6; i++ {
		if err := tab.AppendRow(float64(i), fmt.Sprintf("s%d", i%2)); err != nil {
			t.Fatal(err)
		}
	}
	pdb.RegisterTable("data", tab)
	mt := &MergeTable{Schema: schema, TableName: "data",
		Parts: []Part{&LocalPart{Name: "p0", DB: pdb}}}
	master := NewDB()
	master.RegisterMerge("data", mt)

	sql := `SELECT "patient id" FROM data WHERE "patient id" > 2 AND "select" = 's1'`
	got, err := master.Query(sql)
	if err != nil {
		t.Fatalf("quoted-identifier round trip: %v", err)
	}
	// Rows 3..6 pass the range; of those, odd ids carry s1.
	if got.NumRows() != 2 {
		t.Fatalf("got %d rows, want 2", got.NumRows())
	}
	st := mt.LastStats()
	if !strings.Contains(st.PartSQL, `"patient id"`) || !strings.Contains(st.PartSQL, `"select"`) {
		t.Errorf("part SQL lost identifier quoting: %q", st.PartSQL)
	}
}

// TestMergeZeroParts: an empty federation with a declared schema answers
// row queries with an empty typed result; without a schema it reports a
// clear error instead of crashing on a nil union schema.
func TestMergeZeroParts(t *testing.T) {
	db := NewDB()
	db.RegisterMerge("data", &MergeTable{
		Schema:    Schema{{"x", Float64}, {"tag", String}},
		TableName: "data",
	})
	got, err := db.Query(`SELECT x FROM data WHERE x > 1`)
	if err != nil {
		t.Fatalf("zero-part query: %v", err)
	}
	if got.NumRows() != 0 || got.NumCols() != 1 {
		t.Fatalf("got %dx%d, want an empty one-column result", got.NumRows(), got.NumCols())
	}
	if s := got.Schema(); s[0].Name != "x" || s[0].Type != Float64 {
		t.Fatalf("schema = %v, want declared x DOUBLE", s)
	}

	bare := NewDB()
	bare.RegisterMerge("data", &MergeTable{TableName: "data"})
	_, err = bare.Query(`SELECT median(x) AS m FROM data`)
	if err == nil || !strings.Contains(err.Error(), "no parts and no declared schema") {
		t.Fatalf("schemaless zero-part merge: err = %v, want a clear diagnosis", err)
	}
}

// TestMergeNilTablePart: a part that answers (nil, nil) is a failure, not
// a silent empty shard — strict merges error, MinParts merges degrade.
func TestMergeNilTablePart(t *testing.T) {
	newMT := func(minParts int) (*DB, *MergeTable) {
		mt := &MergeTable{
			Schema:    Schema{{"x", Float64}},
			TableName: "data",
			MinParts:  minParts,
			Parts: []Part{
				&LocalPart{Name: "p0", DB: partDB(t, 3)},
				&nilPart{name: "p1"},
			},
		}
		db := NewDB()
		db.RegisterMerge("data", mt)
		return db, mt
	}
	db, _ := newMT(0)
	if _, err := db.Query(`SELECT median(x) AS m FROM data`); err == nil || !strings.Contains(err.Error(), "returned no table") {
		t.Fatalf("strict merge over nil-table part: err = %v, want 'returned no table'", err)
	}
	db, mt := newMT(1)
	got, err := db.Query(`SELECT median(x) AS m FROM data`)
	if err != nil {
		t.Fatalf("degraded merge over nil-table part: %v", err)
	}
	if m := got.Col(0).Float64s()[0]; m != 2 {
		t.Fatalf("median over surviving part = %v, want 2", m)
	}
	if st := mt.LastStats(); len(st.FailedParts) != 1 || st.FailedParts[0] != "p1" {
		t.Fatalf("stats = %+v, want p1 recorded as failed", st)
	}
}
