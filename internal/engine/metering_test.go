package engine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"mip/internal/obs"
)

// meteringDB builds a DB with a local table and a one-part merge view, so
// statements exercise both the local and the federated (shipped-bytes)
// paths.
func meteringDB(t *testing.T) *DB {
	t.Helper()
	pdb := NewDB()
	ptab := NewTable(Schema{{"age", Float64}})
	for i := 0; i < 1000; i++ {
		if err := ptab.AppendRow(float64(20 + i%60)); err != nil {
			t.Fatal(err)
		}
	}
	pdb.RegisterTable("cohort", ptab)

	db := NewDB()
	db.RegisterMerge("cohort", &MergeTable{
		Schema:    Schema{{"age", Float64}},
		TableName: "cohort",
		Parts:     []Part{&LocalPart{Name: "hospital-0", DB: pdb}},
	})
	return db
}

// A governed statement run under WithQueryAttribution must land in the
// tenant meter (with its shipped bytes) and on the audit chain with the
// full attribution.
func TestQueryMeteringAndAudit(t *testing.T) {
	db := meteringDB(t)
	tenant := fmt.Sprintf("meter-test-%d", time.Now().UnixNano())
	ctx := WithQueryAttribution(context.Background(), Attribution{
		Tenant:   tenant,
		Job:      "exp-meter-1",
		Datasets: []string{"cohort"},
	})

	_, qs, err := db.QueryWithStatsCtx(ctx, `SELECT avg(age) AS a FROM cohort`)
	if err != nil {
		t.Fatal(err)
	}
	if qs.RowsShipped == 0 || qs.BytesShipped == 0 {
		t.Fatalf("merge statement shipped rows=%d bytes=%d, want > 0", qs.RowsShipped, qs.BytesShipped)
	}
	if len(qs.Parts) != 1 || qs.Parts[0] != "hospital-0" {
		t.Fatalf("qs.Parts = %v, want [hospital-0]", qs.Parts)
	}

	u, ok := obs.DefaultTenants.Usage(tenant)
	if !ok {
		t.Fatalf("tenant %q missing from the meter", tenant)
	}
	// The merge statement AND its in-process part statement both run
	// governed under the same attribution: two metered statements, two
	// audit records — every hospital-side access leaves its own entry.
	if u.Queries != 2 || u.Verdicts[VerdictCompleted] != 2 {
		t.Fatalf("tenant usage = %+v, want 2 completed statements (master + part)", u)
	}
	if u.BytesShipped != qs.BytesShipped || u.RowsShipped != int64(qs.RowsShipped) {
		t.Fatalf("meter shipped %d/%d, stats say %d/%d",
			u.RowsShipped, u.BytesShipped, qs.RowsShipped, qs.BytesShipped)
	}
	if u.Windows["1m"].Count != 2 {
		t.Fatalf("1m SLO window count = %d, want 2", u.Windows["1m"].Count)
	}

	recs := obs.DefaultAudit.Entries(obs.AuditFilter{Tenant: tenant})
	if len(recs) != 2 {
		t.Fatalf("audit holds %d records for the tenant, want 2 (master + part)", len(recs))
	}
	var master *obs.AuditRecord
	for i := range recs {
		if len(recs[i].Workers) > 0 {
			master = &recs[i]
		}
	}
	if master == nil {
		t.Fatalf("no audit record names the touched workers: %+v", recs)
	}
	if master.Kind != "query" || master.Job != "exp-meter-1" || master.Verdict != VerdictCompleted {
		t.Fatalf("audit record = %+v", *master)
	}
	if master.SQLDigest != obs.SQLDigest(`SELECT avg(age) AS a FROM cohort`) {
		t.Fatalf("audit digest %q does not match the statement", master.SQLDigest)
	}
	if len(master.Datasets) != 1 || master.Datasets[0] != "cohort" {
		t.Fatalf("audit datasets = %v, want [cohort]", master.Datasets)
	}
	if len(master.Workers) != 1 || master.Workers[0] != "hospital-0" {
		t.Fatalf("audit workers = %v, want [hospital-0]", master.Workers)
	}
	if err := obs.DefaultAudit.Verify(); err != nil {
		t.Fatalf("live audit chain failed verification: %v", err)
	}

	// A failing statement meters as an error with its verdict.
	if _, _, err := db.QueryWithStatsCtx(ctx, `SELECT nosuch FROM cohort`); err == nil {
		t.Fatal("expected an error for an unknown column")
	}
	u, _ = obs.DefaultTenants.Usage(tenant)
	if u.QueryErrors == 0 || u.Verdicts[VerdictError] == 0 {
		t.Fatalf("after failed statement usage = %+v, want error verdicts recorded", u)
	}
}

// Slow-log entries carry the statement's attribution so they join against
// the audit trail.
func TestSlowLogCarriesAttribution(t *testing.T) {
	db := meteringDB(t)
	old := DefaultSlowLog.Threshold()
	DefaultSlowLog.SetThreshold(time.Nanosecond)
	defer DefaultSlowLog.SetThreshold(old)

	tenant := fmt.Sprintf("slow-test-%d", time.Now().UnixNano())
	ctx := WithQueryAttribution(context.Background(), Attribution{
		Tenant: tenant, Job: "exp-slow-1", Datasets: []string{"cohort"},
	})
	if _, _, err := db.QueryWithStatsCtx(ctx, `SELECT count(*) AS n FROM cohort`); err != nil {
		t.Fatal(err)
	}
	for _, e := range DefaultSlowLog.Entries() {
		if e.Tenant == tenant {
			if e.Job != "exp-slow-1" || len(e.Datasets) != 1 || e.Datasets[0] != "cohort" {
				t.Fatalf("slow entry attribution = %+v", e)
			}
			return
		}
	}
	t.Fatal("slow log has no entry for the attributed statement")
}

// Statements with no attribution fold into the untagged tenant account —
// they must still be metered and audited, never dropped.
func TestUntaggedStatementsMetered(t *testing.T) {
	db := meteringDB(t)
	before, _ := obs.DefaultTenants.Usage(obs.TenantUntagged)
	if _, err := db.Query(`SELECT max(age) AS m FROM cohort`); err != nil {
		t.Fatal(err)
	}
	after, ok := obs.DefaultTenants.Usage(obs.TenantUntagged)
	if !ok || after.Queries <= before.Queries {
		t.Fatalf("untagged account did not grow: before=%d after=%d", before.Queries, after.Queries)
	}
}
