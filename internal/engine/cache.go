package engine

import (
	"container/list"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"mip/internal/obs"
)

// Plan cache: an LRU over parsed-and-planned SELECT statements, keyed on
// SQL text. A hit skips lexing and parsing outright, and the entry also
// memoizes the planning products that are pure functions of the statement —
// the greedy join order and the merge-table pushdown decomposition with its
// rendered per-part SQL — so repeated dashboard queries skip reorder and
// pushdown planning too.
//
// Two texts that parse to the same tree share one entry: a raw-text lookup
// that misses falls back to the canonical rendering (RenderSelect), and the
// raw spelling is then registered as an alias of the canonical entry.
//
// Keys embed the owning DB's identity and schema version, so a schema
// change (CREATE/DROP/RegisterTable/RegisterMerge) makes every older entry
// unreachable; the LRU ages the garbage out. Cached statements are shared
// across concurrent queries and are never mutated after parse — execution
// copies the statement before rewriting any field.

var (
	engPlanCacheHits = obs.GetCounter("mip_engine_plan_cache_hits_total",
		"SELECT statements served from the plan cache (parse and planning skipped).")
	engPlanCacheMisses = obs.GetCounter("mip_engine_plan_cache_misses_total",
		"Cacheable SELECT statements that missed the plan cache and were parsed.")
)

// maxAliasKeys bounds how many raw spellings one entry may be reachable
// under, so a client minting whitespace variants cannot grow the key map
// without bound (variants past the cap still hit via the canonical key).
const maxAliasKeys = 8

// planEntry is one cached statement plus its memoized planning products.
type planEntry struct {
	stmt  *SelectStmt
	canon string   // canonical rendering (also the primary key suffix)
	keys  []string // every cache key mapping to this entry, for eviction

	// Greedy join order, memoized on first execution (reorder enabled only).
	joinOnce      sync.Once
	joinOK        bool
	joinOrder     []int
	joinReordered bool

	// Merge-table pushdown decomposition, memoized on first execution.
	mergeOnce sync.Once
	pushOK    bool
	specs     []partialSpec
	partSQL   string
	partCols  [][]string
	matSQL    string
	matCols   []string
}

// mergePlan memoizes the merge pushdown decision for st against m: whether
// the statement decomposes, its partial specs, and the rendered per-part
// SQL (partial or materialize form). Entries are per-DB, so m is stable for
// the entry's lifetime.
func (e *planEntry) mergePlan(m *MergeTable, st *SelectStmt) *planEntry {
	e.mergeOnce.Do(func() {
		e.specs, e.pushOK = m.decompose(st)
		if e.pushOK {
			e.partSQL, e.partCols = m.partialSQL(st, e.specs)
		} else {
			e.matSQL, e.matCols = m.materializeSQL(st)
		}
	})
	return e
}

// PlanCacheStats is the snapshot served by GET /cache.
type PlanCacheStats struct {
	Capacity int   `json:"capacity"`
	Entries  int   `json:"entries"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

// PlanCache is a thread-safe LRU of planEntry values. One cache may serve
// many DBs: keys embed each DB's identity and schema version.
type PlanCache struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recent; values are *planEntry
	entries map[string]*list.Element
}

// NewPlanCache returns a cache holding up to capacity statements; capacity
// <= 0 returns nil (caching disabled).
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		return nil
	}
	return &PlanCache{cap: capacity, ll: list.New(), entries: make(map[string]*list.Element)}
}

// defaultPlanCacheSize reads MIP_PLAN_CACHE_SIZE (the CI/test override);
// unset or unparsable keeps the built-in default.
func defaultPlanCacheSize() int {
	if v := os.Getenv("MIP_PLAN_CACHE_SIZE"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			return n
		}
	}
	return 256
}

// DefaultPlanCache is the process-wide cache every DB uses unless
// WithPlanCache/WithPlanCacheSize overrides it. Size 256 statements by
// default; MIP_PLAN_CACHE_SIZE=0 disables it process-wide.
var DefaultPlanCache = NewPlanCache(defaultPlanCacheSize())

// SetDefaultPlanCacheSize replaces the process-wide plan cache with a fresh
// one of the given capacity (n <= 0 disables process-wide caching). Intended
// for startup wiring, before any DB is created: DBs capture the cache pointer
// at construction, so later calls do not affect existing databases.
func SetDefaultPlanCacheSize(n int) {
	DefaultPlanCache = NewPlanCache(n)
}

// Stats snapshots the cache counters; the zero value is returned for a nil
// (disabled) cache.
func (c *PlanCache) Stats() PlanCacheStats {
	if c == nil {
		return PlanCacheStats{}
	}
	c.mu.Lock()
	n := c.ll.Len()
	capacity := c.cap
	c.mu.Unlock()
	return PlanCacheStats{Capacity: capacity, Entries: n, Hits: c.hits.Load(), Misses: c.misses.Load()}
}

// Flush drops every entry (counters are kept).
func (c *PlanCache) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
}

// get returns the entry under key and marks it most recently used.
func (c *PlanCache) get(key string) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.entries[key]
	if el == nil {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry)
}

// put inserts e under its canonical key plus the raw alias (when it
// differs). If another goroutine inserted the same canonical key first,
// that winner is returned so concurrent misses converge on one entry.
func (c *PlanCache) put(canonKey, aliasKey string, e *planEntry) *planEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.entries[canonKey]; el != nil {
		c.ll.MoveToFront(el)
		won := el.Value.(*planEntry)
		c.aliasLocked(aliasKey, el, won)
		return won
	}
	e.keys = append(e.keys, canonKey)
	el := c.ll.PushFront(e)
	c.entries[canonKey] = el
	c.aliasLocked(aliasKey, el, e)
	for c.ll.Len() > c.cap {
		old := c.ll.Back()
		c.ll.Remove(old)
		for _, k := range old.Value.(*planEntry).keys {
			delete(c.entries, k)
		}
	}
	return e
}

// addAlias registers a raw spelling for an existing entry.
func (c *PlanCache) addAlias(aliasKey string, e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.entries[e.keys[0]]; el != nil && el.Value.(*planEntry) == e {
		c.aliasLocked(aliasKey, el, e)
	}
}

func (c *PlanCache) aliasLocked(aliasKey string, el *list.Element, e *planEntry) {
	if aliasKey == "" || len(e.keys) >= maxAliasKeys {
		return
	}
	if _, ok := c.entries[aliasKey]; ok {
		return
	}
	e.keys = append(e.keys, aliasKey)
	c.entries[aliasKey] = el
}

// lookupSelect peeks the cache for an already-planned statement equal to
// sel without inserting on a miss, so EXPLAIN does not pollute the LRU.
func (db *DB) lookupSelect(sel *SelectStmt) (*planEntry, bool) {
	c := db.plans
	if c == nil {
		return nil, false
	}
	if e := c.get(db.cacheKey(RenderSelect(sel))); e != nil {
		return e, true
	}
	return nil, false
}

// planJoinsFor is planJoins with join-order memoization through the plan
// cache. The greedy reorder search runs once per cached statement; later
// executions re-plan with reorder off (pushdown distribution is cheap and
// must rebind to the DB's current table pointers) and install the memoized
// order. Table sizes drifting after the first run can make the memoized
// order stale-but-correct — reordering never affects results — and a schema
// change mints a fresh entry.
func (db *DB) planJoinsFor(ec *ExecContext, st *SelectStmt, reorder bool) (*joinPlan, error) {
	var e *planEntry
	if ec != nil {
		e = ec.plan
	}
	if e == nil || !reorder {
		return db.planJoins(st, reorder)
	}
	var first *joinPlan
	var firstErr error
	e.joinOnce.Do(func() {
		first, firstErr = db.planJoins(st, true)
		if firstErr != nil {
			return
		}
		e.joinOK = true
		e.joinOrder = append([]int(nil), first.order...)
		e.joinReordered = first.reordered
	})
	if first != nil || firstErr != nil {
		return first, firstErr
	}
	if !e.joinOK {
		// The memoizing run errored; plan from scratch.
		return db.planJoins(st, true)
	}
	p, err := db.planJoins(st, false)
	if err != nil {
		return nil, err
	}
	if len(e.joinOrder) == len(p.order) {
		p.order = append([]int(nil), e.joinOrder...)
		p.reordered = e.joinReordered
	}
	return p, nil
}

// dbSeq hands out process-unique DB identities for cache keys.
var dbSeq atomic.Uint64

// NewPlanCacheIdentity mints a fresh identity token from the DB id
// sequence. A caller that builds a series of short-lived DBs following an
// identical DDL sequence (the federation master's transient merge
// databases) passes the token to WithPlanCacheIdentity on each of them so
// their plan-cache keys coincide: repeated statements hit the cache
// instead of each DB inserting keys no later DB can ever reach.
func NewPlanCacheIdentity() uint64 { return dbSeq.Add(1) }

// cacheKey scopes a SQL text to one DB at one schema version.
func (db *DB) cacheKey(sql string) string {
	return strconv.FormatUint(db.id, 36) + ":" + strconv.FormatUint(db.schemaVer.Load(), 36) + "\x00" + sql
}

// parseCached resolves sql to a statement through the plan cache: a raw- or
// canonical-text hit skips the parser entirely and reports hit = true. Only
// plain SELECTs are cached; EXPLAIN, DDL and DML always parse.
func (db *DB) parseCached(sql string) (Statement, *planEntry, bool, error) {
	c := db.plans
	if c == nil {
		st, err := Parse(sql)
		return st, nil, false, err
	}
	rawKey := db.cacheKey(sql)
	if e := c.get(rawKey); e != nil {
		c.hits.Add(1)
		engPlanCacheHits.Inc()
		return e.stmt, e, true, nil
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, nil, false, err
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return st, nil, false, nil
	}
	c.misses.Add(1)
	engPlanCacheMisses.Inc()
	canon := RenderSelect(sel)
	canonKey := db.cacheKey(canon)
	aliasKey := rawKey
	if aliasKey == canonKey {
		aliasKey = ""
	}
	if e := c.get(canonKey); e != nil {
		// A different spelling of an already-cached statement: reuse its
		// entry (keeping the memoized plan) and learn the new spelling.
		c.addAlias(aliasKey, e)
		return e.stmt, e, false, nil
	}
	e := c.put(canonKey, aliasKey, &planEntry{stmt: sel, canon: canon})
	return e.stmt, e, false, nil
}
