package engine

// Query governance: the lifecycle layer that makes a *running* statement
// observable and controllable. Every statement executed through DB.Query /
// QueryWithStatsCtx registers itself in the process-wide Queries registry
// (id, SQL, tenant, start time, live rows/bytes, current operator), charges
// coarse per-operator allocations against a MemAccountant, and runs under a
// cancellation context. Cancellation — explicit (Queries.Cancel, the REST
// DELETE /queries/{id}), deadline, or memory ceiling — propagates through
// ExecContext into the morsel loops, which abort at batch boundaries. The
// final verdict (completed/cancelled/deadline/mem-limit/error) lands on
// QueryStats, the slow-query log, trace attributes, and the
// mip_engine_queries_terminated_total counter. These are deliberately the
// same seams future spill-to-disk and admission-control work will budget
// against.

import (
	"context"
	"errors"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mip/internal/obs"
)

// Terminal causes a governed query can be cancelled with. They surface as
// the query's error and classify its verdict.
var (
	// ErrQueryCancelled is the cause installed by Queries.Cancel (operator-
	// initiated kill) and by federation job cancellation.
	ErrQueryCancelled = errors.New("engine: query cancelled")
	// ErrQueryDeadline is the cause installed when a per-query deadline
	// (WithQueryDeadline / mipd -query-deadline) expires.
	ErrQueryDeadline = errors.New("engine: query deadline exceeded")
	// ErrQueryMemLimit is the cause installed when accounted live bytes
	// cross the per-query ceiling (WithQueryMemLimit / -query-mem-limit).
	ErrQueryMemLimit = errors.New("engine: query memory limit exceeded")
)

// Verdicts recorded on QueryStats.Verdict, the slow-query log, and the
// mip_engine_queries_terminated_total{reason=...} counter.
const (
	VerdictCompleted = "completed"
	VerdictCancelled = "cancelled"
	VerdictDeadline  = "deadline"
	VerdictMemLimit  = "mem-limit"
	VerdictError     = "error"
)

// verdictFor classifies how a statement ended from its error.
func verdictFor(err error) string {
	switch {
	case err == nil:
		return VerdictCompleted
	case errors.Is(err, ErrQueryMemLimit):
		return VerdictMemLimit
	case errors.Is(err, ErrQueryDeadline), errors.Is(err, context.DeadlineExceeded):
		return VerdictDeadline
	case errors.Is(err, ErrQueryCancelled), errors.Is(err, context.Canceled):
		return VerdictCancelled
	default:
		return VerdictError
	}
}

// MemAccountant tracks one query's accounted engine memory. Operators
// charge coarse allocation sites (materialized stage outputs, hash-table
// and CSR payloads, partial-aggregate states, merge concatenation) — one
// atomic add per operator or morsel, never per row, so accounting overhead
// stays in the noise. A nil accountant is a no-op on every method.
type MemAccountant struct {
	live     atomic.Int64
	peak     atomic.Int64
	limit    int64  // 0 = unlimited
	onExceed func() // fired once, when live first crosses limit
	fired    atomic.Bool
}

// Charge adds n live bytes, updates the peak, and trips the ceiling
// callback the first time live exceeds the limit.
func (a *MemAccountant) Charge(n int64) {
	if a == nil || n <= 0 {
		return
	}
	live := a.live.Add(n)
	for {
		p := a.peak.Load()
		if live <= p || a.peak.CompareAndSwap(p, live) {
			break
		}
	}
	if a.limit > 0 && live > a.limit && a.onExceed != nil && a.fired.CompareAndSwap(false, true) {
		a.onExceed()
	}
}

// Release returns n bytes (a freed transient structure: join build index,
// partial-aggregate states after the combine).
func (a *MemAccountant) Release(n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.live.Add(-n)
}

// Live returns the currently accounted bytes.
func (a *MemAccountant) Live() int64 {
	if a == nil {
		return 0
	}
	return a.live.Load()
}

// Peak returns the high-water mark of accounted bytes.
func (a *MemAccountant) Peak() int64 {
	if a == nil {
		return 0
	}
	return a.peak.Load()
}

// OverLimit reports whether accounted live bytes currently exceed the
// limit. Spill-enabled operators poll this at morsel boundaries and shed
// state to disk instead of waiting for the hard-cancel callback (which is
// not installed when spilling is on).
func (a *MemAccountant) OverLimit() bool {
	if a == nil {
		return false
	}
	return a.limit > 0 && a.live.Load() > a.limit
}

// Limit returns the configured budget (0 = unlimited).
func (a *MemAccountant) Limit() int64 {
	if a == nil {
		return 0
	}
	return a.limit
}

// queryHandle is one live statement's registry record. Exec goroutines
// update only its atomics (rows, current operator) so List never races
// execution under -race.
type queryHandle struct {
	id     int64
	sql    string
	attr   Attribution
	start  time.Time
	cancel context.CancelCauseFunc
	acct   *MemAccountant
	rows   atomic.Int64
	op     atomic.Pointer[string]
	// spillBytes/spillParts tally run-file bytes written and partitions
	// spilled so far; live (mipctl top) and final (QueryStats) views both
	// read them.
	spillBytes atomic.Int64
	spillParts atomic.Int64
}

// setOp records the operator the query is currently executing.
func (h *queryHandle) setOp(op string) {
	if h == nil {
		return
	}
	h.op.Store(&op)
}

// addRows tallies input rows consumed so far (live progress, not output).
func (h *queryHandle) addRows(n int64) {
	if h == nil {
		return
	}
	h.rows.Add(n)
}

// QueryInfo is a JSON-safe snapshot of one active query, as served by
// GET /queries/active and rendered by `mipctl top`.
type QueryInfo struct {
	ID         int64     `json:"id"`
	SQL        string    `json:"sql"`
	Tenant     string    `json:"tenant,omitempty"`
	Job        string    `json:"job,omitempty"`
	Datasets   []string  `json:"datasets,omitempty"`
	Start      time.Time `json:"start"`
	Seconds    float64   `json:"seconds"`
	Rows       int64     `json:"rows"`
	LiveBytes  int64     `json:"live_bytes"`
	PeakBytes  int64     `json:"peak_bytes"`
	SpillBytes int64     `json:"spill_bytes,omitempty"`
	Operator   string    `json:"operator,omitempty"`
}

// QueryRegistry tracks every statement currently executing in the process
// (master merge queries and worker local steps alike, in the in-process
// topology). All methods are safe for concurrent use.
type QueryRegistry struct {
	mu     sync.Mutex
	seq    int64
	active map[int64]*queryHandle
}

// Queries is the process-wide active-query registry.
var Queries = &QueryRegistry{active: make(map[int64]*queryHandle)}

func (r *QueryRegistry) register(sql string, attr Attribution, cancel context.CancelCauseFunc, acct *MemAccountant) *queryHandle {
	h := &queryHandle{sql: sql, attr: attr, start: time.Now(), cancel: cancel, acct: acct}
	r.mu.Lock()
	r.seq++
	h.id = r.seq
	r.active[h.id] = h
	r.mu.Unlock()
	return h
}

func (r *QueryRegistry) finish(h *queryHandle) {
	if h == nil {
		return
	}
	r.mu.Lock()
	delete(r.active, h.id)
	r.mu.Unlock()
}

// List snapshots the active queries, ordered by id (oldest first).
func (r *QueryRegistry) List() []QueryInfo {
	r.mu.Lock()
	hs := make([]*queryHandle, 0, len(r.active))
	for _, h := range r.active {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	sort.Slice(hs, func(i, j int) bool { return hs[i].id < hs[j].id })
	now := time.Now()
	out := make([]QueryInfo, len(hs))
	for i, h := range hs {
		info := QueryInfo{
			ID:         h.id,
			SQL:        h.sql,
			Tenant:     h.attr.Tenant,
			Job:        h.attr.Job,
			Datasets:   h.attr.Datasets,
			Start:      h.start,
			Seconds:    now.Sub(h.start).Seconds(),
			Rows:       h.rows.Load(),
			LiveBytes:  h.acct.Live(),
			PeakBytes:  h.acct.Peak(),
			SpillBytes: h.spillBytes.Load(),
		}
		if op := h.op.Load(); op != nil {
			info.Operator = *op
		}
		out[i] = info
	}
	return out
}

// Cancel kills the identified query (cause: ErrQueryCancelled). It reports
// false when no such query is active — already finished, or never existed.
func (r *QueryRegistry) Cancel(id int64) bool {
	r.mu.Lock()
	h := r.active[id]
	r.mu.Unlock()
	if h == nil || h.cancel == nil {
		return false
	}
	h.cancel(ErrQueryCancelled)
	return true
}

// Active returns the number of currently executing queries.
func (r *QueryRegistry) Active() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.active)
}

// LiveBytes sums accounted live bytes across active queries (the
// mip_engine_query_mem_bytes gauge).
func (r *QueryRegistry) LiveBytes() int64 {
	r.mu.Lock()
	hs := make([]*queryHandle, 0, len(r.active))
	for _, h := range r.active {
		hs = append(hs, h)
	}
	r.mu.Unlock()
	var total int64
	for _, h := range hs {
		total += h.acct.Live()
	}
	return total
}

func init() {
	obs.Default.GaugeFunc("mip_engine_query_mem_bytes",
		"Accounted live memory across active queries, bytes.",
		func() float64 { return float64(Queries.LiveBytes()) })
	obs.Default.GaugeFunc("mip_engine_queries_active",
		"Number of currently executing statements.",
		func() float64 { return float64(Queries.Active()) })
}

// queryTerminated counts a finished query under its verdict.
func queryTerminated(reason string) {
	obs.GetCounter("mip_engine_queries_terminated_total",
		"Queries finished, by verdict (completed/cancelled/deadline/mem-limit/error).",
		obs.Label{Key: "reason", Value: reason}).Inc()
}

// Attribution identifies who a statement runs for: the tenant that owns
// the work, the federation job (experiment) it belongs to, and the
// datasets it touches. It rides the context from the API / federation
// layer into the governor, where it lands on the active-query registry,
// the tenant meter, the audit trail, and the slow-query log.
type Attribution struct {
	Tenant   string
	Job      string
	Datasets []string
}

// attrKey carries the Attribution a query registers under.
type attrKey struct{}

// WithQueryAttribution tags ctx with full attribution; statements run
// under it are metered and audited against the tenant.
func WithQueryAttribution(ctx context.Context, a Attribution) context.Context {
	return context.WithValue(ctx, attrKey{}, a)
}

// WithQueryTenant tags ctx with just a tenant identifier, preserving any
// job/dataset attribution already present.
func WithQueryTenant(ctx context.Context, tenant string) context.Context {
	a := queryAttribution(ctx)
	a.Tenant = tenant
	return WithQueryAttribution(ctx, a)
}

func queryAttribution(ctx context.Context) Attribution {
	if ctx == nil {
		return Attribution{}
	}
	a, _ := ctx.Value(attrKey{}).(Attribution)
	return a
}

// meterQuery folds one finished governed statement into the process-wide
// tenant meter and appends its access record to the audit chain. Called
// from beginQuery's finish closure, so the acct_off benchmark path
// (NoAccounting) skips it entirely.
func meterQuery(h *queryHandle, qs *QueryStats, verdict string, elapsed time.Duration) {
	d := obs.UsageDelta{
		Queries: 1,
		Seconds: elapsed.Seconds(),
		Verdict: verdict,
	}
	if verdict != VerdictCompleted {
		d.Errors = 1
	}
	rec := obs.AuditRecord{
		Kind:      "query",
		Tenant:    h.attr.Tenant,
		Job:       h.attr.Job,
		QueryID:   strconv.FormatInt(h.id, 10),
		SQLDigest: obs.SQLDigest(h.sql),
		Datasets:  h.attr.Datasets,
		Verdict:   verdict,
		Seconds:   elapsed.Seconds(),
	}
	if qs != nil {
		d.RowsIn = int64(qs.RowsScanned)
		d.RowsOut = int64(qs.RowsOut)
		d.RowsShipped = int64(qs.RowsShipped)
		d.BytesShipped = qs.BytesShipped
		d.MemPeakBytes = qs.MemPeakBytes
		rec.Rows = int64(qs.RowsOut)
		if len(qs.Parts) > 0 {
			rec.Workers = qs.Parts
		}
		if len(qs.DroppedParts) > 0 {
			rec.Dropped = qs.DroppedParts
		}
	}
	obs.DefaultTenants.Record(h.attr.Tenant, d)
	obs.DefaultAudit.Append(rec)
}
