package engine

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Expr is a scalar expression evaluated column-at-a-time over a table batch.
// Aggregate calls never appear inside Eval — the planner lifts them out.
type Expr interface {
	fmt.Stringer
}

// QuoteIdent renders an identifier so the SQL lexer reads it back verbatim:
// names matching [A-Za-z_][A-Za-z0-9_]* that are not reserved keywords pass
// through bare; anything else is double-quoted with embedded quotes doubled.
// Rendered SQL crosses the federation boundary (pushed-down WHERE clauses,
// per-part projections), so this must agree exactly with the lexer.
func QuoteIdent(s string) string {
	plain := s != ""
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_':
		case c >= '0' && c <= '9' && i > 0:
		default:
			plain = false
		}
		if !plain {
			break
		}
	}
	if plain && !sqlKeywords[strings.ToUpper(s)] {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// ColRef references a column by name.
type ColRef struct{ Name string }

func (e *ColRef) String() string {
	// Qualified references (alias.col, produced by join qualification)
	// render segment-wise so either half is quoted independently and the
	// whole re-parses as the same qualified name.
	if i := strings.IndexByte(e.Name, '.'); i > 0 && i < len(e.Name)-1 {
		return QuoteIdent(e.Name[:i]) + "." + QuoteIdent(e.Name[i+1:])
	}
	return QuoteIdent(e.Name)
}

// Lit is a literal constant. Null literals carry IsNull=true.
type Lit struct {
	Val    any
	IsNull bool
}

func (e *Lit) String() string {
	if e.IsNull {
		return "NULL"
	}
	switch v := e.Val.(type) {
	case string:
		return "'" + strings.ReplaceAll(v, "'", "''") + "'"
	case float64:
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// Not producible by the parser; render best-effort.
			return fmt.Sprint(v)
		}
		s := strconv.FormatFloat(v, 'g', -1, 64)
		// An integral rendering like "5" would re-parse as an int64
		// literal; keep the literal a float across the round trip.
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	}
	return fmt.Sprint(e.Val)
}

// Unary is -x or NOT x.
type Unary struct {
	Op string
	X  Expr
}

func (e *Unary) String() string { return fmt.Sprintf("(%s %s)", e.Op, e.X) }

// Binary is an infix operation: arithmetic (+ - * / %), comparison
// (= <> < <= > >=), or logical (AND OR).
type Binary struct {
	Op   string
	L, R Expr
}

func (e *Binary) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// Call is a scalar function application.
type Call struct {
	Name string
	Args []Expr
}

func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

// AggCall is an aggregate function application (sum, count, avg, min, max,
// stddev_samp, var_samp, corr, median, quantile). Star marks COUNT(*).
type AggCall struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

func (e *AggCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return fmt.Sprintf("%s(%s%s)", e.Name, d, strings.Join(args, ", "))
}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (e *IsNullExpr) String() string {
	if e.Not {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X)
	}
	return fmt.Sprintf("(%s IS NULL)", e.X)
}

// InExpr is x [NOT] IN (v1, v2, ...).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

func (e *InExpr) String() string {
	items := make([]string, len(e.List))
	for i, a := range e.List {
		items[i] = a.String()
	}
	n := ""
	if e.Not {
		n = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", e.X, n, strings.Join(items, ", "))
}

// CaseExpr is CASE WHEN c1 THEN v1 [WHEN ...] [ELSE e] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN/THEN arm.
type CaseWhen struct {
	Cond, Then Expr
}

func (e *CaseExpr) String() string {
	var b strings.Builder
	b.WriteString("CASE")
	for _, w := range e.Whens {
		fmt.Fprintf(&b, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if e.Else != nil {
		fmt.Fprintf(&b, " ELSE %s", e.Else)
	}
	b.WriteString(" END")
	return b.String()
}

// HasAgg reports whether the expression contains an aggregate call.
func HasAgg(e Expr) bool {
	switch t := e.(type) {
	case *AggCall:
		return true
	case *Unary:
		return HasAgg(t.X)
	case *Binary:
		return HasAgg(t.L) || HasAgg(t.R)
	case *Call:
		for _, a := range t.Args {
			if HasAgg(a) {
				return true
			}
		}
	case *IsNullExpr:
		return HasAgg(t.X)
	case *InExpr:
		if HasAgg(t.X) {
			return true
		}
		for _, a := range t.List {
			if HasAgg(a) {
				return true
			}
		}
	case *CaseExpr:
		for _, w := range t.Whens {
			if HasAgg(w.Cond) || HasAgg(w.Then) {
				return true
			}
		}
		if t.Else != nil {
			return HasAgg(t.Else)
		}
	}
	return false
}

// Eval evaluates a scalar expression over every row of t, vectorized.
func Eval(e Expr, t *Table) (*Vector, error) {
	n := t.NumRows()
	switch x := e.(type) {
	case *ColRef:
		v := t.ColByName(x.Name)
		if v == nil {
			return nil, fmt.Errorf("engine: unknown column %q", x.Name)
		}
		return v, nil
	case *Lit:
		return evalLit(x, n)
	case *Unary:
		return evalUnary(x, t)
	case *Binary:
		return evalBinary(x, t)
	case *Call:
		return evalCall(x, t)
	case *IsNullExpr:
		inner, err := Eval(x.X, t)
		if err != nil {
			return nil, err
		}
		out := make([]bool, n)
		for i := 0; i < n; i++ {
			out[i] = inner.IsNull(i) != x.Not
		}
		return NewBoolVector(out, nil), nil
	case *InExpr:
		return evalIn(x, t)
	case *CaseExpr:
		return evalCase(x, t)
	case *AggCall:
		return nil, fmt.Errorf("engine: aggregate %s not allowed in scalar context", x.Name)
	}
	return nil, fmt.Errorf("engine: cannot evaluate %T", e)
}

func evalLit(x *Lit, n int) (*Vector, error) {
	if x.IsNull {
		v := NewVector(Float64)
		for i := 0; i < n; i++ {
			v.AppendNull()
		}
		return v, nil
	}
	switch val := x.Val.(type) {
	case float64:
		out := make([]float64, n)
		for i := range out {
			out[i] = val
		}
		return NewFloat64Vector(out, nil), nil
	case int64:
		out := make([]int64, n)
		for i := range out {
			out[i] = val
		}
		return NewInt64Vector(out, nil), nil
	case string:
		out := make([]string, n)
		for i := range out {
			out[i] = val
		}
		return NewStringVector(out, nil), nil
	case bool:
		out := make([]bool, n)
		for i := range out {
			out[i] = val
		}
		return NewBoolVector(out, nil), nil
	}
	return nil, fmt.Errorf("engine: unsupported literal %T", x.Val)
}

func evalUnary(x *Unary, t *Table) (*Vector, error) {
	inner, err := Eval(x.X, t)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "-":
		switch inner.Type() {
		case Int64:
			out := make([]int64, inner.Len())
			for i, v := range inner.Int64s() {
				out[i] = -v
			}
			return NewInt64Vector(out, inner.Valid()), nil
		default:
			f := inner.CastFloat64()
			out := make([]float64, f.Len())
			for i, v := range f.Float64s() {
				out[i] = -v
			}
			return NewFloat64Vector(out, f.Valid()), nil
		}
	case "NOT":
		if inner.Type() != Bool {
			return nil, fmt.Errorf("engine: NOT applied to %v", inner.Type())
		}
		out := make([]bool, inner.Len())
		for i, v := range inner.Bools() {
			out[i] = !v
		}
		return NewBoolVector(out, inner.Valid()), nil
	}
	return nil, fmt.Errorf("engine: unknown unary operator %q", x.Op)
}

func evalIn(x *InExpr, t *Table) (*Vector, error) {
	inner, err := Eval(x.X, t)
	if err != nil {
		return nil, err
	}
	n := inner.Len()
	out := make([]bool, n)
	valid := NewBitmap(n)
	// Collect literal values.
	type litval struct {
		s   string
		f   float64
		str bool
	}
	var lits []litval
	for _, le := range x.List {
		l, ok := le.(*Lit)
		if !ok {
			return nil, fmt.Errorf("engine: IN list must contain literals")
		}
		if l.IsNull {
			continue
		}
		switch v := l.Val.(type) {
		case string:
			lits = append(lits, litval{s: v, str: true})
		case float64:
			lits = append(lits, litval{f: v})
		case int64:
			lits = append(lits, litval{f: float64(v)})
		case bool:
			f := 0.0
			if v {
				f = 1
			}
			lits = append(lits, litval{f: f})
		}
	}
	var innerF []float64 // cast once, not per row
	if inner.Type() != String {
		innerF = inner.CastFloat64().Float64s()
	}
	for i := 0; i < n; i++ {
		if inner.IsNull(i) {
			valid.Set(i, false)
			continue
		}
		var hit bool
		switch inner.Type() {
		case String:
			s := inner.StringAt(i)
			for _, l := range lits {
				if l.str && l.s == s {
					hit = true
					break
				}
			}
		default:
			f := innerF[i]
			for _, l := range lits {
				if !l.str && l.f == f {
					hit = true
					break
				}
			}
		}
		out[i] = hit != x.Not
	}
	return NewBoolVector(out, valid), nil
}

func evalCase(x *CaseExpr, t *Table) (*Vector, error) {
	n := t.NumRows()
	conds := make([]*Vector, len(x.Whens))
	thens := make([]*Vector, len(x.Whens))
	for i, w := range x.Whens {
		c, err := Eval(w.Cond, t)
		if err != nil {
			return nil, err
		}
		if c.Type() != Bool {
			return nil, fmt.Errorf("engine: CASE condition must be boolean")
		}
		v, err := Eval(w.Then, t)
		if err != nil {
			return nil, err
		}
		conds[i], thens[i] = c, v
	}
	var els *Vector
	if x.Else != nil {
		v, err := Eval(x.Else, t)
		if err != nil {
			return nil, err
		}
		els = v
	}
	// Result type: first THEN branch decides.
	rt := thens[0].Type()
	out := NewVector(rt)
	if rt == String {
		// fresh dict
	}
	for i := 0; i < n; i++ {
		var src *Vector
		for k, c := range conds {
			if !c.IsNull(i) && c.Bools()[i] {
				src = thens[k]
				break
			}
		}
		if src == nil {
			src = els
		}
		if src == nil || src.IsNull(i) {
			out.AppendNull()
			continue
		}
		if err := out.AppendValue(src.Value(i)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
