// Package engine implements the analytics data engine that MIP Worker nodes
// run their local computation steps inside. It stands in for MonetDB in the
// paper's deployment and keeps its execution model: column-at-a-time
// vectorized operators over typed columns with validity bitmaps and
// dictionary-encoded strings, a SQL subset compiled to vectorized plans,
// and non-materialized remote/merge tables used by the federation layer.
package engine

import (
	"fmt"
	"math"
	"strconv"
	"sync"
)

// Type enumerates the column types the engine supports.
type Type uint8

// Column types.
const (
	Float64 Type = iota // double precision floating point
	Int64               // 64-bit signed integer
	String              // dictionary-encoded text
	Bool                // boolean
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case Float64:
		return "DOUBLE"
	case Int64:
		return "BIGINT"
	case String:
		return "VARCHAR"
	case Bool:
		return "BOOLEAN"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// ParseType maps SQL type names to engine types.
func ParseType(s string) (Type, error) {
	switch s {
	case "DOUBLE", "FLOAT", "REAL", "DECIMAL", "NUMERIC":
		return Float64, nil
	case "BIGINT", "INT", "INTEGER", "SMALLINT", "TINYINT":
		return Int64, nil
	case "VARCHAR", "TEXT", "STRING", "CHAR", "CLOB":
		return String, nil
	case "BOOLEAN", "BOOL":
		return Bool, nil
	}
	return 0, fmt.Errorf("engine: unknown type %q", s)
}

// Bitmap is a packed validity bitmap: bit i set means row i is valid
// (non-NULL). A nil *Bitmap means "all valid".
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-valid bitmap of length n.
func NewBitmap(n int) *Bitmap {
	b := &Bitmap{words: make([]uint64, (n+63)/64), n: n}
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if r := n % 64; r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << r) - 1
	}
	return b
}

// Len returns the number of rows covered.
func (b *Bitmap) Len() int { return b.n }

// Get reports whether row i is valid.
func (b *Bitmap) Get(i int) bool {
	if b == nil {
		return true
	}
	return b.words[i/64]&(1<<(uint(i)%64)) != 0
}

// Set marks row i valid (v=true) or NULL (v=false).
func (b *Bitmap) Set(i int, v bool) {
	if v {
		b.words[i/64] |= 1 << (uint(i) % 64)
	} else {
		b.words[i/64] &^= 1 << (uint(i) % 64)
	}
}

// Append extends the bitmap by one row with the given validity.
func (b *Bitmap) Append(v bool) {
	if b.n%64 == 0 {
		b.words = append(b.words, 0)
	}
	b.n++
	b.Set(b.n-1, v)
}

// CountValid returns the number of valid rows.
func (b *Bitmap) CountValid() int {
	if b == nil {
		return b.n
	}
	var c int
	for i := 0; i < b.n; i++ {
		if b.Get(i) {
			c++
		}
	}
	return c
}

// slice returns a bitmap view of rows [lo, hi). When lo is word-aligned
// (every morsel boundary is — morsel sizes are multiples of 64) the view
// shares the parent's words with zero copying; the words past hi may carry
// stray bits, so word-wise consumers must mask the tail (see mergeValid).
// Sliced bitmaps are read-only views: a Set would corrupt the parent.
func (b *Bitmap) slice(lo, hi int) *Bitmap {
	if b == nil {
		return nil
	}
	if lo%64 == 0 {
		return &Bitmap{words: b.words[lo/64:], n: hi - lo}
	}
	out := NewBitmap(hi - lo)
	for i := lo; i < hi; i++ {
		if !b.Get(i) {
			out.Set(i-lo, false)
		}
	}
	return out
}

// Clone deep-copies the bitmap. Clone of nil is nil.
func (b *Bitmap) Clone() *Bitmap {
	if b == nil {
		return nil
	}
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitmap{words: w, n: b.n}
}

// Dict is a shared string dictionary for dictionary-encoded columns.
type Dict struct {
	values []string
	index  map[string]int32
	// hashes memoizes each code's content hash for the vectorized key
	// kernels (see codeHashes); append-only, guarded by hashMu so
	// concurrent morsel workers sharing the dict compute each hash once.
	hashMu sync.Mutex
	hashes []uint64
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{index: make(map[string]int32)}
}

// Code interns s and returns its code.
func (d *Dict) Code(s string) int32 {
	if c, ok := d.index[s]; ok {
		return c
	}
	c := int32(len(d.values))
	d.values = append(d.values, s)
	d.index[s] = c
	return c
}

// Lookup returns the code for s and whether it is present.
func (d *Dict) Lookup(s string) (int32, bool) {
	c, ok := d.index[s]
	return c, ok
}

// Value returns the string for code c.
func (d *Dict) Value(c int32) string { return d.values[c] }

// Size returns the number of distinct values.
func (d *Dict) Size() int { return len(d.values) }

// Vector is a typed column fragment: the unit the vectorized kernels
// operate on. Exactly one of the data slices is populated, per typ.
type Vector struct {
	typ   Type
	f64   []float64
	i64   []int64
	codes []int32 // string codes into dict
	dict  *Dict
	b     []bool
	valid *Bitmap // nil means all rows valid
}

// NewVector returns an empty vector of the given type.
func NewVector(t Type) *Vector {
	v := &Vector{typ: t}
	if t == String {
		v.dict = NewDict()
	}
	return v
}

// NewFloat64Vector wraps vals in a vector (no copy); valid may be nil.
func NewFloat64Vector(vals []float64, valid *Bitmap) *Vector {
	return &Vector{typ: Float64, f64: vals, valid: valid}
}

// NewInt64Vector wraps vals in a vector (no copy); valid may be nil.
func NewInt64Vector(vals []int64, valid *Bitmap) *Vector {
	return &Vector{typ: Int64, i64: vals, valid: valid}
}

// NewBoolVector wraps vals in a vector (no copy); valid may be nil.
func NewBoolVector(vals []bool, valid *Bitmap) *Vector {
	return &Vector{typ: Bool, b: vals, valid: valid}
}

// NewStringVector builds a dictionary-encoded vector from vals.
func NewStringVector(vals []string, valid *Bitmap) *Vector {
	v := &Vector{typ: String, dict: NewDict(), valid: valid}
	v.codes = make([]int32, len(vals))
	for i, s := range vals {
		v.codes[i] = v.dict.Code(s)
	}
	return v
}

// Type returns the vector's type.
func (v *Vector) Type() Type { return v.typ }

// Len returns the number of rows.
func (v *Vector) Len() int {
	switch v.typ {
	case Float64:
		return len(v.f64)
	case Int64:
		return len(v.i64)
	case String:
		return len(v.codes)
	case Bool:
		return len(v.b)
	}
	return 0
}

// Valid returns the validity bitmap (nil = all valid).
func (v *Vector) Valid() *Bitmap { return v.valid }

// IsNull reports whether row i is NULL.
func (v *Vector) IsNull(i int) bool { return !v.valid.Get(i) }

// Float64s returns the float64 payload (valid only when Type()==Float64).
func (v *Vector) Float64s() []float64 { return v.f64 }

// Int64s returns the int64 payload (valid only when Type()==Int64).
func (v *Vector) Int64s() []int64 { return v.i64 }

// Bools returns the bool payload (valid only when Type()==Bool).
func (v *Vector) Bools() []bool { return v.b }

// StringAt returns the string at row i (valid only when Type()==String).
func (v *Vector) StringAt(i int) string { return v.dict.Value(v.codes[i]) }

// Codes returns the dictionary codes (valid only when Type()==String).
func (v *Vector) Codes() []int32 { return v.codes }

// StrDict returns the dictionary (valid only when Type()==String).
func (v *Vector) StrDict() *Dict { return v.dict }

// AppendFloat64 appends a float64 row.
func (v *Vector) AppendFloat64(x float64) {
	v.f64 = append(v.f64, x)
	if v.valid != nil {
		v.valid.Append(true)
	}
}

// AppendInt64 appends an int64 row.
func (v *Vector) AppendInt64(x int64) {
	v.i64 = append(v.i64, x)
	if v.valid != nil {
		v.valid.Append(true)
	}
}

// AppendBool appends a bool row.
func (v *Vector) AppendBool(x bool) {
	v.b = append(v.b, x)
	if v.valid != nil {
		v.valid.Append(true)
	}
}

// AppendString appends a string row.
func (v *Vector) AppendString(s string) {
	v.codes = append(v.codes, v.dict.Code(s))
	if v.valid != nil {
		v.valid.Append(true)
	}
}

// AppendNull appends a NULL row.
func (v *Vector) AppendNull() {
	n := v.Len()
	if v.valid == nil {
		v.valid = NewBitmap(n)
	}
	switch v.typ {
	case Float64:
		v.f64 = append(v.f64, math.NaN())
	case Int64:
		v.i64 = append(v.i64, 0)
	case String:
		v.codes = append(v.codes, v.dict.Code(""))
	case Bool:
		v.b = append(v.b, false)
	}
	v.valid.Append(false)
}

// AppendValue appends an arbitrary Go value, converting to the vector type.
// nil appends NULL.
func (v *Vector) AppendValue(x any) error {
	if x == nil {
		v.AppendNull()
		return nil
	}
	switch v.typ {
	case Float64:
		f, err := toFloat(x)
		if err != nil {
			return err
		}
		v.AppendFloat64(f)
	case Int64:
		switch t := x.(type) {
		case int64:
			v.AppendInt64(t)
		case int:
			v.AppendInt64(int64(t))
		case float64:
			v.AppendInt64(int64(t))
		case string:
			n, err := strconv.ParseInt(t, 10, 64)
			if err != nil {
				return err
			}
			v.AppendInt64(n)
		default:
			return fmt.Errorf("engine: cannot convert %T to BIGINT", x)
		}
	case String:
		s, ok := x.(string)
		if !ok {
			s = fmt.Sprint(x)
		}
		v.AppendString(s)
	case Bool:
		switch t := x.(type) {
		case bool:
			v.AppendBool(t)
		case string:
			b, err := strconv.ParseBool(t)
			if err != nil {
				return err
			}
			v.AppendBool(b)
		default:
			return fmt.Errorf("engine: cannot convert %T to BOOLEAN", x)
		}
	}
	return nil
}

func toFloat(x any) (float64, error) {
	switch t := x.(type) {
	case float64:
		return t, nil
	case float32:
		return float64(t), nil
	case int:
		return float64(t), nil
	case int64:
		return float64(t), nil
	case string:
		return strconv.ParseFloat(t, 64)
	}
	return 0, fmt.Errorf("engine: cannot convert %T to DOUBLE", x)
}

// Value returns row i as a Go value (nil for NULL).
func (v *Vector) Value(i int) any {
	if v.IsNull(i) {
		return nil
	}
	switch v.typ {
	case Float64:
		return v.f64[i]
	case Int64:
		return v.i64[i]
	case String:
		return v.StringAt(i)
	case Bool:
		return v.b[i]
	}
	return nil
}

// Gather returns a new vector holding the rows of v selected by sel, in
// order. This is the engine's positional-selection primitive (MonetDB's
// candidate lists).
func (v *Vector) Gather(sel []int32) *Vector {
	out := &Vector{typ: v.typ}
	n := len(sel)
	hasNulls := v.valid != nil
	if hasNulls {
		out.valid = NewBitmap(n)
	}
	switch v.typ {
	case Float64:
		out.f64 = make([]float64, n)
		for i, s := range sel {
			out.f64[i] = v.f64[s]
		}
	case Int64:
		out.i64 = make([]int64, n)
		for i, s := range sel {
			out.i64[i] = v.i64[s]
		}
	case String:
		out.dict = v.dict
		out.codes = make([]int32, n)
		for i, s := range sel {
			out.codes[i] = v.codes[s]
		}
	case Bool:
		out.b = make([]bool, n)
		for i, s := range sel {
			out.b[i] = v.b[s]
		}
	}
	if hasNulls {
		for i, s := range sel {
			out.valid.Set(i, v.valid.Get(int(s)))
		}
	}
	return out
}

// Slice returns a zero-copy view of rows [lo, hi): the morsel primitive.
// The payload slices and the dictionary are shared with v, so slices are
// read-only — kernels must allocate fresh outputs, never mutate inputs.
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{typ: v.typ, dict: v.dict, valid: v.valid.slice(lo, hi)}
	switch v.typ {
	case Float64:
		out.f64 = v.f64[lo:hi]
	case Int64:
		out.i64 = v.i64[lo:hi]
	case String:
		out.codes = v.codes[lo:hi]
	case Bool:
		out.b = v.b[lo:hi]
	}
	return out
}

// GatherOuter is Gather extended with -1 selection entries, which produce
// NULL output rows (left-outer join padding). The NULL payload values match
// AppendNull. String outputs get a fresh dictionary — the source dictionary
// may be shared with concurrently-running queries and must not be mutated.
func (v *Vector) GatherOuter(sel []int32) *Vector {
	hasNull := false
	for _, s := range sel {
		if s < 0 {
			hasNull = true
			break
		}
	}
	if !hasNull {
		return v.Gather(sel)
	}
	n := len(sel)
	out := &Vector{typ: v.typ, valid: NewBitmap(n)}
	switch v.typ {
	case Float64:
		out.f64 = make([]float64, n)
		for i, s := range sel {
			if s < 0 {
				out.f64[i] = math.NaN()
				out.valid.Set(i, false)
			} else {
				out.f64[i] = v.f64[s]
				if v.valid != nil && !v.valid.Get(int(s)) {
					out.valid.Set(i, false)
				}
			}
		}
	case Int64:
		out.i64 = make([]int64, n)
		for i, s := range sel {
			if s < 0 {
				out.valid.Set(i, false)
			} else {
				out.i64[i] = v.i64[s]
				if v.valid != nil && !v.valid.Get(int(s)) {
					out.valid.Set(i, false)
				}
			}
		}
	case String:
		out.dict = NewDict()
		nullCode := out.dict.Code("")
		trans := make([]int32, v.dict.Size())
		for c := range trans {
			trans[c] = out.dict.Code(v.dict.Value(int32(c)))
		}
		out.codes = make([]int32, n)
		for i, s := range sel {
			if s < 0 {
				out.codes[i] = nullCode
				out.valid.Set(i, false)
			} else {
				out.codes[i] = trans[v.codes[s]]
				if v.valid != nil && !v.valid.Get(int(s)) {
					out.valid.Set(i, false)
				}
			}
		}
	case Bool:
		out.b = make([]bool, n)
		for i, s := range sel {
			if s < 0 {
				out.valid.Set(i, false)
			} else {
				out.b[i] = v.b[s]
				if v.valid != nil && !v.valid.Get(int(s)) {
					out.valid.Set(i, false)
				}
			}
		}
	}
	return out
}

// CastFloat64 returns a float64 view of a numeric vector, converting Int64
// and Bool element-wise. String vectors are parsed; unparseable values
// become NULL.
func (v *Vector) CastFloat64() *Vector {
	switch v.typ {
	case Float64:
		return v
	case Int64:
		out := make([]float64, len(v.i64))
		for i, x := range v.i64 {
			out[i] = float64(x)
		}
		return &Vector{typ: Float64, f64: out, valid: v.valid}
	case Bool:
		out := make([]float64, len(v.b))
		for i, x := range v.b {
			if x {
				out[i] = 1
			}
		}
		return &Vector{typ: Float64, f64: out, valid: v.valid}
	case String:
		out := make([]float64, len(v.codes))
		valid := NewBitmap(len(v.codes))
		for i := range v.codes {
			if v.IsNull(i) {
				valid.Set(i, false)
				continue
			}
			f, err := strconv.ParseFloat(v.StringAt(i), 64)
			if err != nil {
				valid.Set(i, false)
				out[i] = math.NaN()
				continue
			}
			out[i] = f
		}
		return &Vector{typ: Float64, f64: out, valid: valid}
	}
	return v
}

// Clone deep-copies the vector (the dictionary is shared; it is
// append-only).
func (v *Vector) Clone() *Vector {
	out := &Vector{typ: v.typ, dict: v.dict, valid: v.valid.Clone()}
	out.f64 = append([]float64(nil), v.f64...)
	out.i64 = append([]int64(nil), v.i64...)
	out.codes = append([]int32(nil), v.codes...)
	out.b = append([]bool(nil), v.b...)
	return out
}

// ByteSize estimates the heap bytes backing the vector's payload: typed
// slices plus the validity bitmap. String vectors count the code slice
// only — the dictionary is shared across gathered copies, so charging it
// to every vector would double-count.
func (v *Vector) ByteSize() int64 {
	b := int64(len(v.f64))*8 + int64(len(v.i64))*8 + int64(len(v.codes))*4 + int64(len(v.b))
	if v.valid != nil {
		b += int64(len(v.valid.words)) * 8
	}
	return b
}
