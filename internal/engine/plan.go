package engine

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// PlanNode is one operator of a query's execution plan. Children are the
// operator's inputs (a scan feeds a filter feeds an aggregate, Postgres
// style), so rendering the root top-down reads in reverse pipeline order.
// When a statement runs with a *QueryStats attached, every node carries
// measured rows in/out, wall time, and the byte size of its materialized
// output; a plain EXPLAIN builds the same shape from catalog metadata
// without executing.
type PlanNode struct {
	Op      string `json:"op"`               // scan, filter, project, join, aggregate, order, limit, merge, part
	Detail  string `json:"detail,omitempty"` // operator-specific: table name, predicate, group keys...
	RowsIn  int64  `json:"rows_in"`
	RowsOut int64  `json:"rows_out"`
	Batches int64  `json:"batches"` // column vectors materialized in the output
	Nanos   int64  `json:"nanos"`
	Bytes   int64  `json:"bytes"` // payload bytes of the materialized output
	// Parallelism is the degree the operator actually fanned out to (0 for
	// operators that ran on the issuing goroutine only: the serial tail).
	Parallelism int `json:"parallelism,omitempty"`
	// Morsels counts the row-range batches processed; concurrent morsel
	// workers accumulate it through AddMorsels (atomically), so EXPLAIN
	// ANALYZE totals stay exact under parallel execution.
	Morsels int64 `json:"morsels,omitempty"`
	// Groups is the number of distinct key tuples the operator's hash table
	// held: groups for an aggregate, build-side keys for a join. Written at
	// the combine quiesce point (single goroutine), zero when not grouping.
	Groups int64 `json:"groups,omitempty"`
	// MemBytes is the net accounted memory the operator charged (its stage
	// delta against the query's MemAccountant); zero when accounting is off.
	MemBytes int64 `json:"mem_bytes,omitempty"`
	// Fused marks an operator that ran inside another operator's morsel
	// loop (e.g. a WHERE evaluated per morsel inside the aggregate) rather
	// than materializing its own output table.
	Fused bool `json:"fused,omitempty"`
	// SpillParts/SpillBytes record how much state the operator shed to disk
	// when the query's memory budget forced it to: the number of spill
	// partitions processed and the run-file bytes written.
	SpillParts int64       `json:"spill_parts,omitempty"`
	SpillBytes int64       `json:"spill_bytes,omitempty"`
	Children   []*PlanNode `json:"children,omitempty"`
}

// AddMorsels counts d processed morsels; safe to call from concurrent
// morsel workers. All other PlanNode fields are written only at stage
// boundaries (single-goroutine quiesce points).
func (n *PlanNode) AddMorsels(d int64) {
	if n == nil {
		return
	}
	atomic.AddInt64(&n.Morsels, d)
}

// Attrs renders the node's measurements as span attributes; the federation
// worker uses it to graft per-operator spans into experiment traces.
func (n *PlanNode) Attrs() map[string]string {
	a := map[string]string{
		"op":       n.Op,
		"rows_in":  strconv.FormatInt(n.RowsIn, 10),
		"rows_out": strconv.FormatInt(n.RowsOut, 10),
		"batches":  strconv.FormatInt(n.Batches, 10),
		"bytes":    strconv.FormatInt(n.Bytes, 10),
	}
	if n.Detail != "" {
		a["detail"] = n.Detail
	}
	if n.Parallelism > 0 {
		a["parallelism"] = strconv.Itoa(n.Parallelism)
	}
	if m := atomic.LoadInt64(&n.Morsels); m > 0 {
		a["morsels"] = strconv.FormatInt(m, 10)
	}
	if n.Groups > 0 {
		a["groups"] = strconv.FormatInt(n.Groups, 10)
	}
	if n.MemBytes > 0 {
		a["mem_bytes"] = strconv.FormatInt(n.MemBytes, 10)
	}
	if n.Fused {
		a["fused"] = "true"
	}
	if n.SpillParts > 0 {
		a["spill_parts"] = strconv.FormatInt(n.SpillParts, 10)
		a["spill_bytes"] = strconv.FormatInt(n.SpillBytes, 10)
	}
	return a
}

// Walk visits the node and every descendant, parents before children.
func (n *PlanNode) Walk(fn func(*PlanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Render renders the tree as indented text lines, root first. With analyzed
// set, each line carries the measured stats bracket; without it only the
// plan shape (plus catalog row counts on scans) is shown.
func (n *PlanNode) Render(analyzed bool) []string {
	var lines []string
	var walk func(n *PlanNode, depth int)
	walk = func(n *PlanNode, depth int) {
		var b strings.Builder
		if depth > 0 {
			b.WriteString(strings.Repeat("  ", depth-1))
			b.WriteString("-> ")
		}
		b.WriteString(n.Op)
		if n.Detail != "" {
			b.WriteString(" ")
			b.WriteString(n.Detail)
		}
		if analyzed {
			fmt.Fprintf(&b, "  (rows_in=%d rows_out=%d batches=%d time=%s bytes=%d",
				n.RowsIn, n.RowsOut, n.Batches, time.Duration(n.Nanos), n.Bytes)
			if n.Parallelism > 0 {
				fmt.Fprintf(&b, " par=%d", n.Parallelism)
			}
			if m := atomic.LoadInt64(&n.Morsels); m > 0 {
				fmt.Fprintf(&b, " morsels=%d", m)
			}
			if n.Groups > 0 {
				fmt.Fprintf(&b, " groups=%d", n.Groups)
			}
			if n.MemBytes > 0 {
				fmt.Fprintf(&b, " mem=%d", n.MemBytes)
			}
			b.WriteString(")")
			if n.SpillParts > 0 {
				fmt.Fprintf(&b, " [spill=%d parts, %.1f MB]",
					n.SpillParts, float64(n.SpillBytes)/(1<<20))
			}
			if n.Fused {
				b.WriteString(" [fused]")
			}
		} else {
			if n.Op == "scan" || n.Op == "part" {
				fmt.Fprintf(&b, "  (rows=%d)", n.RowsOut)
			}
			if n.Parallelism > 1 {
				fmt.Fprintf(&b, "  [par=%d]", n.Parallelism)
			}
		}
		lines = append(lines, b.String())
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(n, 0)
	return lines
}

// String renders the tree as one newline-joined block.
func (n *PlanNode) String() string { return strings.Join(n.Render(true), "\n") }

// planTable wraps a rendered plan into the one-column result table that
// EXPLAIN statements return.
func planTable(n *PlanNode, analyzed bool) (*Table, error) {
	t := NewTable(Schema{{Name: "plan", Type: String}})
	if n == nil {
		if err := t.AppendRow("(no plan)"); err != nil {
			return nil, err
		}
		return t, nil
	}
	for _, line := range n.Render(analyzed) {
		if err := t.AppendRow(line); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// scanPlanNode describes reading one base table.
func scanPlanNode(name string, t *Table) *PlanNode {
	return &PlanNode{
		Op:      "scan",
		Detail:  name,
		RowsIn:  int64(t.NumRows()),
		RowsOut: int64(t.NumRows()),
		Batches: int64(t.NumCols()),
		Bytes:   t.ByteSize(),
	}
}

// stage profiles one pipeline operator. A nil *stage (from a nil
// *QueryStats) is inert, so executor code calls begin/end unconditionally.
type stage struct {
	qs       *QueryStats
	node     *PlanNode
	start    time.Time
	memStart int64 // accounted live bytes when the stage opened
}

// beginStage opens a profiling stage: a new plan node whose input is the
// current plan root (the pipeline is linear; joins and merge fan-ins build
// their multi-child nodes by hand). It also marks the operator as the
// query's current one in the active-query registry.
func (qs *QueryStats) beginStage(op, detail string, rowsIn int) *stage {
	if qs == nil {
		return nil
	}
	n := &PlanNode{Op: op, Detail: detail, RowsIn: int64(rowsIn)}
	if qs.Root != nil {
		n.Children = append(n.Children, qs.Root)
	}
	qs.Root = n
	if qs.handle != nil {
		label := op
		if detail != "" {
			label += " " + detail
		}
		qs.handle.setOp(label)
	}
	return &stage{qs: qs, node: n, start: time.Now(), memStart: qs.acct.Live()}
}

// planNode returns the stage's plan node (nil for an inert stage); morsel
// workers use it to accrue per-morsel counters.
func (s *stage) planNode() *PlanNode {
	if s == nil {
		return nil
	}
	return s.node
}

// setParallelism records the degree the stage fanned out to.
func (s *stage) setParallelism(d int) {
	if s == nil || d <= 1 {
		return
	}
	s.node.Parallelism = d
}

// end closes the stage, recording output shape and folding the elapsed time
// into the legacy per-operator counters. The per-operator totals accumulate
// atomically: merge-table combine stages and per-morsel workers may touch
// the same QueryStats, and atomics keep EXPLAIN ANALYZE totals exact.
func (s *stage) end(out *Table) {
	if s == nil {
		return
	}
	s.node.Nanos = time.Since(s.start).Nanoseconds()
	if out != nil {
		s.node.RowsOut = int64(out.NumRows())
		s.node.Batches = int64(out.NumCols())
		s.node.Bytes = out.ByteSize()
	}
	if s.qs.acct != nil {
		if d := s.qs.acct.Live() - s.memStart; d > 0 {
			s.node.MemBytes = d
		}
	}
	switch s.node.Op {
	case "filter":
		atomic.AddInt64(&s.qs.FilterNanos, s.node.Nanos)
	case "aggregate":
		atomic.AddInt64(&s.qs.AggregateNanos, s.node.Nanos)
	case "order", "topk":
		atomic.AddInt64(&s.qs.SortNanos, s.node.Nanos)
	case "project", "limit":
		atomic.AddInt64(&s.qs.ProjectNanos, s.node.Nanos)
	}
}

// explainPlan predicts the plan shape for a statement without executing it.
// It mirrors db.run's dispatch (merge view vs join vs plain scan) and
// execSelect's stage order so that EXPLAIN and EXPLAIN ANALYZE agree.
func (db *DB) explainPlan(st Statement) (*PlanNode, error) {
	sel, ok := st.(*SelectStmt)
	if !ok {
		return nil, fmt.Errorf("engine: EXPLAIN supports only SELECT statements, got %T", st)
	}
	ec := db.execCtx()
	// Predicted fan-out over n input rows: the configured degree capped by
	// how many morsels the input actually splits into (a 100-row table
	// cannot use 8 workers). Zero (= unannotated) for single-morsel inputs.
	predictPar := func(rows int) int {
		if d := ec.degreeFor(len(ec.morselsOf(rows))); d > 1 {
			return d
		}
		return 0
	}
	var cur *PlanNode
	baseRows := 0
	where := sel.Where
	if m := db.Merge(sel.From); m != nil {
		if len(sel.Joins) > 0 {
			return nil, fmt.Errorf("engine: JOIN over merge tables is not supported")
		}
		mode := "materialize"
		var partSQL string
		if specs, ok := m.decompose(sel); ok {
			mode = "pushdown"
			partSQL, _ = m.partialSQL(sel, specs)
		} else {
			partSQL, _ = m.materializeSQL(sel)
		}
		where = nil // either mode runs the whole WHERE at the parts
		cur = &PlanNode{Op: "merge", Detail: mode + " " + m.TableName}
		if len(m.Parts) > 1 {
			cur.Parallelism = len(m.Parts) // part fan-out is one goroutine per part
		}
		for _, p := range m.Parts {
			cur.Children = append(cur.Children, &PlanNode{Op: "part", Detail: p.PartName() + ": " + partSQL})
		}
	} else {
		base := db.Table(sel.From)
		if base == nil {
			return nil, fmt.Errorf("engine: unknown table %q", sel.From)
		}
		baseRows = base.NumRows()
		if len(sel.Joins) > 0 || sel.FromAlias != "" {
			// Mirror buildJoined: same planner, same join order, same
			// pushed-filter placement, so EXPLAIN shows what will run.
			plan, err := db.planJoins(sel, !ec.NoJoinReorder)
			if err != nil {
				return nil, err
			}
			where = plan.residual
			relNode := func(ri int) *PlanNode {
				r := plan.rels[ri]
				n := scanPlanNode(r.name, r.table)
				if r.pushed != nil {
					n = &PlanNode{Op: "filter", Detail: "pushed " + r.pushed.String(),
						Parallelism: predictPar(r.table.NumRows()), Children: []*PlanNode{n}}
				}
				return n
			}
			cur = relNode(0)
			for _, ji := range plan.order {
				cur = &PlanNode{
					Op:          "join",
					Detail:      joinDetail(sel.Joins[ji]),
					Parallelism: predictPar(baseRows),
					Children:    []*PlanNode{cur, relNode(ji + 1)},
				}
			}
			if plan.reordered {
				cur = &PlanNode{Op: "order", Detail: "restore written join order", Children: []*PlanNode{cur}}
			}
		} else {
			cur = scanPlanNode(sel.From, base)
		}
	}
	wrap := func(op, detail string, par int) {
		cur = &PlanNode{Op: op, Detail: detail, Parallelism: par, Children: []*PlanNode{cur}}
	}
	var fnode *PlanNode
	if where != nil {
		wrap("filter", where.String(), predictPar(baseRows))
		fnode = cur
	}
	// Predict the same fusion/top-k choices execSelect makes; fusion needs
	// a WHERE over a non-empty input, top-k a small enough limit+offset.
	fusible := where != nil && baseRows > 0
	markFused := func() {
		if fusible && fnode != nil {
			fnode.Fused = true
			cur.Fused = true
		}
	}
	hasAgg := selHasAgg(sel)
	kPrime := -1
	if sel.Limit >= 0 {
		kPrime = sel.Limit + sel.Offset
	}
	useTopk := !hasAgg && len(sel.OrderBy) > 0 && kPrime >= 0 &&
		kPrime <= topkMaxCandidates && kPrime < baseRows
	if hasAgg {
		wrap("aggregate", aggDetail(sel), predictPar(baseRows))
		markFused()
		if len(sel.OrderBy) > 0 {
			// Sort input is the (unknown) group count; predict no fan-out.
			// EXPLAIN ANALYZE records the measured degree instead.
			wrap("order", orderDetail(sel.OrderBy), 0)
		}
	} else if useTopk {
		wrap("topk", orderDetail(sel.OrderBy)+" "+limitDetail(sel), predictPar(baseRows))
		markFused()
		return cur, nil // limit is folded into topk
	} else if len(sel.OrderBy) > 0 {
		extPar := 0
		if fusible {
			extPar = predictPar(baseRows)
		}
		wrap("project", "extend", extPar)
		markFused()
		// A WHERE shrinks the sort input by an unknown factor; predict the
		// pre-filter degree anyway (the measured one lands in ANALYZE).
		wrap("order", orderDetail(sel.OrderBy), predictPar(baseRows))
		wrap("project", projectDetail(sel), 0)
	} else {
		projPar := 0
		if fusible && !sel.Star {
			projPar = predictPar(baseRows)
		}
		wrap("project", projectDetail(sel), projPar)
		if !sel.Star {
			markFused()
		}
	}
	if sel.Limit >= 0 || sel.Offset > 0 {
		wrap("limit", limitDetail(sel), 0)
	}
	return cur, nil
}

// selHasAgg reports whether the SELECT runs through the aggregate stage.
func selHasAgg(st *SelectStmt) bool {
	if len(st.GroupBy) > 0 || st.Having != nil {
		return true
	}
	for _, it := range st.Items {
		if HasAgg(it.Expr) {
			return true
		}
	}
	return false
}

func aggDetail(st *SelectStmt) string {
	if len(st.GroupBy) == 0 {
		return "global"
	}
	keys := make([]string, len(st.GroupBy))
	for i, g := range st.GroupBy {
		keys[i] = g.String()
	}
	return "group by " + strings.Join(keys, ", ")
}

func orderDetail(keys []OrderItem) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k.Expr.String()
		if k.Desc {
			parts[i] += " DESC"
		}
	}
	return strings.Join(parts, ", ")
}

func projectDetail(st *SelectStmt) string {
	if st.Star {
		return "*"
	}
	parts := make([]string, len(st.Items))
	for i, it := range st.Items {
		if it.Alias != "" {
			parts[i] = it.Alias
		} else {
			parts[i] = exprName(it.Expr)
		}
	}
	s := strings.Join(parts, ", ")
	if len(s) > 60 {
		s = s[:57] + "..."
	}
	return s
}

func limitDetail(st *SelectStmt) string {
	s := ""
	if st.Limit >= 0 {
		s = fmt.Sprintf("limit %d", st.Limit)
	}
	if st.Offset > 0 {
		if s != "" {
			s += " "
		}
		s += fmt.Sprintf("offset %d", st.Offset)
	}
	return s
}

func joinDetail(jc JoinClause) string {
	kind := "inner"
	if jc.Left {
		kind = "left"
	}
	name := jc.Table
	if jc.Alias != "" {
		name += " " + jc.Alias
	}
	return fmt.Sprintf("%s %s on %s", kind, name, jc.On.String())
}
