package engine

// spillagg implements the disk-backed grouped aggregation path. When the
// in-memory partial pass crosses the query's soft memory budget, the
// aggregation restarts here: one serial pass hash-partitions every
// (filtered) input row into 16 run files by its group-key hash, then each
// partition is processed independently — re-partitioned recursively while
// it still exceeds half the budget, otherwise loaded and aggregated with
// exactly the in-memory combine algorithm restricted to its groups.
//
// Bit-identity with the in-memory path is preserved by construction:
// every spilled row carries its original row ordinal (seq), partitions
// reload rows in seq order, and runs are split at the same morsel
// boundaries the parallel path uses (seq / morsel size). Per-group float
// accumulators therefore fold the same per-morsel sub-states in the same
// morsel order, and the final group order is restored by sorting on each
// group's first-appearance ordinal.

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
)

// errAggOverBudget aborts the in-memory partial pass when the accountant
// crosses the query budget and spilling is available.
var errAggOverBudget = errors.New("engine: aggregate over memory budget")

// maxSpillDepth bounds recursive repartitioning: depth 0 is the initial
// 16-way split, each extra level subdivides by the next 4 hash bits.
const maxSpillDepth = 2

// rowSpiller hash-partitions rows into 16 run files by a 4-bit window of
// their key hash; depth d uses bits [60-4d, 64-4d), so deeper levels
// subdivide a partition without reshuffling the others.
type rowSpiller struct {
	ec    *ExecContext
	label string
	depth int
	ws    [16]*runWriter
	sels  [16][]int32
}

func (sp *rowSpiller) shift() uint { return uint(60 - 4*sp.depth) }

// add routes one batch's rows (cols share length n; seq[r] is row r's
// global ordinal) to their partitions and appends each slice as a batch
// to the partition's run file. Row order is preserved per partition, so
// run files stay sorted by seq.
func (sp *rowSpiller) add(hashes []uint64, cols []*Vector, seq []int64, n int) error {
	for p := range sp.sels {
		sp.sels[p] = sp.sels[p][:0]
	}
	shift := sp.shift()
	for r := 0; r < n; r++ {
		p := (hashes[r] >> shift) & 15
		sp.sels[p] = append(sp.sels[p], int32(r))
	}
	for p, sel := range sp.sels {
		if len(sel) == 0 {
			continue
		}
		if sp.ws[p] == nil {
			w, err := sp.ec.newRunWriter(fmt.Sprintf("%s-d%d-p%d", sp.label, sp.depth, p))
			if err != nil {
				return err
			}
			sp.ws[p] = w
		}
		out := make([]*Vector, 0, len(cols)+1)
		for _, c := range cols {
			out = append(out, c.Gather(sel))
		}
		sq := make([]int64, len(sel))
		for i, r := range sel {
			sq[i] = seq[r]
		}
		out = append(out, &Vector{typ: Int64, i64: sq})
		if err := sp.ws[p].write(out); err != nil {
			return err
		}
	}
	return nil
}

// close closes every open writer and returns the non-empty partitions'
// paths plus the total encoded bytes written.
func (sp *rowSpiller) close() ([16]string, int64, error) {
	var paths [16]string
	var bytes int64
	var firstErr error
	for p, w := range sp.ws {
		if w == nil {
			continue
		}
		paths[p] = w.path
		bytes += w.bytes()
		if err := w.close(); err != nil && firstErr == nil {
			firstErr = err
		}
		sp.ws[p] = nil
	}
	return paths, bytes, firstErr
}

// aggSpillState is a streaming sink for the spilled aggregation: callers
// feed (filtered) input batches tagged with their original row ordinals,
// then finish() partitions-processes everything into the $key/$agg
// intermediate table. Used by execAggSpill (input table morsels) and the
// grace-join path (merged join output batches).
type aggSpillState struct {
	ec        *ExecContext
	st        *SelectStmt
	aggCalls  []*AggCall
	emptyKeys []*Vector
	empty     *Table
	argCounts []int
	nKeys     int
	msize     int64
	sp        *rowSpiller
	spilled   int64
}

// newAggSpillState validates the aggregate over the empty input slice and
// fixes the run-row layout: group keys, then each call's processed
// argument vectors (quantile's fraction literal trimmed), then seq.
func newAggSpillState(ec *ExecContext, st *SelectStmt, aggCalls []*AggCall, emptyKeys []*Vector, empty *Table) (*aggSpillState, error) {
	argCounts := make([]int, len(aggCalls))
	for k, c := range aggCalls {
		_, av, err := newAggState(c, 0, empty)
		if err != nil {
			return nil, err
		}
		argCounts[k] = len(av)
	}
	return &aggSpillState{
		ec: ec, st: st, aggCalls: aggCalls, emptyKeys: emptyKeys, empty: empty,
		argCounts: argCounts, nKeys: len(st.GroupBy), msize: int64(ec.morselSize()),
		sp: &rowSpiller{ec: ec, label: "agg"},
	}, nil
}

// feed partitions one batch of already-filtered rows; seq[r] is row r's
// ordinal in the unfiltered input, which phase B uses to recover morsel
// boundaries and first-appearance order.
func (as *aggSpillState) feed(part *Table, seq []int64) error {
	n := part.NumRows()
	if n == 0 {
		return nil
	}
	keyVecs := make([]*Vector, as.nKeys)
	cols := make([]*Vector, 0, as.nKeys+len(as.aggCalls))
	for k, g := range as.st.GroupBy {
		v, err := Eval(g, part)
		if err != nil {
			return err
		}
		keyVecs[k] = v
		cols = append(cols, v)
	}
	for _, c := range as.aggCalls {
		_, av, err := newAggState(c, 0, part)
		if err != nil {
			return err
		}
		cols = append(cols, av...)
	}
	hashes := getHashBuf(n)
	hashKeyCols(keyVecs, n, hashes)
	err := as.sp.add(hashes, cols, seq, n)
	putHashBuf(hashes)
	return err
}

// abort closes any open run writers after a feed error.
func (as *aggSpillState) abort() { as.sp.close() }

// finish processes every partition and assembles the intermediate table,
// recording spill totals on the aggregate's plan node.
func (as *aggSpillState) finish(node *PlanNode) (*Table, error) {
	ec := as.ec
	paths, bytes, err := as.sp.close()
	if err != nil {
		return nil, err
	}
	as.spilled += bytes

	// Process partitions in hash order. midParts[i] holds one partition's
	// groups (keys + agg results); firstSeqs aligns with the concatenated
	// rows and restores global first-appearance order.
	var midParts []*Table
	var firstSeqs []int64
	var groupsTotal, leafParts int64

	var process func(path string, depth int) error
	process = func(path string, depth int) error {
		if err := ec.interrupted(); err != nil {
			return err
		}
		rr, err := ec.openRun(path)
		if err != nil {
			return err
		}
		if b := ec.budget(); rr.size > b/2 && depth < maxSpillDepth {
			// Still too big to load: subdivide by the next 4 hash bits.
			sub := &rowSpiller{ec: ec, label: "agg", depth: depth + 1}
			for {
				vs, err := rr.next()
				if err == io.EOF {
					break
				}
				if err == nil {
					err = ec.interrupted()
				}
				if err != nil {
					rr.close()
					sub.close()
					return err
				}
				n := vs[0].Len()
				hashes := getHashBuf(n)
				hashKeyCols(vs[:as.nKeys], n, hashes)
				err = sub.add(hashes, vs[:len(vs)-1], vs[len(vs)-1].Int64s(), n)
				putHashBuf(hashes)
				if err != nil {
					rr.close()
					sub.close()
					return err
				}
			}
			if err := rr.close(); err != nil {
				sub.close()
				return err
			}
			ec.removeRun(path)
			subPaths, bytes, err := sub.close()
			if err != nil {
				return err
			}
			as.spilled += bytes
			for _, sp2 := range subPaths {
				if sp2 == "" {
					continue
				}
				if err := process(sp2, depth+1); err != nil {
					return err
				}
			}
			return nil
		}

		// Leaf: load the whole partition (sorted by seq — writers preserve
		// row order), split it into per-morsel runs, and run the in-memory
		// partial + combine algorithm over the runs.
		batches, err := rr.drain()
		if cerr := rr.close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		ec.removeRun(path)
		if len(batches) == 0 {
			return nil
		}
		ncols := len(batches[0])
		total := 0
		for _, b := range batches {
			total += b[0].Len()
		}
		cols := make([]*Vector, ncols)
		schema := make(Schema, ncols)
		var loaded int64
		for j := 0; j < ncols; j++ {
			parts := make([]*Vector, len(batches))
			for i, b := range batches {
				parts[i] = b[j]
			}
			cols[j] = concatVectors(parts[0].Type(), parts, total)
			schema[j] = ColumnDef{Name: fmt.Sprintf("$c%d", j), Type: cols[j].Type()}
			loaded += cols[j].ByteSize()
		}
		ec.charge(loaded)
		defer ec.release(loaded)
		tbl, err := NewTableFromVectors(schema, cols)
		if err != nil {
			return err
		}
		seqAll := cols[ncols-1].Int64s()

		type runRange struct{ lo, hi int }
		var runs []runRange
		for lo, r := 0, 1; r <= total; r++ {
			if r == total || seqAll[r]/as.msize != seqAll[lo]/as.msize {
				runs = append(runs, runRange{lo, r})
				lo = r
			}
		}

		// Per-run partials: same algorithm and same row order as the
		// parallel in-memory pass, restricted to this partition's rows.
		partials := make([]*morselAgg, len(runs))
		for i, rg := range runs {
			run := tbl.Slice(rg.lo, rg.hi)
			n := rg.hi - rg.lo
			ma := &morselAgg{keyVecs: make([]*Vector, as.nKeys)}
			for k := 0; k < as.nKeys; k++ {
				ma.keyVecs[k] = run.Col(k)
			}
			groupOf := make([]int, n)
			hashes := getHashBuf(n)
			hashKeyCols(ma.keyVecs, n, hashes)
			gi := newGroupIndex(0)
			gi.addSource(ma.keyVecs)
			for r := 0; r < n; r++ {
				groupOf[r] = int(gi.insert(hashes[r], 0, int32(r)))
			}
			putHashBuf(hashes)
			ma.hashes = gi.hashes
			ma.rows = make([]int32, len(gi.refs))
			for g, rf := range gi.refs {
				ma.rows[g] = rf.row
			}
			localGroups := gi.groups()
			ma.states = make([]*aggState, len(as.aggCalls))
			off := as.nKeys
			for k, c := range as.aggCalls {
				av := make([]*Vector, as.argCounts[k])
				for a := range av {
					av[a] = run.Col(off + a)
				}
				off += as.argCounts[k]
				s, av2, err := newAggStateFromArgs(c, localGroups, av)
				if err != nil {
					return err
				}
				s.observeAll(groupOf, av2, n)
				ma.states[k] = s
			}
			partials[i] = ma
		}

		// Partition combine, in run (= morsel) order; a group's firstSeq is
		// the ordinal of its first row anywhere in the input.
		pgi := newGroupIndex(0)
		gmaps := make([][]int, len(partials))
		for mi, ma := range partials {
			src := pgi.addSource(ma.keyVecs)
			gmaps[mi] = make([]int, len(ma.rows))
			for lg := range ma.rows {
				before := pgi.groups()
				g := int(pgi.insert(ma.hashes[lg], src, ma.rows[lg]))
				gmaps[mi][lg] = g
				if pgi.groups() > before {
					firstSeqs = append(firstSeqs, seqAll[runs[mi].lo+int(ma.rows[lg])])
				}
			}
		}
		groups := pgi.groups()
		states := make([]*aggState, len(as.aggCalls))
		for k, c := range as.aggCalls {
			s, _, err := newAggState(c, groups, as.empty)
			if err != nil {
				return err
			}
			for mi, ma := range partials {
				s.mergeFrom(ma.states[k], gmaps[mi])
			}
			states[k] = s
		}

		var pschema Schema
		var pcols []*Vector
		for i := range as.st.GroupBy {
			out := NewVector(as.emptyKeys[i].Type())
			for g := 0; g < groups; g++ {
				rf := pgi.refs[g]
				if err := appendKeyRow(out, partials[rf.src].keyVecs[i], int(rf.row)); err != nil {
					return err
				}
			}
			pschema = append(pschema, ColumnDef{Name: fmt.Sprintf("$key%d", i), Type: out.Type()})
			pcols = append(pcols, out)
		}
		for i, s := range states {
			v := s.result(groups)
			pschema = append(pschema, ColumnDef{Name: fmt.Sprintf("$agg%d", i), Type: v.Type()})
			pcols = append(pcols, v)
		}
		pt, err := NewTableFromVectors(pschema, pcols)
		if err != nil {
			return err
		}
		ec.charge(pt.ByteSize())
		midParts = append(midParts, pt)
		groupsTotal += int64(groups)
		leafParts++
		return nil
	}
	for _, p := range paths {
		if p == "" {
			continue
		}
		if err := process(p, 0); err != nil {
			return nil, err
		}
	}

	if node != nil {
		node.Groups = groupsTotal
		node.SpillParts += leafParts
		node.SpillBytes += as.spilled
	}
	ec.addSpill(0, leafParts)

	if len(midParts) == 0 {
		// Nothing spilled (all rows filtered out): the in-memory result is
		// the empty grouped table.
		var schema Schema
		var cols []*Vector
		for i := range as.st.GroupBy {
			v := NewVector(as.emptyKeys[i].Type())
			schema = append(schema, ColumnDef{Name: fmt.Sprintf("$key%d", i), Type: v.Type()})
			cols = append(cols, v)
		}
		for k, c := range as.aggCalls {
			s, _, err := newAggState(c, 0, as.empty)
			if err != nil {
				return nil, err
			}
			v := s.result(0)
			schema = append(schema, ColumnDef{Name: fmt.Sprintf("$agg%d", k), Type: v.Type()})
			cols = append(cols, v)
		}
		return NewTableFromVectors(schema, cols)
	}

	mid, err := ec.concatTables(midParts[0].Schema(), midParts)
	if err != nil {
		return nil, err
	}
	// Restore global first-appearance group order.
	ord := make([]int32, mid.NumRows())
	for i := range ord {
		ord[i] = int32(i)
	}
	sort.Slice(ord, func(a, b int) bool { return firstSeqs[ord[a]] < firstSeqs[ord[b]] })
	return mid.Gather(ord), nil
}

// execAggSpill redoes a grouped aggregation with partitioned spilling and
// returns the $key/$agg intermediate table, identical (bit-for-bit, group
// order included) to what the in-memory combine would have produced.
func execAggSpill(ec *ExecContext, st *SelectStmt, t *Table, node, fnode *PlanNode, where Expr, aggCalls []*AggCall, emptyKeys []*Vector, empty *Table) (*Table, error) {
	as, err := newAggSpillState(ec, st, aggCalls, emptyKeys, empty)
	if err != nil {
		return nil, err
	}

	// Phase A: serial pass over the input, partitioning every (filtered)
	// morsel's rows. Morsels decompose the unfiltered input exactly like
	// the parallel path, and seq is the original row index, so morsel
	// membership is recoverable as seq/msize.
	for _, m := range ec.morselsOf(t.NumRows()) {
		if err := ec.interrupted(); err != nil {
			as.abort()
			return nil, err
		}
		part := t.Slice(m.lo, m.hi)
		var sel []int32
		if where != nil {
			var err error
			sel, err = FilterSel(where, part)
			if err != nil {
				as.abort()
				return nil, err
			}
			if fnode != nil {
				atomic.AddInt64(&fnode.RowsOut, int64(len(sel)))
			}
			fnode.AddMorsels(1)
			part = part.Gather(sel)
		}
		node.AddMorsels(1)
		n := part.NumRows()
		if n == 0 {
			continue
		}
		seq := make([]int64, n)
		for r := 0; r < n; r++ {
			if sel != nil {
				seq[r] = int64(m.lo) + int64(sel[r])
			} else {
				seq[r] = int64(m.lo + r)
			}
		}
		if err := as.feed(part, seq); err != nil {
			as.abort()
			return nil, err
		}
	}
	return as.finish(node)
}
