package engine

import (
	"fmt"
	"strings"
)

// ColumnDef describes one column of a table schema.
type ColumnDef struct {
	Name string
	Type Type
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// ColIndex returns the position of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Equal reports whether two schemas have the same names and types.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if !strings.EqualFold(s[i].Name, o[i].Name) || s[i].Type != o[i].Type {
			return false
		}
	}
	return true
}

// Table is an in-memory columnar table: the engine's storage unit and also
// the result format of every query.
type Table struct {
	schema Schema
	cols   []*Vector
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) *Table {
	t := &Table{schema: schema, cols: make([]*Vector, len(schema))}
	for i, c := range schema {
		t.cols[i] = NewVector(c.Type)
	}
	return t
}

// NewTableFromVectors builds a table over existing vectors (no copy).
// All vectors must have the same length.
func NewTableFromVectors(schema Schema, cols []*Vector) (*Table, error) {
	if len(schema) != len(cols) {
		return nil, fmt.Errorf("engine: schema has %d columns, got %d vectors", len(schema), len(cols))
	}
	n := -1
	for i, v := range cols {
		if v.Type() != schema[i].Type {
			return nil, fmt.Errorf("engine: column %q type mismatch: schema %v, vector %v", schema[i].Name, schema[i].Type, v.Type())
		}
		if n == -1 {
			n = v.Len()
		} else if v.Len() != n {
			return nil, fmt.Errorf("engine: ragged table: column %q has %d rows, expected %d", schema[i].Name, v.Len(), n)
		}
	}
	return &Table{schema: schema, cols: cols}, nil
}

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// NumRows returns the number of rows.
func (t *Table) NumRows() int {
	if len(t.cols) == 0 {
		return 0
	}
	return t.cols[0].Len()
}

// NumCols returns the number of columns.
func (t *Table) NumCols() int { return len(t.cols) }

// Col returns the i-th column vector.
func (t *Table) Col(i int) *Vector { return t.cols[i] }

// ColByName returns the named column vector, or nil. Over joined tables
// (whose columns carry qualified alias.col names), an unqualified name
// resolves when exactly one column's suffix matches.
func (t *Table) ColByName(name string) *Vector {
	i := t.schema.ColIndex(name)
	if i < 0 {
		if !strings.Contains(name, ".") {
			suffix := "." + strings.ToLower(name)
			match := -1
			for j, c := range t.schema {
				if strings.HasSuffix(strings.ToLower(c.Name), suffix) {
					if match >= 0 {
						return nil // ambiguous
					}
					match = j
				}
			}
			if match >= 0 {
				return t.cols[match]
			}
		}
		return nil
	}
	return t.cols[i]
}

// AppendRow appends one row of Go values (nil = NULL). Values are converted
// to the column types.
func (t *Table) AppendRow(vals ...any) error {
	if len(vals) != len(t.cols) {
		return fmt.Errorf("engine: row has %d values, table has %d columns", len(vals), len(t.cols))
	}
	for i, v := range vals {
		if err := t.cols[i].AppendValue(v); err != nil {
			return fmt.Errorf("engine: column %q: %w", t.schema[i].Name, err)
		}
	}
	return nil
}

// Row returns row i as a slice of Go values (nil = NULL).
func (t *Table) Row(i int) []any {
	out := make([]any, len(t.cols))
	for j, c := range t.cols {
		out[j] = c.Value(i)
	}
	return out
}

// Slice returns a zero-copy row-range view [lo, hi) of the table: the
// morsel the parallel operators run on. Views are read-only.
func (t *Table) Slice(lo, hi int) *Table {
	cols := make([]*Vector, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.Slice(lo, hi)
	}
	return &Table{schema: t.schema, cols: cols}
}

// Gather returns a new table with the selected rows.
func (t *Table) Gather(sel []int32) *Table {
	cols := make([]*Vector, len(t.cols))
	for i, c := range t.cols {
		cols[i] = c.Gather(sel)
	}
	return &Table{schema: t.schema, cols: cols}
}

// Append appends all rows of o (schemas must match) — the merge-table union
// primitive.
func (t *Table) Append(o *Table) error {
	if !t.schema.Equal(o.schema) {
		return fmt.Errorf("engine: cannot append table with schema %v to %v", o.schema.Names(), t.schema.Names())
	}
	for i := 0; i < o.NumRows(); i++ {
		if err := t.AppendRow(o.Row(i)...); err != nil {
			return err
		}
	}
	return nil
}

// Float64Column extracts the named column as []float64 plus a missing-count;
// NULLs are dropped. Int columns are converted. This is the bridge between
// the engine and the numeric algorithm kernels.
func (t *Table) Float64Column(name string) (vals []float64, missing int, err error) {
	v := t.ColByName(name)
	if v == nil {
		return nil, 0, fmt.Errorf("engine: no column %q", name)
	}
	f := v.CastFloat64()
	vals = make([]float64, 0, f.Len())
	for i := 0; i < f.Len(); i++ {
		if f.IsNull(i) {
			missing++
			continue
		}
		vals = append(vals, f.Float64s()[i])
	}
	return vals, missing, nil
}

// StringColumn extracts the named column as []string; NULLs become "".
func (t *Table) StringColumn(name string) ([]string, error) {
	v := t.ColByName(name)
	if v == nil {
		return nil, fmt.Errorf("engine: no column %q", name)
	}
	out := make([]string, v.Len())
	for i := 0; i < v.Len(); i++ {
		if v.IsNull(i) {
			continue
		}
		switch v.Type() {
		case String:
			out[i] = v.StringAt(i)
		default:
			out[i] = fmt.Sprint(v.Value(i))
		}
	}
	return out, nil
}

// String renders the table as aligned text (for CLI output and debugging).
func (t *Table) String() string {
	var b strings.Builder
	widths := make([]int, len(t.schema))
	rows := make([][]string, t.NumRows())
	for j, c := range t.schema {
		widths[j] = len(c.Name)
	}
	for i := 0; i < t.NumRows(); i++ {
		rows[i] = make([]string, len(t.cols))
		for j, c := range t.cols {
			s := "NULL"
			if !c.IsNull(i) {
				switch c.Type() {
				case Float64:
					s = fmt.Sprintf("%.6g", c.Float64s()[i])
				default:
					s = fmt.Sprint(c.Value(i))
				}
			}
			rows[i][j] = s
			if len(s) > widths[j] {
				widths[j] = len(s)
			}
		}
	}
	for j, c := range t.schema {
		if j > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%-*s", widths[j], c.Name)
	}
	b.WriteByte('\n')
	for _, r := range rows {
		for j, s := range r {
			if j > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[j], s)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ByteSize estimates the payload bytes across all columns (see
// Vector.ByteSize); the profiling tree uses it to approximate how much an
// operator materialized.
func (t *Table) ByteSize() int64 {
	var b int64
	for _, c := range t.cols {
		b += c.ByteSize()
	}
	return b
}
