package spill

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestRoundTripAllKinds(t *testing.T) {
	dir, err := NewDir(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer dir.Cleanup()

	path := dir.RunPath("test")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}

	nan := math.Float64frombits(0x7ff8000000000001) // non-canonical payload
	b1 := &Batch{Rows: 4, Cols: []Column{
		{Kind: F64, F64: []float64{1.5, nan, math.Inf(-1), math.Copysign(0, -1)}},
		{Kind: I64, I64: []int64{-7, 0, math.MaxInt64, math.MinInt64}},
		{Kind: Bool, B: []bool{true, false, true, true}},
		{Kind: Str, Codes: []int32{0, 1, 0, 2}, Dict: []string{"alpha", "", "βeta"}},
	}}
	b1.Cols[0].SetNull(1, 4)
	b1.Cols[3].SetNull(3, 4)
	if err := w.Write(b1); err != nil {
		t.Fatal(err)
	}
	b2 := &Batch{Rows: 2, Cols: []Column{
		{Kind: F64, F64: []float64{2, 3}},
		{Kind: I64, I64: []int64{8, 9}},
		{Kind: Bool, B: []bool{false, false}},
		{Kind: Str, Codes: []int32{0, 0}, Dict: []string{"only"}},
	}}
	if err := w.Write(b2); err != nil {
		t.Fatal(err)
	}
	if w.Bytes() <= 0 {
		t.Fatalf("Bytes() = %d, want > 0", w.Bytes())
	}
	wantBytes := w.Bytes()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != wantBytes {
		t.Fatalf("file size %v (err %v), want %d", st, err, wantBytes)
	}

	r, err := NewReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	g1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if g1.Rows != 4 || len(g1.Cols) != 4 {
		t.Fatalf("batch1 shape %d×%d", g1.Rows, len(g1.Cols))
	}
	for i, want := range b1.Cols[0].F64 {
		if math.Float64bits(g1.Cols[0].F64[i]) != math.Float64bits(want) {
			t.Fatalf("f64[%d] bits differ: %x vs %x", i,
				math.Float64bits(g1.Cols[0].F64[i]), math.Float64bits(want))
		}
	}
	for i, want := range b1.Cols[1].I64 {
		if g1.Cols[1].I64[i] != want {
			t.Fatalf("i64[%d] = %d, want %d", i, g1.Cols[1].I64[i], want)
		}
	}
	for i, want := range b1.Cols[2].B {
		if g1.Cols[2].B[i] != want {
			t.Fatalf("bool[%d] = %v, want %v", i, g1.Cols[2].B[i], want)
		}
	}
	for i, want := range b1.Cols[3].Codes {
		if g1.Cols[3].Codes[i] != want {
			t.Fatalf("code[%d] = %d, want %d", i, g1.Cols[3].Codes[i], want)
		}
	}
	for i, want := range b1.Cols[3].Dict {
		if g1.Cols[3].Dict[i] != want {
			t.Fatalf("dict[%d] = %q, want %q", i, g1.Cols[3].Dict[i], want)
		}
	}
	if !g1.Cols[0].NullAt(1) || g1.Cols[0].NullAt(0) || g1.Cols[0].NullAt(2) {
		t.Fatalf("f64 null bitmap wrong: %v", g1.Cols[0].Nulls)
	}
	if !g1.Cols[3].NullAt(3) || g1.Cols[3].NullAt(0) {
		t.Fatalf("str null bitmap wrong: %v", g1.Cols[3].Nulls)
	}
	if g1.Cols[1].Nulls != nil {
		t.Fatalf("i64 column should have nil bitmap")
	}

	g2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if g2.Rows != 2 || g2.Cols[3].Dict[0] != "only" {
		t.Fatalf("batch2 mismatch: %+v", g2)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}

func TestDirCleanup(t *testing.T) {
	base := t.TempDir()
	dir, err := NewDir(base)
	if err != nil {
		t.Fatal(err)
	}
	p1 := dir.RunPath("a")
	p2 := dir.RunPath("b")
	if p1 == p2 {
		t.Fatalf("RunPath not unique: %s", p1)
	}
	for _, p := range []string{p1, p2} {
		w, err := NewWriter(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(&Batch{Rows: 1, Cols: []Column{{Kind: I64, I64: []int64{1}}}}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	dir.Remove(p1)
	if _, err := os.Stat(p1); !os.IsNotExist(err) {
		t.Fatalf("Remove left %s in place", p1)
	}
	if err := dir.Cleanup(); err != nil {
		t.Fatal(err)
	}
	if err := dir.Cleanup(); err != nil { // idempotent
		t.Fatal(err)
	}
	ents, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("cleanup left entries: %v", ents)
	}
	if _, err := os.Stat(filepath.Dir(p2)); !os.IsNotExist(err) {
		t.Fatalf("spill dir still present after Cleanup")
	}
}

func TestEmptyBatchAndZeroRuns(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.col")
	w, err := NewWriter(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&Batch{Rows: 0, Cols: []Column{{Kind: F64}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	b, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if b.Rows != 0 || len(b.Cols) != 1 {
		t.Fatalf("empty batch shape %d×%d", b.Rows, len(b.Cols))
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}
