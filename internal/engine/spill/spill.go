// Package spill implements the engine's on-disk run-file format: the
// append-only columnar batches that memory-bounded operators (hash join,
// hash aggregate) write when a query's memory budget is exceeded, and read
// back partition-wise. A run file is a sequence of length-prefixed batches;
// each batch holds the typed column payloads of a row range plus packed
// null bitmaps. The format is little-endian, self-describing per batch,
// and append-only — a writer never seeks back, so runs can stream through
// an ordinary buffered file.
//
// The package is deliberately independent of the engine's Vector/Table
// types (the engine imports spill, never the reverse); the engine-side
// adapters live in internal/engine/spillio.go.
package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// floatBits/floatFromBits round floats through their IEEE bit patterns so
// NaN payloads and signed zeros survive a spill byte-for-byte.
func floatBits(x float64) uint64     { return math.Float64bits(x) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Kind enumerates the column payload types a run file can carry. They
// mirror the engine's column types.
type Kind uint8

// Column payload kinds.
const (
	F64 Kind = iota
	I64
	Bool
	Str
)

// Column is one column of a batch: exactly one payload slice is populated,
// per Kind. Str columns are dictionary-encoded per batch: Codes index into
// Dict. Nulls, when non-nil, is a packed bitmap (bit i set = row i NULL).
type Column struct {
	Kind  Kind
	F64   []float64
	I64   []int64
	B     []bool
	Codes []int32
	Dict  []string
	Nulls []byte
}

// Batch is one row range of spilled columns.
type Batch struct {
	Rows int
	Cols []Column
}

// NullAt reports whether row i of the column is NULL.
func (c *Column) NullAt(i int) bool {
	if c.Nulls == nil {
		return false
	}
	return c.Nulls[i/8]&(1<<(uint(i)%8)) != 0
}

// SetNull marks row i NULL in a bitmap sized for n rows (allocating it on
// first use).
func (c *Column) SetNull(i, n int) {
	if c.Nulls == nil {
		c.Nulls = make([]byte, (n+7)/8)
	}
	c.Nulls[i/8] |= 1 << (uint(i) % 8)
}

// bufferSize is the bufio size for run readers and writers. It is small on
// purpose: spilling queries are already over their memory budget, and the
// accountant charges one buffer per open run.
const bufferSize = 64 << 10

// BufferSize returns the per-run buffered-I/O footprint, so the engine's
// memory accountant can charge open readers and writers.
func BufferSize() int64 { return bufferSize }

// Writer appends batches to one run file.
type Writer struct {
	f       *os.File
	w       *bufio.Writer
	bytes   int64
	scratch []byte
}

// NewWriter creates (truncating) the run file at path.
func NewWriter(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o600)
	if err != nil {
		return nil, err
	}
	return &Writer{f: f, w: bufio.NewWriterSize(f, bufferSize)}, nil
}

// Bytes returns the total encoded bytes written so far.
func (w *Writer) Bytes() int64 { return w.bytes }

func (w *Writer) u32(x uint32) {
	w.scratch = binary.LittleEndian.AppendUint32(w.scratch, x)
}

func (w *Writer) u64(x uint64) {
	w.scratch = binary.LittleEndian.AppendUint64(w.scratch, x)
}

// Write appends one batch. Layout:
//
//	u32 rows | u32 ncols | per column:
//	  u8 kind | u8 hasNulls | [nulls bitmap] | payload
//
// payloads: F64/I64 are 8*rows bytes, Bool is rows bytes, Str is
// u32 dictLen, dictLen × (u32 len + bytes), then 4*rows code bytes.
func (w *Writer) Write(b *Batch) error {
	w.scratch = w.scratch[:0]
	w.u32(uint32(b.Rows))
	w.u32(uint32(len(b.Cols)))
	for ci := range b.Cols {
		c := &b.Cols[ci]
		hasNulls := byte(0)
		if c.Nulls != nil {
			hasNulls = 1
		}
		w.scratch = append(w.scratch, byte(c.Kind), hasNulls)
		if hasNulls == 1 {
			want := (b.Rows + 7) / 8
			if len(c.Nulls) < want {
				return fmt.Errorf("spill: null bitmap too short: %d < %d", len(c.Nulls), want)
			}
			w.scratch = append(w.scratch, c.Nulls[:want]...)
		}
		switch c.Kind {
		case F64:
			for _, x := range c.F64[:b.Rows] {
				w.u64(floatBits(x))
			}
		case I64:
			for _, x := range c.I64[:b.Rows] {
				w.u64(uint64(x))
			}
		case Bool:
			for _, x := range c.B[:b.Rows] {
				if x {
					w.scratch = append(w.scratch, 1)
				} else {
					w.scratch = append(w.scratch, 0)
				}
			}
		case Str:
			w.u32(uint32(len(c.Dict)))
			for _, s := range c.Dict {
				w.u32(uint32(len(s)))
				w.scratch = append(w.scratch, s...)
			}
			for _, code := range c.Codes[:b.Rows] {
				w.u32(uint32(code))
			}
		default:
			return fmt.Errorf("spill: unknown column kind %d", c.Kind)
		}
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(w.scratch)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		return err
	}
	w.bytes += int64(len(hdr)) + int64(len(w.scratch))
	return nil
}

// Close flushes and closes the run file.
func (w *Writer) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Reader streams the batches of one run file back in write order.
type Reader struct {
	f       *os.File
	r       *bufio.Reader
	scratch []byte
}

// NewReader opens the run file at path.
func NewReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &Reader{f: f, r: bufio.NewReaderSize(f, bufferSize)}, nil
}

// Next decodes the next batch, returning io.EOF after the last one.
func (r *Reader) Next() (*Batch, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err // io.EOF at a clean batch boundary
	}
	size := int(binary.LittleEndian.Uint32(hdr[:]))
	if cap(r.scratch) < size {
		r.scratch = make([]byte, size)
	}
	buf := r.scratch[:size]
	if _, err := io.ReadFull(r.r, buf); err != nil {
		return nil, fmt.Errorf("spill: truncated batch: %w", err)
	}
	d := decoder{buf: buf}
	rows := int(d.u32())
	ncols := int(d.u32())
	b := &Batch{Rows: rows, Cols: make([]Column, ncols)}
	for ci := 0; ci < ncols; ci++ {
		c := &b.Cols[ci]
		c.Kind = Kind(d.u8())
		hasNulls := d.u8()
		if hasNulls == 1 {
			c.Nulls = append([]byte(nil), d.bytes((rows+7)/8)...)
		}
		switch c.Kind {
		case F64:
			c.F64 = make([]float64, rows)
			for i := range c.F64 {
				c.F64[i] = floatFromBits(d.u64())
			}
		case I64:
			c.I64 = make([]int64, rows)
			for i := range c.I64 {
				c.I64[i] = int64(d.u64())
			}
		case Bool:
			c.B = make([]bool, rows)
			for i, x := range d.bytes(rows) {
				c.B[i] = x != 0
			}
		case Str:
			dictLen := int(d.u32())
			c.Dict = make([]string, dictLen)
			for i := range c.Dict {
				c.Dict[i] = string(d.bytes(int(d.u32())))
			}
			c.Codes = make([]int32, rows)
			for i := range c.Codes {
				c.Codes[i] = int32(d.u32())
			}
		default:
			return nil, fmt.Errorf("spill: unknown column kind %d", c.Kind)
		}
		if d.err != nil {
			return nil, d.err
		}
	}
	return b, nil
}

// Close closes the run file.
func (r *Reader) Close() error { return r.f.Close() }

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil || d.off+n > len(d.buf) {
		if d.err == nil {
			d.err = fmt.Errorf("spill: corrupt batch (short read)")
		}
		return make([]byte, n)
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *decoder) u8() byte    { return d.bytes(1)[0] }
func (d *decoder) u32() uint32 { return binary.LittleEndian.Uint32(d.bytes(4)) }
func (d *decoder) u64() uint64 { return binary.LittleEndian.Uint64(d.bytes(8)) }

// Dir manages one query's spill directory: a MkdirTemp under the
// configured base, handing out unique run-file paths and removing
// everything (every run, spilled or leaked) on Cleanup. Safe for
// concurrent use.
type Dir struct {
	mu   sync.Mutex
	path string
	seq  atomic.Int64
}

// NewDir creates a fresh private spill directory under base.
func NewDir(base string) (*Dir, error) {
	if err := os.MkdirAll(base, 0o700); err != nil {
		return nil, err
	}
	p, err := os.MkdirTemp(base, "mipspill-")
	if err != nil {
		return nil, err
	}
	return &Dir{path: p}, nil
}

// Path returns the directory path.
func (d *Dir) Path() string { return d.path }

// RunPath returns a fresh unique run-file path inside the directory. The
// label is embedded for debuggability only.
func (d *Dir) RunPath(label string) string {
	return filepath.Join(d.path, fmt.Sprintf("run-%04d-%s.col", d.seq.Add(1), label))
}

// Remove deletes one run file (partition fully consumed); missing files
// are not an error.
func (d *Dir) Remove(path string) {
	os.Remove(path)
}

// Cleanup removes the directory and every run inside it. Idempotent.
func (d *Dir) Cleanup() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.path == "" {
		return nil
	}
	err := os.RemoveAll(d.path)
	d.path = ""
	return err
}
