package engine

import (
	"fmt"
	"math"
	"runtime"
	"strings"
	"testing"
)

// Parallel ORDER BY equivalence: the per-morsel sort + pairwise merge must
// produce bit-identical output to the serial stable sort at every
// parallelism degree, including under NaN, ±Inf, negative zero, and NULL
// keys (compareRows totalizes the order: NULLs first, NaN above every
// number, NaN == NaN).

// buildSortFixture registers a table whose sort keys hit every awkward
// float and NULL case, with heavy duplication so tie-breaking is exercised.
func buildSortFixture(t *testing.T, db *DB, rows int) {
	t.Helper()
	tab := NewTable(Schema{
		{Name: "id", Type: Int64},
		{Name: "x", Type: Float64},
		{Name: "s", Type: String},
	})
	seed := uint64(99)
	next := func() uint64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return seed >> 11
	}
	for i := 0; i < rows; i++ {
		var x any = float64(next()%997) / 31.0
		switch i % 37 {
		case 0:
			x = math.NaN()
		case 5:
			x = math.Inf(1)
		case 11:
			x = math.Inf(-1)
		case 17:
			x = math.Copysign(0, -1) // -0.0 sorts equal to +0.0; bits must survive
		case 23:
			x = 0.0
		}
		if i%13 == 0 {
			x = nil
		}
		var s any = fmt.Sprintf("g%d", next()%7)
		if i%17 == 0 {
			s = nil
		}
		if err := tab.AppendRow(int64(i), x, s); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable("st", tab)
}

func TestParallelSortEquivalence(t *testing.T) {
	queries := []string{
		`SELECT id, x, s FROM st ORDER BY x`,
		`SELECT id, x, s FROM st ORDER BY x DESC`,
		`SELECT id, x, s FROM st ORDER BY s, x DESC`,
		`SELECT x, s FROM st ORDER BY s DESC, x`,
		`SELECT id, x FROM st ORDER BY x LIMIT 100`,
		`SELECT s, avg(x) AS m, count(*) AS n FROM st GROUP BY s ORDER BY m DESC, s`,
	}
	degrees := []int{1, 2, 4, runtime.NumCPU()}
	dbs := make([]*DB, len(degrees))
	for i, d := range degrees {
		// Small morsels force many runs (and several merge rounds) even at
		// this fixture size.
		dbs[i] = NewDB(WithParallelism(d), WithMorselSize(256))
		buildSortFixture(t, dbs[i], 5000)
	}
	for _, sql := range queries {
		base, err := dbs[0].Query(sql)
		if err != nil {
			t.Fatalf("%s: serial: %v", sql, err)
		}
		for i := 1; i < len(dbs); i++ {
			got, err := dbs[i].Query(sql)
			if err != nil {
				t.Fatalf("%s: par%d: %v", sql, degrees[i], err)
			}
			tablesIdentical(t, sql, base, got, "par1", fmt.Sprintf("par%d", degrees[i]))
		}
	}
}

func TestParallelSortNaNAndNullPlacement(t *testing.T) {
	db := NewDB(WithParallelism(4), WithMorselSize(64))
	buildSortFixture(t, db, 1000)
	res, err := db.Query(`SELECT x FROM st ORDER BY x`)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Col(0)
	// Ascending total order: NULL block, then numbers (-Inf..+Inf), then NaN.
	zone := 0 // 0 = nulls, 1 = numbers, 2 = nans
	prev := math.Inf(-1)
	for i := 0; i < v.Len(); i++ {
		switch {
		case v.IsNull(i):
			if zone != 0 {
				t.Fatalf("row %d: NULL after non-NULL", i)
			}
		case math.IsNaN(v.Float64s()[i]):
			zone = 2
		default:
			if zone == 2 {
				t.Fatalf("row %d: number after NaN block", i)
			}
			if zone == 0 {
				zone = 1
				prev = math.Inf(-1)
			}
			if x := v.Float64s()[i]; x < prev {
				t.Fatalf("row %d: %v < previous %v", i, x, prev)
			} else {
				prev = x
			}
		}
	}
}

func TestParallelSortExplainDegree(t *testing.T) {
	db := NewDB(WithParallelism(4), WithMorselSize(128))
	buildSortFixture(t, db, 2000)
	res, err := db.Query(`EXPLAIN ANALYZE SELECT x FROM st ORDER BY x`)
	if err != nil {
		t.Fatal(err)
	}
	var plan []string
	for i := 0; i < res.NumRows(); i++ {
		plan = append(plan, res.Col(0).StringAt(i))
	}
	found := false
	for _, line := range plan {
		if strings.Contains(line, "order") && strings.Contains(line, "par=4") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no sort node with par=4 in plan:\n%s", strings.Join(plan, "\n"))
	}
}
