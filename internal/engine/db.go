package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DB is the engine's catalog: named base tables plus registered merge
// tables (the federation views). All methods are safe for concurrent use.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]*Table
	merges  map[string]*MergeTable
	queries atomic.Int64
	ec      atomic.Pointer[ExecContext]

	// id scopes this DB's plan-cache keys; schemaVer bumps on every DDL
	// (CREATE/DROP/RegisterTable/RegisterMerge), making older cached plans
	// unreachable. dataVer additionally bumps on DML, giving callers (the
	// federation worker) a cheap monotonic data-version stamp for result
	// caching.
	id        uint64
	schemaVer atomic.Uint64
	dataVer   atomic.Uint64
	// blindVer counts the dataVer advances no row-count diff can attribute:
	// explicit BumpDataVersion calls and DDL (RegisterTable can swap a
	// table wholesale without changing its row count). Result caches that
	// attribute changes by diffing per-dataset counts treat any advance
	// here as "anything may have changed".
	blindVer atomic.Uint64
	plans    *PlanCache
}

// QueryCount returns the number of statements executed so far (scans,
// DDL, DML alike); the UDF-fusion tests and benchmarks use it to assert
// the single-scan property.
func (db *DB) QueryCount() int64 { return db.queries.Load() }

// Option configures a DB at construction.
type Option func(*DB)

// WithParallelism sets the DB's execution parallelism degree: how many
// morsels its queries process concurrently (1 = serial). Values < 1 keep
// the process default (runtime.NumCPU, or SetDefaultParallelism).
func WithParallelism(n int) Option {
	return func(db *DB) {
		if n >= 1 {
			db.SetParallelism(n)
		}
	}
}

// WithMorselSize sets the row-range size queries are split into. The size
// is clamped to ≥ 64 and rounded up to a multiple of 64 so morsel-sliced
// validity bitmaps stay word-aligned. Mostly a testing knob: results are
// bit-identical across parallelism degrees at a FIXED morsel size, but a
// different morsel size changes float summation order.
func WithMorselSize(n int) Option {
	return func(db *DB) {
		cur := *db.ec.Load()
		cur.MorselSize = roundMorselSize(n)
		db.ec.Store(&cur)
	}
}

func roundMorselSize(n int) int {
	if n < 64 {
		n = 64
	}
	return (n + 63) / 64 * 64
}

// WithQueryDeadline caps every statement's wall time: a query running
// longer is cancelled through the governance path with verdict "deadline".
// Zero or negative keeps queries unbounded.
func WithQueryDeadline(d time.Duration) Option {
	return func(db *DB) {
		if d > 0 {
			cur := *db.ec.Load()
			cur.QueryDeadline = d
			db.ec.Store(&cur)
		}
	}
}

// WithQueryMemLimit caps a statement's accounted live bytes: a query whose
// operators charge more is cancelled with verdict "mem-limit". Zero or
// negative keeps queries unbounded.
func WithQueryMemLimit(n int64) Option {
	return func(db *DB) {
		if n > 0 {
			cur := *db.ec.Load()
			cur.QueryMemLimit = n
			db.ec.Store(&cur)
		}
	}
}

// WithSpillDir sets the base directory for spill run files. Combined with
// WithQueryMemLimit it changes the limit's meaning from a hard ceiling to
// a soft budget: hash join and hash aggregate partition their state and
// shed partitions to temp files past the budget instead of the statement
// being cancelled with ErrQueryMemLimit. Empty (the default) keeps the
// hard-ceiling behavior.
func WithSpillDir(dir string) Option {
	return func(db *DB) {
		cur := *db.ec.Load()
		cur.SpillDir = dir
		db.ec.Store(&cur)
	}
}

// WithAccounting toggles per-query governance (registry registration,
// cancellation contexts, memory accounting). It defaults to on; the
// benchmark harness measures the off path to pin the accounting overhead.
func WithAccounting(enabled bool) Option {
	return func(db *DB) {
		cur := *db.ec.Load()
		cur.NoAccounting = !enabled
		db.ec.Store(&cur)
	}
}

// WithJoinReorder toggles greedy join reordering (on by default). Off pins
// multi-way joins to their written order; the planner's equivalence tests
// compare the two paths for bit-identical results.
func WithJoinReorder(enabled bool) Option {
	return func(db *DB) {
		cur := *db.ec.Load()
		cur.NoJoinReorder = !enabled
		db.ec.Store(&cur)
	}
}

// WithPlanCache points the DB at an explicit plan cache (nil disables
// caching). The default is the process-wide DefaultPlanCache.
func WithPlanCache(pc *PlanCache) Option {
	return func(db *DB) { db.plans = pc }
}

// WithPlanCacheSize gives the DB a private plan cache of the given
// capacity; n <= 0 disables plan caching for this DB.
func WithPlanCacheSize(n int) Option {
	return func(db *DB) { db.plans = NewPlanCache(n) }
}

// WithPlanCacheIdentity replaces the DB's process-unique plan-cache key
// namespace with a shared token from NewPlanCacheIdentity. Only safe when
// every DB using the token applies the identical DDL sequence, so that an
// equal (identity, schema version) pair implies an identical catalog
// shape; zero is ignored.
func WithPlanCacheIdentity(id uint64) Option {
	return func(db *DB) {
		if id != 0 {
			db.id = id
		}
	}
}

// NewDB returns an empty database.
func NewDB(opts ...Option) *DB {
	db := &DB{
		tables: make(map[string]*Table),
		merges: make(map[string]*MergeTable),
		id:     dbSeq.Add(1),
		plans:  DefaultPlanCache,
	}
	db.ec.Store(&ExecContext{Parallelism: DefaultParallelism(), MorselSize: DefaultMorselSize})
	for _, o := range opts {
		o(db)
	}
	return db
}

// PlanCache returns the cache this DB resolves statements through (nil
// when disabled).
func (db *DB) PlanCache() *PlanCache { return db.plans }

// DataVersion is a monotonic counter covering every mutation of this DB's
// catalog or data: DDL, INSERT, DELETE, and explicit BumpDataVersion calls.
// Equal values mean no statement-visible change happened in between.
func (db *DB) DataVersion() uint64 { return db.dataVer.Load() }

// BumpDataVersion advances the data-version counter. Loaders that mutate a
// registered *Table in place (bypassing SQL) call this so result caches
// keyed on the version never serve stale data.
func (db *DB) BumpDataVersion() {
	db.blindVer.Add(1)
	db.dataVer.Add(1)
}

// DataBumps counts the data-version advances that cannot be attributed to
// a row-count-visible DML statement: explicit BumpDataVersion calls and
// DDL. While it holds still, every DataVersion advance came from an
// INSERT or DELETE, whose effects are visible in per-dataset row counts.
func (db *DB) DataBumps() uint64 { return db.blindVer.Load() }

// bumpSchema records a DDL change: cached plans become unreachable and the
// data version advances too (a schema change is also a data change).
func (db *DB) bumpSchema() {
	db.schemaVer.Add(1)
	db.blindVer.Add(1)
	db.dataVer.Add(1)
}

// SetParallelism changes the DB's parallelism degree at runtime (n < 1 is
// ignored). It also grows the shared worker pool to serve the new degree.
func (db *DB) SetParallelism(n int) {
	if n < 1 {
		return
	}
	cur := *db.ec.Load()
	cur.Parallelism = n
	db.ec.Store(&cur)
	enginePool.grow(n - 1)
}

// Parallelism returns the DB's configured parallelism degree.
func (db *DB) Parallelism() int { return db.ec.Load().Parallelism }

// execCtx returns the DB's execution context (immutable snapshot).
func (db *DB) execCtx() *ExecContext { return db.ec.Load() }

// CreateTable registers an empty table with the given schema.
func (db *DB) CreateTable(name string, schema Schema) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		return nil, fmt.Errorf("engine: table %q already exists", name)
	}
	if _, ok := db.merges[key]; ok {
		return nil, fmt.Errorf("engine: merge table %q already exists", name)
	}
	t := NewTable(schema)
	db.tables[key] = t
	engTables.Inc()
	db.bumpSchema()
	return t, nil
}

// RegisterTable installs an existing table under the given name, replacing
// any previous table (used by the ETL loaders).
func (db *DB) RegisterTable(name string, t *Table) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; !ok {
		engTables.Inc()
	}
	db.tables[key] = t
	db.bumpSchema()
}

// Table returns the named base table, or nil.
func (db *DB) Table(name string) *Table {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.tables[strings.ToLower(name)]
}

// DropTable removes a base or merge table.
func (db *DB) DropTable(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := db.tables[key]; ok {
		delete(db.tables, key)
		engTables.Dec()
		db.bumpSchema()
		return true
	}
	if _, ok := db.merges[key]; ok {
		delete(db.merges, key)
		db.bumpSchema()
		return true
	}
	return false
}

// RegisterMerge installs a merge table: a non-materialized UNION ALL view
// over remote parts, MonetDB-style. Queries against it push partial
// aggregates down to the parts where possible.
func (db *DB) RegisterMerge(name string, m *MergeTable) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.merges[strings.ToLower(name)] = m
	db.bumpSchema()
}

// Merge returns the named merge table, or nil.
func (db *DB) Merge(name string) *MergeTable {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.merges[strings.ToLower(name)]
}

// TableNames lists base tables, sorted.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for n := range db.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Query parses and executes a single SQL statement and returns its result
// table (nil for DDL/DML statements).
func (db *DB) Query(sql string) (*Table, error) {
	t, _, err := db.QueryWithStats(sql)
	return t, err
}

// QueryCtx is Query under a caller-supplied context: cancelling ctx aborts
// the statement at the next morsel boundary with verdict "cancelled".
func (db *DB) QueryCtx(ctx context.Context, sql string) (*Table, error) {
	t, _, err := db.QueryWithStatsCtx(ctx, sql)
	return t, err
}

// QueryWithStats executes a statement and additionally returns its
// execution statistics (rows scanned, vectors, per-operator nanos). The
// statement is always folded into the engine metrics; callers that want
// the stats on a trace span use this form.
func (db *DB) QueryWithStats(sql string) (*Table, QueryStats, error) {
	return db.QueryWithStatsCtx(context.Background(), sql)
}

// QueryWithStatsCtx is QueryWithStats under a caller-supplied context. The
// statement registers in the active-query registry, runs under a derived
// cancellation context (caller ctx + optional deadline + optional memory
// ceiling), and records its verdict on the returned stats.
func (db *DB) QueryWithStatsCtx(ctx context.Context, sql string) (*Table, QueryStats, error) {
	db.queries.Add(1)
	var qs QueryStats
	start := time.Now()
	st, entry, hit, err := db.parseCached(sql)
	if err != nil {
		engQueryErrors.Inc()
		return nil, qs, err
	}
	qs.CacheHit = hit
	ec, finish := db.beginQuery(ctx, sql, &qs)
	ec.plan = entry
	t, err := db.run(st, &qs, ec)
	elapsed := time.Since(start)
	finish(err)
	qs.publish(elapsed.Seconds())
	if err != nil {
		engQueryErrors.Inc()
	}
	DefaultSlowLog.observe(sql, elapsed, &qs, err)
	return t, qs, err
}

// beginQuery derives the statement's ExecContext from the DB snapshot and
// enrolls it in the governance layer: cancellation context (with optional
// deadline), memory accountant (with optional ceiling), and a registry
// handle. The returned finish must be called exactly once when the
// statement ends; it deregisters the query, settles the verdict, and
// releases context resources.
func (db *DB) beginQuery(ctx context.Context, sql string, qs *QueryStats) (*ExecContext, func(error)) {
	ecq := *db.ec.Load()
	if ctx == nil {
		ctx = context.Background()
	}
	if ecq.NoAccounting {
		if ctx.Done() != nil {
			ecq.Ctx = ctx
		}
		return &ecq, func(error) {}
	}
	cctx, cancel := context.WithCancelCause(ctx)
	var stopDeadline context.CancelFunc
	if d := ecq.QueryDeadline; d > 0 {
		cctx, stopDeadline = context.WithDeadlineCause(cctx, time.Now().Add(d), ErrQueryDeadline)
	}
	acct := &MemAccountant{limit: ecq.QueryMemLimit}
	if ecq.SpillDir != "" && ecq.QueryMemLimit > 0 {
		// Soft budget: spill-aware operators poll acct.OverLimit() and
		// shed partitions to disk instead of the query being killed.
		ecq.spill = &spillSession{base: ecq.SpillDir}
	} else {
		acct.onExceed = func() { cancel(ErrQueryMemLimit) }
	}
	h := Queries.register(sql, queryAttribution(ctx), cancel, acct)
	ecq.Ctx = cctx
	ecq.Acct = acct
	ecq.query = h
	if qs != nil {
		qs.acct = acct
		qs.handle = h
	}
	return &ecq, func(err error) {
		Queries.finish(h)
		if ecq.spill != nil {
			ecq.spill.cleanup()
		}
		v := verdictFor(err)
		if qs != nil {
			qs.MemPeakBytes = acct.Peak()
			qs.SpillBytes = h.spillBytes.Load()
			qs.SpillPartitions = h.spillParts.Load()
			qs.Verdict = v
		}
		queryTerminated(v)
		meterQuery(h, qs, v, time.Since(h.start))
		if stopDeadline != nil {
			stopDeadline()
		}
		cancel(nil)
	}
}

// Run executes a parsed statement. Like Query it counts the statement and
// folds its stats into the engine metrics (it used to bypass both, leaving
// pre-parsed statements unmetered); it cannot feed the slow-query log
// because there is no SQL text to record.
func (db *DB) Run(st Statement) (*Table, error) {
	db.queries.Add(1)
	var qs QueryStats
	start := time.Now()
	ec, finish := db.beginQuery(context.Background(), "(prepared statement)", &qs)
	t, err := db.run(st, &qs, ec)
	finish(err)
	qs.publish(time.Since(start).Seconds())
	if err != nil {
		engQueryErrors.Inc()
	}
	return t, err
}

func (db *DB) run(st Statement, qs *QueryStats, ec *ExecContext) (*Table, error) {
	switch s := st.(type) {
	case *ExplainStmt:
		return db.runExplain(s, qs, ec)
	case *SelectStmt:
		if m := db.Merge(s.From); m != nil {
			if len(s.Joins) > 0 {
				return nil, fmt.Errorf("engine: JOIN over merge tables is not supported")
			}
			return m.execSelect(ec, s, qs)
		}
		if len(s.Joins) > 0 || s.FromAlias != "" {
			// Grouped aggregate over one join whose materialized result
			// would blow the memory budget: stream the grace join's merged
			// output straight into the spilled aggregation instead.
			if out, handled, err := db.trySpillJoinAgg(ec, s, qs); handled || err != nil {
				return out, err
			}
			joined, residual, err := db.buildJoined(ec, s, qs)
			if err != nil {
				return nil, err
			}
			// The planner pushed single-table conjuncts below the joins;
			// only the residual reaches the statement's filter stage.
			local := *s
			local.Where = residual
			return execSelect(ec, &local, joined, qs)
		}
		t := db.Table(s.From)
		if t == nil {
			return nil, fmt.Errorf("engine: unknown table %q", s.From)
		}
		if qs != nil {
			qs.Root = scanPlanNode(s.From, t)
		}
		db.mu.RLock()
		defer db.mu.RUnlock()
		return execSelect(ec, s, t, qs)
	case *CreateTableStmt:
		_, err := db.CreateTable(s.Name, s.Schema)
		return nil, err
	case *InsertStmt:
		return nil, db.runInsert(s)
	case *DropTableStmt:
		if !db.DropTable(s.Name) && !s.IfExists {
			return nil, fmt.Errorf("engine: unknown table %q", s.Name)
		}
		return nil, nil
	case *DeleteStmt:
		return nil, db.runDelete(s)
	}
	return nil, fmt.Errorf("engine: unsupported statement %T", st)
}

// runExplain serves EXPLAIN and EXPLAIN ANALYZE. Plain EXPLAIN predicts
// the plan shape from the catalog without executing; ANALYZE executes the
// inner statement (sharing the caller's QueryStats, so the statement still
// publishes exactly once) and renders the measured tree. Either way the
// result is a one-column table of plan lines.
func (db *DB) runExplain(s *ExplainStmt, qs *QueryStats, ec *ExecContext) (*Table, error) {
	if s.Analyze {
		var local QueryStats
		if qs == nil {
			qs = &local
		}
		// Surface (and use) the plan cache for the inner SELECT: EXPLAIN
		// parses as one ExplainStmt, so the inner statement bypassed
		// parseCached. A peek neither inserts nor reorders the LRU beyond the
		// hit itself; the trailing cache= line reports the outcome.
		cacheLine := ""
		if sel, ok := s.Stmt.(*SelectStmt); ok && ec != nil {
			if e, hit := db.lookupSelect(sel); hit {
				ec.plan = e
				qs.CacheHit = true
				cacheLine = "cache=hit"
			} else {
				cacheLine = "cache=miss"
			}
		}
		if _, err := db.run(s.Stmt, qs, ec); err != nil {
			return nil, err
		}
		t, err := planTable(qs.Root, true)
		if err != nil || cacheLine == "" {
			return t, err
		}
		if err := t.AppendRow(cacheLine); err != nil {
			return nil, err
		}
		return t, nil
	}
	plan, err := db.explainPlan(s.Stmt)
	if err != nil {
		return nil, err
	}
	if qs != nil {
		qs.Root = plan
	}
	return planTable(plan, false)
}

func (db *DB) runInsert(s *InsertStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[strings.ToLower(s.Name)]
	if t == nil {
		return fmt.Errorf("engine: unknown table %q", s.Name)
	}
	defer db.dataVer.Add(1)
	colIdx := make([]int, 0, len(t.schema))
	if len(s.Cols) == 0 {
		for i := range t.schema {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, c := range s.Cols {
			i := t.schema.ColIndex(c)
			if i < 0 {
				return fmt.Errorf("engine: unknown column %q", c)
			}
			colIdx = append(colIdx, i)
		}
	}
	for _, row := range s.Rows {
		if len(row) != len(colIdx) {
			return fmt.Errorf("engine: row has %d values, expected %d", len(row), len(colIdx))
		}
		full := make([]any, len(t.schema))
		for k, ci := range colIdx {
			full[ci] = row[k]
		}
		if err := t.AppendRow(full...); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) runDelete(s *DeleteStmt) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	t := db.tables[strings.ToLower(s.Name)]
	if t == nil {
		return fmt.Errorf("engine: unknown table %q", s.Name)
	}
	defer db.dataVer.Add(1)
	if s.Where == nil {
		db.tables[strings.ToLower(s.Name)] = NewTable(t.schema)
		return nil
	}
	sel, err := FilterSel(&Unary{Op: "NOT", X: wrapNullFalse(s.Where)}, t)
	if err != nil {
		return err
	}
	db.tables[strings.ToLower(s.Name)] = t.Gather(sel)
	return nil
}

// wrapNullFalse turns NULL predicate results into FALSE so that
// DELETE ... WHERE keeps rows whose predicate is NULL (SQL semantics: only
// rows where the predicate is TRUE are deleted).
func wrapNullFalse(e Expr) Expr {
	return &Call{Name: "coalesce", Args: []Expr{e, &Lit{Val: false}}}
}
