package engine

import (
	"fmt"
	"testing"
)

// planCacheDB builds a DB over the given private cache with a small table.
func planCacheDB(t *testing.T, pc *PlanCache) *DB {
	t.Helper()
	db := NewDB(WithPlanCache(pc))
	tab := NewTable(Schema{
		{Name: "x", Type: Float64},
		{Name: "k", Type: String},
	})
	for i := 0; i < 64; i++ {
		if err := tab.AppendRow(float64(i), fmt.Sprintf("k%d", i%4)); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable("t", tab)
	return db
}

func TestPlanCacheHitsAndAliases(t *testing.T) {
	pc := NewPlanCache(8)
	db := planCacheDB(t, pc)
	sql := `SELECT k, avg(x) AS m FROM t GROUP BY k ORDER BY k`

	for i := 0; i < 3; i++ {
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	s := pc.Stats()
	if s.Misses != 1 || s.Hits != 2 {
		t.Fatalf("after 3 identical queries: hits=%d misses=%d, want 2/1", s.Hits, s.Misses)
	}

	// A different spelling of the same statement parses once (a miss) but
	// reuses the canonical entry; its own raw text then hits directly.
	spelled := `SELECT k,  avg( x ) AS m FROM t GROUP BY k ORDER BY k`
	if _, err := db.Query(spelled); err != nil {
		t.Fatal(err)
	}
	if s = pc.Stats(); s.Misses != 2 {
		t.Fatalf("respelled statement should miss once, misses=%d", s.Misses)
	}
	if _, err := db.Query(spelled); err != nil {
		t.Fatal(err)
	}
	if s = pc.Stats(); s.Hits != 3 || s.Misses != 2 {
		t.Fatalf("respelled repeat should hit: hits=%d misses=%d, want 3/2", s.Hits, s.Misses)
	}
}

func TestPlanCacheSchemaChangeInvalidates(t *testing.T) {
	pc := NewPlanCache(8)
	db := planCacheDB(t, pc)
	sql := `SELECT count(*) AS n FROM t`

	for i := 0; i < 2; i++ {
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	if s := pc.Stats(); s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("warmup: hits=%d misses=%d", s.Hits, s.Misses)
	}

	// Any schema change (here: registering a new table) bumps the DB's
	// schema version, making every older key unreachable.
	other := NewTable(Schema{{Name: "y", Type: Float64}})
	db.RegisterTable("other", other)
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	if s := pc.Stats(); s.Misses != 2 {
		t.Fatalf("schema change should force a fresh plan, misses=%d want 2", s.Misses)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	pc := NewPlanCache(2)
	db := planCacheDB(t, pc)
	for _, sql := range []string{
		`SELECT count(*) AS n FROM t`,
		`SELECT avg(x) AS m FROM t`,
		`SELECT max(x) AS hi FROM t`,
	} {
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	if s := pc.Stats(); s.Entries > 2 {
		t.Fatalf("capacity 2 cache holds %d entries", s.Entries)
	}
	// The oldest statement was evicted: running it again is a miss.
	before := pc.Stats().Misses
	if _, err := db.Query(`SELECT count(*) AS n FROM t`); err != nil {
		t.Fatal(err)
	}
	if got := pc.Stats().Misses; got != before+1 {
		t.Fatalf("evicted statement should miss, misses %d -> %d", before, got)
	}
}

func TestPlanCacheQueryStatsFlag(t *testing.T) {
	pc := NewPlanCache(8)
	db := planCacheDB(t, pc)
	sql := `SELECT k, count(*) AS n FROM t GROUP BY k`

	_, qs, err := db.QueryWithStats(sql)
	if err != nil {
		t.Fatal(err)
	}
	if qs.CacheHit {
		t.Fatal("first execution must not report a cache hit")
	}
	_, qs, err = db.QueryWithStats(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !qs.CacheHit {
		t.Fatal("repeat execution should report CacheHit")
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := NewDB(WithPlanCache(nil))
	tab := NewTable(Schema{{Name: "x", Type: Float64}})
	if err := tab.AppendRow(1.5); err != nil {
		t.Fatal(err)
	}
	db.RegisterTable("t", tab)
	for i := 0; i < 2; i++ {
		res, err := db.Query(`SELECT sum(x) AS s FROM t`)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumRows() != 1 {
			t.Fatalf("rows = %d", res.NumRows())
		}
	}
}

func TestExplainAnalyzeCacheLine(t *testing.T) {
	pc := NewPlanCache(8)
	db := planCacheDB(t, pc)
	sql := `SELECT k, avg(x) AS m FROM t GROUP BY k`

	lastLine := func() string {
		res, err := db.Query(`EXPLAIN ANALYZE ` + sql)
		if err != nil {
			t.Fatal(err)
		}
		return res.Col(0).StringAt(res.NumRows() - 1)
	}
	if got := lastLine(); got != "cache=miss" {
		t.Fatalf("uncached EXPLAIN ANALYZE trailer = %q, want cache=miss", got)
	}
	// Plain execution populates the cache; ANALYZE then reports the hit
	// without inserting anything itself.
	if _, err := db.Query(sql); err != nil {
		t.Fatal(err)
	}
	if got := lastLine(); got != "cache=hit" {
		t.Fatalf("cached EXPLAIN ANALYZE trailer = %q, want cache=hit", got)
	}
}

func TestPlanCacheResultsUnchanged(t *testing.T) {
	// The same statements must produce identical tables with the cache on
	// and off — the cached statement is shared read-only and execution
	// must not depend on memoized planning state.
	cached := planCacheDB(t, NewPlanCache(8))
	plain := planCacheDB(t, nil)
	for _, sql := range []string{
		`SELECT k, avg(x) AS m, count(*) AS n FROM t GROUP BY k ORDER BY k`,
		`SELECT x FROM t WHERE x > 30 ORDER BY x DESC LIMIT 5`,
		`SELECT a.k, sum(b.x) AS s FROM t a JOIN t b ON a.k = b.k GROUP BY a.k ORDER BY a.k`,
	} {
		for i := 0; i < 2; i++ { // second round runs cached
			a, err := cached.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			b, err := plain.Query(sql)
			if err != nil {
				t.Fatal(err)
			}
			tablesIdentical(t, sql, a, b, "cached", "uncached")
		}
	}
	if s := cached.plans.Stats(); s.Hits == 0 {
		t.Fatal("cached DB never hit its plan cache")
	}
}
