package engine

import (
	"fmt"
	"strings"
	"time"
)

// Hash equi-joins. A SELECT with JOIN clauses first materializes the joined
// relation (qualified column names alias.col), then runs through the usual
// filter/aggregate/order pipeline. Equality conditions on columns drive the
// hash join; any residual ON conditions are applied as a post-join filter.

// buildJoined resolves the FROM table and folds every JOIN clause into one
// joined table. With qs attached it plants the scan/join subtree that
// execSelect's stages then chain on top of.
func (db *DB) buildJoined(st *SelectStmt, qs *QueryStats) (*Table, error) {
	if db.Merge(st.From) != nil {
		return nil, fmt.Errorf("engine: JOIN over merge tables is not supported")
	}
	base := db.Table(st.From)
	if base == nil {
		return nil, fmt.Errorf("engine: unknown table %q", st.From)
	}
	alias := st.FromAlias
	if alias == "" {
		alias = st.From
	}
	cur := qualifyTable(base, alias)
	var curNode *PlanNode
	if qs != nil {
		curNode = scanPlanNode(st.From, base)
	}
	for _, jc := range st.Joins {
		if db.Merge(jc.Table) != nil {
			return nil, fmt.Errorf("engine: JOIN over merge tables is not supported")
		}
		right := db.Table(jc.Table)
		if right == nil {
			return nil, fmt.Errorf("engine: unknown table %q", jc.Table)
		}
		ra := jc.Alias
		if ra == "" {
			ra = jc.Table
		}
		t0 := time.Now()
		joined, err := hashJoin(cur, qualifyTable(right, ra), jc)
		if err != nil {
			return nil, err
		}
		if qs != nil {
			nanos := time.Since(t0).Nanoseconds()
			qs.JoinNanos += nanos
			curNode = &PlanNode{
				Op:       "join",
				Detail:   joinDetail(jc),
				RowsIn:   cur.NumRows() + right.NumRows(),
				RowsOut:  joined.NumRows(),
				Batches:  joined.NumCols(),
				Nanos:    nanos,
				Bytes:    joined.ByteSize(),
				Children: []*PlanNode{curNode, scanPlanNode(jc.Table, right)},
			}
		}
		cur = joined
	}
	if qs != nil {
		qs.Root = curNode
	}
	return cur, nil
}

// qualifyTable renames every column to alias.col (vectors are shared, not
// copied).
func qualifyTable(t *Table, alias string) *Table {
	schema := make(Schema, len(t.Schema()))
	cols := make([]*Vector, len(schema))
	for i, c := range t.Schema() {
		schema[i] = ColumnDef{Name: alias + "." + c.Name, Type: c.Type}
		cols[i] = t.Col(i)
	}
	out, err := NewTableFromVectors(schema, cols)
	if err != nil {
		panic(err) // same shapes by construction
	}
	return out
}

// splitOn separates the ON expression into equi-join key pairs and a
// residual predicate.
func splitOn(on Expr, left, right *Table) (lk, rk []string, residual Expr, err error) {
	var conds []Expr
	var flatten func(e Expr)
	flatten = func(e Expr) {
		if b, ok := e.(*Binary); ok && b.Op == "AND" {
			flatten(b.L)
			flatten(b.R)
			return
		}
		conds = append(conds, e)
	}
	flatten(on)
	for _, c := range conds {
		b, ok := c.(*Binary)
		if ok && b.Op == "=" {
			lc, lok := b.L.(*ColRef)
			rc, rok := b.R.(*ColRef)
			if lok && rok {
				lIn, rIn := resolveSide(lc.Name, left, right), resolveSide(rc.Name, left, right)
				switch {
				case lIn == 1 && rIn == 2:
					lk = append(lk, lc.Name)
					rk = append(rk, rc.Name)
					continue
				case lIn == 2 && rIn == 1:
					lk = append(lk, rc.Name)
					rk = append(rk, lc.Name)
					continue
				}
			}
		}
		if residual == nil {
			residual = c
		} else {
			residual = &Binary{Op: "AND", L: residual, R: c}
		}
	}
	if len(lk) == 0 {
		return nil, nil, nil, fmt.Errorf("engine: JOIN requires at least one left=right equality in ON")
	}
	return lk, rk, residual, nil
}

// resolveSide reports which table a column name belongs to: 1=left,
// 2=right, 0=neither/ambiguous.
func resolveSide(name string, left, right *Table) int {
	inL := left.ColByName(name) != nil
	inR := right.ColByName(name) != nil
	switch {
	case inL && !inR:
		return 1
	case inR && !inL:
		return 2
	}
	return 0
}

// hashJoin performs the (inner or left-outer) equi-join.
func hashJoin(left, right *Table, jc JoinClause) (*Table, error) {
	lk, rk, residual, err := splitOn(jc.On, left, right)
	if err != nil {
		return nil, err
	}
	// Build side: hash the right table's key tuples.
	rKeyCols := make([]*Vector, len(rk))
	for i, n := range rk {
		rKeyCols[i] = right.ColByName(n)
	}
	lKeyCols := make([]*Vector, len(lk))
	for i, n := range lk {
		lKeyCols[i] = left.ColByName(n)
	}
	index := make(map[string][]int32, right.NumRows())
	var keyBuf strings.Builder
	keyOf := func(cols []*Vector, row int) (string, bool) {
		keyBuf.Reset()
		for _, c := range cols {
			if c.IsNull(row) {
				return "", false // SQL: NULL keys never match
			}
			fmt.Fprintf(&keyBuf, "%v|", c.Value(row))
		}
		return keyBuf.String(), true
	}
	for r := 0; r < right.NumRows(); r++ {
		if k, ok := keyOf(rKeyCols, r); ok {
			index[k] = append(index[k], int32(r))
		}
	}

	// Output schema: left columns then right columns (all qualified).
	schema := append(Schema{}, left.Schema()...)
	schema = append(schema, right.Schema()...)
	out := NewTable(schema)
	lw, rw := left.NumCols(), right.NumCols()
	row := make([]any, lw+rw)
	emit := func(lr int, rr int32) error {
		for j := 0; j < lw; j++ {
			row[j] = left.Col(j).Value(lr)
		}
		if rr < 0 {
			for j := 0; j < rw; j++ {
				row[lw+j] = nil
			}
		} else {
			for j := 0; j < rw; j++ {
				row[lw+j] = right.Col(j).Value(int(rr))
			}
		}
		return out.AppendRow(row...)
	}
	for lr := 0; lr < left.NumRows(); lr++ {
		matched := false
		if k, ok := keyOf(lKeyCols, lr); ok {
			for _, rr := range index[k] {
				if err := emit(lr, rr); err != nil {
					return nil, err
				}
				matched = true
			}
		}
		if !matched && jc.Left {
			if err := emit(lr, -1); err != nil {
				return nil, err
			}
		}
	}
	if residual != nil {
		sel, err := FilterSel(residual, out)
		if err != nil {
			return nil, err
		}
		// LEFT JOIN residual semantics simplified: residual filters the
		// joined rows (matching most practical uses of ON ... AND extra).
		out = out.Gather(sel)
	}
	return out, nil
}
