package engine

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// Hash equi-joins. A SELECT with JOIN clauses first materializes the joined
// relation (qualified column names alias.col), then runs through the usual
// filter/aggregate/order pipeline. Equality conditions on columns drive the
// hash join; any residual ON conditions are applied as a post-join filter.

// buildJoined plans the FROM/JOIN clause list and folds every JOIN clause
// into one joined table, executing in the planner's greedy order. It
// returns the joined table plus the residual WHERE (conjuncts the planner
// did not push below the joins) for the caller's filter stage. With qs
// attached it plants the scan/filter/join subtree that execSelect's stages
// then chain on top of.
//
// Reordered execution is provably identical to written order: written-order
// left-deep hash joins emit rows in lexicographic (base row, join-1 row,
// ..., join-k row) order, so tagging each input with a hidden rowid and
// sorting the reordered output by the written-order rowid tuple reproduces
// the written-order result bit for bit.
func (db *DB) buildJoined(ec *ExecContext, st *SelectStmt, qs *QueryStats) (*Table, Expr, error) {
	plan, err := db.planJoinsFor(ec, st, ec == nil || !ec.NoJoinReorder)
	if err != nil {
		return nil, nil, err
	}
	inputs := make([]*Table, len(plan.rels))
	nodes := make([]*PlanNode, len(plan.rels))
	for i, r := range plan.rels {
		qt := qualifyTable(r.table, r.alias)
		var node *PlanNode
		if qs != nil {
			node = scanPlanNode(r.name, r.table)
		}
		if r.pushed != nil {
			t0 := time.Now()
			fnode := &PlanNode{Op: "filter", Detail: "pushed " + r.pushed.String(), RowsIn: int64(qt.NumRows())}
			ec.setOperator("filter pushed " + r.pushed.String())
			sel, err := ec.filterSel(r.pushed, qt, fnode)
			if err != nil {
				return nil, nil, err
			}
			qt = ec.gather(qt, sel)
			if qs != nil {
				fnode.Nanos = time.Since(t0).Nanoseconds()
				fnode.RowsOut = int64(qt.NumRows())
				fnode.Batches = int64(qt.NumCols())
				fnode.Bytes = qt.ByteSize()
				fnode.Children = []*PlanNode{node}
				atomic.AddInt64(&qs.FilterNanos, fnode.Nanos)
				node = fnode
			}
		}
		if plan.reordered {
			qt = withRowID(qt, i)
		}
		inputs[i] = qt
		nodes[i] = node
	}
	cur, curNode := inputs[0], nodes[0]
	for _, ji := range plan.order {
		jc := st.Joins[ji]
		right := inputs[ji+1]
		t0 := time.Now()
		node := &PlanNode{Op: "join", Detail: joinDetail(jc)}
		ec.setOperator("join " + joinDetail(jc))
		joined, err := hashJoin(ec, cur, right, jc, node)
		if err != nil {
			return nil, nil, err
		}
		if qs != nil {
			nanos := time.Since(t0).Nanoseconds()
			atomic.AddInt64(&qs.JoinNanos, nanos)
			node.RowsIn = int64(cur.NumRows() + right.NumRows())
			node.RowsOut = int64(joined.NumRows())
			node.Batches = int64(joined.NumCols())
			node.Nanos = nanos
			node.Bytes = joined.ByteSize()
			node.Children = []*PlanNode{curNode, nodes[ji+1]}
			curNode = node
		}
		cur = joined
	}
	if plan.reordered {
		t0 := time.Now()
		cur, err = restoreWrittenOrder(ec, cur, plan)
		if err != nil {
			return nil, nil, err
		}
		if qs != nil {
			n := &PlanNode{
				Op: "order", Detail: "restore written join order",
				RowsIn: int64(cur.NumRows()), RowsOut: int64(cur.NumRows()),
				Batches: int64(cur.NumCols()), Nanos: time.Since(t0).Nanoseconds(),
				Bytes: cur.ByteSize(), Children: []*PlanNode{curNode},
			}
			atomic.AddInt64(&qs.SortNanos, n.Nanos)
			curNode = n
		}
	}
	if qs != nil {
		qs.Root = curNode
	}
	return cur, plan.residual, nil
}

// withRowID appends a hidden int64 row-number column $rid<rel> to t. The
// restore sort reads these to put reordered join output back in written
// order; the $ prefix keeps the name outside the user-expressible space.
func withRowID(t *Table, rel int) *Table {
	n := t.NumRows()
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i)
	}
	schema := append(append(Schema{}, t.Schema()...),
		ColumnDef{Name: fmt.Sprintf("$rid%d", rel), Type: Int64})
	cols := make([]*Vector, t.NumCols()+1)
	for i := 0; i < t.NumCols(); i++ {
		cols[i] = t.Col(i)
	}
	cols[t.NumCols()] = NewInt64Vector(ids, nil)
	out, err := NewTableFromVectors(schema, cols)
	if err != nil {
		panic(err) // same lengths by construction
	}
	return out
}

// restoreWrittenOrder sorts the reordered join output by the hidden rowid
// tuple in written relation order — exactly the lexicographic order
// written-order execution emits — then drops the rowid columns and puts
// the column blocks back in written order. Inner-join output holds each
// input-row combination at most once, so the tuple order is total.
func restoreWrittenOrder(ec *ExecContext, t *Table, plan *joinPlan) (*Table, error) {
	execSeq := make([]int, 0, len(plan.rels))
	execSeq = append(execSeq, 0)
	for _, ji := range plan.order {
		execSeq = append(execSeq, ji+1)
	}
	offsets := make([]int, len(plan.rels)) // column-block start per relation
	off := 0
	for _, ri := range execSeq {
		offsets[ri] = off
		off += len(plan.rels[ri].table.Schema()) + 1
	}
	rids := make([][]int64, len(plan.rels))
	for ri, r := range plan.rels {
		rids[ri] = t.Col(offsets[ri] + len(r.table.Schema())).Int64s()
	}
	idx := make([]int32, t.NumRows())
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for _, rv := range rids {
			if rv[ia] != rv[ib] {
				return rv[ia] < rv[ib]
			}
		}
		return false
	})
	sorted := ec.gather(t, idx)
	var schema Schema
	var cols []*Vector
	for ri, r := range plan.rels {
		for c := 0; c < len(r.table.Schema()); c++ {
			schema = append(schema, sorted.Schema()[offsets[ri]+c])
			cols = append(cols, sorted.Col(offsets[ri]+c))
		}
	}
	return NewTableFromVectors(schema, cols)
}

// qualifyTable renames every column to alias.col (vectors are shared, not
// copied).
func qualifyTable(t *Table, alias string) *Table {
	schema := make(Schema, len(t.Schema()))
	cols := make([]*Vector, len(schema))
	for i, c := range t.Schema() {
		schema[i] = ColumnDef{Name: alias + "." + c.Name, Type: c.Type}
		cols[i] = t.Col(i)
	}
	out, err := NewTableFromVectors(schema, cols)
	if err != nil {
		panic(err) // same shapes by construction
	}
	return out
}

// splitOn separates the ON expression into equi-join key pairs and a
// residual predicate.
func splitOn(on Expr, left, right *Table) (lk, rk []string, residual Expr, err error) {
	var conds []Expr
	var flatten func(e Expr)
	flatten = func(e Expr) {
		if b, ok := e.(*Binary); ok && b.Op == "AND" {
			flatten(b.L)
			flatten(b.R)
			return
		}
		conds = append(conds, e)
	}
	flatten(on)
	for _, c := range conds {
		b, ok := c.(*Binary)
		if ok && b.Op == "=" {
			lc, lok := b.L.(*ColRef)
			rc, rok := b.R.(*ColRef)
			if lok && rok {
				lIn, rIn := resolveSide(lc.Name, left, right), resolveSide(rc.Name, left, right)
				switch {
				case lIn == 1 && rIn == 2:
					lk = append(lk, lc.Name)
					rk = append(rk, rc.Name)
					continue
				case lIn == 2 && rIn == 1:
					lk = append(lk, rc.Name)
					rk = append(rk, lc.Name)
					continue
				}
			}
		}
		if residual == nil {
			residual = c
		} else {
			residual = &Binary{Op: "AND", L: residual, R: c}
		}
	}
	if len(lk) == 0 {
		return nil, nil, nil, fmt.Errorf("engine: JOIN requires at least one left=right equality in ON")
	}
	return lk, rk, residual, nil
}

// resolveSide reports which table a column name belongs to: 1=left,
// 2=right, 0=neither/ambiguous.
func resolveSide(name string, left, right *Table) int {
	inL := left.ColByName(name) != nil
	inR := right.ColByName(name) != nil
	switch {
	case inL && !inR:
		return 1
	case inR && !inL:
		return 2
	}
	return 0
}

// joinKeyHashes computes each row's key-tuple hash morsel-parallel via the
// typed kernels, plus a per-row NULL flag (SQL: NULL keys never match, so
// join rows with any NULL key component are excluded from build and probe).
// nulls is nil when no key column can hold NULLs.
func (ec *ExecContext) joinKeyHashes(cols []*Vector, n int, node *PlanNode) (hashes []uint64, nulls []bool) {
	hashes = make([]uint64, n)
	for _, c := range cols {
		if c.valid != nil {
			nulls = make([]bool, n)
			break
		}
	}
	ms := ec.morselsOf(n)
	_ = ec.parallelFor(len(ms), func(i int) error {
		m := ms[i]
		sliced := make([]*Vector, len(cols))
		for j, c := range cols {
			sliced[j] = c.Slice(m.lo, m.hi)
		}
		hashKeyCols(sliced, m.hi-m.lo, hashes[m.lo:m.hi])
		if nulls != nil {
			for _, c := range sliced {
				if c.valid == nil {
					continue
				}
				for r := 0; r < m.hi-m.lo; r++ {
					if c.IsNull(r) {
						nulls[m.lo+r] = true
					}
				}
			}
		}
		node.AddMorsels(1)
		return nil
	})
	return hashes, nulls
}

// hashJoin performs the (inner or left-outer) equi-join, morsel-parallel:
// key hashes for both sides are computed across the pool, the build-side
// index is inserted serially in row order (it is immutable from then on and
// shared by all probe workers), and the probe fans out over left-side
// morsels, each emitting local selection vectors that are stitched in
// morsel order. Output rows therefore appear in exactly the order the
// serial nested probe produced: left row order, matches in right row order.
func hashJoin(ec *ExecContext, left, right *Table, jc JoinClause, node *PlanNode) (*Table, error) {
	lk, rk, residual, err := splitOn(jc.On, left, right)
	if err != nil {
		return nil, err
	}
	rKeyCols := make([]*Vector, len(rk))
	for i, n := range rk {
		rKeyCols[i] = right.ColByName(n)
	}
	lKeyCols := make([]*Vector, len(lk))
	for i, n := range lk {
		lKeyCols[i] = left.ColByName(n)
	}
	// The typed kernels compare within one type; promote mixed-type key
	// pairs to float64 so cross-type numeric equality (int 42 = float 42.0,
	// string "42" = int 42) keeps matching as it did under value rendering.
	for i := range lKeyCols {
		if lKeyCols[i].Type() != rKeyCols[i].Type() {
			lKeyCols[i] = lKeyCols[i].CastFloat64()
			rKeyCols[i] = rKeyCols[i].CastFloat64()
		}
	}
	// Grace hash join: when the estimated build-side + transient footprint
	// cannot fit the query's soft memory budget, partition both sides to
	// disk and join partition-wise instead. Output is bit-identical,
	// including row order.
	if est := right.ByteSize() + int64(right.NumRows())*24 + int64(left.NumRows())*8; ec.wouldSpill(est) &&
		left.NumRows() < 1<<30 && right.NumRows() < 1<<30 {
		return graceHashJoin(ec, left, right, lKeyCols, rKeyCols, lk, rk, jc, residual, node)
	}
	rHashes, rNulls := ec.joinKeyHashes(rKeyCols, right.NumRows(), node)
	lHashes, lNulls := ec.joinKeyHashes(lKeyCols, left.NumRows(), node)

	// Build side: index the right table's key tuples (serial, row order)
	// and lay the rows of each distinct key out in CSR form so probes emit
	// matches in right row order. The serial loop polls for cancellation at
	// batch-size strides, so a killed query aborts mid-build.
	index := newGroupIndex(right.NumRows())
	buildSrc := index.addSource(rKeyCols)
	groupOf := make([]int32, right.NumRows())
	for r := range groupOf {
		if r&4095 == 0 {
			if err := ec.interrupted(); err != nil {
				return nil, err
			}
		}
		if rNulls != nil && rNulls[r] {
			groupOf[r] = -1
			continue
		}
		groupOf[r] = index.insert(rHashes[r], buildSrc, int32(r))
	}
	groups := index.groups()
	off := make([]int32, groups+1)
	for _, g := range groupOf {
		if g >= 0 {
			off[g+1]++
		}
	}
	for g := 0; g < groups; g++ {
		off[g+1] += off[g]
	}
	matchRows := make([]int32, off[groups])
	cursor := append([]int32(nil), off[:groups]...)
	for r, g := range groupOf {
		if g >= 0 {
			matchRows[cursor[g]] = int32(r)
			cursor[g]++
		}
	}
	if node != nil {
		node.Groups = int64(groups)
	}
	// Charge the join's transient payloads in one shot: both sides' key
	// hashes, the build index's CSR arrays and group map. Released after the
	// output is materialized and they become garbage.
	buildBytes := int64(right.NumRows()+left.NumRows())*8 +
		int64(len(groupOf)+len(off)+len(matchRows))*4 +
		int64(groups)*16 // group-index slots/refs, approximate
	ec.charge(buildBytes)

	// Probe side: per-morsel selection vectors into the immutable index
	// (find never mutates, so all probe workers share it).
	probeSrc := index.addSource(lKeyCols)
	ms := ec.morselsOf(left.NumRows())
	if node != nil {
		node.Parallelism = ec.degreeFor(len(ms))
	}
	type probeOut struct{ lsel, rsel []int32 }
	parts := make([]probeOut, len(ms))
	err = ec.parallelFor(len(ms), func(i int) error {
		m := ms[i]
		lsel := getSelBuf(m.hi - m.lo)
		rsel := getSelBuf(m.hi - m.lo)
		for lr := m.lo; lr < m.hi; lr++ {
			matched := false
			if lNulls == nil || !lNulls[lr] {
				if g := index.find(lHashes[lr], probeSrc, int32(lr)); g >= 0 {
					for _, rr := range matchRows[off[g]:off[g+1]] {
						lsel = append(lsel, int32(lr))
						rsel = append(rsel, rr)
						matched = true
					}
				}
			}
			if !matched && jc.Left {
				lsel = append(lsel, int32(lr))
				rsel = append(rsel, -1)
			}
		}
		parts[i] = probeOut{lsel, rsel}
		node.AddMorsels(1)
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, p := range parts {
		total += len(p.lsel)
	}
	lsel := make([]int32, 0, total)
	rsel := make([]int32, 0, total)
	for _, p := range parts {
		lsel = append(lsel, p.lsel...)
		rsel = append(rsel, p.rsel...)
		putSelBuf(p.lsel)
		putSelBuf(p.rsel)
	}

	// Materialize: left columns by plain gather, right columns by outer
	// gather (-1 ⇒ NULL row); columns fan out across the pool.
	schema := append(Schema{}, left.Schema()...)
	schema = append(schema, right.Schema()...)
	lw, rw := left.NumCols(), right.NumCols()
	cols := make([]*Vector, lw+rw)
	_ = ec.parallelFor(lw+rw, func(j int) error {
		if j < lw {
			cols[j] = left.Col(j).Gather(lsel)
		} else {
			cols[j] = right.Col(j - lw).GatherOuter(rsel)
		}
		return nil
	})
	out := &Table{schema: schema, cols: cols}
	ec.charge(out.ByteSize())
	ec.release(buildBytes)
	if residual != nil {
		sel, err := ec.filterSel(residual, out, node)
		if err != nil {
			return nil, err
		}
		// LEFT JOIN residual semantics simplified: residual filters the
		// joined rows (matching most practical uses of ON ... AND extra).
		out = ec.gather(out, sel)
	}
	return out, nil
}
