package engine

import (
	"fmt"
	"math"
	"strings"
)

// Vectorized binary kernels. The hot paths (float/int arithmetic and
// comparison with all-valid inputs) run as tight loops over the payload
// slices with no per-row branching — this is what the paper leans on when it
// argues for in-engine execution ("vectorization, zero-cost copy").

func evalBinary(x *Binary, t *Table) (*Vector, error) {
	l, err := Eval(x.L, t)
	if err != nil {
		return nil, err
	}
	r, err := Eval(x.R, t)
	if err != nil {
		return nil, err
	}
	if l.Len() != r.Len() {
		return nil, fmt.Errorf("engine: operand length mismatch %d vs %d", l.Len(), r.Len())
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		return arith(x.Op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		return compare(x.Op, l, r)
	case "AND", "OR":
		return logical(x.Op, l, r)
	case "||":
		return concat(l, r)
	}
	return nil, fmt.Errorf("engine: unknown operator %q", x.Op)
}

// mergeValid intersects two validity bitmaps (nil = all valid).
func mergeValid(a, b *Bitmap, n int) *Bitmap {
	if a == nil && b == nil {
		return nil
	}
	// Word-wise AND. NewBitmap's tail word is already masked to n bits, so
	// ANDing against it also strips any stray bits a sliced (morsel-view)
	// bitmap may carry past its logical length.
	out := NewBitmap(n)
	for w := range out.words {
		m := out.words[w]
		if a != nil {
			m &= a.words[w]
		}
		if b != nil {
			m &= b.words[w]
		}
		out.words[w] = m
	}
	return out
}

func arith(op string, l, r *Vector) (*Vector, error) {
	n := l.Len()
	// Pure integer arithmetic stays integer (except /, which is SQL integer
	// division here as in MonetDB).
	if l.Type() == Int64 && r.Type() == Int64 {
		out := make([]int64, n)
		valid := mergeValid(l.Valid(), r.Valid(), n)
		a, b := l.Int64s(), r.Int64s()
		switch op {
		case "+":
			for i := range out {
				out[i] = a[i] + b[i]
			}
		case "-":
			for i := range out {
				out[i] = a[i] - b[i]
			}
		case "*":
			for i := range out {
				out[i] = a[i] * b[i]
			}
		case "/", "%":
			if valid == nil {
				valid = NewBitmap(n)
			}
			for i := range out {
				if b[i] == 0 {
					valid.Set(i, false)
					continue
				}
				if op == "/" {
					out[i] = a[i] / b[i]
				} else {
					out[i] = a[i] % b[i]
				}
			}
		}
		return NewInt64Vector(out, valid), nil
	}
	lf, rf := l.CastFloat64(), r.CastFloat64()
	a, b := lf.Float64s(), rf.Float64s()
	out := make([]float64, n)
	valid := mergeValid(lf.Valid(), rf.Valid(), n)
	switch op {
	case "+":
		for i := range out {
			out[i] = a[i] + b[i]
		}
	case "-":
		for i := range out {
			out[i] = a[i] - b[i]
		}
	case "*":
		for i := range out {
			out[i] = a[i] * b[i]
		}
	case "/":
		if valid == nil {
			valid = NewBitmap(n)
		}
		for i := range out {
			if b[i] == 0 {
				valid.Set(i, false)
				continue
			}
			out[i] = a[i] / b[i]
		}
	case "%":
		if valid == nil {
			valid = NewBitmap(n)
		}
		for i := range out {
			if b[i] == 0 {
				valid.Set(i, false)
				continue
			}
			out[i] = math.Mod(a[i], b[i])
		}
	}
	return NewFloat64Vector(out, valid), nil
}

func compare(op string, l, r *Vector) (*Vector, error) {
	n := l.Len()
	out := make([]bool, n)
	valid := mergeValid(l.Valid(), r.Valid(), n)
	if l.Type() == String && r.Type() == String {
		for i := 0; i < n; i++ {
			if !valid.Get(i) {
				continue
			}
			c := strings.Compare(l.StringAt(i), r.StringAt(i))
			out[i] = cmpHolds(op, c)
		}
		return NewBoolVector(out, valid), nil
	}
	if l.Type() == String || r.Type() == String {
		return nil, fmt.Errorf("engine: cannot compare %v with %v", l.Type(), r.Type())
	}
	a, b := l.CastFloat64().Float64s(), r.CastFloat64().Float64s()
	switch op {
	case "=":
		for i := range out {
			out[i] = a[i] == b[i]
		}
	case "<>":
		for i := range out {
			out[i] = a[i] != b[i]
		}
	case "<":
		for i := range out {
			out[i] = a[i] < b[i]
		}
	case "<=":
		for i := range out {
			out[i] = a[i] <= b[i]
		}
	case ">":
		for i := range out {
			out[i] = a[i] > b[i]
		}
	case ">=":
		for i := range out {
			out[i] = a[i] >= b[i]
		}
	}
	return NewBoolVector(out, valid), nil
}

func cmpHolds(op string, c int) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}

// logical implements SQL three-valued AND/OR over bool vectors.
func logical(op string, l, r *Vector) (*Vector, error) {
	if l.Type() != Bool || r.Type() != Bool {
		return nil, fmt.Errorf("engine: %s requires boolean operands", op)
	}
	n := l.Len()
	out := make([]bool, n)
	valid := NewBitmap(n)
	a, b := l.Bools(), r.Bools()
	for i := 0; i < n; i++ {
		ln, rn := l.IsNull(i), r.IsNull(i)
		switch op {
		case "AND":
			switch {
			case !ln && !rn:
				out[i] = a[i] && b[i]
			case !ln && !a[i], !rn && !b[i]:
				out[i] = false // FALSE AND NULL = FALSE
			default:
				valid.Set(i, false)
			}
		case "OR":
			switch {
			case !ln && !rn:
				out[i] = a[i] || b[i]
			case !ln && a[i], !rn && b[i]:
				out[i] = true // TRUE OR NULL = TRUE
			default:
				valid.Set(i, false)
			}
		}
	}
	return NewBoolVector(out, valid), nil
}

func concat(l, r *Vector) (*Vector, error) {
	n := l.Len()
	out := NewVector(String)
	for i := 0; i < n; i++ {
		if l.IsNull(i) || r.IsNull(i) {
			out.AppendNull()
			continue
		}
		out.AppendString(asString(l, i) + asString(r, i))
	}
	return out, nil
}

func asString(v *Vector, i int) string {
	if v.Type() == String {
		return v.StringAt(i)
	}
	return fmt.Sprint(v.Value(i))
}

// evalCall dispatches scalar functions.
func evalCall(x *Call, t *Table) (*Vector, error) {
	name := strings.ToLower(x.Name)
	if name == "coalesce" {
		return evalCoalesce(x.Args, t)
	}
	args := make([]*Vector, len(x.Args))
	for i, a := range x.Args {
		v, err := Eval(a, t)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	switch name {
	case "abs", "sqrt", "ln", "log", "exp", "floor", "ceil", "round":
		if len(args) != 1 {
			return nil, fmt.Errorf("engine: %s takes 1 argument", name)
		}
		return mathUnary(name, args[0])
	case "pow", "power":
		if len(args) != 2 {
			return nil, fmt.Errorf("engine: pow takes 2 arguments")
		}
		return mathPow(args[0], args[1])
	case "lower", "upper", "trim":
		if len(args) != 1 {
			return nil, fmt.Errorf("engine: %s takes 1 argument", name)
		}
		return strUnary(name, args[0])
	case "length":
		if len(args) != 1 {
			return nil, fmt.Errorf("engine: length takes 1 argument")
		}
		v := args[0]
		out := make([]int64, v.Len())
		for i := range out {
			if !v.IsNull(i) {
				out[i] = int64(len(asString(v, i)))
			}
		}
		return NewInt64Vector(out, v.Valid()), nil
	case "cast_double":
		if len(args) != 1 {
			return nil, fmt.Errorf("engine: cast takes 1 argument")
		}
		return args[0].CastFloat64(), nil
	}
	return nil, fmt.Errorf("engine: unknown function %q", x.Name)
}

func evalCoalesce(argExprs []Expr, t *Table) (*Vector, error) {
	if len(argExprs) == 0 {
		return nil, fmt.Errorf("engine: coalesce needs arguments")
	}
	args := make([]*Vector, len(argExprs))
	for i, a := range argExprs {
		v, err := Eval(a, t)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	out := NewVector(args[0].Type())
	n := args[0].Len()
	for i := 0; i < n; i++ {
		appended := false
		for _, a := range args {
			if !a.IsNull(i) {
				if err := out.AppendValue(a.Value(i)); err != nil {
					return nil, err
				}
				appended = true
				break
			}
		}
		if !appended {
			out.AppendNull()
		}
	}
	return out, nil
}

func mathUnary(name string, v *Vector) (*Vector, error) {
	f := v.CastFloat64()
	n := f.Len()
	out := make([]float64, n)
	valid := f.Valid().Clone()
	in := f.Float64s()
	var fn func(float64) float64
	switch name {
	case "abs":
		fn = math.Abs
	case "sqrt":
		fn = math.Sqrt
	case "ln", "log":
		fn = math.Log
	case "exp":
		fn = math.Exp
	case "floor":
		fn = math.Floor
	case "ceil":
		fn = math.Ceil
	case "round":
		fn = math.Round
	}
	for i := range out {
		out[i] = fn(in[i])
	}
	// Domain errors become NULL.
	for i, x := range out {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			if valid == nil {
				valid = NewBitmap(n)
			}
			if !f.IsNull(i) && !math.IsNaN(in[i]) {
				valid.Set(i, false)
			}
		}
	}
	return NewFloat64Vector(out, valid), nil
}

func mathPow(a, b *Vector) (*Vector, error) {
	af, bf := a.CastFloat64(), b.CastFloat64()
	n := af.Len()
	out := make([]float64, n)
	valid := mergeValid(af.Valid(), bf.Valid(), n)
	x, y := af.Float64s(), bf.Float64s()
	for i := range out {
		out[i] = math.Pow(x[i], y[i])
	}
	return NewFloat64Vector(out, valid), nil
}

func strUnary(name string, v *Vector) (*Vector, error) {
	if v.Type() != String {
		return nil, fmt.Errorf("engine: %s requires a string argument", name)
	}
	out := NewVector(String)
	for i := 0; i < v.Len(); i++ {
		if v.IsNull(i) {
			out.AppendNull()
			continue
		}
		s := v.StringAt(i)
		switch name {
		case "lower":
			s = strings.ToLower(s)
		case "upper":
			s = strings.ToUpper(s)
		case "trim":
			s = strings.TrimSpace(s)
		}
		out.AppendString(s)
	}
	return out, nil
}

// FilterSel evaluates a boolean predicate over t and returns the selection
// vector of matching rows (true AND valid).
func FilterSel(pred Expr, t *Table) ([]int32, error) {
	v, err := Eval(pred, t)
	if err != nil {
		return nil, err
	}
	if v.Type() != Bool {
		return nil, fmt.Errorf("engine: WHERE predicate must be boolean, got %v", v.Type())
	}
	sel := make([]int32, 0, v.Len())
	bs := v.Bools()
	for i := 0; i < v.Len(); i++ {
		if bs[i] && !v.IsNull(i) {
			sel = append(sel, int32(i))
		}
	}
	return sel, nil
}
