package engine

import (
	"sync"
	"sync/atomic"
	"time"
)

// SlowQuery is one retained slow-query record: the statement text, its
// wall time and row counts, and the analyzed plan rendered at capture time.
type SlowQuery struct {
	SQL         string    `json:"sql"`
	Seconds     float64   `json:"seconds"`
	RowsScanned int       `json:"rows_scanned"`
	RowsOut     int       `json:"rows_out"`
	Error       string    `json:"error,omitempty"`
	When        time.Time `json:"when"`
	Plan        []string  `json:"plan,omitempty"`
	// MemPeakBytes is the query's peak accounted memory; SpillBytes is the
	// run-file data it wrote to disk past its budget; Reason is its
	// governance verdict (completed/cancelled/deadline/mem-limit/error).
	MemPeakBytes int64  `json:"mem_peak_bytes,omitempty"`
	SpillBytes   int64  `json:"spill_bytes,omitempty"`
	Reason       string `json:"reason,omitempty"`
	// Tenant/Job/Datasets mirror the statement's audit attribution, so a
	// slow-log entry joins against `mipctl audit` output (via job id or
	// the tenant + dataset pair).
	Tenant   string   `json:"tenant,omitempty"`
	Job      string   `json:"job,omitempty"`
	Datasets []string `json:"datasets,omitempty"`
	// Cache is "hit" when the statement was served through a cache (plan
	// cache here; result cache at the federation layer), "miss" otherwise.
	Cache string `json:"cache,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of statements that ran longer
// than a configurable threshold. DB.QueryWithStats feeds DefaultSlowLog;
// the API exposes it at GET /queries/slow. Safe for concurrent use.
type SlowLog struct {
	threshold atomic.Int64 // nanoseconds; <= 0 disables capture

	mu   sync.Mutex
	buf  []SlowQuery
	next int // ring write cursor
	n    int // live entries, <= len(buf)
}

// DefaultSlowLog captures slow statements from every DB in the process.
var DefaultSlowLog = NewSlowLog(128, 250*time.Millisecond)

// NewSlowLog returns a ring of the given capacity and threshold.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 1
	}
	l := &SlowLog{buf: make([]SlowQuery, capacity)}
	l.threshold.Store(threshold.Nanoseconds())
	return l
}

// Threshold returns the current capture threshold.
func (l *SlowLog) Threshold() time.Duration {
	return time.Duration(l.threshold.Load())
}

// SetThreshold replaces the capture threshold; zero or negative disables
// capture entirely.
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.threshold.Store(d.Nanoseconds())
}

// observe records one finished statement if it crossed the threshold.
func (l *SlowLog) observe(sql string, elapsed time.Duration, qs *QueryStats, err error) {
	th := l.threshold.Load()
	if th <= 0 || elapsed.Nanoseconds() < th {
		return
	}
	engSlowQueries.Inc()
	rec := SlowQuery{
		SQL:     sql,
		Seconds: elapsed.Seconds(),
		When:    time.Now().UTC(),
	}
	if qs != nil {
		if qs.CacheHit {
			rec.Cache = "hit"
		} else {
			rec.Cache = "miss"
		}
		rec.RowsScanned = qs.RowsScanned
		rec.RowsOut = qs.RowsOut
		rec.MemPeakBytes = qs.MemPeakBytes
		rec.SpillBytes = qs.SpillBytes
		rec.Reason = qs.Verdict
		if qs.Root != nil {
			rec.Plan = qs.Root.Render(true)
		}
		if h := qs.handle; h != nil {
			rec.Tenant = h.attr.Tenant
			rec.Job = h.attr.Job
			rec.Datasets = h.attr.Datasets
		}
	}
	if err != nil {
		rec.Error = err.Error()
	}
	l.mu.Lock()
	l.buf[l.next] = rec
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// Entries returns the retained records, newest first.
func (l *SlowLog) Entries() []SlowQuery {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowQuery, 0, l.n)
	for i := 1; i <= l.n; i++ {
		out = append(out, l.buf[(l.next-i+len(l.buf))%len(l.buf)])
	}
	return out
}
