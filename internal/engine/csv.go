package engine

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// CSV ingestion: the paper notes that "the source data in each hospital may
// be stored in a different form (e.g., csv files) ... and MIP provides the
// required ETL processes to upload it to MonetDB". These loaders are that
// path: schema inference over a sample, then a typed columnar load.

// InferSchema reads the header and up to sampleRows records to decide a
// column type for each field: BIGINT if all values parse as integers,
// DOUBLE if all parse as numbers, BOOLEAN if all parse as booleans,
// otherwise VARCHAR. Empty strings and the given NA markers count as NULL
// and do not influence the type.
func InferSchema(r io.Reader, sampleRows int, naMarkers ...string) (Schema, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("engine: reading CSV header: %w", err)
	}
	names := append([]string(nil), header...)
	na := naSet(naMarkers)

	kind := make([]int, len(names)) // 0 unseen, 1 int, 2 float, 3 bool, 4 string
	for n := 0; sampleRows <= 0 || n < sampleRows; n++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i, v := range rec {
			if i >= len(kind) {
				continue
			}
			v = strings.TrimSpace(v)
			if v == "" || na[v] {
				continue
			}
			k := classify(v)
			if k > kind[i] {
				kind[i] = k
			}
			// int+float mix → float; anything+string → string; bool+number → string
			if kind[i] == 3 && (k == 1 || k == 2) || (kind[i] == 1 || kind[i] == 2) && k == 3 {
				kind[i] = 4
			}
		}
	}
	schema := make(Schema, len(names))
	for i, n := range names {
		t := String
		switch kind[i] {
		case 1:
			t = Int64
		case 2:
			t = Float64
		case 3:
			t = Bool
		}
		schema[i] = ColumnDef{Name: strings.TrimSpace(n), Type: t}
	}
	return schema, nil
}

func classify(v string) int {
	if _, err := strconv.ParseInt(v, 10, 64); err == nil {
		return 1
	}
	if _, err := strconv.ParseFloat(v, 64); err == nil {
		return 2
	}
	switch strings.ToLower(v) {
	case "true", "false":
		return 3
	}
	return 4
}

func naSet(markers []string) map[string]bool {
	na := map[string]bool{"NA": true, "N/A": true, "null": true, "NULL": true, "NaN": true, "nan": true}
	for _, m := range markers {
		na[m] = true
	}
	return na
}

// LoadCSV reads CSV data with a header row into a new table using the given
// schema (pass nil to infer it from the whole input — only possible when r
// is seekable, so prefer LoadCSVFile for that).
func LoadCSV(r io.Reader, schema Schema, naMarkers ...string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("engine: reading CSV header: %w", err)
	}
	if schema == nil {
		return nil, fmt.Errorf("engine: LoadCSV requires a schema; use LoadCSVFile to infer")
	}
	// Map file columns to schema columns by name.
	idx := make([]int, len(header))
	for i, h := range header {
		idx[i] = schema.ColIndex(strings.TrimSpace(h))
	}
	na := naSet(naMarkers)
	t := NewTable(schema)
	row := make([]any, len(schema))
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i := range row {
			row[i] = nil
		}
		for i, v := range rec {
			if i >= len(idx) || idx[i] < 0 {
				continue
			}
			v = strings.TrimSpace(v)
			if v == "" || na[v] {
				continue
			}
			row[idx[i]] = v
		}
		if err := t.AppendRow(row...); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// LoadCSVFile infers the schema from the file and loads it fully.
func LoadCSVFile(path string, naMarkers ...string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	schema, err := InferSchema(f, 0, naMarkers...)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	return LoadCSV(f, schema, naMarkers...)
}

// WriteCSV writes the table (with header) to w. NULLs become empty fields.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	rec := make([]string, t.NumCols())
	for i := 0; i < t.NumRows(); i++ {
		for j := 0; j < t.NumCols(); j++ {
			c := t.Col(j)
			if c.IsNull(i) {
				rec[j] = ""
				continue
			}
			switch c.Type() {
			case Float64:
				rec[j] = strconv.FormatFloat(c.Float64s()[i], 'g', -1, 64)
			case Int64:
				rec[j] = strconv.FormatInt(c.Int64s()[i], 10)
			case Bool:
				rec[j] = strconv.FormatBool(c.Bools()[i])
			default:
				rec[j] = c.StringAt(i)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
