package engine

import (
	"strconv"
	"strings"
)

// Canonical SQL rendering. RenderSelect turns a parsed SelectStmt back into
// one deterministic SQL text: uppercase keywords, single spaces, every
// identifier quoted, every expression in the fully parenthesized form of
// Expr.String(). Two query texts that parse to the same tree render to the
// same canonical string, which is what the plan cache and the federated
// result cache key on — "select a from t" and "SELECT  a  FROM  t" share
// one entry. The renderer round-trips: Parse(RenderSelect(st)) yields an
// equivalent statement (pinned by TestRenderSelectRoundTrip).

// RenderSelect renders st in canonical form.
func RenderSelect(st *SelectStmt) string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if st.Star && len(st.Items) == 0 {
		b.WriteByte('*')
	}
	for i, it := range st.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(it.Expr.String())
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(QuoteIdent(it.Alias))
		}
	}
	b.WriteString(" FROM ")
	b.WriteString(QuoteIdent(st.From))
	if st.FromAlias != "" {
		b.WriteString(" AS ")
		b.WriteString(QuoteIdent(st.FromAlias))
	}
	for i := range st.Joins {
		jc := &st.Joins[i]
		if jc.Left {
			b.WriteString(" LEFT JOIN ")
		} else {
			b.WriteString(" JOIN ")
		}
		b.WriteString(QuoteIdent(jc.Table))
		if jc.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(QuoteIdent(jc.Alias))
		}
		b.WriteString(" ON ")
		b.WriteString(jc.On.String())
	}
	if st.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(st.Where.String())
	}
	if len(st.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range st.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if st.Having != nil {
		b.WriteString(" HAVING ")
		b.WriteString(st.Having.String())
	}
	if len(st.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range st.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.String())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if st.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.Itoa(st.Limit))
	}
	if st.Offset > 0 {
		b.WriteString(" OFFSET ")
		b.WriteString(strconv.Itoa(st.Offset))
	}
	return b.String()
}

// NormalizeSQL parses one SELECT statement and returns its canonical text.
// Non-SELECT statements (DDL, DML, EXPLAIN) and parse errors report ok =
// false — callers cache only plain SELECTs.
func NormalizeSQL(sql string) (string, bool) {
	st, err := Parse(sql)
	if err != nil {
		return "", false
	}
	sel, ok := st.(*SelectStmt)
	if !ok {
		return "", false
	}
	return RenderSelect(sel), true
}
