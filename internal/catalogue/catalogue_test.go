package catalogue

import (
	"testing"
)

func TestDefaultCatalogue(t *testing.T) {
	c := Default()
	ps := c.Pathologies()
	if len(ps) != 2 || ps[0] != "dementia" || ps[1] != "epilepsy" {
		t.Fatalf("pathologies = %v", ps)
	}
	if c.Pathology("nope") != nil {
		t.Fatal("unknown pathology should be nil")
	}
}

func TestVariableLookup(t *testing.T) {
	d := Dementia()
	v := d.Variable("lefthippocampus")
	if v == nil || v.Units != "ml" || v.Type != Real {
		t.Fatalf("lefthippocampus = %+v", v)
	}
	if d.Variable("ghost") != nil {
		t.Fatal("unknown variable should be nil")
	}
	all := d.AllVariables()
	if len(all) < 12 {
		t.Fatalf("AllVariables = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Code < all[i-1].Code {
			t.Fatal("AllVariables not sorted")
		}
	}
}

func TestSearch(t *testing.T) {
	d := Dementia()
	hits := d.Search("hippocampus")
	if len(hits) != 2 {
		t.Fatalf("search hits = %d", len(hits))
	}
	hits = d.Search("AMYLOID")
	if len(hits) != 1 || hits[0].Code != "ab42" {
		t.Fatalf("label search = %v", hits)
	}
	if len(d.Search("zzzz")) != 0 {
		t.Fatal("no-match search should be empty")
	}
}

func TestValidate(t *testing.T) {
	d := Dementia()
	mmse := d.Variable("minimentalstate")
	if err := mmse.Validate(25.0); err != nil {
		t.Fatal(err)
	}
	if err := mmse.Validate(31.0); err == nil {
		t.Fatal("above max must fail")
	}
	if err := mmse.Validate(-1.0); err == nil {
		t.Fatal("below min must fail")
	}
	if err := mmse.Validate("abc"); err == nil {
		t.Fatal("string for real must fail")
	}
	gender := d.Variable("gender")
	if err := gender.Validate("F"); err != nil {
		t.Fatal(err)
	}
	if err := gender.Validate("X"); err == nil {
		t.Fatal("bad enumeration must fail")
	}
	if err := gender.Validate(3); err == nil {
		t.Fatal("number for nominal must fail")
	}
}

func TestHasDataset(t *testing.T) {
	d := Dementia()
	if !d.HasDataset("edsd") || d.HasDataset("nope") {
		t.Fatal("HasDataset wrong")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := Default()
	data, err := c.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	d := back.Pathology("dementia")
	if d == nil {
		t.Fatal("dementia lost in round trip")
	}
	if v := d.Variable("ab42"); v == nil || v.Label != "Amyloid beta 1-42" {
		t.Fatalf("ab42 lost: %+v", v)
	}
	if _, err := FromJSON([]byte("{broken")); err == nil {
		t.Fatal("bad JSON must fail")
	}
}
