// Package catalogue implements MIP's data catalogue: the hierarchical
// common-data-element (CDE) metadata that drives the dashboard's variable
// browser (Figure 3's "domain, datasets, search, parameters" panels) and
// the validation of experiment requests (which variables exist, their
// types, allowed enumerations and ranges, and which datasets carry them).
package catalogue

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// VarType classifies a CDE variable.
type VarType string

// Variable types.
const (
	Real    VarType = "real"
	Integer VarType = "integer"
	Nominal VarType = "nominal"
	Text    VarType = "text"
)

// Variable is one common data element.
type Variable struct {
	Code         string   `json:"code"`  // column name in the data table
	Label        string   `json:"label"` // human-readable name
	Type         VarType  `json:"type"`
	Units        string   `json:"units,omitempty"`
	Enumerations []string `json:"enumerations,omitempty"` // nominal values
	Min          *float64 `json:"min,omitempty"`
	Max          *float64 `json:"max,omitempty"`
	Description  string   `json:"description,omitempty"`
}

// Group is a node of the variable hierarchy.
type Group struct {
	Code      string     `json:"code"`
	Label     string     `json:"label"`
	Variables []Variable `json:"variables,omitempty"`
	Groups    []*Group   `json:"groups,omitempty"`
}

// Dataset describes one registered dataset.
type Dataset struct {
	Code  string `json:"code"`
	Label string `json:"label"`
}

// Pathology is the top-level domain (dementia, epilepsy, mental health,
// traumatic brain injury — the pathologies the paper lists).
type Pathology struct {
	Code     string    `json:"code"`
	Label    string    `json:"label"`
	Datasets []Dataset `json:"datasets"`
	Root     *Group    `json:"root"`
}

// Catalogue is the full metadata tree.
type Catalogue struct {
	mu          sync.RWMutex
	pathologies map[string]*Pathology

	// Dataset version stamps: a monotonic counter per dataset code, bumped
	// when the dataset is (re)registered through a pathology load or
	// explicitly through BumpDataset after a data load/append/replace.
	// Caching layers key on these to invalidate on metadata changes.
	verSeq   uint64
	versions map[string]uint64
}

// New returns an empty catalogue.
func New() *Catalogue {
	return &Catalogue{
		pathologies: make(map[string]*Pathology),
		versions:    make(map[string]uint64),
	}
}

// AddPathology registers a pathology (replacing any previous definition).
// Every dataset the pathology carries gets a fresh version stamp.
func (c *Catalogue) AddPathology(p *Pathology) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pathologies[p.Code] = p
	for _, d := range p.Datasets {
		c.verSeq++
		c.versions[d.Code] = c.verSeq
	}
}

// BumpDataset advances a dataset's version stamp (call after loading,
// appending to, or replacing its data) and returns the new version.
func (c *Catalogue) BumpDataset(code string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.verSeq++
	c.versions[code] = c.verSeq
	return c.versions[code]
}

// DatasetVersion returns a dataset's current version stamp (0 = unknown
// dataset, never bumped).
func (c *Catalogue) DatasetVersion(code string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.versions[code]
}

// DatasetVersions snapshots every known dataset's version stamp.
func (c *Catalogue) DatasetVersions() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]uint64, len(c.versions))
	for k, v := range c.versions {
		out[k] = v
	}
	return out
}

// Pathology returns a pathology by code, or nil.
func (c *Catalogue) Pathology(code string) *Pathology {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.pathologies[code]
}

// Pathologies lists codes, sorted.
func (c *Catalogue) Pathologies() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.pathologies))
	for k := range c.pathologies {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Variable finds a variable by code within a pathology, or nil.
func (p *Pathology) Variable(code string) *Variable {
	var found *Variable
	p.walk(func(g *Group) {
		for i := range g.Variables {
			if g.Variables[i].Code == code {
				found = &g.Variables[i]
			}
		}
	})
	return found
}

// AllVariables returns every variable of the pathology, sorted by code.
func (p *Pathology) AllVariables() []Variable {
	var out []Variable
	p.walk(func(g *Group) { out = append(out, g.Variables...) })
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// Search returns variables whose code or label contains the query
// (case-insensitive), sorted by code — the dashboard's variable search.
func (p *Pathology) Search(query string) []Variable {
	q := strings.ToLower(query)
	var out []Variable
	p.walk(func(g *Group) {
		for _, v := range g.Variables {
			if strings.Contains(strings.ToLower(v.Code), q) ||
				strings.Contains(strings.ToLower(v.Label), q) {
				out = append(out, v)
			}
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

func (p *Pathology) walk(fn func(*Group)) {
	if p.Root == nil {
		return
	}
	var rec func(*Group)
	rec = func(g *Group) {
		fn(g)
		for _, sub := range g.Groups {
			rec(sub)
		}
	}
	rec(p.Root)
}

// HasDataset reports whether the pathology registers the dataset code.
func (p *Pathology) HasDataset(code string) bool {
	for _, d := range p.Datasets {
		if d.Code == code {
			return true
		}
	}
	return false
}

// Validate checks a value against the variable's constraints.
func (v *Variable) Validate(val any) error {
	switch v.Type {
	case Nominal:
		s, ok := val.(string)
		if !ok {
			return fmt.Errorf("catalogue: %s expects a string, got %T", v.Code, val)
		}
		for _, e := range v.Enumerations {
			if e == s {
				return nil
			}
		}
		return fmt.Errorf("catalogue: %q is not an allowed value of %s (%v)", s, v.Code, v.Enumerations)
	case Real, Integer:
		var f float64
		switch x := val.(type) {
		case float64:
			f = x
		case int:
			f = float64(x)
		case int64:
			f = float64(x)
		default:
			return fmt.Errorf("catalogue: %s expects a number, got %T", v.Code, val)
		}
		if v.Min != nil && f < *v.Min {
			return fmt.Errorf("catalogue: %s = %v below minimum %v", v.Code, f, *v.Min)
		}
		if v.Max != nil && f > *v.Max {
			return fmt.Errorf("catalogue: %s = %v above maximum %v", v.Code, f, *v.Max)
		}
	}
	return nil
}

// MarshalJSON / load-save round trips.

// ToJSON serializes the catalogue.
func (c *Catalogue) ToJSON() ([]byte, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	codes := make([]string, 0, len(c.pathologies))
	for k := range c.pathologies {
		codes = append(codes, k)
	}
	sort.Strings(codes)
	list := make([]*Pathology, 0, len(codes))
	for _, k := range codes {
		list = append(list, c.pathologies[k])
	}
	return json.MarshalIndent(list, "", "  ")
}

// FromJSON loads a catalogue.
func FromJSON(data []byte) (*Catalogue, error) {
	var list []*Pathology
	if err := json.Unmarshal(data, &list); err != nil {
		return nil, fmt.Errorf("catalogue: %w", err)
	}
	c := New()
	for _, p := range list {
		c.AddPathology(p)
	}
	return c, nil
}

func fptr(v float64) *float64 { return &v }

// Dementia returns the built-in dementia pathology metadata matching the
// variables the synthetic cohorts generate (and the paper's dashboard
// screenshots: brain anatomy volumes, CSF proteins, demographics,
// diagnosis).
func Dementia() *Pathology {
	return &Pathology{
		Code:  "dementia",
		Label: "Dementia",
		Datasets: []Dataset{
			{Code: "edsd", Label: "EDSD"},
			{Code: "edsd-synthdata", Label: "EDSD (synthetic)"},
			{Code: "ppmi", Label: "PPMI"},
			{Code: "adni", Label: "ADNI"},
			{Code: "brescia", Label: "Fatebenefratelli Brescia"},
			{Code: "lausanne", Label: "CHUV Lausanne"},
			{Code: "lille", Label: "CHRU Lille"},
		},
		Root: &Group{
			Code:  "root",
			Label: "Dementia variables",
			Groups: []*Group{
				{
					Code:  "demographics",
					Label: "Demographics",
					Variables: []Variable{
						{Code: "subjectageyears", Label: "Age (years)", Type: Real, Units: "years", Min: fptr(0), Max: fptr(120)},
						{Code: "gender", Label: "Gender", Type: Nominal, Enumerations: []string{"F", "M"}},
					},
				},
				{
					Code:  "diagnosis",
					Label: "Diagnosis",
					Variables: []Variable{
						{Code: "alzheimerbroadcategory", Label: "Alzheimer broad category", Type: Nominal, Enumerations: []string{"AD", "MCI", "CN"}},
						{Code: "psy", Label: "Depression comorbidity", Type: Nominal, Enumerations: []string{"yes", "no"}},
						{Code: "va", Label: "Vascular white-matter damage", Type: Nominal, Enumerations: []string{"yes", "no"}},
						{Code: "minimentalstate", Label: "MMSE Total scores", Type: Real, Min: fptr(0), Max: fptr(30)},
					},
				},
				{
					Code:  "brain_anatomy",
					Label: "Brain Anatomy",
					Groups: []*Group{
						{
							Code:  "grey_matter",
							Label: "Grey matter volume",
							Variables: []Variable{
								{Code: "lefthippocampus", Label: "Left Hippocampus", Type: Real, Units: "ml", Min: fptr(0)},
								{Code: "righthippocampus", Label: "Right Hippocampus", Type: Real, Units: "ml", Min: fptr(0)},
								{Code: "leftententorhinalarea", Label: "Left Ent Entorhinal Area", Type: Real, Units: "ml", Min: fptr(0)},
								{Code: "rightententorhinalarea", Label: "Right Ent Entorhinal Area", Type: Real, Units: "ml", Min: fptr(0)},
							},
						},
						{
							Code:  "csf",
							Label: "Cerebrospinal fluid",
							Variables: []Variable{
								{Code: "leftlateralventricle", Label: "Left Lateral Ventricle", Type: Real, Units: "ml", Min: fptr(0)},
								{Code: "rightlateralventricle", Label: "Right Lateral Ventricle", Type: Real, Units: "ml", Min: fptr(0)},
							},
						},
					},
				},
				{
					Code:  "csf_proteins",
					Label: "CSF proteins",
					Variables: []Variable{
						{Code: "ab42", Label: "Amyloid beta 1-42", Type: Real, Units: "pg/ml", Min: fptr(0)},
						{Code: "p_tau", Label: "Phosphorylated tau", Type: Real, Units: "pg/ml", Min: fptr(0)},
					},
				},
			},
		},
	}
}

// Epilepsy returns a minimal epilepsy pathology for the survival examples.
func Epilepsy() *Pathology {
	return &Pathology{
		Code:  "epilepsy",
		Label: "Epilepsy",
		Datasets: []Dataset{
			{Code: "epi-site-a", Label: "Site A"},
			{Code: "epi-site-b", Label: "Site B"},
		},
		Root: &Group{
			Code:  "root",
			Label: "Epilepsy variables",
			Variables: []Variable{
				{Code: "grp", Label: "Treatment group", Type: Nominal, Enumerations: []string{"control", "treated"}},
				{Code: "time", Label: "Time to relapse (months)", Type: Real, Units: "months", Min: fptr(0)},
				{Code: "event", Label: "Relapse observed", Type: Integer, Min: fptr(0), Max: fptr(1)},
			},
		},
	}
}

// Default returns a catalogue with the built-in pathologies.
func Default() *Catalogue {
	c := New()
	c.AddPathology(Dementia())
	c.AddPathology(Epilepsy())
	return c
}
