package federation

import (
	"sync"

	"mip/internal/obs"
)

// liveMasters tracks masters between NewMaster and Close so the worker
// gauge reflects reality across master lifecycles (tests, embedded use).
var (
	liveMastersMu sync.Mutex
	liveMasters   = make(map[*Master]struct{})
)

func registerMaster(m *Master) {
	liveMastersMu.Lock()
	defer liveMastersMu.Unlock()
	liveMasters[m] = struct{}{}
}

func unregisterMaster(m *Master) {
	liveMastersMu.Lock()
	defer liveMastersMu.Unlock()
	delete(liveMasters, m)
}

// liveWorkerCount sums worker counts over live masters (the worker slice is
// immutable after NewMaster, so no per-master lock is needed).
func liveWorkerCount() float64 {
	liveMastersMu.Lock()
	defer liveMastersMu.Unlock()
	n := 0
	for m := range liveMasters {
		n += len(m.workers)
	}
	return float64(n)
}

// Federation metrics, registered eagerly so a fresh daemon exposes the
// families on GET /metrics before any experiment runs.
var (
	fedLocalRuns = obs.GetCounter("mip_federation_localruns_total",
		"Local steps fanned out by masters (one per step, not per worker).")
	fedLocalRunErrors = obs.GetCounter("mip_federation_localrun_errors_total",
		"Local-step fan-outs that failed on at least one worker.")
	fedFanoutSeconds = obs.GetHistogram("mip_federation_fanout_seconds",
		"Wall time of one local-step fan-out across all session workers.", nil)
	fedWorkerRuns = obs.GetCounter("mip_federation_worker_localruns_total",
		"Local steps executed on this process's workers.")
	fedDisclosureBlocks = obs.GetCounter("mip_federation_disclosure_blocks_total",
		"Local steps blocked by the minimum-row disclosure control.")
	fedBytesSent = obs.GetCounter("mip_federation_http_bytes_total",
		"Bytes moved by the federation HTTP transport.",
		obs.Label{Key: "direction", Value: "sent"})
	fedBytesRecv = obs.GetCounter("mip_federation_http_bytes_total",
		"Bytes moved by the federation HTTP transport.",
		obs.Label{Key: "direction", Value: "received"})
	fedDegradedSteps = obs.GetCounter("mip_federation_degraded_steps_total",
		"Steps that returned a partial aggregate after dropping workers.")
	fedDroppedWorkers = obs.GetCounter("mip_federation_dropped_workers_total",
		"Workers dropped from degraded steps by the tolerance policy.")
	fedReplaysDeduped = obs.GetCounter("mip_federation_replays_deduped_total",
		"Replayed localrun requests served from the worker's JobID dedupe cache.")
	fedCircuitOpens = obs.GetCounter("mip_federation_circuit_opens_total",
		"Worker circuit breakers tripped open by consecutive failures.")
	fedProbes = obs.GetCounter("mip_federation_probes_total",
		"Health probes sent to unhealthy workers by the master.")
)

func init() {
	obs.Default.GaugeFunc("mip_federation_workers",
		"Workers currently registered with live federation masters.",
		liveWorkerCount)
}

// workerRoundtrip is the per-worker round-trip latency histogram (bounded
// cardinality: one series per worker id).
func workerRoundtrip(workerID string) *obs.Histogram {
	return obs.GetHistogram("mip_federation_worker_roundtrip_seconds",
		"Round-trip latency of one worker's LocalRun.", nil,
		obs.Label{Key: "worker", Value: workerID})
}

// workerStateGauge exposes each worker's circuit state as seen by the
// master: 0=closed (healthy), 1=half-open (probing), 2=open (broken).
func workerStateGauge(workerID string) *obs.Gauge {
	return obs.GetGauge("mip_federation_worker_state",
		"Worker circuit-breaker state (0=closed, 1=half-open, 2=open).",
		obs.Label{Key: "worker", Value: workerID})
}

// fedRetries counts replays of idempotent worker calls, per worker.
func fedRetries(workerID string) *obs.Counter {
	return obs.GetCounter("mip_federation_retries_total",
		"Retries of idempotent worker calls after transient failures.",
		obs.Label{Key: "worker", Value: workerID})
}
