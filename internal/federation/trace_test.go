package federation

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"mip/internal/obs"
)

// collectNames flattens a span tree into name → node for assertions.
func collectNames(nodes []*obs.SpanNode, into map[string]*obs.SpanNode) {
	for _, n := range nodes {
		into[n.Name] = n
		collectNames(n.Children, into)
	}
}

// The complete span tree must survive the HTTP hop: worker-side exec/udf/
// engine-query spans ship back in the LocalRunResponse envelope and graft
// under the master's per-worker round-trip spans.
func TestTraceSpansOverHTTP(t *testing.T) {
	var clients []WorkerClient
	for i := 0; i < 2; i++ {
		db := newWorkerDB(t, "edsd", 40, float64(i))
		w := NewWorker(fmt.Sprintf("th%d", i), db)
		srv := httptest.NewServer((&WorkerServer{Worker: w}).Handler())
		t.Cleanup(srv.Close)
		clients = append(clients, NewHTTPWorkerClient(w.ID(), srv.URL))
	}
	m, err := NewMaster(clients, nil, Security{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSession([]string{"edsd"})
	if err != nil {
		t.Fatal(err)
	}

	const traceID = "trace-http-test"
	root := obs.DefaultTraces.StartSpan(traceID, "", "experiment test")
	s.SetTrace(obs.TraceRef{TraceID: traceID, SpanID: root.ID()})
	if _, err := s.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}); err != nil {
		t.Fatal(err)
	}
	root.End()

	tree := obs.DefaultTraces.Tree(traceID)
	if len(tree) != 1 {
		t.Fatalf("roots = %d, want 1 (experiment)", len(tree))
	}
	nodes := map[string]*obs.SpanNode{}
	collectNames(tree, nodes)

	// experiment → localrun → worker thN → exec → {udf, engine query}
	lr := nodes["localrun test_sums"]
	if lr == nil {
		t.Fatalf("missing localrun span; have %v", keys(nodes))
	}
	if lr.Parent != root.ID() {
		t.Fatalf("localrun parent = %q, want experiment root %q", lr.Parent, root.ID())
	}
	for i := 0; i < 2; i++ {
		wn := nodes[fmt.Sprintf("worker th%d", i)]
		if wn == nil {
			t.Fatalf("missing worker th%d span; have %v", i, keys(nodes))
		}
		if wn.Parent != lr.SpanID {
			t.Fatalf("worker span parent = %q, want localrun %q", wn.Parent, lr.SpanID)
		}
		if wn.DurMS <= 0 {
			t.Fatalf("worker th%d round-trip duration = %v, want > 0", i, wn.DurMS)
		}
		// The exec span was recorded on the worker side of the HTTP hop.
		var exec *obs.SpanNode
		for _, c := range wn.Children {
			if c.Name == "exec test_sums" {
				exec = c
			}
		}
		if exec == nil {
			t.Fatalf("worker th%d has no exec child over HTTP: %+v", i, wn.Children)
		}
		if exec.DurMS <= 0 {
			t.Fatalf("exec span duration = %v, want > 0", exec.DurMS)
		}
		if got := exec.Attrs["worker"]; got != fmt.Sprintf("th%d", i) {
			t.Fatalf("exec worker attr = %q", got)
		}
		var udf, q bool
		for _, c := range exec.Children {
			switch c.Name {
			case "udf fed_test_sums":
				udf = true
			case "engine query":
				q = true
				if c.Attrs["rows_scanned"] == "" {
					t.Fatal("engine query span missing rows_scanned attr")
				}
			}
		}
		if !udf || !q {
			t.Fatalf("exec children incomplete (udf=%v query=%v): %+v", udf, q, exec.Children)
		}
	}
}

// Plain in-process transport must produce the same tree shape (spans are
// published locally and deduplicated against the response envelope).
func TestTraceSpansInProcess(t *testing.T) {
	db := newWorkerDB(t, "edsd", 40, 0)
	w := NewWorker("local0", db)
	m, err := NewMaster([]WorkerClient{w}, nil, Security{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.NewSession([]string{"edsd"})

	const traceID = "trace-inproc-test"
	root := obs.DefaultTraces.StartSpan(traceID, "", "experiment test")
	s.SetTrace(obs.TraceRef{TraceID: traceID, SpanID: root.ID()})
	if _, err := s.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}); err != nil {
		t.Fatal(err)
	}
	root.End()

	nodes := map[string]*obs.SpanNode{}
	collectNames(obs.DefaultTraces.Tree(traceID), nodes)
	for _, want := range []string{"experiment test", "localrun test_sums", "worker local0", "exec test_sums"} {
		if nodes[want] == nil {
			t.Fatalf("missing span %q; have %v", want, keys(nodes))
		}
	}
	// Dedup: exactly one exec span even though the in-process worker both
	// publishes locally and returns spans in the envelope.
	count := 0
	for _, d := range obs.DefaultTraces.Spans(traceID) {
		if d.Name == "exec test_sums" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("exec spans = %d, want 1 (dedup failed)", count)
	}
}

// Untraced sessions must record nothing (nil-span fast path).
func TestNoTraceNoSpans(t *testing.T) {
	db := newWorkerDB(t, "edsd", 40, 0)
	w := NewWorker("quiet0", db)
	m, err := NewMaster([]WorkerClient{w}, nil, Security{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.NewSession([]string{"edsd"})
	if _, err := s.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}); err != nil {
		t.Fatal(err)
	}
	if got := obs.DefaultTraces.Spans(""); got != nil {
		t.Fatalf("untraced run recorded spans: %v", got)
	}
}

func keys(m map[string]*obs.SpanNode) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
