// Package faultinject wraps a federation.WorkerClient with scripted
// failures for chaos testing the fault-tolerance layer: per-method error
// schedules (fail N times then recover), injected latency, and up/down
// flapping. All state is mutex-protected so schedules can be mutated while
// a master hammers the client from many goroutines (the -race chaos tests
// depend on this).
package faultinject

import (
	"fmt"
	"sync"
	"time"

	"mip/internal/engine"
	"mip/internal/federation"
)

// TransientError is a retryable injected failure: it implements the
// Temporary() marker the federation retry layer classifies on.
type TransientError struct{ Reason string }

func (e *TransientError) Error() string {
	if e.Reason == "" {
		return "faultinject: transient failure"
	}
	return "faultinject: " + e.Reason
}

// Temporary marks the error retryable (net.Error convention).
func (e *TransientError) Temporary() bool { return true }

// Step is one scripted outcome for a method call: an error to return
// and/or a delay to impose before the call proceeds.
type Step struct {
	Err   error
	Delay time.Duration
}

// Client wraps an inner worker client with scripted fault schedules.
type Client struct {
	inner federation.WorkerClient

	mu    sync.Mutex
	steps map[string][]Step // method → FIFO schedule
	down  bool              // hard down: every call fails
	calls map[string]int    // method → observed call count
}

// Wrap builds a fault-injecting client around inner.
func Wrap(inner federation.WorkerClient) *Client {
	return &Client{
		inner: inner,
		steps: make(map[string][]Step),
		calls: make(map[string]int),
	}
}

// Script appends outcomes to a method's schedule ("Datasets", "LocalRun"
// or "Query"). Each call consumes one step; an exhausted schedule passes
// calls through untouched.
func (c *Client) Script(method string, steps ...Step) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.steps[method] = append(c.steps[method], steps...)
}

// FailN schedules n transient failures on a method, after which calls
// succeed again — the "flaky worker" shape.
func (c *Client) FailN(method string, n int) {
	steps := make([]Step, n)
	for i := range steps {
		steps[i] = Step{Err: &TransientError{Reason: fmt.Sprintf("scripted failure %d/%d", i+1, n)}}
	}
	c.Script(method, steps...)
}

// SetDown marks the worker hard-down: every call on every method fails
// until SetUp. Use for permanently dead workers and flapping chaos.
func (c *Client) SetDown() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down = true
}

// SetUp brings the worker back.
func (c *Client) SetUp() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down = false
}

// Calls reports how many times a method has been invoked (including
// calls that were failed by the schedule or down state).
func (c *Client) Calls(method string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls[method]
}

// gate records the call and pops the method's next scripted step. It
// returns the injected error, if any; delays are served outside the lock.
func (c *Client) gate(method string) error {
	c.mu.Lock()
	c.calls[method]++
	var step Step
	if q := c.steps[method]; len(q) > 0 {
		step = q[0]
		c.steps[method] = q[1:]
	}
	down := c.down
	c.mu.Unlock()
	if step.Delay > 0 {
		time.Sleep(step.Delay)
	}
	if down {
		return &TransientError{Reason: "worker down"}
	}
	return step.Err
}

// ID implements federation.WorkerClient.
func (c *Client) ID() string { return c.inner.ID() }

// Datasets implements federation.WorkerClient.
func (c *Client) Datasets() ([]string, error) {
	if err := c.gate("Datasets"); err != nil {
		return nil, err
	}
	return c.inner.Datasets()
}

// LocalRun implements federation.WorkerClient.
func (c *Client) LocalRun(req federation.LocalRunRequest) (federation.LocalRunResponse, error) {
	if err := c.gate("LocalRun"); err != nil {
		return federation.LocalRunResponse{}, err
	}
	return c.inner.LocalRun(req)
}

// Query implements federation.WorkerClient.
func (c *Client) Query(sql string) (*engine.Table, error) {
	if err := c.gate("Query"); err != nil {
		return nil, err
	}
	return c.inner.Query(sql)
}
