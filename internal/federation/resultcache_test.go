package federation

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mip/internal/engine"
	"mip/internal/obs"
)

// buildCachedFed builds a 2-worker edsd federation with the master's
// result cache enabled, returning the worker DBs for data mutations.
func buildCachedFed(t *testing.T, budget int64) (*Master, []*engine.DB) {
	t.Helper()
	var clients []WorkerClient
	var dbs []*engine.DB
	for i := 0; i < 2; i++ {
		db := newWorkerDB(t, "edsd", 40+10*i, float64(i))
		dbs = append(dbs, db)
		clients = append(clients, NewWorker(fmt.Sprintf("cw%d", i), db))
	}
	m, err := NewMaster(clients, nil, Security{}, WithResultCacheBytes(budget))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, dbs
}

func TestResultCacheRepeatHit(t *testing.T) {
	m, _ := buildCachedFed(t, 1<<20)
	sql := `SELECT avg(age) AS m, count(*) AS n FROM data`

	t1, err := m.MergeQuery([]string{"edsd"}, sql)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := m.MergeQuery([]string{"edsd"}, sql)
	if err != nil {
		t.Fatal(err)
	}
	if t2 != t1 {
		t.Fatal("repeat should serve the cached table by reference")
	}
	s := m.ResultCacheStats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", s)
	}
	if s.Bytes <= 0 || s.BudgetBytes != 1<<20 {
		t.Fatalf("stats bytes = %d budget = %d", s.Bytes, s.BudgetBytes)
	}
}

func TestResultCacheNormalizedSQLSharing(t *testing.T) {
	m, _ := buildCachedFed(t, 1<<20)
	if _, err := m.MergeQuery([]string{"edsd"}, `SELECT count(*) AS n FROM data`); err != nil {
		t.Fatal(err)
	}
	// A respelled statement normalizes to the same canonical SQL and must
	// land on the same entry.
	if _, err := m.MergeQuery([]string{"edsd"}, `SELECT  count( * )  AS n FROM data`); err != nil {
		t.Fatal(err)
	}
	if s := m.ResultCacheStats(); s.Hits != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want the respelled query to hit the same entry", s)
	}
}

func TestResultCacheInvalidationOnAppend(t *testing.T) {
	m, dbs := buildCachedFed(t, 1<<20)
	sql := `SELECT count(*) AS n FROM data`

	t1, err := m.MergeQuery([]string{"edsd"}, sql)
	if err != nil {
		t.Fatal(err)
	}
	before := t1.Col(0).CastFloat64().Float64s()[0]
	if _, err := m.MergeQuery([]string{"edsd"}, sql); err != nil {
		t.Fatal(err)
	}
	if s := m.ResultCacheStats(); s.Hits != 1 {
		t.Fatalf("warmup should hit once, stats = %+v", s)
	}

	// Appending a row on one worker bumps its dataset version: the old key
	// becomes unreachable and the repeat re-executes against fresh data.
	if _, err := dbs[0].Query(`INSERT INTO data VALUES ('edsd', 61, 25)`); err != nil {
		t.Fatal(err)
	}
	t3, err := m.MergeQuery([]string{"edsd"}, sql)
	if err != nil {
		t.Fatal(err)
	}
	after := t3.Col(0).CastFloat64().Float64s()[0]
	if after != before+1 {
		t.Fatalf("stale serve: count %v -> %v, want +1", before, after)
	}
	if s := m.ResultCacheStats(); s.Misses != 2 {
		t.Fatalf("post-append query should miss, stats = %+v", s)
	}
}

func TestResultCacheUnrelatedDatasetRetention(t *testing.T) {
	// One worker hosting two datasets: mutating the unrelated one must not
	// invalidate an entry keyed on the other.
	db := engine.NewDB()
	tab := engine.NewTable(engine.Schema{
		{Name: "dataset", Type: engine.String},
		{Name: "age", Type: engine.Float64},
		{Name: "mmse", Type: engine.Float64},
	})
	for i := 0; i < 30; i++ {
		ds := "edsd"
		if i%2 == 0 {
			ds = "ppmi"
		}
		if err := tab.AppendRow(ds, 60+float64(i), float64(20+i%10)); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable(DataTable, tab)
	m, err := NewMaster([]WorkerClient{NewWorker("multi", db)}, nil, Security{}, WithResultCacheBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	sql := `SELECT count(*) AS n FROM data WHERE dataset = 'edsd'`
	for i := 0; i < 2; i++ {
		if _, err := m.MergeQuery([]string{"edsd"}, sql); err != nil {
			t.Fatal(err)
		}
	}
	if s := m.ResultCacheStats(); s.Hits != 1 {
		t.Fatalf("warmup stats = %+v", s)
	}
	// Touch only ppmi: the edsd entry's key is untouched, so this stays a hit.
	if _, err := db.Query(`INSERT INTO data VALUES ('ppmi', 55, 29)`); err != nil {
		t.Fatal(err)
	}
	if _, err := m.MergeQuery([]string{"edsd"}, sql); err != nil {
		t.Fatal(err)
	}
	if s := m.ResultCacheStats(); s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("unrelated-dataset append must not invalidate: stats = %+v", s)
	}
}

func TestResultCacheWorkerRestartInvalidates(t *testing.T) {
	db := newWorkerDB(t, "edsd", 30, 0)
	var handler atomic.Value
	handler.Store((&WorkerServer{Worker: NewWorker("rw0", db), AllowRawQuery: true}).Handler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handler.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	client := NewHTTPWorkerClient("rw0", srv.URL)
	m, err := NewMaster([]WorkerClient{client}, nil, Security{}, WithResultCacheBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	sql := `SELECT avg(mmse) AS m FROM data`
	for i := 0; i < 2; i++ {
		if _, err := m.MergeQuery([]string{"edsd"}, sql); err != nil {
			t.Fatal(err)
		}
	}
	if s := m.ResultCacheStats(); s.Hits != 1 {
		t.Fatalf("warmup stats = %+v", s)
	}

	// "Restart" the worker process: same data, fresh boot id. Versions from
	// the previous incarnation must never validate an entry.
	handler.Store((&WorkerServer{Worker: NewWorker("rw0", db), AllowRawQuery: true}).Handler())
	if _, err := m.MergeQuery([]string{"edsd"}, sql); err != nil {
		t.Fatal(err)
	}
	if s := m.ResultCacheStats(); s.Hits != 1 || s.Misses != 2 {
		t.Fatalf("post-restart query must miss: stats = %+v", s)
	}
}

// countingClient wraps an in-process worker, counting part-query executions
// and slowing them down so concurrent misses genuinely overlap.
type countingClient struct {
	*Worker
	queries atomic.Int64
	delay   time.Duration
}

func (c *countingClient) Query(sql string) (*engine.Table, error) {
	return c.QueryCtx(context.Background(), sql)
}

// QueryCtx shadows the embedded worker's method: the master prefers the
// context-aware extension, so the counter must live here.
func (c *countingClient) QueryCtx(ctx context.Context, sql string) (*engine.Table, error) {
	c.queries.Add(1)
	time.Sleep(c.delay)
	return c.Worker.QueryCtx(ctx, sql)
}

func TestResultCacheSingleflight(t *testing.T) {
	var clients []WorkerClient
	var counters []*countingClient
	for i := 0; i < 2; i++ {
		cc := &countingClient{Worker: NewWorker(fmt.Sprintf("sf%d", i), newWorkerDB(t, "edsd", 30, float64(i))), delay: 50 * time.Millisecond}
		counters = append(counters, cc)
		clients = append(clients, cc)
	}
	m, err := NewMaster(clients, nil, Security{}, WithResultCacheBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	const goroutines = 8
	sql := `SELECT avg(age) AS m, count(*) AS n FROM data`
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	tables := make([]*engine.Table, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tables[g], errs[g] = m.MergeQuery([]string{"edsd"}, sql)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
		if tables[g] == nil || tables[g].NumRows() != 1 {
			t.Fatalf("goroutine %d: bad table", g)
		}
	}
	// The herd collapsed into one execution: each worker ran its part once.
	for i, cc := range counters {
		if n := cc.queries.Load(); n != 1 {
			t.Fatalf("worker %d executed %d part queries, want 1", i, n)
		}
	}
	if s := m.ResultCacheStats(); s.Hits+s.Misses != goroutines {
		t.Fatalf("stats = %+v, want hits+misses = %d", s, goroutines)
	}
}

func TestResultCacheHitMeteringAndAudit(t *testing.T) {
	m, _ := buildCachedFed(t, 1<<20)
	tenant := "cache-meter-test"
	sql := `SELECT avg(age) AS m FROM data`

	if _, _, err := m.MergeQueryDegradedAs(tenant, []string{"edsd"}, sql); err != nil {
		t.Fatal(err)
	}
	cold, ok := obs.DefaultTenants.Usage(tenant)
	if !ok {
		t.Fatal("tenant account missing after cold query")
	}
	for i := 0; i < 2; i++ {
		if _, _, err := m.MergeQueryDegradedAs(tenant, []string{"edsd"}, sql); err != nil {
			t.Fatal(err)
		}
	}
	u, _ := obs.DefaultTenants.Usage(tenant)
	// Each cache hit must keep metering the tenant exactly like an executed
	// statement would — serving from cache never goes dark on accounting.
	if got := u.Queries - cold.Queries; got != 2 {
		t.Fatalf("two cache hits metered %d queries, want 2", got)
	}
	var cached int
	for _, r := range obs.DefaultAudit.Entries(obs.AuditFilter{Tenant: tenant}) {
		if r.Verdict == "cached" {
			cached++
			if r.SQLDigest != obs.SQLDigest(sql) || len(r.Workers) == 0 {
				t.Fatalf("cached audit record incomplete: %+v", r)
			}
		}
	}
	if cached != 2 {
		t.Fatalf("audit has %d cached records, want 2", cached)
	}
}

func TestResultCacheFlush(t *testing.T) {
	m, _ := buildCachedFed(t, 1<<20)
	sql := `SELECT count(*) AS n FROM data`
	for i := 0; i < 2; i++ {
		if _, err := m.MergeQuery([]string{"edsd"}, sql); err != nil {
			t.Fatal(err)
		}
	}
	if n := m.FlushResultCache(); n != 1 {
		t.Fatalf("flushed %d entries, want 1", n)
	}
	s := m.ResultCacheStats()
	if s.Entries != 0 || s.Bytes != 0 {
		t.Fatalf("post-flush stats = %+v", s)
	}
	if _, err := m.MergeQuery([]string{"edsd"}, sql); err != nil {
		t.Fatal(err)
	}
	if s = m.ResultCacheStats(); s.Misses != 2 {
		t.Fatalf("post-flush query should miss, stats = %+v", s)
	}
}

func TestResultCacheEviction(t *testing.T) {
	m, _ := buildCachedFed(t, 48) // roughly one single-row result at a time
	for i := 0; i < 4; i++ {
		sql := fmt.Sprintf(`SELECT avg(age) AS m, count(*) AS n FROM data WHERE age > %d`, 50+i)
		if _, err := m.MergeQuery([]string{"edsd"}, sql); err != nil {
			t.Fatal(err)
		}
	}
	s := m.ResultCacheStats()
	if s.Evictions == 0 {
		t.Fatalf("tiny budget never evicted: stats = %+v", s)
	}
	if s.Bytes > 48 {
		t.Fatalf("cache exceeds budget: stats = %+v", s)
	}
}

func TestExplainAnalyzeCachedNode(t *testing.T) {
	m, _ := buildCachedFed(t, 1<<20)
	tenant := "explain-cache-test"
	sql := `SELECT avg(age) AS m, count(*) AS n FROM data`

	// Cold ANALYZE executes and reports the real operator tree.
	lines, err := m.ExplainAs(tenant, []string{"edsd"}, sql, true)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Join(lines, "\n"), "cached") {
		t.Fatalf("cold ANALYZE should not report a cached node:\n%s", strings.Join(lines, "\n"))
	}
	if _, _, err := m.MergeQueryDegradedAs(tenant, []string{"edsd"}, sql); err != nil {
		t.Fatal(err)
	}
	lines, err = m.ExplainAs(tenant, []string{"edsd"}, sql, true)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "cached") || !strings.Contains(joined, "cache=hit") {
		t.Fatalf("warm ANALYZE should report the cached node and trailer:\n%s", joined)
	}
	if !strings.Contains(joined, "rows_out=1") {
		t.Fatalf("cached node should carry the stored result's real rows:\n%s", joined)
	}
}

// TestWorkerVersionsUnattributedReplaceNotMasked covers the attribution
// trap: one retention DELETE spanning two datasets (one data-version
// advance, two row-count changes) in the same refresh window as a
// same-count in-place replace of a third dataset (BumpDataVersion, no
// count change). The replace must bump the third dataset's version — it
// must not hide behind the multi-dataset statement's count tally.
func TestWorkerVersionsUnattributedReplaceNotMasked(t *testing.T) {
	db := engine.NewDB()
	tab := engine.NewTable(engine.Schema{
		{Name: "dataset", Type: engine.String},
		{Name: "age", Type: engine.Float64},
		{Name: "mmse", Type: engine.Float64},
	})
	rows := []struct {
		ds  string
		age float64
	}{{"a", 10}, {"a", 40}, {"b", 20}, {"b", 45}, {"c", 50}, {"c", 55}}
	for _, r := range rows {
		if err := tab.AppendRow(r.ds, r.age, 25.0); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable(DataTable, tab)
	w := NewWorker("mask0", db)

	info1, err := w.DatasetInfo()
	if err != nil {
		t.Fatal(err)
	}
	v1 := info1.Versions["c"]
	if v1 == 0 {
		t.Fatalf("missing version for dataset c: %+v", info1)
	}

	// One statement touching rows in both a and b (c untouched)...
	if _, err := db.Query(`DELETE FROM data WHERE age < 30`); err != nil {
		t.Fatal(err)
	}
	// ...plus the documented loader path: rows of c replaced in place,
	// same count, version bumped by hand.
	db.BumpDataVersion()

	info2, err := w.DatasetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info2.Versions["c"] <= v1 {
		t.Fatalf("in-place replace masked by multi-dataset statement: c version %d -> %d, want a bump",
			v1, info2.Versions["c"])
	}
}

// flakyClient fails its first part query — slowly, so the singleflight
// herd piles onto the leader's flight first — and succeeds afterwards.
type flakyClient struct {
	*Worker
	calls atomic.Int64
}

func (c *flakyClient) Query(sql string) (*engine.Table, error) {
	return c.QueryCtx(context.Background(), sql)
}

func (c *flakyClient) QueryCtx(ctx context.Context, sql string) (*engine.Table, error) {
	if c.calls.Add(1) == 1 {
		time.Sleep(100 * time.Millisecond)
		return nil, fmt.Errorf("injected: first execution fails")
	}
	return c.Worker.QueryCtx(ctx, sql)
}

func TestResultCacheWaiterFallbackOnLeaderError(t *testing.T) {
	fc := &flakyClient{Worker: NewWorker("fb0", newWorkerDB(t, "edsd", 30, 0))}
	m, err := NewMaster([]WorkerClient{fc}, nil, Security{}, WithResultCacheBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	const goroutines = 6
	sql := `SELECT avg(age) AS m, count(*) AS n FROM data`
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	tables := make([]*engine.Table, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tables[g], errs[g] = m.MergeQuery([]string{"edsd"}, sql)
		}(g)
	}
	wg.Wait()
	// Exactly one caller — the leader whose execution failed — surfaces the
	// injected error. The waiters must not inherit the leader's failure:
	// they fall back to executing for themselves and succeed.
	fails := 0
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			fails++
			continue
		}
		if tables[g] == nil || tables[g].NumRows() != 1 {
			t.Fatalf("goroutine %d: bad fallback table", g)
		}
	}
	if fails != 1 {
		t.Fatalf("%d callers failed, want exactly the leader; errs = %v", fails, errs)
	}
	if n := fc.calls.Load(); n < 2 {
		t.Fatalf("waiters never fell back to executing: %d part queries", n)
	}
}

func TestResultCacheFlushAbortsInflight(t *testing.T) {
	c := NewResultCache(1 << 20)
	_, f, leader := c.begin("k")
	if !leader || f == nil {
		t.Fatal("first begin should lead")
	}
	_, f2, leader2 := c.begin("k")
	if leader2 || f2 != f {
		t.Fatal("second begin should join the leader's flight")
	}
	released := make(chan error, 1)
	go func() {
		<-f2.done
		released <- f2.err
	}()
	c.Flush()
	select {
	case err := <-released:
		if err == nil {
			t.Fatal("aborted waiter should observe an error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flush did not release the in-flight waiter")
	}

	// The leader's late finish is a no-op: no double close, nothing
	// published into the flushed cache.
	tab := engine.NewTable(engine.Schema{{Name: "n", Type: engine.Float64}})
	if err := tab.AppendRow(1.0); err != nil {
		t.Fatal(err)
	}
	c.finish("k", f, tab, nil, nil)
	if s := c.Stats(); s.Entries != 0 {
		t.Fatalf("aborted flight published an entry: %+v", s)
	}
	// The key is free again for a fresh flight that caches normally.
	_, f3, leader3 := c.begin("k")
	if !leader3 {
		t.Fatal("post-flush begin should lead a fresh flight")
	}
	c.finish("k", f3, tab, nil, nil)
	if s := c.Stats(); s.Entries != 1 {
		t.Fatalf("fresh flight did not cache: %+v", s)
	}
}

// TestMergeQueryPlanCacheReuse: a master's transient merge DBs share one
// plan-cache identity, so a repeated federated statement hits the plan
// cache instead of every query inserting keys no later DB can reach.
func TestMergeQueryPlanCacheReuse(t *testing.T) {
	pc := engine.NewPlanCache(32)
	var clients []WorkerClient
	for i := 0; i < 2; i++ {
		clients = append(clients, NewWorker(fmt.Sprintf("pc%d", i), newWorkerDB(t, "edsd", 30, float64(i))))
	}
	m, err := NewMaster(clients, nil, Security{}, WithEngineOptions(engine.WithPlanCache(pc)))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)

	sql := `SELECT avg(age) AS m, count(*) AS n FROM data`
	for i := 0; i < 3; i++ {
		if _, err := m.MergeQuery([]string{"edsd"}, sql); err != nil {
			t.Fatal(err)
		}
	}
	s := pc.Stats()
	if s.Entries != 1 {
		t.Fatalf("merge DBs should converge on one plan entry, stats = %+v", s)
	}
	if s.Hits < 2 || s.Misses != 1 {
		t.Fatalf("repeat federated statements should hit the plan cache, stats = %+v", s)
	}
}

func TestHTTPWorkerDatasetInfoWire(t *testing.T) {
	db := newWorkerDB(t, "edsd", 25, 0)
	w := NewWorker("wire0", db)
	srv := httptest.NewServer((&WorkerServer{Worker: w}).Handler())
	defer srv.Close()
	c := NewHTTPWorkerClient("wire0", srv.URL)

	info, err := c.DatasetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Datasets) != 1 || info.Datasets[0] != "edsd" {
		t.Fatalf("datasets = %v", info.Datasets)
	}
	if info.Boot == "" || info.Versions["edsd"] == 0 {
		t.Fatalf("missing version metadata: %+v", info)
	}
	if !strings.HasPrefix(info.Stamp, info.Boot+":") {
		t.Fatalf("stamp %q not scoped to boot %q", info.Stamp, info.Boot)
	}
	stamp, err := c.DataStamp()
	if err != nil {
		t.Fatal(err)
	}
	if stamp != info.Stamp {
		t.Fatalf("stamp probe %q != info stamp %q", stamp, info.Stamp)
	}
	// Datasets() must still work against the extended JSON shape.
	ds, err := c.Datasets()
	if err != nil || len(ds) != 1 || ds[0] != "edsd" {
		t.Fatalf("Datasets() = %v, %v", ds, err)
	}

	// A data change moves the cheap stamp and bumps the dataset version.
	if _, err := db.Query(`INSERT INTO data VALUES ('edsd', 70, 22)`); err != nil {
		t.Fatal(err)
	}
	stamp2, err := c.DataStamp()
	if err != nil {
		t.Fatal(err)
	}
	if stamp2 == stamp {
		t.Fatal("stamp did not move after INSERT")
	}
	info2, err := c.DatasetInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info2.Versions["edsd"] <= info.Versions["edsd"] {
		t.Fatalf("edsd version %d -> %d, want a bump", info.Versions["edsd"], info2.Versions["edsd"])
	}
}
