package federation

import (
	"errors"
	"time"
)

// ErrCircuitOpen is returned (wrapped) when a call is skipped because the
// worker's circuit breaker is open.
var ErrCircuitOpen = errors.New("circuit open")

// BreakerConfig tunes the master's per-worker circuit breakers.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures that opens a
	// worker's circuit (default 3).
	FailureThreshold int
	// Cooldown is how long an open circuit stays open before a half-open
	// probe is admitted (default 5s).
	Cooldown time.Duration
	// ProbeInterval paces the master's background re-probe of unhealthy
	// workers (default 15s; negative disables the background loop — probes
	// then only happen through calls and ProbeNow).
	ProbeInterval time.Duration
}

func (b BreakerConfig) threshold() int {
	if b.FailureThreshold <= 0 {
		return 3
	}
	return b.FailureThreshold
}

func (b BreakerConfig) cooldown() time.Duration {
	if b.Cooldown <= 0 {
		return 5 * time.Second
	}
	return b.Cooldown
}

func (b BreakerConfig) probeInterval() time.Duration {
	if b.ProbeInterval == 0 {
		return 15 * time.Second
	}
	return b.ProbeInterval
}

type breakerState int

const (
	stateClosed breakerState = iota
	stateHalfOpen
	stateOpen
)

func (s breakerState) String() string {
	switch s {
	case stateHalfOpen:
		return "half-open"
	case stateOpen:
		return "open"
	}
	return "closed"
}

// workerHealth is the master's circuit-breaker record for one worker.
type workerHealth struct {
	state    breakerState
	fails    int // consecutive failures
	openedAt time.Time
	probing  bool // a half-open probe is in flight
	lastErr  string
}

// allowCall reports whether a call to the worker may proceed. An open
// circuit past its cooldown transitions to half-open and admits exactly
// one probe call; the probe's reportResult closes or re-opens it.
func (m *Master) allowCall(id string) bool {
	m.healthMu.Lock()
	defer m.healthMu.Unlock()
	h := m.health[id]
	if h == nil {
		return true
	}
	switch h.state {
	case stateClosed:
		return true
	case stateOpen:
		if m.now().Sub(h.openedAt) < m.breaker.cooldown() {
			return false
		}
		h.state = stateHalfOpen
		h.probing = true
		workerStateGauge(id).Set(1)
		return true
	case stateHalfOpen:
		if h.probing {
			return false
		}
		h.probing = true
		return true
	}
	return true
}

// reportResult feeds one call outcome into the worker's breaker.
func (m *Master) reportResult(id string, err error) {
	m.healthMu.Lock()
	defer m.healthMu.Unlock()
	h := m.health[id]
	if h == nil {
		return
	}
	h.probing = false
	if err == nil {
		h.fails = 0
		if h.state != stateClosed {
			h.state = stateClosed
			workerStateGauge(id).Set(0)
			masterLog.Info("circuit closed", "worker", id)
		}
		h.lastErr = ""
		return
	}
	h.fails++
	h.lastErr = err.Error()
	if h.state == stateHalfOpen || h.fails >= m.breaker.threshold() {
		if h.state != stateOpen {
			fedCircuitOpens.Inc()
			masterLog.Warn("circuit opened", "worker", id,
				"fails", h.fails, "err", err.Error())
		}
		h.state = stateOpen
		h.openedAt = m.now()
		workerStateGauge(id).Set(2)
	}
}

// WorkerState returns the circuit state of one worker ("closed",
// "half-open" or "open"; "" for unknown workers).
func (m *Master) WorkerState(id string) string {
	m.healthMu.Lock()
	defer m.healthMu.Unlock()
	h := m.health[id]
	if h == nil {
		return ""
	}
	return h.state.String()
}

// WorkerStates snapshots every worker's circuit state and last error, for
// /healthz and mipctl.
func (m *Master) WorkerStates() map[string]WorkerStatus {
	m.healthMu.Lock()
	defer m.healthMu.Unlock()
	out := make(map[string]WorkerStatus, len(m.health))
	for id, h := range m.health {
		out[id] = WorkerStatus{State: h.state.String(), ConsecutiveFailures: h.fails, LastError: h.lastErr}
	}
	return out
}

// WorkerStatus is the externally visible health record of one worker.
type WorkerStatus struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	LastError           string `json:"last_error,omitempty"`
}

// probeLoop periodically re-probes unhealthy workers until Close.
func (m *Master) probeLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.stopProbe:
			return
		case <-t.C:
			m.ProbeNow()
		}
	}
}

// ProbeNow synchronously re-probes every worker that is unhealthy (or has
// no availability record) with a Datasets call, feeding the breaker and
// re-adopting recovered workers into the availability map. Tests and the
// background loop both drive recovery through this.
func (m *Master) ProbeNow() {
	for _, w := range m.Workers() {
		id := w.ID()
		m.mu.Lock()
		_, known := m.workerDS[id]
		m.mu.Unlock()
		if known && m.WorkerState(id) == "closed" {
			continue
		}
		if !m.allowCall(id) {
			continue
		}
		fedProbes.Inc()
		ds, err := w.Datasets()
		m.reportResult(id, err)
		m.mu.Lock()
		if err == nil {
			m.workerDS[id] = ds
		} else {
			delete(m.workerDS, id)
		}
		m.rebuildAvailLocked()
		m.mu.Unlock()
	}
}
