// Package federation implements MIP's federated execution core: the Master
// node that orchestrates algorithm flows and tracks dataset availability,
// the Worker nodes that run local computation steps inside their data
// engine (wrapped as SQL UDFs by the UDF generator), and the two
// aggregation paths — plain transfers (the remote/merge-table path for
// non-sensitive deployments) and secure aggregation through the SMPC
// cluster.
//
// The programming model mirrors the paper's Figure 2: an algorithm flow
// calls Session.LocalRun to execute a named local step on every worker
// holding the requested datasets, then aggregates the returned transfers
// (plain or SMPC) and optionally runs global steps, iterating until done.
package federation

import (
	"fmt"
	"sort"
)

// Kwargs are the keyword arguments of a local/global step (JSON-able).
type Kwargs map[string]any

// Transfer is the result dict a step emits. Only aggregated quantities may
// leave a worker; the worker enforces disclosure control before shipping.
type Transfer map[string]any

// Float returns a numeric entry (handles float64 and int).
func (t Transfer) Float(key string) (float64, error) {
	v, ok := t[key]
	if !ok {
		return 0, fmt.Errorf("federation: transfer missing %q", key)
	}
	switch x := v.(type) {
	case float64:
		return x, nil
	case int:
		return float64(x), nil
	case int64:
		return float64(x), nil
	}
	return 0, fmt.Errorf("federation: transfer %q is %T, not numeric", key, v)
}

// Floats returns a vector entry, accepting []float64 or []any (the shape
// JSON round-trips produce).
func (t Transfer) Floats(key string) ([]float64, error) {
	v, ok := t[key]
	if !ok {
		return nil, fmt.Errorf("federation: transfer missing %q", key)
	}
	switch x := v.(type) {
	case []float64:
		return x, nil
	case []any:
		out := make([]float64, len(x))
		for i, e := range x {
			f, ok := e.(float64)
			if !ok {
				return nil, fmt.Errorf("federation: transfer %q[%d] is %T", key, i, e)
			}
			out[i] = f
		}
		return out, nil
	}
	return nil, fmt.Errorf("federation: transfer %q is %T, not a vector", key, v)
}

// Matrix returns a matrix entry ([][]float64, or the JSON equivalent).
func (t Transfer) Matrix(key string) ([][]float64, error) {
	v, ok := t[key]
	if !ok {
		return nil, fmt.Errorf("federation: transfer missing %q", key)
	}
	switch x := v.(type) {
	case [][]float64:
		return x, nil
	case []any:
		out := make([][]float64, len(x))
		for i, r := range x {
			row, ok := r.([]any)
			if !ok {
				if fr, ok2 := r.([]float64); ok2 {
					out[i] = fr
					continue
				}
				return nil, fmt.Errorf("federation: transfer %q row %d is %T", key, i, r)
			}
			out[i] = make([]float64, len(row))
			for j, e := range row {
				f, ok := e.(float64)
				if !ok {
					return nil, fmt.Errorf("federation: transfer %q[%d][%d] is %T", key, i, j, e)
				}
				out[i][j] = f
			}
		}
		return out, nil
	}
	return nil, fmt.Errorf("federation: transfer %q is %T, not a matrix", key, v)
}

// flattenNumeric lowers a transfer's numeric entries (scalar, vector,
// matrix) for the named keys into one flat vector plus a shape directory,
// so the whole payload can be secret-shared as a single SMPC job. Keys are
// processed in sorted order for determinism across workers.
func flattenNumeric(t Transfer, keys []string) (flat []float64, shapes map[string][]int, err error) {
	shapes = make(map[string][]int, len(keys))
	sorted := append([]string(nil), keys...)
	sort.Strings(sorted)
	for _, k := range sorted {
		v, ok := t[k]
		if !ok {
			return nil, nil, fmt.Errorf("federation: secure key %q missing from transfer", k)
		}
		switch x := v.(type) {
		case float64:
			flat = append(flat, x)
			shapes[k] = []int{}
		case int:
			flat = append(flat, float64(x))
			shapes[k] = []int{}
		case []float64:
			flat = append(flat, x...)
			shapes[k] = []int{len(x)}
		case [][]float64:
			rows := len(x)
			cols := 0
			if rows > 0 {
				cols = len(x[0])
			}
			for _, r := range x {
				if len(r) != cols {
					return nil, nil, fmt.Errorf("federation: ragged matrix in secure key %q", k)
				}
				flat = append(flat, r...)
			}
			shapes[k] = []int{rows, cols}
		case []any:
			// JSON round trips deliver []any; recover vectors and matrices.
			if len(x) == 0 {
				shapes[k] = []int{0}
				continue
			}
			if _, isRow := x[0].([]any); isRow {
				rows := len(x)
				cols := -1
				for _, re := range x {
					row, ok := re.([]any)
					if !ok {
						return nil, nil, fmt.Errorf("federation: mixed matrix in secure key %q", k)
					}
					if cols == -1 {
						cols = len(row)
					} else if len(row) != cols {
						return nil, nil, fmt.Errorf("federation: ragged matrix in secure key %q", k)
					}
					for _, e := range row {
						f, ok := e.(float64)
						if !ok {
							return nil, nil, fmt.Errorf("federation: non-numeric matrix entry in %q", k)
						}
						flat = append(flat, f)
					}
				}
				shapes[k] = []int{rows, cols}
				continue
			}
			for _, e := range x {
				f, ok := e.(float64)
				if !ok {
					return nil, nil, fmt.Errorf("federation: non-numeric vector entry in %q", k)
				}
				flat = append(flat, f)
			}
			shapes[k] = []int{len(x)}
		default:
			return nil, nil, fmt.Errorf("federation: secure key %q has non-numeric type %T", k, v)
		}
	}
	return flat, shapes, nil
}

// unflattenNumeric rebuilds a transfer from a flat vector and shapes (the
// inverse of flattenNumeric).
func unflattenNumeric(flat []float64, shapes map[string][]int) (Transfer, error) {
	keys := make([]string, 0, len(shapes))
	for k := range shapes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := Transfer{}
	pos := 0
	for _, k := range keys {
		shape := shapes[k]
		switch len(shape) {
		case 0:
			if pos >= len(flat) {
				return nil, fmt.Errorf("federation: flat vector too short at %q", k)
			}
			out[k] = flat[pos]
			pos++
		case 1:
			n := shape[0]
			if pos+n > len(flat) {
				return nil, fmt.Errorf("federation: flat vector too short at %q", k)
			}
			out[k] = append([]float64(nil), flat[pos:pos+n]...)
			pos += n
		case 2:
			rows, cols := shape[0], shape[1]
			if pos+rows*cols > len(flat) {
				return nil, fmt.Errorf("federation: flat vector too short at %q", k)
			}
			m := make([][]float64, rows)
			for i := range m {
				m[i] = append([]float64(nil), flat[pos:pos+cols]...)
				pos += cols
			}
			out[k] = m
		default:
			return nil, fmt.Errorf("federation: unsupported shape %v for %q", shape, k)
		}
	}
	if pos != len(flat) {
		return nil, fmt.Errorf("federation: flat vector length %d does not match shapes (%d consumed)", len(flat), pos)
	}
	return out, nil
}

// shapesEqual verifies all workers reported identical shape directories.
func shapesEqual(a, b map[string][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}
