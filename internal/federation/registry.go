package federation

import (
	"fmt"
	"sort"
	"sync"

	"mip/internal/engine"
	"mip/internal/udf"
)

// LocalFunc is a local computation step: it runs on a Worker with access to
// the primary data (already filtered to the requested datasets/variables)
// and returns a transfer dict. The worker wraps it as a SQL UDF through the
// UDF generator before execution.
type LocalFunc func(wctx *WorkerCtx, data *engine.Table, kwargs Kwargs) (Transfer, error)

// GlobalFunc is a global step executed on the Master over the workers'
// transfers (or their secure aggregate).
type GlobalFunc func(state any, localTransfers []Transfer, kwargs Kwargs) (Transfer, any, error)

// WorkerCtx gives a running local step controlled access to its hosting
// worker: loopback SQL against the local engine and the worker identity.
type WorkerCtx struct {
	WorkerID string
	UDF      *udf.Ctx
}

// Loopback runs SQL inside the worker's engine.
func (w *WorkerCtx) Loopback(sql string) (*engine.Table, error) { return w.UDF.Loopback(sql) }

// FuncRegistry holds the local and global steps of the installed algorithm
// library (every node in a MIP deployment has the same algorithms
// installed, so a process-wide default registry mirrors reality).
type FuncRegistry struct {
	mu      sync.RWMutex
	locals  map[string]LocalFunc
	globals map[string]GlobalFunc
}

// NewFuncRegistry returns an empty registry.
func NewFuncRegistry() *FuncRegistry {
	return &FuncRegistry{
		locals:  make(map[string]LocalFunc),
		globals: make(map[string]GlobalFunc),
	}
}

// RegisterLocal installs a local step.
func (r *FuncRegistry) RegisterLocal(name string, fn LocalFunc) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.locals[name]; ok {
		return fmt.Errorf("federation: local func %q already registered", name)
	}
	r.locals[name] = fn
	return nil
}

// RegisterGlobal installs a global step.
func (r *FuncRegistry) RegisterGlobal(name string, fn GlobalFunc) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.globals[name]; ok {
		return fmt.Errorf("federation: global func %q already registered", name)
	}
	r.globals[name] = fn
	return nil
}

// MustRegisterLocal is RegisterLocal for package init blocks.
func (r *FuncRegistry) MustRegisterLocal(name string, fn LocalFunc) {
	if err := r.RegisterLocal(name, fn); err != nil {
		panic(err)
	}
}

// MustRegisterGlobal is RegisterGlobal for package init blocks.
func (r *FuncRegistry) MustRegisterGlobal(name string, fn GlobalFunc) {
	if err := r.RegisterGlobal(name, fn); err != nil {
		panic(err)
	}
}

// Local returns the named local step, or nil.
func (r *FuncRegistry) Local(name string) LocalFunc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.locals[name]
}

// Global returns the named global step, or nil.
func (r *FuncRegistry) Global(name string) GlobalFunc {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.globals[name]
}

// LocalNames lists registered local steps, sorted.
func (r *FuncRegistry) LocalNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.locals))
	for n := range r.locals {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DefaultRegistry is the process-wide algorithm library.
var DefaultRegistry = NewFuncRegistry()

// RegisterLocal installs a local step into the default registry.
func RegisterLocal(name string, fn LocalFunc) { DefaultRegistry.MustRegisterLocal(name, fn) }

// RegisterGlobal installs a global step into the default registry.
func RegisterGlobal(name string, fn GlobalFunc) { DefaultRegistry.MustRegisterGlobal(name, fn) }
