package federation

import (
	"container/list"
	"errors"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"mip/internal/engine"
	"mip/internal/obs"
)

// Result cache: the master-side cache of complete federated query results,
// keyed on (canonical SQL, tenant, per-worker dataset versions). Because
// every worker's dataset versions are baked into the key, invalidation is
// strict and automatic: any data change on a relevant worker changes the
// key, the old entry becomes unreachable, and the LRU ages it out. A
// worker restart changes its boot id, so versions from a previous process
// never validate a stale entry.
//
// Entries are byte-budgeted: each cached table's payload is charged to the
// cache's MemAccountant and the least recently used entries are evicted
// when the budget is exceeded. Concurrent identical misses collapse
// singleflight-style — the first caller executes, the rest wait and share
// its result — so a dashboard herd runs the query once. Only a successful
// result is shared: a leader's error (its own deadline or cancellation, a
// flush aborting the flight) sends the waiters back to execute for
// themselves rather than failing unrelated callers.
//
// Cached tables are shared by reference across callers and must be treated
// as immutable, which all read paths (API encoding, merge rendering) do.

var (
	fedResultCacheHits = obs.GetCounter("mip_result_cache_hits_total",
		"Federated queries served from the master's result cache.")
	fedResultCacheMisses = obs.GetCounter("mip_result_cache_misses_total",
		"Cacheable federated queries that missed the result cache.")
	fedResultCacheEvictions = obs.GetCounter("mip_result_cache_evictions_total",
		"Result-cache entries evicted under the byte budget.")
	fedResultCacheBytes = obs.GetGauge("mip_result_cache_bytes",
		"Bytes of result payload currently held by the master's result cache.")
)

// versionedClient is the optional WorkerClient extension the result cache
// needs: per-dataset version stamps plus the cheap change probe. *Worker
// and *HTTPWorkerClient implement it; queries touching a worker that does
// not bypass the cache.
type versionedClient interface {
	DatasetInfo() (DatasetInfo, error)
	DataStamp() (string, error)
}

// ResultCacheStats is the snapshot served by GET /cache.
type ResultCacheStats struct {
	BudgetBytes int64 `json:"budget_bytes"`
	Bytes       int64 `json:"bytes"`
	Entries     int   `json:"entries"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
}

// resultEntry is one cached federated result.
type resultEntry struct {
	key   string
	table *engine.Table
	bytes int64
}

// errFlightAborted is published to a flight's waiters when Flush drops the
// flight mid-execution; waiters fall back to executing for themselves.
var errFlightAborted = errors.New("federation: result cache flushed during execution")

// resultFlight is one in-progress execution that identical concurrent
// queries wait on instead of re-executing.
type resultFlight struct {
	done    chan struct{}
	closed  bool // outcome published, done closed; guarded by the cache mu
	table   *engine.Table
	dropped []string
	err     error
}

// ResultCache is a thread-safe, byte-budgeted LRU of federated query
// results with singleflight collapsing of identical misses.
type ResultCache struct {
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	budget int64
	acct   engine.MemAccountant // zero value: accounting without a hard limit

	mu       sync.Mutex
	ll       *list.List // front = most recent; values are *resultEntry
	entries  map[string]*list.Element
	inflight map[string]*resultFlight
}

// NewResultCache returns a cache evicting LRU past the given byte budget;
// budget <= 0 returns nil (caching disabled).
func NewResultCache(budget int64) *ResultCache {
	if budget <= 0 {
		return nil
	}
	return &ResultCache{
		budget:   budget,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*resultFlight),
	}
}

// Stats snapshots the cache counters; the zero value is returned for a nil
// (disabled) cache.
func (c *ResultCache) Stats() ResultCacheStats {
	if c == nil {
		return ResultCacheStats{}
	}
	c.mu.Lock()
	n := c.ll.Len()
	c.mu.Unlock()
	return ResultCacheStats{
		BudgetBytes: c.budget,
		Bytes:       c.acct.Live(),
		Entries:     n,
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
	}
}

// Flush drops every entry and aborts every in-flight singleflight
// execution (counters are kept). Aborted flights release their waiters
// with errFlightAborted — the operational escape hatch if a leader ever
// wedges — and the waiters fall back to executing for themselves; the
// leader's own caller still receives the leader's real outcome.
func (c *ResultCache) Flush() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*resultEntry)
		c.acct.Release(e.bytes)
	}
	c.ll.Init()
	c.entries = make(map[string]*list.Element)
	for key, f := range c.inflight {
		f.closed = true
		f.err = errFlightAborted
		close(f.done)
		delete(c.inflight, key)
	}
	fedResultCacheBytes.Set(float64(c.acct.Live()))
}

// lookup peeks for a cached result without joining a flight. A find counts
// as a hit; an absence is not counted as a miss, because the caller
// (EXPLAIN ANALYZE) then executes outside the cache. Used by ExplainAs.
func (c *ResultCache) lookup(key string) (*engine.Table, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.entries[key]
	if el == nil {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits.Add(1)
	fedResultCacheHits.Inc()
	return el.Value.(*resultEntry).table, true
}

// begin resolves a key: a cached table (hit), an in-progress flight to
// wait on (leader = false), or a freshly registered flight this caller
// must execute and finish (leader = true).
func (c *ResultCache) begin(key string) (t *engine.Table, f *resultFlight, leader bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el := c.entries[key]; el != nil {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		fedResultCacheHits.Inc()
		return el.Value.(*resultEntry).table, nil, false
	}
	c.misses.Add(1)
	fedResultCacheMisses.Inc()
	if f := c.inflight[key]; f != nil {
		return nil, f, false
	}
	f = &resultFlight{done: make(chan struct{})}
	c.inflight[key] = f
	return nil, f, true
}

// finish publishes a leader's outcome: waiters are released, and a
// complete (non-degraded, error-free) result is inserted under the key.
// A flight already aborted by Flush is left as published — the leader's
// late outcome is simply not cached (its own caller still gets it via the
// leader's return values).
func (c *ResultCache) finish(key string, f *resultFlight, t *engine.Table, dropped []string, err error) {
	c.mu.Lock()
	if f.closed {
		c.mu.Unlock()
		return
	}
	f.closed = true
	f.table, f.dropped, f.err = t, dropped, err
	if c.inflight[key] == f {
		delete(c.inflight, key)
	}
	if err == nil && len(dropped) == 0 && t != nil {
		c.putLocked(key, t)
	}
	c.mu.Unlock()
	close(f.done)
}

func (c *ResultCache) putLocked(key string, t *engine.Table) {
	if c.entries[key] != nil {
		return
	}
	e := &resultEntry{key: key, table: t, bytes: t.ByteSize()}
	c.entries[key] = c.ll.PushFront(e)
	c.acct.Charge(e.bytes)
	for c.acct.Live() > c.budget && c.ll.Len() > 1 {
		old := c.ll.Back()
		oe := old.Value.(*resultEntry)
		c.ll.Remove(old)
		delete(c.entries, oe.key)
		c.acct.Release(oe.bytes)
		c.evictions.Add(1)
		fedResultCacheEvictions.Inc()
	}
	// A single result larger than the whole budget is not worth keeping.
	if c.acct.Live() > c.budget {
		c.ll.Remove(c.entries[key])
		delete(c.entries, key)
		c.acct.Release(e.bytes)
		c.evictions.Add(1)
		fedResultCacheEvictions.Inc()
	}
	fedResultCacheBytes.Set(float64(c.acct.Live()))
}

// workerVerState is the master's last-known version snapshot for one
// worker: while the worker's cheap DataStamp still equals stamp, every
// entry of vers is current.
type workerVerState struct {
	stamp string
	boot  string
	vers  map[string]uint64
}

// resultKey derives the cache key for sql attributed to tenant over the
// given workers, or ok = false when any worker cannot vouch for its data
// versions (no version support, probe error) — those queries bypass the
// cache entirely rather than risk a stale serve.
//
// The per-worker fragment enumerates the versions of exactly the datasets
// the query touches (all of the worker's datasets when the request names
// none), so data changes in unrelated datasets do not invalidate the entry.
func (m *Master) resultKey(tenant string, datasets []string, sql string, ws []WorkerClient) (string, bool) {
	canon := sql
	if c, ok := engine.NormalizeSQL(sql); ok {
		canon = c
	}
	want := map[string]bool{}
	for _, d := range datasets {
		want[d] = true
	}
	frags := make([]string, 0, len(ws))
	for _, w := range ws {
		vc, ok := w.(versionedClient)
		if !ok {
			return "", false
		}
		st, err := m.workerVersions(w.ID(), vc)
		if err != nil {
			return "", false
		}
		var b strings.Builder
		b.WriteString(w.ID())
		b.WriteString("@")
		b.WriteString(st.boot)
		b.WriteString("{")
		codes := make([]string, 0, len(st.vers))
		for ds := range st.vers {
			if len(want) == 0 || want[ds] {
				codes = append(codes, ds)
			}
		}
		sort.Strings(codes)
		for _, ds := range codes {
			b.WriteString(ds)
			b.WriteString("=")
			b.WriteString(strconv.FormatUint(st.vers[ds], 10))
			b.WriteString(",")
		}
		b.WriteString("}")
		frags = append(frags, b.String())
	}
	sort.Strings(frags)
	return tenant + "\x00" + strings.Join(frags, "|") + "\x00" + canon, true
}

// workerVersions returns a current version snapshot for the worker,
// revalidating the cached snapshot with the cheap stamp probe and
// refreshing it with a full DatasetInfo scan only when the stamp moved.
func (m *Master) workerVersions(id string, vc versionedClient) (workerVerState, error) {
	probe, err := vc.DataStamp()
	if err != nil {
		return workerVerState{}, err
	}
	m.verMu.Lock()
	st, ok := m.workerVers[id]
	m.verMu.Unlock()
	if ok && st.stamp == probe {
		return st, nil
	}
	info, err := vc.DatasetInfo()
	if err != nil {
		return workerVerState{}, err
	}
	st = workerVerState{stamp: info.Stamp, boot: info.Boot, vers: info.Versions}
	m.verMu.Lock()
	if m.workerVers == nil {
		m.workerVers = make(map[string]workerVerState)
	}
	m.workerVers[id] = st
	m.verMu.Unlock()
	return st, nil
}
