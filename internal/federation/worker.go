package federation

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"mip/internal/engine"
	"mip/internal/obs"
	"mip/internal/smpc"
	"mip/internal/udf"
)

// DataTable is the canonical name of the harmonized primary-data table each
// worker hosts (variables as columns plus a "dataset" column).
const DataTable = "data"

// DefaultMinRows is the disclosure-control threshold: a local step whose
// input selects fewer than this many rows (but more than zero) may not ship
// transfers off the worker.
const DefaultMinRows = 10

// LocalRunRequest asks a worker to execute one local computation step.
type LocalRunRequest struct {
	JobID string `json:"job_id"`
	// Func names the registered local step.
	Func string `json:"func"`
	// DataQuery is the SQL producing the step's relation input (generated
	// by the master from the experiment's variables/datasets/filter).
	DataQuery string `json:"data_query"`
	// Kwargs are the step's keyword arguments.
	Kwargs Kwargs `json:"kwargs"`
	// ShareToGlobal ships the transfer back to the master (plain path).
	ShareToGlobal bool `json:"share_to_global"`
	// SecureKeys, when non-empty, secret-shares the named numeric transfer
	// entries into the SMPC cluster under JobID instead of returning them;
	// only shape metadata leaves the worker.
	SecureKeys []string `json:"secure_keys,omitempty"`
	// Tenant and Datasets attribute the step for metering and audit: the
	// worker tags its engine statements with them, so per-hospital access
	// records name the owning tenant and the datasets touched. Additive
	// JSON fields — older workers ignore them.
	Tenant   string   `json:"tenant,omitempty"`
	Datasets []string `json:"datasets,omitempty"`
	// Trace carries the master's trace context so worker-side spans nest
	// under the per-worker round-trip span. On the HTTP hop it also rides
	// the X-MIP-Trace header; nil disables tracing for the step.
	Trace *obs.TraceRef `json:"trace,omitempty"`
}

// LocalRunResponse carries the step's outputs (or pointers to them).
type LocalRunResponse struct {
	// WorkerID identifies the responding worker.
	WorkerID string `json:"worker_id"`
	// Transfer holds the result when ShareToGlobal is set and the secure
	// path is not in use.
	Transfer Transfer `json:"transfer,omitempty"`
	// TransferRef points to the worker-resident result otherwise.
	TransferRef string `json:"transfer_ref,omitempty"`
	// Shapes reports the layout of securely shared entries.
	Shapes map[string][]int `json:"shapes,omitempty"`
	// Rows is the number of input rows the step consumed (not shipped in
	// privacy-sensitive deployments; used by tests and the leakage audit).
	Rows int `json:"rows"`
	// Spans are the worker-side trace spans of this step, shipped back in
	// the envelope so the master grafts them into the experiment tree.
	// Spans carry timings and row counts only — never data values.
	Spans []obs.SpanData `json:"spans,omitempty"`
}

// Worker is one hospital node: the local data engine, the installed
// algorithm library, and the enforcement point of the platform's privacy
// boundary.
type Worker struct {
	id       string
	db       *engine.DB
	funcs    *FuncRegistry
	udfReg   *udf.Registry
	exec     *udf.Exec
	smpc     *smpc.Cluster // the decoupled SMPC cluster (nil = plain only)
	minRows  int
	mu       sync.Mutex
	results  map[string]Transfer // transfer_ref → kept-local results
	refSeq   int
	datasets []string
	jobs     map[string]*jobEntry // JobID → dedupe record (replayed /localrun)
	jobOrder []string             // FIFO eviction order for jobs

	// Dataset version stamps for the master's result cache. bootID is
	// restart-unique, so versions from a previous process never validate a
	// stale entry; dsVers assigns each dataset a monotonic version bumped
	// when its data changes (see refreshDatasets).
	bootID      string
	verSeq      uint64
	dsVers      map[string]uint64
	dsCounts    map[string]float64 // dataset → row count at last refresh
	lastDataVer uint64             // engine data version at last refresh
	lastBlind   uint64             // engine blind-bump count at last refresh
}

// jobDedupeCap bounds the replay-dedupe cache; the oldest job records are
// evicted first. 256 comfortably covers the retry window of live steps.
const jobDedupeCap = 256

// jobEntry records one step execution so replays of the same JobID (from
// the master's retry layer) return the original result instead of running
// the step — and, on the secure path, re-importing shares — twice.
type jobEntry struct {
	done   chan struct{} // closed when resp/err are final
	cancel context.CancelCauseFunc
	resp   LocalRunResponse
	err    error
}

// WorkerOption configures a Worker.
type WorkerOption func(*Worker)

// WithSMPC connects the worker to an SMPC cluster for secure importation.
func WithSMPC(c *smpc.Cluster) WorkerOption {
	return func(w *Worker) { w.smpc = c }
}

// WithMinRows overrides the disclosure-control threshold.
func WithMinRows(n int) WorkerOption {
	return func(w *Worker) { w.minRows = n }
}

// WithFuncs overrides the algorithm library (default: DefaultRegistry).
func WithFuncs(r *FuncRegistry) WorkerOption {
	return func(w *Worker) { w.funcs = r }
}

// NewWorker creates a worker over the given engine database. The database
// should contain the harmonized DataTable.
func NewWorker(id string, db *engine.DB, opts ...WorkerOption) *Worker {
	w := &Worker{
		id:      id,
		db:      db,
		funcs:   DefaultRegistry,
		udfReg:  udf.NewRegistry(),
		minRows: DefaultMinRows,
		results: make(map[string]Transfer),
		jobs:    make(map[string]*jobEntry),
		bootID:  randHex(8),
		dsVers:  make(map[string]uint64),
	}
	for _, o := range opts {
		o(w)
	}
	w.exec = &udf.Exec{Registry: w.udfReg, DB: db}
	w.refreshDatasets()
	return w
}

// randHex mints a short random identifier (worker boot ids).
func randHex(n int) string {
	b := make([]byte, n)
	rand.Read(b)
	return hex.EncodeToString(b)
}

// ID implements WorkerClient.
func (w *Worker) ID() string { return w.id }

// DB exposes the worker's engine (tests, ETL).
func (w *Worker) DB() *engine.DB { return w.db }

// refreshDatasets scans the data table for the dataset column values and
// maintains the per-dataset version stamps. A dataset's version bumps when
// its row count changes (append, partial delete, new dataset). Attribution
// by count-diffing is trusted only when it is airtight: if the engine
// reports any blind bump (BumpDataVersion from an in-place loader, DDL
// swapping a table wholesale), or the data version advanced by a number of
// mutations different from the row-count-change tally (multi-dataset
// statements, anything unexplained), every dataset's version bumps.
// Strict equality matters: a surplus of count changes (one DELETE spanning
// two datasets) must not bank headroom that would mask a concurrent
// count-invisible mutation — over-invalidation is safe, serving stale
// cached results is not.
func (w *Worker) refreshDatasets() {
	w.datasets = nil
	dv := w.db.DataVersion()
	blind := w.db.DataBumps()
	t, err := w.db.Query(fmt.Sprintf(`SELECT dataset, count(*) AS n FROM %s GROUP BY dataset ORDER BY dataset`, DataTable))
	if err != nil {
		return
	}
	counts := make(map[string]float64, t.NumRows())
	for i := 0; i < t.NumRows(); i++ {
		ds := t.Col(0).StringAt(i)
		w.datasets = append(w.datasets, ds)
		counts[ds] = t.Col(1).CastFloat64().Float64s()[i]
	}
	changed := 0
	for ds, n := range counts {
		if old, ok := w.dsCounts[ds]; !ok || old != n {
			w.verSeq++
			w.dsVers[ds] = w.verSeq
			changed++
		}
	}
	for ds := range w.dsCounts {
		if _, ok := counts[ds]; !ok {
			delete(w.dsVers, ds)
			changed++
		}
	}
	if blind != w.lastBlind || dv-w.lastDataVer != uint64(changed) {
		for ds := range w.dsVers {
			w.verSeq++
			w.dsVers[ds] = w.verSeq
		}
	}
	w.dsCounts = counts
	w.lastDataVer = dv
	w.lastBlind = blind
}

// DatasetInfo bundles a worker's dataset availability with the version
// stamps the master's result cache keys on. Additive JSON over the
// /datasets wire shape, so older clients decoding only `datasets` keep
// working.
type DatasetInfo struct {
	Datasets []string          `json:"datasets"`
	Versions map[string]uint64 `json:"versions,omitempty"`
	// Boot is the worker instance id (restart-unique).
	Boot string `json:"boot,omitempty"`
	// Stamp is the cheap change probe: Boot + ":" + the engine data version
	// this snapshot was taken at. While a later DataStamp equals it, every
	// version in Versions is still current.
	Stamp string `json:"stamp,omitempty"`
}

// DatasetInfo implements the master's optional versioned-client interface:
// availability plus current per-dataset versions.
func (w *Worker) DatasetInfo() (DatasetInfo, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.refreshDatasets()
	vers := make(map[string]uint64, len(w.dsVers))
	for k, v := range w.dsVers {
		vers[k] = v
	}
	return DatasetInfo{
		Datasets: append([]string(nil), w.datasets...),
		Versions: vers,
		Boot:     w.bootID,
		Stamp:    w.bootID + ":" + strconv.FormatUint(w.lastDataVer, 10),
	}, nil
}

// DataStamp is the cheap change probe: no table scan, just the engine's
// data-version atomic. If it still equals the Stamp of an earlier
// DatasetInfo, no data on this worker has changed since that snapshot.
func (w *Worker) DataStamp() (string, error) {
	return w.bootID + ":" + strconv.FormatUint(w.db.DataVersion(), 10), nil
}

// Datasets implements WorkerClient: the dataset availability the master
// tracks for algorithm shipping.
func (w *Worker) Datasets() ([]string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.refreshDatasets()
	return append([]string(nil), w.datasets...), nil
}

// Query implements WorkerClient: the remote-table path (non-sensitive
// deployments only; production MIP disables raw remote queries).
func (w *Worker) Query(sql string) (*engine.Table, error) { return w.db.Query(sql) }

// QueryCtx is Query scoped by a caller context: cancelling it aborts the
// engine execution at the next batch boundary. Federation transports use it
// so a master-side kill reaches the worker's engine.
func (w *Worker) QueryCtx(ctx context.Context, sql string) (*engine.Table, error) {
	return w.db.QueryCtx(ctx, sql)
}

// CancelJob aborts a step that is still executing under the given JobID.
// Returns true if a live job was found and its cancellation triggered. The
// dedupe entry is cleared once the step unwinds, so a later replay of the
// same JobID re-executes instead of returning the cancelled error forever.
func (w *Worker) CancelJob(jobID string) bool {
	w.mu.Lock()
	e, ok := w.jobs[jobID]
	w.mu.Unlock()
	if !ok || e.cancel == nil {
		return false
	}
	select {
	case <-e.done:
		return false // already finished; nothing to cancel
	default:
	}
	e.cancel(engine.ErrQueryCancelled)
	return true
}

// LocalRun implements WorkerClient: executes a local step inside the
// engine via the UDF generator, applies disclosure control, and routes the
// transfer through the requested path. When the request carries a trace
// context the worker records an execution span (with engine query stats)
// and ships it back in the response envelope.
//
// Calls are deduplicated by JobID: a replay of an already-completed step
// (the master retries transient transport failures) returns the cached
// response, and a replay racing the still-running original waits for it
// instead of executing twice. This is what makes /localrun idempotent —
// critical on the secure path, where re-running a step would import its
// secret shares into the SMPC cluster a second time.
func (w *Worker) LocalRun(req LocalRunRequest) (LocalRunResponse, error) {
	return w.LocalRunCtx(context.Background(), req)
}

// LocalRunCtx is LocalRun scoped by a caller context. Cancelling the context
// — or calling CancelJob with the step's JobID — aborts the in-engine
// execution at the next batch boundary, so a master-side experiment kill
// stops workers mid-step.
func (w *Worker) LocalRunCtx(ctx context.Context, req LocalRunRequest) (LocalRunResponse, error) {
	if req.JobID == "" {
		return w.runStep(ctx, req)
	}
	for {
		w.mu.Lock()
		e, ok := w.jobs[req.JobID]
		if !ok {
			jctx, jcancel := context.WithCancelCause(ctx)
			e = &jobEntry{done: make(chan struct{}), cancel: jcancel}
			w.jobs[req.JobID] = e
			w.jobOrder = append(w.jobOrder, req.JobID)
			for len(w.jobOrder) > jobDedupeCap {
				delete(w.jobs, w.jobOrder[0])
				w.jobOrder = w.jobOrder[1:]
			}
			w.mu.Unlock()
			e.resp, e.err = w.runStep(jctx, req)
			jcancel(nil)
			close(e.done)
			return e.resp, e.err
		}
		w.mu.Unlock()
		<-e.done
		if e.err == nil {
			fedReplaysDeduped.Inc()
			return e.resp, nil
		}
		// The recorded attempt failed; clear it (unless a concurrent replay
		// already did) and re-execute.
		w.mu.Lock()
		if w.jobs[req.JobID] == e {
			delete(w.jobs, req.JobID)
		}
		w.mu.Unlock()
	}
}

var workerLog = obs.Logger("worker")

// runStep executes one local step unconditionally (no dedupe).
func (w *Worker) runStep(ctx context.Context, req LocalRunRequest) (LocalRunResponse, error) {
	fedWorkerRuns.Inc()
	span := obs.DefaultTraces.StartSpanRef(req.Trace, "exec "+req.Func)
	span.SetAttr("worker", w.id)
	start := time.Now()
	resp, err := w.doLocalRun(ctx, req, span)
	span.SetError(err)
	span.End()
	if span != nil {
		resp.Spans = append(resp.Spans, span.Data())
	}
	l := obs.WithTrace(workerLog, req.Trace).With(
		"worker", w.id, "func", req.Func, "job_id", req.JobID)
	if err != nil {
		l.Warn("local step failed", "seconds", time.Since(start).Seconds(), "err", err.Error())
	} else {
		l.Debug("local step done", "seconds", time.Since(start).Seconds(), "rows", resp.Rows)
	}
	return resp, err
}

func (w *Worker) doLocalRun(ctx context.Context, req LocalRunRequest, span *obs.Span) (LocalRunResponse, error) {
	resp := LocalRunResponse{WorkerID: w.id}
	if ctx == nil {
		ctx = context.Background()
	}
	// Attribute engine queries of this step: the active-query registry
	// shows which experiment step (and tenant) a worker-side query belongs
	// to, and the tenant meter and audit trail record the access.
	if req.JobID != "" || req.Tenant != "" {
		ctx = engine.WithQueryAttribution(ctx, engine.Attribution{
			Tenant:   req.Tenant,
			Job:      req.JobID,
			Datasets: req.Datasets,
		})
	}
	fn := w.funcs.Local(req.Func)
	if fn == nil {
		return resp, fmt.Errorf("federation: worker %s has no local func %q", w.id, req.Func)
	}

	// Wrap the step as a SQL UDF (idempotently) and run it in-engine.
	udfName := "fed_" + req.Func
	if w.udfReg.Lookup(udfName) == nil {
		def := &udf.Def{
			Name:   udfName,
			Doc:    "federated local step " + req.Func,
			Inputs: []udf.IOSpec{{Name: "data", Kind: udf.Relation}, {Name: "kwargs", Kind: udf.Transfer}},
			Outputs: []udf.IOSpec{
				{Name: "transfer", Kind: udf.Transfer},
			},
			Body: func(ctx *udf.Ctx, args []udf.Value) ([]udf.Value, error) {
				wctx := &WorkerCtx{WorkerID: w.id, UDF: ctx}
				kw := Kwargs(args[1].Transfer)
				tr, err := fn(wctx, args[0].Table, kw)
				if err != nil {
					return nil, err
				}
				return []udf.Value{udf.TransferValue(tr)}, nil
			},
		}
		if err := w.udfReg.Register(def); err != nil && w.udfReg.Lookup(udfName) == nil {
			return resp, err
		}
	}

	args := []udf.Value{{}, udf.TransferValue(req.Kwargs)}
	udfSpan := span.StartChild("udf " + udfName)
	outs, err := w.exec.CallCtx(ctx, udfName, args, map[string]string{"data": req.DataQuery})
	udfSpan.SetError(err)
	udfSpan.End()
	if udfSpan != nil {
		resp.Spans = append(resp.Spans, udfSpan.Data())
	}
	if err != nil {
		return resp, err
	}
	transfer := Transfer(outs[0].Transfer)

	// Row count for disclosure control.
	rows, err := w.countRows(ctx, req.DataQuery, span, &resp)
	if err != nil {
		return resp, err
	}
	resp.Rows = rows
	leavesWorker := req.ShareToGlobal || len(req.SecureKeys) > 0
	if leavesWorker && rows > 0 && rows < w.minRows {
		fedDisclosureBlocks.Inc()
		return resp, fmt.Errorf("federation: worker %s: disclosure control: %d rows < minimum %d", w.id, rows, w.minRows)
	}

	if len(req.SecureKeys) > 0 {
		if w.smpc == nil {
			return resp, fmt.Errorf("federation: worker %s has no SMPC cluster attached", w.id)
		}
		flat, shapes, err := flattenNumeric(transfer, req.SecureKeys)
		if err != nil {
			return resp, err
		}
		if err := w.smpc.ImportSecret(req.JobID, w.id, flat); err != nil {
			return resp, err
		}
		resp.Shapes = shapes
		return resp, nil
	}

	if req.ShareToGlobal {
		resp.Transfer = transfer
		return resp, nil
	}

	// Result stays on the worker as a pointer.
	w.mu.Lock()
	w.refSeq++
	ref := fmt.Sprintf("%s/%s#%d", w.id, req.JobID, w.refSeq)
	w.results[ref] = transfer
	w.mu.Unlock()
	resp.TransferRef = ref
	return resp, nil
}

// countRows evaluates the data query's row count (with a cheap rewrite for
// plain SELECT ... FROM shapes; falls back to running the query). The
// engine's per-query stats land on a child trace span when tracing is on.
func (w *Worker) countRows(ctx context.Context, dataQuery string, parent *obs.Span, resp *LocalRunResponse) (int, error) {
	if dataQuery == "" {
		return 0, nil
	}
	qspan := parent.StartChild("engine query")
	t, qs, err := w.db.QueryWithStatsCtx(ctx, dataQuery)
	if err != nil {
		qspan.SetError(err)
		qspan.End()
		if qspan != nil {
			resp.Spans = append(resp.Spans, qspan.Data())
		}
		return 0, err
	}
	for k, v := range qs.AttrMap() {
		qspan.SetAttr(k, v)
	}
	qspan.SetAttr("op_nanos", strconv.FormatInt(
		qs.FilterNanos+qs.AggregateNanos+qs.SortNanos+qs.ProjectNanos+qs.JoinNanos+qs.MergeNanos, 10))
	qspan.End()
	if qspan != nil {
		d := qspan.Data()
		resp.Spans = append(resp.Spans, d)
		// Graft the measured operator tree under the query span, so the
		// master's experiment trace shows this worker's per-operator
		// breakdown. Spans carry shapes and timings only — never values.
		planSpans(d.TraceID, d.SpanID, d.Start, qs.Root, &resp.Spans)
	}
	return t.NumRows(), nil
}

// planSpans synthesizes one trace span per plan operator, nesting like the
// plan tree (an operator's inputs become its child spans). Absolute operator
// start times are not tracked, so every span starts at the query start and
// its duration carries the operator's measured wall time.
func planSpans(traceID, parentID string, start time.Time, n *engine.PlanNode, out *[]obs.SpanData) {
	if n == nil {
		return
	}
	name := "op " + n.Op
	if n.Detail != "" {
		name += " " + n.Detail
	}
	if len(name) > 80 {
		name = name[:77] + "..."
	}
	id := obs.NewSpanID()
	*out = append(*out, obs.SpanData{
		TraceID: traceID,
		SpanID:  id,
		Parent:  parentID,
		Name:    name,
		Start:   start,
		End:     start.Add(time.Duration(n.Nanos)),
		Attrs:   n.Attrs(),
	})
	for _, c := range n.Children {
		planSpans(traceID, id, start, c, out)
	}
}

// LocalResult retrieves a kept-local transfer by ref (worker-side only; the
// master never calls this in privacy mode — it is how subsequent local
// steps consume prior results).
func (w *Worker) LocalResult(ref string) (Transfer, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	t, ok := w.results[ref]
	return t, ok
}

// GenerateStepSQL exposes the UDF-to-SQL text for a registered step; shown
// by the CLI's explain mode, mirroring the paper's generated wrappers.
func (w *Worker) GenerateStepSQL(funcName, dataQuery string) (string, error) {
	fn := w.funcs.Local(funcName)
	if fn == nil {
		return "", fmt.Errorf("federation: no local func %q", funcName)
	}
	def := &udf.Def{
		Name:    "fed_" + funcName,
		Inputs:  []udf.IOSpec{{Name: "data", Kind: udf.Relation}, {Name: "kwargs", Kind: udf.Transfer}},
		Outputs: []udf.IOSpec{{Name: "transfer", Kind: udf.Transfer}},
		Body:    func(*udf.Ctx, []udf.Value) ([]udf.Value, error) { return nil, nil },
	}
	src := strings.TrimSpace(dataQuery)
	if src == "" {
		src = DataTable
	} else {
		src = "(" + src + ")"
	}
	return udf.GenerateSQL(def, []string{src, "kwargs"}, ""), nil
}
