package federation

import (
	"fmt"

	"mip/internal/engine"
)

// WireTable is the JSON representation of an engine table used by the HTTP
// transport (and by the REST API when returning tabular results).
type WireTable struct {
	Columns []WireColumn `json:"columns"`
	Rows    [][]any      `json:"rows"`
}

// WireColumn is one column header.
type WireColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// EncodeTable converts an engine table to its wire form.
func EncodeTable(t *engine.Table) *WireTable {
	if t == nil {
		return nil
	}
	w := &WireTable{}
	for _, c := range t.Schema() {
		w.Columns = append(w.Columns, WireColumn{Name: c.Name, Type: c.Type.String()})
	}
	for i := 0; i < t.NumRows(); i++ {
		w.Rows = append(w.Rows, t.Row(i))
	}
	return w
}

// DecodeTable converts a wire table back to an engine table.
func DecodeTable(w *WireTable) (*engine.Table, error) {
	if w == nil {
		return nil, fmt.Errorf("federation: nil wire table")
	}
	schema := make(engine.Schema, len(w.Columns))
	for i, c := range w.Columns {
		typ, err := engine.ParseType(c.Type)
		if err != nil {
			return nil, err
		}
		schema[i] = engine.ColumnDef{Name: c.Name, Type: typ}
	}
	t := engine.NewTable(schema)
	for _, r := range w.Rows {
		if err := t.AppendRow(r...); err != nil {
			return nil, err
		}
	}
	return t, nil
}
