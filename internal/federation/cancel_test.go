package federation

import (
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mip/internal/engine"
)

// blockingCancelPart is a merge-table part whose QueryCtx parks until the
// statement's context dies, so a worker step stays "running" until it is
// cancelled; the observed context cause is delivered on the cause channel.
type blockingCancelPart struct {
	started chan struct{}
	cause   chan error
	once    sync.Once
}

func newBlockingCancelPart() *blockingCancelPart {
	return &blockingCancelPart{started: make(chan struct{}), cause: make(chan error, 4)}
}

func (p *blockingCancelPart) PartName() string { return "bp" }

func (p *blockingCancelPart) Query(string) (*engine.Table, error) {
	return nil, errors.New("blockingCancelPart needs QueryCtx")
}

func (p *blockingCancelPart) QueryCtx(ctx context.Context, _ string) (*engine.Table, error) {
	p.once.Do(func() { close(p.started) })
	<-ctx.Done()
	cause := context.Cause(ctx)
	p.cause <- cause
	return nil, cause
}

func (p *blockingCancelPart) waitStarted(t *testing.T) {
	t.Helper()
	select {
	case <-p.started:
	case <-time.After(5 * time.Second):
		t.Fatal("step never reached the blocking part")
	}
}

func (p *blockingCancelPart) waitCause(t *testing.T) error {
	t.Helper()
	select {
	case err := <-p.cause:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("blocking part never observed a cancellation")
		return nil
	}
}

// slowWorker builds a worker whose "slowtbl" view blocks inside the engine
// until the running statement is cancelled.
func slowWorker(t *testing.T, id string) (*Worker, *blockingCancelPart) {
	t.Helper()
	db := newWorkerDB(t, "edsd", 30, 0)
	bp := newBlockingCancelPart()
	db.RegisterMerge("slowtbl", &engine.MergeTable{
		Schema:    engine.Schema{{Name: "age", Type: engine.Float64}},
		TableName: "slowtbl",
		Parts:     []engine.Part{bp},
	})
	return NewWorker(id, db), bp
}

// TestWorkerCancelJobMidStep kills a running /localrun step through
// Worker.CancelJob and checks the whole chain: the job's engine statement
// is registered under the job id, the blocked query observes the
// cancellation cause mid-execution, and LocalRun unwinds with
// ErrQueryCancelled.
func TestWorkerCancelJobMidStep(t *testing.T) {
	w, bp := slowWorker(t, "w0")
	const jobID = "exp-cancel/step-1"

	done := make(chan error, 1)
	go func() {
		_, err := w.LocalRun(LocalRunRequest{
			JobID: jobID, Func: "test_sums",
			DataQuery:     `SELECT age FROM slowtbl`,
			ShareToGlobal: true,
		})
		done <- err
	}()
	bp.waitStarted(t)

	// While blocked, the step's statement must be visible in the active
	// registry tagged with the job id.
	tagged := false
	for _, q := range engine.Queries.List() {
		if q.Job == jobID {
			tagged = true
		}
	}
	if !tagged {
		t.Errorf("no active query tagged with job %q: %+v", jobID, engine.Queries.List())
	}

	if !w.CancelJob(jobID) {
		t.Fatal("CancelJob found no live job")
	}
	select {
	case err := <-done:
		if !errors.Is(err, engine.ErrQueryCancelled) {
			t.Fatalf("LocalRun error = %v, want ErrQueryCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not unwind after CancelJob")
	}
	if err := bp.waitCause(t); !errors.Is(err, engine.ErrQueryCancelled) {
		t.Fatalf("part context cause = %v, want ErrQueryCancelled", err)
	}
	// The job is finished now; a second cancel must report no live job.
	if w.CancelJob(jobID) {
		t.Fatal("CancelJob reported true for a finished job")
	}
}

// TestSessionCancelStopsWorkersMidStep cancels a master-side experiment
// while a worker step is blocked inside the engine, and checks the cancel
// propagates end to end: the session's LocalRun fails with
// ErrQueryCancelled, the worker's blocked statement observes the cause,
// and later steps on the session fail fast.
func TestSessionCancelStopsWorkersMidStep(t *testing.T) {
	w, bp := slowWorker(t, "w0")
	m, err := NewMaster([]WorkerClient{w}, nil, Security{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	sess, err := m.NewSession([]string{"edsd"})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := sess.LocalRun(LocalRunSpec{Func: "test_sums", DataQuery: `SELECT age FROM slowtbl`})
		done <- err
	}()
	bp.waitStarted(t)
	sess.Cancel()

	select {
	case err := <-done:
		if !errors.Is(err, engine.ErrQueryCancelled) {
			t.Fatalf("session LocalRun error = %v, want ErrQueryCancelled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("session did not unwind after Cancel")
	}
	if err := bp.waitCause(t); !errors.Is(err, engine.ErrQueryCancelled) {
		t.Fatalf("worker part context cause = %v, want ErrQueryCancelled", err)
	}
	// The session stays cancelled: further steps fail before reaching workers.
	if _, err := sess.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}); !errors.Is(err, engine.ErrQueryCancelled) {
		t.Fatalf("post-cancel LocalRun error = %v, want ErrQueryCancelled", err)
	}
}

// TestHTTPCancelJob exercises the wire path: a /localrun over HTTP blocks
// in the worker engine, POST /cancel (via HTTPWorkerClient.CancelJob)
// aborts it, and the HTTP LocalRun call returns the cancelled error.
func TestHTTPCancelJob(t *testing.T) {
	w, bp := slowWorker(t, "w0")
	srv := httptest.NewServer((&WorkerServer{Worker: w}).Handler())
	defer srv.Close()
	c := NewHTTPWorkerClient("w0", srv.URL)
	const jobID = "exp-http-cancel/step-1"

	done := make(chan error, 1)
	go func() {
		_, err := c.LocalRun(LocalRunRequest{
			JobID: jobID, Func: "test_sums",
			DataQuery:     `SELECT age FROM slowtbl`,
			ShareToGlobal: true,
		})
		done <- err
	}()
	bp.waitStarted(t)

	if !c.CancelJob(jobID) {
		t.Fatal("HTTP CancelJob reported no live job")
	}
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "cancelled") {
			t.Fatalf("HTTP LocalRun error = %v, want a cancelled error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("HTTP LocalRun did not unwind after CancelJob")
	}
	if err := bp.waitCause(t); !errors.Is(err, engine.ErrQueryCancelled) {
		t.Fatalf("worker part context cause = %v, want ErrQueryCancelled", err)
	}
}
