package federation

import (
	"fmt"
	"math"
	"net/http/httptest"
	"strings"
	"testing"

	"mip/internal/engine"
	"mip/internal/smpc"
)

func init() {
	// Test local step: per-column sums and count over the input relation.
	RegisterLocal("test_sums", func(wctx *WorkerCtx, data *engine.Table, kwargs Kwargs) (Transfer, error) {
		tr := Transfer{"n": float64(data.NumRows())}
		var vec []float64
		for i, col := range data.Schema() {
			if col.Type != engine.Float64 {
				continue
			}
			var s float64
			v := data.Col(i)
			for r := 0; r < v.Len(); r++ {
				if !v.IsNull(r) {
					s += v.Float64s()[r]
				}
			}
			vec = append(vec, s)
		}
		tr["sums"] = vec
		return tr, nil
	})
	// Test local step exercising loopback SQL.
	RegisterLocal("test_loopback", func(wctx *WorkerCtx, data *engine.Table, kwargs Kwargs) (Transfer, error) {
		t, err := wctx.Loopback("SELECT count(*) AS n FROM " + DataTable)
		if err != nil {
			return nil, err
		}
		return Transfer{"total": float64(t.Col(0).Int64s()[0])}, nil
	})
	// Test local step returning distinct times (for union tests).
	RegisterLocal("test_times", func(wctx *WorkerCtx, data *engine.Table, kwargs Kwargs) (Transfer, error) {
		seen := map[float64]struct{}{}
		v := data.ColByName("age").CastFloat64()
		for r := 0; r < v.Len(); r++ {
			if !v.IsNull(r) {
				seen[math.Floor(v.Float64s()[r]/10)] = struct{}{}
			}
		}
		var out []float64
		for x := range seen {
			out = append(out, x)
		}
		return Transfer{"times": out}, nil
	})
	RegisterGlobal("test_combine", func(state any, transfers []Transfer, kwargs Kwargs) (Transfer, any, error) {
		var total float64
		for _, t := range transfers {
			n, err := t.Float("n")
			if err != nil {
				return nil, nil, err
			}
			total += n
		}
		return Transfer{"grand_total": total}, total, nil
	})
}

// newWorkerDB builds a worker database holding `rows` patients of the given
// dataset with deterministic age/mmse values offset by base.
func newWorkerDB(t *testing.T, dataset string, rows int, base float64) *engine.DB {
	t.Helper()
	db := engine.NewDB()
	tab := engine.NewTable(engine.Schema{
		{Name: "dataset", Type: engine.String},
		{Name: "age", Type: engine.Float64},
		{Name: "mmse", Type: engine.Float64},
	})
	for i := 0; i < rows; i++ {
		var mmse any = base + float64(i%30)
		if i%13 == 0 {
			mmse = nil
		}
		if err := tab.AppendRow(dataset, 50+base+float64(i%40), mmse); err != nil {
			t.Fatal(err)
		}
	}
	db.RegisterTable(DataTable, tab)
	return db
}

func buildCluster(t *testing.T, scheme smpc.Scheme) *smpc.Cluster {
	t.Helper()
	c, err := smpc.NewCluster(smpc.Config{Scheme: scheme, Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func buildFed(t *testing.T, secure bool) (*Master, []*Worker) {
	t.Helper()
	var cluster *smpc.Cluster
	if secure {
		cluster = buildCluster(t, smpc.FullThreshold)
	}
	var workers []*Worker
	var clients []WorkerClient
	for i, ds := range []string{"edsd", "edsd", "ppmi"} {
		db := newWorkerDB(t, ds, 40+10*i, float64(i))
		var w *Worker
		if secure {
			w = NewWorker(fmt.Sprintf("hosp%d", i), db, WithSMPC(cluster))
		} else {
			w = NewWorker(fmt.Sprintf("hosp%d", i), db)
		}
		workers = append(workers, w)
		clients = append(clients, w)
	}
	m, err := NewMaster(clients, cluster, Security{UseSMPC: secure})
	if err != nil {
		t.Fatal(err)
	}
	return m, workers
}

func TestAvailabilityTracking(t *testing.T) {
	m, _ := buildFed(t, false)
	av := m.Availability()
	if len(av["edsd"]) != 2 || len(av["ppmi"]) != 1 {
		t.Fatalf("availability = %v", av)
	}
	if ds := m.Datasets(); len(ds) != 2 || ds[0] != "edsd" || ds[1] != "ppmi" {
		t.Fatalf("datasets = %v", ds)
	}
	if ws := m.WorkersFor([]string{"ppmi"}); len(ws) != 1 || ws[0].ID() != "hosp2" {
		t.Fatal("WorkersFor(ppmi) wrong")
	}
	if ws := m.WorkersFor(nil); len(ws) != 3 {
		t.Fatal("WorkersFor(nil) should select all")
	}
}

func TestSessionScoping(t *testing.T) {
	m, _ := buildFed(t, false)
	s, err := m.NewSession([]string{"edsd"})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumWorkers() != 2 {
		t.Fatalf("session workers = %d", s.NumWorkers())
	}
	if _, err := m.NewSession([]string{"absent"}); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestDataQuerySQL(t *testing.T) {
	m, _ := buildFed(t, false)
	s, _ := m.NewSession([]string{"edsd"})
	sql := s.DataQuery([]string{"age", "mmse"}, "age > 60", true)
	for _, want := range []string{"SELECT age, mmse FROM data", "dataset IN ('edsd')", "age IS NOT NULL", "mmse IS NOT NULL", "(age > 60)"} {
		if !strings.Contains(sql, want) {
			t.Fatalf("DataQuery = %q, missing %q", sql, want)
		}
	}
}

func TestLocalRunPlainAggregation(t *testing.T) {
	m, _ := buildFed(t, false)
	s, _ := m.NewSession(nil)
	transfers, err := s.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(transfers) != 3 {
		t.Fatalf("transfers = %d", len(transfers))
	}
	agg, err := AggregateSum(transfers, "n", "sums")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := agg.Float("n")
	if n != 40+50+60 {
		t.Fatalf("total n = %v", n)
	}
}

// The headline equivalence: SMPC aggregation must equal plain aggregation.
func TestSecureSumMatchesPlain(t *testing.T) {
	plainM, _ := buildFed(t, false)
	secureM, _ := buildFed(t, true)

	ps, _ := plainM.NewSession(nil)
	transfers, err := ps.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age", "mmse"}})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := AggregateSum(transfers, "n", "sums")
	if err != nil {
		t.Fatal(err)
	}

	ss, _ := secureM.NewSession(nil)
	secure, err := ss.Sum(LocalRunSpec{Func: "test_sums", Vars: []string{"age", "mmse"}}, "n", "sums")
	if err != nil {
		t.Fatal(err)
	}

	pn, _ := plain.Float("n")
	sn, _ := secure.Float("n")
	if math.Abs(pn-sn) > 1e-6 {
		t.Fatalf("n: plain %v secure %v", pn, sn)
	}
	pv, _ := plain.Floats("sums")
	sv, _ := secure.Floats("sums")
	if len(pv) != len(sv) {
		t.Fatalf("sums length %d vs %d", len(pv), len(sv))
	}
	for i := range pv {
		if math.Abs(pv[i]-sv[i]) > 1e-4*(1+math.Abs(pv[i])) {
			t.Fatalf("sums[%d]: plain %v secure %v", i, pv[i], sv[i])
		}
	}
}

// Secure path with Shamir scheme too.
func TestSecureSumShamir(t *testing.T) {
	cluster := buildCluster(t, smpc.ShamirScheme)
	db := newWorkerDB(t, "edsd", 40, 0)
	db2 := newWorkerDB(t, "edsd", 40, 5)
	w1 := NewWorker("a", db, WithSMPC(cluster))
	w2 := NewWorker("b", db2, WithSMPC(cluster))
	m, err := NewMaster([]WorkerClient{w1, w2}, cluster, Security{UseSMPC: true})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.NewSession(nil)
	out, err := s.Sum(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}, "n")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := out.Float("n")
	if n != 80 {
		t.Fatalf("n = %v", n)
	}
}

func TestDisclosureControl(t *testing.T) {
	db := newWorkerDB(t, "tiny", 5, 0) // below DefaultMinRows
	w := NewWorker("tiny", db)
	m, err := NewMaster([]WorkerClient{w}, nil, Security{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.NewSession(nil)
	if _, err := s.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}); err == nil {
		t.Fatal("transfers from <minRows rows must be blocked")
	}
	// Zero rows is allowed (empty result, nothing to disclose).
	if _, err := s.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}, Filter: "age > 10000"}); err != nil {
		t.Fatalf("zero-row step should pass: %v", err)
	}
	// Lower threshold unblocks.
	w2 := NewWorker("tiny2", newWorkerDB(t, "tiny", 5, 0), WithMinRows(2))
	m2, _ := NewMaster([]WorkerClient{w2}, nil, Security{})
	s2, _ := m2.NewSession(nil)
	if _, err := s2.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}); err != nil {
		t.Fatalf("minRows=2 should allow 5 rows: %v", err)
	}
}

func TestLoopbackFromLocalStep(t *testing.T) {
	m, _ := buildFed(t, false)
	s, _ := m.NewSession(nil)
	transfers, err := s.LocalRun(LocalRunSpec{Func: "test_loopback", Vars: []string{"age"}})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, tr := range transfers {
		n, _ := tr.Float("total")
		total += n
	}
	if total != 150 {
		t.Fatalf("loopback total = %v", total)
	}
}

func TestGlobalRun(t *testing.T) {
	m, _ := buildFed(t, false)
	s, _ := m.NewSession(nil)
	transfers, _ := s.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}})
	out, err := s.GlobalRun("test_combine", transfers, nil)
	if err != nil {
		t.Fatal(err)
	}
	gt, _ := out.Float("grand_total")
	if gt != 150 {
		t.Fatalf("grand_total = %v", gt)
	}
	if s.GlobalState != 150.0 {
		t.Fatalf("global state = %v", s.GlobalState)
	}
	if _, err := s.GlobalRun("missing", nil, nil); err == nil {
		t.Fatal("unknown global func must error")
	}
}

func TestSecureUnion(t *testing.T) {
	for _, secure := range []bool{false, true} {
		m, _ := buildFed(t, secure)
		s, _ := m.NewSession(nil)
		times, err := s.SecureUnion(LocalRunSpec{Func: "test_times", Vars: []string{"age"}}, "times")
		if err != nil {
			t.Fatalf("secure=%v: %v", secure, err)
		}
		if len(times) == 0 {
			t.Fatalf("secure=%v: empty union", secure)
		}
		for i := 1; i < len(times); i++ {
			if times[i] <= times[i-1] {
				t.Fatalf("union not sorted/distinct: %v", times)
			}
		}
	}
}

func TestMergeQuery(t *testing.T) {
	m, _ := buildFed(t, false)
	res, err := m.MergeQuery(nil, "SELECT count(*) AS n, avg(age) AS m FROM data")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.ColByName("n").Value(0); fmt.Sprint(n) != "150" {
		t.Fatalf("merge count = %v", n)
	}
}

func TestUnknownLocalFunc(t *testing.T) {
	m, _ := buildFed(t, false)
	s, _ := m.NewSession(nil)
	if _, err := s.LocalRun(LocalRunSpec{Func: "ghost"}); err == nil {
		t.Fatal("unknown local func must error")
	}
}

func TestMasterValidation(t *testing.T) {
	if _, err := NewMaster(nil, nil, Security{}); err == nil {
		t.Fatal("empty workers must fail")
	}
	db := newWorkerDB(t, "d", 20, 0)
	w1 := NewWorker("same", db)
	w2 := NewWorker("same", newWorkerDB(t, "d", 20, 0))
	if _, err := NewMaster([]WorkerClient{w1, w2}, nil, Security{}); err == nil {
		t.Fatal("duplicate ids must fail")
	}
	if _, err := NewMaster([]WorkerClient{w1}, nil, Security{UseSMPC: true}); err == nil {
		t.Fatal("SMPC without cluster must fail")
	}
}

func TestWireTableRoundTrip(t *testing.T) {
	db := newWorkerDB(t, "edsd", 25, 0)
	tab, err := db.Query("SELECT * FROM data")
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeTable(EncodeTable(tab))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tab.NumRows() || back.NumCols() != tab.NumCols() {
		t.Fatal("shape changed")
	}
	for i := 0; i < tab.NumRows(); i++ {
		for j := 0; j < tab.NumCols(); j++ {
			if fmt.Sprint(back.Col(j).Value(i)) != fmt.Sprint(tab.Col(j).Value(i)) {
				t.Fatalf("cell [%d][%d] changed", i, j)
			}
		}
	}
}

// Full HTTP transport: master drives workers through httptest servers, and
// results must match the in-process path.
func TestHTTPTransport(t *testing.T) {
	var clients []WorkerClient
	for i := 0; i < 3; i++ {
		db := newWorkerDB(t, "edsd", 40+10*i, float64(i))
		w := NewWorker(fmt.Sprintf("h%d", i), db)
		srv := httptest.NewServer((&WorkerServer{Worker: w, AllowRawQuery: true}).Handler())
		t.Cleanup(srv.Close)
		clients = append(clients, NewHTTPWorkerClient(w.ID(), srv.URL))
	}
	m, err := NewMaster(clients, nil, Security{})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.NewSession([]string{"edsd"})
	transfers, err := s.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}})
	if err != nil {
		t.Fatal(err)
	}
	agg, err := AggregateSum(transfers, "n", "sums")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := agg.Float("n"); n != 150 {
		t.Fatalf("HTTP n = %v", n)
	}
	// Merge query over HTTP.
	res, err := m.MergeQuery(nil, "SELECT count(*) AS n FROM data")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Col(0).Value(0)) != "150" {
		t.Fatalf("HTTP merge count = %v", res.Col(0).Value(0))
	}
}

func TestHTTPRawQueryForbidden(t *testing.T) {
	db := newWorkerDB(t, "edsd", 40, 0)
	w := NewWorker("h", db)
	srv := httptest.NewServer((&WorkerServer{Worker: w, AllowRawQuery: false}).Handler())
	defer srv.Close()
	c := NewHTTPWorkerClient("h", srv.URL)
	if _, err := c.Query("SELECT * FROM data"); err == nil {
		t.Fatal("raw query must be forbidden")
	}
	// Local runs still work.
	resp, err := c.LocalRun(LocalRunRequest{JobID: "x", Func: "test_sums", DataQuery: "SELECT age FROM data", ShareToGlobal: true})
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := resp.Transfer.Float("n"); n != 40 {
		t.Fatalf("n = %v", n)
	}
}

func TestFlattenUnflattenRoundTrip(t *testing.T) {
	tr := Transfer{
		"scalar": 3.5,
		"vec":    []float64{1, 2, 3},
		"mat":    [][]float64{{1, 2}, {3, 4}},
		"other":  "ignored",
	}
	flat, shapes, err := flattenNumeric(tr, []string{"scalar", "vec", "mat"})
	if err != nil {
		t.Fatal(err)
	}
	if len(flat) != 1+3+4 {
		t.Fatalf("flat len = %d", len(flat))
	}
	back, err := unflattenNumeric(flat, shapes)
	if err != nil {
		t.Fatal(err)
	}
	if back["scalar"] != 3.5 {
		t.Fatal("scalar lost")
	}
	v, _ := back.Floats("vec")
	if len(v) != 3 || v[2] != 3 {
		t.Fatal("vec lost")
	}
	mmat, _ := back.Matrix("mat")
	if mmat[1][1] != 4 {
		t.Fatal("mat lost")
	}
	if _, _, err := flattenNumeric(tr, []string{"missing"}); err == nil {
		t.Fatal("missing key must error")
	}
	if _, _, err := flattenNumeric(tr, []string{"other"}); err == nil {
		t.Fatal("non-numeric key must error")
	}
}

func TestGenerateStepSQL(t *testing.T) {
	db := newWorkerDB(t, "edsd", 20, 0)
	w := NewWorker("h", db)
	sql, err := w.GenerateStepSQL("test_sums", "SELECT age FROM data")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "CREATE OR REPLACE FUNCTION fed_test_sums") {
		t.Fatalf("generated SQL:\n%s", sql)
	}
	if _, err := w.GenerateStepSQL("ghost", ""); err == nil {
		t.Fatal("unknown func must error")
	}
}

// HTTP transport combined with SMPC: workers behind HTTP servers secret-
// share into the (in-process) cluster; the master only ever receives shape
// metadata over the wire.
func TestHTTPTransportWithSMPC(t *testing.T) {
	cluster := buildCluster(t, smpc.FullThreshold)
	var clients []WorkerClient
	for i := 0; i < 3; i++ {
		db := newWorkerDB(t, "edsd", 40+5*i, float64(i))
		w := NewWorker(fmt.Sprintf("s%d", i), db, WithSMPC(cluster))
		srv := httptest.NewServer((&WorkerServer{Worker: w}).Handler())
		t.Cleanup(srv.Close)
		clients = append(clients, NewHTTPWorkerClient(w.ID(), srv.URL))
	}
	m, err := NewMaster(clients, cluster, Security{UseSMPC: true})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := m.NewSession(nil)
	out, err := s.Sum(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}, "n")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := out.Float("n")
	if n != 40+45+50 {
		t.Fatalf("secure HTTP n = %v", n)
	}
}

// Failure injection: one dead worker fails the round with a clear error
// naming the worker.
func TestWorkerFailurePropagates(t *testing.T) {
	db := newWorkerDB(t, "edsd", 40, 0)
	good := NewWorker("good", db)
	srv := httptest.NewServer((&WorkerServer{Worker: NewWorker("dead", newWorkerDB(t, "edsd", 40, 1))}).Handler())
	deadClient := NewHTTPWorkerClient("dead", srv.URL)
	srv.Close() // kill it: connections now refused
	m, err := NewMaster([]WorkerClient{good, deadClient}, nil, Security{})
	if err == nil {
		// availability refresh may already fail; if not, the round must.
		s, _ := m.NewSession(nil)
		_, err = s.LocalRun(LocalRunSpec{Func: "test_sums", Vars: []string{"age"}})
	}
	if err == nil {
		t.Fatal("dead worker must surface an error")
	}
	if !strings.Contains(err.Error(), "dead") {
		t.Fatalf("error should name the worker: %v", err)
	}
}

// A worker whose local step panics... local funcs return errors instead;
// assert a failing local step is reported with worker attribution.
func TestLocalStepErrorAttribution(t *testing.T) {
	RegisterLocal("test_fails", func(wctx *WorkerCtx, data *engine.Table, kwargs Kwargs) (Transfer, error) {
		return nil, fmt.Errorf("synthetic failure")
	})
	m, _ := buildFed(t, false)
	s, _ := m.NewSession(nil)
	_, err := s.LocalRun(LocalRunSpec{Func: "test_fails", Vars: []string{"age"}})
	if err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "worker") {
		t.Fatalf("error should attribute the worker: %v", err)
	}
}

func TestSessionMinMax(t *testing.T) {
	for _, secure := range []bool{false, true} {
		m, _ := buildFed(t, secure)
		s, _ := m.NewSession(nil)
		lo, err := s.Min(federation_testSpec(), "sums")
		if err != nil {
			t.Fatalf("secure=%v min: %v", secure, err)
		}
		s2, _ := m.NewSession(nil)
		hi, err := s2.Max(federation_testSpec(), "sums")
		if err != nil {
			t.Fatalf("secure=%v max: %v", secure, err)
		}
		lov, _ := lo.Floats("sums")
		hiv, _ := hi.Floats("sums")
		if lov[0] >= hiv[0] {
			t.Fatalf("secure=%v: min %v should be below max %v", secure, lov[0], hiv[0])
		}
	}
}

func federation_testSpec() LocalRunSpec {
	return LocalRunSpec{Func: "test_sums", Vars: []string{"age"}}
}

func TestSecureSumRequiresCluster(t *testing.T) {
	m, _ := buildFed(t, false)
	s, _ := m.NewSession(nil)
	if _, err := s.SecureSum(federation_testSpec(), "n"); err == nil {
		t.Fatal("SecureSum on a plain master must fail")
	}
	// On a secure master it works.
	ms, _ := buildFed(t, true)
	ss, _ := ms.NewSession(nil)
	out, err := ss.SecureSum(federation_testSpec(), "n")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := out.Float("n"); n != 150 {
		t.Fatalf("SecureSum n = %v", n)
	}
}

func TestSessionAccessors(t *testing.T) {
	m, _ := buildFed(t, false)
	s, _ := m.NewSession([]string{"edsd"})
	if s.ID() == "" {
		t.Fatal("empty session id")
	}
	if ds := s.Datasets(); len(ds) != 1 || ds[0] != "edsd" {
		t.Fatalf("Datasets = %v", ds)
	}
	if s.Secure() {
		t.Fatal("plain session reported secure")
	}
	ms, _ := buildFed(t, true)
	ss, _ := ms.NewSession(nil)
	if !ss.Secure() {
		t.Fatal("secure session reported plain")
	}
}

func TestKeepLocalTransferRef(t *testing.T) {
	db := newWorkerDB(t, "edsd", 40, 0)
	w := NewWorker("keeper", db)
	resp, err := w.LocalRun(LocalRunRequest{
		JobID: "j1", Func: "test_sums",
		DataQuery: "SELECT age FROM data",
		// neither ShareToGlobal nor SecureKeys: result stays local
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.TransferRef == "" || resp.Transfer != nil {
		t.Fatalf("expected a local ref, got %+v", resp)
	}
	tr, ok := w.LocalResult(resp.TransferRef)
	if !ok {
		t.Fatal("local result not retrievable by ref")
	}
	if n, _ := tr.Float("n"); n != 40 {
		t.Fatalf("local n = %v", n)
	}
	if _, ok := w.LocalResult("bogus"); ok {
		t.Fatal("bogus ref should miss")
	}
}

func TestWithFuncsCustomRegistry(t *testing.T) {
	reg := NewFuncRegistry()
	reg.MustRegisterLocal("only_here", func(wctx *WorkerCtx, data *engine.Table, kwargs Kwargs) (Transfer, error) {
		return Transfer{"ok": 1.0}, nil
	})
	if names := reg.LocalNames(); len(names) != 1 || names[0] != "only_here" {
		t.Fatalf("LocalNames = %v", names)
	}
	db := newWorkerDB(t, "edsd", 40, 0)
	w := NewWorker("custom", db, WithFuncs(reg))
	if w.DB() != db {
		t.Fatal("DB accessor wrong")
	}
	resp, err := w.LocalRun(LocalRunRequest{
		JobID: "j", Func: "only_here",
		DataQuery: "SELECT age FROM data", ShareToGlobal: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := resp.Transfer.Float("ok"); ok != 1 {
		t.Fatal("custom func did not run")
	}
	// The default registry's funcs are absent from the custom registry.
	if _, err := w.LocalRun(LocalRunRequest{
		JobID: "j2", Func: "test_sums",
		DataQuery: "SELECT age FROM data", ShareToGlobal: true,
	}); err == nil {
		t.Fatal("default funcs should not exist on a custom registry")
	}
	// Duplicate registrations fail loudly.
	if err := reg.RegisterLocal("only_here", nil); err == nil {
		t.Fatal("duplicate local registration must error")
	}
	if err := reg.RegisterGlobal("g", func(any, []Transfer, Kwargs) (Transfer, any, error) { return nil, nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterGlobal("g", nil); err == nil {
		t.Fatal("duplicate global registration must error")
	}
}

func TestTransferAccessorErrors(t *testing.T) {
	tr := Transfer{"s": "text", "v": []any{1.5, "oops"}, "m": []any{[]any{1.0}, "bad"}}
	if _, err := tr.Float("missing"); err == nil {
		t.Fatal("missing key")
	}
	if _, err := tr.Float("s"); err == nil {
		t.Fatal("non-numeric Float")
	}
	if _, err := tr.Floats("missing"); err == nil {
		t.Fatal("missing Floats")
	}
	if _, err := tr.Floats("v"); err == nil {
		t.Fatal("mixed vector must error")
	}
	if _, err := tr.Matrix("missing"); err == nil {
		t.Fatal("missing Matrix")
	}
	if _, err := tr.Matrix("m"); err == nil {
		t.Fatal("mixed matrix must error")
	}
	if _, err := tr.Matrix("s"); err == nil {
		t.Fatal("string Matrix must error")
	}
	// Int forms accepted by Float.
	tr2 := Transfer{"i": 3, "i64": int64(4)}
	if v, _ := tr2.Float("i"); v != 3 {
		t.Fatal("int Float")
	}
	if v, _ := tr2.Float("i64"); v != 4 {
		t.Fatal("int64 Float")
	}
}

func TestAggregateFoldMismatch(t *testing.T) {
	a := Transfer{"v": []float64{1, 2}}
	b := Transfer{"v": []float64{1, 2, 3}}
	if _, err := AggregateSum([]Transfer{a, b}, "v"); err == nil {
		t.Fatal("shape mismatch must error")
	}
	if _, err := AggregateSum(nil, "v"); err == nil {
		t.Fatal("empty transfers must error")
	}
}
