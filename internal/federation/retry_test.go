package federation

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mip/internal/engine"
)

func TestQuoteIdent(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"age", "age"},
		{"left_hippocampus", "left_hippocampus"},
		{"Age2", "Age2"},
		{"", `""`},
		{"3d_volume", `"3d_volume"`},   // leading digit needs quoting
		{"with space", `"with space"`}, // space needs quoting
		{"semi;colon", `"semi;colon"`}, // punctuation needs quoting
		{`he said "hi"`, `"he said ""hi"""`},
		{`"`, `""""`},
		{`a""b`, `"a""""b"`},
	}
	for _, c := range cases {
		if got := quoteIdent(c.in); got != c.want {
			t.Errorf("quoteIdent(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestQuoteIdentRoundTrip proves quoted identifiers survive the full trip
// through the SQL parser: a column whose name embeds double quotes, spaces
// and punctuation is selectable via quoteIdent output.
func TestQuoteIdentRoundTrip(t *testing.T) {
	weird := []string{`he said "hi"`, "with space", "3d_volume", `tricky""name`}
	for _, name := range weird {
		db := engine.NewDB()
		tab := engine.NewTable(engine.Schema{{Name: name, Type: engine.Float64}})
		if err := tab.AppendRow(41.0); err != nil {
			t.Fatal(err)
		}
		db.RegisterTable("t", tab)
		sql := fmt.Sprintf("SELECT %s FROM t", quoteIdent(name))
		out, err := db.Query(sql)
		if err != nil {
			t.Fatalf("column %q: query %s: %v", name, sql, err)
		}
		if out.NumRows() != 1 || out.Col(0).Float64s()[0] != 41.0 {
			t.Fatalf("column %q: wrong result", name)
		}
	}
}

func TestTruncateRuneBoundary(t *testing.T) {
	cases := []struct {
		in   string
		n    int
		want string
	}{
		{"short", 10, "short"},
		{"abcdef", 3, "abc…"},
		// "héllo" = h(1) é(2) l l o — cutting at 2 lands mid-é.
		{"héllo", 2, "h…"},
		{"héllo", 3, "hé…"},
		// 3-byte runes: cutting anywhere inside backs up to the boundary.
		{"日本語", 4, "日…"},
		{"日本語", 5, "日…"},
		{"日本語", 6, "日本…"},
	}
	for _, c := range cases {
		got := truncate(c.in, c.n)
		if got != c.want {
			t.Errorf("truncate(%q, %d) = %q, want %q", c.in, c.n, got, c.want)
		}
	}
}

func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseDelay: 100 * time.Millisecond, MaxDelay: 400 * time.Millisecond, Jitter: 0.2}
	for n, base := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		4: 400 * time.Millisecond, // capped
	} {
		d := p.backoff(n)
		lo := time.Duration(float64(base) * 0.8)
		hi := time.Duration(float64(base) * 1.2)
		if d < lo || d > hi {
			t.Errorf("backoff(%d) = %v, want within [%v, %v]", n, d, lo, hi)
		}
	}
}

type tempErr struct{ temp bool }

func (e *tempErr) Error() string   { return "tempErr" }
func (e *tempErr) Temporary() bool { return e.temp }

func TestIsRetryable(t *testing.T) {
	if IsRetryable(errors.New("plain")) {
		t.Error("plain errors must not be retryable")
	}
	if !IsRetryable(&tempErr{temp: true}) {
		t.Error("Temporary()==true must be retryable")
	}
	if IsRetryable(&tempErr{temp: false}) {
		t.Error("Temporary()==false must not be retryable")
	}
	if !IsRetryable(fmt.Errorf("wrapped: %w", &tempErr{temp: true})) {
		t.Error("wrapped temporary must be retryable")
	}
	if !IsRetryable(&CallError{Status: 503}) || !IsRetryable(&CallError{Timeout: true}) || !IsRetryable(&CallError{}) {
		t.Error("5xx/timeout/transport CallErrors must be retryable")
	}
	if IsRetryable(&CallError{Status: 422}) || IsRetryable(&CallError{Status: 400}) {
		t.Error("4xx CallErrors must not be retryable")
	}
}

func TestRetryPolicyRun(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{MaxAttempts: 3, Sleep: func(d time.Duration) { slept = append(slept, d) }}

	// Fail twice with a retryable error, then succeed.
	n := 0
	err := p.run("w1", func() error {
		n++
		if n < 3 {
			return &tempErr{temp: true}
		}
		return nil
	})
	if err != nil || n != 3 || len(slept) != 2 {
		t.Fatalf("retryable path: err=%v attempts=%d sleeps=%d", err, n, len(slept))
	}

	// A permanent error aborts on the first attempt.
	n = 0
	err = p.run("w1", func() error { n++; return errors.New("disclosure control") })
	if err == nil || n != 1 {
		t.Fatalf("permanent path: err=%v attempts=%d", err, n)
	}

	// Exhausted attempts wrap the final error.
	n = 0
	err = p.run("w1", func() error { n++; return &tempErr{temp: true} })
	if n != 3 || err == nil || !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("exhausted path: err=%v attempts=%d", err, n)
	}
	var te *tempErr
	if !errors.As(err, &te) {
		t.Fatal("exhausted error must wrap the last failure")
	}
}

// TestHTTPClientRetries: a worker server that answers 500 twice then OK is
// transparent to the caller; a 422 (worker logic error) is never retried.
func TestHTTPClientRetries(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, `{"error":"transient"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"datasets":["edsd"]}`)
	}))
	defer srv.Close()

	c := NewHTTPWorkerClient("w1", srv.URL)
	c.Retry.Sleep = func(time.Duration) {}
	ds, err := c.Datasets()
	if err != nil {
		t.Fatalf("Datasets after 2 transient failures: %v", err)
	}
	if len(ds) != 1 || ds[0] != "edsd" {
		t.Fatalf("datasets = %v", ds)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", hits.Load())
	}

	// Permanent worker verdicts are not replayed.
	var permHits atomic.Int64
	perm := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		permHits.Add(1)
		http.Error(w, `{"error":"no local func"}`, http.StatusUnprocessableEntity)
	}))
	defer perm.Close()
	pc := NewHTTPWorkerClient("w2", perm.URL)
	pc.Retry.Sleep = func(time.Duration) {}
	_, err = pc.Datasets()
	if err == nil || !strings.Contains(err.Error(), "HTTP 422") {
		t.Fatalf("err = %v, want HTTP 422", err)
	}
	if permHits.Load() != 1 {
		t.Fatalf("server saw %d requests for a 422, want 1 (no retry)", permHits.Load())
	}
}

// TestCallErrorMessages pins the wire-compatible error strings.
func TestCallErrorMessages(t *testing.T) {
	e := &CallError{Worker: "w1", Status: 503, Msg: "overloaded"}
	if got := e.Error(); got != "federation: worker w1: HTTP 503: overloaded" {
		t.Fatalf("status message = %q", got)
	}
	e = &CallError{Worker: "w1", Timeout: true, Msg: "/localrun timed out after 2s"}
	if got := e.Error(); got != "federation: worker w1: /localrun timed out after 2s" {
		t.Fatalf("timeout message = %q", got)
	}
	inner := errors.New("connection refused")
	e = &CallError{Worker: "w1", Err: inner}
	if got := e.Error(); got != "federation: worker w1: connection refused" {
		t.Fatalf("transport message = %q", got)
	}
	if !errors.Is(e, inner) {
		t.Fatal("CallError must unwrap to the transport error")
	}
}
