package federation

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"mip/internal/engine"
)

// RetryPolicy configures retry-with-exponential-backoff-and-jitter for
// idempotent worker calls. The calls it guards are safe to replay:
// /datasets and /healthz are reads, and /localrun is keyed by JobID so
// workers dedupe replays (see Worker.LocalRun).
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (1 = no retry). Zero and
	// negative values mean 1.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 100ms);
	// each further retry doubles it up to MaxDelay (default 2s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Jitter is the ± fraction applied to each backoff (default 0.2) so
	// replays from many masters don't synchronize.
	Jitter float64
	// Sleep replaces time.Sleep in tests; nil uses time.Sleep.
	Sleep func(time.Duration)
}

// DefaultRetryPolicy is the HTTP worker client's out-of-the-box policy.
var DefaultRetryPolicy = RetryPolicy{
	MaxAttempts: 3,
	BaseDelay:   100 * time.Millisecond,
	MaxDelay:    2 * time.Second,
	Jitter:      0.2,
}

func (p RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the delay before retry number n (n starts at 1).
func (p RetryPolicy) backoff(n int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	jitter := p.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 {
		f := 1 + jitter*(2*rand.Float64()-1)
		d = time.Duration(float64(d) * f)
	}
	if d < 0 {
		d = 0
	}
	return d
}

func (p RetryPolicy) sleep(d time.Duration) {
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// run executes op up to MaxAttempts times, backing off between attempts.
// Non-retryable errors (permanent worker-side failures like disclosure
// control) abort immediately.
func (p RetryPolicy) run(workerID string, op func() error) error {
	attempts := p.attempts()
	var err error
	for a := 1; a <= attempts; a++ {
		if a > 1 {
			fedRetries(workerID).Inc()
			p.sleep(p.backoff(a - 1))
		}
		err = op()
		if err == nil || !IsRetryable(err) {
			return err
		}
	}
	return fmt.Errorf("federation: giving up after %d attempts: %w", attempts, err)
}

// temporary is the net.Error-style marker retryable errors implement.
type temporary interface{ Temporary() bool }

// IsRetryable reports whether a worker-call error is worth replaying:
// transport failures, timeouts and 5xx responses are; worker-side logic
// errors (bad request, disclosure control, unknown step) are not.
func IsRetryable(err error) bool {
	var t temporary
	if errors.As(err, &t) {
		return t.Temporary()
	}
	return false
}

// retryClient wraps any WorkerClient with a RetryPolicy, replaying
// idempotent calls on transient failures. Used for in-process clients
// (HTTPWorkerClient applies its own policy at the request layer).
type retryClient struct {
	inner  WorkerClient
	policy RetryPolicy
}

// WithRetry wraps a worker client so its calls retry under the policy.
func WithRetry(inner WorkerClient, p RetryPolicy) WorkerClient {
	return &retryClient{inner: inner, policy: p}
}

func (c *retryClient) ID() string { return c.inner.ID() }

func (c *retryClient) Datasets() ([]string, error) {
	var out []string
	err := c.policy.run(c.inner.ID(), func() error {
		var e error
		out, e = c.inner.Datasets()
		return e
	})
	return out, err
}

func (c *retryClient) LocalRun(req LocalRunRequest) (LocalRunResponse, error) {
	var out LocalRunResponse
	err := c.policy.run(c.inner.ID(), func() error {
		var e error
		out, e = c.inner.LocalRun(req)
		return e
	})
	return out, err
}

func (c *retryClient) Query(sql string) (*engine.Table, error) {
	var out *engine.Table
	err := c.policy.run(c.inner.ID(), func() error {
		var e error
		out, e = c.inner.Query(sql)
		return e
	})
	return out, err
}
